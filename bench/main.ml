(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation over the Perfect-benchmark surrogate corpora, the
   ablations of DESIGN.md, and Bechamel micro-benchmarks of the pipeline
   stages.

   Run with:  dune exec bench/main.exe -- [--jobs N] [--smoke] [--out FILE]

   --jobs N   fan the (benchmark x config) cells over N domains
   --smoke    reduced corpus (1 benchmark, 2 configs, tables only)
   --out FILE where to write the machine-readable perf record
              (default BENCH_results.json; runs append, so a --jobs 1
              and a --jobs 8 run side by side show the speedup) *)

module Report = Isched_harness.Report
module Pipeline = Isched_harness.Pipeline
module Suite = Isched_perfect.Suite
module Machine = Isched_ir.Machine
module Table = Isched_util.Table
module Pool = Isched_util.Pool

let line = String.make 78 '='

let section title = Printf.printf "\n%s\n== %s\n%s\n\n" line title line

(* --- command line --- *)

type cli = {
  mutable jobs : int;
  mutable smoke : bool;
  mutable out : string;
  mutable trace : string option;
  mutable counters : bool;
  mutable compare : bool;
  mutable bench_history : string option;
  mutable stages : string list option;  (* None = the default stages *)
  mutable scale : int;  (* corpus multiplier; > 1 streams the tables stage *)
  mutable sync_elim : bool;  (* run the redundant-sync elimination pass *)
  mutable serve_bench : bool;  (* run the serve load generator instead *)
  mutable requests : int;
  mutable concurrency : int;
  mutable serve_cache : int;
  mutable zipf : float;
  mutable socket : string option;  (* replay against an external daemon *)
}

let stage_names = [ "figures"; "tables"; "ablations"; "micro"; "artifacts" ]

(* The serial Bechamel micro stage dominates the full run's wall clock
   (~3 s of quota-driven sampling) and pollutes every jobs-scaling
   comparison, so it is opt-in: the default stage list leaves it out,
   and --stages micro (or an explicit all-five list) reaches it. *)
let default_stage_names = [ "figures"; "tables"; "ablations"; "artifacts" ]

let usage () =
  prerr_endline
    "usage: main.exe [--jobs N] [--smoke] [--out FILE] [--trace FILE] [--counters]\n\
    \                [--stages LIST] [--scale N] [--compare] [--bench-history FILE]\n\
    \  --jobs N     width of the domain pool (default 1 = sequential)\n\
    \  --smoke      reduced run: 1 benchmark, 2 configs, tables only\n\
    \  --out FILE   perf record path (default BENCH_results.json)\n\
    \  --trace FILE write a Chrome/Perfetto trace_event JSON of the run\n\
    \  --counters   print the observability counter registry at the end\n\
    \  --stages LIST  comma-separated subset of figures,tables,ablations,micro,artifacts\n\
    \               to run.  Default: everything but the serial Bechamel micro stage\n\
    \               (reach it with --stages micro or an explicit all-five list)\n\
    \  --scale N    multiply the generated corpus N-fold (default 1).  N > 1 streams\n\
    \               the corpus in bounded memory and supports only the tables stage\n\
    \               (--stages tables, the default when --scale is given)\n\
    \  --sync-elim  run the redundant-synchronization elimination pass before\n\
    \               scheduling; records carry a distinct stages label so elim and\n\
    \               base runs never baseline against each other\n\
    \  --compare    perf-regression gate: compare the newest recorded run against the\n\
    \               mean of prior runs at matching --jobs/--smoke/--stages/--scale;\n\
    \               exit 1 on a >20% wall-clock or table_totals regression.\n\
    \               Runs no benchmarks.\n\
    \  --bench-history FILE  history file for --compare and for appending records\n\
    \               (default: the --out path)\n\
    \  --serve-bench  replay scheduling requests against the serve daemon and record\n\
    \               p50/p99/p999 latency (cold vs warm cache) in the perf record\n\
    \  --requests N   total requests to replay (default 100000)\n\
    \  --concurrency N  client domains, one connection each (default 8)\n\
    \  --serve-cache N  schedule-cache capacity of the self-hosted daemon (default 1024)\n\
    \  --zipf S     skew of the key-popularity distribution (default 1.0)\n\
    \  --socket PATH  replay against an already-running daemon instead of\n\
    \               self-hosting one in-process";
  exit 2

let parse_cli () =
  let cli =
    {
      jobs = 1;
      smoke = false;
      out = "BENCH_results.json";
      trace = None;
      counters = false;
      compare = false;
      bench_history = None;
      stages = None;
      scale = 1;
      sync_elim = false;
      serve_bench = false;
      requests = 100_000;
      concurrency = 8;
      serve_cache = 1024;
      zipf = 1.0;
      socket = None;
    }
  in
  let parse_stages s =
    let names = String.split_on_char ',' s |> List.map String.trim |> List.filter (( <> ) "") in
    if names = [] || List.exists (fun n -> not (List.mem n stage_names)) names then usage ();
    cli.stages <- Some names
  in
  let rec go = function
    | [] -> ()
    | "--smoke" :: rest ->
      cli.smoke <- true;
      go rest
    | "--counters" :: rest ->
      cli.counters <- true;
      go rest
    | "--compare" :: rest ->
      cli.compare <- true;
      go rest
    | "--serve-bench" :: rest ->
      cli.serve_bench <- true;
      go rest
    | "--sync-elim" :: rest ->
      cli.sync_elim <- true;
      go rest
    | "--jobs" :: n :: rest ->
      (match int_of_string_opt n with Some j when j >= 1 -> cli.jobs <- j | _ -> usage ());
      go rest
    | "--requests" :: n :: rest ->
      (match int_of_string_opt n with Some r when r >= 1 -> cli.requests <- r | _ -> usage ());
      go rest
    | "--concurrency" :: n :: rest ->
      (match int_of_string_opt n with Some c when c >= 1 -> cli.concurrency <- c | _ -> usage ());
      go rest
    | "--serve-cache" :: n :: rest ->
      (match int_of_string_opt n with Some c when c >= 1 -> cli.serve_cache <- c | _ -> usage ());
      go rest
    | "--zipf" :: s :: rest ->
      (match float_of_string_opt s with Some z when z >= 0. -> cli.zipf <- z | _ -> usage ());
      go rest
    | "--socket" :: path :: rest ->
      cli.socket <- Some path;
      go rest
    | "--scale" :: n :: rest ->
      (match int_of_string_opt n with Some s when s >= 1 -> cli.scale <- s | _ -> usage ());
      go rest
    | "--out" :: path :: rest ->
      cli.out <- path;
      go rest
    | "--trace" :: path :: rest ->
      cli.trace <- Some path;
      go rest
    | "--bench-history" :: path :: rest ->
      cli.bench_history <- Some path;
      go rest
    | "--stages" :: list :: rest ->
      parse_stages list;
      go rest
    | arg :: rest when String.length arg > 7 && String.sub arg 0 7 = "--jobs=" -> go ("--jobs" :: String.sub arg 7 (String.length arg - 7) :: rest)
    | arg :: rest when String.length arg > 6 && String.sub arg 0 6 = "--out=" -> go ("--out" :: String.sub arg 6 (String.length arg - 6) :: rest)
    | arg :: rest when String.length arg > 8 && String.sub arg 0 8 = "--trace=" -> go ("--trace" :: String.sub arg 8 (String.length arg - 8) :: rest)
    | arg :: rest when String.length arg > 16 && String.sub arg 0 16 = "--bench-history=" ->
      go ("--bench-history" :: String.sub arg 16 (String.length arg - 16) :: rest)
    | arg :: rest when String.length arg > 9 && String.sub arg 0 9 = "--stages=" ->
      go ("--stages" :: String.sub arg 9 (String.length arg - 9) :: rest)
    | arg :: rest when String.length arg > 8 && String.sub arg 0 8 = "--scale=" ->
      go ("--scale" :: String.sub arg 8 (String.length arg - 8) :: rest)
    | arg :: rest when String.length arg > 11 && String.sub arg 0 11 = "--requests=" ->
      go ("--requests" :: String.sub arg 11 (String.length arg - 11) :: rest)
    | arg :: rest when String.length arg > 14 && String.sub arg 0 14 = "--concurrency=" ->
      go ("--concurrency" :: String.sub arg 14 (String.length arg - 14) :: rest)
    | arg :: rest when String.length arg > 14 && String.sub arg 0 14 = "--serve-cache=" ->
      go ("--serve-cache" :: String.sub arg 14 (String.length arg - 14) :: rest)
    | arg :: rest when String.length arg > 7 && String.sub arg 0 7 = "--zipf=" ->
      go ("--zipf" :: String.sub arg 7 (String.length arg - 7) :: rest)
    | arg :: rest when String.length arg > 9 && String.sub arg 0 9 = "--socket=" ->
      go ("--socket" :: String.sub arg 9 (String.length arg - 9) :: rest)
    | _ -> usage ()
  in
  go (List.tl (Array.to_list Sys.argv));
  if cli.scale > 1 then begin
    (* A scaled corpus is streamed, which only the tables stage knows
       how to do; every other stage would need the materialized corpus. *)
    match cli.stages with
    | None -> cli.stages <- Some [ "tables" ]
    | Some [ "tables" ] -> ()
    | Some _ ->
      prerr_endline "--scale N with N > 1 supports only --stages tables";
      usage ()
  end;
  cli

let history_path cli = match cli.bench_history with Some p -> p | None -> cli.out

let stage_wanted cli name =
  match cli.stages with None -> List.mem name default_stage_names | Some l -> List.mem name l

(* Canonical label recorded in the perf record; the --compare gate only
   baselines runs against prior runs with the same label, so a
   tables-only run never masquerades as a full run's baseline.  The
   label "all" still means the full five-stage run (explicit list
   required now that micro is opt-in), so records written before the
   default changed keep matching the runs they describe. *)
let stages_label cli =
  let canonical l = List.filter (fun n -> List.mem n l) stage_names in
  (* --sync-elim changes the workload (smaller programs, fewer sync
     ops), so it gets a label suffix of its own: elimination runs only
     ever baseline against other elimination runs. *)
  let elim_suffix = if cli.sync_elim then "+sync-elim" else "" in
  if cli.serve_bench then
    (* Serve-bench runs are a different workload entirely: give them a
       label of their own (parameterized by request count and
       concurrency) so they only ever baseline against like runs and
       can never stand in for a tables baseline. *)
    Printf.sprintf "serve-r%d-c%d" cli.requests cli.concurrency
  else
    (match cli.stages with
    | None -> String.concat "," default_stage_names
    | Some l -> if canonical l = stage_names then "all" else String.concat "," (canonical l))
    ^ elim_suffix

(* --- stage timing --- *)

let stage_times : (string * float) list ref = ref []

let timed name f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  stage_times := !stage_times @ [ (name, Unix.gettimeofday () -. t0) ];
  r

(* --- figures --- *)

let fig_1_to_4 () =
  section "Figs. 1-4 - the paper's worked example, reproduced end to end";
  print_string (Isched_harness.Worked_example.report ())

(* --- tables --- *)

let tables ~options benches configs =
  section "Table 1 - characteristics of the benchmark corpora";
  Table.print (Report.table1 ~options benches);
  print_endline
    "(Perfect surrogates: deterministic corpora matching the paper's structural statistics;\n\
     FLQ52, QCD and TRACK all-LBD, MDG and ADM mixed, LBDs almost all flow dependences.)";
  let ms = Report.measure ~options benches configs in
  section "Table 2 - total parallel execution time (100 iterations per loop)";
  Table.print (Report.table2 ms);
  section "Table 3 - improved percentage of parallel execution time";
  Table.print (Report.table3 ms);
  let two, four = Report.overall ms in
  Printf.printf
    "\nOverall enhancement: %.2f%% for 2-issue and %.2f%% for 4-issue\n\
     (the paper reports about 83.37%% and 85.1%%).\n"
    two four;
  section "DOACROSS loop categories (Chen & Yew's six types, Section 4.1)";
  Table.print (Report.categories benches);
  ms

(* The scaled-corpus variant: same sections, but everything flows
   through Report.scaled_tables so no more than a chunk of the corpus
   exists at a time. *)
let tables_scaled ~options ~scale ~smoke configs =
  let profiles = Suite.profiles ~smoke () in
  let t1, ms, cats, sync_ops = Report.scaled_tables ~options ~scale profiles configs in
  section (Printf.sprintf "Table 1 - characteristics of the benchmark corpora (scale %d)" scale);
  Table.print t1;
  section "Table 2 - total parallel execution time (100 iterations per loop)";
  Table.print (Report.table2 ms);
  section "Table 3 - improved percentage of parallel execution time";
  Table.print (Report.table3 ms);
  let two, four = Report.overall ms in
  Printf.printf "\nOverall enhancement: %.2f%% for 2-issue and %.2f%% for 4-issue\n" two four;
  Printf.printf "Send/Wait instructions across the generated programs: %d%s\n" sync_ops
    (if options.Pipeline.sync_elim then " (after redundant-sync elimination)" else "");
  section "DOACROSS loop categories (Chen & Yew's six types, Section 4.1)";
  Table.print cats;
  (ms, sync_ops)

let ablations benches =
  section "Ablation A1 - damage ordering of synchronization paths";
  Table.print (Report.ablation_order benches);
  section "Ablation A2 - redundant-synchronization elimination";
  Table.print (Report.ablation_elimination benches);
  section "Ablation A3 - statement-level synchronization migration";
  Table.print (Report.ablation_migration benches);
  section "Sweep A4 - beyond the paper's four machine configurations";
  Table.print (Report.sweep benches);
  section "Ablation A5 - list vs marker-guided (ISPAN'94) vs new scheduling";
  Table.print (Report.ablation_markers benches);
  section "Ablation A6 - post-codegen redundant-sync elimination";
  Table.print (Report.ablation_sync_elim benches);
  section "Unroll study - DOACROSS unrolling under the new scheduler";
  Table.print (Report.unroll_study ());
  section "Processor sweep - limited pools with cyclic iteration assignment";
  Table.print (Report.processor_sweep benches);
  section "Register study - spill traffic vs register-file size";
  Table.print (Report.register_study benches);
  section "Architecture comparison - software pipelining vs DOACROSS multiprocessing";
  Table.print (Report.architecture_comparison benches)

(* --- Bechamel micro-benchmarks --- *)

let micro () =
  section "Bechamel micro-benchmarks of the pipeline stages";
  let open Bechamel in
  let fig1 = Isched_harness.Worked_example.fig1_loop () in
  let prog = Isched_harness.Worked_example.fig2_program () in
  let graph = Isched_dfg.Dfg.build prog in
  let m4 = Machine.make ~issue:4 ~nfu:1 () in
  let small_benches =
    List.map
      (fun p -> Suite.load { p with Isched_perfect.Profile.n_generated = 2 })
      Isched_perfect.Profile.all
  in
  let sched_new = Isched_core.Sync_sched.run graph m4 in
  let tests =
    [
      (* One benchmark per reproduced artefact, as DESIGN.md indexes
         them, plus the stage micro-benchmarks. *)
      Test.make ~name:"table1-corpus-statistics"
        (Staged.stage (fun () -> ignore (Report.table1 small_benches)));
      Test.make ~name:"table2-measure-one-config"
        (Staged.stage (fun () ->
             ignore (Report.measure small_benches [ ("4-issue(#FU=1)", m4) ])));
      Test.make ~name:"table3-improvement-metric"
        (Staged.stage (fun () -> ignore (Report.improvement ~t_list:57790 ~t_new:47329)));
      Test.make ~name:"fig4-list-scheduling"
        (Staged.stage (fun () -> ignore (Isched_core.List_sched.run graph m4)));
      Test.make ~name:"fig4-new-scheduling"
        (Staged.stage (fun () -> ignore (Isched_core.Sync_sched.run graph m4)));
      Test.make ~name:"stage-dependence-analysis"
        (Staged.stage (fun () -> ignore (Isched_deps.Dep.analyze fig1)));
      Test.make ~name:"stage-codegen"
        (Staged.stage (fun () -> ignore (Isched_codegen.Codegen.compile fig1)));
      Test.make ~name:"stage-dfg-build"
        (Staged.stage (fun () -> ignore (Isched_dfg.Dfg.build prog)));
      Test.make ~name:"stage-timing-simulation"
        (Staged.stage (fun () -> ignore (Isched_sim.Timing.run sched_new)));
      Test.make ~name:"stage-value-simulation"
        (Staged.stage (fun () -> ignore (Isched_sim.Value.run sched_new)));
    ]
  in
  let test = Test.make_grouped ~name:"isched" ~fmt:"%s/%s" tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:(Some 256) () in
  let raw_results = Benchmark.all cfg [ instance ] test in
  let results = Analyze.all ols instance raw_results in
  Hashtbl.fold (fun name result acc -> (name, result) :: acc) results []
  |> List.sort compare
  |> List.iter (fun (name, result) ->
         match Analyze.OLS.estimates result with
         | Some [ est ] -> Printf.printf "  %-40s %14.1f ns/run\n" name est
         | Some _ | None -> Printf.printf "  %-40s (no estimate)\n" name)

(* SVG artifacts for the worked example: both schedulers' wavefronts
   and the new schedule's row layout. *)
let artifacts () =
  let dir = "artifacts" in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let write name contents =
    let path = Filename.concat dir name in
    let oc = open_out path in
    Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc contents);
    Printf.printf "wrote %s\n" path
  in
  let prog = Isched_harness.Worked_example.fig2_program () in
  let g = Isched_dfg.Dfg.build prog in
  let m = Machine.make ~issue:4 ~nfu:1 () in
  let s_list = Isched_core.List_sched.run g m in
  let s_new = Isched_core.Sync_sched.run g m in
  write "fig4-list-wavefront.svg" (Isched_sim.Viz.wavefront_svg ~max_iters:20 s_list);
  write "fig4-new-wavefront.svg" (Isched_sim.Viz.wavefront_svg ~max_iters:20 s_new);
  write "fig4-new-schedule.svg" (Isched_sim.Viz.schedule_svg s_new)

(* --- the serve load generator (--serve-bench) --- *)

module Serve_bench = struct
  module Server = Isched_serve.Server
  module Client = Isched_serve.Client
  module Protocol = Isched_serve.Protocol
  module Prng = Isched_util.Prng
  module Counters = Isched_obs.Counters

  (* Client-side latency histograms (log2 of nanoseconds, so the whole
     ns..minutes range fits the 0..63 buckets); the exact p50/p99/p999
     the record carries come from the raw per-domain sample arrays. *)
  let d_hit_latency = Counters.dist "serve.bench.hit_latency_log2ns"

  let d_miss_latency = Counters.dist "serve.bench.miss_latency_log2ns"

  let log2i n =
    let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
    if n <= 0 then 0 else go 0 n

  (* Zipf-skewed key popularity: rank r (0-based) drawn with probability
     proportional to 1/(r+1)^theta; theta 0 is uniform.  Precomputed CDF
     + binary search keeps the draw O(log n) off the request path. *)
  let zipf_cdf ~theta n =
    let c = Array.make n 0. in
    let acc = ref 0. in
    for i = 0 to n - 1 do
      acc := !acc +. (1. /. (float_of_int (i + 1) ** theta));
      c.(i) <- !acc
    done;
    c

  let pick rng cdf =
    let n = Array.length cdf in
    let u = Prng.float rng *. cdf.(n - 1) in
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cdf.(mid) > u then hi := mid else lo := mid + 1
    done;
    !lo

  (* Nearest-rank percentile of an ascending array. *)
  let percentile sorted p =
    let n = Array.length sorted in
    if n = 0 then 0.
    else sorted.(max 0 (min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1)))

  (* The canonical response encoding starts with a fixed envelope, so
     the load generator classifies hit/miss with a prefix check instead
     of parsing 400-byte JSON bodies off the timed path (the protocol
     suite pins the encoding these prefixes assume). *)
  let hit_prefix = "{\"status\": \"ok\", \"op\": \"schedule\", \"cache\": \"hit\""

  let miss_prefix = "{\"status\": \"ok\", \"op\": \"schedule\", \"cache\": \"miss\""

  (* One client domain: one connection, [quota] requests drawn from the
     shared popularity distribution with a private PRNG stream. *)
  let worker ~socket ~names ~cdf ~seed ~quota =
    let rng = Prng.create seed in
    let lat = Array.make quota nan in
    let hits = Array.make quota false in
    let errors = ref 0 in
    Client.with_connection socket (fun c ->
        for i = 0 to quota - 1 do
          let name = names.(pick rng cdf) in
          let req = Protocol.schedule_request (Protocol.Corpus_loop name) in
          let t0 = Unix.gettimeofday () in
          match Client.request_raw c req with
          | Ok payload
            when String.starts_with ~prefix:hit_prefix payload
                 || String.starts_with ~prefix:miss_prefix payload ->
            let ns = (Unix.gettimeofday () -. t0) *. 1e9 in
            let cache_hit = String.starts_with ~prefix:hit_prefix payload in
            lat.(i) <- ns;
            hits.(i) <- cache_hit;
            Counters.observe
              (if cache_hit then d_hit_latency else d_miss_latency)
              (log2i (int_of_float ns))
          | Ok _ | Error _ -> incr errors
        done);
    (lat, hits, !errors)

  let summarize name sorted =
    if Array.length sorted = 0 then
      Printf.printf "  %-10s (no samples)\n" name
    else
      Printf.printf "  %-10s n=%-8d p50=%8.1fus  p99=%8.1fus  p999=%8.1fus\n" name
        (Array.length sorted)
        (percentile sorted 0.50 /. 1e3)
        (percentile sorted 0.99 /. 1e3)
        (percentile sorted 0.999 /. 1e3)

  let pcts_json sorted =
    Printf.sprintf
      "{ \"count\": %d, \"p50_ns\": %.0f, \"p99_ns\": %.0f, \"p999_ns\": %.0f }"
      (Array.length sorted) (percentile sorted 0.50) (percentile sorted 0.99)
      (percentile sorted 0.999)

  (* Returns the JSON fragment recorded under "serve" in the perf
     record. *)
  let run cli =
    section "Scheduling service - load generator";
    let names =
      Array.of_list
        (List.map
           (fun (l : Isched_frontend.Ast.loop) -> l.Isched_frontend.Ast.name)
           (Suite.all_loops ~smoke:cli.smoke ()))
    in
    let cdf = zipf_cdf ~theta:cli.zipf (Array.length names) in
    let self_host = cli.socket = None in
    let socket =
      match cli.socket with
      | Some p -> p
      | None ->
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "ischedc-serve-bench-%d.sock" (Unix.getpid ()))
    in
    let server =
      if not self_host then None
      else begin
        let config =
          {
            (Server.default_config ~socket_path:socket) with
            Server.cache_capacity = cli.serve_cache;
            workers = max 2 (min cli.concurrency 8);
            queue_capacity = max 64 cli.concurrency;
          }
        in
        let server = Server.create config in
        let ready = Atomic.make false in
        let d = Domain.spawn (fun () -> Server.run ~on_ready:(fun () -> Atomic.set ready true) server) in
        while not (Atomic.get ready) do
          Unix.sleepf 0.005
        done;
        Some (server, d)
      end
    in
    Printf.printf "%d requests, %d clients, %d corpus keys, zipf %.2f, cache %d (%s)\n%!"
      cli.requests cli.concurrency (Array.length names) cli.zipf cli.serve_cache
      (if self_host then "self-hosted daemon" else "external daemon at " ^ socket);
    let quota = cli.requests / cli.concurrency in
    let extra = cli.requests - (quota * cli.concurrency) in
    let t0 = Unix.gettimeofday () in
    let domains =
      List.init cli.concurrency (fun i ->
          let q = quota + if i < extra then 1 else 0 in
          Domain.spawn (fun () -> worker ~socket ~names ~cdf ~seed:(0x5eed0000 + i) ~quota:q))
    in
    let results = List.map Domain.join domains in
    let wall = Unix.gettimeofday () -. t0 in
    (* The daemon's own windowed view, read over the socket before the
       drain: what ischedc top renders, cross-checked below against the
       client-side samples from the very same run. *)
    let server_window =
      let module Json = Isched_obs.Json in
      match Client.with_connection socket (fun c -> Client.request c Protocol.Stats) with
      | Ok (Protocol.Stats_reply stats) ->
        let f path =
          Option.value ~default:0.
            (Option.bind
               (List.fold_left (fun acc k -> Option.bind acc (Json.member k)) (Some stats) path)
               Json.to_float)
        in
        Some
          ( f [ "window"; "p50_ns" ],
            f [ "window"; "p99_ns" ],
            f [ "window"; "rate" ],
            f [ "window"; "count" ],
            if f [ "cache_window"; "count" ] > 0. then
              1. -. f [ "cache_window"; "flagged_ratio" ]
            else 0. )
      | Ok _ | Error _ -> None
      | exception (Unix.Unix_error _ | Failure _) -> None
    in
    (match server with
    | None -> ()
    | Some (s, d) ->
      Server.stop s;
      Domain.join d);
    let errors = List.fold_left (fun a (_, _, e) -> a + e) 0 results in
    let collect want =
      let out = ref [] in
      List.iter
        (fun (lat, hits, _) ->
          Array.iteri
            (fun i ns -> if (not (Float.is_nan ns)) && want hits.(i) then out := ns :: !out)
            lat)
        results;
      let a = Array.of_list !out in
      Array.sort compare a;
      a
    in
    let all = collect (fun _ -> true) in
    let hit = collect (fun h -> h) in
    let miss = collect (fun h -> not h) in
    Printf.printf "replayed %d requests in %.2f s (%.0f req/s), %d error(s)\n" cli.requests wall
      (float_of_int cli.requests /. wall)
      errors;
    summarize "all" all;
    summarize "warm(hit)" hit;
    summarize "cold(miss)" miss;
    if Array.length hit > 0 && Array.length miss > 0 then
      Printf.printf "  warm-cache p50 is %.1fx below the cold-path p50\n"
        (percentile miss 0.50 /. Float.max 1. (percentile hit 0.50));
    (match server_window with
    | None -> ()
    | Some (p50, p99, rate, count, hit_ratio) ->
      Printf.printf
        "  server    n=%-8.0f p50=%8.1fus  p99=%8.1fus  rate=%7.0f req/s  hit=%5.1f%%\n" count
        (p50 /. 1e3) (p99 /. 1e3) rate (100. *. hit_ratio);
      (* The daemon measures decode-to-write, the client adds the two
         socket hops and its own decode-free read — so the server p50
         sits at or below the client p50, within the same order of
         magnitude (and its bucketed quantiles overshoot <= 25%). *)
      if Array.length all > 0 && p50 > 0. then
        Printf.printf "  cross-check: server/client p50 ratio %.2f\n"
          (p50 /. Float.max 1. (percentile all 0.50)));
    let server_window_json =
      match server_window with
      | None -> "null"
      | Some (p50, p99, rate, count, hit_ratio) ->
        Printf.sprintf
          "{ \"count\": %.0f, \"p50_ns\": %.0f, \"p99_ns\": %.0f, \"rate_rps\": %.1f, \
           \"hit_ratio\": %.4f }"
          count p50 p99 rate hit_ratio
    in
    Printf.sprintf
      "{ \"requests\": %d, \"concurrency\": %d, \"cache_capacity\": %d, \"zipf\": %.3f, \
       \"wall_clock_seconds\": %.3f, \"throughput_rps\": %.1f, \"errors\": %d, \"latency\": { \
       \"all\": %s, \"hit\": %s, \"miss\": %s }, \"server_window\": %s }"
      cli.requests cli.concurrency cli.serve_cache cli.zipf wall
      (float_of_int cli.requests /. wall)
      errors (pcts_json all) (pcts_json hit) (pcts_json miss) server_window_json
end

(* --- machine-readable perf record --- *)

let git_rev () =
  let read path =
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> Some (String.trim (really_input_string ic (in_channel_length ic))))
    with Sys_error _ | End_of_file -> None
  in
  match read ".git/HEAD" with
  | None -> "unknown"
  | Some head when String.length head >= 5 && String.sub head 0 5 = "ref: " -> (
    let r = String.trim (String.sub head 5 (String.length head - 5)) in
    match read (Filename.concat ".git" r) with
    | Some rev -> rev
    | None -> (
      (* The ref may live in packed-refs: "<rev> <refname>" lines. *)
      match read ".git/packed-refs" with
      | None -> "unknown"
      | Some packed ->
        String.split_on_char '\n' packed
        |> List.find_map (fun l ->
               match String.index_opt l ' ' with
               | Some i when String.sub l (i + 1) (String.length l - i - 1) = r ->
                 Some (String.sub l 0 i)
               | _ -> None)
        |> Option.value ~default:"unknown"))
  | Some head -> head

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* The record keeps every run: {"runs": [ ... ]}.  Appending re-reads
   the previous file and splices its run objects back verbatim (we only
   ever parse our own output), so a --jobs 1 run and a --jobs 8 run can
   sit side by side and document the speedup. *)
let previous_runs path =
  if not (Sys.file_exists path) then None
  else
    try
      let ic = open_in_bin path in
      let s =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      match (String.index_opt s '[', String.rindex_opt s ']') with
      | Some i, Some j when j > i ->
        let inner = String.trim (String.sub s (i + 1) (j - i - 1)) in
        if inner = "" then None else Some inner
      | _ -> None
    with Sys_error _ | End_of_file -> None

let emit_record ~path ~cli ~total ?serve ?sync_ops (ms : Report.measurement list) =
  let b = Buffer.create 1024 in
  let configs =
    List.fold_left (fun acc m -> if List.mem m.Report.config acc then acc else acc @ [ m.Report.config ]) [] ms
  in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf "      \"git_rev\": \"%s\",\n" (json_escape (git_rev ())));
  Buffer.add_string b (Printf.sprintf "      \"unix_time\": %.0f,\n" (Unix.time ()));
  Buffer.add_string b (Printf.sprintf "      \"jobs\": %d,\n" cli.jobs);
  Buffer.add_string b (Printf.sprintf "      \"smoke\": %b,\n" cli.smoke);
  Buffer.add_string b (Printf.sprintf "      \"scale\": %d,\n" cli.scale);
  Buffer.add_string b (Printf.sprintf "      \"sync_elim\": %b,\n" cli.sync_elim);
  (match sync_ops with
  | None -> ()
  | Some n -> Buffer.add_string b (Printf.sprintf "      \"sync_ops\": %d,\n" n));
  Buffer.add_string b (Printf.sprintf "      \"stages\": \"%s\",\n" (json_escape (stages_label cli)));
  Buffer.add_string b (Printf.sprintf "      \"wall_clock_seconds\": %.3f,\n" total);
  let hits, misses = Isched_harness.Pipeline.memo_stats () in
  Buffer.add_string b
    (Printf.sprintf "      \"prepare_memo\": { \"hits\": %d, \"misses\": %d },\n" hits misses);
  Buffer.add_string b "      \"stage_seconds\": {";
  List.iteri
    (fun i (name, s) ->
      Buffer.add_string b
        (Printf.sprintf "%s \"%s\": %.3f" (if i = 0 then "" else ",") (json_escape name) s))
    !stage_times;
  Buffer.add_string b " },\n";
  Buffer.add_string b "      \"table_totals\": {";
  List.iteri
    (fun i c ->
      let rows = List.filter (fun m -> m.Report.config = c) ms in
      let tl = List.fold_left (fun a m -> a + m.Report.t_list) 0 rows in
      let tn = List.fold_left (fun a m -> a + m.Report.t_new) 0 rows in
      Buffer.add_string b
        (Printf.sprintf "%s \"%s\": { \"t_list\": %d, \"t_new\": %d }"
           (if i = 0 then "" else ",")
           (json_escape c) tl tn))
    configs;
  Buffer.add_string b " },\n";
  (match serve with
  | None -> ()
  | Some s -> Buffer.add_string b (Printf.sprintf "      \"serve\": %s,\n" s));
  (* Full counter snapshot (see doc/observability.md for the schema):
     scheduler runs, pool utilisation, first_fit probe lengths, timing
     fast-path hits... so every future perf PR has a machine-readable
     before/after story beyond wall-clock. *)
  Buffer.add_string b
    (Printf.sprintf "      \"counters\": %s\n" (Isched_obs.Counters.to_json ()));
  Buffer.add_string b "    }";
  let entry = Buffer.contents b in
  let runs = match previous_runs path with None -> entry | Some prev -> prev ^ ",\n    " ^ entry in
  let doc = Printf.sprintf "{\n  \"runs\": [\n    %s\n  ]\n}\n" runs in
  (* Keep the history bounded: the newest 200 runs.  On an unparseable
     document the rotation declines and the raw splice stands — better
     an over-long history than a destroyed one. *)
  let doc = Option.value ~default:doc (Isched_harness.Bench_gate.rotate_history ~keep:200 doc) in
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc doc);
  Printf.printf "wrote %s\n" path

(* --- the --compare perf-regression gate --- *)

let run_compare cli =
  let path = history_path cli in
  if not (Sys.file_exists path) then begin
    Printf.printf "perf comparison: no history at %s — nothing to compare against, OK\n" path;
    exit 0
  end;
  let ic = open_in_bin path in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Isched_harness.Bench_gate.parse_history contents with
  | Error e ->
    Printf.eprintf "perf comparison: cannot parse %s: %s\n" path e;
    exit 2
  | Ok runs -> (
    match Isched_harness.Bench_gate.compare_latest runs with
    | Error e ->
      Printf.eprintf "perf comparison: %s\n" e;
      exit 2
    | Ok c ->
      print_string (Isched_harness.Bench_gate.render_comparison c);
      exit (if Isched_harness.Bench_gate.ok c then 0 else 1))

let () =
  let cli = parse_cli () in
  if cli.compare then run_compare cli;
  Pool.set_default_jobs cli.jobs;
  (match cli.trace with None -> () | Some _ -> Isched_obs.Span.set_enabled true);
  let t0 = Unix.gettimeofday () in
  let configs =
    if cli.smoke then
      match Machine.paper_configs with a :: b :: _ -> [ a; b ] | short -> short
    else Machine.paper_configs
  in
  let options = { Pipeline.default_options with sync_elim = cli.sync_elim } in
  let serve_json = ref None in
  let sync_ops = ref None in
  let ms =
    if cli.serve_bench then begin
      serve_json := Some (timed "serve" (fun () -> Serve_bench.run cli));
      []
    end
    else if cli.scale > 1 then begin
      (* Streamed: the corpus is never materialized, so there is no
         load-corpora stage and only tables can run (enforced at CLI
         parse time). *)
      let ms, ops =
        timed "tables" (fun () -> tables_scaled ~options ~scale:cli.scale ~smoke:cli.smoke configs)
      in
      sync_ops := Some ops;
      ms
    end
    else begin
      let benches = timed "load-corpora" (fun () -> Suite.corpora ~smoke:cli.smoke ()) in
      if (not cli.smoke) && stage_wanted cli "figures" then timed "figures" fig_1_to_4;
      let ms =
        if stage_wanted cli "tables" then timed "tables" (fun () -> tables ~options benches configs)
        else []
      in
      if not cli.smoke then begin
        if stage_wanted cli "ablations" then timed "ablations" (fun () -> ablations benches);
        if stage_wanted cli "micro" then timed "micro" micro;
        if stage_wanted cli "artifacts" then timed "artifacts" artifacts
      end;
      ms
    end
  in
  let total = Unix.gettimeofday () -. t0 in
  emit_record ~path:(history_path cli) ~cli ~total ?serve:!serve_json ?sync_ops:!sync_ops ms;
  (match cli.trace with
  | None -> ()
  | Some path ->
    Isched_obs.Span.write_file path;
    Printf.printf "wrote %s\n" path);
  if cli.counters then begin
    print_string "\n--- counters ---\n";
    print_string (Isched_obs.Counters.render ())
  end;
  Printf.printf "\nTotal bench time: %.1f s (jobs=%d)\n" total cli.jobs
