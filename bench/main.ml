(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation over the Perfect-benchmark surrogate corpora, the
   ablations of DESIGN.md, and Bechamel micro-benchmarks of the pipeline
   stages.

   Run with:  dune exec bench/main.exe *)

module Report = Isched_harness.Report
module Suite = Isched_perfect.Suite
module Machine = Isched_ir.Machine
module Table = Isched_util.Table

let line = String.make 78 '='

let section title = Printf.printf "\n%s\n== %s\n%s\n\n" line title line

(* --- figures --- *)

let fig_1_to_4 () =
  section "Figs. 1-4 - the paper's worked example, reproduced end to end";
  print_string (Isched_harness.Worked_example.report ())

(* --- tables --- *)

let tables benches =
  section "Table 1 - characteristics of the benchmark corpora";
  Table.print (Report.table1 benches);
  print_endline
    "(Perfect surrogates: deterministic corpora matching the paper's structural statistics;\n\
     FLQ52, QCD and TRACK all-LBD, MDG and ADM mixed, LBDs almost all flow dependences.)";
  let ms = Report.measure benches Machine.paper_configs in
  section "Table 2 - total parallel execution time (100 iterations per loop)";
  Table.print (Report.table2 ms);
  section "Table 3 - improved percentage of parallel execution time";
  Table.print (Report.table3 ms);
  let two, four = Report.overall ms in
  Printf.printf
    "\nOverall enhancement: %.2f%% for 2-issue and %.2f%% for 4-issue\n\
     (the paper reports about 83.37%% and 85.1%%).\n"
    two four;
  section "DOACROSS loop categories (Chen & Yew's six types, Section 4.1)";
  Table.print (Report.categories benches)

let ablations benches =
  section "Ablation A1 - damage ordering of synchronization paths";
  Table.print (Report.ablation_order benches);
  section "Ablation A2 - redundant-synchronization elimination";
  Table.print (Report.ablation_elimination benches);
  section "Ablation A3 - statement-level synchronization migration";
  Table.print (Report.ablation_migration benches);
  section "Sweep A4 - beyond the paper's four machine configurations";
  Table.print (Report.sweep benches);
  section "Ablation A5 - list vs marker-guided (ISPAN'94) vs new scheduling";
  Table.print (Report.ablation_markers benches);
  section "Unroll study - DOACROSS unrolling under the new scheduler";
  Table.print (Report.unroll_study ());
  section "Processor sweep - limited pools with cyclic iteration assignment";
  Table.print (Report.processor_sweep benches);
  section "Register study - spill traffic vs register-file size";
  Table.print (Report.register_study benches);
  section "Architecture comparison - software pipelining vs DOACROSS multiprocessing";
  Table.print (Report.architecture_comparison benches)

(* --- Bechamel micro-benchmarks --- *)

let micro () =
  section "Bechamel micro-benchmarks of the pipeline stages";
  let open Bechamel in
  let fig1 = Isched_harness.Worked_example.fig1_loop () in
  let prog = Isched_harness.Worked_example.fig2_program () in
  let graph = Isched_dfg.Dfg.build prog in
  let m4 = Machine.make ~issue:4 ~nfu:1 () in
  let small_benches =
    List.map
      (fun p -> Suite.load { p with Isched_perfect.Profile.n_generated = 2 })
      Isched_perfect.Profile.all
  in
  let sched_new = Isched_core.Sync_sched.run graph m4 in
  let tests =
    [
      (* One benchmark per reproduced artefact, as DESIGN.md indexes
         them, plus the stage micro-benchmarks. *)
      Test.make ~name:"table1-corpus-statistics"
        (Staged.stage (fun () -> ignore (Report.table1 small_benches)));
      Test.make ~name:"table2-measure-one-config"
        (Staged.stage (fun () ->
             ignore (Report.measure small_benches [ ("4-issue(#FU=1)", m4) ])));
      Test.make ~name:"table3-improvement-metric"
        (Staged.stage (fun () -> ignore (Report.improvement ~t_list:57790 ~t_new:47329)));
      Test.make ~name:"fig4-list-scheduling"
        (Staged.stage (fun () -> ignore (Isched_core.List_sched.run graph m4)));
      Test.make ~name:"fig4-new-scheduling"
        (Staged.stage (fun () -> ignore (Isched_core.Sync_sched.run graph m4)));
      Test.make ~name:"stage-dependence-analysis"
        (Staged.stage (fun () -> ignore (Isched_deps.Dep.analyze fig1)));
      Test.make ~name:"stage-codegen"
        (Staged.stage (fun () -> ignore (Isched_codegen.Codegen.compile fig1)));
      Test.make ~name:"stage-dfg-build"
        (Staged.stage (fun () -> ignore (Isched_dfg.Dfg.build prog)));
      Test.make ~name:"stage-timing-simulation"
        (Staged.stage (fun () -> ignore (Isched_sim.Timing.run sched_new)));
      Test.make ~name:"stage-value-simulation"
        (Staged.stage (fun () -> ignore (Isched_sim.Value.run sched_new)));
    ]
  in
  let test = Test.make_grouped ~name:"isched" ~fmt:"%s/%s" tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:(Some 256) () in
  let raw_results = Benchmark.all cfg [ instance ] test in
  let results = Analyze.all ols instance raw_results in
  Hashtbl.fold (fun name result acc -> (name, result) :: acc) results []
  |> List.sort compare
  |> List.iter (fun (name, result) ->
         match Analyze.OLS.estimates result with
         | Some [ est ] -> Printf.printf "  %-40s %14.1f ns/run\n" name est
         | Some _ | None -> Printf.printf "  %-40s (no estimate)\n" name)

(* SVG artifacts for the worked example: both schedulers' wavefronts
   and the new schedule's row layout. *)
let artifacts () =
  let dir = "artifacts" in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let write name contents =
    let path = Filename.concat dir name in
    let oc = open_out path in
    Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc contents);
    Printf.printf "wrote %s\n" path
  in
  let prog = Isched_harness.Worked_example.fig2_program () in
  let g = Isched_dfg.Dfg.build prog in
  let m = Machine.make ~issue:4 ~nfu:1 () in
  let s_list = Isched_core.List_sched.run g m in
  let s_new = Isched_core.Sync_sched.run g m in
  write "fig4-list-wavefront.svg" (Isched_sim.Viz.wavefront_svg ~max_iters:20 s_list);
  write "fig4-new-wavefront.svg" (Isched_sim.Viz.wavefront_svg ~max_iters:20 s_new);
  write "fig4-new-schedule.svg" (Isched_sim.Viz.schedule_svg s_new)

let () =
  let t0 = Unix.gettimeofday () in
  fig_1_to_4 ();
  let benches = Suite.all () in
  tables benches;
  ablations benches;
  micro ();
  artifacts ();
  Printf.printf "\nTotal bench time: %.1f s\n" (Unix.gettimeofday () -. t0)
