(* Tests for the observability layer: span recording and export,
   counter/distribution semantics, and domain-safety of both. *)

module Span = Isched_obs.Span
module Counters = Isched_obs.Counters

let check = Alcotest.check

(* A minimal strict JSON parser — enough to assert that the exported
   trace is well-formed (what Perfetto requires before it renders
   anything).  Raises [Failure] on any malformation. *)
module Json = struct
  let parse (s : string) =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = failwith (Printf.sprintf "json: %s at %d" msg !pos) in
    let peek () = if !pos >= n then fail "eof" else s.[!pos] in
    let advance () = incr pos in
    let rec skip_ws () =
      if !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) then begin
        advance ();
        skip_ws ()
      end
    in
    let expect c = if peek () <> c then fail (Printf.sprintf "expected %c" c) else advance () in
    let parse_lit lit =
      String.iter (fun c -> if peek () <> c then fail ("bad literal " ^ lit) else advance ()) lit
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        match peek () with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (match peek () with
          | '"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't' -> advance ()
          | 'u' ->
            advance ();
            for _ = 1 to 4 do
              (match peek () with
              | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> ()
              | _ -> fail "bad \\u escape");
              advance ()
            done
          | _ -> fail "bad escape");
          go ()
        | c when Char.code c < 0x20 -> fail "raw control char in string"
        | c ->
          Buffer.add_char b c;
          advance ();
          go ()
      in
      go ();
      Buffer.contents b
    in
    let parse_number () =
      let start = !pos in
      if peek () = '-' then advance ();
      while
        !pos < n
        && match s.[!pos] with '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true | _ -> false
      do
        advance ()
      done;
      if !pos = start then fail "bad number";
      ignore (float_of_string (String.sub s start (!pos - start)))
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then advance ()
        else
          let rec members () =
            skip_ws ();
            ignore (parse_string ());
            skip_ws ();
            expect ':';
            parse_value ();
            skip_ws ();
            match peek () with
            | ',' ->
              advance ();
              members ()
            | '}' -> advance ()
            | _ -> fail "expected , or }"
          in
          members ()
      | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then advance ()
        else
          let rec elements () =
            parse_value ();
            skip_ws ();
            match peek () with
            | ',' ->
              advance ();
              elements ()
            | ']' -> advance ()
            | _ -> fail "expected , or ]"
          in
          elements ()
      | '"' -> ignore (parse_string ())
      | 't' -> parse_lit "true"
      | 'f' -> parse_lit "false"
      | 'n' -> parse_lit "null"
      | _ -> parse_number ()
    in
    parse_value ();
    skip_ws ();
    if !pos <> n then fail "trailing garbage"
end

(* Every test runs against the process-wide singletons, so each starts
   from a clean slate. *)
let fresh () =
  Span.set_enabled false;
  Span.reset ();
  Counters.set_enabled true;
  Counters.reset ()

(* --- spans --- *)

let test_span_disabled_records_nothing () =
  fresh ();
  let r = Span.with_ ~name:"nothing" (fun () -> 41 + 1) in
  check Alcotest.int "result passes through" 42 r;
  check Alcotest.int "no events" 0 (List.length (Span.events ()))

let test_span_records_when_enabled () =
  fresh ();
  Span.set_enabled true;
  ignore (Span.with_ ~name:"outer" ~args:[ ("k", "v") ] (fun () -> Span.with_ ~name:"inner" Fun.id));
  Span.set_enabled false;
  match Span.events () with
  | [ inner; outer ] ->
    (* Completion order: the inner span finishes first. *)
    check Alcotest.string "inner name" "inner" inner.Span.name;
    check Alcotest.string "outer name" "outer" outer.Span.name;
    check (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string)) "args kept" [ ("k", "v") ]
      outer.Span.args;
    Alcotest.(check bool) "inner nested in outer" true
      (inner.Span.ts_us >= outer.Span.ts_us
      && inner.Span.ts_us +. inner.Span.dur_us <= outer.Span.ts_us +. outer.Span.dur_us +. 0.001)
  | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs)

let test_span_survives_exception () =
  fresh ();
  Span.set_enabled true;
  (try Span.with_ ~name:"boom" (fun () -> failwith "x") with Failure _ -> ());
  Span.set_enabled false;
  check Alcotest.int "span recorded despite raise" 1 (List.length (Span.events ()))

let test_span_export_is_valid_json () =
  fresh ();
  Span.set_enabled true;
  ignore
    (Span.with_ ~name:{|tricky "name"
with newline\and backslash|}
       ~args:[ ("arg\twith\ttabs", "va\"lue") ]
       (fun () -> ()));
  Span.set_enabled false;
  let json = Span.export_json () in
  (try Json.parse json with Failure m -> Alcotest.failf "export not valid JSON: %s" m);
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool) "has traceEvents key" true (contains "\"traceEvents\"" json)

let test_span_reset () =
  fresh ();
  Span.set_enabled true;
  ignore (Span.with_ ~name:"a" Fun.id);
  Span.reset ();
  check Alcotest.int "reset drops events" 0 (List.length (Span.events ()));
  Span.set_enabled false

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
  at 0

let test_span_reset_restarts_epoch () =
  (* Regression: reset used to clear the log but keep the old epoch, so
     post-reset spans carried timestamps offset by the whole previous
     run.  After a reset the first span must sit near t = 0 again. *)
  fresh ();
  Span.set_enabled true;
  ignore (Span.with_ ~name:"before" Fun.id);
  Unix.sleepf 0.1;
  Span.reset ();
  ignore (Span.with_ ~name:"after" Fun.id);
  Span.set_enabled false;
  match Span.events () with
  | [ ev ] ->
    check Alcotest.string "post-reset span kept" "after" ev.Span.name;
    Alcotest.(check bool) "timestamp restarts at the reset, not the first enable" true
      (ev.Span.ts_us < 50_000.0)
  | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs)

let test_span_log_bounded () =
  fresh ();
  Span.set_enabled true;
  Span.set_capacity 3;
  Fun.protect ~finally:(fun () ->
      Span.set_enabled false;
      Span.set_capacity (1 lsl 20);
      Span.reset ())
  @@ fun () ->
  for i = 1 to 5 do
    check Alcotest.int "thunk still runs when full" i
      (Span.with_ ~name:(Printf.sprintf "s%d" i) (fun () -> i))
  done;
  check Alcotest.int "log capped" 3 (List.length (Span.events ()));
  check Alcotest.int "overflow counted" 2 (Span.dropped_events ());
  Span.reset ();
  check Alcotest.int "reset clears the drop count" 0 (Span.dropped_events ());
  Alcotest.check_raises "capacity must be positive"
    (Invalid_argument "Span.set_capacity: capacity must be >= 1") (fun () ->
      Span.set_capacity 0)

(* --- counters --- *)

let test_counter_basics () =
  fresh ();
  let c = Counters.counter "test.basic" in
  check Alcotest.int "starts at 0" 0 (Counters.value c);
  Counters.incr c;
  Counters.add c 10;
  check Alcotest.int "incr + add" 11 (Counters.value c);
  let c' = Counters.counter "test.basic" in
  Counters.incr c';
  check Alcotest.int "same name, same counter" 12 (Counters.value c)

let test_counter_disabled () =
  fresh ();
  let c = Counters.counter "test.disabled" in
  Counters.set_enabled false;
  Counters.incr c;
  Counters.add c 5;
  Counters.set_enabled true;
  check Alcotest.int "no-ops while disabled" 0 (Counters.value c)

let test_dist_stats () =
  fresh ();
  let d = Counters.dist "test.dist" in
  List.iter (Counters.observe d) [ 3; -2; 7; 3; 100 ];
  let s = Counters.dist_stats d in
  check Alcotest.int "count" 5 s.Counters.count;
  check Alcotest.int "sum" 111 s.Counters.sum;
  check Alcotest.int "min" (-2) s.Counters.min_v;
  check Alcotest.int "max" 100 s.Counters.max_v;
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "buckets: negatives at -1, exacts, overflow at 64"
    [ (-1, 1); (3, 2); (7, 1); (64, 1) ]
    s.Counters.buckets

let test_registry_kind_conflict () =
  fresh ();
  ignore (Counters.counter "test.kind");
  Alcotest.check_raises "dist on a counter name"
    (Invalid_argument "Counters.dist: test.kind is a counter") (fun () ->
      ignore (Counters.dist "test.kind"))

let test_snapshot_sorted_and_complete () =
  fresh ();
  ignore (Counters.counter "test.zz");
  ignore (Counters.counter "test.aa");
  let names = List.map fst (Counters.snapshot ()) in
  Alcotest.(check bool) "sorted" true (names = List.sort compare names);
  Alcotest.(check bool) "contains both" true
    (List.mem "test.aa" names && List.mem "test.zz" names);
  (match Counters.find "test.aa" with
  | Some (Counters.Counter 0) -> ()
  | _ -> Alcotest.fail "find test.aa");
  check (Alcotest.option Alcotest.reject) "find unknown" None
    (Counters.find "test.does-not-exist")

let test_reset_keeps_handles () =
  fresh ();
  let c = Counters.counter "test.reset" in
  let d = Counters.dist "test.reset.d" in
  Counters.add c 7;
  Counters.observe d 1;
  Counters.reset ();
  check Alcotest.int "counter zeroed" 0 (Counters.value c);
  check Alcotest.int "dist zeroed" 0 (Counters.dist_stats d).Counters.count;
  Counters.incr c;
  check Alcotest.int "handle still live" 1 (Counters.value c)

let test_counters_json_valid () =
  fresh ();
  let c = Counters.counter "test.json" in
  Counters.add c 3;
  Counters.observe (Counters.dist "test.json.d") 5;
  let json = Counters.to_json () in
  try Json.parse json with Failure m -> Alcotest.failf "to_json not valid JSON: %s" m

let test_counters_json_escapes_names () =
  (* Regression: names containing quotes, backslashes or control
     characters used to be emitted raw, breaking the whole document. *)
  fresh ();
  Counters.add (Counters.counter {|test.tricky "quoted"\name|}) 1;
  Counters.observe (Counters.dist "test.tricky\tdist\n") 2;
  let json = Counters.to_json () in
  (try Json.parse json with Failure m -> Alcotest.failf "escaped names broke JSON: %s" m);
  Alcotest.(check bool) "quote escaped" true (contains {|\"quoted\"|} json)

let test_counters_json_has_buckets () =
  (* Regression: distributions exported only count/sum/min/max — the
     buckets (the whole point of a distribution) were dropped. *)
  fresh ();
  let d = Counters.dist "test.bucketed" in
  List.iter (Counters.observe d) [ 3; 3; -2; 100 ];
  let json = Counters.to_json () in
  (try Json.parse json with Failure m -> Alcotest.failf "not valid JSON: %s" m);
  Alcotest.(check bool) "buckets key present" true (contains "\"buckets\"" json);
  Alcotest.(check bool) "exact bucket" true (contains "[3, 2]" json);
  Alcotest.(check bool) "negative bucket" true (contains "[-1, 1]" json);
  Alcotest.(check bool) "overflow bucket" true (contains "[64, 1]" json)

(* --- domain safety --- *)

let test_domain_safety () =
  fresh ();
  Span.set_enabled true;
  let c = Counters.counter "test.domains" in
  let d = Counters.dist "test.domains.d" in
  let per_domain = 5_000 in
  let work () =
    for i = 1 to per_domain do
      Counters.incr c;
      Counters.observe d (i mod 7);
      if i mod 1000 = 0 then ignore (Span.with_ ~name:"test.domain-span" Fun.id)
    done
  in
  let domains = Array.init 4 (fun _ -> Domain.spawn work) in
  work ();
  Array.iter Domain.join domains;
  Span.set_enabled false;
  check Alcotest.int "no lost increments" (5 * per_domain) (Counters.value c);
  let s = Counters.dist_stats d in
  check Alcotest.int "no lost observations" (5 * per_domain) s.Counters.count;
  check Alcotest.int "all spans recorded" (5 * (per_domain / 1000))
    (List.length (Span.events ()));
  try Json.parse (Span.export_json ())
  with Failure m -> Alcotest.failf "concurrent export not valid JSON: %s" m

let test_sharded_merge_across_domains () =
  fresh ();
  (* The counters keep per-domain shards and merge them at read time;
     after eight writer domains join, the merged view must equal the
     shard sum exactly — lost updates or a shard skipped by the merge
     would show up as a shortfall here. *)
  let c = Counters.counter "test.shards" in
  let d = Counters.dist "test.shards.d" in
  let per_domain = 10_000 in
  let work () =
    for i = 1 to per_domain do
      Counters.incr c;
      Counters.observe d (i mod 10)
    done
  in
  let domains = Array.init 8 (fun _ -> Domain.spawn work) in
  Array.iter Domain.join domains;
  check Alcotest.int "value equals the shard sum" (8 * per_domain) (Counters.value c);
  let s = Counters.dist_stats d in
  check Alcotest.int "count merged over all shards" (8 * per_domain) s.Counters.count;
  (* Each domain observes [i mod 10] for i in 1..10_000: 1000 full
     cycles of 0..9, so per-domain sum is 45_000. *)
  check Alcotest.int "sum merged" (8 * 45_000) s.Counters.sum;
  check Alcotest.int "min merged" 0 s.Counters.min_v;
  check Alcotest.int "max merged" 9 s.Counters.max_v;
  check Alcotest.int "bucket counts merged" (8 * per_domain)
    (List.fold_left (fun a (_, n) -> a + n) 0 s.Counters.buckets)

(* --- Prometheus exposition --- *)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_prometheus_exposition () =
  fresh ();
  let c = Counters.counter "test.prom.c" in
  let d = Counters.dist "test.prom.d" in
  Counters.add c 7;
  List.iter (Counters.observe d) [ -5; 0; 3; 70 ];
  Alcotest.(check string)
    "name mangling" "isched_serve_cache_hit"
    (Counters.prometheus_name "serve.cache.hit");
  let out = Counters.render_prometheus () in
  Alcotest.(check bool) "counter block" true
    (contains ~needle:"# TYPE isched_test_prom_c counter\nisched_test_prom_c 7\n" out);
  (* Cumulative buckets from the fixed scheme: negatives under le="-1",
     exact values, the >= 64 overflow only in +Inf; sum = -5+0+3+70. *)
  let expected_hist =
    "# TYPE isched_test_prom_d histogram\n\
     isched_test_prom_d_bucket{le=\"-1\"} 1\n\
     isched_test_prom_d_bucket{le=\"0\"} 2\n\
     isched_test_prom_d_bucket{le=\"3\"} 3\n\
     isched_test_prom_d_bucket{le=\"+Inf\"} 4\n\
     isched_test_prom_d_sum 68\n\
     isched_test_prom_d_count 4\n"
  in
  Alcotest.(check bool) "histogram block" true (contains ~needle:expected_hist out)

(* The satellite fix: renders must be deterministic whatever order the
   8-way shard merge (and concurrent registration) produced — pinned by
   hammering from 8 domains and diffing two renders byte for byte. *)
let test_render_deterministic_after_hammer () =
  fresh ();
  let per_domain = 2_000 in
  let work d () =
    (* Each domain registers its own metrics (registration order is
       racy by construction) and hammers a shared one. *)
    let own = Counters.counter (Printf.sprintf "test.render.domain%d" d) in
    let shared = Counters.dist "test.render.shared" in
    for i = 1 to per_domain do
      Counters.incr own;
      Counters.observe shared (i mod 80);
      (* Renders taken mid-hammer must not crash and stay sorted. *)
      if i mod 500 = 0 then ignore (Counters.render_prometheus ())
    done
  in
  let domains = Array.init 8 (fun d -> Domain.spawn (work d)) in
  Array.iter Domain.join domains;
  Alcotest.(check string) "two renders identical" (Counters.render ()) (Counters.render ());
  Alcotest.(check string) "two expositions identical" (Counters.render_prometheus ())
    (Counters.render_prometheus ());
  let names = List.map fst (Counters.snapshot ()) in
  Alcotest.(check bool) "snapshot byte-lexicographically sorted" true
    (List.sort String.compare names = names)

(* --- Rolling: sliding-window histograms --- *)

module Rolling = Isched_obs.Rolling

let rstats r now = Rolling.stats r ~now_ns:now

let test_rolling_rotation_deterministic () =
  (* Injected clock, 4 buckets of 1000 ns: advancing [now] by one epoch
     must drop exactly the one expired bucket, nothing else. *)
  let r = Rolling.create ~buckets:4 ~width_ns:1_000 () in
  let fill epoch count =
    for _ = 1 to count do
      Rolling.observe r ~now_ns:((epoch * 1_000) + 500) ~latency_ns:10 ~flagged:false
    done
  in
  fill 0 10;
  fill 1 20;
  fill 2 30;
  fill 3 40;
  check Alcotest.int "all four buckets live" 100 (rstats r 3_500).Rolling.count;
  check Alcotest.int "epoch 0 expired exactly" 90 (rstats r 4_500).Rolling.count;
  check Alcotest.int "epoch 1 expired exactly" 70 (rstats r 5_500).Rolling.count;
  check Alcotest.int "epoch 2 expired exactly" 40 (rstats r 6_500).Rolling.count;
  check Alcotest.int "everything expired" 0 (rstats r 7_500).Rolling.count;
  (* A new observation recycles the oldest slot without touching the
     still-live buckets. *)
  fill 4 5;
  check Alcotest.int "recycled slot joins live window" 95 (rstats r 4_500).Rolling.count;
  (* An observation older than every live bucket is dropped, not
     smeared into a newer one. *)
  Rolling.observe r ~now_ns:500 ~latency_ns:10 ~flagged:false;
  check Alcotest.int "stale observation dropped" 95 (rstats r 4_500).Rolling.count;
  Rolling.reset r;
  check Alcotest.int "reset empties the window" 0 (rstats r 4_500).Rolling.count

let test_rolling_quantiles_and_rate () =
  let r = Rolling.create () in
  (* Default 60 x 1 s window; all samples in one bucket, now half a
     second past the bucket start, so the covered span is exactly
     0.5 s. *)
  let base = 5_000_000_000 in
  let now = base + 500_000_000 in
  for v = 1 to 100 do
    Rolling.observe r ~now_ns:now ~latency_ns:v ~flagged:(v mod 4 = 0)
  done;
  let s = rstats r now in
  check Alcotest.int "count" 100 s.Rolling.count;
  check Alcotest.int "flagged" 25 s.Rolling.flagged;
  check (Alcotest.float 1e-9) "flagged ratio" 0.25 s.Rolling.flagged_ratio;
  check (Alcotest.float 1e-6) "rate over the covered span" 200. s.Rolling.rate;
  (* Bucketed quantiles report the covering bucket's upper bound: at
     least the true value, at most 25% above it (plus 1 for the
     smallest buckets). *)
  let within name truth got =
    if got < truth || float_of_int got > (float_of_int truth *. 1.25) +. 1. then
      Alcotest.failf "%s: true %d reported %d (outside [v, 1.25v+1])" name truth got
  in
  within "p50" 50 s.Rolling.p50_ns;
  within "p99" 99 s.Rolling.p99_ns;
  within "p999" 100 s.Rolling.p999_ns;
  (* Exact region: latencies below 16 ns have one bucket per value. *)
  let r2 = Rolling.create () in
  for v = 1 to 10 do
    Rolling.observe r2 ~now_ns:now ~latency_ns:v ~flagged:false
  done;
  check Alcotest.int "exact p50 below 16" 5 (rstats r2 now).Rolling.p50_ns;
  (* Renderer smoke: gauge lines with TYPE headers. *)
  let out = Rolling.render_prometheus ~name:"isched_test_window" r ~now_ns:now in
  Alcotest.(check bool) "p99 gauge present" true
    (contains ~needle:"# TYPE isched_test_window_p99_seconds gauge\n" out);
  Alcotest.(check bool) "count gauge present" true
    (contains ~needle:"isched_test_window_count 100\n" out)

(* --- Reqlog: the bounded request-trace ring --- *)

module Reqlog = Isched_obs.Reqlog
module Ojson = Isched_obs.Json

let mk_entry ?(total_ns = 1_000) ?(error = None) id =
  {
    Reqlog.id;
    start_ns = 1_000_000 + id;
    stage_ns = Array.make Reqlog.n_stages 0;
    total_ns;
    verdict = (if id mod 2 = 0 then Reqlog.Hit else Reqlog.Miss);
    digest = id * 17;
    scheduler = "new";
    sync_elim = false;
    error;
  }

let test_reqlog_hammer_no_dup_no_loss () =
  Counters.set_enabled true;
  Reqlog.reset ();
  Reqlog.set_capacity 256;
  Reqlog.set_slow_capacity 64;
  Reqlog.set_slow_threshold_ns 0;
  (* 8 domains drawing ids from one shared counter, 512 ids into a
     256-slot ring at capacity: every retained id distinct and in
     range, the ring exactly full, nothing torn. *)
  let next = Atomic.make 0 in
  let work () =
    for _ = 1 to 64 do
      Reqlog.record (mk_entry (Atomic.fetch_and_add next 1))
    done
  in
  let domains = Array.init 8 (fun _ -> Domain.spawn work) in
  Array.iter Domain.join domains;
  check Alcotest.int "all accepted" 512 (Reqlog.recorded ());
  let entries = Reqlog.recent () in
  check Alcotest.int "ring exactly at capacity" 256 (List.length entries);
  let ids = List.map (fun e -> e.Reqlog.id) entries in
  let distinct = List.sort_uniq Int.compare ids in
  check Alcotest.int "no id duplicated" (List.length ids) (List.length distinct);
  List.iter
    (fun id -> if id < 0 || id >= 512 then Alcotest.failf "id %d out of range" id)
    ids;
  (* Newest first, and the limit is honoured. *)
  let top8 = Reqlog.recent ~limit:8 () in
  check Alcotest.int "limit honoured" 8 (List.length top8);
  Alcotest.(check bool) "newest first" true
    (List.sort (fun a b -> Int.compare b a) ids = ids);
  (* Threshold 0 promoted everything: the slow ring is full and
     distinct too. *)
  let slow = Reqlog.slow () in
  check Alcotest.int "slow ring at capacity" 64 (List.length slow);
  let sids = List.map (fun e -> e.Reqlog.id) slow in
  check Alcotest.int "slow ids distinct" (List.length sids)
    (List.length (List.sort_uniq Int.compare sids));
  Reqlog.set_slow_threshold_ns 100_000_000;
  Reqlog.set_capacity 1024;
  Reqlog.reset ()

let test_reqlog_slow_threshold () =
  Counters.set_enabled true;
  Reqlog.reset ();
  Reqlog.set_slow_threshold_ns 5_000;
  Reqlog.record (mk_entry ~total_ns:4_999 0);
  Reqlog.record (mk_entry ~total_ns:5_000 1);
  Reqlog.record (mk_entry ~total_ns:50_000 2);
  check Alcotest.int "all in the main ring" 3 (List.length (Reqlog.recent ()));
  check Alcotest.int "only >= threshold promoted" 2 (List.length (Reqlog.slow ()));
  Reqlog.set_slow_threshold_ns 100_000_000;
  Reqlog.reset ()

let test_reqlog_disabled_is_inert () =
  Reqlog.reset ();
  Counters.set_enabled false;
  Fun.protect
    ~finally:(fun () -> Counters.set_enabled true)
    (fun () ->
      for i = 0 to 9 do
        Reqlog.record (mk_entry i)
      done);
  check Alcotest.int "nothing accepted while disabled" 0 (Reqlog.recorded ());
  check Alcotest.int "ring untouched" 0 (List.length (Reqlog.recent ()))

let test_reqlog_entry_json () =
  let e = { (mk_entry 42) with Reqlog.error = None } in
  let v =
    match Ojson.parse (Reqlog.entry_json e) with
    | Ok v -> v
    | Error m -> Alcotest.failf "entry_json not valid JSON: %s" m
  in
  let f k = Option.bind (Ojson.member k v) Ojson.to_float in
  check (Alcotest.option (Alcotest.float 0.)) "id" (Some 42.) (f "id");
  check
    (Alcotest.option (Alcotest.float 0.))
    "start_ms is epoch milliseconds" (Some 1.) (f "start_ms");
  Alcotest.(check bool) "stages object keyed by stage names" true
    (match Option.bind (Ojson.member "stages" v) (Ojson.member "cache_probe") with
    | Some _ -> true
    | None -> false);
  Alcotest.(check bool) "error omitted when None" true (Ojson.member "error" v = None);
  let e' = { e with Reqlog.error = Some "internal" } in
  Alcotest.(check bool) "error present when set" true
    (match Ojson.parse (Reqlog.entry_json e') with
    | Ok v' -> Option.bind (Ojson.member "error" v') Ojson.to_str = Some "internal"
    | Error _ -> false)

let suite =
  [
    Alcotest.test_case "span: disabled records nothing" `Quick test_span_disabled_records_nothing;
    Alcotest.test_case "span: records nested spans with args" `Quick test_span_records_when_enabled;
    Alcotest.test_case "span: recorded despite exceptions" `Quick test_span_survives_exception;
    Alcotest.test_case "span: export is valid trace_event JSON" `Quick test_span_export_is_valid_json;
    Alcotest.test_case "span: reset drops events" `Quick test_span_reset;
    Alcotest.test_case "span: reset restarts the epoch" `Quick test_span_reset_restarts_epoch;
    Alcotest.test_case "span: log is bounded, drops counted" `Quick test_span_log_bounded;
    Alcotest.test_case "counters: incr/add/value and handle identity" `Quick test_counter_basics;
    Alcotest.test_case "counters: disabled means no-op" `Quick test_counter_disabled;
    Alcotest.test_case "counters: distribution stats and buckets" `Quick test_dist_stats;
    Alcotest.test_case "counters: name/kind conflicts rejected" `Quick test_registry_kind_conflict;
    Alcotest.test_case "counters: snapshot sorted, find works" `Quick test_snapshot_sorted_and_complete;
    Alcotest.test_case "counters: reset keeps handles valid" `Quick test_reset_keeps_handles;
    Alcotest.test_case "counters: to_json is valid JSON" `Quick test_counters_json_valid;
    Alcotest.test_case "counters: to_json escapes hostile names" `Quick
      test_counters_json_escapes_names;
    Alcotest.test_case "counters: to_json carries the buckets" `Quick
      test_counters_json_has_buckets;
    Alcotest.test_case "obs: counters and spans are domain-safe" `Quick test_domain_safety;
    Alcotest.test_case "counters: sharded value merges across 8 domains" `Quick
      test_sharded_merge_across_domains;
    Alcotest.test_case "counters: Prometheus exposition format" `Quick test_prometheus_exposition;
    Alcotest.test_case "counters: renders deterministic after 8-domain hammer" `Quick
      test_render_deterministic_after_hammer;
    Alcotest.test_case "rolling: deterministic-clock window rotation" `Quick
      test_rolling_rotation_deterministic;
    Alcotest.test_case "rolling: quantiles, flagged ratio and rate" `Quick
      test_rolling_quantiles_and_rate;
    Alcotest.test_case "reqlog: 8-domain hammer, no duplicate or lost ids" `Quick
      test_reqlog_hammer_no_dup_no_loss;
    Alcotest.test_case "reqlog: slow threshold promotes exactly at the bound" `Quick
      test_reqlog_slow_threshold;
    Alcotest.test_case "reqlog: disabled counters make record inert" `Quick
      test_reqlog_disabled_is_inert;
    Alcotest.test_case "reqlog: entry JSON schema" `Quick test_reqlog_entry_json;
  ]
