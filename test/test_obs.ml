(* Tests for the observability layer: span recording and export,
   counter/distribution semantics, and domain-safety of both. *)

module Span = Isched_obs.Span
module Counters = Isched_obs.Counters

let check = Alcotest.check

(* A minimal strict JSON parser — enough to assert that the exported
   trace is well-formed (what Perfetto requires before it renders
   anything).  Raises [Failure] on any malformation. *)
module Json = struct
  let parse (s : string) =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = failwith (Printf.sprintf "json: %s at %d" msg !pos) in
    let peek () = if !pos >= n then fail "eof" else s.[!pos] in
    let advance () = incr pos in
    let rec skip_ws () =
      if !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) then begin
        advance ();
        skip_ws ()
      end
    in
    let expect c = if peek () <> c then fail (Printf.sprintf "expected %c" c) else advance () in
    let parse_lit lit =
      String.iter (fun c -> if peek () <> c then fail ("bad literal " ^ lit) else advance ()) lit
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        match peek () with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (match peek () with
          | '"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't' -> advance ()
          | 'u' ->
            advance ();
            for _ = 1 to 4 do
              (match peek () with
              | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> ()
              | _ -> fail "bad \\u escape");
              advance ()
            done
          | _ -> fail "bad escape");
          go ()
        | c when Char.code c < 0x20 -> fail "raw control char in string"
        | c ->
          Buffer.add_char b c;
          advance ();
          go ()
      in
      go ();
      Buffer.contents b
    in
    let parse_number () =
      let start = !pos in
      if peek () = '-' then advance ();
      while
        !pos < n
        && match s.[!pos] with '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true | _ -> false
      do
        advance ()
      done;
      if !pos = start then fail "bad number";
      ignore (float_of_string (String.sub s start (!pos - start)))
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then advance ()
        else
          let rec members () =
            skip_ws ();
            ignore (parse_string ());
            skip_ws ();
            expect ':';
            parse_value ();
            skip_ws ();
            match peek () with
            | ',' ->
              advance ();
              members ()
            | '}' -> advance ()
            | _ -> fail "expected , or }"
          in
          members ()
      | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then advance ()
        else
          let rec elements () =
            parse_value ();
            skip_ws ();
            match peek () with
            | ',' ->
              advance ();
              elements ()
            | ']' -> advance ()
            | _ -> fail "expected , or ]"
          in
          elements ()
      | '"' -> ignore (parse_string ())
      | 't' -> parse_lit "true"
      | 'f' -> parse_lit "false"
      | 'n' -> parse_lit "null"
      | _ -> parse_number ()
    in
    parse_value ();
    skip_ws ();
    if !pos <> n then fail "trailing garbage"
end

(* Every test runs against the process-wide singletons, so each starts
   from a clean slate. *)
let fresh () =
  Span.set_enabled false;
  Span.reset ();
  Counters.set_enabled true;
  Counters.reset ()

(* --- spans --- *)

let test_span_disabled_records_nothing () =
  fresh ();
  let r = Span.with_ ~name:"nothing" (fun () -> 41 + 1) in
  check Alcotest.int "result passes through" 42 r;
  check Alcotest.int "no events" 0 (List.length (Span.events ()))

let test_span_records_when_enabled () =
  fresh ();
  Span.set_enabled true;
  ignore (Span.with_ ~name:"outer" ~args:[ ("k", "v") ] (fun () -> Span.with_ ~name:"inner" Fun.id));
  Span.set_enabled false;
  match Span.events () with
  | [ inner; outer ] ->
    (* Completion order: the inner span finishes first. *)
    check Alcotest.string "inner name" "inner" inner.Span.name;
    check Alcotest.string "outer name" "outer" outer.Span.name;
    check (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string)) "args kept" [ ("k", "v") ]
      outer.Span.args;
    Alcotest.(check bool) "inner nested in outer" true
      (inner.Span.ts_us >= outer.Span.ts_us
      && inner.Span.ts_us +. inner.Span.dur_us <= outer.Span.ts_us +. outer.Span.dur_us +. 0.001)
  | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs)

let test_span_survives_exception () =
  fresh ();
  Span.set_enabled true;
  (try Span.with_ ~name:"boom" (fun () -> failwith "x") with Failure _ -> ());
  Span.set_enabled false;
  check Alcotest.int "span recorded despite raise" 1 (List.length (Span.events ()))

let test_span_export_is_valid_json () =
  fresh ();
  Span.set_enabled true;
  ignore
    (Span.with_ ~name:{|tricky "name"
with newline\and backslash|}
       ~args:[ ("arg\twith\ttabs", "va\"lue") ]
       (fun () -> ()));
  Span.set_enabled false;
  let json = Span.export_json () in
  (try Json.parse json with Failure m -> Alcotest.failf "export not valid JSON: %s" m);
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool) "has traceEvents key" true (contains "\"traceEvents\"" json)

let test_span_reset () =
  fresh ();
  Span.set_enabled true;
  ignore (Span.with_ ~name:"a" Fun.id);
  Span.reset ();
  check Alcotest.int "reset drops events" 0 (List.length (Span.events ()));
  Span.set_enabled false

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
  at 0

let test_span_reset_restarts_epoch () =
  (* Regression: reset used to clear the log but keep the old epoch, so
     post-reset spans carried timestamps offset by the whole previous
     run.  After a reset the first span must sit near t = 0 again. *)
  fresh ();
  Span.set_enabled true;
  ignore (Span.with_ ~name:"before" Fun.id);
  Unix.sleepf 0.1;
  Span.reset ();
  ignore (Span.with_ ~name:"after" Fun.id);
  Span.set_enabled false;
  match Span.events () with
  | [ ev ] ->
    check Alcotest.string "post-reset span kept" "after" ev.Span.name;
    Alcotest.(check bool) "timestamp restarts at the reset, not the first enable" true
      (ev.Span.ts_us < 50_000.0)
  | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs)

let test_span_log_bounded () =
  fresh ();
  Span.set_enabled true;
  Span.set_capacity 3;
  Fun.protect ~finally:(fun () ->
      Span.set_enabled false;
      Span.set_capacity (1 lsl 20);
      Span.reset ())
  @@ fun () ->
  for i = 1 to 5 do
    check Alcotest.int "thunk still runs when full" i
      (Span.with_ ~name:(Printf.sprintf "s%d" i) (fun () -> i))
  done;
  check Alcotest.int "log capped" 3 (List.length (Span.events ()));
  check Alcotest.int "overflow counted" 2 (Span.dropped_events ());
  Span.reset ();
  check Alcotest.int "reset clears the drop count" 0 (Span.dropped_events ());
  Alcotest.check_raises "capacity must be positive"
    (Invalid_argument "Span.set_capacity: capacity must be >= 1") (fun () ->
      Span.set_capacity 0)

(* --- counters --- *)

let test_counter_basics () =
  fresh ();
  let c = Counters.counter "test.basic" in
  check Alcotest.int "starts at 0" 0 (Counters.value c);
  Counters.incr c;
  Counters.add c 10;
  check Alcotest.int "incr + add" 11 (Counters.value c);
  let c' = Counters.counter "test.basic" in
  Counters.incr c';
  check Alcotest.int "same name, same counter" 12 (Counters.value c)

let test_counter_disabled () =
  fresh ();
  let c = Counters.counter "test.disabled" in
  Counters.set_enabled false;
  Counters.incr c;
  Counters.add c 5;
  Counters.set_enabled true;
  check Alcotest.int "no-ops while disabled" 0 (Counters.value c)

let test_dist_stats () =
  fresh ();
  let d = Counters.dist "test.dist" in
  List.iter (Counters.observe d) [ 3; -2; 7; 3; 100 ];
  let s = Counters.dist_stats d in
  check Alcotest.int "count" 5 s.Counters.count;
  check Alcotest.int "sum" 111 s.Counters.sum;
  check Alcotest.int "min" (-2) s.Counters.min_v;
  check Alcotest.int "max" 100 s.Counters.max_v;
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "buckets: negatives at -1, exacts, overflow at 64"
    [ (-1, 1); (3, 2); (7, 1); (64, 1) ]
    s.Counters.buckets

let test_registry_kind_conflict () =
  fresh ();
  ignore (Counters.counter "test.kind");
  Alcotest.check_raises "dist on a counter name"
    (Invalid_argument "Counters.dist: test.kind is a counter") (fun () ->
      ignore (Counters.dist "test.kind"))

let test_snapshot_sorted_and_complete () =
  fresh ();
  ignore (Counters.counter "test.zz");
  ignore (Counters.counter "test.aa");
  let names = List.map fst (Counters.snapshot ()) in
  Alcotest.(check bool) "sorted" true (names = List.sort compare names);
  Alcotest.(check bool) "contains both" true
    (List.mem "test.aa" names && List.mem "test.zz" names);
  (match Counters.find "test.aa" with
  | Some (Counters.Counter 0) -> ()
  | _ -> Alcotest.fail "find test.aa");
  check (Alcotest.option Alcotest.reject) "find unknown" None
    (Counters.find "test.does-not-exist")

let test_reset_keeps_handles () =
  fresh ();
  let c = Counters.counter "test.reset" in
  let d = Counters.dist "test.reset.d" in
  Counters.add c 7;
  Counters.observe d 1;
  Counters.reset ();
  check Alcotest.int "counter zeroed" 0 (Counters.value c);
  check Alcotest.int "dist zeroed" 0 (Counters.dist_stats d).Counters.count;
  Counters.incr c;
  check Alcotest.int "handle still live" 1 (Counters.value c)

let test_counters_json_valid () =
  fresh ();
  let c = Counters.counter "test.json" in
  Counters.add c 3;
  Counters.observe (Counters.dist "test.json.d") 5;
  let json = Counters.to_json () in
  try Json.parse json with Failure m -> Alcotest.failf "to_json not valid JSON: %s" m

let test_counters_json_escapes_names () =
  (* Regression: names containing quotes, backslashes or control
     characters used to be emitted raw, breaking the whole document. *)
  fresh ();
  Counters.add (Counters.counter {|test.tricky "quoted"\name|}) 1;
  Counters.observe (Counters.dist "test.tricky\tdist\n") 2;
  let json = Counters.to_json () in
  (try Json.parse json with Failure m -> Alcotest.failf "escaped names broke JSON: %s" m);
  Alcotest.(check bool) "quote escaped" true (contains {|\"quoted\"|} json)

let test_counters_json_has_buckets () =
  (* Regression: distributions exported only count/sum/min/max — the
     buckets (the whole point of a distribution) were dropped. *)
  fresh ();
  let d = Counters.dist "test.bucketed" in
  List.iter (Counters.observe d) [ 3; 3; -2; 100 ];
  let json = Counters.to_json () in
  (try Json.parse json with Failure m -> Alcotest.failf "not valid JSON: %s" m);
  Alcotest.(check bool) "buckets key present" true (contains "\"buckets\"" json);
  Alcotest.(check bool) "exact bucket" true (contains "[3, 2]" json);
  Alcotest.(check bool) "negative bucket" true (contains "[-1, 1]" json);
  Alcotest.(check bool) "overflow bucket" true (contains "[64, 1]" json)

(* --- domain safety --- *)

let test_domain_safety () =
  fresh ();
  Span.set_enabled true;
  let c = Counters.counter "test.domains" in
  let d = Counters.dist "test.domains.d" in
  let per_domain = 5_000 in
  let work () =
    for i = 1 to per_domain do
      Counters.incr c;
      Counters.observe d (i mod 7);
      if i mod 1000 = 0 then ignore (Span.with_ ~name:"test.domain-span" Fun.id)
    done
  in
  let domains = Array.init 4 (fun _ -> Domain.spawn work) in
  work ();
  Array.iter Domain.join domains;
  Span.set_enabled false;
  check Alcotest.int "no lost increments" (5 * per_domain) (Counters.value c);
  let s = Counters.dist_stats d in
  check Alcotest.int "no lost observations" (5 * per_domain) s.Counters.count;
  check Alcotest.int "all spans recorded" (5 * (per_domain / 1000))
    (List.length (Span.events ()));
  try Json.parse (Span.export_json ())
  with Failure m -> Alcotest.failf "concurrent export not valid JSON: %s" m

let test_sharded_merge_across_domains () =
  fresh ();
  (* The counters keep per-domain shards and merge them at read time;
     after eight writer domains join, the merged view must equal the
     shard sum exactly — lost updates or a shard skipped by the merge
     would show up as a shortfall here. *)
  let c = Counters.counter "test.shards" in
  let d = Counters.dist "test.shards.d" in
  let per_domain = 10_000 in
  let work () =
    for i = 1 to per_domain do
      Counters.incr c;
      Counters.observe d (i mod 10)
    done
  in
  let domains = Array.init 8 (fun _ -> Domain.spawn work) in
  Array.iter Domain.join domains;
  check Alcotest.int "value equals the shard sum" (8 * per_domain) (Counters.value c);
  let s = Counters.dist_stats d in
  check Alcotest.int "count merged over all shards" (8 * per_domain) s.Counters.count;
  (* Each domain observes [i mod 10] for i in 1..10_000: 1000 full
     cycles of 0..9, so per-domain sum is 45_000. *)
  check Alcotest.int "sum merged" (8 * 45_000) s.Counters.sum;
  check Alcotest.int "min merged" 0 s.Counters.min_v;
  check Alcotest.int "max merged" 9 s.Counters.max_v;
  check Alcotest.int "bucket counts merged" (8 * per_domain)
    (List.fold_left (fun a (_, n) -> a + n) 0 s.Counters.buckets)

let suite =
  [
    Alcotest.test_case "span: disabled records nothing" `Quick test_span_disabled_records_nothing;
    Alcotest.test_case "span: records nested spans with args" `Quick test_span_records_when_enabled;
    Alcotest.test_case "span: recorded despite exceptions" `Quick test_span_survives_exception;
    Alcotest.test_case "span: export is valid trace_event JSON" `Quick test_span_export_is_valid_json;
    Alcotest.test_case "span: reset drops events" `Quick test_span_reset;
    Alcotest.test_case "span: reset restarts the epoch" `Quick test_span_reset_restarts_epoch;
    Alcotest.test_case "span: log is bounded, drops counted" `Quick test_span_log_bounded;
    Alcotest.test_case "counters: incr/add/value and handle identity" `Quick test_counter_basics;
    Alcotest.test_case "counters: disabled means no-op" `Quick test_counter_disabled;
    Alcotest.test_case "counters: distribution stats and buckets" `Quick test_dist_stats;
    Alcotest.test_case "counters: name/kind conflicts rejected" `Quick test_registry_kind_conflict;
    Alcotest.test_case "counters: snapshot sorted, find works" `Quick test_snapshot_sorted_and_complete;
    Alcotest.test_case "counters: reset keeps handles valid" `Quick test_reset_keeps_handles;
    Alcotest.test_case "counters: to_json is valid JSON" `Quick test_counters_json_valid;
    Alcotest.test_case "counters: to_json escapes hostile names" `Quick
      test_counters_json_escapes_names;
    Alcotest.test_case "counters: to_json carries the buckets" `Quick
      test_counters_json_has_buckets;
    Alcotest.test_case "obs: counters and spans are domain-safe" `Quick test_domain_safety;
    Alcotest.test_case "counters: sharded value merges across 8 domains" `Quick
      test_sharded_merge_across_domains;
  ]
