(* Tests for the mini-Fortran lexer, parser, AST printer and semantic
   checks. *)

module Lexer = Isched_frontend.Lexer
module Parser = Isched_frontend.Parser
module Ast = Isched_frontend.Ast
module Sema = Isched_frontend.Sema

let check = Alcotest.check

let fig1 =
  {|DOACROSS I = 1, 100
  S1: B[I] = A[I-2] + E[I+1]
  S2: G[I-3] = A[I-1] * E[I+2]
  S3: A[I] = B[I] + C[I+3]
ENDDO
|}

(* --- lexer --- *)

let toks src = List.map (fun (sp : Lexer.spanned) -> sp.Lexer.tok) (Lexer.tokenize src)

let test_lexer_keywords () =
  check Alcotest.bool "do" true (List.mem Lexer.TDo (toks "DO I = 1, 2\nENDDO"));
  check Alcotest.bool "doacross" true (List.mem Lexer.TDoacross (toks "DOACROSS I = 1, 2\nENDDO"));
  check Alcotest.bool "case-insensitive" true (List.mem Lexer.TDoacross (toks "doacross i = 1, 2\nenddo"))

let test_lexer_numbers () =
  check Alcotest.bool "int" true (List.mem (Lexer.TInt 42) (toks "A = 42"));
  check Alcotest.bool "float" true (List.mem (Lexer.TFloat 2.5) (toks "A = 2.5"))

let test_lexer_comments () =
  let t = toks "! a comment line\nA = 1 ! trailing\n" in
  check Alcotest.bool "comment stripped" false
    (List.exists (function Lexer.TIdent "comment" -> true | _ -> false) t);
  check Alcotest.bool "code kept" true (List.mem (Lexer.TInt 1) t)

let test_lexer_relops () =
  let t = toks "IF (A <= B)" in
  check Alcotest.bool "<=" true (List.mem Lexer.TLe t);
  let t = toks "IF (A <> B)" in
  check Alcotest.bool "<>" true (List.mem Lexer.TNe t);
  let t = toks "IF (A /= B)" in
  check Alcotest.bool "/=" true (List.mem Lexer.TNe t);
  let t = toks "IF (A == B)" in
  check Alcotest.bool "==" true (List.mem Lexer.TEq t)

let test_lexer_newline_collapse () =
  let t = toks "A = 1\n\n\nB = 2" in
  let newlines = List.length (List.filter (( = ) Lexer.TNewline) t) in
  check Alcotest.int "collapsed" 2 newlines (* one between, one final *)

let test_lexer_error () =
  Alcotest.(check bool) "illegal char" true
    (try
       ignore (Lexer.tokenize "A = 1 @ 2");
       false
     with Lexer.Error { line = 1; _ } -> true)

let test_lexer_positions () =
  match Lexer.tokenize "A = 1\nB2 = 2" with
  | _ :: _ :: _ :: _ :: { tok = Lexer.TIdent "B2"; line; col } :: _ ->
    check Alcotest.int "line" 2 line;
    check Alcotest.int "col" 1 col
  | _ -> Alcotest.fail "unexpected token stream"

(* --- parser --- *)

let test_parse_fig1 () =
  let l = Parser.parse_loop ~name:"fig1" fig1 in
  check Alcotest.int "3 statements" 3 (List.length l.Ast.body);
  check Alcotest.string "index" "I" l.Ast.index;
  check Alcotest.int "lo" 1 l.Ast.lo;
  check Alcotest.int "hi" 100 l.Ast.hi;
  check Alcotest.(list string) "labels" [ "S1"; "S2"; "S3" ]
    (List.map (fun (s : Ast.stmt) -> s.Ast.label) l.Ast.body)

let test_parse_auto_labels () =
  let l = Parser.parse_loop "DO I = 1, 4\n  A[I] = 1\n  B[I] = 2\nENDDO" in
  check Alcotest.(list string) "generated labels" [ "S1"; "S2" ]
    (List.map (fun (s : Ast.stmt) -> s.Ast.label) l.Ast.body)

let test_parse_paren_subscripts () =
  let l = Parser.parse_loop "DO I = 1, 4\n  A(I) = B(I-1) + 1\nENDDO" in
  match l.Ast.body with
  | [ { Ast.lhs = Ast.Larr ("A", Ast.Ivar); rhs = Ast.Bin (Ast.Add, Ast.Aref ("B", _), _); _ } ] ->
    ()
  | _ -> Alcotest.fail "parenthesised subscripts should parse like brackets"

let test_parse_guard () =
  let l = Parser.parse_loop "DO I = 1, 4\n  IF (A[I] > 0) B[I] = A[I] * 2\nENDDO" in
  match l.Ast.body with
  | [ { Ast.guard = Some { Ast.rel = Ast.Gt; _ }; _ } ] -> ()
  | _ -> Alcotest.fail "guard lost"

let test_parse_precedence () =
  let l = Parser.parse_loop "DO I = 1, 2\n  A[I] = 1 + 2 * 3\nENDDO" in
  match (List.hd l.Ast.body).Ast.rhs with
  | Ast.Bin (Ast.Add, Ast.Num 1., Ast.Bin (Ast.Mul, Ast.Num 2., Ast.Num 3.)) -> ()
  | e -> Alcotest.failf "wrong precedence: %s" (Format.asprintf "%a" Ast.pp_expr e)

let test_parse_parens_override () =
  let l = Parser.parse_loop "DO I = 1, 2\n  A[I] = (1 + 2) * 3\nENDDO" in
  match (List.hd l.Ast.body).Ast.rhs with
  | Ast.Bin (Ast.Mul, Ast.Bin (Ast.Add, _, _), Ast.Num 3.) -> ()
  | _ -> Alcotest.fail "parentheses ignored"

let test_parse_negative_bounds () =
  let l = Parser.parse_loop "DO I = -3, 5\n  A[I] = I\nENDDO" in
  check Alcotest.int "lo" (-3) l.Ast.lo;
  check Alcotest.int "hi" 5 l.Ast.hi

let test_parse_multiple_loops () =
  let ls = Parser.parse ~name:"f" "DO I = 1, 2\n A[I] = 1\nENDDO\nDO I = 1, 3\n B[I] = 2\nENDDO" in
  check Alcotest.int "two loops" 2 (List.length ls);
  check Alcotest.(list string) "names" [ "f.L1"; "f.L2" ]
    (List.map (fun (l : Ast.loop) -> l.Ast.name) ls)

let test_parse_index_is_ivar () =
  let l = Parser.parse_loop "DO J = 1, 2\n  A[J] = J + 1\nENDDO" in
  match (List.hd l.Ast.body).Ast.rhs with
  | Ast.Bin (Ast.Add, Ast.Ivar, Ast.Num 1.) -> ()
  | _ -> Alcotest.fail "loop variable should parse to Ivar"

let test_parse_error_missing_enddo () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Parser.parse_loop "DO I = 1, 2\n A[I] = 1\n");
       false
     with Parser.Error _ | Lexer.Error _ -> true)

let test_parse_error_garbage () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Parser.parse_loop "DO I = 1, 2\n A[I] + 1\nENDDO");
       false
     with Parser.Error _ -> true)

(* --- printer roundtrip --- *)

let test_roundtrip_fig1 () =
  let l = Parser.parse_loop ~name:"x" fig1 in
  let l2 = Parser.parse_loop ~name:"x" (Ast.loop_to_string l) in
  check Alcotest.int "same body size" (List.length l.Ast.body) (List.length l2.Ast.body);
  List.iter2
    (fun (a : Ast.stmt) (b : Ast.stmt) ->
      Alcotest.(check bool) "stmt equal" true
        (a.Ast.label = b.Ast.label && Ast.equal_expr a.Ast.rhs b.Ast.rhs))
    l.Ast.body l2.Ast.body

let roundtrip_generated =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:60 ~name:"parser: print/parse roundtrip on generated corpora"
       QCheck2.Gen.(int_range 0 10000)
       (fun seed ->
         let profile = { Isched_perfect.Profile.flq52 with seed; n_generated = 1 } in
         match Isched_perfect.Genloop.generate profile with
         | [ l ] ->
           let l2 = Parser.parse_loop ~name:l.Ast.name (Ast.loop_to_string l) in
           List.length l.Ast.body = List.length l2.Ast.body
           && List.for_all2
                (fun (a : Ast.stmt) (b : Ast.stmt) ->
                  Ast.equal_expr a.Ast.rhs b.Ast.rhs
                  && a.Ast.lhs = b.Ast.lhs
                  &&
                  match (a.Ast.guard, b.Ast.guard) with
                  | None, None -> true
                  | Some g1, Some g2 ->
                    g1.Ast.rel = g2.Ast.rel && Ast.equal_expr g1.Ast.lhs g2.Ast.lhs
                    && Ast.equal_expr g1.Ast.rhs g2.Ast.rhs
                  | _ -> false)
                l.Ast.body l2.Ast.body
         | _ -> false))

let parser_fuzz =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:500 ~name:"parser: random input never escapes Error exceptions"
       QCheck2.Gen.(string_size ~gen:(oneofl
         [ 'D'; 'O'; 'A'; 'I'; 'S'; '1'; '9'; '='; ','; '+'; '-'; '*'; '/'; '('; ')'; '[';
           ']'; ':'; '<'; '>'; ' '; '\n'; '!'; '.'; '@'; 'x' ]) (int_range 0 120))
       (fun src ->
         match Parser.parse ~name:"fuzz" src with
         | _loops -> true
         | exception (Parser.Error _ | Lexer.Error _) -> true
         | exception _ -> false))

(* --- sema --- *)

let test_sema_fig1_clean () =
  let l = Parser.parse_loop fig1 in
  check Alcotest.int "no errors" 0 (List.length (Sema.check l))

let test_sema_array_scalar_clash () =
  let l = Parser.parse_loop "DO I = 1, 2\n A[I] = A + 1\nENDDO" in
  Alcotest.(check bool) "clash reported" true (Sema.check l <> [])

let test_sema_empty_body () =
  let l = Ast.make_loop ~kind:Ast.Do ~index:"I" ~lo:1 ~hi:2 ~body:[] ~name:"e" in
  Alcotest.(check bool) "empty body reported" true (Sema.check l <> [])

let test_sema_empty_range () =
  let l = Parser.parse_loop "DO I = 5, 1\n A[I] = 1\nENDDO" in
  Alcotest.(check bool) "empty range reported" true (Sema.check l <> [])

let test_sema_duplicate_labels () =
  let l = Parser.parse_loop "DO I = 1, 2\n S1: A[I] = 1\n S1: B[I] = 2\nENDDO" in
  Alcotest.(check bool) "duplicate labels reported" true (Sema.check l <> [])

let test_sema_index_assigned () =
  let l = Parser.parse_loop "DO I = 1, 2\n I = 3\nENDDO" in
  Alcotest.(check bool) "index assignment reported" true (Sema.check l <> [])

let test_sema_one_level_indirection_ok () =
  let l = Parser.parse_loop "DO I = 1, 2\n A[IDX[I]] = 1\nENDDO" in
  check Alcotest.int "single indirection fine" 0 (List.length (Sema.check l))

let test_sema_deep_indirection_rejected () =
  let l = Parser.parse_loop "DO I = 1, 2\n A[IDX[JDX[I]]] = 1\nENDDO" in
  Alcotest.(check bool) "double indirection reported" true (Sema.check l <> [])

let test_source_lines () =
  let l = Parser.parse_loop fig1 in
  check Alcotest.int "header + 3 + enddo" 5 (Ast.source_lines l)

let test_iterations () =
  let l = Parser.parse_loop fig1 in
  check Alcotest.int "100 iterations" 100 (Ast.iterations l)

let test_rename_scalar () =
  let e = Ast.Bin (Ast.Add, Ast.Scalar "k", Ast.Aref ("A", Ast.Scalar "k")) in
  let e' = Ast.rename_scalar ~from:"k" ~into:(Ast.Num 7.) e in
  match e' with
  | Ast.Bin (Ast.Add, Ast.Num 7., Ast.Aref ("A", Ast.Num 7.)) -> ()
  | _ -> Alcotest.fail "substitution incomplete"

let suite =
  [
    ("lexer: keywords", `Quick, test_lexer_keywords);
    ("lexer: numbers", `Quick, test_lexer_numbers);
    ("lexer: comments", `Quick, test_lexer_comments);
    ("lexer: relational operators", `Quick, test_lexer_relops);
    ("lexer: newline collapsing", `Quick, test_lexer_newline_collapse);
    ("lexer: illegal character", `Quick, test_lexer_error);
    ("lexer: positions", `Quick, test_lexer_positions);
    ("parser: Fig. 1 loop", `Quick, test_parse_fig1);
    ("parser: auto labels", `Quick, test_parse_auto_labels);
    ("parser: parenthesised subscripts", `Quick, test_parse_paren_subscripts);
    ("parser: IF guards", `Quick, test_parse_guard);
    ("parser: operator precedence", `Quick, test_parse_precedence);
    ("parser: parentheses override", `Quick, test_parse_parens_override);
    ("parser: negative bounds", `Quick, test_parse_negative_bounds);
    ("parser: multiple loops per file", `Quick, test_parse_multiple_loops);
    ("parser: any index name maps to Ivar", `Quick, test_parse_index_is_ivar);
    ("parser: missing ENDDO", `Quick, test_parse_error_missing_enddo);
    ("parser: malformed statement", `Quick, test_parse_error_garbage);
    ("printer: Fig. 1 roundtrip", `Quick, test_roundtrip_fig1);
    roundtrip_generated;
    parser_fuzz;
    ("sema: Fig. 1 is clean", `Quick, test_sema_fig1_clean);
    ("sema: array/scalar clash", `Quick, test_sema_array_scalar_clash);
    ("sema: empty body", `Quick, test_sema_empty_body);
    ("sema: empty range", `Quick, test_sema_empty_range);
    ("sema: duplicate labels", `Quick, test_sema_duplicate_labels);
    ("sema: loop variable assigned", `Quick, test_sema_index_assigned);
    ("sema: one indirection level allowed", `Quick, test_sema_one_level_indirection_ok);
    ("sema: deep indirection rejected", `Quick, test_sema_deep_indirection_rejected);
    ("ast: source_lines", `Quick, test_source_lines);
    ("ast: iterations", `Quick, test_iterations);
    ("ast: rename_scalar", `Quick, test_rename_scalar);
  ]
