(* Tests for synchronization insertion, redundant-sync elimination and
   statement migration. *)

module Plan = Isched_sync.Plan
module Migrate = Isched_sync.Migrate
module Dep = Isched_deps.Dep
module Ast = Isched_frontend.Ast
module Parser = Isched_frontend.Parser

let check = Alcotest.check
let parse = Parser.parse_loop

let fig1 =
  "DOACROSS I = 1, 100\n\
  \ S1: B[I] = A[I-2] + E[I+1]\n\
  \ S2: G[I-3] = A[I-1] * E[I+2]\n\
  \ S3: A[I] = B[I] + C[I+3]\n\
   ENDDO"

(* --- Plan --- *)

let test_plan_fig1 () =
  let plan = Plan.build (parse fig1) in
  check Alcotest.int "one signal" 1 (Array.length plan.Plan.signals);
  check Alcotest.int "two pairs" 2 (Array.length plan.Plan.pairs);
  check Alcotest.string "signal labelled S3" "S3" plan.Plan.signals.(0).Plan.label;
  check Alcotest.(list int) "distances" [ 2; 1 ]
    (Array.to_list (Array.map (fun p -> p.Plan.distance) plan.Plan.pairs));
  check Alcotest.int "no LFD" 0 (Plan.n_lfd plan);
  check Alcotest.int "two LBD" 2 (Plan.n_lbd plan)

let test_plan_shared_signal () =
  (* Both waits reference the same signal: one send serves both, as in
     Fig. 1(b). *)
  let plan = Plan.build (parse fig1) in
  Array.iter
    (fun (p : Plan.pair) -> check Alcotest.int "same signal" 0 p.Plan.signal)
    plan.Plan.pairs

let test_plan_annotated_output () =
  let l = parse fig1 in
  let plan = Plan.build l in
  let s = Format.asprintf "%a" (fun ppf () -> Plan.pp_annotated ppf l plan) () in
  let has affix =
    let n = String.length s and m = String.length affix in
    let rec go i = i + m <= n && (String.sub s i m = affix || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "wait d=2" true (has "Wait_Signal(S3, I-2)");
  Alcotest.(check bool) "wait d=1" true (has "Wait_Signal(S3, I-1)");
  Alcotest.(check bool) "send" true (has "Send_Signal(S3)");
  (* The d=2 wait is printed before S1, the send after S3. *)
  let pos affix =
    let n = String.length s and m = String.length affix in
    let rec go i = if i + m > n then -1 else if String.sub s i m = affix then i else go (i + 1) in
    go 0
  in
  Alcotest.(check bool) "wait before its sink statement" true
    (pos "Wait_Signal(S3, I-2)" < pos "B[I]");
  Alcotest.(check bool) "send after its source statement" true (pos "Send_Signal(S3)" > pos "A[I] =")

let test_plan_unknown_distance_pinned () =
  let plan = Plan.build (parse "DOACROSS I = 1, 10\n A[IDX[I]] = A[IDX[I+1]] + 1\nENDDO") in
  Array.iter
    (fun (p : Plan.pair) -> check Alcotest.int "distance pinned to 1" 1 p.Plan.distance)
    plan.Plan.pairs

let test_plan_of_deps_subset () =
  let l = parse fig1 in
  let deps = Dep.carried_deps l in
  let one = [ List.hd deps ] in
  let plan = Plan.of_deps l one in
  check Alcotest.int "single pair" 1 (Array.length plan.Plan.pairs)

(* --- redundant-sync elimination (instruction-level, Isched_dfg.Reduce) --- *)

let compile ?eliminate src = Isched_codegen.Codegen.compile ?eliminate (parse src)

let n_waits (p : Isched_ir.Program.t) = Array.length p.Isched_ir.Program.waits

let test_eliminate_constant_cell () =
  (* A[5] accumulation: flow, anti and output dependences all at
     distance 1.  The flow wait's sink (the load) reaches both the other
     sinks through data arcs, so the anti and output waits are provably
     covered. *)
  let src = "DOACROSS I = 1, 50\n A[5] = A[5] + E[I]\nENDDO" in
  let full = compile src in
  let reduced = compile ~eliminate:true src in
  Alcotest.(check bool) "several waits initially" true (n_waits full >= 3);
  check Alcotest.int "one wait remains" 1 (n_waits reduced);
  Isched_ir.Program.validate reduced

let test_eliminate_keeps_fig1 () =
  let full = compile fig1 in
  let reduced = compile ~eliminate:true fig1 in
  check Alcotest.int "nothing redundant in Fig. 1" (n_waits full) (n_waits reduced)

let test_eliminate_statement_level_rule_rejected () =
  (* The statement-level Midkiff-Padua rule would drop the d=2 pair here
     (covered by the d=1 chain through textual order), but instruction
     scheduling can hoist the A[I-2] load above S2's wait, so the
     instruction-level test must keep it. *)
  let src =
    "DOACROSS I = 1, 50\n S1: A[I] = E[I]\n S2: B[I] = A[I-1]\n S3: C2[I] = B[I-1] + A[I-2]\nENDDO"
  in
  let full = compile src in
  let reduced = compile ~eliminate:true src in
  check Alcotest.int "all pairs kept" (n_waits full) (n_waits reduced)

let test_eliminate_redundant_waits_direct () =
  let p = compile "DOACROSS I = 1, 50\n A[5] = A[5] + E[I]\nENDDO" in
  let g = Isched_dfg.Dfg.build p in
  let redundant = Isched_dfg.Reduce.redundant_waits g in
  check Alcotest.int "two of three waits covered" 2 (List.length redundant)

let test_eliminate_sound_on_fig1_values () =
  let p = compile ~eliminate:true fig1 in
  let g = Isched_dfg.Dfg.build p in
  let m = Isched_ir.Machine.make ~issue:4 ~nfu:1 () in
  List.iter
    (fun s ->
      match Isched_harness.Equivalence.check_schedule p s with
      | Ok () -> ()
      | Error es -> Alcotest.failf "unsound: %s" (String.concat "; " es))
    [ Isched_core.List_sched.run g m; Isched_core.Sync_sched.run g m ]

(* --- post-codegen transitive reduction (Isched_sync.Elim) --- *)

module Elim = Isched_sync.Elim
module Prog = Isched_ir.Program
module Dfg = Isched_dfg.Dfg
module Pipeline = Isched_harness.Pipeline

let elim_of src =
  let p = compile src in
  let g = Dfg.build p in
  (p, Elim.run p g)

(* The pre-codegen plan-level pass (Reduce) only replaces UNguarded
   scalar reductions, so this kernel reaches codegen with flow, anti and
   output pairs on S — exactly the shape only the post-codegen pass can
   thin. *)
let guarded_sum = "DOACROSS I = 1, 50\n IF (E[I] > 0) S = S + Q[I] * C[I]\nENDDO"

let test_elim_constant_cell () =
  let p, r = elim_of "DOACROSS I = 1, 50\n A[5] = A[5] + E[I]\nENDDO" in
  Alcotest.(check bool) "several waits initially" true (n_waits p >= 3);
  check Alcotest.int "one wait remains" 1 (n_waits r.Elim.prog);
  check Alcotest.int "eliminations recorded" (n_waits p - 1) (List.length r.Elim.eliminated);
  Prog.validate r.Elim.prog

let test_elim_stronger_than_plan_level () =
  let plan_reduced = compile ~eliminate:true guarded_sum in
  let p, r = elim_of guarded_sum in
  check Alcotest.int "plan-level pass is blind to the guarded reduction" (n_waits p)
    (n_waits plan_reduced);
  check Alcotest.int "elim removes the anti and output waits" 2 (List.length r.Elim.eliminated);
  check Alcotest.int "one wait remains" 1 (n_waits r.Elim.prog);
  Prog.validate r.Elim.prog

let test_elim_keeps_fig1 () =
  let p, r = elim_of fig1 in
  check Alcotest.int "nothing eliminated" 0 (List.length r.Elim.eliminated);
  Alcotest.(check bool) "program returned unchanged" true (r.Elim.prog == p);
  Array.iteri
    (fun i j -> check Alcotest.int "identity index map" i j)
    r.Elim.index_map

let test_elim_statement_level_rule_rejected () =
  (* Same kernel as the Reduce test above: the statement-level
     Midkiff-Padua composition would drop the d=2 pair, which is unsound
     under instruction scheduling — the post-codegen pass must keep it
     too. *)
  let src =
    "DOACROSS I = 1, 50\n S1: A[I] = E[I]\n S2: B[I] = A[I-1]\n S3: C2[I] = B[I-1] + A[I-2]\nENDDO"
  in
  let _, r = elim_of src in
  check Alcotest.int "all pairs kept" 0 (List.length r.Elim.eliminated)

let test_elim_chain_distances () =
  List.iter
    (fun src ->
      let _, r = elim_of src in
      let removed = List.map (fun e -> e.Elim.wait.Prog.wait) r.Elim.eliminated in
      List.iter
        (fun (e : Elim.elimination) ->
          let total =
            List.fold_left (fun acc s -> acc + s.Elim.via_distance) 0 e.Elim.chain
          in
          check Alcotest.int "chain distances sum to the eliminated distance"
            e.Elim.wait.Prog.distance total;
          List.iter
            (fun (s : Elim.step) ->
              Alcotest.(check bool) "hops ride surviving waits only" false
                (List.mem s.Elim.via_wait removed))
            e.Elim.chain)
        r.Elim.eliminated)
    [ "DOACROSS I = 1, 50\n A[5] = A[5] + E[I]\nENDDO"; guarded_sum ]

let test_elim_index_map () =
  let p, r = elim_of guarded_sum in
  let dropped = Array.fold_left (fun acc j -> if j < 0 then acc + 1 else acc) 0 r.Elim.index_map in
  check Alcotest.int "dropped count matches the body shrink" dropped
    (Array.length p.Prog.body - Array.length r.Elim.prog.Prog.body);
  Array.iteri
    (fun i j ->
      if j >= 0 then begin
        let old_i = p.Prog.body.(i) and new_i = r.Elim.prog.Prog.body.(j) in
        check Alcotest.bool "sync-ness preserved" (Isched_ir.Instr.is_sync old_i)
          (Isched_ir.Instr.is_sync new_i);
        if not (Isched_ir.Instr.is_sync old_i) then
          Alcotest.(check bool) "non-sync instructions map unchanged" true (old_i = new_i)
      end
      else
        Alcotest.(check bool) "only Send/Wait instructions drop" true
          (Isched_ir.Instr.is_sync p.Prog.body.(i)))
    r.Elim.index_map

let test_elim_schedules_check () =
  (* Every elimination is machine-checked: the independent static
     analyzer plus the differential value-simulation oracle over all
     three schedulers on the reduced program. *)
  let _, r = elim_of guarded_sum in
  Alcotest.(check bool) "something was eliminated" true (r.Elim.eliminated <> []);
  let m = Isched_ir.Machine.make ~issue:4 ~nfu:1 () in
  List.iter
    (fun run ->
      let s = run r.Elim.graph m in
      (match Isched_check.Static.check ~graph:r.Elim.graph s with
      | Ok () -> ()
      | Error vs -> Alcotest.failf "static: %d violation(s)" (List.length vs));
      match Isched_harness.Equivalence.check_schedule r.Elim.prog s with
      | Ok () -> ()
      | Error es -> Alcotest.failf "oracle: %s" (String.concat "; " es))
    [ Isched_core.List_sched.run; Isched_core.Marker_sched.run; Isched_core.Sync_sched.run ]

(* Reachability in the K-iteration unfolding of the reduced program:
   intra-iteration edges are the reduced graph's arcs (data, memory and
   the surviving sync-condition arcs), cross-iteration edges are the
   surviving pairs' [Send@i -> Wait@(i+d)].  This is an independent
   re-derivation of what the pass promises, with none of its machinery
   shared. *)
let unfolded_reaches (rp : Prog.t) (rg : Dfg.t) ~src ~goal ~d =
  let n = Array.length rp.Prog.body in
  let visited = Array.make (n * (d + 1)) false in
  let q = Queue.create () in
  let push node iter =
    if iter <= d && not visited.((iter * n) + node) then begin
      visited.((iter * n) + node) <- true;
      Queue.push (node, iter) q
    end
  in
  push src 0;
  let found = ref false in
  while not (Queue.is_empty q) && not !found do
    let node, iter = Queue.pop q in
    if node = goal && iter = d then found := true
    else begin
      List.iter (fun (a : Dfg.arc) -> push a.Dfg.dst iter) (Dfg.succs_list rg node);
      Array.iter
        (fun (k : Prog.wait_info) ->
          if node = rp.Prog.signals.(k.Prog.signal).Prog.send_instr then
            push k.Prog.wait_instr (iter + k.Prog.distance))
        rp.Prog.waits
    end
  done;
  !found

let elim_random_closure =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:40
       ~name:"elim: eliminated orderings stay transitively derivable (unfolded graph)"
       QCheck2.Gen.(int_range 0 100000)
       (fun seed ->
         let profile = { Isched_perfect.Profile.mdg with seed; n_generated = 1 } in
         match Isched_perfect.Genloop.generate profile with
         | [ l ] -> (
           match Pipeline.prepare_uncached Pipeline.default_options l with
           | Pipeline.Doall _ -> true
           | Pipeline.Doacross { prog = p; graph = g; _ } ->
             let r = Elim.run p g in
             List.for_all
               (fun (e : Elim.elimination) ->
                 let w = e.Elim.wait in
                 let src = r.Elim.index_map.(p.Prog.signals.(w.Prog.signal).Prog.src_instr) in
                 src >= 0
                 && List.for_all
                      (fun goal ->
                        let goal = r.Elim.index_map.(goal) in
                        goal >= 0
                        && unfolded_reaches r.Elim.prog r.Elim.graph ~src ~goal
                             ~d:w.Prog.distance)
                      (Dfg.protected_of_wait p w))
               r.Elim.eliminated)
         | _ -> false))

let elim_random_values =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:30
       ~name:"elim: value simulation equals the sequential reference on generated loops"
       QCheck2.Gen.(pair (int_range 0 100000) (int_range 0 2))
       (fun (seed, which) ->
         let profile = { Isched_perfect.Profile.mdg with seed; n_generated = 1 } in
         match Isched_perfect.Genloop.generate profile with
         | [ l ] -> (
           let l = { l with Ast.hi = l.Ast.lo + 11 } in
           let options = { Pipeline.default_options with Pipeline.sync_elim = true } in
           match Pipeline.prepare_uncached options l with
           | Pipeline.Doall _ -> true
           | Pipeline.Doacross { prog; graph; _ } ->
             let m = Isched_ir.Machine.make ~issue:4 ~nfu:1 () in
             let s =
               match which with
               | 0 -> Isched_core.List_sched.run graph m
               | 1 -> Isched_core.Marker_sched.run graph m
               | _ -> Isched_core.Sync_sched.run graph m
             in
             Isched_harness.Equivalence.check_schedule prog s = Ok ())
         | _ -> false))

(* --- Migrate --- *)

let test_migrate_converts_lbd () =
  (* The source statement can legally hoist above the sink. *)
  let l = parse "DOACROSS I = 1, 50\n S1: B[I] = A[I-1]\n S2: A[I] = E[I]\nENDDO" in
  let l' = Migrate.reorder l in
  let labels = List.map (fun (s : Ast.stmt) -> s.Ast.label) l'.Ast.body in
  check Alcotest.(list string) "source hoisted" [ "S2"; "S1" ] labels;
  let deps = Dep.carried_deps l' in
  Alcotest.(check bool) "now lexically forward" true
    (List.for_all (fun (d : Dep.t) -> d.Dep.lexical = Dep.LFD) deps)

let test_migrate_respects_program_order () =
  (* S2 uses B[I] written by S1: the pair cannot be swapped even though
     doing so would convert the LBD on A. *)
  let l = parse "DOACROSS I = 1, 50\n S1: B[I] = A[I-1]\n S2: A[I] = B[I] + E[I]\nENDDO" in
  let l' = Migrate.reorder l in
  let labels = List.map (fun (s : Ast.stmt) -> s.Ast.label) l'.Ast.body in
  check Alcotest.(list string) "order kept" [ "S1"; "S2" ] labels

let test_migrate_preserves_semantics () =
  let src =
    "DOACROSS I = 1, 30\n\
    \ S1: B[I] = A[I-1]\n\
    \ S2: H[I] = E[I] * C[I]\n\
    \ S3: A[I] = E[I] + C[I+1]\n\
     ENDDO"
  in
  let l = parse src in
  let l' = Migrate.reorder l in
  let m1 = Isched_exec.Ast_interp.run l in
  let m2 = Isched_exec.Ast_interp.run l' in
  Alcotest.(check bool) "same final memory" true (Isched_exec.Memory.equal m1 m2)

let migrate_random_legal =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:60 ~name:"migrate: reordering preserves semantics on generated loops"
       QCheck2.Gen.(int_range 0 100000)
       (fun seed ->
         let profile = { Isched_perfect.Profile.track with seed; n_generated = 1; n_iters = 10 } in
         match Isched_perfect.Genloop.generate profile with
         | [ l ] ->
           let l = { l with Ast.hi = l.Ast.lo + 9 } in
           let l' = Migrate.reorder l in
           Isched_exec.Memory.equal (Isched_exec.Ast_interp.run l) (Isched_exec.Ast_interp.run l')
         | _ -> false))

let suite =
  [
    ("plan: Fig. 1 pairs and signal", `Quick, test_plan_fig1);
    ("plan: one send serves both waits", `Quick, test_plan_shared_signal);
    ("plan: annotated source (Fig. 1b)", `Quick, test_plan_annotated_output);
    ("plan: unknown distances pinned to 1", `Quick, test_plan_unknown_distance_pinned);
    ("plan: of_deps respects the subset", `Quick, test_plan_of_deps_subset);
    ("eliminate: constant-cell accumulation", `Quick, test_eliminate_constant_cell);
    ("eliminate: Fig. 1 keeps both pairs", `Quick, test_eliminate_keeps_fig1);
    ("eliminate: statement-level rule is rejected", `Quick, test_eliminate_statement_level_rule_rejected);
    ("eliminate: redundant_waits directly", `Quick, test_eliminate_redundant_waits_direct);
    ("eliminate: values preserved", `Quick, test_eliminate_sound_on_fig1_values);
    ("elim: constant-cell accumulation thinned", `Quick, test_elim_constant_cell);
    ("elim: strictly stronger than the plan-level pass", `Quick, test_elim_stronger_than_plan_level);
    ("elim: Fig. 1 untouched, identity map", `Quick, test_elim_keeps_fig1);
    ("elim: statement-level rule still rejected", `Quick, test_elim_statement_level_rule_rejected);
    ("elim: chain distances sum to d, hops survive", `Quick, test_elim_chain_distances);
    ("elim: index map is consistent", `Quick, test_elim_index_map);
    ("elim: schedules pass static + oracle", `Quick, test_elim_schedules_check);
    elim_random_closure;
    elim_random_values;
    ("migrate: converts LBD to LFD when legal", `Quick, test_migrate_converts_lbd);
    ("migrate: never breaks intra-iteration deps", `Quick, test_migrate_respects_program_order);
    ("migrate: semantics preserved", `Quick, test_migrate_preserves_semantics);
    migrate_random_legal;
  ]
