(* Tests for synchronization insertion, redundant-sync elimination and
   statement migration. *)

module Plan = Isched_sync.Plan
module Migrate = Isched_sync.Migrate
module Dep = Isched_deps.Dep
module Ast = Isched_frontend.Ast
module Parser = Isched_frontend.Parser

let check = Alcotest.check
let parse = Parser.parse_loop

let fig1 =
  "DOACROSS I = 1, 100\n\
  \ S1: B[I] = A[I-2] + E[I+1]\n\
  \ S2: G[I-3] = A[I-1] * E[I+2]\n\
  \ S3: A[I] = B[I] + C[I+3]\n\
   ENDDO"

(* --- Plan --- *)

let test_plan_fig1 () =
  let plan = Plan.build (parse fig1) in
  check Alcotest.int "one signal" 1 (Array.length plan.Plan.signals);
  check Alcotest.int "two pairs" 2 (Array.length plan.Plan.pairs);
  check Alcotest.string "signal labelled S3" "S3" plan.Plan.signals.(0).Plan.label;
  check Alcotest.(list int) "distances" [ 2; 1 ]
    (Array.to_list (Array.map (fun p -> p.Plan.distance) plan.Plan.pairs));
  check Alcotest.int "no LFD" 0 (Plan.n_lfd plan);
  check Alcotest.int "two LBD" 2 (Plan.n_lbd plan)

let test_plan_shared_signal () =
  (* Both waits reference the same signal: one send serves both, as in
     Fig. 1(b). *)
  let plan = Plan.build (parse fig1) in
  Array.iter
    (fun (p : Plan.pair) -> check Alcotest.int "same signal" 0 p.Plan.signal)
    plan.Plan.pairs

let test_plan_annotated_output () =
  let l = parse fig1 in
  let plan = Plan.build l in
  let s = Format.asprintf "%a" (fun ppf () -> Plan.pp_annotated ppf l plan) () in
  let has affix =
    let n = String.length s and m = String.length affix in
    let rec go i = i + m <= n && (String.sub s i m = affix || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "wait d=2" true (has "Wait_Signal(S3, I-2)");
  Alcotest.(check bool) "wait d=1" true (has "Wait_Signal(S3, I-1)");
  Alcotest.(check bool) "send" true (has "Send_Signal(S3)");
  (* The d=2 wait is printed before S1, the send after S3. *)
  let pos affix =
    let n = String.length s and m = String.length affix in
    let rec go i = if i + m > n then -1 else if String.sub s i m = affix then i else go (i + 1) in
    go 0
  in
  Alcotest.(check bool) "wait before its sink statement" true
    (pos "Wait_Signal(S3, I-2)" < pos "B[I]");
  Alcotest.(check bool) "send after its source statement" true (pos "Send_Signal(S3)" > pos "A[I] =")

let test_plan_unknown_distance_pinned () =
  let plan = Plan.build (parse "DOACROSS I = 1, 10\n A[IDX[I]] = A[IDX[I+1]] + 1\nENDDO") in
  Array.iter
    (fun (p : Plan.pair) -> check Alcotest.int "distance pinned to 1" 1 p.Plan.distance)
    plan.Plan.pairs

let test_plan_of_deps_subset () =
  let l = parse fig1 in
  let deps = Dep.carried_deps l in
  let one = [ List.hd deps ] in
  let plan = Plan.of_deps l one in
  check Alcotest.int "single pair" 1 (Array.length plan.Plan.pairs)

(* --- redundant-sync elimination (instruction-level, Isched_dfg.Reduce) --- *)

let compile ?eliminate src = Isched_codegen.Codegen.compile ?eliminate (parse src)

let n_waits (p : Isched_ir.Program.t) = Array.length p.Isched_ir.Program.waits

let test_eliminate_constant_cell () =
  (* A[5] accumulation: flow, anti and output dependences all at
     distance 1.  The flow wait's sink (the load) reaches both the other
     sinks through data arcs, so the anti and output waits are provably
     covered. *)
  let src = "DOACROSS I = 1, 50\n A[5] = A[5] + E[I]\nENDDO" in
  let full = compile src in
  let reduced = compile ~eliminate:true src in
  Alcotest.(check bool) "several waits initially" true (n_waits full >= 3);
  check Alcotest.int "one wait remains" 1 (n_waits reduced);
  Isched_ir.Program.validate reduced

let test_eliminate_keeps_fig1 () =
  let full = compile fig1 in
  let reduced = compile ~eliminate:true fig1 in
  check Alcotest.int "nothing redundant in Fig. 1" (n_waits full) (n_waits reduced)

let test_eliminate_statement_level_rule_rejected () =
  (* The statement-level Midkiff-Padua rule would drop the d=2 pair here
     (covered by the d=1 chain through textual order), but instruction
     scheduling can hoist the A[I-2] load above S2's wait, so the
     instruction-level test must keep it. *)
  let src =
    "DOACROSS I = 1, 50\n S1: A[I] = E[I]\n S2: B[I] = A[I-1]\n S3: C2[I] = B[I-1] + A[I-2]\nENDDO"
  in
  let full = compile src in
  let reduced = compile ~eliminate:true src in
  check Alcotest.int "all pairs kept" (n_waits full) (n_waits reduced)

let test_eliminate_redundant_waits_direct () =
  let p = compile "DOACROSS I = 1, 50\n A[5] = A[5] + E[I]\nENDDO" in
  let g = Isched_dfg.Dfg.build p in
  let redundant = Isched_dfg.Reduce.redundant_waits g in
  check Alcotest.int "two of three waits covered" 2 (List.length redundant)

let test_eliminate_sound_on_fig1_values () =
  let p = compile ~eliminate:true fig1 in
  let g = Isched_dfg.Dfg.build p in
  let m = Isched_ir.Machine.make ~issue:4 ~nfu:1 () in
  List.iter
    (fun s ->
      match Isched_harness.Equivalence.check_schedule p s with
      | Ok () -> ()
      | Error es -> Alcotest.failf "unsound: %s" (String.concat "; " es))
    [ Isched_core.List_sched.run g m; Isched_core.Sync_sched.run g m ]

(* --- Migrate --- *)

let test_migrate_converts_lbd () =
  (* The source statement can legally hoist above the sink. *)
  let l = parse "DOACROSS I = 1, 50\n S1: B[I] = A[I-1]\n S2: A[I] = E[I]\nENDDO" in
  let l' = Migrate.reorder l in
  let labels = List.map (fun (s : Ast.stmt) -> s.Ast.label) l'.Ast.body in
  check Alcotest.(list string) "source hoisted" [ "S2"; "S1" ] labels;
  let deps = Dep.carried_deps l' in
  Alcotest.(check bool) "now lexically forward" true
    (List.for_all (fun (d : Dep.t) -> d.Dep.lexical = Dep.LFD) deps)

let test_migrate_respects_program_order () =
  (* S2 uses B[I] written by S1: the pair cannot be swapped even though
     doing so would convert the LBD on A. *)
  let l = parse "DOACROSS I = 1, 50\n S1: B[I] = A[I-1]\n S2: A[I] = B[I] + E[I]\nENDDO" in
  let l' = Migrate.reorder l in
  let labels = List.map (fun (s : Ast.stmt) -> s.Ast.label) l'.Ast.body in
  check Alcotest.(list string) "order kept" [ "S1"; "S2" ] labels

let test_migrate_preserves_semantics () =
  let src =
    "DOACROSS I = 1, 30\n\
    \ S1: B[I] = A[I-1]\n\
    \ S2: H[I] = E[I] * C[I]\n\
    \ S3: A[I] = E[I] + C[I+1]\n\
     ENDDO"
  in
  let l = parse src in
  let l' = Migrate.reorder l in
  let m1 = Isched_exec.Ast_interp.run l in
  let m2 = Isched_exec.Ast_interp.run l' in
  Alcotest.(check bool) "same final memory" true (Isched_exec.Memory.equal m1 m2)

let migrate_random_legal =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:60 ~name:"migrate: reordering preserves semantics on generated loops"
       QCheck2.Gen.(int_range 0 100000)
       (fun seed ->
         let profile = { Isched_perfect.Profile.track with seed; n_generated = 1; n_iters = 10 } in
         match Isched_perfect.Genloop.generate profile with
         | [ l ] ->
           let l = { l with Ast.hi = l.Ast.lo + 9 } in
           let l' = Migrate.reorder l in
           Isched_exec.Memory.equal (Isched_exec.Ast_interp.run l) (Isched_exec.Ast_interp.run l')
         | _ -> false))

let suite =
  [
    ("plan: Fig. 1 pairs and signal", `Quick, test_plan_fig1);
    ("plan: one send serves both waits", `Quick, test_plan_shared_signal);
    ("plan: annotated source (Fig. 1b)", `Quick, test_plan_annotated_output);
    ("plan: unknown distances pinned to 1", `Quick, test_plan_unknown_distance_pinned);
    ("plan: of_deps respects the subset", `Quick, test_plan_of_deps_subset);
    ("eliminate: constant-cell accumulation", `Quick, test_eliminate_constant_cell);
    ("eliminate: Fig. 1 keeps both pairs", `Quick, test_eliminate_keeps_fig1);
    ("eliminate: statement-level rule is rejected", `Quick, test_eliminate_statement_level_rule_rejected);
    ("eliminate: redundant_waits directly", `Quick, test_eliminate_redundant_waits_direct);
    ("eliminate: values preserved", `Quick, test_eliminate_sound_on_fig1_values);
    ("migrate: converts LBD to LFD when legal", `Quick, test_migrate_converts_lbd);
    ("migrate: never breaks intra-iteration deps", `Quick, test_migrate_respects_program_order);
    ("migrate: semantics preserved", `Quick, test_migrate_preserves_semantics);
    migrate_random_legal;
  ]
