(* Tests for the execution substrate: value semantics, shared memory,
   the AST and three-address reference interpreters and the read log. *)

module Semantics = Isched_exec.Semantics
module Memory = Isched_exec.Memory
module Ast_interp = Isched_exec.Ast_interp
module Prog_interp = Isched_exec.Prog_interp
module Readlog = Isched_exec.Readlog
module Instr = Isched_ir.Instr
module Parser = Isched_frontend.Parser

let check = Alcotest.check
let parse = Parser.parse_loop

(* --- Semantics --- *)

let test_semantics_arith () =
  check (Alcotest.float 0.) "add" 5. (Semantics.binop Instr.FAdd 2. 3.);
  check (Alcotest.float 0.) "sub" (-1.) (Semantics.binop Instr.Sub 2. 3.);
  check (Alcotest.float 0.) "mul" 6. (Semantics.binop Instr.FMul 2. 3.);
  check (Alcotest.float 0.) "div" 2.5 (Semantics.binop Instr.FDiv 5. 2.)

let test_semantics_div_by_zero () =
  check (Alcotest.float 0.) "x/0 = 0" 0. (Semantics.binop Instr.FDiv 5. 0.);
  check (Alcotest.float 0.) "int div too" 0. (Semantics.binop Instr.Div 5. 0.)

let test_semantics_shifts () =
  check (Alcotest.float 0.) "3 << 2 = 12" 12. (Semantics.binop Instr.Shl 3. 2.);
  check (Alcotest.float 0.) "-2 << 2 = -8" (-8.) (Semantics.binop Instr.Shl (-2.) 2.);
  check (Alcotest.float 0.) "-8 >> 2 = -2" (-2.) (Semantics.binop Instr.Shr (-8.) 2.)

let test_semantics_compare_select () =
  check (Alcotest.float 0.) "lt true" 1. (Semantics.binop Instr.CmpLt 1. 2.);
  check (Alcotest.float 0.) "ge false" 0. (Semantics.binop Instr.CmpGe 1. 2.);
  check (Alcotest.float 0.) "select true" 7. (Semantics.select 1. 7. 9.);
  check (Alcotest.float 0.) "select false" 9. (Semantics.select 0. 7. 9.)

let test_semantics_to_int_clamps () =
  check Alcotest.int "nan" 0 (Semantics.to_int Float.nan);
  check Alcotest.int "inf" 0 (Semantics.to_int Float.infinity);
  check Alcotest.int "huge" 0 (Semantics.to_int 1e300);
  check Alcotest.int "normal" (-7) (Semantics.to_int (-7.))

let test_semantics_init_values () =
  Alcotest.(check bool) "deterministic" true
    (Semantics.eq (Semantics.init_value "A" 5) (Semantics.init_value "A" 5));
  Alcotest.(check bool) "never zero" true (Semantics.init_value "A" 3 <> 0.);
  Alcotest.(check bool) "scalar deterministic" true
    (Semantics.eq (Semantics.init_scalar "K") (Semantics.init_scalar "K"))

let test_semantics_eq_nan () =
  Alcotest.(check bool) "nan = nan bitwise" true (Semantics.eq Float.nan Float.nan);
  Alcotest.(check bool) "1 <> 2" false (Semantics.eq 1. 2.)

(* --- Memory --- *)

let test_memory_defaults () =
  let m = Memory.create () in
  Alcotest.(check bool) "array default" true
    (Semantics.eq (Memory.get m "A" 3) (Semantics.init_value "A" 3));
  Alcotest.(check bool) "scalar default" true
    (Semantics.eq (Memory.get_scalar m "K") (Semantics.init_scalar "K"))

let test_memory_set_get () =
  let m = Memory.create () in
  Memory.set m "A" (-4) 2.5 (Memory.Written { iter = 1; instr = 0 });
  check (Alcotest.float 0.) "negative index" 2.5 (Memory.get m "A" (-4));
  check
    (Alcotest.testable Memory.pp_tag ( = ))
    "tag recorded"
    (Memory.Written { iter = 1; instr = 0 })
    (Memory.tag_of m "A" (-4));
  check (Alcotest.testable Memory.pp_tag ( = )) "unwritten is initial" Memory.Initial
    (Memory.tag_of m "A" 0)

let test_memory_equal_diff () =
  let a = Memory.create () and b = Memory.create () in
  Alcotest.(check bool) "fresh equal" true (Memory.equal a b);
  Memory.set a "A" 1 5. Memory.Initial;
  Alcotest.(check bool) "diverged" false (Memory.equal a b);
  Alcotest.(check bool) "diff mentions the cell" true
    (match Memory.diff a b with [ d ] -> String.length d > 0 | _ -> false);
  Memory.set b "A" 1 5. Memory.Initial;
  Alcotest.(check bool) "equal again" true (Memory.equal a b)

let test_memory_written_cells_sorted () =
  let m = Memory.create () in
  Memory.set m "B" 2 1. Memory.Initial;
  Memory.set m "A" 9 1. Memory.Initial;
  Memory.set m "A" 1 1. Memory.Initial;
  check
    Alcotest.(list (pair (pair string int) (float 0.)))
    "sorted"
    [ (("A", 1), 1.); (("A", 9), 1.); (("B", 2), 1.) ]
    (Memory.written_cells m)

(* --- interpreters --- *)

let test_ast_interp_simple () =
  let l = parse "DO I = 1, 3\n A[I] = I * 2\nENDDO" in
  let m = Ast_interp.run l in
  check (Alcotest.float 0.) "A[2]" 4. (Memory.get m "A" 2);
  check (Alcotest.float 0.) "A[3]" 6. (Memory.get m "A" 3)

let test_ast_interp_recurrence () =
  let l = parse "DO I = 1, 4\n S1: K = 0 * K\n S2: A[I] = A[I-1] + 1\nENDDO" in
  let m = Ast_interp.run l in
  (* A[0] is the deterministic initial value; each iteration adds 1. *)
  let a0 = Semantics.init_value "A" 0 in
  check (Alcotest.float 0.) "A[4]" (a0 +. 4.) (Memory.get m "A" 4)

let test_ast_interp_guard () =
  let l = parse "DO I = 1, 4\n IF (I > 2) A[I] = 9\nENDDO" in
  let m = Ast_interp.run l in
  Alcotest.(check bool) "A[1] untouched" true
    (Semantics.eq (Memory.get m "A" 1) (Semantics.init_value "A" 1));
  check (Alcotest.float 0.) "A[3] written" 9. (Memory.get m "A" 3)

let agree src =
  let l = parse src in
  let prog = Isched_codegen.Codegen.compile l in
  let m_ast = Ast_interp.run l in
  let m_tac = Prog_interp.run prog in
  match Memory.diff m_ast m_tac with
  | [] -> ()
  | ds -> Alcotest.failf "AST and 3AC disagree on %s: %s" src (String.concat "; " ds)

let test_interp_agreement_basic () = agree "DO I = 1, 10\n A[I] = E[I] * C[I-1] + 2\nENDDO"

let test_interp_agreement_fig1 () =
  agree
    "DOACROSS I = 1, 100\n\
    \ S1: B[I] = A[I-2] + E[I+1]\n\
    \ S2: G[I-3] = A[I-1] * E[I+2]\n\
    \ S3: A[I] = B[I] + C[I+3]\n\
     ENDDO"

let test_interp_agreement_guard () = agree "DO I = 1, 20\n IF (E[I] > 0) A[I] = A[I-1] / C[I]\nENDDO"
let test_interp_agreement_scalar () = agree "DO I = 1, 15\n S1: S = S + E[I]\n S2: OUT[I] = S\nENDDO"
let test_interp_agreement_indirect () = agree "DO I = 1, 10\n A[IDX[I]] = E[I] + 1\nENDDO"
let test_interp_agreement_coef () = agree "DO I = 1, 10\n A[2*I+1] = A[2*I-1] * 1.5\nENDDO"

let test_interp_agreement_corpus () =
  (* the whole surrogate corpus, sequential AST vs sequential 3AC *)
  List.iter
    (fun (b : Isched_perfect.Suite.benchmark) ->
      List.iter
        (fun l ->
          let prog = Isched_codegen.Codegen.compile l in
          let m_ast = Ast_interp.run l in
          let m_tac = Prog_interp.run prog in
          if not (Memory.equal m_ast m_tac) then
            Alcotest.failf "interpreters disagree on %s" l.Isched_frontend.Ast.name)
        b.Isched_perfect.Suite.loops)
    (Isched_perfect.Suite.all ())

(* --- read log --- *)

let test_readlog_roundtrip () =
  let log = Readlog.create () in
  let e = { Readlog.iter = 1; instr = 2; cell = "A"; index = Some 3; observed = Memory.Initial } in
  Readlog.add log e;
  check Alcotest.int "one entry" 1 (List.length (Readlog.to_list log))

let test_readlog_compare () =
  let reference = Readlog.create () and actual = Readlog.create () in
  let mk observed = { Readlog.iter = 1; instr = 2; cell = "A"; index = Some 3; observed } in
  Readlog.add reference (mk (Memory.Written { iter = 0; instr = 5 }));
  Readlog.add actual (mk Memory.Initial);
  (match Readlog.compare_logs ~reference ~actual with
  | [ m ] ->
    check (Alcotest.testable Memory.pp_tag ( = )) "expected tag" (Memory.Written { iter = 0; instr = 5 })
      m.Readlog.expected
  | _ -> Alcotest.fail "expected one mismatch");
  (* identical logs: no mismatch *)
  check Alcotest.int "self comparison clean" 0
    (List.length (Readlog.compare_logs ~reference ~actual:reference))

let test_prog_interp_logs_reads () =
  let prog = Isched_codegen.Codegen.compile (parse "DO I = 1, 3\n A[I] = A[I-1] + E[I]\nENDDO") in
  let log = Readlog.create () in
  ignore (Prog_interp.run ~log prog);
  (* two loads per iteration, three iterations *)
  check Alcotest.int "six reads" 6 (List.length (Readlog.to_list log));
  (* A[0] read in iteration 1 observes the initial value; A[1] read in
     iteration 2 observes iteration 1's store *)
  let entries = Readlog.to_list log in
  Alcotest.(check bool) "initial observed" true
    (List.exists (fun (e : Readlog.entry) -> e.Readlog.observed = Memory.Initial) entries);
  Alcotest.(check bool) "cross-iteration write observed" true
    (List.exists
       (fun (e : Readlog.entry) ->
         match e.Readlog.observed with Memory.Written { iter = 1; _ } -> e.Readlog.iter = 2 | _ -> false)
       entries)

let suite =
  [
    ("semantics: arithmetic", `Quick, test_semantics_arith);
    ("semantics: total division", `Quick, test_semantics_div_by_zero);
    ("semantics: shifts", `Quick, test_semantics_shifts);
    ("semantics: compares and select", `Quick, test_semantics_compare_select);
    ("semantics: integer clamping", `Quick, test_semantics_to_int_clamps);
    ("semantics: initial values", `Quick, test_semantics_init_values);
    ("semantics: bitwise equality", `Quick, test_semantics_eq_nan);
    ("memory: deterministic defaults", `Quick, test_memory_defaults);
    ("memory: set/get with tags", `Quick, test_memory_set_get);
    ("memory: equality and diff", `Quick, test_memory_equal_diff);
    ("memory: written cells sorted", `Quick, test_memory_written_cells_sorted);
    ("ast interp: straight-line", `Quick, test_ast_interp_simple);
    ("ast interp: recurrences", `Quick, test_ast_interp_recurrence);
    ("ast interp: guards", `Quick, test_ast_interp_guard);
    ("interp agreement: basic", `Quick, test_interp_agreement_basic);
    ("interp agreement: Fig. 1", `Quick, test_interp_agreement_fig1);
    ("interp agreement: guards", `Quick, test_interp_agreement_guard);
    ("interp agreement: scalars", `Quick, test_interp_agreement_scalar);
    ("interp agreement: indirect subscripts", `Quick, test_interp_agreement_indirect);
    ("interp agreement: coefficient subscripts", `Quick, test_interp_agreement_coef);
    ("interp agreement: whole corpus", `Slow, test_interp_agreement_corpus);
    ("readlog: entries", `Quick, test_readlog_roundtrip);
    ("readlog: mismatch detection", `Quick, test_readlog_compare);
    ("prog interp: read provenance", `Quick, test_prog_interp_logs_reads);
  ]
