(* Tests for affine subscript analysis, access extraction and the
   dependence analysis. *)

module Affine = Isched_deps.Affine
module Access = Isched_deps.Access
module Dep = Isched_deps.Dep
module Ast = Isched_frontend.Ast
module Parser = Isched_frontend.Parser

let check = Alcotest.check

let parse src = Parser.parse_loop src

let expr_of src =
  let l = parse (Printf.sprintf "DO I = 1, 2\n A[%s] = 1\nENDDO" src) in
  match (List.hd l.Ast.body).Ast.lhs with
  | Ast.Larr (_, e) -> e
  | _ -> Alcotest.fail "expected array lhs"

(* --- Affine --- *)

let aff = Alcotest.testable Affine.pp Affine.equal

let test_affine_basic () =
  check Alcotest.(option aff) "I" (Some Affine.ivar) (Affine.of_expr (expr_of "I"));
  check Alcotest.(option aff) "const" (Some (Affine.const 5)) (Affine.of_expr (expr_of "5"));
  check
    Alcotest.(option aff)
    "I-2"
    (Some { Affine.coef = 1; off = -2 })
    (Affine.of_expr (expr_of "I-2"));
  check
    Alcotest.(option aff)
    "2*I+1"
    (Some { Affine.coef = 2; off = 1 })
    (Affine.of_expr (expr_of "2*I+1"))

let test_affine_normalization () =
  check
    Alcotest.(option aff)
    "2*(I+1)-3"
    (Some { Affine.coef = 2; off = -1 })
    (Affine.of_expr (expr_of "2*(I+1)-3"));
  check
    Alcotest.(option aff)
    "-(I-4)"
    (Some { Affine.coef = -1; off = 4 })
    (Affine.of_expr (expr_of "-(I-4)"));
  check
    Alcotest.(option aff)
    "I+I"
    (Some { Affine.coef = 2; off = 0 })
    (Affine.of_expr (expr_of "I+I"));
  check Alcotest.(option aff) "3-I" (Some { Affine.coef = -1; off = 3 }) (Affine.of_expr (expr_of "3-I"))

let test_affine_rejections () =
  check Alcotest.(option aff) "I*I" None (Affine.of_expr (expr_of "I*I"));
  check Alcotest.(option aff) "scalar" None (Affine.of_expr (expr_of "K"));
  check Alcotest.(option aff) "indirect" None (Affine.of_expr (expr_of "IDX[I]"));
  check Alcotest.(option aff) "division" None (Affine.of_expr (expr_of "I/2"));
  check Alcotest.(option aff) "non-integer" None (Affine.of_expr (expr_of "I+2.5"))

let test_affine_eval_roundtrip () =
  let a = { Affine.coef = 3; off = -7 } in
  check Alcotest.int "eval" 8 (Affine.eval a 5);
  check Alcotest.(option aff) "to_expr/of_expr" (Some a) (Affine.of_expr (Affine.to_expr a))

(* --- Access --- *)

let test_access_order () =
  let l = parse "DO I = 1, 4\n IF (E[I] > 0) A[B[I]] = C[I-1] + D[I]\nENDDO" in
  let accs = Access.of_loop l in
  let names = List.map (fun (a : Access.t) -> (a.Access.target, a.Access.is_write)) accs in
  (* guard read, lhs-subscript read, rhs reads left-to-right, write last *)
  check
    Alcotest.(list (pair string bool))
    "evaluation order"
    [ ("E", false); ("B", false); ("C", false); ("D", false); ("A", true) ]
    names

let test_access_inner_subscript_first () =
  let l = parse "DO I = 1, 4\n X[I] = A[IDX[I]]\nENDDO" in
  let accs = Access.of_loop l in
  let names = List.map (fun (a : Access.t) -> a.Access.target) accs in
  check Alcotest.(list string) "inner before outer" [ "IDX"; "A"; "X" ] names

let test_access_scalars () =
  let l = parse "DO I = 1, 4\n S = S + A[I]\nENDDO" in
  let accs = Access.of_loop l in
  check Alcotest.int "three accesses" 3 (List.length accs);
  let w = List.filter (fun (a : Access.t) -> a.Access.is_write) accs in
  check Alcotest.int "one write" 1 (List.length w);
  Alcotest.(check bool) "scalar write" true (not (List.hd w).Access.is_array)

(* --- Dep --- *)

let deps_of src = Dep.analyze (parse src)
let carried_of src = Dep.carried_deps (parse src)

let dep_summary (d : Dep.t) =
  ( Dep.kind_name d.Dep.kind,
    d.Dep.src.Access.stmt + 1,
    d.Dep.snk.Access.stmt + 1,
    (match d.Dep.distance with Dep.Dist n -> n | Dep.Unknown -> -1) )

let test_dep_fig1 () =
  let ds =
    carried_of
      "DOACROSS I = 1, 100\n\
      \ S1: B[I] = A[I-2] + E[I+1]\n\
      \ S2: G[I-3] = A[I-1] * E[I+2]\n\
      \ S3: A[I] = B[I] + C[I+3]\n\
       ENDDO"
  in
  let show (k, s1, s2, d) = Printf.sprintf "%s S%d->S%d d=%d" k s1 s2 d in
  check
    Alcotest.(list string)
    "two carried flow deps"
    [ "flow S3->S1 d=2"; "flow S3->S2 d=1" ]
    (List.map (fun d -> show (dep_summary d)) ds);
  List.iter
    (fun (d : Dep.t) ->
      Alcotest.(check bool) "both LBD" true (d.Dep.lexical = Dep.LBD))
    ds

let test_dep_forward () =
  let ds = carried_of "DO I = 1, 10\n S1: A[I] = E[I]\n S2: B[I] = A[I-1]\nENDDO" in
  match ds with
  | [ d ] ->
    check Alcotest.string "flow" "flow" (Dep.kind_name d.Dep.kind);
    Alcotest.(check bool) "LFD" true (d.Dep.lexical = Dep.LFD)
  | _ -> Alcotest.fail "expected exactly one carried dep"

let test_dep_self_is_lbd () =
  let ds = carried_of "DO I = 1, 10\n A[I] = A[I-1] + 1\nENDDO" in
  match ds with
  | [ d ] ->
    Alcotest.(check bool) "self dep is backward" true (d.Dep.lexical = Dep.LBD);
    check Alcotest.int "distance 1" 1 (Dep.sync_distance d)
  | _ -> Alcotest.fail "expected exactly one carried dep"

let test_dep_anti () =
  (* read A[I+1] before the write A[I+1] happens in the next iteration *)
  let ds = carried_of "DO I = 1, 10\n S1: B[I] = A[I+1]\n S2: A[I] = E[I]\nENDDO" in
  match List.map dep_summary ds with
  | [ ("anti", 1, 2, 1) ] -> ()
  | other ->
    Alcotest.failf "expected one anti dep, got %s"
      (String.concat ";"
         (List.map (fun (k, s, t, d) -> Printf.sprintf "(%s,%d,%d,%d)" k s t d) other))

let test_dep_output () =
  let ds = carried_of "DO I = 1, 10\n S1: A[I] = E[I]\n S2: A[I-1] = C[I]\nENDDO" in
  Alcotest.(check bool) "has output dep" true
    (List.exists (fun (d : Dep.t) -> d.Dep.kind = Dep.Output) ds)

let test_dep_distance_out_of_range () =
  (* distance 50 exceeds the 10-iteration span: no dependence *)
  let ds = carried_of "DO I = 1, 10\n A[I] = A[I-50]\nENDDO" in
  check Alcotest.int "no carried dep" 0 (List.length ds)

let test_dep_non_integral_distance () =
  (* 2*I vs 2*I+1: different parity, never the same cell *)
  let ds = carried_of "DO I = 1, 10\n A[2*I] = A[2*I+1]\nENDDO" in
  check Alcotest.int "no dep between parities" 0 (List.length ds)

let test_dep_coef2_distance () =
  (* 2*I vs 2*I-4 touch the same cell 2 iterations apart *)
  let ds = carried_of "DO I = 1, 10\n A[2*I] = A[2*I-4] + 1\nENDDO" in
  match List.map dep_summary ds with
  | [ ("flow", 1, 1, 2) ] -> ()
  | _ -> Alcotest.fail "expected flow distance 2"

let test_dep_unequal_coefs_enumerated () =
  (* A[I] written, A[2*I] read: collisions at even I with varying
     distance -> Unknown *)
  let ds = carried_of "DO I = 1, 10\n S1: B[I] = A[2*I]\n S2: A[I] = E[I]\nENDDO" in
  Alcotest.(check bool) "some carried dep" true (ds <> []);
  Alcotest.(check bool) "distance unknown -> sync distance 1" true
    (List.exists (fun d -> Dep.sync_distance d = 1 && d.Dep.distance = Dep.Unknown) ds)

let test_dep_unequal_coefs_single_distance () =
  (* A[I+5] written at iteration i collides with read A[2*I] at 2j=i+5:
     enumeration finds varying distances j-i = 5-j... only some hits. *)
  let ds = carried_of "DO I = 1, 4\n S1: A[I+3] = E[I]\n S2: B[I] = A[2*I] + 1\nENDDO" in
  (* i+3 = 2j for i in 1..4: (i,j) = (1,2) d=1, (3,3) d=0 -> carried d=1
     exists from S1 to S2. *)
  Alcotest.(check bool) "enumeration finds the d=1 hit" true
    (List.exists (fun d -> dep_summary d = ("flow", 1, 2, 1)) ds)

let test_dep_constant_subscripts () =
  let ds = carried_of "DO I = 1, 10\n A[5] = A[5] + E[I]\nENDDO" in
  Alcotest.(check bool) "constant cell carries" true
    (List.exists (fun (d : Dep.t) -> d.Dep.distance = Dep.Unknown) ds)

let test_dep_scalar_carried () =
  let ds = carried_of "DO I = 1, 10\n S = S + A[I]\nENDDO" in
  Alcotest.(check bool) "scalar flow dep" true
    (List.exists (fun (d : Dep.t) -> d.Dep.kind = Dep.Flow && not d.Dep.src.Access.is_array) ds)

let test_dep_indirect_conservative () =
  let ds = carried_of "DO I = 1, 10\n A[IDX[I]] = E[I]\nENDDO" in
  Alcotest.(check bool) "indirect write carries output dep" true
    (List.exists (fun (d : Dep.t) -> d.Dep.kind = Dep.Output && d.Dep.distance = Dep.Unknown) ds)

let test_dep_loop_independent () =
  let ds = deps_of "DO I = 1, 10\n S1: B[I] = E[I]\n S2: C[I] = B[I]\nENDDO" in
  match ds with
  | [ d ] ->
    Alcotest.(check bool) "loop independent" true (not (Dep.carried d));
    check Alcotest.int "distance 0" 0 (match d.Dep.distance with Dep.Dist n -> n | _ -> -1)
  | _ -> Alcotest.fail "expected exactly one dep"

let test_is_doall () =
  Alcotest.(check bool) "independent loop" true
    (Dep.is_doall (parse "DO I = 1, 10\n A[I] = E[I] + C[I-2]\nENDDO"));
  Alcotest.(check bool) "recurrence is not doall" false
    (Dep.is_doall (parse "DO I = 1, 10\n A[I] = A[I-1]\nENDDO"));
  Alcotest.(check bool) "writes to distinct arrays" true
    (Dep.is_doall (parse "DO I = 1, 10\n S1: A[I] = E[I]\n S2: B[I] = A[I]\nENDDO"))

let test_dep_deterministic () =
  let src = "DO I = 1, 10\n S1: A[I] = A[I-1] + B[I-2]\n S2: B[I] = A[I-3]\nENDDO" in
  let d1 = List.map Dep.to_string (deps_of src) in
  let d2 = List.map Dep.to_string (deps_of src) in
  check Alcotest.(list string) "stable output" d1 d2

let suite =
  [
    ("affine: basic forms", `Quick, test_affine_basic);
    ("affine: normalization", `Quick, test_affine_normalization);
    ("affine: rejected forms", `Quick, test_affine_rejections);
    ("affine: eval and expr roundtrip", `Quick, test_affine_eval_roundtrip);
    ("access: evaluation order", `Quick, test_access_order);
    ("access: inner subscript reads first", `Quick, test_access_inner_subscript_first);
    ("access: scalar reads and writes", `Quick, test_access_scalars);
    ("dep: Fig. 1 dependences", `Quick, test_dep_fig1);
    ("dep: lexically forward dep", `Quick, test_dep_forward);
    ("dep: self dependence is LBD", `Quick, test_dep_self_is_lbd);
    ("dep: anti dependence", `Quick, test_dep_anti);
    ("dep: output dependence", `Quick, test_dep_output);
    ("dep: distance beyond the iteration span", `Quick, test_dep_distance_out_of_range);
    ("dep: non-integral distance", `Quick, test_dep_non_integral_distance);
    ("dep: coefficient-2 distance", `Quick, test_dep_coef2_distance);
    ("dep: unequal coefficients (unknown)", `Quick, test_dep_unequal_coefs_enumerated);
    ("dep: unequal coefficients (enumerated hit)", `Quick, test_dep_unequal_coefs_single_distance);
    ("dep: constant subscripts", `Quick, test_dep_constant_subscripts);
    ("dep: scalar carried dep", `Quick, test_dep_scalar_carried);
    ("dep: indirect subscripts are conservative", `Quick, test_dep_indirect_conservative);
    ("dep: loop-independent dep", `Quick, test_dep_loop_independent);
    ("dep: doall detection", `Quick, test_is_doall);
    ("dep: deterministic order", `Quick, test_dep_deterministic);
  ]
