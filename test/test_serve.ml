(* The scheduling service: wire-protocol round-trips, framing under
   hostile inputs, the striped LRU schedule cache (eviction order,
   exactly-once compute under concurrency), served-response-equals-
   fresh-pipeline over the whole corpus, the --validate corrupted-entry
   injection, bounded-queue backpressure, and an end-to-end socket
   session with graceful drain. *)

module Protocol = Isched_serve.Protocol
module Cache = Isched_serve.Cache
module Server = Isched_serve.Server
module Client = Isched_serve.Client
module Json = Isched_obs.Json
module Counters = Isched_obs.Counters
module Reqlog = Isched_obs.Reqlog
module Suite = Isched_perfect.Suite
module Ast = Isched_frontend.Ast
module Machine = Isched_ir.Machine
module Schedule = Isched_core.Schedule
module Lbd_model = Isched_core.Lbd_model
module Pipeline = Isched_harness.Pipeline

let qtest ?(count = 200) name gen law =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen law)

(* --- generators --- *)

let gen_small_string = QCheck2.Gen.(string_size ~gen:printable (int_range 0 24))

let gen_scheduler =
  QCheck2.Gen.oneofl [ Protocol.Sched_list; Protocol.Sched_marker; Protocol.Sched_new ]

let gen_request =
  QCheck2.Gen.(
    oneof
      [
        return Protocol.Ping;
        return Protocol.Stats;
        return Protocol.Metrics;
        (let* text = bool in
         let* s = gen_small_string in
         let* scheduler = gen_scheduler in
         let* issue = int_range 1 16 in
         let* nfu = int_range 1 4 in
         let* n_iters = opt (int_range 1 10_000) in
         let* sync_elim = opt bool in
         let* explain = bool in
         let source = if text then Protocol.Text s else Protocol.Corpus_loop s in
         return (Protocol.Schedule { source; scheduler; issue; nfu; n_iters; sync_elim; explain }));
      ])

(* Arbitrary JSON whose numbers are integral: that is all the protocol
   ever emits, and it keeps print-parse-print byte-stable. *)
let gen_json =
  QCheck2.Gen.(
    sized_size (int_range 0 3) (fix (fun self n ->
        let leaf =
          oneof
            [
              return Json.Null;
              map (fun b -> Json.Bool b) bool;
              map (fun i -> Json.Num (float_of_int i)) (int_range (-1000) 1000);
              map (fun s -> Json.Str s) gen_small_string;
            ]
        in
        if n = 0 then leaf
        else
          oneof
            [
              leaf;
              map (fun vs -> Json.Arr vs) (list_size (int_range 0 3) (self (n - 1)));
              map
                (fun kvs -> Json.Obj kvs)
                (list_size (int_range 0 3) (pair gen_small_string (self (n - 1))));
            ])))

let gen_loop_reply =
  QCheck2.Gen.(
    let* loop_name = gen_small_string in
    let* doall = bool in
    let* cycles_per_iteration = int_range 0 1000 in
    let* lbd_pairs = int_range 0 100 in
    let* parallel_time = int_range 0 100_000 in
    let* analytic_time = int_range 0 100_000 in
    let* rows =
      array_size (int_range 0 6) (array_size (int_range 0 4) (int_range 0 64))
    in
    let* explain_payload = opt gen_json in
    return
      {
        Protocol.loop_name;
        doall;
        cycles_per_iteration;
        lbd_pairs;
        parallel_time;
        analytic_time;
        rows;
        explain_payload;
      })

let gen_error_code =
  QCheck2.Gen.oneofl
    [
      Protocol.Oversized_frame; Protocol.Malformed_frame; Protocol.Bad_request;
      Protocol.Source_error; Protocol.Unknown_loop; Protocol.Overloaded;
      Protocol.Invalid_schedule; Protocol.Internal;
    ]

let gen_response =
  QCheck2.Gen.(
    oneof
      [
        return Protocol.Pong;
        map (fun v -> Protocol.Stats_reply v) gen_json;
        map (fun s -> Protocol.Metrics_reply s) gen_small_string;
        (let* cache_hit = bool in
         let* loops = list_size (int_range 0 3) gen_loop_reply in
         return (Protocol.Scheduled { cache_hit; loops }));
        (let* code = gen_error_code in
         let* message = gen_small_string in
         return (Protocol.Error { code; message }));
      ])

(* --- protocol round-trip properties --- *)

let prop_request_roundtrip =
  qtest "protocol: encode o decode o encode is the identity on requests" gen_request (fun r ->
      let e = Protocol.encode_request r in
      match Protocol.decode_request e with
      | Ok r' -> String.equal (Protocol.encode_request r') e
      | Error _ -> false)

let prop_response_roundtrip =
  qtest "protocol: encode o decode o encode is the identity on responses" gen_response
    (fun r ->
      let e = Protocol.encode_response r in
      match Protocol.decode_response e with
      | Ok r' -> String.equal (Protocol.encode_response r') e
      | Error _ -> false)

let prop_decode_total =
  qtest "protocol: decoding arbitrary bytes never raises"
    QCheck2.Gen.(string_size ~gen:(char_range '\000' '\255') (int_range 0 64))
    (fun s ->
      (match Protocol.decode_request s with Ok _ -> true | Error _ -> true)
      && match Protocol.decode_response s with Ok _ -> true | Error _ -> true)

let prop_scheduled_fast_path =
  qtest "protocol: encode_scheduled matches encode_response byte for byte"
    QCheck2.Gen.(pair bool (list_size (int_range 0 3) gen_loop_reply))
    (fun (cache_hit, loops) ->
      let reference = Protocol.encode_response (Protocol.Scheduled { cache_hit; loops }) in
      let fast =
        Protocol.encode_scheduled ~cache_hit (List.map Protocol.render_loop_reply loops)
      in
      String.equal reference fast)

(* --- framing over a socketpair --- *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off = if off < n then go (off + Unix.write fd b off (n - off)) in
  go 0

let header_bytes len =
  let b = Bytes.create 4 in
  Bytes.set_int32_be b 0 (Int32.of_int len);
  Bytes.to_string b

let read_result_name = function
  | Protocol.Frame _ -> "frame"
  | Protocol.Eof -> "eof"
  | Protocol.Truncated -> "truncated"
  | Protocol.Oversized _ -> "oversized"
  | Protocol.Stopped -> "stopped"

let check_read name expected got =
  Alcotest.(check string) name expected (read_result_name got)

let test_framing_roundtrip () =
  with_socketpair (fun a b ->
      Protocol.write_frame a "hello";
      (match Protocol.read_frame b with
      | Protocol.Frame p -> Alcotest.(check string) "payload" "hello" p
      | other -> Alcotest.failf "expected frame, got %s" (read_result_name other));
      (* Two frames back to back through a buffered reader. *)
      Protocol.write_frame a "one";
      Protocol.write_frame a "two";
      let r = Protocol.reader b in
      (match Protocol.read_frame_buffered r with
      | Protocol.Frame p -> Alcotest.(check string) "first" "one" p
      | other -> Alcotest.failf "expected frame, got %s" (read_result_name other));
      match Protocol.read_frame_buffered r with
      | Protocol.Frame p -> Alcotest.(check string) "second" "two" p
      | other -> Alcotest.failf "expected frame, got %s" (read_result_name other))

let test_framing_eof () =
  with_socketpair (fun a b ->
      Unix.close a;
      check_read "clean close" "eof" (Protocol.read_frame b))

let test_framing_truncated_header () =
  with_socketpair (fun a b ->
      write_all a "\000\000";
      Unix.close a;
      check_read "partial header" "truncated" (Protocol.read_frame b))

let test_framing_truncated_payload () =
  with_socketpair (fun a b ->
      write_all a (header_bytes 100);
      write_all a "only ten b";
      Unix.close a;
      check_read "partial payload" "truncated" (Protocol.read_frame b))

let test_framing_oversized () =
  with_socketpair (fun a b ->
      write_all a (header_bytes (Protocol.max_frame + 1));
      match Protocol.read_frame b with
      | Protocol.Oversized n -> Alcotest.(check int) "declared length" (Protocol.max_frame + 1) n
      | other -> Alcotest.failf "expected oversized, got %s" (read_result_name other))

let test_framing_negative_length () =
  with_socketpair (fun a b ->
      write_all a "\255\255\255\255";
      check_read "negative length" "oversized" (Protocol.read_frame b))

let test_framing_stop () =
  with_socketpair (fun _a b ->
      (* Nothing ever arrives; a raised stop flag must end the wait. *)
      let deadline = Unix.gettimeofday () +. 0.5 in
      let stop () = Unix.gettimeofday () > deadline in
      check_read "stop flag" "stopped" (Protocol.read_frame ~stop b))

(* --- the striped LRU cache --- *)

let int_cache ~stripes ~capacity =
  Cache.create ~stripes ~capacity ~hash:Hashtbl.hash ~equal:Int.equal ()

let test_cache_hit_miss () =
  let c = int_cache ~stripes:1 ~capacity:4 in
  let v, hit = Cache.find_or_compute c 1 (fun () -> "one") in
  Alcotest.(check (pair string bool)) "first is a miss" ("one", false) (v, hit);
  let v, hit = Cache.find_or_compute c 1 (fun () -> Alcotest.fail "recompute") in
  Alcotest.(check (pair string bool)) "second is a hit" ("one", true) (v, hit);
  Alcotest.(check int) "length" 1 (Cache.length c)

let test_cache_failed_compute_not_cached () =
  let c = int_cache ~stripes:1 ~capacity:4 in
  (try ignore (Cache.find_or_compute c 1 (fun () -> failwith "boom"))
   with Failure _ -> ());
  Alcotest.(check int) "placeholder removed" 0 (Cache.length c);
  let v, hit = Cache.find_or_compute c 1 (fun () -> "ok") in
  Alcotest.(check (pair string bool)) "retry computes" ("ok", false) (v, hit)

(* LRU order under a capacity 1..4 sweep: with a single stripe the
   eviction order is exact — least-recently-used out first, where a hit
   refreshes recency. *)
let test_cache_lru_sweep () =
  for cap = 1 to 4 do
    let c = int_cache ~stripes:1 ~capacity:cap in
    for k = 0 to cap - 1 do
      ignore (Cache.find_or_compute c k (fun () -> k))
    done;
    Alcotest.(check int) (Printf.sprintf "cap %d full" cap) cap (Cache.length c);
    (* Refresh key 0, insert one more: the eviction victim must be the
       LRU key (1 when cap > 1, otherwise 0 itself). *)
    ignore (Cache.find_or_compute c 0 (fun () -> Alcotest.fail "should hit"));
    ignore (Cache.find_or_compute c cap (fun () -> cap));
    Alcotest.(check int) (Printf.sprintf "cap %d still full" cap) cap (Cache.length c);
    let victim = if cap = 1 then 0 else 1 in
    Alcotest.(check bool)
      (Printf.sprintf "cap %d evicted LRU key %d" cap victim)
      true
      (Cache.find c victim = None);
    if cap > 1 then
      Alcotest.(check bool)
        (Printf.sprintf "cap %d kept refreshed key 0" cap)
        true
        (Cache.find c 0 = Some 0);
    Alcotest.(check bool)
      (Printf.sprintf "cap %d kept newest key" cap)
      true
      (Cache.find c cap = Some cap);
    (* Eviction proceeds strictly from the LRU end as more keys land. *)
    for k = cap + 1 to cap + 3 do
      ignore (Cache.find_or_compute c k (fun () -> k))
    done;
    Alcotest.(check int) (Printf.sprintf "cap %d bounded" cap) cap (Cache.length c);
    Alcotest.(check bool)
      (Printf.sprintf "cap %d newest survives" cap)
      true
      (Cache.find c (cap + 3) = Some (cap + 3))
  done

(* Exactly-once compute per key: 8 domains hammer the same keys; the
   compute counter per key must end at 1, every caller must observe the
   same value, and concurrent waiters coalesce rather than recompute. *)
let test_cache_exactly_once () =
  let n_keys = 8 in
  let c = int_cache ~stripes:16 ~capacity:64 in
  let computes = Array.init n_keys (fun _ -> Atomic.make 0) in
  let domains =
    List.init 8 (fun d ->
        Domain.spawn (fun () ->
            for round = 0 to 24 do
              let k = (d + round) mod n_keys in
              let v, _ =
                Cache.find_or_compute c k (fun () ->
                    Atomic.incr computes.(k);
                    (* Widen the race window so waiters really wait. *)
                    Unix.sleepf 0.002;
                    k * 1000)
              in
              if v <> k * 1000 then failwith "wrong value observed"
            done))
  in
  List.iter Domain.join domains;
  Array.iteri
    (fun k n ->
      Alcotest.(check int) (Printf.sprintf "key %d computed exactly once" k) 1 (Atomic.get n))
    computes;
  Alcotest.(check int) "all keys cached" n_keys (Cache.length c)

(* --- corpus enumeration is shared (regression pin) --- *)

let test_suite_enumeration_pinned () =
  let names loops = List.map (fun (l : Ast.loop) -> l.Ast.name) loops in
  let manual =
    List.concat_map (fun (b : Suite.benchmark) -> b.Suite.loops) (Suite.all ())
  in
  Alcotest.(check (list string))
    "all_loops enumerates exactly what Suite.all does"
    (names manual)
    (names (Suite.all_loops ()));
  let smoke_manual = (List.hd (Suite.all ())).Suite.loops in
  Alcotest.(check (list string))
    "smoke enumeration is the first corpus"
    (names smoke_manual)
    (names (Suite.all_loops ~smoke:true ()));
  Alcotest.(check int) "five corpora" 5 (List.length (Suite.corpora ()));
  Alcotest.(check int) "one smoke corpus" 1 (List.length (Suite.corpora ~smoke:true ()));
  (* Every enumerated loop is find-able by name and resolves to the
     same structural loop (names are unique across corpora). *)
  List.iter
    (fun (l : Ast.loop) ->
      match Suite.find_loop l.Ast.name with
      | None -> Alcotest.failf "find_loop missed %s" l.Ast.name
      | Some l' ->
        Alcotest.(check int) (l.Ast.name ^ " digest") l.Ast.digest l'.Ast.digest)
    manual

(* --- served response equals the fresh pipeline --- *)

let machine4 = Machine.make ~issue:4 ~nfu:1 ()

type fresh = Doall | Sched of int * int * int * int * int array array

let fresh_answer (l : Ast.loop) =
  let options = Pipeline.default_options in
  match Pipeline.prepare_uncached options l with
  | Pipeline.Doall _ -> Doall
  | Pipeline.Doacross _ as p ->
    let s = Pipeline.schedule ~options p machine4 Pipeline.New_scheduling in
    let t = Isched_sim.Timing.run s in
    Sched
      ( s.Schedule.length,
        Lbd_model.n_lbd s,
        t.Isched_sim.Timing.finish,
        Lbd_model.exact_time s,
        s.Schedule.rows )

(* A loop that definitely still carries a dependence after
   restructuring — several tests need a real schedule to exist. *)
let a_doacross_loop =
  lazy
    (List.find
       (fun (l : Ast.loop) ->
         match fresh_answer l with Doall -> false | Sched _ -> true)
       (Suite.all_loops ~smoke:true ()))
      .Ast.name

let check_reply_matches name (fresh : fresh) (r : Protocol.loop_reply) =
  Alcotest.(check string) (name ^ " loop name") name r.Protocol.loop_name;
  match fresh with
  | Doall -> Alcotest.(check bool) (name ^ " doall") true r.Protocol.doall
  | Sched (len, lbd, par, analytic, rows) ->
    Alcotest.(check bool) (name ^ " doacross") false r.Protocol.doall;
    Alcotest.(check int) (name ^ " cycles") len r.Protocol.cycles_per_iteration;
    Alcotest.(check int) (name ^ " lbd pairs") lbd r.Protocol.lbd_pairs;
    Alcotest.(check int) (name ^ " parallel time") par r.Protocol.parallel_time;
    Alcotest.(check int) (name ^ " analytic time") analytic r.Protocol.analytic_time;
    Alcotest.(check bool) (name ^ " rows") true (rows = r.Protocol.rows)

(* Every corpus loop, served cold then warm, must equal the fresh
   pipeline's answer — the cache must never change what is served. *)
let test_served_equals_fresh () =
  let server = Server.create (Server.default_config ~socket_path:"/tmp/unused.sock") in
  List.iter
    (fun (l : Ast.loop) ->
      let name = l.Ast.name in
      let fresh = fresh_answer l in
      let ask expected_hit =
        match Server.handle server (Protocol.schedule_request (Protocol.Corpus_loop name)) with
        | Protocol.Scheduled { cache_hit; loops = [ r ] } ->
          Alcotest.(check bool) (name ^ " hit flag") expected_hit cache_hit;
          check_reply_matches name fresh r
        | Protocol.Scheduled _ -> Alcotest.failf "%s: expected one loop reply" name
        | Protocol.Error { message; _ } -> Alcotest.failf "%s: error %s" name message
        | _ -> Alcotest.failf "%s: unexpected response" name
      in
      ask false;  (* cold *)
      ask true (* warm *))
    (Suite.all_loops ())

(* The same equivalence for source-text requests: a multi-loop source
   must come back loop by loop, in order. *)
let test_served_text_source () =
  let server = Server.create (Server.default_config ~socket_path:"/tmp/unused.sock") in
  let p = List.hd Isched_perfect.Profile.all in
  let src = Suite.signature_sources p in
  (* The server parses text sources under the unit name "request"; the
     replies must use those names and match the fresh pipeline loop by
     loop, in order. *)
  let loops = Isched_frontend.Parser.parse ~name:"request" src in
  List.iter Isched_frontend.Sema.check_exn loops;
  match Server.handle server (Protocol.schedule_request (Protocol.Text src)) with
  | Protocol.Scheduled { loops = replies; _ } ->
    Alcotest.(check int) "reply per loop" (List.length loops) (List.length replies);
    List.iter2
      (fun (l : Ast.loop) r -> check_reply_matches l.Ast.name (fresh_answer l) r)
      loops replies
  | Protocol.Error { message; _ } -> Alcotest.failf "error %s" message
  | _ -> Alcotest.fail "unexpected response"

(* --- error mapping through the handler --- *)

let expect_error name code = function
  | Protocol.Error { code = c; _ } ->
    Alcotest.(check string) name (Protocol.error_code_name code) (Protocol.error_code_name c)
  | _ -> Alcotest.failf "%s: expected an error response" name

let test_handler_errors () =
  let server = Server.create (Server.default_config ~socket_path:"/tmp/unused.sock") in
  expect_error "unknown corpus loop" Protocol.Unknown_loop
    (Server.handle server (Protocol.schedule_request (Protocol.Corpus_loop "NOPE.L99")));
  expect_error "unparsable source" Protocol.Source_error
    (Server.handle server (Protocol.schedule_request (Protocol.Text "DOACROSS garbage(((")));
  expect_error "empty source" Protocol.Source_error
    (Server.handle server (Protocol.schedule_request (Protocol.Text "! only a comment\n")));
  expect_error "bad machine" Protocol.Bad_request
    (Server.handle server (Protocol.schedule_request ~issue:0 (Protocol.Corpus_loop "QCD.L1")))

(* --- the schedule-cache key covers sync_elim --- *)

(* The guarded scalar reduction reaches codegen with flow, anti and
   output pairs; the sync_elim pass provably removes two of them, so
   the two settings serve different schedules — a shared cache entry
   would be observably wrong, not just stale. *)
let elim_kernel = "DOACROSS I = 1, 50\n IF (E[I] > 0) S = S + Q[I] * C[I]\nENDDO"

let test_cache_key_covers_sync_elim () =
  let server = Server.create (Server.default_config ~socket_path:"/tmp/unused.sock") in
  let ask ?sync_elim () =
    match
      Server.handle server (Protocol.schedule_request ?sync_elim (Protocol.Text elim_kernel))
    with
    | Protocol.Scheduled { cache_hit; loops = [ r ] } -> (cache_hit, r)
    | Protocol.Error { message; _ } -> Alcotest.failf "error: %s" message
    | _ -> Alcotest.fail "expected one scheduled loop"
  in
  let hit_base, base = ask () in
  Alcotest.(check bool) "base request is cold" false hit_base;
  let hit_elim, elim = ask ~sync_elim:true () in
  Alcotest.(check bool) "flipping sync_elim is a MISS, never a stale hit" false hit_elim;
  Alcotest.(check int) "two distinct cache entries" 2 (Server.cache_length server);
  Alcotest.(check bool) "the settings serve different schedules" true
    (base.Protocol.rows <> elim.Protocol.rows);
  let hit_base', base' = ask () in
  let hit_elim', elim' = ask ~sync_elim:true () in
  Alcotest.(check bool) "base entry warm" true hit_base';
  Alcotest.(check bool) "elim entry warm" true hit_elim';
  Alcotest.(check bool) "base entry stable" true (base'.Protocol.rows = base.Protocol.rows);
  Alcotest.(check bool) "elim entry stable" true (elim'.Protocol.rows = elim.Protocol.rows);
  (* The key stores the RESOLVED setting: an explicit [false] and an
     absent member both resolve to the server default and share one
     entry. *)
  let hit_explicit, _ = ask ~sync_elim:false () in
  Alcotest.(check bool) "explicit false hits the resolved-default entry" true hit_explicit;
  Alcotest.(check int) "still two entries" 2 (Server.cache_length server)

(* --- the --validate injection --- *)

let test_validate_catches_corruption () =
  let config =
    { (Server.default_config ~socket_path:"/tmp/unused.sock") with Server.validate = true }
  in
  let server = Server.create config in
  let req = Protocol.schedule_request (Protocol.Corpus_loop (Lazy.force a_doacross_loop)) in
  (match Server.handle server req with
  | Protocol.Scheduled _ -> ()
  | _ -> Alcotest.fail "fresh compute should validate");
  Alcotest.(check int) "one corrupted entry" 1 (Server.corrupt_cached_schedules server);
  (* The corrupted entry must be reported, never served... *)
  expect_error "corrupt entry is caught" Protocol.Invalid_schedule (Server.handle server req);
  (* ...and evicted, so the next request recomputes and succeeds. *)
  Alcotest.(check int) "corrupt entry evicted" 0 (Server.cache_length server);
  match Server.handle server req with
  | Protocol.Scheduled { cache_hit; _ } ->
    Alcotest.(check bool) "recomputed" false cache_hit
  | _ -> Alcotest.fail "recompute after eviction should succeed"

(* Exactly-once through the server's digest-keyed cache: concurrent
   identical requests must trigger one pipeline compute. *)
let test_server_exactly_once () =
  let server = Server.create (Server.default_config ~socket_path:"/tmp/unused.sock") in
  let miss_count () =
    match Counters.find "serve.cache.miss" with
    | Some (Counters.Counter n) -> n
    | _ -> 0
  in
  let before = miss_count () in
  let req = Protocol.schedule_request (Protocol.Corpus_loop (Lazy.force a_doacross_loop)) in
  let domains =
    List.init 8 (fun _ ->
        Domain.spawn (fun () ->
            match Server.handle server req with
            | Protocol.Scheduled { loops = [ r ]; _ } -> r.Protocol.cycles_per_iteration
            | _ -> -1))
  in
  let answers = List.map Domain.join domains in
  (match answers with
  | a :: rest ->
    Alcotest.(check bool) "no errors" true (a >= 0);
    List.iter (fun b -> Alcotest.(check int) "all domains agree" a b) rest
  | [] -> assert false);
  Alcotest.(check int) "one miss for eight concurrent requests" 1 (miss_count () - before)

(* --- the daemon over a real socket --- *)

let sock_path name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "isched-test-%d-%s.sock" (Unix.getpid ()) name)

let start_server ?(configure = fun c -> c) name =
  let socket = sock_path name in
  let config = configure (Server.default_config ~socket_path:socket) in
  let server = Server.create config in
  let ready = Atomic.make false in
  let d =
    Domain.spawn (fun () -> Server.run ~on_ready:(fun () -> Atomic.set ready true) server)
  in
  while not (Atomic.get ready) do
    Unix.sleepf 0.002
  done;
  (server, d, socket)

let stop_server (server, d, socket) =
  Server.stop server;
  Domain.join d;
  Alcotest.(check bool) "socket removed on drain" false (Sys.file_exists socket)

let test_socket_session () =
  let ((_, _, socket) as s) = start_server "session" in
  Client.with_connection socket (fun c ->
      (match Client.request_exn c Protocol.Ping with
      | Protocol.Pong -> ()
      | _ -> Alcotest.fail "expected pong");
      (match Client.request_exn c (Protocol.schedule_request (Protocol.Corpus_loop (Lazy.force a_doacross_loop))) with
      | Protocol.Scheduled { cache_hit; loops = [ r ] } ->
        Alcotest.(check bool) "first is cold" false cache_hit;
        Alcotest.(check bool) "has a schedule" false r.Protocol.doall
      | _ -> Alcotest.fail "expected a scheduled response");
      (match Client.request_exn c (Protocol.schedule_request (Protocol.Corpus_loop (Lazy.force a_doacross_loop))) with
      | Protocol.Scheduled { cache_hit; _ } -> Alcotest.(check bool) "then warm" true cache_hit
      | _ -> Alcotest.fail "expected a scheduled response");
      (match Client.request_exn c (Protocol.schedule_request ~explain:true (Protocol.Corpus_loop (Lazy.force a_doacross_loop))) with
      | Protocol.Scheduled { loops = [ r ]; _ } ->
        Alcotest.(check bool) "explain payload present" true (r.Protocol.explain_payload <> None)
      | _ -> Alcotest.fail "expected a scheduled response");
      match Client.request_exn c Protocol.Stats with
      | Protocol.Stats_reply v ->
        let requests = Option.bind (Json.member "requests" v) Json.to_float in
        Alcotest.(check bool) "stats counts requests" true (Option.value ~default:0. requests >= 3.)
      | _ -> Alcotest.fail "expected stats");
  stop_server s

(* Hostile frames against a live daemon: structured errors, the
   connection (and daemon) survive what can be survived, and nothing
   hangs. *)
let test_socket_hostile_frames () =
  let ((_, _, socket) as s) = start_server "hostile" in
  (* Malformed payload: a structured error, then the same connection
     keeps working (framing is still aligned). *)
  Client.with_connection socket (fun _c -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  let reader = Protocol.reader fd in
  Protocol.write_frame fd "this is not json";
  (match Protocol.read_frame_buffered reader with
  | Protocol.Frame p -> (
    match Protocol.decode_response p with
    | Ok r -> expect_error "malformed payload" Protocol.Malformed_frame r
    | Error _ -> Alcotest.fail "undecodable error response")
  | other -> Alcotest.failf "expected a frame, got %s" (read_result_name other));
  Protocol.write_frame fd "[1, 2, 3]";
  (match Protocol.read_frame_buffered reader with
  | Protocol.Frame p -> (
    match Protocol.decode_response p with
    | Ok r -> expect_error "non-object request" Protocol.Bad_request r
    | Error _ -> Alcotest.fail "undecodable error response")
  | other -> Alcotest.failf "expected a frame, got %s" (read_result_name other));
  Protocol.write_frame fd "{\"op\": \"warp\"}";
  (match Protocol.read_frame_buffered reader with
  | Protocol.Frame p -> (
    match Protocol.decode_response p with
    | Ok r -> expect_error "unknown op" Protocol.Bad_request r
    | Error _ -> Alcotest.fail "undecodable error response")
  | other -> Alcotest.failf "expected a frame, got %s" (read_result_name other));
  (* A malformed pass option — sync_elim must be a boolean — is a
     structured error, never a silently applied default and never a
     dropped connection. *)
  Protocol.write_frame fd
    "{\"op\": \"schedule\", \"source\": \"DOACROSS I = 1, 10\\n A[I] = A[I-1]\\nENDDO\", \
     \"sync_elim\": \"yes\"}";
  (match Protocol.read_frame_buffered reader with
  | Protocol.Frame p -> (
    match Protocol.decode_response p with
    | Ok r -> expect_error "non-boolean sync_elim" Protocol.Bad_request r
    | Error _ -> Alcotest.fail "undecodable error response")
  | other -> Alcotest.failf "expected a frame, got %s" (read_result_name other));
  (* An unknown request member — a misspelled or unsupported pass
     option — is likewise answered, not ignored: a client asking for a
     pass the server does not know must hear about it. *)
  Protocol.write_frame fd
    "{\"op\": \"schedule\", \"source\": \"DOACROSS I = 1, 10\\n A[I] = A[I-1]\\nENDDO\", \
     \"migrate\": true}";
  (match Protocol.read_frame_buffered reader with
  | Protocol.Frame p -> (
    match Protocol.decode_response p with
    | Ok r -> expect_error "unknown request member" Protocol.Bad_request r
    | Error _ -> Alcotest.fail "undecodable error response")
  | other -> Alcotest.failf "expected a frame, got %s" (read_result_name other));
  (* The connection is still usable after five bad requests. *)
  Protocol.write_frame fd (Protocol.encode_request Protocol.Ping);
  (match Protocol.read_frame_buffered reader with
  | Protocol.Frame p -> Alcotest.(check bool) "ping after garbage" true
                          (Protocol.decode_response p = Ok Protocol.Pong)
  | other -> Alcotest.failf "expected a frame, got %s" (read_result_name other));
  (* Oversized length prefix: a structured error, then the server
     closes (stream position is unknowable). *)
  write_all fd (header_bytes (Protocol.max_frame + 17));
  (match Protocol.read_frame_buffered reader with
  | Protocol.Frame p -> (
    match Protocol.decode_response p with
    | Ok r -> expect_error "oversized frame" Protocol.Oversized_frame r
    | Error _ -> Alcotest.fail "undecodable error response")
  | other -> Alcotest.failf "expected a frame, got %s" (read_result_name other));
  check_read "server closed after oversized" "eof" (Protocol.read_frame_buffered reader);
  Unix.close fd;
  (* A truncated frame (peer dies mid-payload) must not wedge the
     daemon: the next connection is served normally. *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  write_all fd (header_bytes 100);
  write_all fd "half";
  Unix.close fd;
  Client.with_connection socket (fun c ->
      match Client.request_exn c Protocol.Ping with
      | Protocol.Pong -> ()
      | _ -> Alcotest.fail "daemon wedged by a truncated frame");
  stop_server s

let test_socket_backpressure () =
  (* queue_capacity 0: every connection beyond what a worker picks up
     instantly is refused with a structured overloaded error. *)
  let ((_, _, socket) as s) =
    start_server "backpressure" ~configure:(fun c -> { c with Server.queue_capacity = 0 })
  in
  (* The refusal is written unprompted on accept, so read it without
     sending anything — sending first races the server's close. *)
  for i = 1 to 5 do
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX socket);
    (match Protocol.read_frame fd with
    | Protocol.Frame p -> (
      match Protocol.decode_response p with
      | Ok r -> expect_error (Printf.sprintf "connection %d refused" i) Protocol.Overloaded r
      | Error _ -> Alcotest.fail "undecodable overload response")
    | other -> Alcotest.failf "expected an overload frame, got %s" (read_result_name other));
    check_read "closed after refusal" "eof" (Protocol.read_frame fd);
    Unix.close fd
  done;
  stop_server s

(* A mini-soak: concurrent clients replaying corpus requests against a
   small cache (eviction churn included), zero errors, clean drain. *)
let test_socket_mini_soak () =
  let ((server, _, socket) as s) =
    start_server "soak"
      ~configure:(fun c ->
        (* 4 stripes of 2 so the global bound is exactly 8. *)
        { c with Server.cache_capacity = 8; cache_stripes = 4; workers = 2 })
  in
  let names =
    Array.of_list (List.map (fun (l : Ast.loop) -> l.Ast.name) (Suite.all_loops ~smoke:true ()))
  in
  let clients = 4 and per_client = 100 in
  let domains =
    List.init clients (fun d ->
        Domain.spawn (fun () ->
            let rng = Isched_util.Prng.create (37 + d) in
            let errors = ref 0 in
            Client.with_connection socket (fun c ->
                for _ = 1 to per_client do
                  let name = names.(Isched_util.Prng.int rng (Array.length names)) in
                  match Client.request c (Protocol.schedule_request (Protocol.Corpus_loop name)) with
                  | Ok (Protocol.Scheduled _) -> ()
                  | Ok _ | Error _ -> incr errors
                done);
            !errors))
  in
  let errors = List.fold_left (fun a d -> a + Domain.join d) 0 domains in
  Alcotest.(check int) "zero errors across the soak" 0 errors;
  Alcotest.(check bool)
    "requests all served"
    true
    (Server.requests_served server >= clients * per_client);
  Alcotest.(check bool) "cache stayed bounded" true (Server.cache_length server <= 8);
  stop_server s

(* --- telemetry: stats shape, metrics verb, request traces --- *)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let mem path v =
  List.fold_left (fun v k -> Option.bind v (Json.member k)) (Some v) path

let num_at path v = Option.bind (mem path v) Json.to_float

(* The extended stats payload: the new members are present and
   consistent, the reply survives encode∘decode∘encode byte-identically,
   and a pre-extension payload (no stripe_entries/queue/workers/window
   members) still decodes and round-trips byte-identically — an old
   daemon's reply must not confuse a new client, nor vice versa. *)
let test_stats_shape_and_compat () =
  let server = Server.create (Server.default_config ~socket_path:"/tmp/unused.sock") in
  (match
     Server.handle server
       (Protocol.schedule_request (Protocol.Corpus_loop (Lazy.force a_doacross_loop)))
   with
  | Protocol.Scheduled _ -> ()
  | _ -> Alcotest.fail "expected a scheduled response");
  (match Server.handle server Protocol.Stats with
  | Protocol.Stats_reply v ->
    List.iter
      (fun path ->
        Alcotest.(check bool)
          ("stats has " ^ String.concat "." path)
          true
          (mem path v <> None))
      [
        [ "requests" ]; [ "cache"; "entries" ]; [ "cache"; "stripe_entries" ];
        [ "queue"; "capacity" ]; [ "queue"; "depth" ]; [ "queue"; "hwm" ];
        [ "workers"; "total" ]; [ "workers"; "busy" ]; [ "workers"; "utilisation" ];
        [ "window"; "p50_ns" ]; [ "window"; "p99_ns" ]; [ "window"; "rate" ];
        [ "cache_window"; "flagged_ratio" ]; [ "slow"; "threshold_ms" ];
        [ "slow"; "entries" ]; [ "counters" ];
      ];
    (* per-stripe occupancy sums to the cache total *)
    let stripes =
      match Option.bind (mem [ "cache"; "stripe_entries" ] v) Json.to_list with
      | Some l -> List.map (fun x -> int_of_float (Option.get (Json.to_float x))) l
      | None -> Alcotest.fail "stripe_entries is not an array"
    in
    Alcotest.(check int)
      "stripe occupancy sums to cache entries"
      (Server.cache_length server)
      (List.fold_left ( + ) 0 stripes);
    (* the live reply is a wire fixed point *)
    let once = Json.to_string (Protocol.response_to_json (Protocol.Stats_reply v)) in
    (match Protocol.decode_response once with
    | Ok r ->
      Alcotest.(check string)
        "encode∘decode∘encode is the identity"
        once
        (Json.to_string (Protocol.response_to_json r))
    | Error (_, e) -> Alcotest.failf "live stats reply does not decode: %s" e)
  | _ -> Alcotest.fail "expected stats");
  (* a pre-telemetry stats payload still decodes and round-trips *)
  let old =
    "{\"status\": \"ok\", \"op\": \"stats\", \"stats\": {\"requests\": 3, \
     \"cache\": {\"entries\": 1, \"capacity\": 1024}, \"counters\": {}}}"
  in
  match Protocol.decode_response old with
  | Ok r ->
    Alcotest.(check string)
      "old-style stats round-trips byte-identically"
      old
      (Json.to_string (Protocol.response_to_json r))
  | Error (_, e) -> Alcotest.failf "old-style stats payload rejected: %s" e

(* Every non-comment exposition line must be `name[{labels}] value`. *)
let check_exposition_grammar out =
  List.iter
    (fun line ->
      if line = "" then ()
      else if String.length line >= 7 && String.sub line 0 7 = "# TYPE " then ()
      else
        match String.rindex_opt line ' ' with
        | None -> Alcotest.failf "exposition line has no sample: %s" line
        | Some i -> (
          let v = String.sub line (i + 1) (String.length line - i - 1) in
          match float_of_string_opt v with
          | Some _ -> ()
          | None -> Alcotest.failf "exposition sample is not a number: %s" line))
    (String.split_on_char '\n' out)

let test_metrics_verb () =
  let ((_, _, socket) as s) = start_server "metrics" in
  Client.with_connection socket (fun c ->
      (match
         Client.request_exn c
           (Protocol.schedule_request (Protocol.Corpus_loop (Lazy.force a_doacross_loop)))
       with
      | Protocol.Scheduled _ -> ()
      | _ -> Alcotest.fail "expected a scheduled response");
      match Client.request_exn c Protocol.Metrics with
      | Protocol.Metrics_reply out ->
        check_exposition_grammar out;
        List.iter
          (fun needle ->
            Alcotest.(check bool) ("exposition has " ^ needle) true (contains ~needle out))
          [
            "# TYPE isched_serve_requests counter";
            "# TYPE isched_serve_window_p99_seconds gauge";
            "# TYPE isched_serve_cache_window_p50_seconds gauge";
            "isched_serve_cache_stripe_entries{stripe=\"0\"}";
            "isched_serve_queue_capacity";
            "isched_serve_workers_total";
          ]
      | _ -> Alcotest.fail "expected a metrics reply");
  stop_server s

(* Request traces through a live daemon: dense distinct ids, correct
   cache verdicts cold/warm, stage times where the work happened, and
   (with --slow-ms 0) promotion to the slow log plus the counter. *)
let test_request_traces () =
  Reqlog.reset ();
  let ((_, _, socket) as s) =
    start_server "traces" ~configure:(fun c -> { c with Server.slow_ms = 0. })
  in
  let slow_before =
    match Counters.find "serve.slow_requests" with Some (Counters.Counter n) -> n | _ -> 0
  in
  Client.with_connection socket (fun c ->
      let req = Protocol.schedule_request (Protocol.Corpus_loop (Lazy.force a_doacross_loop)) in
      (match Client.request_exn c req with
      | Protocol.Scheduled { cache_hit; _ } -> Alcotest.(check bool) "cold" false cache_hit
      | _ -> Alcotest.fail "expected a scheduled response");
      (match Client.request_exn c req with
      | Protocol.Scheduled { cache_hit; _ } -> Alcotest.(check bool) "warm" true cache_hit
      | _ -> Alcotest.fail "expected a scheduled response");
      match Client.request_exn c Protocol.Ping with
      | Protocol.Pong -> ()
      | _ -> Alcotest.fail "expected pong");
  stop_server s;
  let entries = Reqlog.recent () in
  Alcotest.(check int) "three traces recorded" 3 (List.length entries);
  let ids = List.map (fun e -> e.Reqlog.id) entries in
  Alcotest.(check (list int)) "ids dense and newest-first" [ 2; 1; 0 ] ids;
  (match entries with
  | [ ping; warm; cold ] ->
    Alcotest.(check string) "ping uncached" "uncached" (Reqlog.verdict_name ping.Reqlog.verdict);
    Alcotest.(check string) "warm verdict" "hit" (Reqlog.verdict_name warm.Reqlog.verdict);
    Alcotest.(check string) "cold verdict" "miss" (Reqlog.verdict_name cold.Reqlog.verdict);
    Alcotest.(check string) "scheduler recorded" "new" cold.Reqlog.scheduler;
    Alcotest.(check bool) "digest recorded" true (cold.Reqlog.digest <> 0);
    Alcotest.(check bool)
      "the miss spent time computing"
      true
      (cold.Reqlog.stage_ns.(Reqlog.stage_index Reqlog.Compute) > 0);
    Alcotest.(check int)
      "the hit computed nothing"
      0
      warm.Reqlog.stage_ns.(Reqlog.stage_index Reqlog.Compute);
    Alcotest.(check bool) "total time covers the work" true (cold.Reqlog.total_ns > 0);
    Alcotest.(check bool) "no error on success" true (cold.Reqlog.error = None);
    (* the JSON rendering of a live trace parses back *)
    (match Json.parse (Reqlog.entry_json cold) with
    | Ok v ->
      Alcotest.(check (option (float 0.)))
        "trace json keeps the compute stage"
        (Some (float_of_int cold.Reqlog.stage_ns.(Reqlog.stage_index Reqlog.Compute)))
        (num_at [ "stages"; "compute" ] v)
    | Error e -> Alcotest.failf "trace json does not parse: %s" e)
  | _ -> Alcotest.fail "expected exactly three entries");
  (* --slow-ms 0 promotes everything *)
  Alcotest.(check int) "slow log caught all three" 3 (List.length (Reqlog.slow ()));
  (match Counters.find "serve.slow_requests" with
  | Some (Counters.Counter n) ->
    Alcotest.(check bool) "slow counter advanced" true (n - slow_before >= 3)
  | _ -> Alcotest.fail "serve.slow_requests not registered");
  Reqlog.reset ()

(* With counters disabled the request path records nothing — and still
   answers correctly. *)
let test_telemetry_inert_when_disabled () =
  let ((_, _, socket) as s) = start_server "inert" in
  Reqlog.reset ();
  Counters.set_enabled false;
  Fun.protect
    ~finally:(fun () -> Counters.set_enabled true)
    (fun () ->
      Client.with_connection socket (fun c ->
          (match
             Client.request_exn c
               (Protocol.schedule_request
                  (Protocol.Corpus_loop (Lazy.force a_doacross_loop)))
           with
          | Protocol.Scheduled { loops = [ r ]; _ } ->
            Alcotest.(check bool) "still a real schedule" false r.Protocol.doall
          | _ -> Alcotest.fail "expected a scheduled response");
          match Client.request_exn c Protocol.Ping with
          | Protocol.Pong -> ()
          | _ -> Alcotest.fail "expected pong"));
  Alcotest.(check int) "nothing accepted while disabled" 0 (Reqlog.recorded ());
  Alcotest.(check int) "ring is empty" 0 (List.length (Reqlog.recent ()));
  stop_server s

(* --metrics-file: the accept loop dumps a parseable exposition via
   atomic rename. *)
let test_metrics_file_dump () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "isched-test-%d-metrics.prom" (Unix.getpid ()))
  in
  (try Sys.remove path with Sys_error _ -> ());
  let ((_, _, socket) as s) =
    start_server "metricsfile"
      ~configure:(fun c -> { c with Server.metrics_file = Some path; metrics_interval = 0. })
  in
  Client.with_connection socket (fun c ->
      match Client.request_exn c Protocol.Ping with
      | Protocol.Pong -> ()
      | _ -> Alcotest.fail "expected pong");
  let deadline = Unix.gettimeofday () +. 5. in
  while (not (Sys.file_exists path)) && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.02
  done;
  Alcotest.(check bool) "metrics file appeared" true (Sys.file_exists path);
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let out = really_input_string ic n in
  close_in ic;
  Sys.remove path;
  check_exposition_grammar out;
  Alcotest.(check bool)
    "dump starts with a type header"
    true
    (String.length out >= 7 && String.sub out 0 7 = "# TYPE ");
  stop_server s

let suite =
  [
    prop_request_roundtrip;
    prop_response_roundtrip;
    prop_decode_total;
    prop_scheduled_fast_path;
    Alcotest.test_case "framing: round trip, buffered back-to-back" `Quick test_framing_roundtrip;
    Alcotest.test_case "framing: eof" `Quick test_framing_eof;
    Alcotest.test_case "framing: truncated header" `Quick test_framing_truncated_header;
    Alcotest.test_case "framing: truncated payload" `Quick test_framing_truncated_payload;
    Alcotest.test_case "framing: oversized is rejected unread" `Quick test_framing_oversized;
    Alcotest.test_case "framing: negative length" `Quick test_framing_negative_length;
    Alcotest.test_case "framing: stop flag ends the wait" `Quick test_framing_stop;
    Alcotest.test_case "cache: hit/miss basics" `Quick test_cache_hit_miss;
    Alcotest.test_case "cache: failed compute leaves nothing" `Quick
      test_cache_failed_compute_not_cached;
    Alcotest.test_case "cache: exact LRU order, capacity 1..4" `Quick test_cache_lru_sweep;
    Alcotest.test_case "cache: exactly-once compute under 8 domains" `Quick
      test_cache_exactly_once;
    Alcotest.test_case "suite: corpus enumeration is shared and pinned" `Quick
      test_suite_enumeration_pinned;
    Alcotest.test_case "server: served equals fresh pipeline (cold+warm, all loops)" `Slow
      test_served_equals_fresh;
    Alcotest.test_case "server: multi-loop source text" `Quick test_served_text_source;
    Alcotest.test_case "server: error mapping" `Quick test_handler_errors;
    Alcotest.test_case "server: cache key covers sync_elim" `Quick
      test_cache_key_covers_sync_elim;
    Alcotest.test_case "server: --validate catches a corrupted cache entry" `Quick
      test_validate_catches_corruption;
    Alcotest.test_case "server: exactly-once compute across domains" `Quick
      test_server_exactly_once;
    Alcotest.test_case "daemon: socket session end to end" `Quick test_socket_session;
    Alcotest.test_case "daemon: hostile frames get structured errors" `Quick
      test_socket_hostile_frames;
    Alcotest.test_case "daemon: bounded queue pushes back" `Quick test_socket_backpressure;
    Alcotest.test_case "daemon: mini-soak with eviction churn" `Slow test_socket_mini_soak;
    Alcotest.test_case "stats: extended shape and wire compatibility" `Quick
      test_stats_shape_and_compat;
    Alcotest.test_case "daemon: metrics verb serves a Prometheus exposition" `Quick
      test_metrics_verb;
    Alcotest.test_case "daemon: request traces land in the reqlog" `Quick test_request_traces;
    Alcotest.test_case "daemon: telemetry is inert when counters are disabled" `Quick
      test_telemetry_inert_when_disabled;
    Alcotest.test_case "daemon: --metrics-file dumps atomically" `Quick test_metrics_file_dump;
  ]
