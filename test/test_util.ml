(* Unit and property tests for Isched_util. *)

module Prng = Isched_util.Prng
module Union_find = Isched_util.Union_find
module Pqueue = Isched_util.Pqueue
module Vec = Isched_util.Vec
module Table = Isched_util.Table
module Pool = Isched_util.Pool

let check = Alcotest.check

let qtest ?(count = 200) name gen law =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen law)

(* Local substring check to avoid extra dependencies. *)
let contains s affix =
  let n = String.length s and m = String.length affix in
  let rec go i = i + m <= n && (String.sub s i m = affix || go (i + 1)) in
  m = 0 || go 0

(* --- Prng --- *)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Prng.bits64 a) (Prng.bits64 b) then incr same
  done;
  Alcotest.(check bool) "different seeds diverge" true (!same < 4)

let test_prng_split_independent () =
  let parent = Prng.create 7 in
  let child = Prng.split parent in
  (* Consuming the child must not change the parent's continuation. *)
  let parent' = Prng.copy parent in
  for _ = 1 to 10 do
    ignore (Prng.bits64 child)
  done;
  check Alcotest.int64 "parent unaffected" (Prng.bits64 parent') (Prng.bits64 parent)

let test_prng_int_bounds () =
  let rng = Prng.create 3 in
  for _ = 1 to 1000 do
    let v = Prng.int rng 7 in
    Alcotest.(check bool) "in [0,7)" true (v >= 0 && v < 7)
  done

let test_prng_int_in_bounds () =
  let rng = Prng.create 4 in
  for _ = 1 to 1000 do
    let v = Prng.int_in rng (-3) 5 in
    Alcotest.(check bool) "in [-3,5]" true (v >= -3 && v <= 5)
  done

let test_prng_int_invalid () =
  let rng = Prng.create 5 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Prng.int: bound must be positive") (fun () ->
      ignore (Prng.int rng 0))

let test_prng_float_range () =
  let rng = Prng.create 6 in
  for _ = 1 to 1000 do
    let f = Prng.float rng in
    Alcotest.(check bool) "in [0,1)" true (f >= 0. && f < 1.)
  done

let test_prng_bool_extremes () =
  let rng = Prng.create 8 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0 never" false (Prng.bool rng 0.);
    Alcotest.(check bool) "p=1 always" true (Prng.bool rng 1.)
  done

let test_prng_weighted () =
  let rng = Prng.create 9 in
  let counts = Hashtbl.create 4 in
  for _ = 1 to 2000 do
    let v = Prng.weighted rng [ (0.9, "a"); (0.1, "b") ] in
    Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
  done;
  let a = Option.value ~default:0 (Hashtbl.find_opt counts "a") in
  Alcotest.(check bool) "weights respected" true (a > 1500)

let test_prng_weighted_invalid () =
  let rng = Prng.create 10 in
  Alcotest.check_raises "zero weights"
    (Invalid_argument "Prng.weighted: weights must sum to > 0") (fun () ->
      ignore (Prng.weighted rng [ (0., "a") ]))

let test_prng_choose () =
  let rng = Prng.create 11 in
  for _ = 1 to 100 do
    let v = Prng.choose rng [| 1; 2; 3 |] in
    Alcotest.(check bool) "member" true (List.mem v [ 1; 2; 3 ])
  done

let test_prng_shuffle_permutation () =
  let rng = Prng.create 12 in
  let arr = Array.init 20 (fun i -> i) in
  Prng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check Alcotest.(array int) "is a permutation" (Array.init 20 (fun i -> i)) sorted

(* --- Union_find --- *)

let test_uf_singletons () =
  let uf = Union_find.create 4 in
  Alcotest.(check bool) "initially apart" false (Union_find.same uf 0 1);
  check Alcotest.int "4 groups" 4 (List.length (Union_find.groups uf))

let test_uf_union () =
  let uf = Union_find.create 6 in
  ignore (Union_find.union uf 0 1);
  ignore (Union_find.union uf 2 3);
  ignore (Union_find.union uf 1 2);
  Alcotest.(check bool) "0~3" true (Union_find.same uf 0 3);
  Alcotest.(check bool) "0!~4" false (Union_find.same uf 0 4);
  check Alcotest.int "3 groups" 3 (List.length (Union_find.groups uf))

let test_uf_groups_sorted () =
  let uf = Union_find.create 5 in
  ignore (Union_find.union uf 4 1);
  let groups = Union_find.groups uf in
  List.iter
    (fun (_, members) ->
      Alcotest.(check bool) "members ascending" true (List.sort compare members = members))
    groups

let uf_transitive =
  qtest "union-find: transitivity on random unions"
    QCheck2.(
      Gen.(list_size (int_bound 30) (pair (int_bound 19) (int_bound 19))))
    (fun pairs ->
      let uf = Union_find.create 20 in
      List.iter (fun (a, b) -> ignore (Union_find.union uf a b)) pairs;
      (* same is an equivalence relation consistent with groups *)
      let groups = Union_find.groups uf in
      List.for_all
        (fun (_, members) ->
          List.for_all (fun x -> List.for_all (fun y -> Union_find.same uf x y) members) members)
        groups)

(* --- Pqueue --- *)

let test_pqueue_order () =
  let q = Pqueue.create () in
  Pqueue.push q ~prio:1 ~tie:0 "low";
  Pqueue.push q ~prio:9 ~tie:0 "high";
  Pqueue.push q ~prio:5 ~tie:0 "mid";
  check Alcotest.string "high first" "high" (Pqueue.pop q);
  check Alcotest.string "mid second" "mid" (Pqueue.pop q);
  check Alcotest.string "low last" "low" (Pqueue.pop q)

let test_pqueue_tie_break () =
  let q = Pqueue.create () in
  Pqueue.push q ~prio:5 ~tie:2 "second";
  Pqueue.push q ~prio:5 ~tie:1 "first";
  check Alcotest.string "smaller tie first" "first" (Pqueue.pop q);
  check Alcotest.string "then larger tie" "second" (Pqueue.pop q)

let test_pqueue_empty () =
  let q : int Pqueue.t = Pqueue.create () in
  Alcotest.(check bool) "is_empty" true (Pqueue.is_empty q);
  Alcotest.check_raises "pop raises" Not_found (fun () -> ignore (Pqueue.pop q))

let test_pqueue_peek () =
  let q = Pqueue.create () in
  Pqueue.push q ~prio:1 ~tie:0 10;
  Pqueue.push q ~prio:2 ~tie:0 20;
  check Alcotest.int "peek max" 20 (Pqueue.peek q);
  check Alcotest.int "peek does not remove" 2 (Pqueue.length q)

let test_pqueue_to_list () =
  let q = Pqueue.create () in
  List.iter (fun (p, v) -> Pqueue.push q ~prio:p ~tie:v v) [ (3, 1); (1, 2); (2, 3) ];
  check Alcotest.(list int) "pop order" [ 1; 3; 2 ] (Pqueue.to_list q);
  check Alcotest.int "unchanged" 3 (Pqueue.length q)

let pqueue_sorts =
  qtest "pqueue: pops in non-increasing priority order"
    QCheck2.Gen.(list_size (int_bound 60) (int_range (-50) 50))
    (fun prios ->
      let q = Pqueue.create () in
      List.iteri (fun i p -> Pqueue.push q ~prio:p ~tie:i p) prios;
      let out = ref [] in
      while not (Pqueue.is_empty q) do
        out := Pqueue.pop q :: !out
      done;
      (* pops are non-increasing, so the accumulated list is ascending *)
      !out = List.sort compare prios && List.length prios = List.length !out)

(* --- Vec --- *)

let test_vec_push_get () =
  let v = Vec.create () in
  for i = 0 to 99 do
    Vec.push v (i * i)
  done;
  check Alcotest.int "length" 100 (Vec.length v);
  check Alcotest.int "get 7" 49 (Vec.get v 7);
  check Alcotest.int "last" (99 * 99) (Vec.last v)

let test_vec_bounds () =
  let v = Vec.create () in
  Vec.push v 1;
  Alcotest.check_raises "get oob" (Invalid_argument "Vec.get") (fun () -> ignore (Vec.get v 1));
  Alcotest.check_raises "set oob" (Invalid_argument "Vec.set") (fun () -> Vec.set v 5 0)

let test_vec_roundtrip () =
  let xs = [ 1; 2; 3; 4 ] in
  check Alcotest.(list int) "of_list/to_list" xs (Vec.to_list (Vec.of_list xs));
  check Alcotest.(array int) "to_array" [| 1; 2; 3; 4 |] (Vec.to_array (Vec.of_list xs))

let test_vec_clear () =
  let v = Vec.of_list [ 1; 2 ] in
  Vec.clear v;
  check Alcotest.int "empty after clear" 0 (Vec.length v);
  Alcotest.check_raises "last raises" Not_found (fun () -> ignore (Vec.last v))

let test_vec_iteri () =
  let v = Vec.of_list [ 10; 20; 30 ] in
  let acc = ref [] in
  Vec.iteri (fun i x -> acc := (i, x) :: !acc) v;
  check
    Alcotest.(list (pair int int))
    "indices in order"
    [ (0, 10); (1, 20); (2, 30) ]
    (List.rev !acc)

let test_vec_ensure_size () =
  let v = Vec.create () in
  Vec.ensure_size v 5 7;
  check Alcotest.int "grows to size" 5 (Vec.length v);
  check Alcotest.int "filled with default" 7 (Vec.get v 3);
  Vec.ensure_size v 3 9;
  check Alcotest.int "never shrinks" 5 (Vec.length v);
  check Alcotest.int "existing cells untouched" 7 (Vec.get v 2)

let test_vec_get_or () =
  let v = Vec.of_list [ 1; 2 ] in
  check Alcotest.int "in range" 2 (Vec.get_or v 1 0);
  check Alcotest.int "past the end" 0 (Vec.get_or v 5 0);
  check Alcotest.int "negative index" 0 (Vec.get_or v (-1) 0)

(* --- Pool --- *)

(* The box running the tests may expose a single core, where the pool's
   oversubscription cap turns every parallel call into the inline path;
   forcing the cap up exercises real worker domains everywhere. *)
let with_forced_pool f =
  Pool.set_max_active (Some 8);
  Fun.protect ~finally:(fun () -> Pool.set_max_active None) f

let counter_value name =
  match Isched_obs.Counters.find name with
  | Some (Isched_obs.Counters.Counter v) -> v
  | _ -> Alcotest.failf "counter %s not registered" name

let test_pool_map_order () =
  with_forced_pool @@ fun () ->
  let xs = List.init 100 (fun i -> i) in
  let f x = (x * 37) mod 101 in
  let expected = List.map f xs in
  List.iter
    (fun jobs ->
      check Alcotest.(list int) (Printf.sprintf "jobs=%d" jobs) expected (Pool.map ~jobs f xs))
    [ 1; 2; 4 ]

let test_pool_mapi () =
  with_forced_pool @@ fun () ->
  check
    Alcotest.(list string)
    "indices in input order" [ "0a"; "1b"; "2c" ]
    (Pool.mapi ~jobs:3 (fun i s -> string_of_int i ^ s) [ "a"; "b"; "c" ])

let test_pool_exception () =
  with_forced_pool @@ fun () ->
  Alcotest.check_raises "worker exception reaches the caller" Exit (fun () ->
      ignore (Pool.map ~jobs:2 (fun x -> if x = 3 then raise Exit else x) [ 1; 2; 3; 4 ]))

exception Pool_boom

(* Deep enough that the raise site's frames are distinguishable from the
   re-raise inside [Pool]; [opaque_identity] keeps it out of inlining. *)
let rec deep_raise n =
  if n = 0 then raise Pool_boom else 1 + Sys.opaque_identity (deep_raise (n - 1))

let test_pool_exception_backtrace () =
  with_forced_pool @@ fun () ->
  (* Regression: the pool re-raised worker exceptions with a bare
     [raise], so the backtrace pointed at the pool's result loop instead
     of the worker's raise site.  Only assert on builds where local
     backtraces are informative at all. *)
  let prev = Printexc.backtrace_status () in
  Printexc.record_backtrace true;
  Fun.protect ~finally:(fun () -> Printexc.record_backtrace prev) @@ fun () ->
  let control =
    try ignore (deep_raise 5);
        ""
    with Pool_boom -> Printexc.raw_backtrace_to_string (Printexc.get_raw_backtrace ())
  in
  match Pool.map ~jobs:2 (fun x -> if x = 2 then deep_raise 5 else x) [ 1; 2; 3; 4 ] with
  | _ -> Alcotest.fail "expected Pool_boom"
  | exception Pool_boom ->
    let bt = Printexc.raw_backtrace_to_string (Printexc.get_raw_backtrace ()) in
    if contains control "deep_raise" then
      Alcotest.(check bool) "worker raise site survives the domain hop" true
        (contains bt "deep_raise")

let test_pool_defaults () =
  let saved = Pool.default_jobs () in
  Pool.set_default_jobs 3;
  check Alcotest.int "updated" 3 (Pool.default_jobs ());
  Pool.set_default_jobs saved;
  Alcotest.(check bool) "recommended positive" true (Pool.recommended_jobs () >= 1);
  Alcotest.check_raises "zero rejected"
    (Invalid_argument "Pool.set_default_jobs: jobs must be >= 1") (fun () ->
      Pool.set_default_jobs 0);
  Alcotest.check_raises "zero max_active rejected"
    (Invalid_argument "Pool.set_max_active: limit must be >= 1") (fun () ->
      Pool.set_max_active (Some 0));
  Alcotest.check_raises "zero grain rejected"
    (Invalid_argument "Pool.set_grain: grain must be >= 1") (fun () -> Pool.set_grain (Some 0))

let dist_count name =
  match Isched_obs.Counters.find name with
  | Some (Isched_obs.Counters.Dist s) -> s.Isched_obs.Counters.count
  | _ -> Alcotest.failf "distribution %s not registered" name

let test_pool_reuses_domains () =
  with_forced_pool @@ fun () ->
  let xs = List.init 8 (fun i -> i) in
  (* Warm the pool up to this width once... *)
  ignore (Pool.map ~jobs:4 succ xs);
  let spawned = counter_value "pool.domains_spawned" in
  (* ...then every later run at the same (or smaller) width must reuse
     the parked workers instead of spawning fresh domains per call. *)
  ignore (Pool.map ~jobs:4 succ xs);
  ignore (Pool.mapi ~jobs:2 (fun i x -> i + x) xs);
  check Alcotest.int "no new domains after warm-up" spawned
    (counter_value "pool.domains_spawned")

let test_pool_nested_no_deadlock () =
  with_forced_pool @@ fun () ->
  (* A nested call from inside a pooled job must not park itself on the
     queue its own workers are consuming; it runs inline instead. *)
  let inner x = Pool.map ~jobs:4 (fun y -> (x * 10) + y) [ 1; 2; 3 ] in
  let outer = [ 1; 2; 3; 4; 5; 6 ] in
  check
    Alcotest.(list (list int))
    "nested map completes with the right results" (List.map inner outer)
    (Pool.map ~jobs:4 inner outer)

let test_pool_grain_chunking () =
  with_forced_pool @@ fun () ->
  Pool.set_grain (Some 5);
  Fun.protect ~finally:(fun () -> Pool.set_grain None) @@ fun () ->
  let tasks0 = counter_value "pool.tasks" in
  let chunks0 = dist_count "pool.queue_depth" in
  let xs = List.init 23 (fun i -> i) in
  check Alcotest.(list int) "results" (List.map succ xs) (Pool.map ~jobs:2 succ xs);
  check Alcotest.int "every item counted once" 23 (counter_value "pool.tasks" - tasks0);
  check Alcotest.int "one depth sample per chunk (ceil 23/5)" 5
    (dist_count "pool.queue_depth" - chunks0)

let pool_matches_list_map =
  qtest "pool: map over domains equals List.map"
    QCheck2.Gen.(pair (int_range 1 4) (list_size (int_bound 40) (int_range (-1000) 1000)))
    (fun (jobs, xs) ->
      with_forced_pool @@ fun () ->
      let f x = (x * x) - (3 * x) in
      Pool.map ~jobs f xs = List.map f xs)

(* --- Table --- *)

let test_table_render () =
  let t = Table.create ~title:"demo" ~columns:[ ("name", Table.Left); ("n", Table.Right) ] in
  Table.add_row t [ "a"; "1" ];
  Table.add_sep t;
  Table.add_row t [ "total"; "1" ];
  let s = Table.render t in
  Alcotest.(check bool) "has title" true (contains s "demo");
  Alcotest.(check bool) "has cell" true (contains s "total")

let test_table_arity () =
  let t = Table.create ~title:"" ~columns:[ ("a", Table.Left) ] in
  Alcotest.check_raises "wrong arity" (Invalid_argument "Table.add_row: expected 1 cells, got 2")
    (fun () -> Table.add_row t [ "x"; "y" ])

let test_table_formats () =
  check Alcotest.string "int" "42" (Table.fmt_int 42);
  check Alcotest.string "float" "3.14" (Table.fmt_float 3.14159);
  check Alcotest.string "pct" "87.36%" (Table.fmt_pct 87.3611);
  check Alcotest.string "pct decimals" "87.4%" (Table.fmt_pct ~decimals:1 87.3611)

let test_table_alignment_width () =
  let t = Table.create ~title:"" ~columns:[ ("col", Table.Right) ] in
  Table.add_row t [ "7" ];
  Table.add_row t [ "12345" ];
  let lines = String.split_on_char '\n' (Table.render t) in
  let widths = List.filter_map (fun l -> if l = "" then None else Some (String.length l)) lines in
  Alcotest.(check bool) "all lines same width" true
    (match widths with [] -> false | w :: ws -> List.for_all (( = ) w) ws)

let suite =
  [
    ("prng: deterministic", `Quick, test_prng_deterministic);
    ("prng: seed sensitivity", `Quick, test_prng_seed_sensitivity);
    ("prng: split independence", `Quick, test_prng_split_independent);
    ("prng: int bounds", `Quick, test_prng_int_bounds);
    ("prng: int_in bounds", `Quick, test_prng_int_in_bounds);
    ("prng: int invalid bound", `Quick, test_prng_int_invalid);
    ("prng: float range", `Quick, test_prng_float_range);
    ("prng: bool extremes", `Quick, test_prng_bool_extremes);
    ("prng: weighted distribution", `Quick, test_prng_weighted);
    ("prng: weighted invalid", `Quick, test_prng_weighted_invalid);
    ("prng: choose membership", `Quick, test_prng_choose);
    ("prng: shuffle is a permutation", `Quick, test_prng_shuffle_permutation);
    ("union-find: singletons", `Quick, test_uf_singletons);
    ("union-find: unions merge", `Quick, test_uf_union);
    ("union-find: groups sorted", `Quick, test_uf_groups_sorted);
    uf_transitive;
    ("pqueue: priority order", `Quick, test_pqueue_order);
    ("pqueue: deterministic tie-break", `Quick, test_pqueue_tie_break);
    ("pqueue: empty behaviour", `Quick, test_pqueue_empty);
    ("pqueue: peek", `Quick, test_pqueue_peek);
    ("pqueue: to_list preserves queue", `Quick, test_pqueue_to_list);
    pqueue_sorts;
    ("vec: push/get/last", `Quick, test_vec_push_get);
    ("vec: bounds checking", `Quick, test_vec_bounds);
    ("vec: list/array roundtrip", `Quick, test_vec_roundtrip);
    ("vec: clear", `Quick, test_vec_clear);
    ("vec: iteri order", `Quick, test_vec_iteri);
    ("vec: ensure_size", `Quick, test_vec_ensure_size);
    ("vec: get_or out of range", `Quick, test_vec_get_or);
    ("pool: map preserves order across job counts", `Quick, test_pool_map_order);
    ("pool: mapi indices", `Quick, test_pool_mapi);
    ("pool: exceptions propagate", `Quick, test_pool_exception);
    ("pool: worker backtraces preserved", `Quick, test_pool_exception_backtrace);
    ("pool: default jobs knob", `Quick, test_pool_defaults);
    ("pool: domains reused across runs", `Quick, test_pool_reuses_domains);
    ("pool: nested map runs inline, no deadlock", `Quick, test_pool_nested_no_deadlock);
    ("pool: grain controls chunk accounting", `Quick, test_pool_grain_chunking);
    pool_matches_list_map;
    ("table: render contains content", `Quick, test_table_render);
    ("table: arity check", `Quick, test_table_arity);
    ("table: cell formatting", `Quick, test_table_formats);
    ("table: uniform line width", `Quick, test_table_alignment_width);
  ]
