(* Tests for the Parafrase-surrogate restructuring and the DOACROSS
   categorization. *)

module Restructure = Isched_transform.Restructure
module Doall = Isched_transform.Doall
module Dep = Isched_deps.Dep
module Ast = Isched_frontend.Ast
module Parser = Isched_frontend.Parser
module Equivalence = Isched_harness.Equivalence

let check = Alcotest.check
let parse = Parser.parse_loop

let run src = Restructure.run (parse src)

let has_action p r = List.exists p r.Restructure.actions

let check_equiv src =
  let l = parse src in
  let r = Restructure.run l in
  match Equivalence.check_restructure l r with
  | Ok () -> ()
  | Error es -> Alcotest.failf "not equivalent: %s" (String.concat "; " es)

(* --- induction-variable substitution --- *)

let test_iv_removed () =
  let r = run "DO I = 1, 10\n S1: K = K + 2\n S2: A[I] = K * E[I]\nENDDO" in
  Alcotest.(check bool) "action recorded" true
    (has_action (function Restructure.Iv_subst { name = "K"; step = 2 } -> true | _ -> false) r);
  check Alcotest.int "update statement deleted" 1 (List.length r.Restructure.loop.Ast.body);
  Alcotest.(check bool) "loop becomes doall" true (Dep.is_doall r.Restructure.loop)

let test_iv_closed_form_before_after () =
  (* A use before the update sees one fewer step than a use after. *)
  let r = run "DO I = 1, 5\n S1: A[I] = K\n S2: K = K - 3\n S3: B[I] = K\nENDDO" in
  Alcotest.(check bool) "recorded with step -3" true
    (has_action (function Restructure.Iv_subst { step = -3; _ } -> true | _ -> false) r);
  check_equiv "DO I = 1, 5\n S1: A[I] = K\n S2: K = K - 3\n S3: B[I] = K\nENDDO"

let test_iv_not_applied_when_guarded () =
  let r = run "DO I = 1, 10\n S1: IF (E[I] > 0) K = K + 1\n S2: A[I] = K\nENDDO" in
  Alcotest.(check bool) "guarded update not substituted" false
    (has_action (function Restructure.Iv_subst _ -> true | _ -> false) r)

let test_iv_not_applied_nonconstant_step () =
  let r = run "DO I = 1, 10\n S1: K = K + E[I]\n S2: A[I] = K\nENDDO" in
  Alcotest.(check bool) "array step is not an IV" false
    (has_action (function Restructure.Iv_subst _ -> true | _ -> false) r)

let test_iv_equivalence () = check_equiv "DO I = 1, 8\n S1: K = K + 2\n S2: OUT[I] = K * E[I]\nENDDO"

(* --- reduction replacement --- *)

let test_reduction_replaced () =
  let r = run "DO I = 1, 10\n S1: S = S + A[I]\n S2: B[I] = E[I]\nENDDO" in
  Alcotest.(check bool) "action recorded" true
    (has_action (function Restructure.Reduction { name = "S"; op = Ast.Add; _ } -> true | _ -> false) r);
  Alcotest.(check bool) "becomes doall" true (Dep.is_doall r.Restructure.loop)

let test_reduction_product () =
  let r = run "DO I = 1, 6\n P = P * E[I]\nENDDO" in
  Alcotest.(check bool) "product reduction" true
    (has_action (function Restructure.Reduction { op = Ast.Mul; _ } -> true | _ -> false) r);
  check_equiv "DO I = 1, 6\n P = P * E[I]\nENDDO"

let test_reduction_subtraction () = check_equiv "DO I = 1, 9\n S = S - E[I] * C[I]\nENDDO"

let test_reduction_not_when_read_elsewhere () =
  let r = run "DO I = 1, 10\n S1: S = S + A[I]\n S2: B[I] = S\nENDDO" in
  Alcotest.(check bool) "other read blocks replacement" false
    (has_action (function Restructure.Reduction _ -> true | _ -> false) r)

let test_reduction_not_when_guarded () =
  let r = run "DO I = 1, 10\n IF (E[I] > 0) S = S + A[I]\nENDDO" in
  Alcotest.(check bool) "guarded reduction kept" false
    (has_action (function Restructure.Reduction _ -> true | _ -> false) r)

let test_reduction_equivalence () = check_equiv "DO I = 1, 12\n EN = EN + E[I] * E[I]\nENDDO"

(* --- scalar expansion --- *)

let test_expansion () =
  let r = run "DO I = 1, 10\n S1: T = E[I] + C[I]\n S2: B[I] = T * T\nENDDO" in
  Alcotest.(check bool) "action recorded" true
    (has_action (function Restructure.Expanded { name = "T"; _ } -> true | _ -> false) r);
  Alcotest.(check bool) "becomes doall" true (Dep.is_doall r.Restructure.loop)

let test_expansion_blocked_by_upward_read () =
  (* T read before it is written: the value flows from the previous
     iteration, expansion would be wrong. *)
  let r = run "DO I = 1, 10\n S1: B[I] = T\n S2: T = E[I]\nENDDO" in
  Alcotest.(check bool) "not expanded" false
    (has_action (function Restructure.Expanded _ -> true | _ -> false) r)

let test_expansion_blocked_by_guard () =
  let r = run "DO I = 1, 10\n S1: IF (E[I] > 0) T = C[I]\n S2: B[I] = T\nENDDO" in
  Alcotest.(check bool) "guarded write blocks expansion" false
    (has_action (function Restructure.Expanded _ -> true | _ -> false) r)

let test_expansion_equivalence () =
  check_equiv "DO I = 1, 7\n S1: T = E[I] * 2\n S2: B[I] = T + C[I]\n S3: T2 = T + 1\n S4: D2[I] = T2\nENDDO"

let test_combined_transforms () =
  let src =
    "DO I = 1, 10\n S1: K = K + 1\n S2: T = E[I] * K\n S3: EN = EN + T\n S4: OUT[I] = T\nENDDO"
  in
  let r = run src in
  check Alcotest.int "three actions" 3 (List.length r.Restructure.actions);
  Alcotest.(check bool) "fully parallel afterwards" true (Dep.is_doall r.Restructure.loop);
  check_equiv src

let test_recurrence_untouched () =
  let src = "DO I = 1, 10\n A[I] = A[I-1] + E[I]\nENDDO" in
  let r = run src in
  check Alcotest.int "no actions" 0 (List.length r.Restructure.actions);
  Alcotest.(check bool) "still doacross" false (Dep.is_doall r.Restructure.loop)

(* --- parallelize / categorize --- *)

let test_parallelize () =
  (match Doall.parallelize (parse "DO I = 1, 10\n S = S + A[I]\nENDDO") with
  | `Doall _ -> ()
  | `Doacross _ -> Alcotest.fail "reduction loop should become doall");
  match Doall.parallelize (parse "DO I = 1, 10\n A[I] = A[I-2]\nENDDO") with
  | `Doacross _ -> ()
  | `Doall _ -> Alcotest.fail "recurrence cannot be doall"

let cat = Alcotest.testable (fun ppf c -> Format.pp_print_string ppf (Doall.category_name c)) ( = )

let test_categorize () =
  check cat "control dep" Doall.Control_dep
    (Doall.categorize (parse "DO I = 1, 10\n IF (E[I] > 0) A[I] = A[I-1]\nENDDO"));
  check cat "anti/output" Doall.Anti_output
    (Doall.categorize (parse "DO I = 1, 10\n S1: B[I] = A[I+1]\n S2: A[I] = E[I]\nENDDO"));
  check cat "induction" Doall.Induction
    (Doall.categorize (parse "DO I = 1, 10\n S1: K = K + 1\n S2: A[I] = K + A[I-1]\nENDDO"));
  check cat "reduction" Doall.Reduction
    (Doall.categorize (parse "DO I = 1, 10\n S1: S = S + A[I]\n S2: A[I] = A[I-1]\nENDDO"));
  check cat "simple subscript" Doall.Simple_subscript
    (Doall.categorize (parse "DO I = 1, 10\n A[I] = A[I-1] + E[I]\nENDDO"));
  check cat "others" Doall.Other
    (Doall.categorize (parse "DO I = 1, 10\n A[IDX[I]] = E[I]\nENDDO"))

let test_category_names_unique () =
  let names = List.map Doall.category_name Doall.all_categories in
  check Alcotest.int "six types" 6 (List.length names);
  check Alcotest.int "unique" 6 (List.length (List.sort_uniq compare names))

(* property: restructuring never breaks semantics on generated corpora *)

let restructure_equivalence =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:60 ~name:"restructure: semantics preserved on generated loops"
       QCheck2.Gen.(int_range 0 100000)
       (fun seed ->
         let profile =
           {
             Isched_perfect.Profile.mdg with
             seed;
             n_generated = 1;
             n_iters = 12 (* keep the check fast *);
           }
         in
         match Isched_perfect.Genloop.generate profile with
         | [ l ] -> (
           let l = { l with Ast.hi = l.Ast.lo + profile.n_iters - 1 } in
           match Equivalence.check_restructure l (Restructure.run l) with
           | Ok () -> true
           | Error _ -> false)
         | _ -> false))

let suite =
  [
    ("iv: substitution removes the update", `Quick, test_iv_removed);
    ("iv: closed form before/after the update", `Quick, test_iv_closed_form_before_after);
    ("iv: guarded update not substituted", `Quick, test_iv_not_applied_when_guarded);
    ("iv: non-constant step not substituted", `Quick, test_iv_not_applied_nonconstant_step);
    ("iv: semantics preserved", `Quick, test_iv_equivalence);
    ("reduction: sum replaced", `Quick, test_reduction_replaced);
    ("reduction: product replaced", `Quick, test_reduction_product);
    ("reduction: subtraction preserved", `Quick, test_reduction_subtraction);
    ("reduction: blocked by other reads", `Quick, test_reduction_not_when_read_elsewhere);
    ("reduction: blocked by guards", `Quick, test_reduction_not_when_guarded);
    ("reduction: semantics preserved", `Quick, test_reduction_equivalence);
    ("expansion: write-before-read scalar", `Quick, test_expansion);
    ("expansion: blocked by upward-exposed read", `Quick, test_expansion_blocked_by_upward_read);
    ("expansion: blocked by guards", `Quick, test_expansion_blocked_by_guard);
    ("expansion: semantics preserved", `Quick, test_expansion_equivalence);
    ("transforms compose and preserve semantics", `Quick, test_combined_transforms);
    ("true recurrences are untouched", `Quick, test_recurrence_untouched);
    ("parallelize: doall vs doacross", `Quick, test_parallelize);
    ("categorize: the six DOACROSS types", `Quick, test_categorize);
    ("categories are exactly six", `Quick, test_category_names_unique);
    restructure_equivalence;
  ]
