(* Tests for the experiment harness: the Fig. 5 pipeline, the table
   builders, the worked example, and the headline results' shape. *)

module Pipeline = Isched_harness.Pipeline
module Report = Isched_harness.Report
module Worked_example = Isched_harness.Worked_example
module Suite = Isched_perfect.Suite
module Machine = Isched_ir.Machine
module Table = Isched_util.Table

let check = Alcotest.check

let contains s affix =
  let n = String.length s and m = String.length affix in
  let rec go i = i + m <= n && (String.sub s i m = affix || go (i + 1)) in
  m = 0 || go 0

(* small corpora for fast table tests *)
let small_benches () =
  List.map
    (fun p -> Suite.load { p with Isched_perfect.Profile.n_generated = 3 })
    Isched_perfect.Profile.all

let test_pipeline_prepare () =
  let l = Isched_frontend.Parser.parse_loop "DOACROSS I = 1, 10\n A[I] = A[I-1]\nENDDO" in
  (match Pipeline.prepare l with
  | Pipeline.Doacross { prog; graph; _ } ->
    check Alcotest.int "graph covers the program" (Array.length prog.Isched_ir.Program.body)
      graph.Isched_dfg.Dfg.n
  | Pipeline.Doall _ -> Alcotest.fail "recurrence is doacross");
  let l2 = Isched_frontend.Parser.parse_loop "DO I = 1, 10\n S = S + E[I]\nENDDO" in
  match Pipeline.prepare l2 with
  | Pipeline.Doall _ -> ()
  | Pipeline.Doacross _ -> Alcotest.fail "reduction should become doall"

let test_pipeline_schedule_rejects_doall () =
  let l = Isched_frontend.Parser.parse_loop "DO I = 1, 10\n S = S + E[I]\nENDDO" in
  let p = Pipeline.prepare l in
  Alcotest.(check bool) "raises on doall" true
    (try
       ignore (Pipeline.schedule p (Machine.make ~issue:4 ~nfu:1 ()) Pipeline.List_scheduling);
       false
     with Invalid_argument _ -> true)

let test_pipeline_loop_time_positive () =
  let l = Isched_frontend.Parser.parse_loop "DOACROSS I = 1, 10\n A[I] = A[I-1]\nENDDO" in
  let p = Pipeline.prepare l in
  let t = Pipeline.loop_time p (Machine.make ~issue:4 ~nfu:1 ()) Pipeline.New_scheduling in
  Alcotest.(check bool) "positive" true (t > 0)

let test_table1_shape () =
  let t = Report.table1 (small_benches ()) in
  let s = Table.render t in
  List.iter
    (fun name -> Alcotest.(check bool) (name ^ " row present") true (contains s name))
    [ "FLQ52"; "QCD"; "MDG"; "TRACK"; "ADM"; "TOTAL" ]

let test_measure_and_tables () =
  let benches = small_benches () in
  let ms = Report.measure benches Machine.paper_configs in
  check Alcotest.int "5 benchmarks x 4 configs" 20 (List.length ms);
  List.iter
    (fun (m : Report.measurement) ->
      Alcotest.(check bool) "t_new <= t_list" true (m.Report.t_new <= m.Report.t_list);
      Alcotest.(check bool) "positive times" true (m.Report.t_new > 0))
    ms;
  let s2 = Table.render (Report.table2 ms) in
  Alcotest.(check bool) "table2 has totals" true (contains s2 "Total");
  let s3 = Table.render (Report.table3 ms) in
  Alcotest.(check bool) "table3 has percents" true (contains s3 "%")

let test_improvement_metric () =
  check (Alcotest.float 1e-9) "50%" 50. (Report.improvement ~t_list:200 ~t_new:100);
  check (Alcotest.float 1e-9) "0%" 0. (Report.improvement ~t_list:100 ~t_new:100);
  check (Alcotest.float 1e-9) "guard" 0. (Report.improvement ~t_list:0 ~t_new:0)

let test_overall_shape () =
  (* The headline numbers on the full corpora: both overall improvements
     above 70%, like the paper's 83.4% / 85.1%. *)
  let ms = Report.measure (Suite.all ()) Machine.paper_configs in
  let two, four = Report.overall ms in
  Alcotest.(check bool) "2-issue overall > 70%" true (two > 70.);
  Alcotest.(check bool) "4-issue overall > 70%" true (four > 70.)

let test_qcd_improves_least () =
  let ms = Report.measure (Suite.all ()) [ ("4-issue(#FU=1)", Machine.make ~issue:4 ~nfu:1 ()) ] in
  let impr name =
    let m = List.find (fun (m : Report.measurement) -> m.Report.benchmark = name) ms in
    Report.improvement ~t_list:m.Report.t_list ~t_new:m.Report.t_new
  in
  List.iter
    (fun other ->
      Alcotest.(check bool) (other ^ " beats QCD") true (impr other > impr "QCD"))
    [ "FLQ52"; "MDG"; "TRACK"; "ADM" ]

let test_categories_table () =
  let s = Table.render (Report.categories (small_benches ())) in
  Alcotest.(check bool) "has the six type names" true
    (contains s "induction variable" && contains s "reduction operation" && contains s "others")

let test_ablation_order () =
  let s = Table.render (Report.ablation_order (small_benches ())) in
  Alcotest.(check bool) "variants shown" true
    (contains s "new unordered" && contains s "new ordered" && contains s "ordering gain")

let test_ablation_elimination () =
  let s = Table.render (Report.ablation_elimination (small_benches ())) in
  Alcotest.(check bool) "elim columns" true (contains s "waits+elim" && contains s "new+elim")

let test_ablation_migration () =
  let s = Table.render (Report.ablation_migration (small_benches ())) in
  Alcotest.(check bool) "migration columns" true (contains s "list+migr" && contains s "new+migr")

let test_worked_example_report () =
  let s = Worked_example.report () in
  List.iter
    (fun affix -> Alcotest.(check bool) (affix ^ " present") true (contains s affix))
    [
      "Fig. 1";
      "Fig. 2";
      "Fig. 3";
      "Fig. 4";
      "Wait_Signal(S3, I-2)";
      "Send_Signal(S3)";
      "Sigwat graph";
      "Wat graph";
      "synchronization path";
      "list scheduling";
      "new instruction scheduling";
    ]

let test_worked_example_times () =
  (* The Fig. 4 comparison: list 1200 cycles, new under 500, matching
     the paper's (12N)+13 versus (N/2)*span+13 relationship. *)
  let s = Worked_example.report () in
  Alcotest.(check bool) "list time" true (contains s "simulated 1200");
  Alcotest.(check bool) "new time well under half" true (contains s "simulated 457")

let test_measure_pool_matches_sequential () =
  (* The --jobs acceptance property: fanning the (benchmark x config)
     cells over domains must reproduce the sequential measurement list
     exactly, element for element. *)
  let benches = small_benches () in
  let seq = Report.measure ~jobs:1 benches Machine.paper_configs in
  let par = Report.measure ~jobs:4 benches Machine.paper_configs in
  check Alcotest.int "same length" (List.length seq) (List.length par);
  Alcotest.(check bool) "identical measurements in order" true (seq = par)

let test_prepare_memo () =
  Pipeline.memo_clear ();
  let l = Isched_frontend.Parser.parse_loop "DOACROSS I = 1, 10\n A[I] = A[I-1]\nENDDO" in
  let a = Pipeline.prepare l in
  let b = Pipeline.prepare l in
  Alcotest.(check bool) "second call returns the cached value" true (a == b);
  let hits, misses = Pipeline.memo_stats () in
  check Alcotest.int "one miss" 1 misses;
  Alcotest.(check bool) "at least one hit" true (hits >= 1);
  (* a different option set is a different cache line *)
  let c = Pipeline.prepare ~options:{ Pipeline.default_options with Pipeline.n_iters = Some 7 } l in
  Alcotest.(check bool) "options partition the cache" true (c != a);
  check Alcotest.int "second miss" 2 (snd (Pipeline.memo_stats ()))

let test_prepare_memo_concurrent () =
  (* Eight domains racing [prepare] on the identical key: the striped
     memo computes outside the lock, so racers may duplicate the miss
     work, but every caller must get a structurally equal result and
     the hit/miss ledger must account for every call. *)
  Pipeline.memo_clear ();
  let l = Isched_frontend.Parser.parse_loop "DOACROSS I = 1, 10\n A[I] = A[I-1]\nENDDO" in
  let mach = Machine.make ~issue:4 ~nfu:1 () in
  let domains = Array.init 8 (fun _ -> Domain.spawn (fun () -> Pipeline.prepare l)) in
  let results = Array.map Domain.join domains in
  let time p = Pipeline.loop_time p mach Pipeline.New_scheduling in
  let reference = time results.(0) in
  Array.iter (fun p -> check Alcotest.int "same schedule time" reference (time p)) results;
  let hits, misses = Pipeline.memo_stats () in
  check Alcotest.int "every call accounted" 8 (hits + misses);
  Alcotest.(check bool) "at least one miss" true (misses >= 1);
  (* A fresh parse of the same source is a physically distinct but
     digest-equal key: it must hit the entry the racers installed. *)
  let l2 = Isched_frontend.Parser.parse_loop "DOACROSS I = 1, 10\n A[I] = A[I-1]\nENDDO" in
  let hits_before = fst (Pipeline.memo_stats ()) in
  check Alcotest.int "structurally equal key, equal result" reference (time (Pipeline.prepare l2));
  Alcotest.(check bool) "structurally equal key hits" true
    (fst (Pipeline.memo_stats ()) > hits_before)

let test_options_respected () =
  let l = Isched_frontend.Parser.parse_loop "DOACROSS I = 1, 50\n A[5] = A[5] + E[I]\nENDDO" in
  let with_opts options =
    match Pipeline.prepare ~options l with
    | Pipeline.Doacross { prog; _ } -> Array.length prog.Isched_ir.Program.waits
    | Pipeline.Doall _ -> -1
  in
  let base = with_opts Pipeline.default_options in
  let elim = with_opts { Pipeline.default_options with Pipeline.eliminate = true } in
  Alcotest.(check bool) "elimination drops pairs" true (elim < base)

let test_memo_key_covers_sync_elim () =
  (* The cache-key regression this PR fixes a class of: flipping a pass
     option must be a memo MISS that returns a different preparation,
     never a stale hit from the other setting.  The guarded reduction is
     a kernel where the post-codegen pass provably changes the program
     (the plan-level pass cannot touch it). *)
  Pipeline.memo_clear ();
  let l =
    Isched_frontend.Parser.parse_loop
      "DOACROSS I = 1, 50\n IF (E[I] > 0) S = S + Q[I] * C[I]\nENDDO"
  in
  let waits p =
    match p with
    | Pipeline.Doacross { prog; _ } -> Array.length prog.Isched_ir.Program.waits
    | Pipeline.Doall _ -> -1
  in
  let base = Pipeline.prepare l in
  check Alcotest.int "one miss" 1 (snd (Pipeline.memo_stats ()));
  let elim =
    Pipeline.prepare ~options:{ Pipeline.default_options with Pipeline.sync_elim = true } l
  in
  check Alcotest.int "flipping sync_elim misses" 2 (snd (Pipeline.memo_stats ()));
  Alcotest.(check bool) "distinct cache lines" true (elim != base);
  Alcotest.(check bool) "the eliminated preparation is smaller" true (waits elim < waits base);
  (* Re-asking for either setting hits its own line and keeps its own
     answer. *)
  let base' = Pipeline.prepare l in
  let elim' =
    Pipeline.prepare ~options:{ Pipeline.default_options with Pipeline.sync_elim = true } l
  in
  check Alcotest.int "no further misses" 2 (snd (Pipeline.memo_stats ()));
  Alcotest.(check bool) "base line stable" true (base' == base);
  Alcotest.(check bool) "elim line stable" true (elim' == elim)

let test_ablation_sync_elim () =
  let t = Report.ablation_sync_elim (small_benches ()) in
  let s = Isched_util.Table.render t in
  Alcotest.(check bool) "table renders" true (String.length s > 0);
  Alcotest.(check bool) "kernels row present" true
    (let n = String.length s in
     let affix = "elim kernels" in
     let m = String.length affix in
     let rec go i = i + m <= n && (String.sub s i m = affix || go (i + 1)) in
     go 0)

let suite =
  [
    ("pipeline: prepare splits doall/doacross", `Quick, test_pipeline_prepare);
    ("pipeline: scheduling a doall is an error", `Quick, test_pipeline_schedule_rejects_doall);
    ("pipeline: loop_time", `Quick, test_pipeline_loop_time_positive);
    ("table1: all rows present", `Quick, test_table1_shape);
    ("table2/3: measurements and rendering", `Quick, test_measure_and_tables);
    ("table3: improvement metric", `Quick, test_improvement_metric);
    ("headline: overall improvement above 70%", `Slow, test_overall_shape);
    ("headline: QCD improves least", `Slow, test_qcd_improves_least);
    ("categories table", `Quick, test_categories_table);
    ("ablation A1 renders", `Quick, test_ablation_order);
    ("ablation A2 renders", `Quick, test_ablation_elimination);
    ("ablation A3 renders", `Quick, test_ablation_migration);
    ("worked example: all figures present", `Quick, test_worked_example_report);
    ("worked example: Fig. 4 times", `Quick, test_worked_example_times);
    ("pipeline options: redundant-sync elimination", `Quick, test_options_respected);
    ("pipeline: memo key covers sync_elim", `Quick, test_memo_key_covers_sync_elim);
    ("ablation A6 renders", `Quick, test_ablation_sync_elim);
    ("measure: domain pool equals sequential", `Quick, test_measure_pool_matches_sequential);
    ("pipeline: prepare memoization", `Quick, test_prepare_memo);
    ("pipeline: memo safe under 8-way identical keys", `Quick, test_prepare_memo_concurrent);
  ]
