(* Cross-module property tests: random loops through the whole pipeline.

   The generator reuses the corpus machinery with randomized profile
   parameters, so the space covers tight recurrences, chains, LFD
   motifs, guards, reductions, induction variables and indirect
   subscripts. *)

module Ast = Isched_frontend.Ast
module Dfg = Isched_dfg.Dfg
module Machine = Isched_ir.Machine
module Schedule = Isched_core.Schedule
module Pipeline = Isched_harness.Pipeline

let qtest ?(count = 80) name gen law =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen law)

(* A random loop: seed + profile shape + trip count. *)
let gen_loop =
  QCheck2.Gen.(
    let* seed = int_range 0 1_000_000 in
    let* base = oneofl Isched_perfect.Profile.all in
    let* n_iters = int_range 4 40 in
    let* noise = int_range 0 6 in
    let profile = { base with Isched_perfect.Profile.seed; n_generated = 1; noise_max = noise; n_iters } in
    match Isched_perfect.Genloop.generate profile with
    | [ l ] -> return l
    | _ -> assert false)

let gen_machine =
  QCheck2.Gen.(
    let* issue = int_range 1 8 in
    let* nfu = int_range 1 3 in
    let* pipelined = bool in
    return (Machine.make ~pipelined ~issue ~nfu ()))

let gen_loop_machine = QCheck2.Gen.pair gen_loop gen_machine

let prepare l = Pipeline.prepare l

let prop_compile_validates =
  qtest "pipeline: every random loop compiles to a valid program" gen_loop (fun l ->
      match prepare l with
      | Pipeline.Doall _ -> true
      | Pipeline.Doacross { prog; _ } ->
        Isched_ir.Program.validate prog;
        true)

let prop_schedules_legal =
  qtest "schedulers: legal on random loops and machines" gen_loop_machine (fun (l, m) ->
      match prepare l with
      | Pipeline.Doall _ -> true
      | Pipeline.Doacross { graph; _ } ->
        let ok s = match Schedule.validate s graph with Ok () -> true | Error _ -> false in
        ok (Isched_core.List_sched.run graph m) && ok (Isched_core.Sync_sched.run graph m))

let prop_never_worse =
  qtest "new scheduler: never slower than list scheduling" gen_loop_machine (fun (l, m) ->
      match prepare l with
      | Pipeline.Doall _ -> true
      | Pipeline.Doacross _ as p ->
        Pipeline.loop_time p m Pipeline.New_scheduling
        <= Pipeline.loop_time p m Pipeline.List_scheduling)

let prop_sync_conditions =
  qtest "schedules: sends after sources, waits before sinks" gen_loop_machine (fun (l, m) ->
      match prepare l with
      | Pipeline.Doall _ -> true
      | Pipeline.Doacross { prog; graph; _ } ->
        List.for_all
          (fun s ->
            Array.for_all
              (fun (si : Isched_ir.Program.signal_info) ->
                Schedule.position s si.Isched_ir.Program.send_instr
                > Schedule.position s si.Isched_ir.Program.src_instr)
              prog.Isched_ir.Program.signals
            && Array.for_all
                 (fun (w : Isched_ir.Program.wait_info) ->
                   Schedule.position s w.Isched_ir.Program.wait_instr
                   < Schedule.position s w.Isched_ir.Program.snk_instr)
                 prog.Isched_ir.Program.waits)
          [ Isched_core.List_sched.run graph m; Isched_core.Sync_sched.run graph m ])

let prop_value_correct =
  qtest ~count:40 "simulation: parallel execution matches the sequential reference"
    gen_loop_machine (fun (l, m) ->
      match prepare l with
      | Pipeline.Doall _ -> true
      | Pipeline.Doacross { prog; graph; _ } ->
        List.for_all
          (fun s ->
            match Isched_harness.Equivalence.check_schedule prog s with
            | Ok () -> true
            | Error _ -> false)
          [ Isched_core.List_sched.run graph m; Isched_core.Sync_sched.run graph m ])

let prop_timing_lower_bound =
  qtest "timing: simulated time is bounded below by the LBD theorem" gen_loop_machine
    (fun (l, m) ->
      match prepare l with
      | Pipeline.Doall _ -> true
      | Pipeline.Doacross { graph; _ } ->
        List.for_all
          (fun s ->
            (Isched_sim.Timing.run s).Isched_sim.Timing.finish
            >= Isched_core.Lbd_model.exact_time s)
          [ Isched_core.List_sched.run graph m; Isched_core.Sync_sched.run graph m ])

let prop_timing_exact_single_pair =
  qtest "timing: the theorem is exact for single-pair loops" gen_machine (fun m ->
      let l =
        Isched_frontend.Parser.parse_loop "DOACROSS I = 1, 60\n A[I] = A[I-2] + E[I]\nENDDO"
      in
      match prepare l with
      | Pipeline.Doall _ -> false
      | Pipeline.Doacross { graph; _ } ->
        List.for_all
          (fun s ->
            (Isched_sim.Timing.run s).Isched_sim.Timing.finish
            = Isched_core.Lbd_model.exact_time s)
          [ Isched_core.List_sched.run graph m; Isched_core.Sync_sched.run graph m ])

let prop_compact_never_longer =
  qtest "compact: never lengthens a schedule" gen_loop_machine (fun (l, m) ->
      match prepare l with
      | Pipeline.Doall _ -> true
      | Pipeline.Doacross { graph; _ } ->
        let s = Isched_core.List_sched.run graph m in
        let c = Schedule.compact s graph in
        c.Schedule.length <= s.Schedule.length
        && (match Schedule.validate c graph with Ok () -> true | Error _ -> false))

let prop_eliminate_sound =
  qtest ~count:40 "elimination: reduced sync still executes correctly" gen_loop (fun l ->
      let options = { Pipeline.default_options with Pipeline.eliminate = true } in
      match Pipeline.prepare ~options l with
      | Pipeline.Doall _ -> true
      | Pipeline.Doacross { prog; graph; _ } ->
        let m = Machine.make ~issue:4 ~nfu:1 () in
        List.for_all
          (fun s ->
            match Isched_harness.Equivalence.check_schedule prog s with
            | Ok () -> true
            | Error _ -> false)
          [ Isched_core.List_sched.run graph m; Isched_core.Sync_sched.run graph m ])

let prop_migrate_sound =
  qtest ~count:40 "migration: reordered loops still execute correctly" gen_loop (fun l ->
      let options = { Pipeline.default_options with Pipeline.migrate = true } in
      match Pipeline.prepare ~options l with
      | Pipeline.Doall _ -> true
      | Pipeline.Doacross { prog; graph; _ } ->
        let m = Machine.make ~issue:2 ~nfu:1 () in
        List.for_all
          (fun s ->
            match Isched_harness.Equivalence.check_schedule prog s with
            | Ok () -> true
            | Error _ -> false)
          [ Isched_core.List_sched.run graph m; Isched_core.Sync_sched.run graph m ])

let prop_restructure_preserves =
  qtest ~count:60 "restructure: semantics preserved on random loops" gen_loop (fun l ->
      match Isched_harness.Equivalence.check_restructure l (Isched_transform.Restructure.run l) with
      | Ok () -> true
      | Error _ -> false)

let prop_marker_legal_and_correct =
  qtest ~count:50 "marker scheduler: legal, sync-safe and between the baselines"
    gen_loop_machine (fun (l, m) ->
      match prepare l with
      | Pipeline.Doall _ -> true
      | Pipeline.Doacross { prog; graph; _ } ->
        let s = Isched_core.Marker_sched.run graph m in
        (match Schedule.validate s graph with Ok () -> true | Error _ -> false)
        && Array.for_all
             (fun (w : Isched_ir.Program.wait_info) ->
               Schedule.position s w.Isched_ir.Program.wait_instr
               < Schedule.position s w.Isched_ir.Program.snk_instr)
             prog.Isched_ir.Program.waits)

let prop_unroll_preserves_semantics =
  qtest ~count:50 "unroll: semantics preserved for every dividing factor" gen_loop (fun l ->
      List.for_all
        (fun factor ->
          let u = Isched_transform.Unroll.run l ~factor in
          Isched_exec.Memory.equal (Isched_exec.Ast_interp.run l) (Isched_exec.Ast_interp.run u))
        [ 2; 4 ])

let prop_unroll_pipeline_correct =
  qtest ~count:25 "unroll: the unrolled loop schedules and executes exactly" gen_loop (fun l ->
      let u = Isched_transform.Unroll.run l ~factor:2 in
      match prepare u with
      | Pipeline.Doall _ -> true
      | Pipeline.Doacross { prog; graph; _ } ->
        let m = Machine.make ~issue:4 ~nfu:1 () in
        (match
           Isched_harness.Equivalence.check_schedule prog (Isched_core.Sync_sched.run graph m)
         with
        | Ok () -> true
        | Error _ -> false))

let prop_spill_pipeline_correct =
  qtest ~count:25 "spill: rewritten programs schedule and execute exactly" gen_loop (fun l ->
      match prepare l with
      | Pipeline.Doall _ -> true
      | Pipeline.Doacross { prog; graph = _; _ } ->
        let r = Isched_codegen.Spill.insert prog ~k:6 in
        let p' = r.Isched_codegen.Spill.prog in
        let g' = Isched_dfg.Dfg.build p' in
        let m = Machine.make ~issue:4 ~nfu:1 () in
        List.for_all
          (fun s ->
            (match Schedule.validate s g' with Ok () -> true | Error _ -> false)
            &&
            match Isched_harness.Equivalence.check_schedule p' s with
            | Ok () -> true
            | Error _ -> false)
          [ Isched_core.List_sched.run g' m; Isched_core.Sync_sched.run g' m ])

let prop_procs_monotone =
  qtest ~count:40 "timing: more processors never hurt" gen_loop (fun l ->
      match prepare l with
      | Pipeline.Doall _ -> true
      | Pipeline.Doacross { graph; _ } ->
        let s = Isched_core.Sync_sched.run graph (Machine.make ~issue:4 ~nfu:1 ()) in
        let t np = (Isched_sim.Timing.run ~n_procs:np s).Isched_sim.Timing.finish in
        let t2 = t 2 and t5 = t 5 and tn = t 1000 in
        t2 >= t5 && t5 >= tn)

let prop_modulo_valid =
  qtest ~count:40 "modulo scheduling: valid with II at or above both bounds" gen_loop_machine
    (fun (l, m) ->
      match prepare l with
      | Pipeline.Doall _ -> true
      | Pipeline.Doacross { graph; _ } ->
        let ms = Isched_core.Modulo_sched.run graph m in
        ms.Isched_core.Modulo_sched.ii >= ms.Isched_core.Modulo_sched.res_mii
        && ms.Isched_core.Modulo_sched.ii >= ms.Isched_core.Modulo_sched.rec_mii
        && (match Isched_core.Modulo_sched.validate ms graph with Ok () -> true | Error _ -> false))

let prop_every_instruction_scheduled_once =
  qtest "schedules: a permutation of the body" gen_loop_machine (fun (l, m) ->
      match prepare l with
      | Pipeline.Doall _ -> true
      | Pipeline.Doacross { prog; graph; _ } ->
        let s = Isched_core.Sync_sched.run graph m in
        let n = Array.length prog.Isched_ir.Program.body in
        let seen = Array.make n false in
        Array.iter (Array.iter (fun i -> seen.(i) <- true)) s.Schedule.rows;
        Array.for_all (fun x -> x) seen
        && Array.length s.Schedule.cycle_of = n)

(* Large-loop stress: bigger bodies and longer trip counts through the
   whole pipeline, at a low count (these are the expensive cases). *)
let prop_stress_large =
  qtest ~count:10 "stress: large loops through the full pipeline"
    QCheck2.Gen.(pair (int_range 0 100000) (oneofl Isched_perfect.Profile.all))
    (fun (seed, base) ->
      let profile =
        { base with Isched_perfect.Profile.seed; n_generated = 1; noise_max = 24; n_iters = 200 }
      in
      match Isched_perfect.Genloop.generate profile with
      | [ l ] -> (
        match prepare l with
        | Pipeline.Doall _ -> true
        | Pipeline.Doacross { prog; graph; _ } ->
          let m = Machine.make ~issue:4 ~nfu:2 () in
          let s = Isched_core.Sync_sched.run graph m in
          (match Schedule.validate s graph with Ok () -> true | Error _ -> false)
          && (Isched_sim.Timing.run s).Isched_sim.Timing.finish
             >= Isched_core.Lbd_model.exact_time s
          &&
          (* value-check one large case out of ten to bound the cost *)
          (seed mod 10 <> 0
          ||
          match Isched_harness.Equivalence.check_schedule prog s with
          | Ok () -> true
          | Error _ -> false))
      | _ -> false)

let prop_all_schedulers_correct =
  qtest ~count:40 "pipeline: every exposed scheduler executes correctly" gen_loop_machine
    (fun (l, m) ->
      match prepare l with
      | Pipeline.Doall _ -> true
      | Pipeline.Doacross { prog; _ } as p ->
        List.for_all
          (fun which ->
            let s = Pipeline.schedule p m which in
            match Isched_harness.Equivalence.check_schedule prog s with
            | Ok () -> true
            | Error _ -> false)
          Pipeline.all_schedulers)

let prop_tracing_inert =
  qtest ~count:40 "observability: tracing and counters never change results" gen_loop_machine
    (fun (l, m) ->
      let run () =
        match prepare l with
        | Pipeline.Doall _ -> None
        | Pipeline.Doacross _ as p ->
          Some
            (List.map
               (fun which -> (Pipeline.schedule p m which, Pipeline.loop_time p m which))
               Pipeline.all_schedulers)
      in
      let plain = run () in
      let traced =
        Fun.protect
          ~finally:(fun () ->
            Isched_obs.Span.set_enabled false;
            Isched_obs.Span.reset ();
            Isched_obs.Counters.set_enabled true)
          (fun () ->
            Isched_obs.Span.set_enabled true;
            run ())
      in
      let counters_off =
        Fun.protect
          ~finally:(fun () -> Isched_obs.Counters.set_enabled true)
          (fun () ->
            Isched_obs.Counters.set_enabled false;
            run ())
      in
      plain = traced && plain = counters_off)

let prop_dfg_matches_reference =
  qtest ~count:60 "dfg: arena CSR arcs equal the list-based reference builder" gen_loop
    (fun l ->
      match prepare l with
      | Pipeline.Doall _ -> true
      | Pipeline.Doacross { prog; graph; _ } ->
        let check sync_arcs =
          let g = if sync_arcs then graph else Dfg.build ~sync_arcs:false prog in
          let succs_ref, preds_ref = Dfg.build_reference ~sync_arcs prog in
          let n = Array.length prog.Isched_ir.Program.body in
          g.Dfg.n = n
          && Array.length succs_ref = n
          &&
          let ok = ref true in
          for i = 0 to n - 1 do
            (* Arc-for-arc, including row order: the schedulers'
               tie-breaking depends on it. *)
            if Dfg.succs_list g i <> succs_ref.(i) then ok := false;
            if Dfg.preds_list g i <> preds_ref.(i) then ok := false
          done;
          !ok
        in
        check true && check false)

let prop_provenance_inert =
  qtest ~count:40 "observability: provenance recording never changes schedules" gen_loop_machine
    (fun (l, m) ->
      let run () =
        match prepare l with
        | Pipeline.Doall _ -> None
        | Pipeline.Doacross _ as p ->
          Some
            (List.map
               (fun which ->
                 ((Pipeline.schedule p m which).Isched_core.Schedule.cycle_of, Pipeline.loop_time p m which))
               Pipeline.all_schedulers)
      in
      let plain = run () in
      let recorded =
        Fun.protect
          ~finally:(fun () ->
            Isched_obs.Provenance.set_enabled false;
            Isched_obs.Provenance.reset ())
          (fun () ->
            Isched_obs.Provenance.set_enabled true;
            run ())
      in
      plain = recorded)

let suite =
  [
    prop_compile_validates;
    prop_schedules_legal;
    prop_never_worse;
    prop_sync_conditions;
    prop_value_correct;
    prop_timing_lower_bound;
    prop_timing_exact_single_pair;
    prop_compact_never_longer;
    prop_eliminate_sound;
    prop_migrate_sound;
    prop_restructure_preserves;
    prop_every_instruction_scheduled_once;
    prop_marker_legal_and_correct;
    prop_unroll_preserves_semantics;
    prop_unroll_pipeline_correct;
    prop_spill_pipeline_correct;
    prop_procs_monotone;
    prop_modulo_valid;
    prop_stress_large;
    prop_all_schedulers_correct;
    prop_tracing_inert;
    prop_dfg_matches_reference;
    prop_provenance_inert;
  ]
