(* Tests for the reproduction's extensions: the marker-guided scheduler
   (ISPAN'94 baseline), DOACROSS loop unrolling, and limited processor
   pools in the timing simulator. *)

module Marker_sched = Isched_core.Marker_sched
module Unroll = Isched_transform.Unroll
module Timing = Isched_sim.Timing
module Schedule = Isched_core.Schedule
module Dfg = Isched_dfg.Dfg
module Machine = Isched_ir.Machine
module Ast = Isched_frontend.Ast
module Parser = Isched_frontend.Parser

let check = Alcotest.check
let compile src = Isched_codegen.Codegen.compile (Parser.parse_loop src)
let m4 = Machine.make ~issue:4 ~nfu:1 ()

let fig1 =
  "DOACROSS I = 1, 100\n\
  \ S1: B[I] = A[I-2] + E[I+1]\n\
  \ S2: G[I-3] = A[I-1] * E[I+2]\n\
  \ S3: A[I] = B[I] + C[I+3]\n\
   ENDDO"

(* --- Marker_sched --- *)

let test_marker_legal () =
  let g = Dfg.build (compile fig1) in
  let s = Marker_sched.run g m4 in
  match Schedule.validate s g with
  | Ok () -> ()
  | Error e -> Alcotest.failf "illegal: %s" e

let test_marker_defers_waits () =
  let g = Dfg.build (compile fig1) in
  let p = g.Dfg.prog in
  let s_list = Isched_core.List_sched.run g m4 in
  let s_marker = Marker_sched.run g m4 in
  (* The d=1 wait (protecting S2's load) issues later under markers than
     under plain list scheduling, which hoists it to cycle 1. *)
  let w1 = p.Isched_ir.Program.waits.(1).Isched_ir.Program.wait_instr in
  Alcotest.(check bool) "wait deferred" true
    (Schedule.position s_marker w1 > Schedule.position s_list w1)

let test_marker_between_baseline_and_new () =
  (* Over the corpora, marker guidance beats plain list scheduling but
     not the structured technique. *)
  let totals = ref (0, 0, 0) in
  List.iter
    (fun (b : Isched_perfect.Suite.benchmark) ->
      List.iter
        (fun l ->
          match Isched_harness.Pipeline.prepare l with
          | Isched_harness.Pipeline.Doall _ -> ()
          | Isched_harness.Pipeline.Doacross { graph; _ } ->
            let t s = (Timing.run s).Timing.finish in
            let a, b', c = !totals in
            totals :=
              ( a + t (Isched_core.List_sched.run graph m4),
                b' + t (Marker_sched.run graph m4),
                c + t (Isched_core.Sync_sched.run graph m4) ))
        b.Isched_perfect.Suite.loops)
    (Isched_perfect.Suite.all ());
  let tl, tm, tn = !totals in
  Alcotest.(check bool) "marker < list" true (tm < tl);
  Alcotest.(check bool) "new < marker" true (tn < tm)

let test_marker_value_correct () =
  let p = compile fig1 in
  let g = Dfg.build p in
  match Isched_harness.Equivalence.check_schedule p (Marker_sched.run g m4) with
  | Ok () -> ()
  | Error es -> Alcotest.failf "value mismatch: %s" (String.concat "; " es)

(* --- Unroll --- *)

let test_unroll_applicability () =
  let l = Parser.parse_loop "DO I = 1, 100\n A[I] = A[I-1]\nENDDO" in
  Alcotest.(check bool) "u=2 divides" true (Unroll.applicable l ~factor:2);
  Alcotest.(check bool) "u=3 does not" false (Unroll.applicable l ~factor:3);
  Alcotest.(check bool) "u=1 is identity" false (Unroll.applicable l ~factor:1);
  let id = Unroll.run l ~factor:3 in
  check Alcotest.string "non-divisor returns the loop" (Ast.loop_to_string l) (Ast.loop_to_string id)

let test_unroll_shape () =
  let l = Parser.parse_loop "DO I = 1, 100\n S1: A[I] = A[I-1] + E[I]\nENDDO" in
  let u = Unroll.run l ~factor:4 in
  check Alcotest.int "quarter the iterations" 25 (Ast.iterations u);
  check Alcotest.int "four copies" 4 (List.length u.Ast.body);
  Isched_frontend.Sema.check_exn u

let test_unroll_equivalence () =
  List.iter
    (fun src ->
      let l = Parser.parse_loop src in
      List.iter
        (fun factor ->
          let u = Unroll.run l ~factor in
          let m1 = Isched_exec.Ast_interp.run l in
          let m2 = Isched_exec.Ast_interp.run u in
          if not (Isched_exec.Memory.equal m1 m2) then
            Alcotest.failf "unroll by %d changed semantics of %s" factor src)
        [ 2; 4; 5 ])
    [
      "DO I = 1, 20\n A[I] = A[I-1] * C[I] + E[I]\nENDDO";
      "DO I = 1, 20\n S1: B[I] = A[I-2]\n S2: A[I] = E[I] + B[I]\nENDDO";
      "DO I = 1, 20\n IF (E[I] > 0) A[I] = A[I-3] + 1\nENDDO";
      "DO I = 1, 20\n S1: S = S + A[I]\n S2: OUT[I] = S\nENDDO";
    ]

let test_unroll_rescales_distances () =
  (* d=2 unrolled by 2: the carried distance becomes 1 (plus a
     loop-independent dep between the copies). *)
  let l = Parser.parse_loop "DO I = 1, 100\n A[I] = A[I-2] + E[I]\nENDDO" in
  let u = Unroll.run l ~factor:2 in
  let carried = Isched_deps.Dep.carried_deps u in
  Alcotest.(check bool) "all carried distances are 1" true
    (carried <> []
    && List.for_all (fun d -> Isched_deps.Dep.sync_distance d = 1) carried)

let test_unroll_compiles_and_runs () =
  let l = Parser.parse_loop fig1 in
  let u = Unroll.run l ~factor:2 in
  let p = Isched_codegen.Codegen.compile u in
  let g = Dfg.build p in
  let s = Isched_core.Sync_sched.run g m4 in
  (match Schedule.validate s g with Ok () -> () | Error e -> Alcotest.failf "illegal: %s" e);
  match Isched_harness.Equivalence.check_schedule p s with
  | Ok () -> ()
  | Error es -> Alcotest.failf "value mismatch: %s" (String.concat "; " es)

(* --- Spill --- *)

module Spill = Isched_codegen.Spill
module Regalloc = Isched_codegen.Regalloc

let test_spill_identity_when_enough () =
  let p = compile fig1 in
  let order = Regalloc.original_order p in
  let k = Regalloc.max_pressure p ~order in
  let r = Spill.insert p ~k in
  check Alcotest.int "no spill ops" 0 r.Spill.n_spill_ops;
  Alcotest.(check bool) "program unchanged" true (r.Spill.prog == p)

let test_spill_validates () =
  let p = compile fig1 in
  let r = Spill.insert p ~k:4 in
  Alcotest.(check bool) "spilled something" true (r.Spill.spilled <> []);
  Isched_ir.Program.validate r.Spill.prog;
  Alcotest.(check bool) "body grew" true
    (Array.length r.Spill.prog.Isched_ir.Program.body > Array.length p.Isched_ir.Program.body)

let test_spill_semantics_preserved () =
  (* The spilled program computes the same user-visible cells as the
     original (spill slots excepted). *)
  let p = compile fig1 in
  let r = Spill.insert p ~k:4 in
  let m_orig = Isched_exec.Prog_interp.run p in
  let m_spill = Isched_exec.Prog_interp.run r.Spill.prog in
  List.iter
    (fun ((name, idx), v) ->
      if String.length name < 5 || String.sub name 0 5 <> "spill" then begin
        let v' = Isched_exec.Memory.get m_spill name idx in
        if not (Isched_exec.Semantics.eq v v') then
          Alcotest.failf "%s[%d] changed: %h vs %h" name idx v v'
      end)
    (Isched_exec.Memory.written_cells m_orig)

let test_spill_parallel_correct () =
  let p = compile fig1 in
  let r = Spill.insert p ~k:4 in
  let g = Dfg.build r.Spill.prog in
  List.iter
    (fun s ->
      (match Schedule.validate s g with Ok () -> () | Error e -> Alcotest.failf "illegal: %s" e);
      match Isched_harness.Equivalence.check_schedule r.Spill.prog s with
      | Ok () -> ()
      | Error es -> Alcotest.failf "value mismatch: %s" (String.concat "; " es))
    [ Isched_core.List_sched.run g m4; Isched_core.Sync_sched.run g m4 ]

let test_spill_monotone_traffic () =
  let p = compile fig1 in
  let ops k = (Spill.insert p ~k).Spill.n_spill_ops in
  Alcotest.(check bool) "fewer registers, more traffic" true (ops 3 >= ops 4 && ops 4 >= ops 6)

let test_spill_invalid_k () =
  let p = compile fig1 in
  Alcotest.(check bool) "k=0 rejected" true
    (try
       ignore (Spill.insert p ~k:0);
       false
     with Invalid_argument _ -> true)

(* --- limited processors --- *)

let sched_of src =
  let p = compile src in
  let g = Dfg.build p in
  Isched_core.Sync_sched.run g m4

let test_procs_default_is_full () =
  let s = sched_of fig1 in
  check Alcotest.int "P = n matches the default" (Timing.run s).Timing.finish
    (Timing.run ~n_procs:100 s).Timing.finish

let test_procs_monotone () =
  let s = sched_of "DOACROSS I = 1, 100\n S1: O[I] = A[I-1] * C[I]\n S2: A[I] = E[I] + C[I]\nENDDO" in
  let t np = (Timing.run ~n_procs:np s).Timing.finish in
  let prev = ref max_int in
  List.iter
    (fun np ->
      let now = t np in
      Alcotest.(check bool) (Printf.sprintf "P=%d no slower than fewer procs" np) true (now <= !prev);
      prev := now)
    [ 1; 2; 4; 8; 16; 100 ]

let test_procs_one_is_serial () =
  (* With one processor and no stalls possible (signals always posted by
     the time the single processor reaches them), the time is exactly
     n * rows. *)
  let s = sched_of "DOACROSS I = 1, 100\n A[I] = A[I-1] + E[I]\nENDDO" in
  check Alcotest.int "serial execution" (100 * s.Schedule.length)
    (Timing.run ~n_procs:1 s).Timing.finish

let test_procs_chain_insensitive () =
  (* A distance-1 chain serializes across iterations anyway: processor
     count barely matters once the per-link delay exceeds the reuse
     delay. *)
  let s = sched_of "DOACROSS I = 1, 100\n A[I] = A[I-1] * C[I] + E[I] * Q[I] + R[I]\nENDDO" in
  let t np = (Timing.run ~n_procs:np s).Timing.finish in
  Alcotest.(check bool) "P=8 ~ P=100" true (t 8 = t 100)

let test_procs_block_vs_cyclic () =
  (* Block assignment serializes consecutive iterations: on a distance-1
     chain it cannot be faster than cyclic, and on a convertible loop it
     destroys the overlap cyclic assignment keeps. *)
  let s = sched_of "DOACROSS I = 1, 100\n S1: O[I] = A[I-1] * C[I]\n S2: A[I] = E[I] + C[I]\nENDDO" in
  let t assignment = (Timing.run ~n_procs:10 ~assignment s).Timing.finish in
  Alcotest.(check bool) "block no faster than cyclic" true (t `Block >= t `Cyclic)

let test_procs_block_full_pool_serial_chunks () =
  (* With P = n, block assignment degenerates to one iteration per
     processor: identical to cyclic. *)
  let s = sched_of fig1 in
  check Alcotest.int "P = n: block = cyclic"
    (Timing.run ~n_procs:100 ~assignment:`Cyclic s).Timing.finish
    (Timing.run ~n_procs:100 ~assignment:`Block s).Timing.finish

let test_procs_invalid () =
  let s = sched_of fig1 in
  Alcotest.(check bool) "P=0 rejected" true
    (try
       ignore (Timing.run ~n_procs:0 s);
       false
     with Invalid_argument _ -> true)

(* --- Modulo_sched --- *)

module Modulo_sched = Isched_core.Modulo_sched

let modulo_of src =
  let p = compile src in
  let g = Dfg.build p in
  (p, g, Modulo_sched.run g m4)

let test_modulo_valid_fig1 () =
  let _, g, ms = modulo_of fig1 in
  match Modulo_sched.validate ms g with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid modulo schedule: %s" e

let test_modulo_ii_bounds () =
  let _, _, ms = modulo_of fig1 in
  Alcotest.(check bool) "II >= ResMII" true (ms.Modulo_sched.ii >= ms.Modulo_sched.res_mii);
  Alcotest.(check bool) "II >= RecMII" true (ms.Modulo_sched.ii >= ms.Modulo_sched.rec_mii)

let test_modulo_recurrence_bound () =
  (* A[I] = A[I-1] * C[I] + E[I]: the cycle is load -> fmul(3) -> fadd
     -> store -> load, distance 1, so RecMII >= 6. *)
  let _, _, ms = modulo_of "DOACROSS I = 1, 100\n A[I] = A[I-1] * C[I] + E[I]\nENDDO" in
  Alcotest.(check bool) "RecMII reflects the chain" true (ms.Modulo_sched.rec_mii >= 6)

let test_modulo_independent_is_resource_bound () =
  let _, _, ms = modulo_of "DO I = 1, 100\n P[I] = E[I] * C[I] + Q[I]\nENDDO" in
  check Alcotest.int "no recurrence" 1 ms.Modulo_sched.rec_mii;
  check Alcotest.int "II = ResMII" ms.Modulo_sched.res_mii ms.Modulo_sched.ii

let test_modulo_total_time () =
  let p, _, ms = modulo_of fig1 in
  check Alcotest.int "formula" (((p.Isched_ir.Program.n_iters - 1) * ms.Modulo_sched.ii) + ms.Modulo_sched.span)
    (Modulo_sched.total_time ms)

let test_modulo_beats_serial () =
  List.iter
    (fun src ->
      let p, _, ms = modulo_of src in
      let real_ops =
        Array.fold_left
          (fun acc ins -> if Isched_ir.Instr.is_sync ins then acc else acc + 1)
          0 p.Isched_ir.Program.body
      in
      let serial = p.Isched_ir.Program.n_iters * real_ops in
      Alcotest.(check bool) "overlap wins" true (Modulo_sched.total_time ms <= serial))
    [ fig1; "DOACROSS I = 1, 100\n A[I] = A[I-1] + E[I]\nENDDO" ]

let test_modulo_corpus_valid () =
  List.iter
    (fun (b : Isched_perfect.Suite.benchmark) ->
      List.iter
        (fun l ->
          match Isched_harness.Pipeline.prepare l with
          | Isched_harness.Pipeline.Doall _ -> ()
          | Isched_harness.Pipeline.Doacross { graph; _ } ->
            let ms = Modulo_sched.run graph m4 in
            (match Modulo_sched.validate ms graph with
            | Ok () -> ()
            | Error e -> Alcotest.failf "%s: %s" l.Isched_frontend.Ast.name e))
        b.Isched_perfect.Suite.loops)
    (Isched_perfect.Suite.all ())

let test_modulo_qcd_insight () =
  (* On a recurrence-bound loop, one software-pipelined CPU is
     competitive with the whole multiprocessor. *)
  let _, g, ms = modulo_of "DOACROSS I = 1, 100\n A[I] = A[I-1] * C[I] + E[I]\nENDDO" in
  let doacross = (Timing.run (Isched_core.Sync_sched.run g m4)).Timing.finish in
  Alcotest.(check bool) "within 25% of n processors" true
    (Modulo_sched.total_time ms < doacross * 5 / 4)

(* --- Asm --- *)

module Asm = Isched_codegen.Asm

let test_asm_emits () =
  let p = compile fig1 in
  match Asm.emit ~k:8 p with
  | Error e -> Alcotest.failf "emit failed: %s" e
  | Ok text ->
    let has affix =
      let n = String.length text and m = String.length affix in
      let rec go i = i + m <= n && (String.sub text i m = affix || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "loads" true (has "lw     r");
    Alcotest.(check bool) "array base" true (has "A(r");
    Alcotest.(check bool) "send" true (has "send   S3");
    Alcotest.(check bool) "wait with distance" true (has "wait   S3, I-2");
    Alcotest.(check bool) "fp add" true (has "addf");
    Alcotest.(check bool) "shift immediate" true (has "slli")

let test_asm_register_bound () =
  let p = compile fig1 in
  match Asm.emit ~k:8 p with
  | Error e -> Alcotest.failf "emit failed: %s" e
  | Ok text ->
    (* no physical register above r8 may appear *)
    Alcotest.(check bool) "respects k" false
      (let n = String.length text in
       let rec go i =
         i + 3 <= n
         && ((text.[i] = 'r' && text.[i+1] = '9' && text.[i+2] >= '0' && text.[i+2] <= '9')
            || go (i + 1))
       in
       go 0)

let test_asm_too_few_registers () =
  let p = compile fig1 in
  match Asm.emit ~k:2 p with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "2 registers should not suffice without spilling"

let test_asm_spill_then_emit () =
  (* The documented recovery: materialize spill code, then emit at the
     same k. *)
  let p = compile fig1 in
  let r = Isched_codegen.Spill.insert p ~k:4 in
  match Asm.emit ~k:6 r.Isched_codegen.Spill.prog with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "spilled program still does not fit: %s" e

let test_asm_schedule_bundles () =
  let p = compile fig1 in
  let g = Dfg.build p in
  let s = Isched_core.Sync_sched.run g m4 in
  match Asm.emit_schedule ~k:10 s with
  | Error e -> Alcotest.failf "emit failed: %s" e
  | Ok text ->
    let bundles =
      List.length (List.filter (fun l -> l <> "") (String.split_on_char '\n' text)) - 2
    in
    check Alcotest.int "one bundle per row" s.Schedule.length bundles

(* --- Viz --- *)

let contains s affix =
  let n = String.length s and m = String.length affix in
  let rec go i = i + m <= n && (String.sub s i m = affix || go (i + 1)) in
  m = 0 || go 0

let test_viz_ascii () =
  let s = sched_of fig1 in
  let a = Isched_sim.Viz.wavefront_ascii ~max_iters:8 s in
  Alcotest.(check bool) "has bars" true (contains a "#");
  Alcotest.(check bool) "labels iterations" true (contains a "iter   1");
  check Alcotest.int "eight bars + header" 9 (List.length (String.split_on_char '\n' (String.trim a)))

let test_viz_ascii_staircase () =
  (* A distance-1 chain: every later iteration starts no earlier. *)
  let s = sched_of "DOACROSS I = 1, 100\n A[I] = A[I-1] + E[I]\nENDDO" in
  let t = Timing.run s in
  let starts = t.Timing.iteration_starts in
  let fins = t.Timing.iteration_finishes in
  (* Every iteration of the chain retires strictly after its
     predecessor (the wait serializes them), even though the leading
     address computations can issue at cycle 0 on every processor. *)
  for k = 1 to Array.length fins - 1 do
    Alcotest.(check bool) "retirement staircase" true (fins.(k) > fins.(k - 1))
  done;
  Array.iteri
    (fun k f -> Alcotest.(check bool) "finish after start" true (f > starts.(k)))
    fins

let test_viz_svg_wellformed () =
  let s = sched_of fig1 in
  List.iter
    (fun svg ->
      Alcotest.(check bool) "opens svg" true (contains svg "<svg xmlns");
      Alcotest.(check bool) "closes svg" true (contains svg "</svg>"))
    [ Isched_sim.Viz.wavefront_svg s; Isched_sim.Viz.schedule_svg s ]

let test_viz_schedule_svg_escapes () =
  (* instruction texts contain '<<'; the SVG must escape them *)
  let s = sched_of fig1 in
  let svg = Isched_sim.Viz.schedule_svg s in
  Alcotest.(check bool) "no raw <<" false (contains svg ">t0 := I << 2<");
  Alcotest.(check bool) "escaped form present" true (contains svg "&lt;&lt;")

let test_viz_svg_marks_sync () =
  let s = sched_of fig1 in
  let svg = Isched_sim.Viz.schedule_svg s in
  Alcotest.(check bool) "sync ops highlighted" true (contains svg "#dd7755");
  Alcotest.(check bool) "wait label present" true (contains svg "Wait_Signal(S3, I-2)")

let suite =
  [
    ("marker: legal schedules", `Quick, test_marker_legal);
    ("marker: waits deferred towards their sinks", `Quick, test_marker_defers_waits);
    ("marker: between list and new on the corpora", `Slow, test_marker_between_baseline_and_new);
    ("marker: value-correct", `Quick, test_marker_value_correct);
    ("unroll: applicability", `Quick, test_unroll_applicability);
    ("unroll: body and trip count", `Quick, test_unroll_shape);
    ("unroll: semantics preserved", `Quick, test_unroll_equivalence);
    ("unroll: distances rescale", `Quick, test_unroll_rescales_distances);
    ("unroll: compiles, schedules, executes", `Quick, test_unroll_compiles_and_runs);
    ("procs: default equals full pool", `Quick, test_procs_default_is_full);
    ("procs: time monotone in the pool size", `Quick, test_procs_monotone);
    ("procs: one processor is serial", `Quick, test_procs_one_is_serial);
    ("procs: chains are pool-insensitive", `Quick, test_procs_chain_insensitive);
    ("procs: rejects empty pools", `Quick, test_procs_invalid);
    ("procs: block vs cyclic assignment", `Quick, test_procs_block_vs_cyclic);
    ("procs: block degenerates at full pool", `Quick, test_procs_block_full_pool_serial_chunks);
    ("spill: identity with enough registers", `Quick, test_spill_identity_when_enough);
    ("spill: rewritten program validates", `Quick, test_spill_validates);
    ("spill: sequential semantics preserved", `Quick, test_spill_semantics_preserved);
    ("spill: parallel execution still exact", `Quick, test_spill_parallel_correct);
    ("spill: traffic monotone in pressure", `Quick, test_spill_monotone_traffic);
    ("spill: rejects k <= 0", `Quick, test_spill_invalid_k);
    ("asm: emission shape", `Quick, test_asm_emits);
    ("asm: respects the register bound", `Quick, test_asm_register_bound);
    ("asm: refuses to spill silently", `Quick, test_asm_too_few_registers);
    ("asm: spill-then-emit recovery", `Quick, test_asm_spill_then_emit);
    ("asm: schedule bundles", `Quick, test_asm_schedule_bundles);
    ("viz: ascii wavefront", `Quick, test_viz_ascii);
    ("viz: chain staircase and finishes", `Quick, test_viz_ascii_staircase);
    ("viz: svg documents well-formed", `Quick, test_viz_svg_wellformed);
    ("viz: svg escapes instruction text", `Quick, test_viz_schedule_svg_escapes);
    ("viz: sync operations highlighted", `Quick, test_viz_svg_marks_sync);
    ("modulo: valid on Fig. 1", `Quick, test_modulo_valid_fig1);
    ("modulo: II respects both bounds", `Quick, test_modulo_ii_bounds);
    ("modulo: recurrence bound", `Quick, test_modulo_recurrence_bound);
    ("modulo: resource-bound without recurrences", `Quick, test_modulo_independent_is_resource_bound);
    ("modulo: total-time formula", `Quick, test_modulo_total_time);
    ("modulo: overlap beats serial", `Quick, test_modulo_beats_serial);
    ("modulo: valid on the whole corpus", `Slow, test_modulo_corpus_valid);
    ("modulo: competitive on recurrence-bound loops", `Quick, test_modulo_qcd_insight);
  ]
