(* Tests for Isched_ir: function units, operands, instructions, machine
   configurations and program validation. *)

module Fu = Isched_ir.Fu
module Operand = Isched_ir.Operand
module Instr = Isched_ir.Instr
module Machine = Isched_ir.Machine
module Program = Isched_ir.Program

let check = Alcotest.check

(* --- Fu --- *)

let test_fu_latencies () =
  check Alcotest.int "mul = 3" 3 (Fu.latency Fu.Multiplier);
  check Alcotest.int "div = 6" 6 (Fu.latency Fu.Divider);
  List.iter
    (fun k -> check Alcotest.int (Fu.name k ^ " = 1") 1 (Fu.latency k))
    [ Fu.Load_store; Fu.Integer; Fu.Float; Fu.Shifter ]

let test_fu_index_roundtrip () =
  List.iter
    (fun k -> Alcotest.(check bool) "roundtrip" true (Fu.equal k (Fu.of_index (Fu.index k))))
    Fu.all;
  check Alcotest.int "count" (List.length Fu.all) Fu.count

let test_fu_of_index_invalid () =
  Alcotest.check_raises "of_index 6" (Invalid_argument "Fu.of_index: 6") (fun () ->
      ignore (Fu.of_index 6))

(* --- Operand --- *)

let test_operand_printing () =
  check Alcotest.string "reg" "t3" (Operand.to_string (Operand.Reg 3));
  check Alcotest.string "imm" "-2" (Operand.to_string (Operand.Imm (-2)));
  check Alcotest.string "fimm" "2.5" (Operand.to_string (Operand.Fimm 2.5));
  check Alcotest.string "ivar" "I" (Operand.to_string Operand.Ivar)

let test_operand_equal () =
  Alcotest.(check bool) "reg eq" true (Operand.equal (Operand.Reg 1) (Operand.Reg 1));
  Alcotest.(check bool) "reg ne" false (Operand.equal (Operand.Reg 1) (Operand.Reg 2));
  Alcotest.(check bool) "kinds differ" false (Operand.equal (Operand.Imm 0) Operand.Ivar);
  check Alcotest.(option int) "reg extract" (Some 4) (Operand.reg (Operand.Reg 4));
  check Alcotest.(option int) "imm has no reg" None (Operand.reg (Operand.Imm 4))

(* --- Instr --- *)

let bin op = Instr.Bin { op; dst = 0; a = Operand.Reg 1; b = Operand.Reg 2 }

let test_instr_fu_mapping () =
  let fu i = Instr.fu i in
  check Alcotest.(option (testable Fu.pp Fu.equal)) "add -> int" (Some Fu.Integer) (fu (bin Instr.Add));
  check Alcotest.(option (testable Fu.pp Fu.equal)) "fadd -> fp" (Some Fu.Float) (fu (bin Instr.FAdd));
  check Alcotest.(option (testable Fu.pp Fu.equal)) "mul -> mult" (Some Fu.Multiplier) (fu (bin Instr.Mul));
  check Alcotest.(option (testable Fu.pp Fu.equal)) "fdiv -> div" (Some Fu.Divider) (fu (bin Instr.FDiv));
  check Alcotest.(option (testable Fu.pp Fu.equal)) "shl -> shift" (Some Fu.Shifter) (fu (bin Instr.Shl));
  check Alcotest.(option (testable Fu.pp Fu.equal)) "cmp -> int" (Some Fu.Integer) (fu (bin Instr.CmpLt));
  check
    Alcotest.(option (testable Fu.pp Fu.equal))
    "load -> ld/st" (Some Fu.Load_store)
    (fu (Instr.Load { dst = 0; base = "A"; addr = Operand.Reg 1 }));
  check Alcotest.(option (testable Fu.pp Fu.equal)) "send -> none" None (fu (Instr.Send { signal = 0 }));
  check Alcotest.(option (testable Fu.pp Fu.equal)) "wait -> none" None (fu (Instr.Wait { wait = 0 }))

let test_instr_latency () =
  check Alcotest.int "mul latency" 3 (Instr.latency (bin Instr.Mul));
  check Alcotest.int "div latency" 6 (Instr.latency (bin Instr.Div));
  check Alcotest.int "add latency" 1 (Instr.latency (bin Instr.Add));
  check Alcotest.int "sync latency" 1 (Instr.latency (Instr.Send { signal = 0 }))

let test_instr_def_uses () =
  check Alcotest.(option int) "bin defines dst" (Some 0) (Instr.def (bin Instr.Add));
  check Alcotest.(list int) "bin uses" [ 1; 2 ] (Instr.uses (bin Instr.Add));
  let store = Instr.Store { base = "A"; addr = Operand.Reg 3; src = Operand.Reg 4 } in
  check Alcotest.(option int) "store defines nothing" None (Instr.def store);
  check Alcotest.(list int) "store uses addr+src" [ 3; 4 ] (Instr.uses store);
  let sel =
    Instr.Select { dst = 9; cond = Operand.Reg 1; if_true = Operand.Reg 2; if_false = Operand.Imm 0 }
  in
  check Alcotest.(option int) "select defines" (Some 9) (Instr.def sel);
  check Alcotest.(list int) "select uses regs only" [ 1; 2 ] (Instr.uses sel);
  check Alcotest.(list int) "imm operands use nothing" []
    (Instr.uses (Instr.Bin { op = Instr.Add; dst = 0; a = Operand.Imm 1; b = Operand.Ivar }))

let test_instr_predicates () =
  Alcotest.(check bool) "send is sync" true (Instr.is_sync (Instr.Send { signal = 0 }));
  Alcotest.(check bool) "add not sync" false (Instr.is_sync (bin Instr.Add));
  Alcotest.(check bool) "load is mem" true
    (Instr.is_mem (Instr.Load_scalar { dst = 0; name = "s" }));
  Alcotest.(check bool) "add not mem" false (Instr.is_mem (bin Instr.Add))

let test_instr_printing () =
  check Alcotest.string "bin" "t0 := t1 + t2" (Instr.to_string (bin Instr.Add));
  check Alcotest.string "load" "t0 := A[t1]"
    (Instr.to_string (Instr.Load { dst = 0; base = "A"; addr = Operand.Reg 1 }));
  check Alcotest.string "store" "A[t1] := 5"
    (Instr.to_string (Instr.Store { base = "A"; addr = Operand.Reg 1; src = Operand.Imm 5 }))

(* --- Machine --- *)

let test_machine_paper_configs () =
  check Alcotest.int "four configs" 4 (List.length Machine.paper_configs);
  let names = List.map fst Machine.paper_configs in
  check
    Alcotest.(list string)
    "paper order"
    [ "2-issue(#FU=1)"; "2-issue(#FU=2)"; "4-issue(#FU=1)"; "4-issue(#FU=2)" ]
    names;
  List.iter
    (fun (name, m) -> check Alcotest.string "name round trip" name (Machine.name m))
    Machine.paper_configs

let test_machine_counts () =
  let m = Machine.make ~issue:2 ~nfu:2 () in
  List.iter (fun k -> check Alcotest.int "uniform count" 2 (Machine.fu_count m k)) Fu.all;
  let m' = Machine.with_fu m Fu.Divider 1 in
  check Alcotest.int "override" 1 (Machine.fu_count m' Fu.Divider);
  check Alcotest.int "others kept" 2 (Machine.fu_count m' Fu.Multiplier);
  check Alcotest.int "original untouched" 2 (Machine.fu_count m Fu.Divider)

let test_machine_validate () =
  Alcotest.check_raises "zero issue"
    (Invalid_argument "Machine.validate: issue width must be positive") (fun () ->
      Machine.validate (Machine.make ~issue:0 ~nfu:1 ()));
  Alcotest.check_raises "zero units"
    (Invalid_argument "Machine.validate: ld/st count must be positive") (fun () ->
      Machine.validate (Machine.make ~issue:2 ~nfu:0 ()))

(* --- Program validation --- *)

let fig1_program () = Isched_harness.Worked_example.fig2_program ()

let test_program_validates () =
  let p = fig1_program () in
  Program.validate p;
  check Alcotest.int "28 instructions" 28 (Array.length p.Program.body);
  check Alcotest.int "one signal" 1 (Array.length p.Program.signals);
  check Alcotest.int "two waits" 2 (Array.length p.Program.waits);
  check Alcotest.int "no LFD" 0 (Program.n_lfd p);
  check Alcotest.int "two LBD" 2 (Program.n_lbd p)

let test_program_labels () =
  let p = fig1_program () in
  check Alcotest.string "signal label" "S3" (Program.signal_label p 0);
  check Alcotest.string "wait label" "S3, I-2" (Program.wait_label p 0);
  check Alcotest.string "wait label d=1" "S3, I-1" (Program.wait_label p 1)

let test_program_name_sets () =
  let p = fig1_program () in
  check Alcotest.(list string) "arrays" [ "A"; "B"; "C"; "E"; "G" ] (Program.arrays p);
  check Alcotest.(list string) "no scalars" [] (Program.scalars p)

let test_program_waits_of_signal () =
  let p = fig1_program () in
  check Alcotest.int "both waits on the one signal" 2 (List.length (Program.waits_of_signal p 0))

let test_program_rejects_double_def () =
  let p = fig1_program () in
  let body = Array.copy p.Program.body in
  (* Make instruction 2 redefine the register defined by instruction 1. *)
  (match (body.(1), body.(2)) with
  | Instr.Bin b1, Instr.Bin b2 -> body.(2) <- Instr.Bin { b2 with dst = b1.dst }
  | _ -> Alcotest.fail "unexpected body shape");
  Alcotest.(check bool) "double definition rejected" true
    (try
       Program.validate { p with Program.body };
       false
     with Invalid_argument _ -> true)

let test_program_rejects_send_before_src () =
  let p = fig1_program () in
  let signals =
    Array.map (fun (s : Program.signal_info) -> { s with Program.src_instr = s.Program.send_instr }) p.Program.signals
  in
  Alcotest.(check bool) "send before source rejected" true
    (try
       Program.validate { p with Program.signals };
       false
     with Invalid_argument _ -> true)

let test_program_rejects_bad_distance () =
  let p = fig1_program () in
  let waits =
    Array.map (fun (w : Program.wait_info) -> { w with Program.distance = 0 }) p.Program.waits
  in
  Alcotest.(check bool) "distance 0 rejected" true
    (try
       Program.validate { p with Program.waits };
       false
     with Invalid_argument _ -> true)

let test_program_pp_fig2 () =
  let p = fig1_program () in
  let s = Program.to_string p in
  let has affix =
    let n = String.length s and m = String.length affix in
    let rec go i = i + m <= n && (String.sub s i m = affix || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "wait printed" true (has "Wait_Signal(S3, I-2)");
  Alcotest.(check bool) "send printed" true (has "Send_Signal(S3)");
  Alcotest.(check bool) "numbered from 1" true (has "  1: ")

let suite =
  [
    ("fu: latencies match the paper", `Quick, test_fu_latencies);
    ("fu: index roundtrip", `Quick, test_fu_index_roundtrip);
    ("fu: of_index rejects out of range", `Quick, test_fu_of_index_invalid);
    ("operand: printing", `Quick, test_operand_printing);
    ("operand: equality and projection", `Quick, test_operand_equal);
    ("instr: function-unit mapping", `Quick, test_instr_fu_mapping);
    ("instr: latency", `Quick, test_instr_latency);
    ("instr: defs and uses", `Quick, test_instr_def_uses);
    ("instr: predicates", `Quick, test_instr_predicates);
    ("instr: printing", `Quick, test_instr_printing);
    ("machine: the four paper configs", `Quick, test_machine_paper_configs);
    ("machine: unit counts and overrides", `Quick, test_machine_counts);
    ("machine: validation", `Quick, test_machine_validate);
    ("program: Fig. 2 program validates", `Quick, test_program_validates);
    ("program: sync labels", `Quick, test_program_labels);
    ("program: array/scalar name sets", `Quick, test_program_name_sets);
    ("program: waits grouped by signal", `Quick, test_program_waits_of_signal);
    ("program: rejects double definition", `Quick, test_program_rejects_double_def);
    ("program: rejects send before source", `Quick, test_program_rejects_send_before_src);
    ("program: rejects distance < 1", `Quick, test_program_rejects_bad_distance);
    ("program: Fig. 2 pretty-printing", `Quick, test_program_pp_fig2);
  ]
