let () =
  Alcotest.run "isched"
    [
      ("util", Test_util.suite);
      ("obs", Test_obs.suite);
      ("ir", Test_ir.suite);
      ("frontend", Test_frontend.suite);
      ("deps", Test_deps.suite);
      ("transform", Test_transform.suite);
      ("sync", Test_sync.suite);
      ("codegen", Test_codegen.suite);
      ("dfg", Test_dfg.suite);
      ("sched", Test_scheduler.suite);
      ("exec", Test_exec.suite);
      ("sim", Test_sim.suite);
      ("check", Test_check.suite);
      ("perfect", Test_perfect.suite);
      ("harness", Test_harness.suite);
      ("provenance", Test_provenance.suite);
      ("extensions", Test_extensions.suite);
      ("properties", Test_props.suite);
      ("serve", Test_serve.suite);
    ]
