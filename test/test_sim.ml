(* Tests for the multiprocessor simulators: the fast timing engine
   against the LBD loop theorem, and the cycle-accurate value engine
   against the sequential reference. *)

module Timing = Isched_sim.Timing
module Value = Isched_sim.Value
module Schedule = Isched_core.Schedule
module Lbd_model = Isched_core.Lbd_model
module Dfg = Isched_dfg.Dfg
module Machine = Isched_ir.Machine
module Program = Isched_ir.Program
module Parser = Isched_frontend.Parser

let check = Alcotest.check
let compile ?n_iters src = Isched_codegen.Codegen.compile ?n_iters (Parser.parse_loop src)

let qtest ?(count = 60) name gen law =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen law)
let m4 = Machine.make ~issue:4 ~nfu:1 ()

let schedules_of src =
  let p = compile src in
  let g = Dfg.build p in
  (p, g, Isched_core.List_sched.run g m4, Isched_core.Sync_sched.run g m4)

(* --- timing --- *)

let test_timing_doall () =
  (* No synchronization: all processors run the same rows in lockstep;
     the loop costs exactly the schedule length. *)
  let _, _, s, _ = schedules_of "DO I = 1, 50\n A[I] = E[I] + C[I]\nENDDO" in
  let t = Timing.run s in
  check Alcotest.int "finish = length" s.Schedule.length t.Timing.finish;
  check Alcotest.int "no stalls" 0 t.Timing.stall_cycles

let test_timing_matches_theorem_d1 () =
  let _, _, s, _ = schedules_of "DOACROSS I = 1, 100\n A[I] = A[I-1] + E[I]\nENDDO" in
  check Alcotest.int "single-pair chain exact" (Lbd_model.exact_time s) (Timing.run s).Timing.finish

let test_timing_matches_theorem_d3 () =
  let _, _, s, _ = schedules_of "DOACROSS I = 1, 100\n A[I] = A[I-3] * E[I]\nENDDO" in
  check Alcotest.int "distance-3 chain exact" (Lbd_model.exact_time s) (Timing.run s).Timing.finish

let test_timing_lfd_costs_nothing () =
  let _, _, _, s = schedules_of "DOACROSS I = 1, 100\n S1: B[I] = A[I-1]\n S2: A[I] = E[I]\nENDDO" in
  (* fully converted: start offsets are bounded by the row count *)
  let t = Timing.run s in
  Alcotest.(check bool) "about one iteration" true (t.Timing.finish <= 2 * s.Schedule.length + 2)

let test_timing_iteration_starts_monotone_chain () =
  let _, _, s, _ = schedules_of "DOACROSS I = 1, 50\n A[I] = A[I-1] + E[I]\nENDDO" in
  let t = Timing.run s in
  let starts = t.Timing.iteration_starts in
  for k = 1 to Array.length starts - 1 do
    Alcotest.(check bool) "chain starts increase" true (starts.(k) >= starts.(k - 1))
  done

let test_timing_n_iters_scaling () =
  let time n =
    let p = compile ~n_iters:n "DOACROSS I = 1, 100\n A[I] = A[I-1] + E[I]\nENDDO" in
    let g = Dfg.build p in
    (Timing.run (Isched_core.List_sched.run g m4)).Timing.finish
  in
  let t100 = time 100 and t200 = time 200 in
  (* Per the theorem the time is linear in n. *)
  Alcotest.(check bool) "roughly doubles" true (abs (t200 - (2 * t100)) <= t100 / 2)

let test_timing_invalid_schedule_error () =
  (* Regression: a row layout that omits the Send leaves later
     iterations waiting on a signal nobody posts.  This used to die in a
     bare [assert]; it must now raise the structured error with the
     iteration/signal context. *)
  let p = compile "DOACROSS I = 1, 10\n A[I] = A[I-1] + E[I]\nENDDO" in
  let keep = ref [] in
  Array.iteri
    (fun i instr ->
      match instr with Isched_ir.Instr.Send _ -> () | _ -> keep := i :: !keep)
    p.Program.body;
  let rows = Array.of_list (List.rev_map (fun i -> [| i |]) !keep) in
  match Timing.run_rows p rows with
  | _ -> Alcotest.fail "expected Invalid_schedule"
  | exception Timing.Invalid_schedule { prog; iteration; wait; signal; posting_iteration } ->
    check Alcotest.string "prog named" p.Program.name prog;
    Alcotest.(check bool) "stalled iteration is not the first" true (iteration >= 1);
    check Alcotest.int "posting iteration at the dependence distance" (iteration - 1)
      posting_iteration;
    Alcotest.(check bool) "wait and signal ids in range" true (wait >= 0 && signal >= 0)

let test_timing_run_rows_hand_layout () =
  (* A hand-built two-row layout: wait+load in row 1, store+send in
     row 2 is illegal for latency but Timing trusts its input; use the
     simple exactness instead: 1 row per instruction. *)
  let p = compile "DOACROSS I = 1, 10\n A[I] = A[I-1] + E[I]\nENDDO" in
  let n = Array.length p.Program.body in
  let rows = Array.init n (fun i -> [| i |]) in
  let t = Timing.run_rows p rows in
  (* serial rows: span = send - wait positions; theorem applies *)
  Alcotest.(check bool) "finishes" true (t.Timing.finish > 0)

(* --- steady-state extrapolation --- *)

let same_result msg (a : Timing.result) (b : Timing.result) =
  check Alcotest.int (msg ^ ": finish") a.Timing.finish b.Timing.finish;
  check Alcotest.int (msg ^ ": stalls") a.Timing.stall_cycles b.Timing.stall_cycles;
  check Alcotest.(array int) (msg ^ ": starts") a.Timing.iteration_starts b.Timing.iteration_starts;
  check
    Alcotest.(array int)
    (msg ^ ": finishes") a.Timing.iteration_finishes b.Timing.iteration_finishes

let test_timing_extrapolation_matches_full () =
  (* The satellite cross-check: over the Perfect-surrogate corpora, the
     steady-state fast path must be bit-identical to the full simulation
     for short, transient-only and steady-state trip counts, under both
     iteration-to-processor assignments and several pool sizes. *)
  List.iter
    (fun (b : Isched_perfect.Suite.benchmark) ->
      let loops =
        List.filteri (fun i _ -> i < 3) b.Isched_perfect.Suite.loops
      in
      List.iter
        (fun l ->
          List.iter
            (fun n ->
              match Isched_codegen.Codegen.compile ~n_iters:n l with
              | exception Invalid_argument _ -> ()
              | p ->
                let g = Dfg.build p in
                List.iter
                  (fun s ->
                    List.iter
                      (fun assignment ->
                        List.iter
                          (fun n_procs ->
                            let fast = Timing.run ?n_procs ~assignment s in
                            let full = Timing.run ?n_procs ~assignment ~extrapolate:false s in
                            check Alcotest.(option int) "oracle never extrapolates" None
                              full.Timing.extrapolated_from;
                            same_result
                              (Printf.sprintf "%s n=%d procs=%s" l.Isched_frontend.Ast.name n
                                 (match n_procs with None -> "all" | Some p -> string_of_int p))
                              full fast)
                          [ None; Some 4; Some 10 ])
                      [ `Cyclic; `Block ])
                  [ Isched_core.List_sched.run g m4; Isched_core.Sync_sched.run g m4 ])
            [ 1; 7; 100 ])
        loops)
    (Isched_perfect.Suite.all ())

let test_timing_extrapolation_fires () =
  (* On a long recurrence the fast path must actually engage (and stay
     exact): that is where the 4x bench win comes from. *)
  let p = compile ~n_iters:5000 "DOACROSS I = 1, 100\n A[I] = A[I-1] + E[I]\nENDDO" in
  let g = Dfg.build p in
  let s = Isched_core.Sync_sched.run g m4 in
  let fast = Timing.run s in
  Alcotest.(check bool) "extrapolation engaged" true (fast.Timing.extrapolated_from <> None);
  same_result "n=5000 chain" (Timing.run ~extrapolate:false s) fast;
  let fast4 = Timing.run ~n_procs:4 s in
  Alcotest.(check bool) "engages with a limited pool" true
    (fast4.Timing.extrapolated_from <> None);
  same_result "n=5000 chain, 4 procs" (Timing.run ~n_procs:4 ~extrapolate:false s) fast4

(* The extrapolation fast path splits a `Block pool into equal chunks
   plus a ragged remainder when n_procs does not divide n; the residues
   at the chunk boundaries are exactly where an off-by-one would hide.
   Property: fast path and full simulation are bit-identical there. *)
let prop_block_extrapolation_ragged =
  qtest "timing: extrapolation exact under `Block with ragged chunks"
    QCheck2.Gen.(
      let* d = int_range 1 4 in
      let* n = int_range 8 400 in
      let* n_procs = int_range 2 9 in
      let* issue = oneofl [ 2; 4 ] in
      let* which = oneofl [ `List; `New ] in
      return (d, n, n_procs, issue, which))
    (fun (d, n, n_procs, issue, which) ->
      (* force a non-zero residue: n_procs >= 2, so n+1 never divides *)
      let n = if n mod n_procs = 0 then n + 1 else n in
      let p =
        compile ~n_iters:n (Printf.sprintf "DOACROSS I = 1, 100\n A[I] = A[I-%d] + E[I]\nENDDO" d)
      in
      let g = Dfg.build p in
      let m = Machine.make ~issue ~nfu:1 () in
      let s =
        match which with
        | `List -> Isched_core.List_sched.run g m
        | `New -> Isched_core.Sync_sched.run g m
      in
      let fast = Timing.run ~n_procs ~assignment:`Block s in
      let full = Timing.run ~n_procs ~assignment:`Block ~extrapolate:false s in
      fast.Timing.finish = full.Timing.finish
      && fast.Timing.stall_cycles = full.Timing.stall_cycles
      && fast.Timing.iteration_starts = full.Timing.iteration_starts
      && fast.Timing.iteration_finishes = full.Timing.iteration_finishes)

(* Steady-state boundary cases.  [Program.validate] rejects trip counts
   below 1, so the n=0 record is built directly and driven through
   [run_rows]. *)

let chain_rows n_iters =
  let p = compile ~n_iters:(max n_iters 1) "DOACROSS I = 1, 100\n A[I] = A[I-1] + E[I]\nENDDO" in
  let n = Array.length p.Program.body in
  ({ p with Program.n_iters }, Array.init n (fun i -> [| i |]))

let test_timing_boundary_zero_iters () =
  let p, rows = chain_rows 0 in
  (* The default pool is one processor per iteration — zero of them. *)
  Alcotest.check_raises "default pool of zero rejected"
    (Invalid_argument "Timing.run_rows: n_procs must be >= 1") (fun () ->
      ignore (Timing.run_rows p rows));
  let t = Timing.run_rows ~n_procs:1 p rows in
  check Alcotest.int "finish" 0 t.Timing.finish;
  check Alcotest.int "stalls" 0 t.Timing.stall_cycles;
  check Alcotest.(array int) "no starts" [||] t.Timing.iteration_starts;
  check Alcotest.(array int) "no finishes" [||] t.Timing.iteration_finishes;
  check Alcotest.(option int) "nothing to extrapolate" None t.Timing.extrapolated_from

let test_timing_boundary_one_iter () =
  let p, rows = chain_rows 1 in
  let t = Timing.run_rows p rows in
  check Alcotest.(option int) "single iteration never extrapolates" None
    t.Timing.extrapolated_from;
  same_result "n=1" (Timing.run_rows ~extrapolate:false p rows) t;
  check Alcotest.int "one iteration, no cross-iteration stall" 0 t.Timing.stall_cycles

let test_timing_boundary_below_period () =
  (* Cyclic pool of 8 over 10 iterations: the recurrence period is the
     pool size, and 10 iterations cannot cover guard + window + period,
     so the fast path must decline (and still agree with the oracle). *)
  let p, rows = chain_rows 10 in
  let t = Timing.run_rows ~n_procs:8 p rows in
  check Alcotest.(option int) "trip count below the period: full sim" None
    t.Timing.extrapolated_from;
  same_result "n=10 procs=8" (Timing.run_rows ~n_procs:8 ~extrapolate:false p rows) t

let test_timing_boundary_unusable_period () =
  (* A cyclic pool of 600 puts the period past the 512 cap: the fast
     path is structurally unusable however long the loop runs.  The
     fallback is observable through the [timing.full_sim] counter. *)
  let p, rows = chain_rows 2000 in
  let c_full = Isched_obs.Counters.counter "timing.full_sim" in
  let c_extra = Isched_obs.Counters.counter "timing.extrapolated" in
  let full0 = Isched_obs.Counters.value c_full in
  let extra0 = Isched_obs.Counters.value c_extra in
  let t = Timing.run_rows ~n_procs:600 p rows in
  check Alcotest.(option int) "never stabilises" None t.Timing.extrapolated_from;
  check Alcotest.int "full-sim fallback counted" (full0 + 1)
    (Isched_obs.Counters.value c_full);
  check Alcotest.int "not counted as extrapolated" extra0
    (Isched_obs.Counters.value c_extra);
  same_result "n=2000 procs=600" (Timing.run_rows ~n_procs:600 ~extrapolate:false p rows) t;
  (* Same trip count with a small pool does stabilise — the cap, not the
     loop, is what blocked the fast path above. *)
  let t4 = Timing.run_rows ~n_procs:4 p rows in
  Alcotest.(check bool) "small pool extrapolates" true (t4.Timing.extrapolated_from <> None);
  check Alcotest.int "extrapolation counted" (extra0 + 1)
    (Isched_obs.Counters.value c_extra)

(* --- value simulation --- *)

let expect_equiv src =
  let p, g, sa, sb = schedules_of src in
  ignore g;
  List.iter
    (fun s ->
      match Isched_harness.Equivalence.check_schedule p s with
      | Ok () -> ()
      | Error es -> Alcotest.failf "%s: %s" src (String.concat "; " es))
    [ sa; sb ]

let test_value_fig1 () =
  expect_equiv
    "DOACROSS I = 1, 100\n\
    \ S1: B[I] = A[I-2] + E[I+1]\n\
    \ S2: G[I-3] = A[I-1] * E[I+2]\n\
    \ S3: A[I] = B[I] + C[I+3]\n\
     ENDDO"

let test_value_recurrence () = expect_equiv "DOACROSS I = 1, 60\n A[I] = A[I-1] * C[I] + E[I]\nENDDO"

let test_value_guard () =
  expect_equiv "DOACROSS I = 1, 40\n IF (E[I] > 0) A[I] = A[I-2] + C[I]\nENDDO"

let test_value_anti_dep () =
  expect_equiv "DOACROSS I = 1, 40\n S1: B[I] = A[I+1]\n S2: A[I] = E[I]\nENDDO"

let test_value_scalar_dep () =
  expect_equiv "DOACROSS I = 1, 30\n S1: S = S + A[I-1]\n S2: A[I] = E[I] + S\nENDDO"

let test_value_finish_matches_timing () =
  let _, _, sa, sb =
    schedules_of
      "DOACROSS I = 1, 100\n\
      \ S1: B[I] = A[I-2] + E[I+1]\n\
      \ S2: G[I-3] = A[I-1] * E[I+2]\n\
      \ S3: A[I] = B[I] + C[I+3]\n\
       ENDDO"
  in
  List.iter
    (fun s ->
      check Alcotest.int "the two simulators agree on time" (Timing.run s).Timing.finish
        (Value.run s).Value.finish)
    [ sa; sb ]

let test_value_no_races_under_sync () =
  let _, _, sa, sb = schedules_of "DOACROSS I = 1, 50\n A[I] = A[I-1] + E[I]\nENDDO" in
  List.iter
    (fun s -> check Alcotest.int "race-free" 0 (List.length (Value.run s).Value.races))
    [ sa; sb ]

let test_value_stale_without_sync_arcs () =
  (* The motivating bug: scheduling without the sync-condition arcs lets
     sinks run before their waits. *)
  let p =
    compile
      "DOACROSS I = 1, 100\n\
      \ S1: B[I] = A[I-2] + E[I+1]\n\
      \ S2: G[I-3] = A[I-1] * E[I+2]\n\
      \ S3: A[I] = B[I] + C[I+3]\n\
       ENDDO"
  in
  let g0 = Dfg.build ~sync_arcs:false p in
  let s0 = Isched_core.List_sched.run g0 (Machine.make ~issue:4 ~nfu:1 ()) in
  let v = Value.run s0 in
  let seq_log = Isched_exec.Readlog.create () in
  let seq_mem = Isched_exec.Prog_interp.run ~log:seq_log p in
  let stale = Isched_exec.Readlog.compare_logs ~reference:seq_log ~actual:v.Value.log in
  Alcotest.(check bool) "stale reads detected" true (List.length stale > 0);
  Alcotest.(check bool) "memory corrupted" false (Isched_exec.Memory.equal seq_mem v.Value.memory)

let test_value_corpus_sample () =
  (* One loop from each corpus, both schedulers, value-checked. *)
  List.iter
    (fun (b : Isched_perfect.Suite.benchmark) ->
      match b.Isched_perfect.Suite.loops with
      | l :: _ ->
        let p = Isched_codegen.Codegen.compile l in
        let g = Dfg.build p in
        List.iter
          (fun s ->
            match Isched_harness.Equivalence.check_schedule p s with
            | Ok () -> ()
            | Error es ->
              Alcotest.failf "%s: %s" l.Isched_frontend.Ast.name (String.concat "; " es))
          [ Isched_core.List_sched.run g m4; Isched_core.Sync_sched.run g m4 ]
      | [] -> ())
    (Isched_perfect.Suite.all ())

let suite =
  [
    ("timing: doall costs the schedule length", `Quick, test_timing_doall);
    ("timing: LBD theorem, distance 1", `Quick, test_timing_matches_theorem_d1);
    ("timing: LBD theorem, distance 3", `Quick, test_timing_matches_theorem_d3);
    ("timing: converted pairs cost one iteration", `Quick, test_timing_lfd_costs_nothing);
    ("timing: chained iteration starts increase", `Quick, test_timing_iteration_starts_monotone_chain);
    ("timing: linear in the iteration count", `Quick, test_timing_n_iters_scaling);
    ("timing: missing send raises a located Invalid_schedule", `Quick,
      test_timing_invalid_schedule_error);
    ("timing: run_rows on a hand layout", `Quick, test_timing_run_rows_hand_layout);
    prop_block_extrapolation_ragged;
    ( "timing: extrapolation exact on corpora, n in {1,7,100}, both assignments",
      `Slow,
      test_timing_extrapolation_matches_full );
    ("timing: extrapolation engages on long runs", `Quick, test_timing_extrapolation_fires);
    ("timing: boundary, zero iterations", `Quick, test_timing_boundary_zero_iters);
    ("timing: boundary, one iteration", `Quick, test_timing_boundary_one_iter);
    ("timing: boundary, trip count below the period", `Quick, test_timing_boundary_below_period);
    ("timing: boundary, period past the cap falls back", `Quick, test_timing_boundary_unusable_period);
    ("value: Fig. 1 is exact", `Quick, test_value_fig1);
    ("value: multiplicative recurrence", `Quick, test_value_recurrence);
    ("value: guarded recurrence", `Quick, test_value_guard);
    ("value: anti dependence", `Quick, test_value_anti_dep);
    ("value: scalar dependence", `Quick, test_value_scalar_dep);
    ("value: agrees with the timing engine", `Quick, test_value_finish_matches_timing);
    ("value: race-free under synchronization", `Quick, test_value_no_races_under_sync);
    ("value: stale reads without the sync arcs", `Quick, test_value_stale_without_sync_arcs);
    ("value: corpus sample is exact", `Slow, test_value_corpus_sample);
  ]
