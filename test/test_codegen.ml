(* Tests for the code generator (Fig. 2 golden test, CSE, if-conversion,
   sync placement) and the register-allocation analysis. *)

module Codegen = Isched_codegen.Codegen
module Regalloc = Isched_codegen.Regalloc
module Instr = Isched_ir.Instr
module Operand = Isched_ir.Operand
module Program = Isched_ir.Program
module Parser = Isched_frontend.Parser

let check = Alcotest.check
let parse = Parser.parse_loop

let compile src = Codegen.compile (parse src)

let fig1 =
  "DOACROSS I = 1, 100\n\
  \ S1: B[I] = A[I-2] + E[I+1]\n\
  \ S2: G[I-3] = A[I-1] * E[I+2]\n\
  \ S3: A[I] = B[I] + C[I+3]\n\
   ENDDO"

(* A compact structural signature of an instruction for golden tests. *)
let sig_of (p : Program.t) i =
  match p.Program.body.(i) with
  | Instr.Bin { op; _ } -> Instr.binop_name op
  | Instr.Select _ -> "select"
  | Instr.Load { base; _ } -> "ld " ^ base
  | Instr.Store { base; _ } -> "st " ^ base
  | Instr.Load_scalar { name; _ } -> "lds " ^ name
  | Instr.Store_scalar { name; _ } -> "sts " ^ name
  | Instr.Send _ -> "send"
  | Instr.Wait _ -> "wait"

let signature p = List.init (Array.length p.Program.body) (sig_of p)

let test_fig2_golden () =
  (* The paper's Fig. 2, instruction for instruction (28 instead of 27
     because Fig. 2 fuses its final add into the store). *)
  let p = compile fig1 in
  check
    Alcotest.(list string)
    "Fig. 2 structure"
    [
      "wait" (* 1  Wait_Signal(S3, I-2) *);
      "<<" (* 2  t0 := I << 2            (the paper's 4*I) *);
      "+" (* 3  t1 := I - 2 *);
      "<<" (* 4  t2 := t1 << 2 *);
      "ld A" (* 5  t3 := A[t2] *);
      "+" (* 6  t4 := I + 1 *);
      "<<" (* 7  t5 := t4 << 2 *);
      "ld E" (* 8  t6 := E[t5] *);
      "+." (* 9  t7 := t3 + t6 *);
      "st B" (* 10 B[t0] := t7 *);
      "wait" (* 11 Wait_Signal(S3, I-1) *);
      "+" (* 12 t8 := I - 3 *);
      "<<" (* 13 t9 := t8 << 2 *);
      "+" (* 14 t10 := I - 1 *);
      "<<" (* 15 t11 := t10 << 2 *);
      "ld A" (* 16 t12 := A[t11] *);
      "+" (* 17 t13 := I + 2 *);
      "<<" (* 18 t14 := t13 << 2 *);
      "ld E" (* 19 t15 := E[t14] *);
      "*." (* 20 t16 := t12 * t15 *);
      "st G" (* 21 G[t9] := t16 *);
      "ld B" (* 22 t17 := B[t0]            (address t0 reused) *);
      "+" (* 23 t18 := I + 3 *);
      "<<" (* 24 t19 := t18 << 2 *);
      "ld C" (* 25 t20 := C[t19] *);
      "+." (* 26 t21 := t17 + t20 *);
      "st A" (* 27 A[t0] := t21 *);
      "send" (* 28 Send_Signal(S3) *);
    ]
    (signature p)

let test_address_cse () =
  (* 4*I is computed once and reused by instructions 10, 22 and 27. *)
  let p = compile fig1 in
  let addr_of i =
    match p.Program.body.(i) with
    | Instr.Store { addr; _ } -> Some addr
    | Instr.Load { addr; _ } -> Some addr
    | _ -> None
  in
  check Alcotest.(option (testable Operand.pp Operand.equal)) "store B addr" (addr_of 9) (addr_of 21);
  check Alcotest.(option (testable Operand.pp Operand.equal)) "store A addr" (addr_of 9) (addr_of 26)

let test_loads_not_cse_across_store () =
  (* B[I] is stored by S1 and must be reloaded by S3 even though the
     address is shared. *)
  let p = compile fig1 in
  let loads_of_b =
    Array.to_list p.Program.body
    |> List.filter (function Instr.Load { base = "B"; _ } -> true | _ -> false)
  in
  check Alcotest.int "one load of B (reload, not reuse)" 1 (List.length loads_of_b)

let test_readonly_load_cse () =
  (* E[I] read twice, E never written: one load suffices. *)
  let p = compile "DO I = 1, 10\n S1: B[I] = E[I] + E[I]\n S2: C2[I] = E[I]\nENDDO" in
  let loads_of_e =
    Array.to_list p.Program.body
    |> List.filter (function Instr.Load { base = "E"; _ } -> true | _ -> false)
  in
  check Alcotest.int "single load of E" 1 (List.length loads_of_e)

let test_written_array_loads_not_cse () =
  let p = compile "DO I = 1, 10\n S1: A[I] = E[I]\n S2: B[I] = A[I] + A[I]\nENDDO" in
  let loads_of_a =
    Array.to_list p.Program.body
    |> List.filter (function Instr.Load { base = "A"; _ } -> true | _ -> false)
  in
  check Alcotest.int "A reloaded per read" 2 (List.length loads_of_a)

let test_scalar_load_cse () =
  let p = compile "DO I = 1, 10\n S1: B[I] = K * E[I]\n S2: C2[I] = K + E[I+1]\nENDDO" in
  let loads =
    Array.to_list p.Program.body
    |> List.filter (function Instr.Load_scalar { name = "K"; _ } -> true | _ -> false)
  in
  check Alcotest.int "read-only scalar loaded once" 1 (List.length loads)

let test_guard_if_conversion () =
  let p = compile "DO I = 1, 10\n IF (E[I] > 0) A[I] = A[I-1] + 1\nENDDO" in
  let has_select =
    Array.exists (function Instr.Select _ -> true | _ -> false) p.Program.body
  in
  let has_cmp =
    Array.exists
      (function Instr.Bin { op = Instr.CmpGt; _ } -> true | _ -> false)
      p.Program.body
  in
  Alcotest.(check bool) "select emitted" true has_select;
  Alcotest.(check bool) "compare emitted" true has_cmp;
  (* The if-converted store still stores every iteration. *)
  Program.validate p

let test_guarded_scalar_store () =
  let p = compile "DO I = 1, 10\n IF (E[I] > 0) S = S + 1\nENDDO" in
  Alcotest.(check bool) "old value load present" true
    (Array.exists (function Instr.Load_scalar { name = "S"; _ } -> true | _ -> false) p.Program.body);
  Program.validate p

let test_int_vs_float_ops () =
  let p = compile "DO I = 1, 10\n A[I] = E[I] * C[I] + 1\nENDDO" in
  let ops =
    Array.to_list p.Program.body
    |> List.filter_map (function Instr.Bin { op; _ } -> Some op | _ -> None)
  in
  Alcotest.(check bool) "value multiply on FP multiplier" true (List.mem Instr.FMul ops);
  Alcotest.(check bool) "value add is FP" true (List.mem Instr.FAdd ops);
  Alcotest.(check bool) "no integer multiply" false (List.mem Instr.Mul ops)

let test_coef_subscript () =
  let p = compile "DO I = 1, 10\n A[2*I+1] = E[I]\nENDDO" in
  let ops =
    Array.to_list p.Program.body
    |> List.filter_map (function Instr.Bin { op; _ } -> Some op | _ -> None)
  in
  Alcotest.(check bool) "integer multiply for the coefficient" true (List.mem Instr.Mul ops)

let test_constant_subscript_folded () =
  let p = compile "DO I = 1, 10\n A[5] = E[I]\nENDDO" in
  (* The address of A[5] is an immediate: no shift emitted for it. *)
  let store_addr =
    Array.to_list p.Program.body
    |> List.find_map (function Instr.Store { addr; _ } -> Some addr | _ -> None)
  in
  check
    Alcotest.(option (testable Operand.pp Operand.equal))
    "immediate address" (Some (Operand.Imm 20)) store_addr

let test_float_literal () =
  let p = compile "DO I = 1, 10\n A[I] = E[I] * 2.5\nENDDO" in
  let uses_fimm =
    Array.exists
      (function
        | Instr.Bin { b = Operand.Fimm 2.5; _ } | Instr.Bin { a = Operand.Fimm 2.5; _ } -> true
        | _ -> false)
      p.Program.body
  in
  Alcotest.(check bool) "float immediate" true uses_fimm

let test_sync_positions () =
  let p = compile fig1 in
  Array.iter
    (fun (w : Program.wait_info) ->
      Alcotest.(check bool) "wait before sink" true (w.Program.wait_instr < w.Program.snk_instr))
    p.Program.waits;
  Array.iter
    (fun (s : Program.signal_info) ->
      Alcotest.(check bool) "send after source" true (s.Program.send_instr > s.Program.src_instr);
      (* immediately after: nothing between source and send *)
      check Alcotest.int "send immediately follows its source" (s.Program.src_instr + 1)
        s.Program.send_instr)
    p.Program.signals

let test_anti_dep_send_after_read () =
  (* Anti dependence: the source event is the READ; the send must follow
     that load, not the statement's store. *)
  let p = compile "DOACROSS I = 1, 10\n S1: B[I] = A[I+1]\n S2: A[I] = E[I]\nENDDO" in
  Array.iter
    (fun (s : Program.signal_info) ->
      match p.Program.body.(s.Program.src_instr) with
      | Instr.Load { base = "A"; _ } -> ()
      | other -> Alcotest.failf "source should be the A load, got %s" (Instr.to_string other))
    p.Program.signals

let test_compile_n_iters_override () =
  let l = parse "DO I = 1, 10\n A[I] = A[I-1]\nENDDO" in
  let p = Codegen.compile ~n_iters:500 l in
  check Alcotest.int "override" 500 p.Program.n_iters

let test_every_generated_loop_compiles () =
  List.iter
    (fun (b : Isched_perfect.Suite.benchmark) ->
      List.iter
        (fun l ->
          let p = Codegen.compile l in
          Program.validate p)
        b.Isched_perfect.Suite.loops)
    (Isched_perfect.Suite.all ())

(* --- Regalloc --- *)

let test_live_ranges () =
  let p = compile "DO I = 1, 10\n A[I] = E[I] + C[I]\nENDDO" in
  let order = Regalloc.original_order p in
  let ranges = Regalloc.live_ranges p ~order in
  Array.iter
    (fun (start, stop) -> Alcotest.(check bool) "start <= stop" true (start <= stop))
    ranges

let test_max_pressure_bounds () =
  let p = compile fig1 in
  let order = Regalloc.original_order p in
  let pressure = Regalloc.max_pressure p ~order in
  Alcotest.(check bool) "positive" true (pressure >= 1);
  Alcotest.(check bool) "bounded by register count" true (pressure <= p.Program.n_regs)

let test_linear_scan_enough_regs () =
  let p = compile fig1 in
  let order = Regalloc.original_order p in
  let pressure = Regalloc.max_pressure p ~order in
  let alloc = Regalloc.linear_scan p ~order ~k:pressure in
  check Alcotest.int "no spills at peak pressure" 0 alloc.Regalloc.spills;
  (* Allocated registers never clash while live. *)
  let ranges = Regalloc.live_ranges p ~order in
  Array.iteri
    (fun r1 (s1, e1) ->
      Array.iteri
        (fun r2 (s2, e2) ->
          if r1 < r2 && s1 >= 0 && s2 >= 0 then begin
            let a1 = alloc.Regalloc.assignment.(r1) and a2 = alloc.Regalloc.assignment.(r2) in
            if a1 >= 0 && a1 = a2 then
              Alcotest.(check bool) "overlapping lives get distinct registers" false
                (max s1 s2 <= min e1 e2)
          end)
        ranges)
    ranges

let test_linear_scan_spills_when_tight () =
  let p = compile fig1 in
  let order = Regalloc.original_order p in
  let alloc = Regalloc.linear_scan p ~order ~k:2 in
  Alcotest.(check bool) "spills with 2 registers" true (alloc.Regalloc.spills > 0);
  Alcotest.(check bool) "some values still in registers" true
    (Array.exists (fun a -> a >= 0) alloc.Regalloc.assignment)

let test_linear_scan_invalid_k () =
  let p = compile fig1 in
  Alcotest.check_raises "k = 0" (Invalid_argument "Regalloc.linear_scan: k must be positive")
    (fun () -> ignore (Regalloc.linear_scan p ~order:(Regalloc.original_order p) ~k:0))

let suite =
  [
    ("fig2: golden instruction sequence", `Quick, test_fig2_golden);
    ("cse: addresses shared across statements", `Quick, test_address_cse);
    ("cse: loads not reused across stores", `Quick, test_loads_not_cse_across_store);
    ("cse: read-only array loads reused", `Quick, test_readonly_load_cse);
    ("cse: written arrays reloaded", `Quick, test_written_array_loads_not_cse);
    ("cse: read-only scalars loaded once", `Quick, test_scalar_load_cse);
    ("guards: if-conversion emits compare+select", `Quick, test_guard_if_conversion);
    ("guards: scalar stores keep the old value", `Quick, test_guarded_scalar_store);
    ("ops: value arithmetic on FP units", `Quick, test_int_vs_float_ops);
    ("ops: coefficient subscripts use the multiplier", `Quick, test_coef_subscript);
    ("ops: constant subscripts fold to immediates", `Quick, test_constant_subscript_folded);
    ("ops: non-integer literals become float immediates", `Quick, test_float_literal);
    ("sync: waits precede sinks, sends follow sources", `Quick, test_sync_positions);
    ("sync: anti-dependence sends follow the read", `Quick, test_anti_dep_send_after_read);
    ("compile: n_iters override", `Quick, test_compile_n_iters_override);
    ("compile: the whole corpus compiles and validates", `Quick, test_every_generated_loop_compiles);
    ("regalloc: live ranges well-formed", `Quick, test_live_ranges);
    ("regalloc: pressure bounds", `Quick, test_max_pressure_bounds);
    ("regalloc: conflict-free at peak pressure", `Quick, test_linear_scan_enough_regs);
    ("regalloc: spills under tight budgets", `Quick, test_linear_scan_spills_when_tight);
    ("regalloc: rejects k <= 0", `Quick, test_linear_scan_invalid_k);
  ]
