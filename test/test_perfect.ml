(* Tests for the Perfect-benchmark surrogate corpora: determinism,
   well-formedness, and the structural properties Table 1 reports. *)

module Profile = Isched_perfect.Profile
module Genloop = Isched_perfect.Genloop
module Suite = Isched_perfect.Suite
module Ast = Isched_frontend.Ast
module Dep = Isched_deps.Dep
module Program = Isched_ir.Program

let check = Alcotest.check

let test_profiles_complete () =
  check Alcotest.int "five benchmarks" 5 (List.length Profile.all);
  check
    Alcotest.(list string)
    "paper column order"
    [ "FLQ52"; "QCD"; "MDG"; "TRACK"; "ADM" ]
    (List.map (fun p -> p.Profile.name) Profile.all)

let test_generation_deterministic () =
  List.iter
    (fun p ->
      let a = Genloop.generate p and b = Genloop.generate p in
      check Alcotest.int (p.Profile.name ^ " same count") (List.length a) (List.length b);
      List.iter2
        (fun (la : Ast.loop) (lb : Ast.loop) ->
          check Alcotest.string "identical loops" (Ast.loop_to_string la) (Ast.loop_to_string lb))
        a b)
    Profile.all

let test_seed_changes_corpus () =
  let p = Profile.flq52 in
  let a = Genloop.generate p and b = Genloop.generate { p with Profile.seed = p.Profile.seed + 1 } in
  Alcotest.(check bool) "different seed, different corpus" true
    (List.exists2 (fun la lb -> Ast.loop_to_string la <> Ast.loop_to_string lb) a b)

let test_all_loops_wellformed () =
  List.iter
    (fun (b : Suite.benchmark) ->
      List.iter
        (fun l ->
          match Isched_frontend.Sema.check l with
          | [] -> ()
          | errs ->
            Alcotest.failf "%s: %s" l.Ast.name
              (String.concat "; "
                 (List.map (fun e -> Format.asprintf "%a" Isched_frontend.Sema.pp_error e) errs)))
        b.Suite.loops)
    (Suite.all ())

let test_trip_counts () =
  List.iter
    (fun (b : Suite.benchmark) ->
      List.iter
        (fun l -> check Alcotest.int (l.Ast.name ^ " trips") 100 (Ast.iterations l))
        b.Suite.loops)
    (Suite.all ())

let test_signature_loops_parse () =
  List.iter
    (fun p ->
      let loops = Isched_frontend.Parser.parse ~name:p.Profile.name (Suite.signature_sources p) in
      Alcotest.(check bool) (p.Profile.name ^ " has signature loops") true (List.length loops >= 2))
    Profile.all

let lbd_mix (b : Suite.benchmark) =
  List.fold_left
    (fun (lfd, lbd) l ->
      match Isched_harness.Pipeline.prepare l with
      | Isched_harness.Pipeline.Doall _ -> (lfd, lbd)
      | Isched_harness.Pipeline.Doacross { prog; _ } ->
        (lfd + Program.n_lfd prog, lbd + Program.n_lbd prog))
    (0, 0) b.Suite.loops

let test_all_lbd_benchmarks () =
  (* Table 1: FLQ52, QCD and TRACK are all LBD. *)
  List.iter
    (fun name ->
      let b = Suite.load (List.find (fun p -> p.Profile.name = name) Profile.all) in
      let lfd, lbd = lbd_mix b in
      check Alcotest.int (name ^ " has no LFD") 0 lfd;
      Alcotest.(check bool) (name ^ " has LBDs") true (lbd > 0))
    [ "FLQ52"; "QCD"; "TRACK" ]

let test_mixed_benchmarks () =
  List.iter
    (fun name ->
      let b = Suite.load (List.find (fun p -> p.Profile.name = name) Profile.all) in
      let lfd, lbd = lbd_mix b in
      Alcotest.(check bool) (name ^ " has some LFD") true (lfd > 0);
      Alcotest.(check bool) (name ^ " has LBDs") true (lbd > 0))
    [ "MDG"; "ADM" ]

let test_lbds_are_mostly_flow () =
  (* "almost all LBDs are flow dependences" *)
  let flow = ref 0 and total = ref 0 in
  List.iter
    (fun (b : Suite.benchmark) ->
      List.iter
        (fun l ->
          match Isched_harness.Pipeline.prepare l with
          | Isched_harness.Pipeline.Doall _ -> ()
          | Isched_harness.Pipeline.Doacross { prog; _ } ->
            Array.iter
              (fun (w : Program.wait_info) ->
                if w.Program.lexical = Program.LBD then begin
                  incr total;
                  if w.Program.kind = Program.Flow then incr flow
                end)
              prog.Program.waits)
        b.Suite.loops)
    (Suite.all ());
  Alcotest.(check bool) "mostly flow" true (!flow * 10 >= !total * 8)

let test_doall_fractions () =
  List.iter
    (fun (b : Suite.benchmark) ->
      let doall =
        List.length
          (List.filter
             (fun l ->
               match Isched_harness.Pipeline.prepare l with
               | Isched_harness.Pipeline.Doall _ -> true
               | _ -> false)
             b.Suite.loops)
      in
      let total = List.length b.Suite.loops in
      Alcotest.(check bool)
        (b.Suite.profile.Profile.name ^ " mostly doacross")
        true
        (doall * 2 < total))
    (Suite.all ())

let test_qcd_bodies_small () =
  (* QCD's defining trait: tight bodies, whole-body sync paths. *)
  let qcd = Suite.load Profile.qcd in
  let sizes =
    List.filter_map
      (fun l ->
        match Isched_harness.Pipeline.prepare l with
        | Isched_harness.Pipeline.Doall _ -> None
        | Isched_harness.Pipeline.Doacross { prog; _ } -> Some (Array.length prog.Program.body))
      qcd.Suite.loops
  in
  let avg = List.fold_left ( + ) 0 sizes / max 1 (List.length sizes) in
  Alcotest.(check bool) "average body under 20 instructions" true (avg < 20)

let test_category_coverage () =
  (* Across the whole suite, at least four of the six DOACROSS types are
     represented. *)
  let module Doall = Isched_transform.Doall in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (b : Suite.benchmark) ->
      List.iter
        (fun l ->
          if not (Dep.is_doall (Isched_transform.Restructure.run l).Isched_transform.Restructure.loop)
          then Hashtbl.replace seen (Doall.categorize l) ())
        b.Suite.loops)
    (Suite.all ());
  Alcotest.(check bool) "at least 4 categories" true (Hashtbl.length seen >= 4)

let test_scaled_stream_deterministic () =
  (* The --scale N stream is pure: the same chunk descriptor always
     materializes the same loops, and the chunk boundaries tile the
     stream without overlap or gap. *)
  let p = Profile.qcd in
  let chunks = Suite.chunks ~chunk_size:16 ~scale:3 p in
  let a = List.concat_map Suite.chunk_loops chunks in
  let b = List.concat_map Suite.chunk_loops chunks in
  check Alcotest.int "same loop count" (List.length a) (List.length b);
  List.iter2
    (fun (la : Ast.loop) (lb : Ast.loop) ->
      check Alcotest.string "identical loops" (Ast.loop_to_string la) (Ast.loop_to_string lb))
    a b;
  (* Different chunking, same stream. *)
  let c = List.concat_map Suite.chunk_loops (Suite.chunks ~chunk_size:64 ~scale:3 p) in
  check Alcotest.int "chunking-independent count" (List.length a) (List.length c);
  List.iter2
    (fun (la : Ast.loop) (lc : Ast.loop) ->
      check Alcotest.string "chunking-independent loops" (Ast.loop_to_string la)
        (Ast.loop_to_string lc))
    a c

let test_scaled_tables_jobs_invariant () =
  (* scaled_tables must render byte-identically whatever the worker
     count or chunk size: summaries are associative integer sums. *)
  let module Report = Isched_harness.Report in
  let module Table = Isched_util.Table in
  let module Machine = Isched_ir.Machine in
  let profiles = [ Profile.flq52; Profile.qcd ] in
  let configs =
    List.filteri (fun i _ -> i < 2) Machine.paper_configs
  in
  let render (t1, ms, cats, sync_ops) =
    ( Table.render t1,
      List.map
        (fun (m : Report.measurement) -> (m.benchmark, m.config, m.t_list, m.t_new))
        ms,
      Table.render cats,
      sync_ops )
  in
  let one = render (Report.scaled_tables ~jobs:1 ~scale:2 profiles configs) in
  let four = render (Report.scaled_tables ~jobs:4 ~scale:2 profiles configs) in
  let rechunked =
    render (Report.scaled_tables ~jobs:4 ~chunk_size:7 ~scale:2 profiles configs)
  in
  check Alcotest.bool "jobs=1 = jobs=4" true (one = four);
  check Alcotest.bool "chunk size irrelevant" true (one = rechunked)

let suite =
  [
    ("profiles: five, in paper order", `Quick, test_profiles_complete);
    ("generation: byte-identical reruns", `Quick, test_generation_deterministic);
    ("generation: seed sensitivity", `Quick, test_seed_changes_corpus);
    ("corpora: every loop is well-formed", `Quick, test_all_loops_wellformed);
    ("corpora: 100 iterations everywhere", `Quick, test_trip_counts);
    ("corpora: signature loops parse", `Quick, test_signature_loops_parse);
    ("table1: FLQ52, QCD, TRACK are all LBD", `Quick, test_all_lbd_benchmarks);
    ("table1: MDG and ADM are mixed", `Quick, test_mixed_benchmarks);
    ("table1: LBDs are mostly flow deps", `Quick, test_lbds_are_mostly_flow);
    ("corpora: doall loops are the minority", `Quick, test_doall_fractions);
    ("qcd: tight bodies", `Quick, test_qcd_bodies_small);
    ("corpora: DOACROSS category coverage", `Quick, test_category_coverage);
    ("scale: chunked stream deterministic", `Quick, test_scaled_stream_deterministic);
    ("scale: tables invariant under jobs and chunking", `Quick, test_scaled_tables_jobs_invariant);
  ]
