(* Tests for the independent schedule-validity checker: the static
   analyzer on known-good and deliberately corrupted schedules, the
   fault-injection campaign (the checker's own differential test), the
   value/reference oracle, and the pipeline's opt-in validation hook. *)

module Static = Isched_check.Static
module Violation = Isched_check.Violation
module Inject = Isched_check.Inject
module Oracle = Isched_check.Oracle
module Schedule = Isched_core.Schedule
module Dfg = Isched_dfg.Dfg
module Machine = Isched_ir.Machine
module Program = Isched_ir.Program
module Parser = Isched_frontend.Parser
module Pipeline = Isched_harness.Pipeline

let check = Alcotest.check
let compile src = Isched_codegen.Codegen.compile (Parser.parse_loop src)

let fig1_src =
  "DOACROSS I = 1, 100\n\
  \ S1: B[I] = A[I-2] + E[I+1]\n\
  \ S2: G[I-3] = A[I-1] * E[I+2]\n\
  \ S3: A[I] = B[I] + C[I+3]\n\
   ENDDO"

let machines =
  [
    Machine.make ~issue:2 ~nfu:1 ();
    Machine.make ~issue:4 ~nfu:2 ();
    Machine.make ~pipelined:false ~issue:4 ~nfu:2 ();
  ]

(* Every (scheduler, machine) schedule of [src], with the graph the
   scheduler consumed. *)
let schedules_of src =
  let p = compile src in
  let g = Dfg.build p in
  List.concat_map
    (fun m ->
      [
        ("list", Isched_core.List_sched.run g m, g);
        ("marker", Isched_core.Marker_sched.run g m, g);
        ("new", Isched_core.Sync_sched.run g m, g);
      ])
    machines

let fail_violations name vs =
  Alcotest.failf "%s: %s" name (Static.errors_to_string name vs)

(* --- static analyzer --- *)

let test_static_accepts_valid () =
  List.iter
    (fun (name, s, g) ->
      (match Static.check s with Ok () -> () | Error vs -> fail_violations name vs);
      match Static.check ~graph:g s with Ok () -> () | Error vs -> fail_violations name vs)
    (schedules_of fig1_src)

let test_static_malformed_rows () =
  let _, s, _ = List.hd (schedules_of fig1_src) in
  let truncated = { s with Schedule.rows = Array.sub s.Schedule.rows 0 1 } in
  match Static.check truncated with
  | Ok () -> Alcotest.fail "truncated rows accepted"
  | Error vs ->
    Alcotest.(check bool) "reported as malformed" true
      (List.exists (fun v -> Violation.class_name v = "malformed-schedule") vs)

let test_static_malformed_negative_cycle () =
  let _, s, _ = List.hd (schedules_of fig1_src) in
  let cycle_of = Array.copy s.Schedule.cycle_of in
  cycle_of.(0) <- -1;
  match Static.check { s with Schedule.cycle_of } with
  | Ok () -> Alcotest.fail "negative cycle accepted"
  | Error [ v ] ->
    (* shape violations are fatal: reported alone, later passes skipped *)
    check Alcotest.string "class" "malformed-schedule" (Violation.class_name v)
  | Error vs -> Alcotest.failf "expected one fatal violation, got %d" (List.length vs)

let test_static_catches_missing_sync_arcs () =
  (* The motivating bug: a scheduler fed a graph without the sync arcs
     reorders sync operations against the memory traffic they guard (on
     Fig. 1 the send hoists above its source store).  The checker
     re-derives both sync conditions from the program tables, so it
     catches this no matter which graph it is given — including the very
     graph that misled the scheduler. *)
  let p = compile fig1_src in
  let g0 = Dfg.build ~sync_arcs:false p in
  let s0 = Isched_core.List_sched.run g0 (Machine.make ~issue:4 ~nfu:1 ()) in
  match Static.check ~graph:g0 s0 with
  | Ok () -> Alcotest.fail "stale-data schedule accepted"
  | Error vs ->
    Alcotest.(check bool) "a sync condition violation reported" true
      (List.exists
         (fun v ->
           match Violation.class_name v with
           | "premature-send" | "hoisted-sink" -> true
           | _ -> false)
         vs)

(* --- fault injection --- *)

let test_inject_every_class_detected () =
  List.iter
    (fun (name, s, g) ->
      List.iter
        (fun fault ->
          match Inject.inject fault s with
          | None -> Alcotest.failf "%s: no opportunity for %s" name (Inject.name fault)
          | Some corrupted -> (
            match Static.check ~graph:g corrupted with
            | Ok () ->
              Alcotest.failf "%s: injected %s not detected" name (Inject.name fault)
            | Error vs ->
              Alcotest.(check bool)
                (Printf.sprintf "%s: %s detected as its own class" name (Inject.name fault))
                true
                (List.exists (Inject.detects fault) vs)))
        Inject.all)
    (schedules_of fig1_src)

let test_inject_never_mutates () =
  let _, s, _ = List.hd (schedules_of fig1_src) in
  let saved = Array.copy s.Schedule.cycle_of in
  List.iter (fun fault -> ignore (Inject.inject fault s)) Inject.all;
  check Alcotest.(array int) "original cycles untouched" saved s.Schedule.cycle_of

let test_campaign_corpus_sample () =
  (* First DOACROSS loop of each corpus, all three schedulers: every
     injected fault must be detected. *)
  List.iter
    (fun (b : Isched_perfect.Suite.benchmark) ->
      match b.Isched_perfect.Suite.loops with
      | [] -> ()
      | l :: _ -> (
        match Pipeline.prepare l with
        | Pipeline.Doall _ -> ()
        | Pipeline.Doacross { graph; _ } ->
          List.iter
            (fun which ->
              let s =
                Pipeline.schedule (Pipeline.prepare l) (Machine.make ~issue:4 ~nfu:2 ()) which
              in
              List.iter
                (fun (o : Inject.outcome) ->
                  if o.Inject.injected && not o.Inject.detected then
                    Alcotest.failf "%s/%s: injected %s missed" l.Isched_frontend.Ast.name
                      (Pipeline.scheduler_name which)
                      (Inject.name o.Inject.fault))
                (Inject.campaign ~graph s))
            Pipeline.all_schedulers))
    (Isched_perfect.Suite.all ())

(* --- differential oracle --- *)

let test_oracle_accepts_valid () =
  List.iter
    (fun (name, s, g) ->
      (match Oracle.differential s with
      | Ok () -> ()
      | Error msgs -> Alcotest.failf "%s: %s" name (String.concat "; " msgs));
      match Oracle.check_schedule ~graph:g s with
      | Ok () -> ()
      | Error msgs -> Alcotest.failf "%s: %s" name (String.concat "; " msgs))
    (schedules_of fig1_src)

let test_oracle_catches_stale_reads () =
  let p = compile fig1_src in
  let g0 = Dfg.build ~sync_arcs:false p in
  let s0 = Isched_core.List_sched.run g0 (Machine.make ~issue:4 ~nfu:1 ()) in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
    at 0
  in
  match Oracle.differential s0 with
  | Ok () -> Alcotest.fail "oracle accepted a stale-data schedule"
  | Error msgs ->
    Alcotest.(check bool) "stale reads named" true
      (List.exists (contains "stale read") msgs)

(* --- pipeline hook --- *)

let test_pipeline_validate_passes () =
  let l = Parser.parse_loop fig1_src in
  match Pipeline.prepare l with
  | Pipeline.Doall _ -> Alcotest.fail "fig1 is DOACROSS"
  | Pipeline.Doacross _ as prepared ->
    List.iter
      (fun which ->
        List.iter
          (fun m ->
            let s = Pipeline.schedule ~validate:true prepared m which in
            Alcotest.(check bool) "non-empty schedule" true (s.Schedule.length > 0);
            Alcotest.(check bool) "loop_time positive" true
              (Pipeline.loop_time ~validate:true prepared m which > 0))
          machines)
      Pipeline.all_schedulers

let suite =
  [
    ("static: accepts all schedulers' output on Fig. 1", `Quick, test_static_accepts_valid);
    ("static: truncated rows are malformed", `Quick, test_static_malformed_rows);
    ("static: negative cycle is fatal and alone", `Quick, test_static_malformed_negative_cycle);
    ("static: catches scheduling without the sync arcs", `Quick,
      test_static_catches_missing_sync_arcs);
    ("inject: every fault class detected on Fig. 1", `Quick, test_inject_every_class_detected);
    ("inject: never mutates the input schedule", `Quick, test_inject_never_mutates);
    ("inject: campaign clean over corpus sample", `Slow, test_campaign_corpus_sample);
    ("oracle: accepts all schedulers' output on Fig. 1", `Quick, test_oracle_accepts_valid);
    ("oracle: catches stale reads", `Quick, test_oracle_catches_stale_reads);
    ("pipeline: validate:true passes on valid schedules", `Quick, test_pipeline_validate_passes);
  ]
