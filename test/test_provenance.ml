(* Tests for the decision-provenance layer: the ring buffer, the JSON
   value parser it exports with, the traced pipeline + explainer joins,
   and the bench-history perf-regression gate. *)

module Provenance = Isched_obs.Provenance
module Json = Isched_obs.Json
module Pipeline = Isched_harness.Pipeline
module Explain = Isched_harness.Explain
module Bench_gate = Isched_harness.Bench_gate
module Lbd_model = Isched_core.Lbd_model
module Schedule = Isched_core.Schedule

let check = Alcotest.check

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.equal (String.sub s i n) affix || go (i + 1)) in
  n = 0 || go 0

let with_recording f =
  Provenance.reset ();
  Provenance.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Provenance.set_enabled false;
      Provenance.reset ();
      Provenance.set_capacity 65536)
    f

let record ?(rejections = []) ?binding i cycle =
  Provenance.record ~scheduler:"test" ~prog:"p" ~instr:i ~cycle ~ready:0 ~candidates:1
    ~priority:0 ~rejections ?binding ()

(* --- ring buffer --- *)

let test_disabled_records_nothing () =
  Provenance.reset ();
  check Alcotest.bool "disabled" false (Provenance.enabled ());
  record 0 0;
  check Alcotest.int "no decisions" 0 (List.length (Provenance.decisions ()));
  check Alcotest.int "none recorded" 0 (Provenance.recorded ())

let test_order_and_fields () =
  with_recording (fun () ->
      record 3 7
        ~rejections:[ { Provenance.at_cycle = 5; reason = "issue width full (4/4)" } ]
        ~binding:{ Provenance.pred = 1; latency = 2; arc = "data" };
      record 4 8;
      let ds = Provenance.decisions () in
      check Alcotest.int "two decisions" 2 (List.length ds);
      let d = List.hd ds in
      check Alcotest.int "seq" 0 d.Provenance.seq;
      check Alcotest.int "instr" 3 d.Provenance.instr;
      check Alcotest.int "cycle" 7 d.Provenance.cycle;
      check Alcotest.int "rejections" 1 (List.length d.Provenance.rejections);
      (match d.Provenance.binding with
      | Some b -> check Alcotest.string "arc" "data" b.Provenance.arc
      | None -> Alcotest.fail "binding lost");
      check Alcotest.int "seq order" 1 (List.nth ds 1).Provenance.seq)

let test_ring_overwrites () =
  with_recording (fun () ->
      Provenance.set_capacity 4;
      for i = 0 to 9 do
        record i i
      done;
      let ds = Provenance.decisions () in
      check Alcotest.int "retained" 4 (List.length ds);
      check Alcotest.int "oldest retained" 6 (List.hd ds).Provenance.seq;
      check Alcotest.int "newest retained" 9 (List.nth ds 3).Provenance.seq;
      check Alcotest.int "recorded" 10 (Provenance.recorded ());
      check Alcotest.int "overwritten" 6 (Provenance.overwritten ());
      Provenance.reset ();
      check Alcotest.int "reset drops" 0 (List.length (Provenance.decisions ())))

let test_decision_json_wellformed () =
  with_recording (fun () ->
      record 3 7
        ~rejections:[ { Provenance.at_cycle = 5; reason = "mul busy (1/1) at cycle \"5\"" } ]
        ~binding:{ Provenance.pred = -1; latency = 0; arc = "sync-path" };
      let d = List.hd (Provenance.decisions ()) in
      match Json.parse (Provenance.decision_json d) with
      | Error e -> Alcotest.fail ("decision_json unparseable: " ^ e)
      | Ok v ->
        check Alcotest.(option (float 0.0)) "instr" (Some 3.)
          (Option.bind (Json.member "instr" v) Json.to_float);
        check Alcotest.(option string) "scheduler" (Some "test")
          (Option.bind (Json.member "scheduler" v) Json.to_str);
        let binding = Option.get (Json.member "binding" v) in
        check Alcotest.(option string) "arc" (Some "sync-path")
          (Option.bind (Json.member "arc" binding) Json.to_str))

(* --- the JSON value parser --- *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("a", Json.Arr [ Json.Num 1.; Json.Num 2.5; Json.Null ]);
        ("s", Json.Str "with \"quotes\" and \n newline");
        ("b", Json.Bool true);
        ("o", Json.Obj [ ("nested", Json.Num (-3.)) ]);
      ]
  in
  match Json.parse (Json.to_string v) with
  | Error e -> Alcotest.fail ("round-trip failed: " ^ e)
  | Ok v' -> check Alcotest.bool "round-trip equal" true (v = v')

let test_json_rejects_malformed () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted malformed %S" s)
      | Error _ -> ())
    [ "{"; "[1,]"; "{\"a\" 1}"; "tru"; "\"unterminated"; "1 2"; "" ]

(* --- traced pipeline + explainer --- *)

let fig1 () = Isched_harness.Worked_example.fig1_loop ()

let m4 = Isched_ir.Machine.make ~issue:4 ~nfu:1 ()

let test_schedule_traced () =
  let prepared = Pipeline.prepare (fig1 ()) in
  let untraced = Pipeline.schedule prepared m4 Pipeline.New_scheduling in
  let traced, decisions = Pipeline.schedule_traced prepared m4 Pipeline.New_scheduling in
  check Alcotest.bool "identical schedule" true
    (untraced.Schedule.cycle_of = traced.Schedule.cycle_of);
  check Alcotest.bool "decisions recorded" true (decisions <> []);
  check Alcotest.bool "recording off afterwards" false (Provenance.enabled ())

let test_explain_fig1 () =
  match Explain.build (fig1 ()) m4 with
  | Error e -> Alcotest.fail e
  | Ok t ->
    check Alcotest.bool "has pairs" true (t.Explain.pairs <> []);
    check Alcotest.int "analytic matches model" (Lbd_model.exact_time t.Explain.schedule)
      t.Explain.analytic;
    check Alcotest.int "simulated matches analytic" t.Explain.analytic t.Explain.simulated;
    List.iter
      (fun (p : Explain.pair_trace) ->
        let r = p.Explain.report in
        (* Every pair's i and j must be backed by a recorded decision
           chain whose head is the pair instruction's own placement. *)
        (match p.Explain.send_chain with
        | [] -> Alcotest.fail "send chain empty"
        | d :: _ ->
          check Alcotest.int
            (Printf.sprintf "i of %s backed by decision" (Explain.pair_key p))
            r.Lbd_model.send_pos
            (Schedule.position t.Explain.schedule d.Provenance.instr));
        match p.Explain.wait_chain with
        | [] -> Alcotest.fail "wait chain empty"
        | d :: _ ->
          check Alcotest.int
            (Printf.sprintf "j of %s backed by decision" (Explain.pair_key p))
            r.Lbd_model.wait_pos
            (Schedule.position t.Explain.schedule d.Provenance.instr))
      t.Explain.pairs;
    (* The paper figure is the worst pair's contribution (clamped at l). *)
    let worst =
      List.fold_left
        (fun acc (p : Explain.pair_trace) -> max acc p.Explain.report.Lbd_model.paper_time)
        t.Explain.schedule.Schedule.length t.Explain.pairs
    in
    check Alcotest.int "paper time is the worst pair" worst t.Explain.paper;
    (* The renderings must mention every pair and stay filterable. *)
    let ascii = Explain.render_ascii t in
    List.iter
      (fun (p : Explain.pair_trace) ->
        let key = Explain.pair_key p in
        check Alcotest.bool (key ^ " in ascii") true
          (contains ~affix:p.Explain.src_label ascii))
      t.Explain.pairs;
    (match Json.parse (Explain.render_json t) with
    | Error e -> Alcotest.fail ("render_json unparseable: " ^ e)
    | Ok v ->
      check Alcotest.(option (float 0.0)) "json pair count"
        (Some (float_of_int (List.length t.Explain.pairs)))
        (Option.map
           (fun l -> float_of_int (List.length l))
           (Option.bind (Json.member "pairs" v) Json.to_list)));
    let one = List.hd t.Explain.pairs in
    let filtered = Explain.render_json ~pair:(Explain.pair_key one) t in
    (match Json.parse filtered with
    | Error e -> Alcotest.fail ("filtered json unparseable: " ^ e)
    | Ok v ->
      check Alcotest.(option (float 0.0)) "filter keeps one pair" (Some 1.)
        (Option.map
           (fun l -> float_of_int (List.length l))
           (Option.bind (Json.member "pairs" v) Json.to_list)))

let test_gantt_svg_has_provenance () =
  let prepared = Pipeline.prepare (fig1 ()) in
  let s, decisions = Pipeline.schedule_traced prepared m4 Pipeline.New_scheduling in
  let svg = Isched_sim.Viz.gantt_svg ~decisions s in
  check Alcotest.bool "is svg" true (contains ~affix:"<svg" svg);
  check Alcotest.bool "has tooltips" true (contains ~affix:"<title>" svg);
  check Alcotest.bool "has sync arcs" true (contains ~affix:"arr-sig" svg)

(* --- the perf-regression gate --- *)

let history_doc runs =
  let run (wall, t_new) =
    Printf.sprintf
      "{ \"git_rev\": \"r\", \"unix_time\": 1, \"jobs\": 2, \"smoke\": true, \
       \"wall_clock_seconds\": %.3f, \"stage_seconds\": { \"tables\": %.3f }, \
       \"table_totals\": { \"cfg\": { \"t_list\": 100, \"t_new\": %d } } }"
      wall wall t_new
  in
  Printf.sprintf "{ \"runs\": [ %s ] }" (String.concat ", " (List.map run runs))

let compare_doc doc =
  match Bench_gate.parse_history doc with
  | Error e -> Alcotest.fail ("parse_history: " ^ e)
  | Ok runs -> (
    match Bench_gate.compare_latest runs with
    | Error e -> Alcotest.fail ("compare_latest: " ^ e)
    | Ok c -> c)

let test_gate_flags_2x_slowdown () =
  let c = compare_doc (history_doc [ (1.0, 50); (1.0, 50); (2.0, 50) ]) in
  check Alcotest.bool "flagged" false (Bench_gate.ok c);
  check Alcotest.bool "names wall clock" true
    (List.exists
       (fun (r : Bench_gate.regression) -> r.Bench_gate.metric = "wall_clock_seconds")
       c.Bench_gate.regressions);
  check Alcotest.bool "report says REGRESSION" true
    (contains ~affix:"REGRESSION" (Bench_gate.render_comparison c))

let test_gate_accepts_noise () =
  let c = compare_doc (history_doc [ (1.0, 50); (1.0, 50); (1.04, 51) ]) in
  check Alcotest.bool "under 5%% noise passes" true (Bench_gate.ok c)

let test_gate_flags_table_regression () =
  let c = compare_doc (history_doc [ (1.0, 50); (1.0, 50); (1.0, 80) ]) in
  check Alcotest.bool "flagged" false (Bench_gate.ok c);
  check Alcotest.bool "names the config metric" true
    (List.exists
       (fun (r : Bench_gate.regression) -> r.Bench_gate.metric = "table_totals.cfg.t_new")
       c.Bench_gate.regressions)

let test_gate_no_baseline_ok () =
  (* A 2x-slower run at a *different* jobs setting is not a baseline. *)
  let doc =
    "{ \"runs\": [ { \"jobs\": 8, \"smoke\": true, \"wall_clock_seconds\": 0.5 }, { \"jobs\": \
     2, \"smoke\": true, \"wall_clock_seconds\": 2.0 } ] }"
  in
  let c = compare_doc doc in
  check Alcotest.int "no matching baseline" 0 c.Bench_gate.baseline_runs;
  check Alcotest.bool "first run passes" true (Bench_gate.ok c)

let history_doc_stage runs =
  (* Like [history_doc] but wall and the tables stage vary independently,
     so the per-stage gate can be exercised with the wall clock held flat. *)
  let run (wall, stage) =
    Printf.sprintf
      "{ \"git_rev\": \"r\", \"unix_time\": 1, \"jobs\": 2, \"smoke\": true, \
       \"wall_clock_seconds\": %.3f, \"stage_seconds\": { \"tables\": %.3f }, \
       \"table_totals\": { \"cfg\": { \"t_list\": 100, \"t_new\": 50 } } }"
      wall stage
  in
  Printf.sprintf "{ \"runs\": [ %s ] }" (String.concat ", " (List.map run runs))

let test_gate_flags_stage_only_regression () =
  (* The tables stage quadruples but the wall clock (dominated by other
     stages) does not move: the per-stage gate must still flag it. *)
  let c = compare_doc (history_doc_stage [ (5.0, 0.5); (5.0, 0.5); (5.0, 2.0) ]) in
  check Alcotest.bool "flagged" false (Bench_gate.ok c);
  check Alcotest.bool "names the stage metric" true
    (List.exists
       (fun (r : Bench_gate.regression) -> r.Bench_gate.metric = "stage_seconds.tables")
       c.Bench_gate.regressions);
  check Alcotest.bool "wall clock itself not flagged" false
    (List.exists
       (fun (r : Bench_gate.regression) -> r.Bench_gate.metric = "wall_clock_seconds")
       c.Bench_gate.regressions)

let test_gate_stage_floor_absorbs_timer_noise () =
  (* A 10 ms stage tripling is a huge ratio but under the 50 ms absolute
     floor — timer noise, not a regression. *)
  let c = compare_doc (history_doc_stage [ (5.0, 0.010); (5.0, 0.010); (5.0, 0.030) ]) in
  check Alcotest.bool "passes" true (Bench_gate.ok c)

let test_gate_stages_partition_baselines () =
  (* A stage-filtered run must not be judged against full-run baselines:
     running fewer stages is always "faster" and would poison the mean. *)
  let doc =
    "{ \"runs\": [ { \"jobs\": 2, \"smoke\": true, \"stages\": \"all\", \
     \"wall_clock_seconds\": 1.0 }, { \"jobs\": 2, \"smoke\": true, \"stages\": \
     \"tables,ablations\", \"wall_clock_seconds\": 5.0 } ] }"
  in
  let c = compare_doc doc in
  check Alcotest.int "stage-filtered run has no full-run baseline" 0 c.Bench_gate.baseline_runs;
  check Alcotest.bool "passes" true (Bench_gate.ok c)

let test_gate_scale_partitions_baselines () =
  (* A --scale 100 run must not be judged against scale-1 baselines (or
     vice versa): the corpus is 100x the work, so cross-scale wall
     clocks are incomparable in both directions. *)
  let doc =
    "{ \"runs\": [ { \"jobs\": 2, \"smoke\": true, \"scale\": 1, \"wall_clock_seconds\": 1.0 }, \
     { \"jobs\": 2, \"smoke\": true, \"scale\": 100, \"wall_clock_seconds\": 90.0 } ] }"
  in
  let c = compare_doc doc in
  check Alcotest.int "scaled run has no scale-1 baseline" 0 c.Bench_gate.baseline_runs;
  check Alcotest.bool "passes" true (Bench_gate.ok c);
  (* Same scale does partition together — and still catches regressions. *)
  let doc_same =
    "{ \"runs\": [ { \"jobs\": 2, \"smoke\": true, \"scale\": 100, \"wall_clock_seconds\": 10.0 }, \
     { \"jobs\": 2, \"smoke\": true, \"scale\": 100, \"wall_clock_seconds\": 90.0 } ] }"
  in
  let c = compare_doc doc_same in
  check Alcotest.int "same-scale baseline found" 1 c.Bench_gate.baseline_runs;
  check Alcotest.bool "same-scale slowdown flagged" false (Bench_gate.ok c);
  (* Records written before --scale existed mean scale 1. *)
  let doc_legacy =
    "{ \"runs\": [ { \"jobs\": 2, \"smoke\": true, \"wall_clock_seconds\": 1.0 }, \
     { \"jobs\": 2, \"smoke\": true, \"scale\": 1, \"wall_clock_seconds\": 1.01 } ] }"
  in
  let c = compare_doc doc_legacy in
  check Alcotest.int "legacy record is a scale-1 baseline" 1 c.Bench_gate.baseline_runs;
  check Alcotest.bool "legacy comparison passes" true (Bench_gate.ok c)

let test_rotate_history () =
  let doc = history_doc (List.init 10 (fun i -> (1.0, i))) in
  (match Bench_gate.rotate_history ~keep:3 doc with
  | None -> Alcotest.fail "rotation expected"
  | Some doc' -> (
    match Bench_gate.parse_history doc' with
    | Error e -> Alcotest.fail ("rotated unparseable: " ^ e)
    | Ok runs ->
      check Alcotest.int "keeps 3" 3 (List.length runs);
      (* Newest survive: the synthetic t_new values are 7, 8, 9. *)
      check Alcotest.(list int) "newest kept" [ 7; 8; 9 ]
        (List.map
           (fun (r : Bench_gate.run) -> snd (List.assoc "cfg" r.Bench_gate.table_totals))
           runs)));
  check Alcotest.bool "under bound untouched" true
    (Bench_gate.rotate_history ~keep:200 doc = None);
  check Alcotest.bool "garbage untouched" true (Bench_gate.rotate_history ~keep:1 "not json" = None)

let suite =
  [
    Alcotest.test_case "disabled records nothing" `Quick test_disabled_records_nothing;
    Alcotest.test_case "order and fields" `Quick test_order_and_fields;
    Alcotest.test_case "ring overwrites oldest" `Quick test_ring_overwrites;
    Alcotest.test_case "decision json well-formed" `Quick test_decision_json_wellformed;
    Alcotest.test_case "json value round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json rejects malformed" `Quick test_json_rejects_malformed;
    Alcotest.test_case "schedule_traced is inert" `Quick test_schedule_traced;
    Alcotest.test_case "explain fig1 pairs backed by decisions" `Quick test_explain_fig1;
    Alcotest.test_case "gantt svg carries provenance" `Quick test_gantt_svg_has_provenance;
    Alcotest.test_case "gate flags 2x slowdown" `Quick test_gate_flags_2x_slowdown;
    Alcotest.test_case "gate accepts <5% noise" `Quick test_gate_accepts_noise;
    Alcotest.test_case "gate flags table_totals regression" `Quick test_gate_flags_table_regression;
    Alcotest.test_case "gate passes without baseline" `Quick test_gate_no_baseline_ok;
    Alcotest.test_case "gate flags stage-only regression" `Quick
      test_gate_flags_stage_only_regression;
    Alcotest.test_case "gate stage floor absorbs timer noise" `Quick
      test_gate_stage_floor_absorbs_timer_noise;
    Alcotest.test_case "gate partitions baselines by stages label" `Quick
      test_gate_stages_partition_baselines;
    Alcotest.test_case "gate partitions baselines by corpus scale" `Quick
      test_gate_scale_partitions_baselines;
    Alcotest.test_case "history rotation keeps newest" `Quick test_rotate_history;
  ]
