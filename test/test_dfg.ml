(* Tests for the data-flow graph: arcs, aliasing, Sig/Wat/Sigwat
   components, synchronization paths. *)

module Dfg = Isched_dfg.Dfg
module Instr = Isched_ir.Instr
module Program = Isched_ir.Program
module Parser = Isched_frontend.Parser

let check = Alcotest.check
let compile src = Isched_codegen.Codegen.compile (Parser.parse_loop src)

let fig1 =
  "DOACROSS I = 1, 100\n\
  \ S1: B[I] = A[I-2] + E[I+1]\n\
  \ S2: G[I-3] = A[I-1] * E[I+2]\n\
  \ S3: A[I] = B[I] + C[I+3]\n\
   ENDDO"

let fig1_graph () = Dfg.build (compile fig1)

let has_arc g ~src ~dst kind =
  List.exists (fun (a : Dfg.arc) -> a.Dfg.dst = dst && a.Dfg.kind = kind) (Dfg.succs_list g src)

(* --- aliasing --- *)

let test_may_alias () =
  let r base affine = { Program.base; affine } in
  Alcotest.(check bool) "same affine" true (Dfg.may_alias (r "A" (Some (1, 0))) (r "A" (Some (1, 0))));
  Alcotest.(check bool) "different offsets" false
    (Dfg.may_alias (r "A" (Some (1, 0))) (r "A" (Some (1, -2))));
  Alcotest.(check bool) "different bases" false
    (Dfg.may_alias (r "A" (Some (1, 0))) (r "B" (Some (1, 0))));
  Alcotest.(check bool) "unknown conservative" true (Dfg.may_alias (r "A" None) (r "A" (Some (1, 0))))

(* --- arcs --- *)

let test_data_arcs () =
  let g = fig1_graph () in
  (* instr 5 (load A) feeds instr 9 (the add), 0-based 4 -> 8 *)
  Alcotest.(check bool) "t3 flows into the add" true (has_arc g ~src:4 ~dst:8 Dfg.Data);
  (* instr 2 (t0 := I<<2) feeds the B store (10), B load (22), A store (27) *)
  Alcotest.(check bool) "address reuse arcs" true
    (has_arc g ~src:1 ~dst:9 Dfg.Data && has_arc g ~src:1 ~dst:21 Dfg.Data
    && has_arc g ~src:1 ~dst:26 Dfg.Data)

let test_mem_arcs () =
  let g = fig1_graph () in
  (* store B (10) -> load B (22): same cell, intra-iteration flow *)
  Alcotest.(check bool) "B store to B load" true (has_arc g ~src:9 ~dst:21 Dfg.Mem)

let test_mem_disambiguation () =
  let g = fig1_graph () in
  (* load A[I-2] (5) and store A[I] (27) have different offsets: no arc *)
  Alcotest.(check bool) "A[I-2] vs A[I] disambiguated" false (has_arc g ~src:4 ~dst:26 Dfg.Mem)

let test_sync_arcs () =
  let g = fig1_graph () in
  let p = g.Dfg.prog in
  Array.iter
    (fun (s : Program.signal_info) ->
      Alcotest.(check bool) "src -> send" true
        (has_arc g ~src:s.Program.src_instr ~dst:s.Program.send_instr Dfg.Sync_src))
    p.Program.signals;
  Array.iter
    (fun (w : Program.wait_info) ->
      Alcotest.(check bool) "wait -> snk" true
        (has_arc g ~src:w.Program.wait_instr ~dst:w.Program.snk_instr Dfg.Sync_snk))
    p.Program.waits

let test_no_sync_arcs_variant () =
  let g = Dfg.build ~sync_arcs:false (compile fig1) in
  let any_sync = ref false in
  for i = 0 to g.Dfg.n - 1 do
    if
      List.exists
        (fun (a : Dfg.arc) -> a.Dfg.kind = Dfg.Sync_src || a.Dfg.kind = Dfg.Sync_snk)
        (Dfg.succs_list g i)
    then any_sync := true
  done;
  Alcotest.(check bool) "no sync arcs" false !any_sync

let test_arc_latencies () =
  let g = Dfg.build (compile "DO I = 1, 10\n A[I] = E[I] * C[I] / 2\nENDDO") in
  (* the FMul's consumer arc carries latency 3, the FDiv's 6 *)
  let latency_from_op op =
    let found = ref None in
    Array.iteri
      (fun i ins ->
        match ins with
        | Instr.Bin { op = o; _ } when o = op ->
          List.iter
            (fun (a : Dfg.arc) -> if a.Dfg.kind = Dfg.Data then found := Some a.Dfg.latency)
            (Dfg.succs_list g i)
        | _ -> ())
      g.Dfg.prog.Program.body;
    !found
  in
  check Alcotest.(option int) "mul latency 3" (Some 3) (latency_from_op Instr.FMul);
  check Alcotest.(option int) "div latency 6" (Some 6) (latency_from_op Instr.FDiv)

let test_guard_old_load_protected () =
  (* The if-converted old-value load of a guarded store aliases the
     dependence sink: it must also be behind the wait. *)
  let p = compile "DOACROSS I = 1, 10\n IF (E[I] > 0) A[I] = A[I-1] + 1\nENDDO" in
  let g = Dfg.build p in
  Array.iter
    (fun (w : Program.wait_info) ->
      if w.Program.kind = Program.Output then begin
        (* find the old-value load: a load of A in the same statement
           before the store *)
        let protected_load = ref false in
        for m = w.Program.wait_instr + 1 to w.Program.snk_instr - 1 do
          match p.Program.body.(m) with
          | Instr.Load { base = "A"; _ } ->
            if has_arc g ~src:w.Program.wait_instr ~dst:m Dfg.Sync_snk then protected_load := true
          | _ -> ()
        done;
        Alcotest.(check bool) "old-value load behind the wait" true !protected_load
      end)
    p.Program.waits

(* --- components --- *)

let kind_name = function
  | Dfg.Sig_graph -> "sig"
  | Dfg.Wat_graph -> "wat"
  | Dfg.Sigwat_graph -> "sigwat"
  | Dfg.Plain -> "plain"

let test_components_fig3 () =
  let g = fig1_graph () in
  let comps = Dfg.components g in
  check Alcotest.int "two components" 2 (Array.length comps);
  check
    Alcotest.(list string)
    "one Sigwat and one Wat (Fig. 3)"
    [ "sigwat"; "wat" ]
    (Array.to_list (Array.map (fun c -> kind_name c.Dfg.kind) comps));
  (* The Wat component is exactly statement S2's instructions 11..21. *)
  let wat = comps.(1) in
  check Alcotest.(list int) "Wat graph nodes" [ 10; 11; 12; 13; 14; 15; 16; 17; 18; 19; 20 ]
    wat.Dfg.nodes

let test_component_of () =
  let g = fig1_graph () in
  let comps = Dfg.components g in
  let owner = Dfg.component_of g comps in
  Array.iter
    (fun (c : Dfg.component) -> List.iter (fun n -> check Alcotest.int "owner" c.Dfg.id owner.(n)) c.Dfg.nodes)
    comps

let test_sig_graph_exists () =
  (* An anti dependence whose source statement is independent makes the
     send's component a pure Sig graph.  Subscripts are chosen distinct
     so the statements share no address computation (as in Fig. 2). *)
  let p = compile "DOACROSS I = 1, 10\n S1: B[I-1] = A[I+1]\n S2: A[I] = E[I-2]\nENDDO" in
  let g = Dfg.build p in
  let kinds = Array.to_list (Array.map (fun c -> kind_name c.Dfg.kind) (Dfg.components g)) in
  Alcotest.(check bool) "has a Sig graph" true (List.mem "sig" kinds)

let test_plain_component () =
  let p = compile "DOACROSS I = 1, 10\n S1: A[I] = A[I-1]\n S2: H[I+1] = E[I+2]\nENDDO" in
  let g = Dfg.build p in
  let kinds = Array.to_list (Array.map (fun c -> kind_name c.Dfg.kind) (Dfg.components g)) in
  Alcotest.(check bool) "independent statement is plain" true (List.mem "plain" kinds)

(* --- sync paths --- *)

let test_sync_path_fig1 () =
  let g = fig1_graph () in
  match Dfg.sync_paths g with
  | [ sp ] ->
    check Alcotest.int "the d=2 wait" 0 sp.Dfg.wait_id;
    check Alcotest.int "distance" 2 sp.Dfg.distance;
    (* paper: nodes 1,5,9,10,22,26,27 (+ the split add) *)
    check Alcotest.(list int) "path nodes" [ 0; 4; 8; 9; 21; 25; 26; 27 ] sp.Dfg.nodes
  | paths -> Alcotest.failf "expected exactly one sync path, got %d" (List.length paths)

let test_sync_path_shortest () =
  let g = fig1_graph () in
  List.iter
    (fun (sp : Dfg.sync_path) ->
      (* consecutive nodes connected by arcs *)
      let rec ok = function
        | a :: b :: rest ->
          List.exists (fun (arc : Dfg.arc) -> arc.Dfg.dst = b) (Dfg.succs_list g a) && ok (b :: rest)
        | _ -> true
      in
      Alcotest.(check bool) "path follows arcs" true (ok sp.Dfg.nodes))
    (Dfg.sync_paths g)

let test_no_path_when_convertible () =
  (* consumer-only LBD: no wait -> send path *)
  let p = compile "DOACROSS I = 1, 10\n S1: B[I] = A[I-1]\n S2: A[I] = E[I]\nENDDO" in
  let g = Dfg.build p in
  check Alcotest.int "no sync path" 0 (List.length (Dfg.sync_paths g))

let test_longest_path () =
  let g = fig1_graph () in
  let dist = Dfg.longest_path_to_exit g in
  check Alcotest.int "send is terminal" 0 dist.(27);
  (* dist is a consistent longest-path labelling: every arc satisfies
     dist(src) >= latency + dist(dst), with equality on some arc for
     non-terminal nodes. *)
  for i = 0 to g.Dfg.n - 1 do
    let arcs = Dfg.succs_list g i in
    List.iter
      (fun (a : Dfg.arc) ->
        Alcotest.(check bool) "monotone" true (dist.(i) >= a.Dfg.latency + dist.(a.Dfg.dst)))
      arcs;
    if arcs <> [] then
      Alcotest.(check bool) "tight" true
        (List.exists (fun (a : Dfg.arc) -> dist.(i) = a.Dfg.latency + dist.(a.Dfg.dst)) arcs)
  done

let test_dot_output () =
  let g = fig1_graph () in
  let s = Format.asprintf "%a" Dfg.pp_dot g in
  let has affix =
    let n = String.length s and m = String.length affix in
    let rec go i = i + m <= n && (String.sub s i m = affix || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "digraph" true (has "digraph dfg");
  Alcotest.(check bool) "triangle sends" true (has "shape=triangle");
  Alcotest.(check bool) "inverted triangle waits" true (has "shape=invtriangle")

let test_graph_is_acyclic_forward () =
  List.iter
    (fun (b : Isched_perfect.Suite.benchmark) ->
      List.iter
        (fun l ->
          let g = Dfg.build (Isched_codegen.Codegen.compile l) in
          for i = 0 to g.Dfg.n - 1 do
            List.iter
              (fun (a : Dfg.arc) ->
                Alcotest.(check bool) "forward arc" true (a.Dfg.src = i && a.Dfg.dst > i))
              (Dfg.succs_list g i)
          done)
        b.Isched_perfect.Suite.loops)
    (Isched_perfect.Suite.all ())

let suite =
  [
    ("alias: affine disambiguation", `Quick, test_may_alias);
    ("arcs: def-use data arcs", `Quick, test_data_arcs);
    ("arcs: memory flow within the iteration", `Quick, test_mem_arcs);
    ("arcs: affine references disambiguated", `Quick, test_mem_disambiguation);
    ("arcs: synchronization conditions", `Quick, test_sync_arcs);
    ("arcs: sync arcs can be omitted", `Quick, test_no_sync_arcs_variant);
    ("arcs: producer latencies", `Quick, test_arc_latencies);
    ("arcs: guarded old-value load protected", `Quick, test_guard_old_load_protected);
    ("components: Fig. 3 partition", `Quick, test_components_fig3);
    ("components: node ownership", `Quick, test_component_of);
    ("components: Sig graphs from anti deps", `Quick, test_sig_graph_exists);
    ("components: plain components", `Quick, test_plain_component);
    ("paths: Fig. 3 synchronization path", `Quick, test_sync_path_fig1);
    ("paths: paths follow arcs", `Quick, test_sync_path_shortest);
    ("paths: absent for convertible pairs", `Quick, test_no_path_when_convertible);
    ("priorities: longest path to exit", `Quick, test_longest_path);
    ("dot output", `Quick, test_dot_output);
    ("graphs of the whole corpus are forward DAGs", `Quick, test_graph_is_acyclic_forward);
  ]
