(* Tests for the resource table, schedule legality, the list-scheduling
   baseline and the paper's new synchronization-aware scheduler
   (Fig. 4 and the "never degrades" claim). *)

module Resource = Isched_core.Resource
module Schedule = Isched_core.Schedule
module List_sched = Isched_core.List_sched
module Sync_sched = Isched_core.Sync_sched
module Lbd_model = Isched_core.Lbd_model
module Dfg = Isched_dfg.Dfg
module Machine = Isched_ir.Machine
module Instr = Isched_ir.Instr
module Operand = Isched_ir.Operand
module Program = Isched_ir.Program
module Parser = Isched_frontend.Parser

let check = Alcotest.check
let compile src = Isched_codegen.Codegen.compile (Parser.parse_loop src)

let fig1 =
  "DOACROSS I = 1, 100\n\
  \ S1: B[I] = A[I-2] + E[I+1]\n\
  \ S2: G[I-3] = A[I-1] * E[I+2]\n\
  \ S3: A[I] = B[I] + C[I+3]\n\
   ENDDO"

let m4 = Machine.make ~issue:4 ~nfu:1 ()

let expect_ok g s =
  match Schedule.validate s g with Ok () -> () | Error e -> Alcotest.failf "illegal schedule: %s" e

(* --- Resource --- *)

let add = Instr.Bin { op = Instr.Add; dst = 0; a = Operand.Ivar; b = Operand.Imm 1 }
let mul = Instr.Bin { op = Instr.FMul; dst = 1; a = Operand.Reg 0; b = Operand.Reg 0 }
let wait_i = Instr.Wait { wait = 0 }

let test_resource_issue_width () =
  let r = Resource.create (Machine.make ~issue:2 ~nfu:2 ()) in
  Alcotest.(check bool) "slot 1" true (Resource.fits r ~cycle:0 add);
  Resource.reserve r ~cycle:0 add;
  Resource.reserve r ~cycle:0 wait_i;
  Alcotest.(check bool) "width exhausted" false (Resource.fits r ~cycle:0 add);
  Alcotest.(check bool) "next cycle free" true (Resource.fits r ~cycle:1 add)

let test_resource_fu_conflict () =
  let r = Resource.create (Machine.make ~issue:4 ~nfu:1 ()) in
  Resource.reserve r ~cycle:0 add;
  Alcotest.(check bool) "adder busy" false (Resource.fits r ~cycle:0 add);
  Alcotest.(check bool) "multiplier free" true (Resource.fits r ~cycle:0 mul)

let test_resource_nonpipelined_mul () =
  let r = Resource.create (Machine.make ~issue:4 ~nfu:1 ()) in
  Resource.reserve r ~cycle:0 mul;
  (* A non-pipelined multiplier stays busy for its 3-cycle latency. *)
  Alcotest.(check bool) "busy at 1" false (Resource.fits r ~cycle:1 mul);
  Alcotest.(check bool) "busy at 2" false (Resource.fits r ~cycle:2 mul);
  Alcotest.(check bool) "free at 3" true (Resource.fits r ~cycle:3 mul)

let test_resource_pipelined_mul () =
  let r = Resource.create (Machine.make ~pipelined:true ~issue:4 ~nfu:1 ()) in
  Resource.reserve r ~cycle:0 mul;
  Alcotest.(check bool) "pipelined accepts next cycle" true (Resource.fits r ~cycle:1 mul)

let test_resource_sync_needs_no_fu () =
  let r = Resource.create (Machine.make ~issue:2 ~nfu:1 ()) in
  Resource.reserve r ~cycle:0 add;
  Alcotest.(check bool) "wait beside the add" true (Resource.fits r ~cycle:0 wait_i)

let test_resource_first_fit () =
  let r = Resource.create (Machine.make ~issue:1 ~nfu:1 ()) in
  Resource.reserve r ~cycle:0 add;
  Resource.reserve r ~cycle:1 add;
  check Alcotest.int "lands at 2" 2 (Resource.first_fit r ~from:0 add)

let test_resource_reserve_checks () =
  let r = Resource.create (Machine.make ~issue:1 ~nfu:1 ()) in
  Resource.reserve r ~cycle:0 add;
  Alcotest.(check bool) "double reserve raises" true
    (try
       Resource.reserve r ~cycle:0 add;
       false
     with Invalid_argument _ -> true)

let test_resource_rejects_zero_fu () =
  (* An instruction needing a unit with zero copies can never fit;
     instead of letting first_fit spin forever, the degenerate machine
     is rejected at table creation. *)
  let m = Machine.with_fu (Machine.make ~issue:2 ~nfu:1 ()) Isched_ir.Fu.Multiplier 0 in
  Alcotest.(check bool) "create validates the machine" true
    (try
       ignore (Resource.create m);
       false
     with Invalid_argument _ -> true)

let test_resource_first_fit_far_start () =
  (* Starting past every reservation must land on the start cycle, not
     scan or raise: all cycles beyond the table horizon are free. *)
  let r = Resource.create (Machine.make ~issue:1 ~nfu:1 ()) in
  check Alcotest.int "empty tables" 500 (Resource.first_fit r ~from:500 add);
  Resource.reserve r ~cycle:0 add;
  check Alcotest.int "past the horizon" 500 (Resource.first_fit r ~from:500 add)

let test_resource_matches_hashtbl_oracle () =
  (* Oracle: the pre-overhaul Hashtbl reservation tables.  Drive both
     models with one random placement stream and require identical fits
     answers, first-fit landing sites and occupancy evolution. *)
  let m = Machine.make ~issue:2 ~nfu:1 () in
  let issue_used : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let fu_used : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let get tbl k = Option.value ~default:0 (Hashtbl.find_opt tbl k) in
  let ref_fits ~cycle i =
    cycle >= 0
    && get issue_used cycle < m.Machine.issue_width
    &&
    match Instr.fu i with
    | None -> true
    | Some kind ->
      let k = Isched_ir.Fu.index kind in
      let avail = Machine.fu_count m kind in
      let ok = ref true in
      for c = cycle to cycle + Isched_ir.Fu.latency kind - 1 do
        if get fu_used (k, c) >= avail then ok := false
      done;
      !ok
  in
  let ref_reserve ~cycle i =
    Hashtbl.replace issue_used cycle (get issue_used cycle + 1);
    match Instr.fu i with
    | None -> ()
    | Some kind ->
      let k = Isched_ir.Fu.index kind in
      for c = cycle to cycle + Isched_ir.Fu.latency kind - 1 do
        Hashtbl.replace fu_used (k, c) (get fu_used (k, c) + 1)
      done
  in
  let r = Resource.create m in
  let rng = Isched_util.Prng.create 123 in
  for step = 1 to 300 do
    let i = Isched_util.Prng.choose rng [| add; mul; wait_i |] in
    let probe = Isched_util.Prng.int rng 40 in
    Alcotest.(check bool)
      (Printf.sprintf "step %d: fits agree at %d" step probe)
      (ref_fits ~cycle:probe i) (Resource.fits r ~cycle:probe i);
    let from = Isched_util.Prng.int rng 40 in
    let c = Resource.first_fit r ~from i in
    let expected = ref from in
    while not (ref_fits ~cycle:!expected i) do
      incr expected
    done;
    check Alcotest.int (Printf.sprintf "step %d: first_fit from %d" step from) !expected c;
    Resource.reserve r ~cycle:c i;
    ref_reserve ~cycle:c i
  done

(* --- Schedule --- *)

let test_schedule_of_cycles () =
  let p = compile "DO I = 1, 4\n A[I] = E[I]\nENDDO" in
  let n = Array.length p.Program.body in
  let cycles = Array.init n (fun i -> i) in
  let s = Schedule.of_cycles p m4 cycles in
  check Alcotest.int "length" n s.Schedule.length;
  check Alcotest.int "position is 1-based" 1 (Schedule.position s 0)

let test_schedule_rejects_unscheduled () =
  let p = compile "DO I = 1, 4\n A[I] = E[I]\nENDDO" in
  let n = Array.length p.Program.body in
  let cycles = Array.make n (-1) in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Schedule.of_cycles p m4 cycles);
       false
     with Invalid_argument _ -> true)

let test_validate_catches_latency () =
  let p = compile "DO I = 1, 4\n A[I] = E[I] * C[I]\nENDDO" in
  let g = Dfg.build p in
  (* Serial order, one per cycle: violates the multiplier's 3-cycle
     latency into the store. *)
  let n = Array.length p.Program.body in
  let s = Schedule.of_cycles p m4 (Array.init n (fun i -> i)) in
  Alcotest.(check bool) "latency violation caught" true
    (match Schedule.validate s g with
    | Error _ -> true
    | Ok () -> false)

let test_validate_catches_width () =
  let p = compile "DO I = 1, 4\n A[I] = E[I]\nENDDO" in
  let g = Dfg.build p in
  let n = Array.length p.Program.body in
  let s = Schedule.of_cycles p (Machine.make ~issue:2 ~nfu:4 ()) (Array.make n 0) in
  Alcotest.(check bool) "width violation caught" true
    (match Schedule.validate s g with Error _ -> true | Ok () -> false)

let test_compact_removes_empty_rows () =
  let p = compile "DO I = 1, 4\n A[I] = E[I]\nENDDO" in
  let g = Dfg.build p in
  let n = Array.length p.Program.body in
  (* every instruction 3 cycles apart: plenty of removable empties *)
  let s = Schedule.of_cycles p m4 (Array.init n (fun i -> 3 * i)) in
  expect_ok g s;
  let c = Schedule.compact s g in
  expect_ok g c;
  Alcotest.(check bool) "shorter" true (c.Schedule.length < s.Schedule.length)

let test_compact_keeps_latency_gaps () =
  let p = compile "DO I = 1, 4\n A[I] = E[I] / 2\nENDDO" in
  let g = Dfg.build p in
  let s = Sync_sched.run g (Machine.make ~issue:4 ~nfu:1 ()) in
  expect_ok g s;
  (* compact already ran inside Sync_sched; run again: must stay legal *)
  let c = Schedule.compact s g in
  expect_ok g c

(* --- list scheduling --- *)

let test_list_legal_fig1 () =
  let g = Dfg.build (compile fig1) in
  expect_ok g (List_sched.run g m4)

let test_list_fig4a_shape () =
  (* Fig. 4(a): both waits hoist early, the send lands last; two LBDs. *)
  let g = Dfg.build (compile fig1) in
  let s = List_sched.run g m4 in
  check Alcotest.int "both pairs stay LBD" 2 (Lbd_model.n_lbd s);
  check Alcotest.int "12 rows like the paper" 12 s.Schedule.length;
  let p = g.Dfg.prog in
  let send = p.Program.signals.(0).Program.send_instr in
  Alcotest.(check bool) "send in the last row" true
    (Schedule.position s send >= s.Schedule.length - 1);
  Alcotest.(check bool) "wait for d=2 in the first row" true
    (Schedule.position s p.Program.waits.(0).Program.wait_instr = 1)

let test_list_time_fig4a () =
  (* Paper: parallel time 12N + 13.  Our split add gives span 11 over 12
     rows: (n-1)/1 * (11+1) + 12 = 1200 for n = 100. *)
  let g = Dfg.build (compile fig1) in
  let s = List_sched.run g m4 in
  check Alcotest.int "exact analytic" 1200 (Lbd_model.exact_time s);
  check Alcotest.int "simulator agrees" 1200 (Isched_sim.Timing.run s).Isched_sim.Timing.finish

(* --- new scheduler --- *)

let test_new_legal_fig1 () =
  let g = Dfg.build (compile fig1) in
  expect_ok g (Sync_sched.run g m4)

let test_new_fig4b_shape () =
  let g = Dfg.build (compile fig1) in
  let s = Sync_sched.run g m4 in
  check Alcotest.int "only one LBD remains" 1 (Lbd_model.n_lbd s);
  (* the sync path is contiguous up to the one unavoidable ld/st stall *)
  let reports = Lbd_model.pairs s in
  let lbd = List.find (fun r -> r.Lbd_model.is_lbd) reports in
  check Alcotest.int "it is the d=2 pair" 2 lbd.Lbd_model.distance;
  Alcotest.(check bool) "span is the path length" true
    (lbd.Lbd_model.send_pos - lbd.Lbd_model.wait_pos <= 8);
  let lfd = List.find (fun r -> not r.Lbd_model.is_lbd) reports in
  Alcotest.(check bool) "the d=1 pair converted" true
    (lfd.Lbd_model.send_pos < lfd.Lbd_model.wait_pos)

let test_new_beats_list_fig4 () =
  let g = Dfg.build (compile fig1) in
  let ta = (Isched_sim.Timing.run (List_sched.run g m4)).Isched_sim.Timing.finish in
  let tb = (Isched_sim.Timing.run (Sync_sched.run g m4)).Isched_sim.Timing.finish in
  Alcotest.(check bool) "better than half" true (tb * 2 < ta)

let test_new_converts_all_convertible () =
  (* Consumer-only loop: every pair must become LFD and the time is one
     pipeline fill, not n * span. *)
  let g =
    Dfg.build
      (compile
         "DOACROSS I = 1, 100\n\
         \ S1: O1[I] = A[I-1] * E[I]\n\
         \ S2: O2[I] = A[I-2] + C[I]\n\
         \ S3: A[I] = E[I+1] + C[I-1]\n\
          ENDDO")
  in
  let s = Sync_sched.run g m4 in
  check Alcotest.int "no LBD left" 0 (Lbd_model.n_lbd s);
  let t = (Isched_sim.Timing.run s).Isched_sim.Timing.finish in
  Alcotest.(check bool) "costs about one iteration" true (t <= 2 * s.Schedule.length + 100)

let test_new_sig_wat_cross_component () =
  (* Anti dependence with the send in a Sig graph and the wait in a Wat
     graph: the send must still precede the wait. *)
  let g = Dfg.build (compile "DOACROSS I = 1, 10\n S1: B[I-1] = A[I+1]\n S2: A[I] = E[I-2]\nENDDO") in
  let s = Sync_sched.run g m4 in
  check Alcotest.int "converted" 0 (Lbd_model.n_lbd s)

let test_new_handles_self_recurrence () =
  let g = Dfg.build (compile "DOACROSS I = 1, 100\n A[I] = A[I-1] + E[I]\nENDDO") in
  let s = Sync_sched.run g m4 in
  expect_ok g s;
  check Alcotest.int "one unavoidable LBD" 1 (Lbd_model.n_lbd s)

let test_new_multiple_paths_grouped () =
  (* Two recurrences with different damage: both scheduled, legal, and
     the total time bounded by the worse one. *)
  let g =
    Dfg.build
      (compile
         "DOACROSS I = 1, 100\n\
         \ S1: A[I] = A[I-1] + E[I]\n\
         \ S2: B[I] = B[I-4] * C[I] + A[I]\n\
          ENDDO")
  in
  let s = Sync_sched.run g m4 in
  expect_ok g s;
  check Alcotest.int "two LBDs" 2 (Lbd_model.n_lbd s)

let test_new_order_paths_flag () =
  let g = Dfg.build (compile fig1) in
  let s1 = Sync_sched.run ~options:{ Sync_sched.order_paths = false; compact = true } g m4 in
  expect_ok g s1;
  let s2 = Sync_sched.run g m4 in
  (* with a single path group the flag cannot matter *)
  check Alcotest.int "same result for one path" (Isched_sim.Timing.run s2).Isched_sim.Timing.finish
    (Isched_sim.Timing.run s1).Isched_sim.Timing.finish

let test_new_infeasible_lfd_pair_resolved () =
  (* Two scalar updates in one body (the shape loop unrolling produces)
     give two sync pairs whose sends each depend on the other pair's
     wait: both cannot become lexically forward.  The scheduler must
     pick one, stay legal, and terminate (this was a livelock once). *)
  let g =
    Dfg.build
      (compile
         "DOACROSS I = 1, 20\n\
         \ S1: A[I] = K * E[I]\n\
         \ S2: K = K + 1\n\
         \ S3: B[I] = K * C[I]\n\
         \ S4: K = K + 1\n\
          ENDDO")
  in
  let s = Sync_sched.run g m4 in
  expect_ok g s;
  (* and it still executes exactly *)
  match Isched_harness.Equivalence.check_schedule g.Dfg.prog s with
  | Ok () -> ()
  | Error es -> Alcotest.failf "value mismatch: %s" (String.concat "; " es)

let test_deterministic_schedules () =
  let g = Dfg.build (compile fig1) in
  let s1 = Sync_sched.run g m4 and s2 = Sync_sched.run g m4 in
  check Alcotest.(array int) "same cycles" s1.Schedule.cycle_of s2.Schedule.cycle_of;
  let l1 = List_sched.run g m4 and l2 = List_sched.run g m4 in
  check Alcotest.(array int) "list deterministic" l1.Schedule.cycle_of l2.Schedule.cycle_of

(* --- Lbd_model directly --- *)

let test_lbd_model_positions () =
  let g = Dfg.build (compile fig1) in
  let s = List_sched.run g m4 in
  List.iter
    (fun (r : Lbd_model.pair_report) ->
      Alcotest.(check bool) "positions in range" true
        (r.Lbd_model.wait_pos >= 1 && r.Lbd_model.send_pos <= s.Schedule.length);
      Alcotest.(check bool) "paper time at least l" true (r.Lbd_model.paper_time >= s.Schedule.length);
      Alcotest.(check bool) "exact time at least l" true (r.Lbd_model.exact_time >= s.Schedule.length))
    (Lbd_model.pairs s)

let test_lbd_model_lfd_costs_l () =
  (* A hand-built layout where the send precedes the wait: both model
     variants must charge exactly the schedule length. *)
  let p = compile "DOACROSS I = 1, 100\n S1: B[I] = A[I-1]\n S2: A[I] = E[I]\nENDDO" in
  let g = Dfg.build p in
  let s = Isched_core.Sync_sched.run g m4 in
  List.iter
    (fun (r : Lbd_model.pair_report) ->
      Alcotest.(check bool) "forward in the schedule" false r.Lbd_model.is_lbd;
      check Alcotest.int "paper time = l" s.Schedule.length r.Lbd_model.paper_time;
      check Alcotest.int "exact time = l" s.Schedule.length r.Lbd_model.exact_time)
    (Lbd_model.pairs s)

let test_lbd_model_formulas () =
  (* Serial one-instruction-per-row layout: positions are the body
     indices, so the formulas are directly checkable. *)
  let p = compile "DOACROSS I = 1, 100\n A[I] = A[I-2] + E[I]\nENDDO" in
  let n = Array.length p.Program.body in
  let s = Schedule.of_cycles p m4 (Array.init n (fun i -> i)) in
  match Lbd_model.pairs s with
  | [ r ] ->
    let i = r.Lbd_model.send_pos and j = r.Lbd_model.wait_pos in
    check Alcotest.int "paper formula" ((100 / 2 * (i - j)) + n) r.Lbd_model.paper_time;
    check Alcotest.int "exact formula" ((99 / 2 * (i - j + 1)) + n) r.Lbd_model.exact_time
  | _ -> Alcotest.fail "expected one pair"

let test_schedule_pp_shapes () =
  let g = Dfg.build (compile fig1) in
  let s = List_sched.run g m4 in
  let text = Schedule.to_string s in
  let first_line = List.hd (String.split_on_char '\n' text) in
  check Alcotest.string "fig4 tuple form" "  1: (1, 2, 3, 11)" first_line;
  let wide = Format.asprintf "%a" Schedule.pp_wide s in
  Alcotest.(check bool) "wide shows instruction text" true
    (let affix = "Wait_Signal(S3, I-2)" in
     let n = String.length wide and m = String.length affix in
     let rec go i = i + m <= n && (String.sub wide i m = affix || go (i + 1)) in
     go 0)

let all_machines =
  [
    Machine.make ~issue:1 ~nfu:1 ();
    Machine.make ~issue:2 ~nfu:1 ();
    Machine.make ~issue:2 ~nfu:2 ();
    Machine.make ~issue:4 ~nfu:1 ();
    Machine.make ~issue:4 ~nfu:2 ();
    Machine.make ~issue:8 ~nfu:4 ();
    Machine.make ~pipelined:true ~issue:4 ~nfu:1 ();
  ]

let test_corpus_schedules_legal () =
  (* Every DOACROSS loop of every corpus, on seven machines, both
     schedulers: legal, and new never loses. *)
  List.iter
    (fun (b : Isched_perfect.Suite.benchmark) ->
      List.iter
        (fun l ->
          let p = Isched_codegen.Codegen.compile l in
          let g = Dfg.build p in
          List.iter
            (fun m ->
              let sa = List_sched.run g m in
              let sb = Sync_sched.run g m in
              expect_ok g sa;
              expect_ok g sb;
              let ta = (Isched_sim.Timing.run sa).Isched_sim.Timing.finish in
              let tb = (Isched_sim.Timing.run sb).Isched_sim.Timing.finish in
              if tb > ta then
                Alcotest.failf "new scheduler lost on %s (%s): %d vs %d" l.Isched_frontend.Ast.name
                  (Machine.name m) tb ta)
            all_machines)
        b.Isched_perfect.Suite.loops)
    (Isched_perfect.Suite.all ())

let test_sync_conditions_in_schedules () =
  (* In every schedule, sends never precede their sources and waits
     never follow their sinks. *)
  List.iter
    (fun (b : Isched_perfect.Suite.benchmark) ->
      List.iter
        (fun l ->
          let p = Isched_codegen.Codegen.compile l in
          let g = Dfg.build p in
          List.iter
            (fun s ->
              Array.iter
                (fun (si : Program.signal_info) ->
                  Alcotest.(check bool) "send after src" true
                    (Schedule.position s si.Program.send_instr
                    > Schedule.position s si.Program.src_instr))
                p.Program.signals;
              Array.iter
                (fun (w : Program.wait_info) ->
                  Alcotest.(check bool) "wait before snk" true
                    (Schedule.position s w.Program.wait_instr
                    < Schedule.position s w.Program.snk_instr))
                p.Program.waits)
            [ List_sched.run g m4; Sync_sched.run g m4 ])
        b.Isched_perfect.Suite.loops)
    (Isched_perfect.Suite.all ())

let suite =
  [
    ("resource: issue width", `Quick, test_resource_issue_width);
    ("resource: function-unit conflicts", `Quick, test_resource_fu_conflict);
    ("resource: non-pipelined multiplier busy 3 cycles", `Quick, test_resource_nonpipelined_mul);
    ("resource: pipelined multiplier", `Quick, test_resource_pipelined_mul);
    ("resource: sync ops use no unit", `Quick, test_resource_sync_needs_no_fu);
    ("resource: first_fit", `Quick, test_resource_first_fit);
    ("resource: zero-copy units rejected", `Quick, test_resource_rejects_zero_fu);
    ("resource: first_fit far past the horizon", `Quick, test_resource_first_fit_far_start);
    ("resource: agrees with the Hashtbl oracle", `Quick, test_resource_matches_hashtbl_oracle);
    ("resource: reserve checks fit", `Quick, test_resource_reserve_checks);
    ("schedule: of_cycles and positions", `Quick, test_schedule_of_cycles);
    ("schedule: rejects unscheduled nodes", `Quick, test_schedule_rejects_unscheduled);
    ("schedule: validate catches latency violations", `Quick, test_validate_catches_latency);
    ("schedule: validate catches width violations", `Quick, test_validate_catches_width);
    ("schedule: compact removes empty rows", `Quick, test_compact_removes_empty_rows);
    ("schedule: compact preserves legality", `Quick, test_compact_keeps_latency_gaps);
    ("list: legal on Fig. 1", `Quick, test_list_legal_fig1);
    ("list: Fig. 4(a) shape (waits early, send last)", `Quick, test_list_fig4a_shape);
    ("list: Fig. 4(a) time matches the theorem", `Quick, test_list_time_fig4a);
    ("new: legal on Fig. 1", `Quick, test_new_legal_fig1);
    ("new: Fig. 4(b) shape (1 LBD, tight path)", `Quick, test_new_fig4b_shape);
    ("new: beats list scheduling on Fig. 1", `Quick, test_new_beats_list_fig4);
    ("new: converts all convertible pairs", `Quick, test_new_converts_all_convertible);
    ("new: cross-component Sig/Wat pairs", `Quick, test_new_sig_wat_cross_component);
    ("new: self recurrences", `Quick, test_new_handles_self_recurrence);
    ("new: multiple sync paths", `Quick, test_new_multiple_paths_grouped);
    ("new: path-ordering flag is sound", `Quick, test_new_order_paths_flag);
    ("new: infeasible cross LFD pairs resolved", `Quick, test_new_infeasible_lfd_pair_resolved);
    ("lbd model: report sanity", `Quick, test_lbd_model_positions);
    ("lbd model: forward pairs cost one iteration", `Quick, test_lbd_model_lfd_costs_l);
    ("lbd model: both formulas on a serial layout", `Quick, test_lbd_model_formulas);
    ("schedule: Fig. 4 text forms", `Quick, test_schedule_pp_shapes);
    ("schedulers are deterministic", `Quick, test_deterministic_schedules);
    ("corpus x 7 machines: legal and never worse", `Slow, test_corpus_schedules_legal);
    ("corpus: sync conditions hold in every schedule", `Slow, test_sync_conditions_in_schedules);
  ]
