(* ischedc - compiler-explorer CLI for the DOACROSS instruction
   scheduling reproduction.

   Subcommands:
     compile  - parse, restructure, insert sync, emit three-address code
     deps     - print the dependence analysis of each loop
     dfg      - emit the data-flow graph (Graphviz dot)
     sched    - schedule with both schedulers and report times
     sim      - run the value-accurate simulation and the stale check
     example  - the paper's Figs. 1-4 worked example
     tables   - regenerate the paper's tables over the surrogate corpora
     serve    - scheduling-as-a-service daemon over a Unix socket *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_loops path =
  let src = read_file path in
  let name = Filename.remove_extension (Filename.basename path) in
  let loops = Isched_frontend.Parser.parse ~name src in
  List.iter Isched_frontend.Sema.check_exn loops;
  loops

(* --- common flags --- *)

(* Observability: every subcommand accepts --trace FILE (Perfetto
   trace_event JSON of the whole run) and --counters (dump the counter
   registry on exit).  Both are wired through at_exit so they fire after
   the subcommand's normal output, whatever path it exits on. *)
let obs_term =
  let trace =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write a Chrome/Perfetto trace_event JSON of this run to $(docv) \
                 (open at https://ui.perfetto.dev).")
  in
  let counters =
    Arg.(value & flag & info [ "counters" ]
           ~doc:"Print the observability counter registry (memo hits, scheduler runs, sync-span \
                 histograms, ...) when the command finishes.")
  in
  let setup trace counters =
    (match trace with
    | None -> ()
    | Some path ->
      Isched_obs.Span.set_enabled true;
      at_exit (fun () ->
          Isched_obs.Span.write_file path;
          Printf.eprintf "wrote %s\n%!" path));
    if counters then
      at_exit (fun () ->
          print_string "--- counters ---\n";
          print_string (Isched_obs.Counters.render ());
          flush stdout)
  in
  Term.(const setup $ trace $ counters)

let jobs_arg =
  let doc =
    "Width of the domain pool for fanning independent work across cores (tables subcommand); \
     1 means sequential."
  in
  let set jobs =
    if jobs < 1 then `Error (false, "--jobs must be >= 1")
    else begin
      Isched_util.Pool.set_default_jobs jobs;
      `Ok ()
    end
  in
  Term.(ret (const set $ Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)))

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Mini-Fortran source file.")

let restructure_flag =
  Arg.(value & flag & info [ "restructure"; "r" ] ~doc:"Apply the Parafrase-surrogate restructuring first.")

let issue_arg = Arg.(value & opt int 4 & info [ "issue" ] ~docv:"N" ~doc:"Issue width (default 4).")

let nfu_arg =
  Arg.(value & opt int 1 & info [ "nfu" ] ~docv:"N" ~doc:"Copies of each function unit (default 1).")

let machine_term =
  let make issue nfu = Isched_ir.Machine.make ~issue ~nfu () in
  Term.(const make $ issue_arg $ nfu_arg)

let unroll_arg =
  Arg.(value & opt int 1 & info [ "unroll" ] ~docv:"U" ~doc:"Unroll the loop by U before compiling.")

let spill_arg =
  Arg.(value & opt (some int) None & info [ "spill-k" ] ~docv:"K"
         ~doc:"Materialize spill code for a K-register file.")

let nprocs_arg =
  Arg.(value & opt (some int) None & info [ "nprocs" ] ~docv:"P"
         ~doc:"Simulate with P processors (cyclic assignment) instead of one per iteration.")

type which_sched = Sched_list | Sched_marker | Sched_new

let scheduler_arg =
  let which_conv =
    Arg.enum [ ("list", Sched_list); ("marker", Sched_marker); ("new", Sched_new) ]
  in
  Arg.(value & opt (some which_conv) None & info [ "scheduler" ] ~docv:"WHICH"
         ~doc:"Restrict to one scheduler: list, marker or new (default: compare all).")

let run_scheduler which g machine =
  match which with
  | Sched_list -> Isched_core.List_sched.run g machine
  | Sched_marker -> Isched_core.Marker_sched.run g machine
  | Sched_new -> Isched_core.Sync_sched.run g machine

let scheduler_title = function
  | Sched_list -> "list scheduling"
  | Sched_marker -> "marker-guided scheduling"
  | Sched_new -> "new instruction scheduling"

let maybe_unroll factor l = if factor > 1 then Isched_transform.Unroll.run l ~factor else l

let maybe_spill k prog =
  match k with
  | None -> prog
  | Some k ->
    let r = Isched_codegen.Spill.insert prog ~k in
    if r.Isched_codegen.Spill.n_spill_ops > 0 then
      Format.printf "! spilled %d registers (%d memory operations added)@."
        (List.length r.Isched_codegen.Spill.spilled)
        r.Isched_codegen.Spill.n_spill_ops;
    r.Isched_codegen.Spill.prog

let maybe_restructure restructure l =
  if restructure then begin
    let r = Isched_transform.Restructure.run l in
    List.iter
      (fun a -> Format.printf "! %a@." Isched_transform.Restructure.pp_action a)
      r.Isched_transform.Restructure.actions;
    r.Isched_transform.Restructure.loop
  end
  else l

(* --- compile --- *)

let compile_cmd =
  let run () file restructure =
    List.iter
      (fun l ->
        let l = maybe_restructure restructure l in
        Format.printf "! loop %s@." l.Isched_frontend.Ast.name;
        if Isched_deps.Dep.is_doall l then
          Format.printf "! DOALL after restructuring - no synchronization needed@.";
        let plan = Isched_sync.Plan.build l in
        Isched_sync.Plan.pp_annotated Format.std_formatter l plan;
        let prog = Isched_codegen.Codegen.run l plan in
        print_string (Isched_ir.Program.to_string prog);
        print_newline ())
      (load_loops file)
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Emit annotated source and three-address code.")
    Term.(const run $ obs_term $ file_arg $ restructure_flag)

(* --- deps --- *)

let deps_cmd =
  let run () file restructure =
    List.iter
      (fun l ->
        let l = maybe_restructure restructure l in
        Format.printf "loop %s (%s):@." l.Isched_frontend.Ast.name
          (Isched_transform.Doall.category_name (Isched_transform.Doall.categorize l));
        List.iter
          (fun d -> Format.printf "  %s@." (Isched_deps.Dep.to_string d))
          (Isched_deps.Dep.analyze l))
      (load_loops file)
  in
  Cmd.v
    (Cmd.info "deps" ~doc:"Print the dependence analysis of each loop.")
    Term.(const run $ obs_term $ file_arg $ restructure_flag)

(* --- dfg --- *)

let dfg_cmd =
  let run () file restructure =
    List.iter
      (fun l ->
        let l = maybe_restructure restructure l in
        let prog = Isched_codegen.Codegen.compile l in
        let g = Isched_dfg.Dfg.build prog in
        Isched_dfg.Dfg.pp_dot Format.std_formatter g)
      (load_loops file)
  in
  Cmd.v
    (Cmd.info "dfg" ~doc:"Emit the data-flow graph in Graphviz dot syntax.")
    Term.(const run $ obs_term $ file_arg $ restructure_flag)

(* --- sched --- *)

let sched_cmd =
  let run () file restructure machine wide unroll spill_k nprocs which =
    List.iter
      (fun l ->
        let l = maybe_restructure restructure l in
        let l = maybe_unroll unroll l in
        let prog = maybe_spill spill_k (Isched_codegen.Codegen.compile l) in
        let g = Isched_dfg.Dfg.build prog in
        let report name s =
          Format.printf "--- %s, %a ---@." name Isched_ir.Machine.pp machine;
          if wide then Isched_core.Schedule.pp_wide Format.std_formatter s
          else Isched_core.Schedule.pp Format.std_formatter s;
          let t = Isched_sim.Timing.run ?n_procs:nprocs s in
          Format.printf "cycles per iteration: %d; remaining LBD pairs: %d@." s.Isched_core.Schedule.length
            (Isched_core.Lbd_model.n_lbd s);
          Format.printf "parallel time over %d iterations%s: %d (analytic with full pool: %d)@.@."
            prog.Isched_ir.Program.n_iters
            (match nprocs with None -> "" | Some p -> Printf.sprintf " on %d processors" p)
            t.Isched_sim.Timing.finish
            (Isched_core.Lbd_model.exact_time s)
        in
        Format.printf "=== loop %s ===@." l.Isched_frontend.Ast.name;
        match which with
        | Some w -> report (scheduler_title w) (run_scheduler w g machine)
        | None ->
          List.iter
            (fun w -> report (scheduler_title w) (run_scheduler w g machine))
            [ Sched_list; Sched_marker; Sched_new ])
      (load_loops file)
  in
  let wide =
    Arg.(value & flag & info [ "wide" ] ~doc:"Print full instruction texts instead of numbers.")
  in
  Cmd.v
    (Cmd.info "sched" ~doc:"Schedule each loop and report times (list, marker and new schedulers).")
    Term.(
      const run $ obs_term $ file_arg $ restructure_flag $ machine_term $ wide $ unroll_arg
      $ spill_arg $ nprocs_arg $ scheduler_arg)

(* --- sim --- *)

let sim_cmd =
  let run () file restructure machine =
    List.iter
      (fun l ->
        let l = maybe_restructure restructure l in
        let prog = Isched_codegen.Codegen.compile l in
        let g = Isched_dfg.Dfg.build prog in
        let s = Isched_core.Sync_sched.run g machine in
        let v = Isched_sim.Value.run s in
        let seq_log = Isched_exec.Readlog.create () in
        let seq_mem = Isched_exec.Prog_interp.run ~log:seq_log prog in
        let stale =
          Isched_exec.Readlog.compare_logs ~reference:seq_log ~actual:v.Isched_sim.Value.log
        in
        Format.printf
          "loop %s: finished in %d cycles; memory %s the sequential reference; %d stale reads; %d races@."
          l.Isched_frontend.Ast.name v.Isched_sim.Value.finish
          (if Isched_exec.Memory.equal seq_mem v.Isched_sim.Value.memory then "matches"
           else "DIFFERS FROM")
          (List.length stale)
          (List.length v.Isched_sim.Value.races))
      (load_loops file)
  in
  Cmd.v
    (Cmd.info "sim" ~doc:"Value-accurate parallel simulation with the stale-data check.")
    Term.(const run $ obs_term $ file_arg $ restructure_flag $ machine_term)

(* --- asm --- *)

let asm_cmd =
  let run () file restructure machine unroll spill_k k scheduled which =
    List.iter
      (fun l ->
        let l = maybe_restructure restructure l in
        let l = maybe_unroll unroll l in
        let prog = maybe_spill spill_k (Isched_codegen.Codegen.compile l) in
        let result =
          if scheduled then begin
            let g = Isched_dfg.Dfg.build prog in
            let w = Option.value ~default:Sched_new which in
            Isched_codegen.Asm.emit_schedule ~k (run_scheduler w g machine)
          end
          else Isched_codegen.Asm.emit ~k prog
        in
        match result with
        | Ok text -> print_string text
        | Error e -> Format.printf "error: %s@." e)
      (load_loops file)
  in
  let k = Arg.(value & opt int 16 & info [ "regs" ] ~docv:"K" ~doc:"Physical registers (default 16).") in
  let scheduled =
    Arg.(value & flag & info [ "scheduled" ] ~doc:"Emit the scheduled VLIW-style bundles instead of program order.")
  in
  Cmd.v
    (Cmd.info "asm" ~doc:"Emit DLX-flavoured assembly with physical registers.")
    Term.(
      const run $ obs_term $ file_arg $ restructure_flag $ machine_term $ unroll_arg $ spill_arg
      $ k $ scheduled $ scheduler_arg)

(* --- viz --- *)

let viz_cmd =
  let run () file restructure machine unroll nprocs which out =
    List.iter
      (fun l ->
        let l = maybe_restructure restructure l in
        let l = maybe_unroll unroll l in
        let prog = Isched_codegen.Codegen.compile l in
        let g = Isched_dfg.Dfg.build prog in
        let w = Option.value ~default:Sched_new which in
        let s = run_scheduler w g machine in
        print_string (Isched_sim.Viz.wavefront_ascii ?n_procs:nprocs s);
        match out with
        | None -> ()
        | Some prefix ->
          let write path contents =
            let oc = open_out path in
            Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc contents);
            Format.printf "wrote %s@." path
          in
          write
            (Printf.sprintf "%s-%s-wavefront.svg" prefix l.Isched_frontend.Ast.name)
            (Isched_sim.Viz.wavefront_svg ?n_procs:nprocs s);
          write
            (Printf.sprintf "%s-%s-schedule.svg" prefix l.Isched_frontend.Ast.name)
            (Isched_sim.Viz.schedule_svg s))
      (load_loops file)
  in
  let out =
    Arg.(value & opt (some string) None & info [ "svg" ] ~docv:"PREFIX"
           ~doc:"Also write PREFIX-<loop>-wavefront.svg and PREFIX-<loop>-schedule.svg.")
  in
  Cmd.v
    (Cmd.info "viz"
       ~doc:"Render the execution wavefront (ASCII, optionally SVG) of each loop's schedule.")
    Term.(
      const run $ obs_term $ file_arg $ restructure_flag $ machine_term $ unroll_arg $ nprocs_arg
      $ scheduler_arg $ out)

(* --- check --- *)

let check_cmd =
  let module Check = Isched_check.Oracle in
  let module Inject = Isched_check.Inject in
  let module Pipeline = Isched_harness.Pipeline in
  (* One loop's report: built as data so the pool can fan loops across
     domains while the printed order stays the input order.  [uncached]
     skips the prepare memo — the streamed --scale path would otherwise
     grow the cache by the whole scaled corpus. *)
  let check_loop ?(uncached = false) options machine which inject (l : Isched_frontend.Ast.loop) =
    let name = l.Isched_frontend.Ast.name in
    let lines = ref [] in
    let fails = ref 0 in
    let add fmt = Printf.ksprintf (fun s -> lines := s :: !lines) fmt in
    (match
       if uncached then Pipeline.prepare_uncached options l else Pipeline.prepare ~options l
     with
    | Pipeline.Doall _ -> add "DOALL after restructuring - no schedule to check"
    | Pipeline.Doacross { graph; _ } ->
      let scheds = match which with None -> [ Sched_list; Sched_marker; Sched_new ] | Some w -> [ w ] in
      List.iter
        (fun w ->
          let s = run_scheduler w graph machine in
          match Check.check_schedule ~graph s with
          | Ok () -> add "%s: ok (static + differential)" (scheduler_title w)
          | Error msgs ->
            incr fails;
            add "%s: INVALID" (scheduler_title w);
            List.iter (fun m -> add "  %s" m) msgs)
        scheds;
      (if which = None then
         let t = Isched_core.Modulo_sched.run graph machine in
         match Isched_core.Modulo_sched.validate t graph with
         | Ok () -> add "modulo scheduling: ok (II=%d)" t.Isched_core.Modulo_sched.ii
         | Error msg ->
           incr fails;
           add "modulo scheduling: INVALID - %s" msg);
      if inject then
        List.iter
          (fun w ->
            let s = run_scheduler w graph machine in
            List.iter
              (fun (o : Inject.outcome) ->
                if not o.Inject.injected then
                  add "[inject] %s under %s: no opportunity" (Inject.name o.Inject.fault)
                    (scheduler_title w)
                else begin
                  (* Name both sides of the experiment — the injected
                     fault class and the classes the checker reported —
                     so a missed injection (nothing reported) and a
                     miscaught one (only other classes reported) read
                     differently from the output alone. *)
                  let reported =
                    List.fold_left
                      (fun acc v ->
                        let c = Isched_check.Violation.class_name v in
                        if List.mem c acc then acc else acc @ [ c ])
                      [] o.Inject.violations
                  in
                  if o.Inject.detected then
                    add "[inject] injected %s under %s: detected as [%s] (%d violation(s))"
                      (Inject.name o.Inject.fault) (scheduler_title w)
                      (String.concat ", " reported)
                      (List.length o.Inject.violations)
                  else begin
                    incr fails;
                    add "[inject] injected %s under %s: MISSED - checker reported %s"
                      (Inject.name o.Inject.fault) (scheduler_title w)
                      (if reported = [] then "nothing"
                       else Printf.sprintf "only [%s]" (String.concat ", " reported))
                  end
                end)
              (Inject.campaign ~graph s))
          scheds);
    (name, List.rev !lines, !fails)
  in
  let run () () file corpus scale sync_elim machine which inject =
    let options = { Pipeline.default_options with Pipeline.sync_elim } in
    if scale > 1 then begin
      (* A scaled corpus is streamed (Suite.chunks), so it composes with
         --corpus only; a scale-N sweep is thousands of loops, so only
         the failing reports print, plus a one-line summary. *)
      if file <> None || not corpus then begin
        prerr_endline "ischedc check: --scale N with N > 1 requires --corpus (and no FILE)";
        exit 2
      end;
      let total_loops = ref 0 and total_fails = ref 0 and failed_loops = ref 0 in
      List.iter
        (fun p ->
          let chunks = Isched_perfect.Suite.chunks ~scale p in
          let reports =
            Isched_util.Pool.map
              (fun c ->
                List.map
                  (check_loop ~uncached:true options machine which inject)
                  (Isched_perfect.Suite.chunk_loops c))
              chunks
          in
          List.iter
            (List.iter (fun (name, lines, fails) ->
                 incr total_loops;
                 total_fails := !total_fails + fails;
                 if fails > 0 then begin
                   incr failed_loops;
                   Format.printf "=== loop %s ===@." name;
                   List.iter (fun s -> Format.printf "  %s@." s) lines
                 end))
            reports)
        (Isched_perfect.Suite.profiles ());
      if !total_fails > 0 then begin
        Format.printf "check: %d FAILURE(S) in %d of %d loop(s) at scale %d@." !total_fails
          !failed_loops !total_loops scale;
        exit 1
      end
      else Format.printf "check: all %d loop(s) clean at scale %d@." !total_loops scale
    end
    else begin
      let loops =
        (match file with Some f -> load_loops f | None -> [])
        @
        if corpus then Isched_perfect.Suite.all_loops () else []
      in
      if loops = [] then begin
        prerr_endline "ischedc check: nothing to check (give FILE and/or --corpus)";
        exit 2
      end;
      let reports = Isched_util.Pool.map (check_loop options machine which inject) loops in
      let total_fails =
        List.fold_left
          (fun acc (name, lines, fails) ->
            Format.printf "=== loop %s ===@." name;
            List.iter (fun s -> Format.printf "  %s@." s) lines;
            acc + fails)
          0 reports
      in
      if total_fails > 0 then begin
        Format.printf "check: %d FAILURE(S) over %d loop(s)@." total_fails (List.length loops);
        exit 1
      end
      else Format.printf "check: all %d loop(s) clean@." (List.length loops)
    end
  in
  let file =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Mini-Fortran source file.")
  in
  let corpus =
    Arg.(value & flag & info [ "corpus" ]
           ~doc:"Also check every loop of the five Perfect-surrogate seed corpora.")
  in
  let scale =
    Arg.(value & opt int 1 & info [ "scale" ] ~docv:"N"
           ~doc:"Check an N-fold generated corpus (requires --corpus).  The stream is chunked \
                 and fanned across the job pool in bounded memory; only failing loops print, \
                 plus a summary line.")
  in
  let sync_elim =
    Arg.(value & flag & info [ "sync-elim" ]
           ~doc:"Run the redundant-synchronization elimination pass before scheduling, so every \
                 elimination is machine-checked against the static analyzer and the sequential \
                 value-simulation oracle.")
  in
  let inject =
    Arg.(value & flag & info [ "inject" ]
           ~doc:"Fault-injection mode: corrupt each schedule in every violation class (stale-data \
                 hoist, premature send, dropped dependence arc, FU/issue over-subscription) and \
                 fail unless the checker detects every one.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Verify schedule validity (sync conditions, dependence arcs, resources, LBD \
             accounting) and run the differential oracle against the sequential reference; \
             non-zero exit on any violation.")
    Term.(
      const run $ obs_term $ jobs_arg $ file $ corpus $ scale $ sync_elim $ machine_term
      $ scheduler_arg $ inject)

(* --- explain --- *)

let explain_cmd =
  let module Pipeline = Isched_harness.Pipeline in
  let module Explain = Isched_harness.Explain in
  let run () file machine which fmt pair =
    let which =
      match which with
      | None | Some Sched_new -> Pipeline.New_scheduling
      | Some Sched_list -> Pipeline.List_scheduling
      | Some Sched_marker -> Pipeline.Marker_scheduling
    in
    let failed = ref false in
    List.iter
      (fun l ->
        match Explain.build ~which l machine with
        | Error msg ->
          failed := true;
          Printf.eprintf "ischedc explain: %s\n%!" msg
        | Ok t -> (
          (match pair with
          | Some p when not (List.exists (fun pt -> String.equal (Explain.pair_key pt) p) t.Explain.pairs) ->
            failed := true;
            Printf.eprintf "ischedc explain: loop %s has no pair %s (pairs: %s)\n%!" t.Explain.loop_name
              p
              (match t.Explain.pairs with
              | [] -> "none"
              | ps -> String.concat ", " (List.map Explain.pair_key ps))
          | _ -> ());
          match fmt with
          | `Ascii -> print_string (Explain.render_ascii ?pair t)
          | `Json -> print_string (Explain.render_json ?pair t)
          | `Svg ->
            print_string
              (Isched_sim.Viz.gantt_svg ~decisions:t.Explain.decisions t.Explain.schedule)))
      (load_loops file);
    if !failed then exit 1
  in
  let fmt =
    Arg.(
      value
      & vflag `Ascii
          [
            (`Ascii, info [ "ascii" ] ~doc:"Human-readable report (default).");
            ( `Json,
              info [ "json" ]
                ~doc:"One JSON document: header, per-pair traces, raw decision list." );
            ( `Svg,
              info [ "svg" ]
                ~doc:"SVG Gantt of the schedule with sync arcs overlaid and provenance tooltips."
            );
          ])
  in
  let pair =
    Arg.(
      value
      & opt (some string) None
      & info [ "pair" ] ~docv:"SRC:SNK"
          ~doc:
            "Trace one dependence only: the pair whose source statement is labelled SRC and \
             sink SNK (e.g. S3:S1).")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Explain where each synchronization pair's send (i) and wait (j) landed and why: the \
          LBD contribution (n/d)(i-j)+l per pair, backed by the recorded scheduling-decision \
          chains (candidate sets, ready cycles, priorities, resource rejections, binding \
          sync-arcs).")
    Term.(const run $ obs_term $ file_arg $ machine_term $ scheduler_arg $ fmt $ pair)

(* --- serve --- *)

let serve_cmd =
  let module Server = Isched_serve.Server in
  let run () socket workers queue_capacity cache_capacity cache_stripes validate sync_elim slow_ms
      metrics_file metrics_interval =
    let config =
      {
        Server.socket_path = socket;
        workers;
        queue_capacity;
        cache_capacity;
        cache_stripes;
        validate;
        sync_elim;
        slow_ms;
        metrics_file;
        metrics_interval;
      }
    in
    let server =
      try Server.create config
      with Invalid_argument m ->
        prerr_endline ("ischedc serve: " ^ m);
        exit 2
    in
    Server.install_signal_handlers server;
    Server.run
      ~on_ready:(fun () ->
        Printf.printf "ischedc serve: listening on %s (%d workers, cache %d)\n%!" socket workers
          cache_capacity)
      server;
    Printf.printf "ischedc serve: drained after %d request(s)\n%!" (Server.requests_served server)
  in
  let socket =
    Arg.(required & opt (some string) None & info [ "socket" ] ~docv:"PATH"
           ~doc:"Unix-domain socket path to listen on (created, replacing a stale one; removed \
                 on shutdown).")
  in
  let workers =
    Arg.(value & opt int 4 & info [ "workers" ] ~docv:"N" ~doc:"Worker domains (default 4).")
  in
  let queue =
    Arg.(value & opt int 64 & info [ "queue" ] ~docv:"N"
           ~doc:"Accepted connections allowed to wait for a worker; beyond it new connections \
                 get a structured overloaded error instead of buffering without bound \
                 (default 64).")
  in
  let cache_capacity =
    Arg.(value & opt int 1024 & info [ "cache" ] ~docv:"N"
           ~doc:"Schedule cache capacity in entries, LRU-evicted (default 1024).")
  in
  let cache_stripes =
    Arg.(value & opt int 16 & info [ "cache-stripes" ] ~docv:"N"
           ~doc:"Lock stripes of the schedule cache (default 16).")
  in
  let validate =
    Arg.(value & flag & info [ "validate" ]
           ~doc:"Re-check every served schedule (cache hits included) with the independent \
                 static analyzer before answering; a failing entry is evicted and reported, \
                 never served.")
  in
  let sync_elim =
    Arg.(value & flag & info [ "sync-elim" ]
           ~doc:"Default to the redundant-synchronization elimination pass for requests that \
                 do not carry a sync_elim member (the resolved setting is part of the \
                 schedule-cache key).")
  in
  let slow_ms =
    Arg.(value & opt float 100. & info [ "slow-ms" ] ~docv:"MS"
           ~doc:"Requests slower than $(docv) milliseconds (decode through socket write) are \
                 promoted to the retained slow-log visible in ischedc top and the stats \
                 request (default 100).")
  in
  let metrics_file =
    Arg.(value & opt (some string) None & info [ "metrics-file" ] ~docv:"PATH"
           ~doc:"Periodically dump the Prometheus text exposition to $(docv) \
                 (write-temp-then-rename, safe to scrape at any moment).")
  in
  let metrics_interval =
    Arg.(value & opt float 5. & info [ "metrics-interval" ] ~docv:"S"
           ~doc:"Seconds between --metrics-file dumps (default 5).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the scheduling service: a daemon answering length-prefixed JSON requests \
             (schedule source text or named corpus loops, stats, metrics, ping) over a \
             Unix-domain socket, with a digest-keyed LRU schedule cache, bounded-queue \
             backpressure, per-request stage telemetry and graceful SIGTERM drain.  \
             Protocol: doc/serving.md.")
    Term.(
      const run $ obs_term $ socket $ workers $ queue $ cache_capacity $ cache_stripes $ validate
      $ sync_elim $ slow_ms $ metrics_file $ metrics_interval)

(* --- top --- *)

let top_cmd =
  let module Client = Isched_serve.Client in
  let module Protocol = Isched_serve.Protocol in
  let module Json = Isched_obs.Json in
  let mem path v = List.fold_left (fun acc k -> Option.bind acc (Json.member k)) (Some v) path in
  let f path v = Option.value ~default:0. (Option.bind (mem path v) Json.to_float) in
  (* Windowed hit ratio when the cache saw traffic this window, the
     since-boot counters otherwise (a freshly idle daemon still reports
     something meaningful). *)
  let hit_ratio stats =
    if f [ "cache_window"; "count" ] stats > 0. then
      1. -. f [ "cache_window"; "flagged_ratio" ] stats
    else
      let h = f [ "counters"; "serve.cache.hit" ] stats
      and m = f [ "counters"; "serve.cache.miss" ] stats in
      if h +. m > 0. then h /. (h +. m) else 0.
  in
  let summary_json stats =
    let n path = Json.Num (f path stats) in
    let ms path = Json.Num (f path stats /. 1e6) in
    Json.Obj
      [
        ("requests", n [ "requests" ]);
        ("rps", n [ "window"; "rate" ]);
        ("p50_ms", ms [ "window"; "p50_ns" ]);
        ("p99_ms", ms [ "window"; "p99_ns" ]);
        ("p999_ms", ms [ "window"; "p999_ns" ]);
        ("error_rate", n [ "window"; "flagged_ratio" ]);
        ("window_count", n [ "window"; "count" ]);
        ("hit_ratio", Json.Num (hit_ratio stats));
        ("cache_entries", n [ "cache"; "entries" ]);
        ("cache_capacity", n [ "cache"; "capacity" ]);
        ("queue_depth", n [ "queue"; "depth" ]);
        ("queue_hwm", n [ "queue"; "hwm" ]);
        ("workers_busy", n [ "workers"; "busy" ]);
        ("workers_total", n [ "workers"; "total" ]);
        ( "sync_elim",
          Json.Obj
            [
              ("waits_removed", n [ "counters"; "sync.elim.waits_removed" ]);
              ("sends_removed", n [ "counters"; "sync.elim.sends_removed" ]);
            ] );
        ("slow", Option.value ~default:(Json.Arr []) (mem [ "slow"; "entries" ] stats));
      ]
  in
  let render_screen socket stats =
    let b = Buffer.create 1024 in
    let pct x = 100. *. x in
    Printf.bprintf b "ischedc top — %s\n\n" socket;
    Printf.bprintf b "requests  %-10.0f rps %8.1f    errors %5.2f%%\n" (f [ "requests" ] stats)
      (f [ "window"; "rate" ] stats)
      (pct (f [ "window"; "flagged_ratio" ] stats));
    Printf.bprintf b "window    p50 %8.3f ms   p99 %8.3f ms   p999 %8.3f ms   (n=%.0f / %.0f s)\n"
      (f [ "window"; "p50_ns" ] stats /. 1e6)
      (f [ "window"; "p99_ns" ] stats /. 1e6)
      (f [ "window"; "p999_ns" ] stats /. 1e6)
      (f [ "window"; "count" ] stats)
      (f [ "window"; "window_ns" ] stats /. 1e9);
    Printf.bprintf b "cache     hit %5.1f%%   entries %.0f/%.0f   probe p99 %.3f ms\n"
      (pct (hit_ratio stats))
      (f [ "cache"; "entries" ] stats)
      (f [ "cache"; "capacity" ] stats)
      (f [ "cache_window"; "p99_ns" ] stats /. 1e6);
    Printf.bprintf b "queue     depth %.0f/%.0f   hwm %.0f        workers %.0f/%.0f busy\n"
      (f [ "queue"; "depth" ] stats)
      (f [ "queue"; "capacity" ] stats)
      (f [ "queue"; "hwm" ] stats)
      (f [ "workers"; "busy" ] stats)
      (f [ "workers"; "total" ] stats);
    Printf.bprintf b "sync-elim waits_removed %.0f   sends_removed %.0f\n"
      (f [ "counters"; "sync.elim.waits_removed" ] stats)
      (f [ "counters"; "sync.elim.sends_removed" ] stats);
    let slow = Option.bind (mem [ "slow"; "entries" ] stats) Json.to_list in
    Printf.bprintf b "\nslow requests (>= %.0f ms): %d retained\n"
      (f [ "slow"; "threshold_ms" ] stats)
      (match slow with Some l -> List.length l | None -> 0);
    (match slow with
    | None | Some [] -> ()
    | Some entries ->
      List.iteri
        (fun i e ->
          if i < 8 then
            Printf.bprintf b "  id %-8.0f %9.3f ms  %-9s %-6s compute %.3f ms\n" (f [ "id" ] e)
              (f [ "total_ns" ] e /. 1e6)
              (Option.value ~default:"?" (Option.bind (Json.member "verdict" e) Json.to_str))
              (Option.value ~default:"" (Option.bind (Json.member "scheduler" e) Json.to_str))
              (f [ "stages"; "compute" ] e /. 1e6))
        entries);
    Buffer.contents b
  in
  let run () socket interval once json metrics =
    let fail msg =
      prerr_endline ("ischedc top: " ^ msg);
      exit 1
    in
    (match Client.with_connection socket (fun client ->
         let rec tick () =
           (if metrics then
              match Client.request client Protocol.Metrics with
              | Ok (Protocol.Metrics_reply e) -> print_string e
              | Ok (Protocol.Error { message; _ }) -> fail message
              | Ok _ -> fail "unexpected response to metrics"
              | Error m -> fail m
            else
              match Client.request client Protocol.Stats with
              | Ok (Protocol.Stats_reply stats) ->
                if json then print_endline (Json.to_string (summary_json stats))
                else begin
                  (* Home + clear: repaint in place without scrollback spam. *)
                  print_string "\027[H\027[2J";
                  print_string (render_screen socket stats)
                end
              | Ok (Protocol.Error { message; _ }) -> fail message
              | Ok _ -> fail "unexpected response to stats"
              | Error m -> fail m);
           flush stdout;
           if not once then begin
             Unix.sleepf interval;
             tick ()
           end
         in
         tick ())
     with
    | () -> ()
    | exception Unix.Unix_error (e, _, _) ->
      fail (Printf.sprintf "cannot reach %s: %s" socket (Unix.error_message e)))
  in
  let socket =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SOCKET"
           ~doc:"Unix-domain socket of the daemon to watch.")
  in
  let interval =
    Arg.(value & opt float 2. & info [ "interval" ] ~docv:"S"
           ~doc:"Seconds between refreshes (default 2).")
  in
  let once =
    Arg.(value & flag & info [ "once" ] ~doc:"Render one sample and exit (for scripting).")
  in
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Print one compact JSON summary per sample instead of the ANSI dashboard \
                 (combine with --once for scripting).")
  in
  let metrics =
    Arg.(value & flag & info [ "metrics" ]
           ~doc:"Print the raw Prometheus text exposition instead of the dashboard.")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:"Live monitor for a running ischedc serve daemon: req/s, windowed latency \
             quantiles, cache hit ratio, queue depth, worker utilisation, sync-elim counters \
             and the slow-request log, polled over the stats/metrics protocol verbs.")
    Term.(const run $ obs_term $ socket $ interval $ once $ json $ metrics)

(* --- example --- *)

let example_cmd =
  let run () () = print_string (Isched_harness.Worked_example.report ()) in
  Cmd.v
    (Cmd.info "example" ~doc:"Print the paper's Figs. 1-4 worked example.")
    Term.(const run $ obs_term $ const ())

(* --- tables --- *)

let sync_elim_flag =
  Arg.(value & flag & info [ "sync-elim" ]
         ~doc:"Run the redundant-synchronization elimination pass (lib/sync/elim) before \
               scheduling.")

let tables_cmd =
  let run () () which sync_elim =
    let options =
      { Isched_harness.Pipeline.default_options with Isched_harness.Pipeline.sync_elim }
    in
    let benches = Isched_perfect.Suite.all () in
    let print_t t = Isched_util.Table.print t in
    let table23 () =
      Isched_harness.Report.measure ~options benches Isched_ir.Machine.paper_configs
    in
    (match which with
    | "table1" -> print_t (Isched_harness.Report.table1 ~options benches)
    | "table2" -> print_t (Isched_harness.Report.table2 (table23 ()))
    | "table3" -> print_t (Isched_harness.Report.table3 (table23 ()))
    | "categories" -> print_t (Isched_harness.Report.categories benches)
    | "all" ->
      print_t (Isched_harness.Report.table1 ~options benches);
      let ms = table23 () in
      print_t (Isched_harness.Report.table2 ms);
      print_t (Isched_harness.Report.table3 ms);
      print_t (Isched_harness.Report.categories benches)
    | other -> invalid_arg ("unknown table: " ^ other))
  in
  let which =
    Arg.(value & opt string "all" & info [ "which" ] ~docv:"WHICH"
           ~doc:"One of table1, table2, table3, categories, all.")
  in
  Cmd.v
    (Cmd.info "tables" ~doc:"Regenerate the paper's tables over the surrogate corpora.")
    Term.(const run $ obs_term $ jobs_arg $ which $ sync_elim_flag)

(* --- ablations --- *)

let ablations_cmd =
  let run () () which =
    let module Report = Isched_harness.Report in
    let benches = Isched_perfect.Suite.all () in
    let all =
      [
        ("order", Report.ablation_order);
        ("elimination", Report.ablation_elimination);
        ("migration", Report.ablation_migration);
        ("markers", Report.ablation_markers);
        ("sync-elim", Report.ablation_sync_elim);
      ]
    in
    match which with
    | "all" ->
      List.iter (fun (_, f) -> Isched_util.Table.print (f benches)) all
    | w -> (
      match List.assoc_opt w all with
      | Some f -> Isched_util.Table.print (f benches)
      | None -> invalid_arg ("unknown ablation: " ^ w))
  in
  let which =
    Arg.(value & opt string "all" & info [ "which" ] ~docv:"WHICH"
           ~doc:"One of order, elimination, migration, markers, sync-elim, all.")
  in
  Cmd.v
    (Cmd.info "ablations"
       ~doc:"Print the ablation tables (A1 damage ordering, A2 plan-level elimination, A3 \
             migration, A5 marker-guided comparison, A6 post-codegen redundant-sync \
             elimination) without running the full benchmark harness.")
    Term.(const run $ obs_term $ jobs_arg $ which)

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info =
    Cmd.info "ischedc" ~version:"1.0.0"
      ~doc:"Synchronization-aware instruction scheduling for DOACROSS loops (IPPS'97 reproduction)."
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            compile_cmd; deps_cmd; dfg_cmd; sched_cmd; sim_cmd; check_cmd; asm_cmd; viz_cmd;
            explain_cmd; example_cmd; tables_cmd; ablations_cmd; serve_cmd; top_cmd;
          ]))
