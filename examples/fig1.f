DOACROSS I = 1, 100
  S1: B[I] = A[I-2] + E[I+1]
  S2: G[I-3] = A[I-1] * E[I+2]
  S3: A[I] = B[I] + C[I+3]
ENDDO
