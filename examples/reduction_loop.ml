(* The restructuring front end (Parafrase surrogate) at work: a loop
   with an induction variable, a sum reduction and an expandable
   temporary is rewritten until only the true recurrence needs
   synchronization.

   Run with:  dune exec examples/reduction_loop.exe *)

let source =
  {|! energy accumulation with an induction-stepped sample index
DOACROSS I = 1, 100
  S1: K = K + 2
  S2: T = E[I] * C[I+1]
  S3: EN = EN + T * T
  S4: OUT[I] = T + K * D[I]
  S5: ACC[I] = ACC[I-1] + T
ENDDO
|}

let () =
  let loop = Isched_frontend.Parser.parse_loop ~name:"reduction" source in
  Isched_frontend.Sema.check_exn loop;
  print_endline "Original loop:";
  print_string (Isched_frontend.Ast.loop_to_string loop);
  Printf.printf "\ncarried dependences before restructuring: %d\n"
    (List.length (Isched_deps.Dep.carried_deps loop));

  let r = Isched_transform.Restructure.run loop in
  print_endline "\nTransformations applied:";
  List.iter
    (fun a -> Format.printf "  %a@." Isched_transform.Restructure.pp_action a)
    r.Isched_transform.Restructure.actions;
  print_endline "\nRestructured loop:";
  print_string (Isched_frontend.Ast.loop_to_string r.Isched_transform.Restructure.loop);
  Printf.printf "\ncarried dependences after restructuring: %d (only the ACC recurrence)\n"
    (List.length (Isched_deps.Dep.carried_deps r.Isched_transform.Restructure.loop));

  (* The transformations must preserve semantics: final memories agree
     after combining the reduction partials, reading the expanded
     scalar's last element and applying the induction variable's closed
     form. *)
  (match Isched_harness.Equivalence.check_restructure loop r with
  | Ok () -> print_endline "\nequivalence check: restructured loop matches the original  [ok]"
  | Error es ->
    print_endline "\nequivalence check FAILED:";
    List.iter print_endline es);

  (* And the remaining recurrence still schedules well. *)
  let prog = Isched_codegen.Codegen.compile r.Isched_transform.Restructure.loop in
  let g = Isched_dfg.Dfg.build prog in
  let machine = Isched_ir.Machine.make ~issue:4 ~nfu:1 () in
  let ta =
    (Isched_sim.Timing.run (Isched_core.List_sched.run g machine)).Isched_sim.Timing.finish
  in
  let tb =
    (Isched_sim.Timing.run (Isched_core.Sync_sched.run g machine)).Isched_sim.Timing.finish
  in
  Printf.printf "\n4-issue timing: list %d cycles, new %d cycles (%.1f%% better)\n" ta tb
    (100. *. float_of_int (ta - tb) /. float_of_int ta)
