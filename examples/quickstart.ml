(* Quickstart: the public API end to end on the paper's running example.

   Run with:  dune exec examples/quickstart.exe

   The pipeline is: parse -> analyze dependences -> insert
   synchronization -> compile to three-address code -> build the
   data-flow graph -> schedule (baseline and sync-aware) -> simulate the
   n-processor DOACROSS execution. *)

let source =
  {|DOACROSS I = 1, 100
  S1: B[I] = A[I-2] + E[I+1]
  S2: G[I-3] = A[I-1] * E[I+2]
  S3: A[I] = B[I] + C[I+3]
ENDDO
|}

let () =
  (* 1. Parse and check. *)
  let loop = Isched_frontend.Parser.parse_loop ~name:"quickstart" source in
  Isched_frontend.Sema.check_exn loop;
  print_endline "Source loop:";
  print_string (Isched_frontend.Ast.loop_to_string loop);

  (* 2. Dependences: two lexically backward flow dependences carried by
     A (distances 2 and 1), plus a loop-independent one through B. *)
  print_endline "\nDependences:";
  List.iter
    (fun d -> Printf.printf "  %s\n" (Isched_deps.Dep.to_string d))
    (Isched_deps.Dep.analyze loop);

  (* 3. Synchronization insertion (the paper's Fig. 1(b)). *)
  let plan = Isched_sync.Plan.build loop in
  print_endline "\nAfter synchronization insertion:";
  Isched_sync.Plan.pp_annotated Format.std_formatter loop plan;

  (* 4. DLX-like three-address code (Fig. 2). *)
  let prog = Isched_codegen.Codegen.run loop plan in
  print_endline "\nThree-address code:";
  print_string (Isched_ir.Program.to_string prog);

  (* 5. Data-flow graph with sync-condition arcs; Sigwat partition. *)
  let g = Isched_dfg.Dfg.build prog in
  let comps = Isched_dfg.Dfg.components g in
  Printf.printf "\nThe graph splits into %d components.\n" (Array.length comps);

  (* 6. Schedule on the paper's 4-issue machine, both ways. *)
  let machine = Isched_ir.Machine.make ~issue:4 ~nfu:1 () in
  let run name s =
    let t = Isched_sim.Timing.run s in
    Printf.printf "\n%s (%d rows, %d LBD pairs left) -> %d cycles for 100 iterations\n" name
      s.Isched_core.Schedule.length (Isched_core.Lbd_model.n_lbd s) t.Isched_sim.Timing.finish;
    Isched_core.Schedule.pp Format.std_formatter s;
    t.Isched_sim.Timing.finish
  in
  let ta = run "List scheduling" (Isched_core.List_sched.run g machine) in
  let tb = run "New instruction scheduling" (Isched_core.Sync_sched.run g machine) in
  Printf.printf "\nImprovement: %.1f%% (the paper's Section 3.2 example)\n"
    (100. *. float_of_int (ta - tb) /. float_of_int ta)
