(* The motivating bug (paper, Section 1): after instruction scheduling
   "dependence sink may be scheduled before its corresponding
   Wait_Signal.  This action will have a chance to access stale data."

   This example schedules the same loop twice with the same list
   scheduler: once over a data-flow graph WITHOUT the paper's
   synchronization-condition arcs, once WITH them, and runs both on the
   value-accurate multiprocessor simulator.  The first execution reads
   stale array elements and corrupts the result; the second is exact.

   Run with:  dune exec examples/stale_data_demo.exe *)

let source =
  {|DOACROSS I = 1, 100
  S1: B[I] = A[I-2] + E[I+1]
  S2: G[I-3] = A[I-1] * E[I+2]
  S3: A[I] = B[I] + C[I+3]
ENDDO
|}

let run_case ~sync_arcs prog machine =
  let g = Isched_dfg.Dfg.build ~sync_arcs prog in
  let s = Isched_core.List_sched.run g machine in
  let v = Isched_sim.Value.run s in
  let seq_log = Isched_exec.Readlog.create () in
  let seq_mem = Isched_exec.Prog_interp.run ~log:seq_log prog in
  let stale = Isched_exec.Readlog.compare_logs ~reference:seq_log ~actual:v.Isched_sim.Value.log in
  let mem_ok = Isched_exec.Memory.equal seq_mem v.Isched_sim.Value.memory in
  (s, stale, mem_ok, Isched_exec.Memory.diff seq_mem v.Isched_sim.Value.memory)

let () =
  let loop = Isched_frontend.Parser.parse_loop ~name:"stale" source in
  let prog = Isched_codegen.Codegen.compile loop in
  let machine = Isched_ir.Machine.make ~issue:4 ~nfu:1 () in

  print_endline "--- list scheduling WITHOUT the synchronization-condition arcs ---";
  let s0, stale0, ok0, diff0 = run_case ~sync_arcs:false prog machine in
  Printf.printf "schedule length: %d rows\n" s0.Isched_core.Schedule.length;
  Printf.printf "final memory matches the sequential reference: %b\n" ok0;
  Printf.printf "stale reads detected: %d\n" (List.length stale0);
  (match stale0 with
  | m :: _ ->
    Format.printf "first stale read: %a@." Isched_exec.Readlog.pp_mismatch m
  | [] -> ());
  (match diff0 with
  | d :: _ -> Printf.printf "first corrupted cell: %s\n" d
  | [] -> ());

  print_endline "\n--- list scheduling WITH the synchronization-condition arcs ---";
  let _, stale1, ok1, _ = run_case ~sync_arcs:true prog machine in
  Printf.printf "final memory matches the sequential reference: %b\n" ok1;
  Printf.printf "stale reads detected: %d\n" (List.length stale1);

  print_endline
    "\nThe extra arcs (Src -> Send, Wait -> Snk) are exactly the paper's synchronization\n\
     conditions; with them even the baseline scheduler can never see stale data."
