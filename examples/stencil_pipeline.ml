(* A 1-D wavefront stencil (successive over-relaxation flavour), the
   loop class the paper's intro motivates: the field update carries a
   short recurrence while smoothing and diagnostics consume older
   elements.

   Run with:  dune exec examples/stencil_pipeline.exe

   For each of the paper's four machine configurations, the example
   schedules the kernel both ways, checks the schedules are legal and
   value-correct, and prints the timing comparison. *)

let source =
  {|! wavefront relaxation sweep with diagnostics
DOACROSS I = 2, 101
  S1: FLUX[I] = PHI[I-1] * C[I] + E[I+1]
  S2: RESID[I] = FLUX[I] - Q[I] * PHI[I-2]
  S3: DIAG[I] = PHI[I-2] + D[I-1] * C[I+2]
  S4: NORM[I] = E[I] * Q[I+1] + C[I-1]
  S5: PHI[I] = PHI[I-1] + D[I]
ENDDO
|}

let () =
  let loop = Isched_frontend.Parser.parse_loop ~name:"stencil" source in
  Isched_frontend.Sema.check_exn loop;
  let prog = Isched_codegen.Codegen.compile loop in
  let g = Isched_dfg.Dfg.build prog in
  Printf.printf "stencil kernel: %d statements, %d instructions, %d sync pairs (%d LBD)\n\n"
    (List.length loop.Isched_frontend.Ast.body)
    (Array.length prog.Isched_ir.Program.body)
    (Array.length prog.Isched_ir.Program.waits)
    (Isched_ir.Program.n_lbd prog);
  let table =
    Isched_util.Table.create ~title:"list vs new scheduling on the wavefront stencil"
      ~columns:
        [
          ("machine", Isched_util.Table.Left);
          ("T list", Isched_util.Table.Right);
          ("T new", Isched_util.Table.Right);
          ("improvement", Isched_util.Table.Right);
          ("rows list", Isched_util.Table.Right);
          ("rows new", Isched_util.Table.Right);
        ]
  in
  List.iter
    (fun (name, machine) ->
      let check s =
        (match Isched_core.Schedule.validate s g with
        | Ok () -> ()
        | Error e -> failwith ("illegal schedule: " ^ e));
        (match Isched_harness.Equivalence.check_schedule prog s with
        | Ok () -> ()
        | Error es -> failwith ("value mismatch: " ^ String.concat "; " es));
        s
      in
      let sa = check (Isched_core.List_sched.run g machine) in
      let sb = check (Isched_core.Sync_sched.run g machine) in
      let ta = (Isched_sim.Timing.run sa).Isched_sim.Timing.finish in
      let tb = (Isched_sim.Timing.run sb).Isched_sim.Timing.finish in
      Isched_util.Table.add_row table
        [
          name;
          string_of_int ta;
          string_of_int tb;
          Isched_util.Table.fmt_pct (100. *. float_of_int (ta - tb) /. float_of_int ta);
          string_of_int sa.Isched_core.Schedule.length;
          string_of_int sb.Isched_core.Schedule.length;
        ])
    Isched_ir.Machine.paper_configs;
  Isched_util.Table.print table;
  print_endline "(every schedule above was validated and value-checked against the sequential reference)"
