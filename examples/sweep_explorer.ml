(* Machine-design exploration beyond the paper's four configurations:
   issue widths 1-8, function-unit counts 1-4, pipelined multipliers,
   and the register-pressure cost of each schedule.

   Run with:  dune exec examples/sweep_explorer.exe *)

module Table = Isched_util.Table

let source =
  {|DOACROSS I = 1, 100
  S1: GAIN[I] = EST[I-1] * C[I] + R[I]
  S2: INOV[I] = Q[I+1] - GAIN[I] * D[I]
  S3: COV[I] = EST[I-2] * E[I] + R[I-1]
  S4: LOGP[I] = C[I+2] * D[I-2] + Q[I]
  S5: EST[I] = EST[I-1] + E[I]
ENDDO
|}

let order_of_schedule (s : Isched_core.Schedule.t) =
  Array.concat (Array.to_list s.Isched_core.Schedule.rows)

let () =
  let loop = Isched_frontend.Parser.parse_loop ~name:"tracker" source in
  let prog = Isched_codegen.Codegen.compile loop in
  let g = Isched_dfg.Dfg.build prog in

  (* Sweep issue width and unit count. *)
  let t =
    Table.create ~title:"improvement of the new scheduler across machine shapes"
      ~columns:
        ([ ("issue \\ #FU", Table.Left) ]
        @ List.map (fun nfu -> (Printf.sprintf "#FU=%d" nfu, Table.Right)) [ 1; 2; 4 ])
  in
  List.iter
    (fun issue ->
      let cells =
        List.map
          (fun nfu ->
            let machine = Isched_ir.Machine.make ~issue ~nfu () in
            let ta =
              (Isched_sim.Timing.run (Isched_core.List_sched.run g machine)).Isched_sim.Timing.finish
            in
            let tb =
              (Isched_sim.Timing.run (Isched_core.Sync_sched.run g machine)).Isched_sim.Timing.finish
            in
            Table.fmt_pct (100. *. float_of_int (ta - tb) /. float_of_int ta))
          [ 1; 2; 4 ]
      in
      Table.add_row t (Printf.sprintf "%d-issue" issue :: cells))
    [ 1; 2; 4; 8 ];
  Table.print t;

  (* Does pipelining the multi-cycle units change the picture? *)
  let t2 =
    Table.create ~title:"4-issue, #FU=1: non-pipelined vs pipelined multiplier/divider"
      ~columns:
        [ ("variant", Table.Left); ("T list", Table.Right); ("T new", Table.Right) ]
  in
  List.iter
    (fun (name, pipelined) ->
      let machine = Isched_ir.Machine.make ~pipelined ~issue:4 ~nfu:1 () in
      let ta =
        (Isched_sim.Timing.run (Isched_core.List_sched.run g machine)).Isched_sim.Timing.finish
      in
      let tb =
        (Isched_sim.Timing.run (Isched_core.Sync_sched.run g machine)).Isched_sim.Timing.finish
      in
      Table.add_row t2 [ name; string_of_int ta; string_of_int tb ])
    [ ("non-pipelined", false); ("pipelined", true) ];
  Table.print t2;

  (* Register pressure: does shortening the synchronization path cost
     registers? *)
  let machine = Isched_ir.Machine.make ~issue:4 ~nfu:1 () in
  let sa = Isched_core.List_sched.run g machine in
  let sb = Isched_core.Sync_sched.run g machine in
  let pressure order = Isched_codegen.Regalloc.max_pressure prog ~order in
  Printf.printf "\nregister pressure: original order %d, list schedule %d, new schedule %d\n"
    (pressure (Isched_codegen.Regalloc.original_order prog))
    (pressure (order_of_schedule sa))
    (pressure (order_of_schedule sb));
  let alloc = Isched_codegen.Regalloc.linear_scan prog ~order:(order_of_schedule sb) ~k:16 in
  Printf.printf "linear scan with 16 registers on the new schedule: %d spills\n"
    alloc.Isched_codegen.Regalloc.spills
