(* Architecture study: where does a DOACROSS multiprocessor actually pay
   off?

   Run with:  dune exec examples/architecture_study.exe

   Three kernels span the spectrum:
   - a fully convertible loop (consumers only): embarrassingly
     overlappable once the new scheduler converts its LBDs;
   - the paper's Fig. 1 loop: one unavoidable distance-2 chain;
   - a tight multiplicative recurrence (the QCD shape): the chain *is*
     the loop.

   For each, the example compares one serial CPU, one software-pipelined
   CPU (iterative modulo scheduling — no synchronization needed on one
   processor) and the n-processor DOACROSS execution under the paper's
   scheduler, then draws the execution wavefronts that explain the
   numbers. *)

module Table = Isched_util.Table

let kernels =
  [
    ( "convertible",
      {|DOACROSS I = 1, 100
  S1: O1[I] = A[I-1] * C[I]
  S2: O2[I] = A[I-2] + E[I]
  S3: A[I] = E[I+1] + C[I-1]
ENDDO|} );
    ( "fig1",
      {|DOACROSS I = 1, 100
  S1: B[I] = A[I-2] + E[I+1]
  S2: G[I-3] = A[I-1] * E[I+2]
  S3: A[I] = B[I] + C[I+3]
ENDDO|} );
    ( "qcd-shape",
      {|DOACROSS I = 1, 100
  S1: LNK[I] = LNK[I-1] * C[I] + E[I]
ENDDO|} );
  ]

let () =
  let machine = Isched_ir.Machine.make ~issue:4 ~nfu:1 () in
  let t =
    Table.create ~title:"one CPU vs n CPUs, 4-issue #FU=1, n = 100 iterations"
      ~columns:
        [
          ("kernel", Table.Left);
          ("serial", Table.Right);
          ("modulo 1-cpu (II)", Table.Right);
          ("doacross n-cpu", Table.Right);
          ("doacross P=8", Table.Right);
          ("winner", Table.Left);
        ]
  in
  let results =
    List.map
      (fun (name, src) ->
        let l = Isched_frontend.Parser.parse_loop ~name src in
        let prog = Isched_codegen.Codegen.compile l in
        let g = Isched_dfg.Dfg.build prog in
        let real_ops =
          Array.fold_left
            (fun acc ins -> if Isched_ir.Instr.is_sync ins then acc else acc + 1)
            0 prog.Isched_ir.Program.body
        in
        let serial = prog.Isched_ir.Program.n_iters * real_ops in
        let ms = Isched_core.Modulo_sched.run g machine in
        let modulo = Isched_core.Modulo_sched.total_time ms in
        let sched = Isched_core.Sync_sched.run g machine in
        let doacross = (Isched_sim.Timing.run sched).Isched_sim.Timing.finish in
        let doacross8 = (Isched_sim.Timing.run ~n_procs:8 sched).Isched_sim.Timing.finish in
        let winner = if modulo <= doacross then "1 pipelined CPU" else "n-CPU DOACROSS" in
        Table.add_row t
          [
            name;
            Table.fmt_int serial;
            Printf.sprintf "%d (II=%d)" modulo ms.Isched_core.Modulo_sched.ii;
            Table.fmt_int doacross;
            Table.fmt_int doacross8;
            winner;
          ];
        (name, sched))
      kernels
  in
  Table.print t;
  print_endline
    "\nThe recurrence-bound kernel needs no multiprocessor at all: software pipelining\n\
     on one 4-issue CPU already runs at the recurrence limit.  The wavefronts show why:\n";
  List.iter
    (fun (name, sched) ->
      print_endline ("--- " ^ name ^ " ---");
      print_string (Isched_sim.Viz.wavefront_ascii ~max_iters:12 sched);
      print_newline ())
    results
