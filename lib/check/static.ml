module Schedule = Isched_core.Schedule
module Lbd_model = Isched_core.Lbd_model
module Dfg = Isched_dfg.Dfg
module Program = Isched_ir.Program
module Machine = Isched_ir.Machine
module Instr = Isched_ir.Instr
module Fu = Isched_ir.Fu
module Span = Isched_obs.Span
module Counters = Isched_obs.Counters

let c_runs = Counters.counter "check.static.runs"
let c_violations = Counters.counter "check.static.violations"

(* Fatal well-formedness problems: anything that would make the later
   passes index out of bounds.  Reported alone — the rest of the checks
   are meaningless on such a record. *)
let fatal_shape (s : Schedule.t) =
  let p = s.Schedule.prog in
  let n = Array.length p.Program.body in
  let vs = ref [] in
  let bad what = vs := Violation.Malformed { what } :: !vs in
  if Array.length s.Schedule.cycle_of <> n then
    bad
      (Printf.sprintf "cycle_of has %d entries for a %d-instruction body"
         (Array.length s.Schedule.cycle_of) n);
  Array.iteri
    (fun i c -> if c < 0 then bad (Printf.sprintf "instruction %d at negative cycle %d" (i + 1) c))
    s.Schedule.cycle_of;
  List.rev !vs

(* Non-fatal well-formedness: [rows] must lay out exactly the
   instructions [cycle_of] places, and [length] must cover them. *)
let check_shape (s : Schedule.t) add =
  let p = s.Schedule.prog in
  let n = Array.length p.Program.body in
  let max_cycle = Array.fold_left max (-1) s.Schedule.cycle_of in
  let expected_length = if n = 0 then 0 else max_cycle + 1 in
  if s.Schedule.length <> expected_length then
    add
      (Violation.Malformed
         {
           what =
             Printf.sprintf "length is %d, the last scheduled cycle implies %d" s.Schedule.length
               expected_length;
         });
  if Array.length s.Schedule.rows <> s.Schedule.length then
    add
      (Violation.Malformed
         {
           what =
             Printf.sprintf "%d rows for a %d-cycle schedule" (Array.length s.Schedule.rows)
               s.Schedule.length;
         });
  let seen = Array.make n 0 in
  Array.iteri
    (fun c row ->
      Array.iter
        (fun i ->
          if i < 0 || i >= n then
            add (Violation.Malformed { what = Printf.sprintf "row %d holds body index %d" (c + 1) i })
          else begin
            seen.(i) <- seen.(i) + 1;
            if s.Schedule.cycle_of.(i) <> c then
              add
                (Violation.Malformed
                   {
                     what =
                       Printf.sprintf "instruction %d sits in row %d but cycle_of says %d" (i + 1)
                         (c + 1)
                         (s.Schedule.cycle_of.(i) + 1);
                   })
          end)
        row)
    s.Schedule.rows;
  Array.iteri
    (fun i k ->
      if k = 0 then
        add (Violation.Malformed { what = Printf.sprintf "instruction %d missing from rows" (i + 1) })
      else if k > 1 then
        add
          (Violation.Malformed
             { what = Printf.sprintf "instruction %d appears %d times in rows" (i + 1) k }))
    seen

(* Sync conditions, re-derived from the program's signal/wait tables so
   a scheduler fed a graph with dropped sync arcs cannot fool us. *)
let check_sync (s : Schedule.t) add =
  let p = s.Schedule.prog in
  let cy i = s.Schedule.cycle_of.(i) in
  Array.iter
    (fun (si : Program.signal_info) ->
      let needed = Instr.latency p.Program.body.(si.Program.src_instr) in
      let gap = cy si.Program.send_instr - cy si.Program.src_instr in
      if gap < needed then
        add
          (Violation.Premature_send
             {
               signal = si.Program.signal;
               label = si.Program.label;
               src_instr = si.Program.src_instr;
               send_instr = si.Program.send_instr;
               src_cycle = cy si.Program.src_instr;
               send_cycle = cy si.Program.send_instr;
               needed;
             }))
    p.Program.signals;
  Array.iter
    (fun (w : Program.wait_info) ->
      List.iter
        (fun m ->
          if cy m - cy w.Program.wait_instr < 1 then
            add
              (Violation.Hoisted_sink
                 {
                   wait_id = w.Program.wait;
                   signal = w.Program.signal;
                   distance = w.Program.distance;
                   protected_instr = m;
                   wait_instr = w.Program.wait_instr;
                   wait_cycle = cy w.Program.wait_instr;
                   sink_cycle = cy m;
                 }))
        (Dfg.protected_of_wait p w))
    p.Program.waits

let check_arcs (s : Schedule.t) (g : Dfg.t) add =
  let cy i = s.Schedule.cycle_of.(i) in
  for i = 0 to g.Dfg.n - 1 do
    Dfg.iter_succs g i (fun a ->
        let dst = Dfg.arc_node a in
        let lat = Dfg.arc_latency a in
        let gap = cy dst - cy i in
        if gap < lat then
          add (Violation.Broken_arc { kind = Dfg.arc_kind a; src = i; dst; latency = lat; gap }))
  done

(* Occupancy by direct counting over [cycle_of] — no reservation table,
   no [Resource] code shared. *)
let check_resources (s : Schedule.t) add =
  let p = s.Schedule.prog in
  let m = s.Schedule.machine in
  let n = Array.length p.Program.body in
  if n > 0 then begin
    let horizon =
      Array.fold_left max 0 s.Schedule.cycle_of + 1 + if m.Machine.pipelined then 0 else 8
    in
    let issued = Array.make horizon 0 in
    let used = Array.make_matrix Fu.count horizon 0 in
    Array.iteri
      (fun i ins ->
        let c0 = s.Schedule.cycle_of.(i) in
        issued.(c0) <- issued.(c0) + 1;
        match Instr.fu ins with
        | None -> ()
        | Some kind ->
          let busy = if m.Machine.pipelined then 1 else Fu.latency kind in
          for c = c0 to min (horizon - 1) (c0 + busy - 1) do
            used.(Fu.index kind).(c) <- used.(Fu.index kind).(c) + 1
          done)
      p.Program.body;
    Array.iteri
      (fun c k ->
        if k > m.Machine.issue_width then
          add (Violation.Issue_overflow { cycle = c; used = k; width = m.Machine.issue_width }))
      issued;
    List.iter
      (fun kind ->
        let avail = Machine.fu_count m kind in
        let row = used.(Fu.index kind) in
        Array.iteri
          (fun c k ->
            if k > avail then
              add (Violation.Fu_overflow { cycle = c; fu = kind; used = k; available = avail }))
          row)
      Fu.all
  end

(* The LBD spans the model reports must match the paper's
   (n/d)(i-j)+l accounting, recomputed here from the raw cycles. *)
let check_lbd (s : Schedule.t) add =
  let p = s.Schedule.prog in
  let n = p.Program.n_iters in
  let l = s.Schedule.length in
  let reports = Lbd_model.pairs s in
  Array.iter
    (fun (w : Program.wait_info) ->
      let i = s.Schedule.cycle_of.(p.Program.signals.(w.Program.signal).Program.send_instr) + 1 in
      let j = s.Schedule.cycle_of.(w.Program.wait_instr) + 1 in
      let d = max 1 w.Program.distance in
      let expected_paper = max l ((n / d * (i - j)) + l) in
      let expected_exact = ((n - 1) / d * max 0 (i - j + 1)) + l in
      match
        List.find_opt (fun (r : Lbd_model.pair_report) -> r.Lbd_model.wait_id = w.Program.wait) reports
      with
      | None ->
        add
          (Violation.Lbd_mismatch
             { wait_id = w.Program.wait; field = "pair report"; expected = 1; got = 0 })
      | Some r ->
        let field name expected got =
          if expected <> got then
            add (Violation.Lbd_mismatch { wait_id = w.Program.wait; field = name; expected; got })
        in
        field "send position i" i r.Lbd_model.send_pos;
        field "wait position j" j r.Lbd_model.wait_pos;
        field "is_lbd" (if i >= j then 1 else 0) (if r.Lbd_model.is_lbd then 1 else 0);
        field "paper_time" expected_paper r.Lbd_model.paper_time;
        field "exact_time" expected_exact r.Lbd_model.exact_time)
    p.Program.waits

let check_inner ?graph (s : Schedule.t) =
  Counters.incr c_runs;
  match fatal_shape s with
  | _ :: _ as fatal ->
    Counters.add c_violations (List.length fatal);
    Error fatal
  | [] ->
    let g = match graph with Some g -> g | None -> Dfg.build s.Schedule.prog in
    let vs = ref [] in
    let add v = vs := v :: !vs in
    check_shape s add;
    check_sync s add;
    check_arcs s g add;
    check_resources s add;
    check_lbd s add;
    (match List.rev !vs with
    | [] -> Ok ()
    | vs ->
      Counters.add c_violations (List.length vs);
      Error vs)

let check ?graph s =
  if Span.enabled () then
    Span.with_ ~name:"check.static"
      ~args:[ ("prog", s.Schedule.prog.Program.name) ]
      (fun () -> check_inner ?graph s)
  else check_inner ?graph s

let errors_to_string prog_name vs =
  vs
  |> List.map (fun v -> Format.asprintf "%a" Violation.pp_located (prog_name, v))
  |> String.concat "\n"
