(** Fault injection for the checker: deliberately corrupt a valid
    schedule in each violation class and prove the static analyzer
    catches it.  This is the checker's own differential test — a checker
    that misses an injected stale-data hoist is worse than none.

    Each fault is a minimal, targeted corruption built by editing the
    issue cycles and re-running {!Isched_core.Schedule.of_cycles}; a
    fault returns [None] when the schedule offers no opportunity for it
    (e.g. no synchronization pair to hoist). *)

module Schedule := Isched_core.Schedule
module Dfg := Isched_dfg.Dfg

type fault =
  | Hoist_wait  (** move a protected sink to its wait's cycle: stale-data hoist *)
  | Premature_send  (** issue a send at/before its dependence source *)
  | Drop_arc  (** violate one data/memory arc, as if the scheduler never saw it *)
  | Double_book_fu  (** pile more same-kind operations on a cycle than the machine has units *)
  | Overflow_issue  (** issue more instructions in one cycle than the width *)

val all : fault list
val name : fault -> string

(** [detects f v] — is [v] a violation of the class fault [f] plants? *)
val detects : fault -> Violation.t -> bool

(** [inject f s] — a corrupted copy of [s], or [None] when [s] has no
    opportunity for [f].  Never mutates [s]. *)
val inject : fault -> Schedule.t -> Schedule.t option

type outcome = {
  fault : fault;
  injected : bool;  (** false: no opportunity in this schedule *)
  detected : bool;  (** a violation of the fault's class was reported *)
  violations : Violation.t list;  (** everything the checker reported *)
}

(** [campaign ?graph s] — inject every applicable fault into [s] and
    check each corrupted schedule with {!Static.check} (against [graph],
    default the trusted rebuild).  An [outcome] with [injected = true]
    and [detected = false] is a checker bug. *)
val campaign : ?graph:Dfg.t -> Schedule.t -> outcome list
