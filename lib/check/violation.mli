(** The checker's violation taxonomy (see doc/checking.md).

    Every way a static schedule can be wrong is one constructor, carrying
    enough location context (body indices are 0-based internally, printed
    1-based like the paper's figures) to point at the offending
    instructions and cycles. *)

module Dfg := Isched_dfg.Dfg
module Fu := Isched_ir.Fu

type t =
  | Malformed of { what : string }
      (** the schedule record itself is inconsistent: [rows] and
          [cycle_of] disagree, an instruction is missing or duplicated,
          or [length] is wrong *)
  | Premature_send of {
      signal : int;
      label : string;  (** source-statement label, e.g. ["S3"] *)
      src_instr : int;
      send_instr : int;
      src_cycle : int;
      send_cycle : int;
      needed : int;  (** minimum cycles the send must trail its source *)
    }
      (** sync condition [Src -> Sig] broken: the send issues before its
          dependence source's result exists, so a consumer iteration can
          be released towards stale data *)
  | Hoisted_sink of {
      wait_id : int;
      signal : int;
      distance : int;
      protected_instr : int;  (** the memory operation hoisted above the wait *)
      wait_instr : int;
      wait_cycle : int;
      sink_cycle : int;
    }
      (** sync condition [Wat -> Snk] broken: a protected sink memory
          operation issues at or before its wait, i.e. it can read or
          overwrite data before the producing iteration signalled *)
  | Broken_arc of { kind : Dfg.arc_kind; src : int; dst : int; latency : int; gap : int }
      (** a data-flow-graph dependence arc is not separated by the
          producer's latency in scheduled order *)
  | Issue_overflow of { cycle : int; used : int; width : int }
      (** a cycle issues more instructions than the machine's width *)
  | Fu_overflow of { cycle : int; fu : Fu.kind; used : int; available : int }
      (** a cycle needs more copies of one function unit than the
          machine has (non-pipelined units occupy their unit for their
          whole latency) *)
  | Lbd_mismatch of { wait_id : int; field : string; expected : int; got : int }
      (** {!Isched_core.Lbd_model} reports a value for this pair that
          disagrees with the checker's independent [(n/d)(i-j)+l]
          accounting *)

(** Stable kebab-case class name, e.g. ["premature-send"] — the key of
    the taxonomy table in doc/checking.md and of the fault-injection
    detection matrix. *)
val class_name : t -> string

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** [pp_located ppf (prog_name, v)] — one-line diagnostic prefixed with
    the program it was found in. *)
val pp_located : Format.formatter -> string * t -> unit
