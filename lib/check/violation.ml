module Dfg = Isched_dfg.Dfg
module Fu = Isched_ir.Fu

type t =
  | Malformed of { what : string }
  | Premature_send of {
      signal : int;
      label : string;
      src_instr : int;
      send_instr : int;
      src_cycle : int;
      send_cycle : int;
      needed : int;
    }
  | Hoisted_sink of {
      wait_id : int;
      signal : int;
      distance : int;
      protected_instr : int;
      wait_instr : int;
      wait_cycle : int;
      sink_cycle : int;
    }
  | Broken_arc of { kind : Dfg.arc_kind; src : int; dst : int; latency : int; gap : int }
  | Issue_overflow of { cycle : int; used : int; width : int }
  | Fu_overflow of { cycle : int; fu : Fu.kind; used : int; available : int }
  | Lbd_mismatch of { wait_id : int; field : string; expected : int; got : int }

let class_name = function
  | Malformed _ -> "malformed-schedule"
  | Premature_send _ -> "premature-send"
  | Hoisted_sink _ -> "hoisted-sink"
  | Broken_arc _ -> "broken-arc"
  | Issue_overflow _ -> "issue-overflow"
  | Fu_overflow _ -> "fu-overflow"
  | Lbd_mismatch _ -> "lbd-mismatch"

let arc_kind_name = function
  | Dfg.Data -> "data"
  | Dfg.Mem -> "memory"
  | Dfg.Sync_src -> "sync-source"
  | Dfg.Sync_snk -> "sync-sink"

let pp ppf v =
  match v with
  | Malformed { what } -> Format.fprintf ppf "[malformed-schedule] %s" what
  | Premature_send { signal; label; src_instr; send_instr; src_cycle; send_cycle; needed } ->
    Format.fprintf ppf
      "[premature-send] Send_Signal(%s) (signal %d, instr %d, cycle %d) issues only %d cycle(s) \
       after its source store (instr %d, cycle %d); %d needed — a consumer can be released to \
       stale data"
      label signal (send_instr + 1) (send_cycle + 1) (send_cycle - src_cycle) (src_instr + 1)
      (src_cycle + 1) needed
  | Hoisted_sink { wait_id; signal; distance; protected_instr; wait_instr; wait_cycle; sink_cycle }
    ->
    Format.fprintf ppf
      "[hoisted-sink] sink instr %d (cycle %d) of wait %d on signal %d (distance %d) issues at \
       or before its Wait_Signal (instr %d, cycle %d) — it can access stale data"
      (protected_instr + 1) (sink_cycle + 1) wait_id signal distance (wait_instr + 1)
      (wait_cycle + 1)
  | Broken_arc { kind; src; dst; latency; gap } ->
    Format.fprintf ppf
      "[broken-arc] %s dependence %d -> %d needs a gap of %d cycle(s), scheduled gap is %d"
      (arc_kind_name kind) (src + 1) (dst + 1) latency gap
  | Issue_overflow { cycle; used; width } ->
    Format.fprintf ppf "[issue-overflow] cycle %d issues %d instructions, machine width is %d"
      (cycle + 1) used width
  | Fu_overflow { cycle; fu; used; available } ->
    Format.fprintf ppf "[fu-overflow] cycle %d needs %d %s unit(s), machine has %d" (cycle + 1)
      used (Fu.name fu) available
  | Lbd_mismatch { wait_id; field; expected; got } ->
    Format.fprintf ppf
      "[lbd-mismatch] pair of wait %d: Lbd_model reports %s = %d, independent (n/d)(i-j)+l \
       accounting gives %d"
      wait_id field got expected

let to_string v = Format.asprintf "%a" pp v
let pp_located ppf (prog, v) = Format.fprintf ppf "%s: %a" prog pp v
