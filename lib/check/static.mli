(** Static schedule-validity analyzer: an implementation of the paper's
    legality conditions that is {e independent} of the machinery that
    produced the schedule.

    For any {!Isched_core.Schedule.t} it verifies:

    + the schedule record is well-formed ([rows]/[cycle_of] agree, every
      body instruction scheduled exactly once);
    + the synchronization conditions in {e scheduled} order, re-derived
      from the program's signal/wait tables (not from whatever graph the
      scheduler was given): every [Send] trails its dependence source by
      the source's latency ([Src -> Sig]), and every instruction a wait
      protects issues strictly after the wait ([Wat -> Snk]);
    + every data/memory dependence arc of the data-flow graph is
      separated by the producer's latency;
    + no cycle over-subscribes issue slots or function units — occupancy
      is re-derived here by direct counting, independent of
      {!Isched_core.Resource}'s reservation tables;
    + the {!Isched_core.Lbd_model} pair reports match an independent
      [(n/d)(i-j)+l] accounting.

    All violations are collected (not just the first), each carrying
    location context — see {!Violation}. *)

module Schedule := Isched_core.Schedule
module Dfg := Isched_dfg.Dfg

(** [check ?graph s] — [Ok ()] or every violation found.

    [graph] defaults to a fresh [Dfg.build] of the schedule's own
    program: the trusted reconstruction.  Pass the scheduler's graph
    only when you deliberately want to check against it (the default is
    what catches a scheduler that was fed a graph with dropped arcs). *)
val check : ?graph:Dfg.t -> Schedule.t -> (unit, Violation.t list) result

(** [errors_to_string prog_name vs] — the violations as located
    one-per-line diagnostics. *)
val errors_to_string : string -> Violation.t list -> string
