module Schedule = Isched_core.Schedule
module Program = Isched_ir.Program
module Value = Isched_sim.Value
module Timing = Isched_sim.Timing
module Memory = Isched_exec.Memory
module Readlog = Isched_exec.Readlog
module Prog_interp = Isched_exec.Prog_interp
module Span = Isched_obs.Span
module Counters = Isched_obs.Counters

let c_runs = Counters.counter "check.oracle.runs"
let c_failures = Counters.counter "check.oracle.failures"

(* Stale reads can number in the thousands on a badly corrupted
   schedule; the diagnostic keeps the totals and shows the first few. *)
let max_shown = 5

let differential_inner (s : Schedule.t) =
  Counters.incr c_runs;
  let p = s.Schedule.prog in
  let msgs = ref [] in
  let add m = msgs := m :: !msgs in
  let v = Value.run s in
  let seq_log = Readlog.create () in
  let seq_mem = Prog_interp.run ~log:seq_log p in
  if not (Memory.equal seq_mem v.Value.memory) then
    add "final memory differs from the sequential reference";
  let stale = Readlog.compare_logs ~reference:seq_log ~actual:v.Value.log in
  (match stale with
  | [] -> ()
  | _ ->
    add (Printf.sprintf "%d stale read(s): parallel execution observed wrong write generations"
           (List.length stale));
    List.iteri
      (fun i m -> if i < max_shown then add (Format.asprintf "  %a" Readlog.pp_mismatch m))
      stale);
  List.iteri (fun i r -> if i < max_shown then add (Printf.sprintf "write race: %s" r)) v.Value.races;
  if List.length v.Value.races > max_shown then
    add (Printf.sprintf "... and %d more race(s)" (List.length v.Value.races - max_shown));
  (match Timing.run s with
  | t ->
    if t.Timing.finish <> v.Value.finish then
      add
        (Printf.sprintf "timing simulator finishes at cycle %d, value simulator at %d"
           t.Timing.finish v.Value.finish)
  | exception (Timing.Invalid_schedule _ as e) -> add (Printexc.to_string e));
  match List.rev !msgs with
  | [] -> Ok ()
  | msgs ->
    Counters.incr c_failures;
    Error msgs

let differential (s : Schedule.t) =
  if Span.enabled () then
    Span.with_ ~name:"check.oracle"
      ~args:[ ("prog", s.Schedule.prog.Program.name) ]
      (fun () -> differential_inner s)
  else differential_inner s

let check_schedule ?graph (s : Schedule.t) =
  let static =
    match Static.check ?graph s with
    | Ok () -> []
    | Error vs ->
      List.map (fun v -> Format.asprintf "%a" Violation.pp_located (s.Schedule.prog.Program.name, v)) vs
  in
  let dynamic = match differential s with Ok () -> [] | Error ms -> ms in
  match static @ dynamic with [] -> Ok () | msgs -> Error msgs
