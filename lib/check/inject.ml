module Schedule = Isched_core.Schedule
module Dfg = Isched_dfg.Dfg
module Program = Isched_ir.Program
module Machine = Isched_ir.Machine
module Instr = Isched_ir.Instr
module Fu = Isched_ir.Fu
module Span = Isched_obs.Span
module Counters = Isched_obs.Counters

let c_injected = Counters.counter "check.inject.injected"
let c_detected = Counters.counter "check.inject.detected"
let c_missed = Counters.counter "check.inject.missed"

type fault = Hoist_wait | Premature_send | Drop_arc | Double_book_fu | Overflow_issue

let all = [ Hoist_wait; Premature_send; Drop_arc; Double_book_fu; Overflow_issue ]

let name = function
  | Hoist_wait -> "hoist-wait-past-sink"
  | Premature_send -> "premature-send"
  | Drop_arc -> "drop-dependence-arc"
  | Double_book_fu -> "double-book-fu"
  | Overflow_issue -> "overflow-issue-width"

let detects fault (v : Violation.t) =
  match (fault, v) with
  | Hoist_wait, Violation.Hoisted_sink _ -> true
  | Premature_send, Violation.Premature_send _ -> true
  | Drop_arc, Violation.Broken_arc { kind = Dfg.Data | Dfg.Mem; _ } -> true
  | Double_book_fu, Violation.Fu_overflow _ -> true
  | Overflow_issue, Violation.Issue_overflow _ -> true
  | _ -> false

let rebuilt (s : Schedule.t) cycle_of = Schedule.of_cycles s.Schedule.prog s.Schedule.machine cycle_of

let inject fault (s : Schedule.t) =
  let p = s.Schedule.prog in
  let cycle_of () = Array.copy s.Schedule.cycle_of in
  match fault with
  | Hoist_wait ->
    (* The motivating bug of the paper's Section 1: the sink memory
       operation runs no later than its wait, so it can read data the
       producing iteration has not signalled yet. *)
    if Array.length p.Program.waits = 0 then None
    else begin
      let w = p.Program.waits.(0) in
      let c = cycle_of () in
      c.(w.Program.snk_instr) <- c.(w.Program.wait_instr);
      Some (rebuilt s c)
    end
  | Premature_send ->
    if Array.length p.Program.signals = 0 then None
    else begin
      let si = p.Program.signals.(0) in
      let c = cycle_of () in
      c.(si.Program.send_instr) <- max 0 (c.(si.Program.src_instr) - 1);
      Some (rebuilt s c)
    end
  | Drop_arc -> (
    (* Violate the first data/memory arc, exactly what a scheduler fed a
       graph missing that arc could produce. *)
    let g = Dfg.build p in
    let found = ref None in
    for i = 0 to g.Dfg.n - 1 do
      List.iter
        (fun (a : Dfg.arc) ->
          match a.Dfg.kind with
          | (Dfg.Data | Dfg.Mem) when !found = None -> found := Some a
          | _ -> ())
        (Dfg.succs_list g i)
    done;
    match !found with
    | None -> None
    | Some a ->
      let c = cycle_of () in
      c.(a.Dfg.dst) <- c.(a.Dfg.src);
      Some (rebuilt s c))
  | Double_book_fu -> (
    let m = s.Schedule.machine in
    (* The first unit kind with more users than copies: schedule one
       more user than the machine has units onto the same cycle. *)
    let users = Array.make Fu.count [] in
    Array.iteri
      (fun i ins ->
        match Instr.fu ins with
        | Some k -> users.(Fu.index k) <- i :: users.(Fu.index k)
        | None -> ())
      p.Program.body;
    let pick =
      List.find_opt
        (fun kind -> List.length users.(Fu.index kind) > Machine.fu_count m kind)
        Fu.all
    in
    match pick with
    | None -> None
    | Some kind ->
      let avail = Machine.fu_count m kind in
      let victims = List.filteri (fun i _ -> i <= avail) users.(Fu.index kind) in
      let c = cycle_of () in
      let target = List.fold_left (fun acc i -> max acc c.(i)) 0 victims in
      List.iter (fun i -> c.(i) <- target) victims;
      Some (rebuilt s c))
  | Overflow_issue ->
    let n = Array.length p.Program.body in
    let width = s.Schedule.machine.Machine.issue_width in
    if n <= width then None
    else begin
      let c = cycle_of () in
      for i = 0 to width do
        c.(i) <- 0
      done;
      Some (rebuilt s c)
    end

type outcome = {
  fault : fault;
  injected : bool;
  detected : bool;
  violations : Violation.t list;
}

let campaign_inner ?graph (s : Schedule.t) =
  let graph = match graph with Some g -> g | None -> Dfg.build s.Schedule.prog in
  List.map
    (fun fault ->
      match inject fault s with
      | None -> { fault; injected = false; detected = false; violations = [] }
      | Some corrupted ->
        Counters.incr c_injected;
        let violations =
          match Static.check ~graph corrupted with Ok () -> [] | Error vs -> vs
        in
        let detected = List.exists (detects fault) violations in
        Counters.incr (if detected then c_detected else c_missed);
        { fault; injected = true; detected; violations })
    all

let campaign ?graph s =
  if Span.enabled () then
    Span.with_ ~name:"check.inject"
      ~args:[ ("prog", s.Schedule.prog.Program.name) ]
      (fun () -> campaign_inner ?graph s)
  else campaign_inner ?graph s
