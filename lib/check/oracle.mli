(** Differential oracle: execute the schedule and compare against the
    sequential reference interpreter, independently of the static
    analyzer.

    The value simulator ({!Isched_sim.Value}) runs the schedule with
    real data through shared memory; {!Isched_exec.Prog_interp} runs the
    same three-address program sequentially.  A legal schedule must
    reproduce the reference's final memory, observe no stale read
    (every read sees the same write generation as the reference), and
    race on no cell.  The fast timing engine ({!Isched_sim.Timing}) is
    cross-checked against the value simulator's cycle count, and its
    {!Isched_sim.Timing.Invalid_schedule} signal is surfaced as a
    diagnostic instead of a crash. *)

module Schedule := Isched_core.Schedule
module Dfg := Isched_dfg.Dfg

(** [differential s] — [Ok ()] when the parallel execution of [s] is
    observably the sequential execution; [Error msgs] lists every
    deviation (memory diff, stale reads with their locations, races,
    timing/value disagreement). *)
val differential : Schedule.t -> (unit, string list) result

(** [check_schedule ?graph s] — the full obligation: {!Static.check}
    then {!differential}; all failures collected, static violations
    rendered as located diagnostics. *)
val check_schedule : ?graph:Dfg.t -> Schedule.t -> (unit, string list) result
