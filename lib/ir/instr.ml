type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Shl
  | Shr
  | FAdd
  | FSub
  | FMul
  | FDiv
  | CmpLt
  | CmpLe
  | CmpGt
  | CmpGe
  | CmpEq
  | CmpNe

type t =
  | Bin of { op : binop; dst : int; a : Operand.t; b : Operand.t }
  | Select of { dst : int; cond : Operand.t; if_true : Operand.t; if_false : Operand.t }
  | Load of { dst : int; base : string; addr : Operand.t }
  | Store of { base : string; addr : Operand.t; src : Operand.t }
  | Load_scalar of { dst : int; name : string }
  | Store_scalar of { name : string; src : Operand.t }
  | Send of { signal : int }
  | Wait of { wait : int }

let binop_fu = function
  | Add | Sub | CmpLt | CmpLe | CmpGt | CmpGe | CmpEq | CmpNe -> Fu.Integer
  | Shl | Shr -> Fu.Shifter
  | Mul | FMul -> Fu.Multiplier
  | Div | FDiv -> Fu.Divider
  | FAdd | FSub -> Fu.Float

let fu = function
  | Bin { op; _ } -> Some (binop_fu op)
  | Select _ -> Some Fu.Integer
  | Load _ | Store _ | Load_scalar _ | Store_scalar _ -> Some Fu.Load_store
  | Send _ | Wait _ -> None

let latency i = match fu i with None -> 1 | Some k -> Fu.latency k

let def = function
  | Bin { dst; _ } | Select { dst; _ } | Load { dst; _ } | Load_scalar { dst; _ } -> Some dst
  | Store _ | Store_scalar _ | Send _ | Wait _ -> None

let uses i =
  let of_op o = match Operand.reg o with Some r -> [ r ] | None -> [] in
  match i with
  | Bin { a; b; _ } -> of_op a @ of_op b
  | Select { cond; if_true; if_false; _ } -> of_op cond @ of_op if_true @ of_op if_false
  | Load { addr; _ } -> of_op addr
  | Store { addr; src; _ } -> of_op addr @ of_op src
  | Load_scalar _ -> []
  | Store_scalar { src; _ } -> of_op src
  | Send _ | Wait _ -> []

(* Allocation-free twin of [uses], same visit order: the DFG builder
   walks every instruction's uses on the corpus hot path. *)
let iter_uses i f =
  let op o = match Operand.reg o with Some r -> f r | None -> () in
  match i with
  | Bin { a; b; _ } ->
    op a;
    op b
  | Select { cond; if_true; if_false; _ } ->
    op cond;
    op if_true;
    op if_false
  | Load { addr; _ } -> op addr
  | Store { addr; src; _ } ->
    op addr;
    op src
  | Load_scalar _ -> ()
  | Store_scalar { src; _ } -> op src
  | Send _ | Wait _ -> ()

let is_sync = function Send _ | Wait _ -> true | _ -> false

let is_mem = function
  | Load _ | Store _ | Load_scalar _ | Store_scalar _ -> true
  | Bin _ | Select _ | Send _ | Wait _ -> false

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Shl -> "<<"
  | Shr -> ">>"
  | FAdd -> "+."
  | FSub -> "-."
  | FMul -> "*."
  | FDiv -> "/."
  | CmpLt -> "<"
  | CmpLe -> "<="
  | CmpGt -> ">"
  | CmpGe -> ">="
  | CmpEq -> "=="
  | CmpNe -> "!="

let pp_full ~signal_name ~wait_name ppf i =
  let os = Operand.to_string in
  match i with
  | Bin { op; dst; a; b } ->
    Format.fprintf ppf "t%d := %s %s %s" dst (os a) (binop_name op) (os b)
  | Select { dst; cond; if_true; if_false } ->
    Format.fprintf ppf "t%d := %s ? %s : %s" dst (os cond) (os if_true) (os if_false)
  | Load { dst; base; addr } -> Format.fprintf ppf "t%d := %s[%s]" dst base (os addr)
  | Store { base; addr; src } -> Format.fprintf ppf "%s[%s] := %s" base (os addr) (os src)
  | Load_scalar { dst; name } -> Format.fprintf ppf "t%d := %s" dst name
  | Store_scalar { name; src } -> Format.fprintf ppf "%s := %s" name (os src)
  | Send { signal } -> Format.fprintf ppf "Send_Signal(%s)" (signal_name signal)
  | Wait { wait } -> Format.fprintf ppf "Wait_Signal(%s)" (wait_name wait)

let pp ppf i =
  pp_full
    ~signal_name:(fun s -> Printf.sprintf "sig%d" s)
    ~wait_name:(fun w -> Printf.sprintf "wat%d" w)
    ppf i

let to_string i = Format.asprintf "%a" pp i

let equal a b = a = b
