type t = { issue_width : int; fu_counts : int array; pipelined : bool }

let make ?(pipelined = false) ~issue ~nfu () =
  { issue_width = issue; fu_counts = Array.make Fu.count nfu; pipelined }

let fu_count m k = m.fu_counts.(Fu.index k)

let with_fu m k n =
  let fu_counts = Array.copy m.fu_counts in
  fu_counts.(Fu.index k) <- n;
  { m with fu_counts }

let name m =
  let counts = Array.to_list m.fu_counts in
  let uniform =
    match counts with [] -> None | c :: rest -> if List.for_all (( = ) c) rest then Some c else None
  in
  match uniform with
  | Some c -> Printf.sprintf "%d-issue(#FU=%d)" m.issue_width c
  | None ->
    let per_unit =
      List.map (fun k -> Printf.sprintf "%s=%d" (Fu.name k) (fu_count m k)) Fu.all
    in
    Printf.sprintf "%d-issue(%s)" m.issue_width (String.concat "," per_unit)

let paper_configs =
  [
    ("2-issue(#FU=1)", make ~issue:2 ~nfu:1 ());
    ("2-issue(#FU=2)", make ~issue:2 ~nfu:2 ());
    ("4-issue(#FU=1)", make ~issue:4 ~nfu:1 ());
    ("4-issue(#FU=2)", make ~issue:4 ~nfu:2 ());
  ]

let validate m =
  if m.issue_width <= 0 then invalid_arg "Machine.validate: issue width must be positive";
  Array.iteri
    (fun i c ->
      if c <= 0 then
        invalid_arg
          (Printf.sprintf "Machine.validate: %s count must be positive" (Fu.name (Fu.of_index i))))
    m.fu_counts

let pp ppf m = Format.pp_print_string ppf (name m)
