type t = Reg of int | Imm of int | Fimm of float | Ivar

let equal a b =
  match (a, b) with
  | Reg x, Reg y -> x = y
  | Imm x, Imm y -> x = y
  | Fimm x, Fimm y -> Float.equal x y
  | Ivar, Ivar -> true
  | (Reg _ | Imm _ | Fimm _ | Ivar), _ -> false

let compare = Stdlib.compare

let reg = function Reg r -> Some r | Imm _ | Fimm _ | Ivar -> None

let to_string = function
  | Reg r -> Printf.sprintf "t%d" r
  | Imm i -> string_of_int i
  | Fimm f -> Printf.sprintf "%g" f
  | Ivar -> "I"

let pp ppf o = Format.pp_print_string ppf (to_string o)
