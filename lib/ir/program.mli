(** A compiled DOACROSS loop body: one iteration of straight-line
    three-address code plus the synchronization metadata the schedulers
    and the simulator need.

    Every loop-carried dependence that must be enforced appears as a
    (signal, wait) pair: the signal is posted by a [Send] instruction
    placed after the dependence-source memory operation, and each wait
    blocks a [Wait] instruction placed before its dependence-sink memory
    operation.  One signal can serve several waits (the paper's Fig. 1:
    [Send_Signal(S3)] satisfies both [Wait_Signal(S3, I-2)] and
    [Wait_Signal(S3, I-1)]). *)

type dep_kind = Flow | Anti | Output

(** Lexical direction of the dependence: [LFD] when the source statement
    is textually before the sink statement, [LBD] otherwise (including
    source and sink in the same statement). *)
type lexical = LFD | LBD

type signal_info = {
  signal : int;  (** signal id, the index into {!t.signals} *)
  src_stmt : int;  (** statement id of the dependence source *)
  src_instr : int;  (** body index of the Src memory operation *)
  send_instr : int;  (** body index of the [Send] instruction *)
  label : string;  (** source-statement label, e.g. ["S3"] *)
}

type wait_info = {
  wait : int;  (** wait id, the index into {!t.waits} *)
  signal : int;  (** the signal this wait blocks on *)
  distance : int;  (** dependence distance [d >= 1] *)
  snk_stmt : int;  (** statement id of the dependence sink *)
  snk_instr : int;  (** body index of the Snk memory operation *)
  wait_instr : int;  (** body index of the [Wait] instruction *)
  kind : dep_kind;
  lexical : lexical;
  array : string;  (** the array (or scalar) carrying the dependence *)
}

(** Disambiguation record for a memory operation: the element index is
    [coef * I + offset] when [affine] is [Some (coef, offset)];
    [None] means the subscript is not analyzable (conservative aliasing
    in the data-flow graph). *)
type mem_ref = { base : string; affine : (int * int) option }

type t = {
  name : string;  (** loop identifier for reports *)
  body : Instr.t array;  (** original (pre-scheduling) instruction order *)
  signals : signal_info array;  (** indexed by signal id *)
  waits : wait_info array;  (** indexed by wait id *)
  mem : mem_ref option array;  (** per body index; [Some] iff array memory op *)
  stmt_of : int array;  (** source statement id per body index *)
  n_regs : int;  (** number of virtual registers *)
  lo : int;  (** first value of the loop index [I] *)
  n_iters : int;  (** iteration count [n] of the DOACROSS loop *)
  source_lines : int;  (** source lines of the loop (Table 1 statistics) *)
}

(** [validate p] checks internal consistency: index ranges, distances
    [>= 1], the sync conditions in the *original* order (send after
    source, wait before sink), and single assignment of virtual
    registers.  Raises [Invalid_argument] describing the first
    violation. *)
val validate : t -> unit

(** [signal_label p s] is e.g. ["S3"]. *)
val signal_label : t -> int -> string

(** [wait_label p w] is e.g. ["S3, I-2"]. *)
val wait_label : t -> int -> string

(** Numbers of lexically-forward / backward enforced dependences. *)
val n_lfd : t -> int

val n_lbd : t -> int

(** [waits_of_signal p s] lists the waits blocked on signal [s]. *)
val waits_of_signal : t -> int -> wait_info list

(** [pp ppf p] prints the numbered body in the style of the paper's
    Fig. 2 (1-based instruction numbers). *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string

(** [scalars p] is the sorted list of scalar names the body touches. *)
val scalars : t -> string list

(** [arrays p] is the sorted list of array names the body touches. *)
val arrays : t -> string list
