(** Three-address instructions in the DLX-like intermediate form the
    schedulers operate on (the paper's Fig. 2).

    One iteration of a DOACROSS loop compiles to a straight-line array of
    these instructions; control dependences inside the body are handled by
    if-conversion ({!Select}), matching the paper's basic-block scheduling
    setting.  [Send] and [Wait] are the synchronization operations; their
    pair identity and dependence distance live in {!Program}. *)

(** Binary operators, each mapped to one function-unit kind:
    [Add]/[Sub] and the comparisons run on the integer unit, [Shl]/[Shr]
    on the shifter, [Mul]/[FMul] on the multiplier, [Div]/[FDiv] on the
    divider and [FAdd]/[FSub] on the floating-point unit. *)
type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Shl
  | Shr
  | FAdd
  | FSub
  | FMul
  | FDiv
  | CmpLt
  | CmpLe
  | CmpGt
  | CmpGe
  | CmpEq
  | CmpNe

type t =
  | Bin of { op : binop; dst : int; a : Operand.t; b : Operand.t }
  | Select of { dst : int; cond : Operand.t; if_true : Operand.t; if_false : Operand.t }
      (** if-converted conditional move (integer unit) *)
  | Load of { dst : int; base : string; addr : Operand.t }
      (** [dst := base[addr]]; [addr] is a byte offset *)
  | Store of { base : string; addr : Operand.t; src : Operand.t }
  | Load_scalar of { dst : int; name : string }  (** shared-memory scalar read *)
  | Store_scalar of { name : string; src : Operand.t }
  | Send of { signal : int }  (** [Send_Signal]: posts [signal] for this iteration *)
  | Wait of { wait : int }
      (** [Wait_Signal]: blocks until the wait's signal was posted by
          iteration [I - distance] (see {!Program.wait_info}) *)

(** [fu i] is the function unit [i] executes on; [None] for [Send]/[Wait],
    which consume only an issue slot. *)
val fu : t -> Fu.kind option

(** [latency i] is the number of cycles before [i]'s result may be
    consumed (1 for units without a latency entry, including sync ops). *)
val latency : t -> int

(** [def i] is the virtual register defined by [i], if any. *)
val def : t -> int option

(** [uses i] lists the virtual registers read by [i]. *)
val uses : t -> int list

(** [iter_uses i f] applies [f] to every register [i] reads, in the same
    order as {!uses}, without allocating. *)
val iter_uses : t -> (int -> unit) -> unit

(** [is_sync i] is true for [Send] and [Wait]. *)
val is_sync : t -> bool

(** [is_mem i] is true for the four memory operations. *)
val is_mem : t -> bool

(** [binop_name op] is the operator's print form, e.g. ["+"], ["<<"]. *)
val binop_name : binop -> string

(** [binop_fu op] maps an operator to its function unit. *)
val binop_fu : binop -> Fu.kind

(** Pretty-printing in the style of the paper's Fig. 2; [pp_full]
    additionally resolves sync operand text via the callbacks. *)
val pp : Format.formatter -> t -> unit

val pp_full :
  signal_name:(int -> string) -> wait_name:(int -> string) -> Format.formatter -> t -> unit

val to_string : t -> string
val equal : t -> t -> bool
