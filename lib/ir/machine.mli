(** Configuration of one superscalar processor of the multiprocessor.

    The paper's experiments use four configurations: 2- or 4-issue, with
    one or two copies of every function unit (Section 4.2, cases 1-4).
    [pipelined] selects whether a multi-cycle unit accepts a new operation
    every cycle ([true]) or is busy for its whole latency ([false], the
    default, matching simple 1990s units). *)

type t = {
  issue_width : int;  (** instructions issued per cycle *)
  fu_counts : int array;  (** copies per {!Fu.kind}, indexed by {!Fu.index} *)
  pipelined : bool;
}

(** [make ~issue ~nfu ()] builds the paper's configuration with [nfu]
    copies of every unit; [pipelined] defaults to [false]. *)
val make : ?pipelined:bool -> issue:int -> nfu:int -> unit -> t

(** [fu_count m k] is the number of copies of unit [k]. *)
val fu_count : t -> Fu.kind -> int

(** [with_fu m k n] overrides the count of one unit kind. *)
val with_fu : t -> Fu.kind -> int -> t

(** The four machine configurations of Table 2, in paper order:
    (2,1), (2,2), (4,1), (4,2) as (issue, #FU). *)
val paper_configs : (string * t) list

(** [name m] is a short identifier such as ["2-issue(#FU=1)"]. *)
val name : t -> string

(** [validate m] raises [Invalid_argument] if the configuration is
    degenerate (non-positive issue width or unit counts). *)
val validate : t -> unit

val pp : Format.formatter -> t -> unit
