(** Operands of three-address instructions.

    Registers are virtual (the code generator emits one definition per
    temporary per iteration, like the [t1..t21] temporaries of the
    paper's Fig. 2); [Ivar] is the loop index of the current iteration,
    a per-processor constant under the one-iteration-per-processor
    execution model. *)

type t =
  | Reg of int  (** virtual register [t<n>] *)
  | Imm of int  (** integer immediate *)
  | Fimm of float  (** floating-point immediate *)
  | Ivar  (** the loop induction variable [I] *)

val equal : t -> t -> bool
val compare : t -> t -> int

(** [reg o] is [Some r] when [o] is [Reg r]. *)
val reg : t -> int option

val pp : Format.formatter -> t -> unit
val to_string : t -> string
