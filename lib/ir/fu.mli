(** Function-unit model of the target superscalar processor.

    The paper's machine (Section 4.2) has six function-unit types:
    load/store, integer, floating-point, multiplier, divider and shifter.
    Multiplies take 3 cycles and divides 6; everything else takes one
    cycle.  Synchronization operations occupy an issue slot but no
    function unit. *)

type kind =
  | Load_store
  | Integer
  | Float
  | Multiplier
  | Divider
  | Shifter

(** All unit kinds, in a fixed display order. *)
val all : kind list

(** Short display name, e.g. ["ld/st"]. *)
val name : kind -> string

(** Result latency in cycles: 3 for {!Multiplier}, 6 for {!Divider},
    1 otherwise. *)
val latency : kind -> int

(** Total number of kinds (for array-indexed resource tables). *)
val count : int

(** Dense index of a kind in [\[0, count)]. *)
val index : kind -> int

(** Inverse of {!index}. Raises [Invalid_argument] out of range. *)
val of_index : int -> kind

val equal : kind -> kind -> bool
val pp : Format.formatter -> kind -> unit
