type kind =
  | Load_store
  | Integer
  | Float
  | Multiplier
  | Divider
  | Shifter

let all = [ Load_store; Integer; Float; Multiplier; Divider; Shifter ]

let name = function
  | Load_store -> "ld/st"
  | Integer -> "int"
  | Float -> "fp"
  | Multiplier -> "mul"
  | Divider -> "div"
  | Shifter -> "shift"

let latency = function
  | Multiplier -> 3
  | Divider -> 6
  | Load_store | Integer | Float | Shifter -> 1

let count = 6

let index = function
  | Load_store -> 0
  | Integer -> 1
  | Float -> 2
  | Multiplier -> 3
  | Divider -> 4
  | Shifter -> 5

let of_index = function
  | 0 -> Load_store
  | 1 -> Integer
  | 2 -> Float
  | 3 -> Multiplier
  | 4 -> Divider
  | 5 -> Shifter
  | n -> invalid_arg (Printf.sprintf "Fu.of_index: %d" n)

let equal a b = index a = index b
let pp ppf k = Format.pp_print_string ppf (name k)
