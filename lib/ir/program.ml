type dep_kind = Flow | Anti | Output
type lexical = LFD | LBD

type signal_info = {
  signal : int;
  src_stmt : int;
  src_instr : int;
  send_instr : int;
  label : string;
}

type wait_info = {
  wait : int;
  signal : int;
  distance : int;
  snk_stmt : int;
  snk_instr : int;
  wait_instr : int;
  kind : dep_kind;
  lexical : lexical;
  array : string;
}

type mem_ref = { base : string; affine : (int * int) option }

type t = {
  name : string;
  body : Instr.t array;
  signals : signal_info array;
  waits : wait_info array;
  mem : mem_ref option array;
  stmt_of : int array;
  n_regs : int;
  lo : int;
  n_iters : int;
  source_lines : int;
}

let fail fmt = Printf.ksprintf invalid_arg fmt

let validate p =
  let n = Array.length p.body in
  if Array.length p.mem <> n then fail "Program %s: mem table length mismatch" p.name;
  if Array.length p.stmt_of <> n then fail "Program %s: stmt table length mismatch" p.name;
  if p.n_iters < 1 then fail "Program %s: n_iters must be >= 1" p.name;
  (* Register sanity: single assignment, uses within range. *)
  let defined = Array.make (max 1 p.n_regs) false in
  Array.iteri
    (fun i ins ->
      (match Instr.def ins with
      | Some d ->
        if d < 0 || d >= p.n_regs then fail "Program %s: instr %d defines t%d out of range" p.name (i + 1) d;
        if defined.(d) then fail "Program %s: t%d defined twice (instr %d)" p.name d (i + 1);
        defined.(d) <- true
      | None -> ());
      List.iter
        (fun u ->
          if u < 0 || u >= p.n_regs then fail "Program %s: instr %d uses t%d out of range" p.name (i + 1) u;
          if not defined.(u) then
            fail "Program %s: instr %d uses t%d before its definition" p.name (i + 1) u)
        (Instr.uses ins);
      match ins with
      | Instr.Load _ | Instr.Store _ ->
        if p.mem.(i) = None then fail "Program %s: instr %d lacks a mem_ref" p.name (i + 1)
      | _ -> ())
    p.body;
  (* Sync tables. *)
  Array.iteri
    (fun s (info : signal_info) ->
      if info.signal <> s then fail "Program %s: signal %d misindexed" p.name s;
      if info.src_instr < 0 || info.src_instr >= n then fail "Program %s: signal %d src_instr" p.name s;
      if info.send_instr < 0 || info.send_instr >= n then fail "Program %s: signal %d send_instr" p.name s;
      (match p.body.(info.send_instr) with
      | Instr.Send { signal } when signal = s -> ()
      | _ -> fail "Program %s: signal %d send_instr does not hold Send" p.name s);
      if info.send_instr <= info.src_instr then
        fail "Program %s: signal %d: Send precedes its Src in program order" p.name s)
    p.signals;
  Array.iteri
    (fun w (info : wait_info) ->
      if info.wait <> w then fail "Program %s: wait %d misindexed" p.name w;
      if info.signal < 0 || info.signal >= Array.length p.signals then
        fail "Program %s: wait %d references unknown signal" p.name w;
      if info.distance < 1 then fail "Program %s: wait %d distance must be >= 1" p.name w;
      if info.snk_instr < 0 || info.snk_instr >= n then fail "Program %s: wait %d snk_instr" p.name w;
      if info.wait_instr < 0 || info.wait_instr >= n then fail "Program %s: wait %d wait_instr" p.name w;
      (match p.body.(info.wait_instr) with
      | Instr.Wait { wait } when wait = w -> ()
      | _ -> fail "Program %s: wait %d wait_instr does not hold Wait" p.name w);
      if info.wait_instr >= info.snk_instr then
        fail "Program %s: wait %d: Wait follows its Snk in program order" p.name w)
    p.waits

let signal_label p s = p.signals.(s).label

let wait_label p w =
  let wi = p.waits.(w) in
  Printf.sprintf "%s, I-%d" (signal_label p wi.signal) wi.distance

let n_lfd p = Array.fold_left (fun acc w -> if w.lexical = LFD then acc + 1 else acc) 0 p.waits
let n_lbd p = Array.fold_left (fun acc w -> if w.lexical = LBD then acc + 1 else acc) 0 p.waits

let waits_of_signal p s =
  Array.to_list p.waits |> List.filter (fun w -> w.signal = s)

let pp ppf p =
  Array.iteri
    (fun i ins ->
      Format.fprintf ppf "%3d: %a@." (i + 1)
        (Instr.pp_full ~signal_name:(signal_label p) ~wait_name:(wait_label p))
        ins)
    p.body

let to_string p = Format.asprintf "%a" pp p

let name_sets p =
  let scalars = Hashtbl.create 8 and arrays = Hashtbl.create 8 in
  Array.iter
    (fun ins ->
      match ins with
      | Instr.Load { base; _ } | Instr.Store { base; _ } -> Hashtbl.replace arrays base ()
      | Instr.Load_scalar { name; _ } | Instr.Store_scalar { name; _ } ->
        Hashtbl.replace scalars name ()
      | _ -> ())
    p.body;
  let sorted tbl = Hashtbl.fold (fun k () acc -> k :: acc) tbl [] |> List.sort compare in
  (sorted scalars, sorted arrays)

let scalars p = fst (name_sets p)
let arrays p = snd (name_sets p)
