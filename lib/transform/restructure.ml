module Ast = Isched_frontend.Ast

type action =
  | Iv_subst of { name : string; step : int }
  | Reduction of { name : string; op : Ast.binop; partial : string }
  | Expanded of { name : string; partial : string }

type result = { loop : Ast.loop; actions : action list }

let pp_action ppf = function
  | Iv_subst { name; step } ->
    Format.fprintf ppf "induction-variable substitution: %s (step %+d)" name step
  | Reduction { name; op; partial } ->
    Format.fprintf ppf "reduction replacement: %s (%s) -> %s"
      name
      (match op with Ast.Add -> "+" | Ast.Sub -> "-" | Ast.Mul -> "*" | Ast.Div -> "/")
      partial
  | Expanded { name; partial } -> Format.fprintf ppf "scalar expansion: %s -> %s" name partial

(* --- helpers over the body --- *)

let all_names (l : Ast.loop) =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (s : Ast.stmt) ->
      List.iter (fun n -> Hashtbl.replace tbl n ()) (Ast.stmt_scalars_read s);
      List.iter (fun (a, _) -> Hashtbl.replace tbl a ()) (Ast.stmt_arrays_read s);
      match s.lhs with
      | Ast.Larr (a, _) -> Hashtbl.replace tbl a ()
      | Ast.Lscalar n -> Hashtbl.replace tbl n ())
    l.body;
  tbl

let fresh_name names base suffix =
  let rec go i =
    let candidate = if i = 0 then base ^ suffix else Printf.sprintf "%s%s%d" base suffix i in
    if Hashtbl.mem names candidate then go (i + 1)
    else begin
      Hashtbl.replace names candidate ();
      candidate
    end
  in
  go 0

let scalar_writes (l : Ast.loop) name =
  List.filteri (fun _ (s : Ast.stmt) -> s.lhs = Ast.Lscalar name) l.body
  |> List.length

(* The integer constant value of an expression, when it is one. *)
let const_int (e : Ast.expr) =
  match Isched_deps.Affine.of_expr e with
  | Some { Isched_deps.Affine.coef = 0; off } -> Some off
  | _ -> None

(* --- induction-variable substitution --- *)

(* Recognize [K = K + c] / [K = K - c] / [K = c + K]. *)
let iv_pattern name (rhs : Ast.expr) =
  match rhs with
  | Ast.Bin (Ast.Add, Ast.Scalar s, e) when s = name -> const_int e
  | Ast.Bin (Ast.Add, e, Ast.Scalar s) when s = name -> const_int e
  | Ast.Bin (Ast.Sub, Ast.Scalar s, e) when s = name -> (
    match const_int e with Some c -> Some (-c) | None -> None)
  | _ -> None

let find_iv (l : Ast.loop) =
  let rec go i = function
    | [] -> None
    | (s : Ast.stmt) :: rest -> (
      match s.lhs with
      | Ast.Lscalar name when s.guard = None -> (
        match iv_pattern name s.rhs with
        | Some step when scalar_writes l name = 1 -> Some (i, name, step)
        | _ -> go (i + 1) rest)
      | _ -> go (i + 1) rest)
  in
  go 0 l.body

let substitute_iv (l : Ast.loop) (upd_idx, name, step) =
  (* Number of updates already executed when iteration I reaches a point:
     before the update statement it is (I - lo), after it (I - lo + 1).
     The value of [name] at that point is its loop-entry value plus
     step * that count; [name] itself is read-only afterwards. *)
  let open Ast in
  let iter_offset = Bin (Sub, Ivar, Num (float_of_int l.lo)) in
  let value_at count_expr =
    Bin (Add, Scalar name, Bin (Mul, Num (float_of_int step), count_expr))
  in
  let before_value = value_at iter_offset in
  let after_value = value_at (Bin (Add, iter_offset, Num 1.)) in
  let body =
    List.concat
      (List.mapi
         (fun i (s : stmt) ->
           if i = upd_idx then []
           else begin
             let into = if i < upd_idx then before_value else after_value in
             let sub e = Ast.rename_scalar ~from:name ~into e in
             let guard =
               match s.guard with
               | None -> None
               | Some c -> Some { c with lhs = sub c.lhs; rhs = sub c.rhs }
             in
             let lhs =
               match s.lhs with
               | Larr (a, se) -> Larr (a, sub se)
               | Lscalar n -> Lscalar n
             in
             [ { s with guard; lhs; rhs = sub s.rhs } ]
           end)
         l.body)
  in
  Ast.with_body l body

(* --- reduction replacement --- *)

(* Recognize [S = S op e] where [e] does not read S. *)
let reduction_pattern name (rhs : Ast.expr) =
  let reads_s e = List.mem name (Ast.scalars_read e) in
  match rhs with
  | Ast.Bin ((Ast.Add | Ast.Mul) as op, Ast.Scalar s, e) when s = name && not (reads_s e) ->
    Some (op, e)
  | Ast.Bin ((Ast.Add | Ast.Mul) as op, e, Ast.Scalar s) when s = name && not (reads_s e) ->
    Some (op, e)
  | Ast.Bin (Ast.Sub, Ast.Scalar s, e) when s = name && not (reads_s e) -> Some (Ast.Sub, e)
  | _ -> None

let find_reduction (l : Ast.loop) =
  let rec go i = function
    | [] -> None
    | (s : Ast.stmt) :: rest -> (
      match s.lhs with
      | Ast.Lscalar name when s.guard = None -> (
        match reduction_pattern name s.rhs with
        | Some (op, e) ->
          let other_reads =
            List.exists
              (fun (s' : Ast.stmt) ->
                s' != s && List.mem name (Ast.stmt_scalars_read s'))
              l.body
          in
          if scalar_writes l name = 1 && not other_reads then Some (i, name, op, e)
          else go (i + 1) rest
        | None -> go (i + 1) rest)
      | _ -> go (i + 1) rest)
  in
  go 0 l.body

let replace_reduction names (l : Ast.loop) (idx, name, op, e) =
  let partial = fresh_name names name "_r" in
  let body =
    List.mapi
      (fun i (s : Ast.stmt) ->
        if i = idx then { s with lhs = Ast.Larr (partial, Ast.Ivar); rhs = e } else s)
      l.body
  in
  (Ast.with_body l body, Reduction { name; op; partial })

(* --- scalar expansion --- *)

(* A scalar is expandable when every iteration writes it before reading
   it: all its writes are unguarded, and within the statement list every
   read is preceded (in access order) by a write of the same iteration. *)
let expandable (l : Ast.loop) name =
  let accs = Isched_deps.Access.of_loop l in
  let mine = List.filter (fun (a : Isched_deps.Access.t) -> (not a.is_array) && a.target = name) accs in
  (match mine with [] -> false | _ -> true)
  && List.exists (fun (a : Isched_deps.Access.t) -> a.is_write) mine
  && begin
       (* every write unguarded *)
       List.for_all
         (fun (a : Isched_deps.Access.t) ->
           if not a.is_write then true
           else
             let s = List.nth l.body a.stmt in
             s.Ast.guard = None)
         mine
     end
  && begin
       (* first access overall is a write, and no read occurs in a
          statement before the first writing statement *)
       let seen_write = ref false in
       let ok = ref true in
       List.iter
         (fun (a : Isched_deps.Access.t) ->
           if a.is_write then seen_write := true
           else if not !seen_write then ok := false)
         mine;
       !ok
     end

let expand_scalar names (l : Ast.loop) name =
  let partial = fresh_name names name "_x" in
  let into = Ast.Aref (partial, Ast.Ivar) in
  let body =
    List.map
      (fun (s : Ast.stmt) ->
        let sub e = Ast.rename_scalar ~from:name ~into e in
        let guard =
          match s.guard with
          | None -> None
          | Some c -> Some { c with Ast.lhs = sub c.Ast.lhs; rhs = sub c.Ast.rhs }
        in
        let lhs =
          match s.lhs with
          | Ast.Larr (a, se) -> Ast.Larr (a, sub se)
          | Ast.Lscalar n when n = name -> Ast.Larr (partial, Ast.Ivar)
          | Ast.Lscalar n -> Ast.Lscalar n
        in
        { s with Ast.guard; lhs; rhs = sub s.rhs })
      l.body
  in
  (Ast.with_body l body, Expanded { name; partial })

(* --- driver --- *)

let scalars_written (l : Ast.loop) =
  List.filter_map
    (fun (s : Ast.stmt) -> match s.lhs with Ast.Lscalar n -> Some n | Ast.Larr _ -> None)
    l.body
  |> List.sort_uniq compare

let run (l : Ast.loop) =
  let names = all_names l in
  let actions = ref [] in
  let loop = ref l in
  (* Induction variables, repeatedly (substituting one can expose another
     only in contrived cases, but the fixed point is cheap). *)
  let continue_ = ref true in
  while !continue_ do
    match find_iv !loop with
    | Some (idx, name, step) ->
      loop := substitute_iv !loop (idx, name, step);
      actions := Iv_subst { name; step } :: !actions
    | None -> continue_ := false
  done;
  (* Reductions. *)
  continue_ := true;
  while !continue_ do
    match find_reduction !loop with
    | Some r ->
      let l', act = replace_reduction names !loop r in
      loop := l';
      actions := act :: !actions
    | None -> continue_ := false
  done;
  (* Scalar expansion for the remaining written scalars. *)
  List.iter
    (fun name ->
      if expandable !loop name then begin
        let l', act = expand_scalar names !loop name in
        loop := l';
        actions := act :: !actions
      end)
    (scalars_written !loop);
  { loop = !loop; actions = List.rev !actions }

(* Observability shadow: the exported [run] is the traced one. *)
let run l = Isched_obs.Span.with_ ~name:"transform.restructure" (fun () -> run l)
