(** DOALL detection and DOACROSS loop categorization.

    [Chen & Yew 1991] (the paper's reference for its statistical model)
    sorts DOACROSS loops into six types: (1) control dependence,
    (2) anti/output dependence, (3) induction variable, (4) reduction
    operation, (5) simple subscript expression, (6) others.  The corpus
    generator and Table 1 statistics use this classification. *)

module Ast := Isched_frontend.Ast

type category =
  | Control_dep  (** a carried dependence involves a guarded statement *)
  | Anti_output  (** all carried dependences are anti or output *)
  | Induction  (** an induction-variable update carries the loop *)
  | Reduction  (** a reduction accumulation carries the loop *)
  | Simple_subscript  (** carried flow deps through affine subscripts *)
  | Other  (** everything else (unanalyzable subscripts, ...) *)

(** [is_doall l] — no carried dependences at all (alias of
    {!Isched_deps.Dep.is_doall}). *)
val is_doall : Ast.loop -> bool

(** [parallelize l] runs the restructurer and reports whether the result
    is a DOALL; this is the Parafrase-surrogate front of the paper's
    Fig. 5 pipeline. *)
val parallelize : Ast.loop -> [ `Doall of Restructure.result | `Doacross of Restructure.result ]

(** [categorize ?carried l] assigns the loop to the first matching of
    the six types, in the paper's order.  Only meaningful for loops that
    are not DOALL.  [carried], when given, must equal
    [Dep.carried_deps l]; callers that already ran the analysis pass it
    along instead of paying for it again. *)
val categorize : ?carried:Isched_deps.Dep.t list -> Ast.loop -> category

val category_name : category -> string
val all_categories : category list
