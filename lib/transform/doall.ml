module Ast = Isched_frontend.Ast
module Dep = Isched_deps.Dep

type category =
  | Control_dep
  | Anti_output
  | Induction
  | Reduction
  | Simple_subscript
  | Other

let is_doall = Dep.is_doall

let parallelize l =
  let r = Restructure.run l in
  if Dep.is_doall r.Restructure.loop then `Doall r else `Doacross r

let stmt_guarded (l : Ast.loop) i =
  match List.nth_opt l.body i with Some s -> s.Ast.guard <> None | None -> false

let categorize ?carried (l : Ast.loop) =
  let carried = match carried with Some c -> c | None -> Dep.carried_deps l in
  let involves_guard (d : Dep.t) =
    stmt_guarded l d.src.Isched_deps.Access.stmt || stmt_guarded l d.snk.Isched_deps.Access.stmt
  in
  let scalar_dep (d : Dep.t) = not d.src.Isched_deps.Access.is_array in
  let has_iv =
    List.exists
      (fun (s : Ast.stmt) ->
        match s.lhs with
        | Ast.Lscalar n -> (
          s.guard = None
          &&
          match s.rhs with
          | Ast.Bin ((Ast.Add | Ast.Sub), Ast.Scalar m, e) ->
            m = n && Isched_deps.Affine.of_expr e <> None
          | Ast.Bin (Ast.Add, e, Ast.Scalar m) -> m = n && Isched_deps.Affine.of_expr e <> None
          | _ -> false)
        | Ast.Larr _ -> false)
      l.body
  in
  let has_reduction =
    List.exists
      (fun (s : Ast.stmt) ->
        match s.lhs with
        | Ast.Lscalar n -> (
          match s.rhs with
          | Ast.Bin ((Ast.Add | Ast.Sub | Ast.Mul), Ast.Scalar m, e) when m = n ->
            not (List.mem n (Ast.scalars_read e))
          | Ast.Bin ((Ast.Add | Ast.Mul), e, Ast.Scalar m) when m = n ->
            not (List.mem n (Ast.scalars_read e))
          | _ -> false)
        | Ast.Larr _ -> false)
      l.body
  in
  let affine_flow (d : Dep.t) =
    d.kind = Dep.Flow
    && d.src.Isched_deps.Access.affine <> None
    && d.snk.Isched_deps.Access.affine <> None
  in
  let analyzable (d : Dep.t) = d.distance <> Dep.Unknown in
  if List.exists involves_guard carried then Control_dep
  else if
    carried <> []
    && List.for_all (fun (d : Dep.t) -> d.kind <> Dep.Flow && analyzable d) carried
  then Anti_output
  else if has_iv && List.exists scalar_dep carried then Induction
  else if has_reduction && List.exists scalar_dep carried then Reduction
  else if carried <> [] && List.for_all (fun d -> scalar_dep d || affine_flow d || d.Dep.kind <> Dep.Flow) carried
          && List.exists affine_flow carried
  then Simple_subscript
  else Other

let category_name = function
  | Control_dep -> "control dependence"
  | Anti_output -> "anti/output dependence"
  | Induction -> "induction variable"
  | Reduction -> "reduction operation"
  | Simple_subscript -> "simple subscript"
  | Other -> "others"

let all_categories = [ Control_dep; Anti_output; Induction; Reduction; Simple_subscript; Other ]
