module Ast = Isched_frontend.Ast

let applicable (l : Ast.loop) ~factor =
  factor > 1 && Ast.iterations l > 0 && Ast.iterations l mod factor = 0

(* Substitute the loop index by [u*I' + off] throughout an expression. *)
let rec subst_ivar ~coef ~off (e : Ast.expr) =
  match e with
  | Ast.Ivar ->
    Ast.Bin
      ( Ast.Add,
        Ast.Bin (Ast.Mul, Ast.Num (float_of_int coef), Ast.Ivar),
        Ast.Num (float_of_int off) )
  | Ast.Num _ | Ast.Scalar _ -> e
  | Ast.Aref (a, sub) -> Ast.Aref (a, subst_ivar ~coef ~off sub)
  | Ast.Bin (op, x, y) -> Ast.Bin (op, subst_ivar ~coef ~off x, subst_ivar ~coef ~off y)
  | Ast.Neg x -> Ast.Neg (subst_ivar ~coef ~off x)

let subst_stmt ~coef ~off (s : Ast.stmt) =
  let sub = subst_ivar ~coef ~off in
  {
    s with
    Ast.guard =
      Option.map (fun (c : Ast.cond) -> { c with Ast.lhs = sub c.Ast.lhs; rhs = sub c.Ast.rhs }) s.Ast.guard;
    lhs = (match s.Ast.lhs with Ast.Larr (a, se) -> Ast.Larr (a, sub se) | lhs -> lhs);
    rhs = sub s.Ast.rhs;
  }

let run (l : Ast.loop) ~factor =
  if not (applicable l ~factor) then l
  else begin
    let n = Ast.iterations l in
    (* New index I' = 1 .. n/factor; copy j evaluates the body at
       I = lo + factor*(I'-1) + j = factor*I' + (lo - factor + j). *)
    let body =
      List.concat
        (List.init factor (fun j ->
             let off = l.Ast.lo - factor + j in
             List.map (subst_stmt ~coef:factor ~off) l.Ast.body))
    in
    let body =
      List.mapi (fun i s -> { s with Ast.label = Printf.sprintf "S%d" (i + 1) }) body
    in
    {
      l with
      Ast.lo = 1;
      hi = n / factor;
      body;
      name = Printf.sprintf "%s.u%d" l.Ast.name factor;
    }
  end
