(** DOACROSS loop unrolling (an extension the paper's setting invites:
    giving each processor [u] consecutive iterations changes both the
    dependence distances and the per-iteration instruction count [l],
    moving every term of the LBD formula [(n/d)(i-j)+l]).

    Unrolling by [u] rewrites the loop over a new index [I'] running
    [n/u] times; copy [j] (0-based) of the body evaluates the original
    statements at [I = lo + u*(I'-1) + j], i.e. every occurrence of the
    index becomes the affine form [u*I' + (lo - u + j)] — still analyzable
    by {!Isched_deps.Affine}, so distances rescale automatically
    (an original distance [d] becomes [ceil(d/u)] or disappears into the
    body).  Semantics are preserved exactly (checked against the
    sequential interpreter by the tests). *)

module Ast := Isched_frontend.Ast

(** [run l ~factor] — the unrolled loop.  Returns [l] unchanged when
    [factor <= 1] or the trip count is not a multiple of [factor]
    (partial unrolling with remainder loops is out of scope). *)
val run : Ast.loop -> factor:int -> Ast.loop

(** [applicable l ~factor] — true when [run] would actually unroll. *)
val applicable : Ast.loop -> factor:int -> bool
