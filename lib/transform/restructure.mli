(** Loop restructuring: the Parafrase-surrogate transformations.

    Following Chen & Yew's measurements quoted in Section 4.1, the paper
    converts DO loops into DOACROSS loops using induction-variable
    substitution, reduction replacement and scalar expansion before
    inserting synchronization.  This module implements those three
    transformations:

    - {b induction-variable substitution}: a scalar updated exactly once
      as [K = K ± c] (constant [c], unguarded) is removed; its uses are
      replaced by the closed form over the (symbolic) value of [K] at
      loop entry.
    - {b reduction replacement}: an unguarded [S = S op e] (op one of
      add, subtract, multiply) where [S] is not otherwise read or written
      becomes a private partial result [S_r[I] = e]; the cross-iteration
      dependence on [S] disappears and the final combine is recorded for
      the epilogue.
    - {b scalar expansion}: a scalar always written before it is read
      within an iteration (and written unconditionally) becomes an array
      indexed by [I], removing its anti/output carried dependences.

    Each transformation records enough metadata ({!action}) for the
    value-equivalence checker to reconcile final scalar values. *)

module Ast := Isched_frontend.Ast

type action =
  | Iv_subst of { name : string; step : int }
      (** [name] was an induction variable advancing by [step] per
          iteration; its update statement was deleted *)
  | Reduction of { name : string; op : Ast.binop; partial : string }
      (** [name] accumulated with [op]; partials are in array
          [partial], combined left-to-right over iterations *)
  | Expanded of { name : string; partial : string }
      (** scalar [name] was expanded into array [partial];
          its live-out value is [partial[hi]] *)

type result = { loop : Ast.loop; actions : action list }

(** [run l] applies the three transformations to a fixed point (IV
    substitution first, then reduction replacement, then scalar
    expansion) and returns the rewritten loop.  The result's loop [kind]
    is unchanged; deciding DOALL vs DOACROSS is {!Doall.classify}'s
    job. *)
val run : Ast.loop -> result

val pp_action : Format.formatter -> action -> unit
