(** Statement-level synchronization insertion.

    For every carried dependence to be enforced, the plan declares:
    - a {e signal}, posted by a [Send_Signal] generated immediately after
      the dependence-source access (one signal is shared by all
      dependences with the same source access, as in the paper's Fig. 1
      where [Send_Signal(S3)] serves two waits);
    - a {e pair} (one per dependence): a [Wait_Signal(signal, I-d)]
      generated immediately before the dependence-sink statement.

    The code generator turns the plan into [Send]/[Wait] instructions and
    the extra dependence arcs that maintain the paper's synchronization
    conditions: a send cannot precede its source, a wait cannot follow
    its sink. *)

module Ast := Isched_frontend.Ast
module Dep := Isched_deps.Dep
module Access := Isched_deps.Access

type signal_decl = {
  signal : int;  (** signal id (dense, from 0) *)
  src : Access.t;  (** the dependence-source access the send follows *)
  label : string;  (** source statement label, e.g. ["S3"] *)
}

type pair = {
  wait : int;  (** wait id (dense, from 0) *)
  signal : int;
  distance : int;  (** [>= 1]; unknown distances are pinned to 1 *)
  dep : Dep.t;  (** the dependence this pair enforces *)
}

type t = { signals : signal_decl array; pairs : pair array }

(** [of_deps l deps] builds a plan enforcing exactly the carried
    dependences in [deps] (loop-independent entries are ignored). *)
val of_deps : Ast.loop -> Dep.t list -> t

(** [build l] analyzes the loop and enforces all carried dependences
    (redundant-synchronization elimination is a separate, post-codegen
    pass: {!Isched_dfg.Reduce}). *)
val build : Ast.loop -> t

(** Pretty statement-level rendering: the loop body with
    [Wait_Signal]/[Send_Signal] pseudo-statements interleaved, as in the
    paper's Fig. 1(b). *)
val pp_annotated : Format.formatter -> Ast.loop -> t -> unit

(** Numbers of lexically forward / backward pairs in a plan. *)
val n_lfd : t -> int

val n_lbd : t -> int
