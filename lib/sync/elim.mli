(** Post-codegen redundant-synchronization elimination.

    Transitive reduction of the combined order relation (dependence
    arcs, the surviving synchronization, and the cross-iteration edges
    each Send/Wait pair enforces): a [Wait] — and, when it becomes
    orphaned, the matching [Send] — is deleted when the [Src -> Snk]
    ordering it enforces is already implied transitively (Liao et al.,
    arXiv:1211.4101).  The reduced program and a freshly built data-flow
    graph are handed back so every scheduler (list, marker-guided, new
    and modulo) sees the smaller sync set and the rebuilt
    [Src -> Sig] / [Wat -> Snk] arcs and sync-group partition.

    {b What "program order" may mean here.}  The classic
    statement-level rule (Midkiff & Padua) composes enforced pairs with
    textual order; under instruction scheduling that is unsound —
    independent instructions are exactly what the scheduler reorders
    (see {!Isched_dfg.Reduce}, whose property tests construct a
    failure).  This pass therefore only trusts orderings {e every legal
    schedule} must respect:

    - data and memory arcs of the data-flow graph;
    - the sync-condition arcs of synchronization that {e survives}
      ([Src -> Send] and [Wait -> Snk] of active pairs — the
      independent checker re-derives both conditions for whatever
      remains, so these orderings are machine-checked);
    - the cross-iteration edge of an active pair: [Send] of signal [s]
      in iteration [i] happens before every wait on [s] at distance
      [d] in iteration [i + d].

    A wait [w] with distance [d] is redundant iff chaining
    cross-iteration hops through other active waits, with distances
    summing exactly to [d] and the intra-iteration gaps closed by the
    trusted arcs above, orders every instruction [w] protects
    ({!Isched_dfg.Dfg.protected_of_wait}) after [w]'s source event.
    Removed waits never justify later removals, and a hop never rides
    on the target's own arcs.

    Every elimination records the justifying chain; when provenance
    recording is enabled ({!Isched_obs.Provenance}) one decision per
    elimination is emitted with the ["sync-elim"] binding arc. *)

module Program := Isched_ir.Program
module Dfg := Isched_dfg.Dfg

(** One cross-iteration hop of a justifying chain: the (still active)
    wait ridden, its signal, and its distance.  A chain's distances sum
    to the eliminated wait's distance. *)
type step = { via_wait : int; via_signal : int; via_distance : int }

type elimination = {
  wait : Program.wait_info;  (** the removed wait, in the {e input} program's tables *)
  send_removed : bool;  (** the signal's [Send] was orphaned and dropped too *)
  chain : step list;  (** hops justifying the primary sink, in order *)
}

type result = {
  prog : Program.t;  (** reduced program: dense, renumbered sync tables *)
  graph : Dfg.t;  (** freshly built over [prog] (when anything was removed) *)
  eliminated : elimination list;  (** wait-table order of the input program *)
  index_map : int array;
      (** input body index -> reduced body index, [-1] for dropped
          [Send]/[Wait] instructions (for tests and tooling) *)
}

(** [run p g] — [g] must be [Dfg.build p] over the fully synchronized
    program.  When nothing is redundant the input [p] and [g] are
    returned unchanged (physically).  The reduced program is
    re-validated ({!Program.validate}); counters
    [sync.elim.waits_removed] / [sync.elim.sends_removed] account the
    deletions. *)
val run : Program.t -> Dfg.t -> result
