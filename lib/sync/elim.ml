module Program = Isched_ir.Program
module Instr = Isched_ir.Instr
module Dfg = Isched_dfg.Dfg
module Counters = Isched_obs.Counters
module Provenance = Isched_obs.Provenance

type step = { via_wait : int; via_signal : int; via_distance : int }

type elimination = {
  wait : Program.wait_info;
  send_removed : bool;
  chain : step list;
}

type result = {
  prog : Program.t;
  graph : Dfg.t;
  eliminated : elimination list;
  index_map : int array;
}

let c_waits_removed = Counters.counter "sync.elim.waits_removed"
let c_sends_removed = Counters.counter "sync.elim.sends_removed"

(* Reflexive-transitive reachability over the orderings every legal
   schedule respects: data and memory arcs always, plus the
   sync-condition arcs of pairs the [allowed] predicates accept (the
   active set minus the elimination target).  All arcs point forward in
   body order — data defs precede uses, memory arcs follow program
   order, validate pins sends after sources and waits before sinks — so
   one reverse sweep closes the relation. *)
let reachability (g : Dfg.t) ~wait_of_node ~signal_of_node ~allowed_wait ~allowed_signal =
  let n = g.Dfg.n in
  let reach = Array.make_matrix n n false in
  for i = n - 1 downto 0 do
    reach.(i).(i) <- true;
    let arc_allowed a =
      match Dfg.arc_kind a with
      | Dfg.Data | Dfg.Mem -> true
      | Dfg.Sync_snk ->
        (* From a wait to an instruction it protects: trusted only while
           that wait survives. *)
        let w = wait_of_node.(i) in
        w >= 0 && allowed_wait w
      | Dfg.Sync_src ->
        (* From a source access to its send: trusted only while the send
           itself survives, i.e. some surviving wait still blocks on the
           signal. *)
        let s = signal_of_node.(Dfg.arc_node a) in
        s >= 0 && allowed_signal s
    in
    Dfg.iter_succs g i (fun a ->
        if arc_allowed a then begin
          let dst = Dfg.arc_node a in
          let row_dst = reach.(dst) and row_i = reach.(i) in
          for j = 0 to n - 1 do
            if row_dst.(j) then row_i.(j) <- true
          done
        end)
  done;
  reach

(* [covered p g ~target active] decides whether every instruction
   [target] protects stays ordered after its source event without it,
   and if so returns the hop chain justifying the primary sink.

   BFS over (instruction, accumulated distance) states.  The start is
   the signal's source access at distance 0; a hop through an active
   wait [k] is taken when the current instruction reaches [k]'s [Send]
   intra-iteration (so the send fires after it), landing on [k]'s
   [Wait] node at distance [+ k.distance].  The frontier at exactly
   [target.distance] must reach every protected goal. *)
let covered (p : Program.t) (g : Dfg.t) ~wait_of_node ~signal_of_node
    ~(target : Program.wait_info) (active : Program.wait_info list) =
  let d = target.Program.distance in
  if d < 1 then Some []
  else begin
    let allowed_wait =
      let ok = Array.make (Array.length p.Program.waits) false in
      List.iter (fun (k : Program.wait_info) -> ok.(k.Program.wait) <- true) active;
      fun w -> ok.(w)
    in
    let allowed_signal =
      let ok = Array.make (Array.length p.Program.signals) false in
      List.iter (fun (k : Program.wait_info) -> ok.(k.Program.signal) <- true) active;
      fun s -> ok.(s)
    in
    let reach = reachability g ~wait_of_node ~signal_of_node ~allowed_wait ~allowed_signal in
    let start = p.Program.signals.(target.Program.signal).Program.src_instr in
    let goals = Dfg.protected_of_wait p target in
    (* Parent pointers reconstruct the hop chain for the provenance
       record; [at_d] keeps discovery order so the chosen witness is
       deterministic. *)
    let visited = Hashtbl.create 64 in
    let parent = Hashtbl.create 64 in
    let at_d = ref [] in
    let q = Queue.create () in
    let push node w via =
      if w <= d && not (Hashtbl.mem visited (node, w)) then begin
        Hashtbl.add visited (node, w) ();
        (match via with None -> () | Some pv -> Hashtbl.add parent (node, w) pv);
        if w = d then at_d := node :: !at_d;
        Queue.push (node, w) q
      end
    in
    push start 0 None;
    while not (Queue.is_empty q) do
      let node, w = Queue.pop q in
      if w < d then
        List.iter
          (fun (k : Program.wait_info) ->
            let send = p.Program.signals.(k.Program.signal).Program.send_instr in
            if reach.(node).(send) then
              push k.Program.wait_instr (w + k.Program.distance) (Some (node, w, k)))
          active
    done;
    let frontier = List.rev !at_d in
    let witness goal = List.find_opt (fun r -> reach.(r).(goal)) frontier in
    if not (List.for_all (fun goal -> witness goal <> None) goals) then None
    else begin
      (* Chain for the primary sink, hops in source-to-sink order. *)
      let rec unwind node w acc =
        match Hashtbl.find_opt parent (node, w) with
        | None -> acc
        | Some (pn, pw, (k : Program.wait_info)) ->
          unwind pn pw
            ({
               via_wait = k.Program.wait;
               via_signal = k.Program.signal;
               via_distance = k.Program.distance;
             }
            :: acc)
      in
      match witness target.Program.snk_instr with
      | None -> None (* unreachable: snk_instr is a goal *)
      | Some r -> Some (unwind r d [])
    end
  end

(* --- program rewrite --- *)

(* Drop the eliminated [Wait]s and any [Send] left without a blocking
   wait, renumbering body indices and the dense signal/wait id spaces.
   Registers and every non-sync instruction are untouched. *)
let rebuild (p : Program.t) removed_waits =
  let n = Array.length p.Program.body in
  let n_sig = Array.length p.Program.signals in
  let n_wait = Array.length p.Program.waits in
  let wait_removed = Array.make n_wait false in
  List.iter (fun w -> wait_removed.(w) <- true) removed_waits;
  let signal_used = Array.make n_sig false in
  Array.iter
    (fun (w : Program.wait_info) ->
      if not wait_removed.(w.Program.wait) then signal_used.(w.Program.signal) <- true)
    p.Program.waits;
  let drop = Array.make n false in
  Array.iter
    (fun (w : Program.wait_info) ->
      if wait_removed.(w.Program.wait) then drop.(w.Program.wait_instr) <- true)
    p.Program.waits;
  Array.iter
    (fun (s : Program.signal_info) ->
      if not signal_used.(s.Program.signal) then drop.(s.Program.send_instr) <- true)
    p.Program.signals;
  let index_map = Array.make n (-1) in
  let next = ref 0 in
  for i = 0 to n - 1 do
    if not drop.(i) then begin
      index_map.(i) <- !next;
      incr next
    end
  done;
  let sig_map = Array.make n_sig (-1) in
  let next_sig = ref 0 in
  for s = 0 to n_sig - 1 do
    if signal_used.(s) then begin
      sig_map.(s) <- !next_sig;
      incr next_sig
    end
  done;
  let wait_map = Array.make n_wait (-1) in
  let next_wait = ref 0 in
  for w = 0 to n_wait - 1 do
    if not wait_removed.(w) then begin
      wait_map.(w) <- !next_wait;
      incr next_wait
    end
  done;
  let body =
    Array.of_list
      (List.filteri (fun i _ -> not drop.(i)) (Array.to_list p.Program.body)
      |> List.map (function
           | Instr.Send { signal } -> Instr.Send { signal = sig_map.(signal) }
           | Instr.Wait { wait } -> Instr.Wait { wait = wait_map.(wait) }
           | ins -> ins))
  in
  let keep_arr a = Array.of_list (List.filteri (fun i _ -> not drop.(i)) (Array.to_list a)) in
  let signals =
    Array.of_list
      (List.filter_map
         (fun (s : Program.signal_info) ->
           if not signal_used.(s.Program.signal) then None
           else
             Some
               {
                 s with
                 Program.signal = sig_map.(s.Program.signal);
                 src_instr = index_map.(s.Program.src_instr);
                 send_instr = index_map.(s.Program.send_instr);
               })
         (Array.to_list p.Program.signals))
  in
  let waits =
    Array.of_list
      (List.filter_map
         (fun (w : Program.wait_info) ->
           if wait_removed.(w.Program.wait) then None
           else
             Some
               {
                 w with
                 Program.wait = wait_map.(w.Program.wait);
                 signal = sig_map.(w.Program.signal);
                 snk_instr = index_map.(w.Program.snk_instr);
                 wait_instr = index_map.(w.Program.wait_instr);
               })
         (Array.to_list p.Program.waits))
  in
  let prog =
    {
      p with
      Program.body;
      signals;
      waits;
      mem = keep_arr p.Program.mem;
      stmt_of = keep_arr p.Program.stmt_of;
    }
  in
  (prog, index_map, signal_used)

let emit_provenance (p : Program.t) (e : elimination) ~candidates =
  if Provenance.enabled () then begin
    let acc = ref 0 in
    let rejections =
      List.map
        (fun s ->
          acc := !acc + s.via_distance;
          {
            Provenance.at_cycle = !acc;
            reason = Printf.sprintf "via Wait_Signal(%s)" (Program.wait_label p s.via_wait);
          })
        e.chain
    in
    let pred =
      match List.rev e.chain with
      | last :: _ -> p.Program.waits.(last.via_wait).Program.wait_instr
      | [] -> -1
    in
    Provenance.record ~scheduler:"elim" ~prog:p.Program.name ~instr:e.wait.Program.wait_instr
      ~cycle:(-1) ~ready:0 ~candidates ~priority:e.wait.Program.distance ~rejections
      ~binding:{ Provenance.pred; latency = e.wait.Program.distance; arc = "sync-elim" }
      ()
  end

let run (p : Program.t) (g : Dfg.t) =
  let n = g.Dfg.n in
  let identity () = Array.init n (fun i -> i) in
  if Array.length p.Program.waits = 0 then
    { prog = p; graph = g; eliminated = []; index_map = identity () }
  else begin
    let wait_of_node = Array.make n (-1) in
    Array.iter
      (fun (w : Program.wait_info) -> wait_of_node.(w.Program.wait_instr) <- w.Program.wait)
      p.Program.waits;
    let signal_of_node = Array.make n (-1) in
    Array.iter
      (fun (s : Program.signal_info) -> signal_of_node.(s.Program.send_instr) <- s.Program.signal)
      p.Program.signals;
    let active = ref (Array.to_list p.Program.waits) in
    let eliminated = ref [] in
    Array.iter
      (fun (w : Program.wait_info) ->
        let others =
          List.filter (fun (k : Program.wait_info) -> k.Program.wait <> w.Program.wait) !active
        in
        match covered p g ~wait_of_node ~signal_of_node ~target:w others with
        | None -> ()
        | Some chain ->
          active := others;
          eliminated :=
            { wait = w; send_removed = false (* refined below *); chain } :: !eliminated)
      p.Program.waits;
    match !eliminated with
    | [] -> { prog = p; graph = g; eliminated = []; index_map = identity () }
    | es ->
      let removed = List.map (fun e -> e.wait.Program.wait) es in
      let prog, index_map, signal_used = rebuild p removed in
      Program.validate prog;
      let eliminated =
        List.rev_map
          (fun e -> { e with send_removed = not signal_used.(e.wait.Program.signal) })
          es
      in
      let n_sends_removed =
        let c = ref 0 in
        Array.iteri (fun _ used -> if not used then incr c) signal_used;
        !c
      in
      Counters.add c_waits_removed (List.length eliminated);
      Counters.add c_sends_removed n_sends_removed;
      let candidates = List.length !active in
      List.iter (fun e -> emit_provenance p e ~candidates) eliminated;
      { prog; graph = Dfg.build prog; eliminated; index_map }
  end
