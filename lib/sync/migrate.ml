module Ast = Isched_frontend.Ast
module Dep = Isched_deps.Dep
module Access = Isched_deps.Access

let reorder (l : Ast.loop) =
  let n = List.length l.body in
  if n <= 1 then l
  else begin
    let deps = Dep.analyze l in
    (* Intra-iteration (loop-independent) edges constrain the order. *)
    let edges = Array.make n [] in
    let indeg = Array.make n 0 in
    List.iter
      (fun (d : Dep.t) ->
        if not (Dep.carried d) then begin
          let s = d.src.Access.stmt and t = d.snk.Access.stmt in
          if s <> t then begin
            edges.(s) <- t :: edges.(s);
            indeg.(t) <- indeg.(t) + 1
          end
        end)
      deps;
    (* Score: prefer carried-dependence sources (negative = earlier),
       defer carried-dependence sinks. *)
    let score = Array.make n 0 in
    List.iter
      (fun (d : Dep.t) ->
        if Dep.carried d then begin
          score.(d.src.Access.stmt) <- score.(d.src.Access.stmt) - 1;
          score.(d.snk.Access.stmt) <- score.(d.snk.Access.stmt) + 1
        end)
      deps;
    let ready = Isched_util.Pqueue.create () in
    let push i =
      (* Pqueue pops the highest priority first; we want the smallest
         score first, and original order among equals. *)
      Isched_util.Pqueue.push ready ~prio:(-score.(i)) ~tie:i i
    in
    for i = 0 to n - 1 do
      if indeg.(i) = 0 then push i
    done;
    let order = Isched_util.Vec.create () in
    while not (Isched_util.Pqueue.is_empty ready) do
      let i = Isched_util.Pqueue.pop ready in
      Isched_util.Vec.push order i;
      List.iter
        (fun j ->
          indeg.(j) <- indeg.(j) - 1;
          if indeg.(j) = 0 then push j)
        edges.(i)
    done;
    let order = Isched_util.Vec.to_array order in
    assert (Array.length order = n);
    let body_arr = Array.of_list l.body in
    let body = Array.to_list (Array.map (fun i -> body_arr.(i)) order) in
    Ast.with_body l body
  end
