(** Statement-level synchronization migration (the author's EURO-PAR'95
    companion technique, implemented here as an optional pre-pass and
    evaluated as ablation A3).

    Reordering the statements of the loop body — legally, i.e. without
    breaking any loop-independent dependence — can turn a lexically
    backward dependence into a lexically forward one before any
    instruction scheduling happens: if the dependence source statement
    can be hoisted above the sink statement, the send will precede the
    wait in program order and the LBD cost disappears at the statement
    level already.

    The pass builds the intra-iteration dependence DAG over statements
    and emits a topological order that greedily prefers statements that
    are sources of carried dependences (so sends happen early) and defers
    statements that are sinks of carried dependences (so waits happen
    late). *)

module Ast := Isched_frontend.Ast

(** [reorder l] returns the same loop with a permuted body (labels move
    with their statements).  The permutation never violates a
    loop-independent dependence. *)
val reorder : Ast.loop -> Ast.loop
