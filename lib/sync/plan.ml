module Ast = Isched_frontend.Ast
module Dep = Isched_deps.Dep
module Access = Isched_deps.Access

type signal_decl = { signal : int; src : Access.t; label : string }
type pair = { wait : int; signal : int; distance : int; dep : Dep.t }
type t = { signals : signal_decl array; pairs : pair array }

let stmt_label (l : Ast.loop) i =
  match List.nth_opt l.body i with Some s -> s.Ast.label | None -> Printf.sprintf "S%d" (i + 1)

let of_deps (l : Ast.loop) deps =
  let carried = List.filter Dep.carried deps in
  (* Signals: one per distinct source access, in deterministic order. *)
  let sig_tbl : (int * int, int) Hashtbl.t = Hashtbl.create 8 in
  let signals = Isched_util.Vec.create () in
  let signal_of (a : Access.t) =
    let key = (a.stmt, a.idx) in
    match Hashtbl.find_opt sig_tbl key with
    | Some s -> s
    | None ->
      let s = Isched_util.Vec.length signals in
      Hashtbl.add sig_tbl key s;
      Isched_util.Vec.push signals { signal = s; src = a; label = stmt_label l a.stmt };
      s
  in
  let pairs =
    List.mapi
      (fun w (d : Dep.t) ->
        { wait = w; signal = signal_of d.src; distance = Dep.sync_distance d; dep = d })
      carried
  in
  { signals = Isched_util.Vec.to_array signals; pairs = Array.of_list pairs }

let build (l : Ast.loop) =
  of_deps l (Dep.carried_deps l)

let n_lfd t =
  Array.fold_left (fun acc p -> if p.dep.Dep.lexical = Dep.LFD then acc + 1 else acc) 0 t.pairs

let n_lbd t =
  Array.fold_left (fun acc p -> if p.dep.Dep.lexical = Dep.LBD then acc + 1 else acc) 0 t.pairs

let pp_annotated ppf (l : Ast.loop) t =
  Format.fprintf ppf "DOACROSS %s = %d, %d@." l.index l.lo l.hi;
  List.iteri
    (fun i (s : Ast.stmt) ->
      Array.iter
        (fun p ->
          if p.dep.Dep.snk.Access.stmt = i then
            Format.fprintf ppf "  Wait_Signal(%s, %s-%d)@."
              t.signals.(p.signal).label l.index p.distance)
        t.pairs;
      Format.fprintf ppf "  %a@." Ast.pp_stmt s;
      Array.iter
        (fun (sd : signal_decl) ->
          if sd.src.Access.stmt = i then Format.fprintf ppf "  Send_Signal(%s)@." sd.label)
        t.signals)
    l.body;
  Format.fprintf ppf "END_DOACROSS@."

(* Observability shadow: the exported [build] is the traced one (the
   "partition" stage of the pipeline — sync pairs chosen per loop). *)
let build l = Isched_obs.Span.with_ ~name:"sync.plan" (fun () -> build l)
