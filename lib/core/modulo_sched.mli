(** Iterative modulo scheduling (software pipelining) on a single
    superscalar processor — the architectural alternative the paper's
    multiprocessor competes against.

    On one processor no synchronization is needed: the [Send]/[Wait]
    operations disappear and every enforced cross-iteration dependence
    becomes an ordinary loop-carried arc (source instruction to sink
    instruction, iteration distance [omega = d]).  The scheduler finds
    the smallest initiation interval [II] at which one iteration can be
    started every [II] cycles:

    - [II >= ResMII], the resource bound (unit and issue-slot usage per
      iteration divided by availability), and
    - [II >= RecMII], the recurrence bound (for every dependence cycle,
      total latency over total distance),

    using Rau-style iterative scheduling: operations are placed highest
    priority first at the earliest start satisfying
    [sched(dst) - sched(src) >= latency - II*omega] under a modulo
    resource table; if no slot fits within one [II] window the attempt
    restarts at [II + 1].

    The total single-processor time is [(n - 1) * II + span] where
    [span] is one iteration's schedule length — compared against the
    DOACROSS times in the benchmark harness ("architecture comparison"
    table): software pipelining matches DOACROSS on recurrence-bound
    loops (QCD) and loses by up to the processor count on convertible
    ones. *)

module Machine := Isched_ir.Machine
module Program := Isched_ir.Program

type t = {
  prog : Program.t;
  machine : Machine.t;
  ii : int;  (** initiation interval *)
  cycle_of : int array;  (** per body index; [-1] for the dropped sync ops *)
  span : int;  (** one iteration's schedule length in cycles *)
  res_mii : int;
  rec_mii : int;
}

(** [run g m] — modulo-schedule [g]'s program (sync operations ignored)
    on machine [m].  The result always satisfies {!validate}. *)
val run : Isched_dfg.Dfg.t -> Machine.t -> t

(** [total_time t] — [(n-1) * II + span] for the program's [n]. *)
val total_time : t -> int

(** [validate t g] — recheck every modulo constraint: loop-carried and
    intra-iteration arcs, modulo resource usage, issue width. *)
val validate : t -> Isched_dfg.Dfg.t -> (unit, string) result

val pp : Format.formatter -> t -> unit
