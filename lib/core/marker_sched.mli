(** Synchronization-marker guided list scheduling — the author's earlier
    technique (Hwang & Lai, "Guiding Instruction Scheduling with
    Synchronization Markers on a Superscalar-Based Multiprocessor",
    ISPAN 1994, the paper's reference [18]), reconstructed as a middle
    baseline between plain list scheduling and the new scheduler.

    The idea: keep the classic list scheduler but mark the
    synchronization operations so its greedy priority treats them
    specially — a [Send] inherits the {e maximum} priority (issue it the
    moment its source completes, pulling sends up), a [Wait] gets the
    {e minimum} (issue it as late as the sink chain allows, pushing
    waits down).  This shortens wait-to-send spans heuristically but,
    unlike the new scheduler, neither guarantees LFD conversion nor
    compacts the unavoidable synchronization paths — the gap between the
    two is measured by ablation A5. *)

module Machine := Isched_ir.Machine

(** [run g m] — marker-guided list scheduling; always legal. *)
val run : Isched_dfg.Dfg.t -> Machine.t -> Schedule.t
