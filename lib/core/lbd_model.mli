(** The LBD loop theorem as an analytic model (Section 2).

    For a synchronization pair whose send is scheduled at position [i]
    and wait at position [j] (1-based cycles), dependence distance [d],
    iteration count [n] and schedule length [l]:

    - if [i < j] the pair behaves as an LFD: iterations overlap fully and
      the pair contributes no cross-iteration delay;
    - otherwise each link of the iteration chain [k -> k+d] delays the
      successor by [i - j + 1] cycles, there are [floor((n-1)/d)] links,
      and the loop needs about [(n/d)(i-j) + l] cycles — the paper's
      formula; {!exact_pair_time} keeps the [+1] and the floor.

    The model is validated against the cycle-accurate simulator by the
    property tests. *)

type pair_report = {
  wait_id : int;
  signal : int;
  distance : int;
  wait_pos : int;  (** 1-based scheduled position [j] *)
  send_pos : int;  (** 1-based scheduled position [i] *)
  is_lbd : bool;  (** [send_pos >= wait_pos]: still lexically backward *)
  paper_time : int;  (** [(n/d)(i-j) + l], clamped below at [l] *)
  exact_time : int;  (** [floor((n-1)/d) * max(0, i-j+1) + l] *)
}

(** [pairs s] reports every synchronization pair of the schedule. *)
val pairs : Schedule.t -> pair_report list

(** [n_lbd s] — pairs still lexically backward in the schedule. *)
val n_lbd : Schedule.t -> int

(** [observe_sync_spans d s] records the [i - j] sync span of every
    pair of [s] into the distribution [d] — the per-schedule LBD metric
    the schedulers publish ([sched.<which>.sync_span]).  No-op when
    counter collection is disabled. *)
val observe_sync_spans : Isched_obs.Counters.dist -> Schedule.t -> unit

(** [paper_time s] / [exact_time s] — the predicted parallel execution
    time of the whole loop: the worst pair (or [l] when every pair is
    forward). *)
val paper_time : Schedule.t -> int

val exact_time : Schedule.t -> int

val pp_report : Format.formatter -> pair_report -> unit
