module Dfg = Isched_dfg.Dfg
module Instr = Isched_ir.Instr
module Program = Isched_ir.Program
module Span = Isched_obs.Span
module Counters = Isched_obs.Counters

let c_runs = Counters.counter "sched.marker.runs"
let d_sync_span = Counters.dist "sched.marker.sync_span"

let run_inner (g : Dfg.t) machine =
  let p = g.Dfg.prog in
  let n = g.Dfg.n in
  let base = Dfg.longest_path_to_exit g in
  let top = Array.fold_left max 0 base + 1 in
  (* Latency-only ASAP times: the marker for a wait is "do not issue
     before the cycle at which your sink could otherwise start". *)
  let asap = Array.make n 0 in
  for i = 0 to n - 1 do
    Dfg.iter_preds g i (fun a ->
        let t = asap.(Dfg.arc_node a) + Dfg.arc_latency a in
        if t > asap.(i) then asap.(i) <- t)
  done;
  let priority = Array.copy base in
  let release = Array.make n 0 in
  Array.iter
    (fun (s : Program.signal_info) -> priority.(s.Program.send_instr) <- top)
    p.Program.signals;
  Array.iter
    (fun (w : Program.wait_info) ->
      priority.(w.Program.wait_instr) <- -1;
      (* The sink's ASAP already accounts for the wait's own arc (wait at
         0 + latency 1); deferring the wait to asap(snk) - 1 keeps the
         sink's start unchanged while pushing the wait down. *)
      release.(w.Program.wait_instr) <- max 0 (asap.(w.Program.snk_instr) - 1))
    p.Program.waits;
  List_sched.run ~tag:"marker" ~priority ~release g machine

(* Note: the marker scheduler drives {!List_sched.run} underneath, so
   every [sched.marker.runs] also counts one nested [sched.list.runs]
   (same for the new scheduler's baseline comparison). *)
let run (g : Dfg.t) machine =
  Counters.incr c_runs;
  let s = Span.with_ ~name:"sched.marker" (fun () -> run_inner g machine) in
  Lbd_model.observe_sync_spans d_sync_span s;
  s
