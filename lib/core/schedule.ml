module Program = Isched_ir.Program
module Machine = Isched_ir.Machine
module Instr = Isched_ir.Instr
module Fu = Isched_ir.Fu
module Dfg = Isched_dfg.Dfg

type t = {
  prog : Program.t;
  machine : Machine.t;
  cycle_of : int array;
  rows : int array array;
  length : int;
}

let of_cycles prog machine cycle_of =
  let n = Array.length prog.Program.body in
  if Array.length cycle_of <> n then invalid_arg "Schedule.of_cycles: length mismatch";
  Array.iteri
    (fun i c ->
      if c < 0 then
        invalid_arg (Printf.sprintf "Schedule.of_cycles: instruction %d unscheduled" (i + 1)))
    cycle_of;
  let length = if n = 0 then 0 else 1 + Array.fold_left max 0 cycle_of in
  (* Counting sort into exactly-sized rows, ascending within each row;
     no intermediate lists. *)
  let counts = Array.make (length + 1) 0 in
  Array.iter (fun c -> counts.(c) <- counts.(c) + 1) cycle_of;
  let rows = Array.init length (fun c -> Array.make counts.(c) 0) in
  let cur = Array.make (length + 1) 0 in
  for i = 0 to n - 1 do
    let c = cycle_of.(i) in
    rows.(c).(cur.(c)) <- i;
    cur.(c) <- cur.(c) + 1
  done;
  { prog; machine; cycle_of; rows; length }

let position t i = t.cycle_of.(i) + 1

let validate t (g : Dfg.t) =
  let m = t.machine in
  let problem = ref None in
  let fail fmt = Printf.ksprintf (fun s -> if !problem = None then problem := Some s) fmt in
  (* Arcs. *)
  for i = 0 to g.Dfg.n - 1 do
    Dfg.iter_succs g i (fun a ->
        let dst = Dfg.arc_node a in
        let lat = Dfg.arc_latency a in
        let gap = t.cycle_of.(dst) - t.cycle_of.(i) in
        if gap < lat then fail "arc %d -> %d needs %d cycles, got %d" (i + 1) (dst + 1) lat gap)
  done;
  (* Issue width. *)
  Array.iteri
    (fun c row ->
      if Array.length row > m.Machine.issue_width then
        fail "row %d issues %d > width %d" c (Array.length row) m.Machine.issue_width)
    t.rows;
  (* Function units: occupancy counting per cycle. *)
  let horizon = t.length + 8 in
  let used = Array.make_matrix Fu.count horizon 0 in
  Array.iteri
    (fun i ins ->
      match Instr.fu ins with
      | None -> ()
      | Some kind ->
        let d = if m.Machine.pipelined then 1 else Fu.latency kind in
        for c = t.cycle_of.(i) to min (horizon - 1) (t.cycle_of.(i) + d - 1) do
          let k = Fu.index kind in
          used.(k).(c) <- used.(k).(c) + 1;
          if used.(k).(c) > Machine.fu_count m kind then
            fail "%s oversubscribed at cycle %d" (Fu.name kind) c
        done)
    t.prog.Program.body;
  match !problem with None -> Ok () | Some msg -> Error msg

let compact t g =
  let current = ref t in
  let try_remove () =
    let s = !current in
    let empty = ref None in
    for c = s.length - 1 downto 0 do
      if Array.length s.rows.(c) = 0 then empty := Some c
    done;
    match !empty with
    | None -> false
    | Some _ ->
      (* Try each empty row, earliest first; accept the first removal
         that validates. *)
      let rec attempt c =
        if c >= s.length then false
        else if Array.length s.rows.(c) > 0 then attempt (c + 1)
        else begin
          let cycle_of =
            Array.map (fun x -> if x > c then x - 1 else x) s.cycle_of
          in
          let candidate = of_cycles s.prog s.machine cycle_of in
          match validate candidate g with
          | Ok () ->
            current := candidate;
            true
          | Error _ -> attempt (c + 1)
        end
      in
      attempt 0
  in
  while try_remove () do
    ()
  done;
  !current

let pp ppf t =
  Array.iteri
    (fun c row ->
      let cells =
        Array.to_list (Array.map (fun i -> string_of_int (i + 1)) row)
      in
      let width = t.machine.Machine.issue_width in
      let padded = cells @ List.init (max 0 (width - List.length cells)) (fun _ -> "-") in
      Format.fprintf ppf "%3d: (%s)@." (c + 1) (String.concat ", " padded))
    t.rows

let pp_wide ppf t =
  Array.iteri
    (fun c row ->
      let cells =
        Array.to_list
          (Array.map
             (fun i ->
               Format.asprintf "%a"
                 (Instr.pp_full
                    ~signal_name:(Program.signal_label t.prog)
                    ~wait_name:(Program.wait_label t.prog))
                 t.prog.Program.body.(i))
             row)
      in
      Format.fprintf ppf "%3d: %s@." (c + 1)
        (if cells = [] then "(empty)" else String.concat "  ||  " cells))
    t.rows

let to_string t = Format.asprintf "%a" pp t
