(** The paper's new instruction-scheduling technique (Section 3.2).

    The scheduler works on the data-flow graph with synchronization-
    condition arcs, partitioned into Sig / Wat / Sigwat components:

    + Within each Sigwat component, every wait whose send is reachable
      from it defines a synchronization path [SP(Wat, Sig)] — an
      unavoidable LBD.  Paths are grouped when they share nodes (shared
      nodes force simultaneous scheduling) and groups are scheduled in
      descending damage order [(n/d) * |SP|]; the nodes of each path are
      placed on consecutive cycles so the scheduled wait-to-send span,
      and with it the [(n/d)(i-j)+l] cost, is minimal.
    + Every other wait is placed only {e after} its corresponding send:
      the dependence becomes lexically forward in the schedule and costs
      nothing beyond one iteration.  This rule is applied globally, so
      it also covers pairs whose send and wait live in different
      components (Sig graphs before Sigwat/Wat graphs, in the paper's
      phrasing).
    + All remaining instructions fill free issue slots as-soon-as-
      possible, in dependence order.

    The result is resource- and dependence-legal exactly like the list
    scheduler's, and the paper's claim — never worse, usually far better
    on LBD loops — is enforced by construction and checked by the
    property tests. *)

module Machine := Isched_ir.Machine

(** Tuning knobs, mostly for the ablation benches. *)
type options = {
  order_paths : bool;
      (** sort path groups by damage [(n/d)*|SP|] (default true; ablation
          A1 turns it off to measure the value of the ordering rule) *)
  compact : bool;  (** squeeze legal empty rows afterwards (default true) *)
}

val default_options : options

(** [run ?options ?baseline g m] schedules [g]'s program on machine [m].

    [baseline], when given, must be [List_sched.run g m]'s result; the
    never-degrade comparison then reuses it instead of re-running the
    list scheduler.  Callers that already have that schedule (the bench
    tables measure both) pass it to halve the list-scheduling work. *)
val run :
  ?options:options -> ?baseline:Schedule.t -> Isched_dfg.Dfg.t -> Machine.t -> Schedule.t
