module Machine = Isched_ir.Machine
module Dfg = Isched_dfg.Dfg
module Pqueue = Isched_util.Pqueue
module Span = Isched_obs.Span
module Counters = Isched_obs.Counters
module Provenance = Isched_obs.Provenance

let c_runs = Counters.counter "sched.list.runs"
let d_sync_span = Counters.dist "sched.list.sync_span"

let run_inner ?(tag = "list") ?priority ?release (g : Dfg.t) machine =
  let n = g.Dfg.n in
  let prio = match priority with Some p -> p | None -> Dfg.longest_path_to_exit g in
  if Array.length prio <> n then invalid_arg "List_sched.run: priority length mismatch";
  let release = match release with Some r -> r | None -> Array.make n 0 in
  if Array.length release <> n then invalid_arg "List_sched.run: release length mismatch";
  let res = Resource.create machine in
  let cycle_of = Array.make n (-1) in
  let indeg = Array.make n 0 in
  Array.iter (fun arcs -> List.iter (fun (a : Dfg.arc) -> indeg.(a.dst) <- indeg.(a.dst) + 1) arcs) g.Dfg.succs;
  let est = Array.init n (fun i -> max 0 release.(i)) in
  (* Provenance bookkeeping, all gated on one atomic read per run so the
     disabled path touches none of it (pinned byte-identical by the
     property suite). *)
  let prov = Provenance.enabled () in
  let bind : Provenance.binding option array =
    if prov then
      Array.init n (fun i ->
          if release.(i) > 0 then
            Some { Provenance.pred = -1; latency = release.(i); arc = "release" }
          else None)
    else [||]
  in
  let rej : Provenance.rejection list array = if prov then Array.make n [] else [||] in
  (* Calendar queue: bucket c holds the nodes becoming ready exactly at
     cycle c.  The main loop walks cycles in order, so a cycle-indexed
     vector gives O(1) insert and drain with no hashing. *)
  let future : int list Isched_util.Vec.t = Isched_util.Vec.create () in
  let push_future c i =
    Isched_util.Vec.ensure_size future (c + 1) [];
    Isched_util.Vec.set future c (i :: Isched_util.Vec.get future c)
  in
  for i = 0 to n - 1 do
    if indeg.(i) = 0 then push_future est.(i) i
  done;
  let ready = Pqueue.create () in
  let scheduled = ref 0 in
  let cycle = ref 0 in
  while !scheduled < n do
    (match Isched_util.Vec.get_or future !cycle [] with
    | [] -> ()
    | nodes ->
      List.iter (fun i -> Pqueue.push ready ~prio:prio.(i) ~tie:i i) nodes;
      Isched_util.Vec.set future !cycle []);
    (* Fill this cycle's issue slots in priority order; nodes that do not
       fit (unit conflict) are deferred within the cycle and retried next
       cycle. *)
    let deferred = ref [] in
    while not (Pqueue.is_empty ready) do
      let i = Pqueue.pop ready in
      let ins = g.Dfg.prog.Isched_ir.Program.body.(i) in
      if Resource.fits res ~cycle:!cycle ins then begin
        Resource.reserve res ~cycle:!cycle ins;
        cycle_of.(i) <- !cycle;
        incr scheduled;
        if prov then
          Provenance.record ~scheduler:tag ~prog:g.Dfg.prog.Isched_ir.Program.name ~instr:i
            ~cycle:!cycle ~ready:est.(i)
            ~candidates:(Pqueue.length ready + List.length !deferred + 1)
            ~priority:prio.(i) ~rejections:(List.rev rej.(i)) ?binding:bind.(i) ();
        List.iter
          (fun (a : Dfg.arc) ->
            indeg.(a.dst) <- indeg.(a.dst) - 1;
            let ready_at = !cycle + a.latency in
            if prov && ready_at >= est.(a.dst) then
              bind.(a.dst) <-
                Some { Provenance.pred = i; latency = a.latency; arc = Dfg.arc_kind_name a.kind };
            est.(a.dst) <- max est.(a.dst) ready_at;
            if indeg.(a.dst) = 0 then push_future (max est.(a.dst) (!cycle + 1)) a.dst)
          g.Dfg.succs.(i)
      end
      else begin
        if prov then begin
          let reason =
            match Resource.reject_reason res ~cycle:!cycle ins with
            | Some r -> r
            | None -> "no fit"
          in
          rej.(i) <- { Provenance.at_cycle = !cycle; reason } :: rej.(i)
        end;
        deferred := i :: !deferred
      end
    done;
    List.iter (fun i -> Pqueue.push ready ~prio:prio.(i) ~tie:i i) !deferred;
    incr cycle
  done;
  Schedule.of_cycles g.Dfg.prog machine cycle_of

let run ?tag ?priority ?release (g : Dfg.t) machine =
  Counters.incr c_runs;
  let s = Span.with_ ~name:"sched.list" (fun () -> run_inner ?tag ?priority ?release g machine) in
  Lbd_model.observe_sync_spans d_sync_span s;
  s
