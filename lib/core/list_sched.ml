module Machine = Isched_ir.Machine
module Dfg = Isched_dfg.Dfg
module Ipqueue = Isched_util.Ipqueue
module Span = Isched_obs.Span
module Counters = Isched_obs.Counters
module Provenance = Isched_obs.Provenance

let c_runs = Counters.counter "sched.list.runs"
let d_sync_span = Counters.dist "sched.list.sync_span"

(* Per-domain scratch, reused across runs: a scaled bench run schedules
   thousands of small graphs per second, and the working arrays below
   dominated its allocation rate.  Only [cycle_of] escapes into the
   returned schedule and stays freshly allocated.  [head]/[link] form
   the flattened calendar queue: [head.(c)] is 1 + the first node of
   the bucket becoming ready exactly at cycle c (0 = empty), [link.(i)]
   chains to the next node of the same bucket; each node enters the
   calendar exactly once, so drain and insert are O(1) with zero
   allocation.  [head_hwm] is the highest cycle slot dirtied by the
   previous run — the prefix re-zeroed on acquire. *)
type scratch = {
  mutable indeg : int array;
  mutable est : int array;
  mutable link : int array;
  mutable deferred : int array;
  mutable head : int array;
  mutable head_hwm : int;
  ready : Ipqueue.t;
  pending : Ipqueue.t array;  (* per unit kind: parked until the kind frees up *)
}

let scratch_key =
  Domain.DLS.new_key (fun () ->
      {
        indeg = Array.make 64 0;
        est = Array.make 64 0;
        link = Array.make 64 0;
        deferred = Array.make 64 0;
        head = Array.make 64 0;
        head_hwm = 0;
        ready = Ipqueue.create ();
        pending = Array.init Isched_ir.Fu.count (fun _ -> Ipqueue.create ());
      })

let acquire_scratch n =
  let s = Domain.DLS.get scratch_key in
  if Array.length s.indeg < n then begin
    let cap = max n (2 * Array.length s.indeg) in
    s.indeg <- Array.make cap 0;
    s.est <- Array.make cap 0;
    s.link <- Array.make cap 0;
    s.deferred <- Array.make cap 0
  end;
  Array.fill s.head 0 (min s.head_hwm (Array.length s.head)) 0;
  s.head_hwm <- 0;
  Ipqueue.clear s.ready;
  Array.iter Ipqueue.clear s.pending;
  s

let run_inner ?(tag = "list") ?priority ?release (g : Dfg.t) machine =
  let n = g.Dfg.n in
  let prio = match priority with Some p -> p | None -> Dfg.longest_path_to_exit g in
  if Array.length prio <> n then invalid_arg "List_sched.run: priority length mismatch";
  (match release with
  | Some r when Array.length r <> n -> invalid_arg "List_sched.run: release length mismatch"
  | _ -> ());
  let res = Resource.scratch machine in
  let fuc = Dfg.fu_codes g in
  let cycle_of = Array.make n (-1) in
  let s = acquire_scratch n in
  let indeg = s.indeg and est = s.est and link = s.link and deferred = s.deferred in
  for i = 0 to n - 1 do
    indeg.(i) <- Dfg.pred_deg g i;
    est.(i) <- (match release with Some r -> max 0 r.(i) | None -> 0)
  done;
  (* Provenance bookkeeping, all gated on one atomic read per run so the
     disabled path touches none of it (pinned byte-identical by the
     property suite). *)
  let prov = Provenance.enabled () in
  let bind : Provenance.binding option array =
    if prov then
      Array.init n (fun i ->
          if est.(i) > 0 then
            Some { Provenance.pred = -1; latency = est.(i); arc = "release" }
          else None)
    else [||]
  in
  let rej : Provenance.rejection list array = if prov then Array.make n [] else [||] in
  let push_future c i =
    if c >= Array.length s.head then begin
      let cap = max (c + 1) (2 * Array.length s.head) in
      let bigger = Array.make cap 0 in
      Array.blit s.head 0 bigger 0 (Array.length s.head);
      s.head <- bigger
    end;
    if c + 1 > s.head_hwm then s.head_hwm <- c + 1;
    link.(i) <- s.head.(c);
    s.head.(c) <- i + 1
  in
  for i = 0 to n - 1 do
    if indeg.(i) = 0 then push_future est.(i) i
  done;
  let ready = s.ready in
  let pending = s.pending in
  (* Within-cycle deferral stack (provenance path only): nodes popped
     this cycle that did not fit (unit conflict); retried from the next
     cycle on. *)
  let n_def = ref 0 in
  let scheduled = ref 0 in
  let cycle = ref 0 in
  while !scheduled < n do
    let bucket = ref (if !cycle < Array.length s.head then s.head.(!cycle) else 0) in
    while !bucket <> 0 do
      let i = !bucket - 1 in
      Ipqueue.push ready ~prio:prio.(i) ~tie:i i;
      bucket := link.(i)
    done;
    (* Re-admit parked nodes whose unit kind has capacity again.  Within
       one kind and cycle, [fits_code] is monotone in priority (occupancy
       only grows during the scan below), and at most [fu_counts.(k)]
       kind-[k] nodes can start per cycle, so moving the top that many
       parked nodes back to [ready] reproduces the exhaustive re-queue
       exactly — without re-heapifying every blocked node every cycle. *)
    if not prov then
      Array.iteri
        (fun k pq ->
          if
            (not (Ipqueue.is_empty pq)) && Resource.fits_code res ~cycle:!cycle k
          then begin
            let grant = ref machine.Machine.fu_counts.(k) in
            while !grant > 0 && not (Ipqueue.is_empty pq) do
              let i = Ipqueue.pop pq in
              Ipqueue.push ready ~prio:prio.(i) ~tie:i i;
              decr grant
            done
          end)
        pending;
    (* Fill this cycle's issue slots in priority order; nodes that do not
       fit (unit conflict) are parked on their unit kind's pending queue
       until the kind frees up.  Once the cycle's issue slots are gone
       nothing else can fit, so the remaining ready nodes stay queued
       untouched — except under provenance, which owes every blocked node
       a per-cycle rejection record and therefore keeps the exhaustive
       scan with the every-cycle re-queue. *)
    while
      (not (Ipqueue.is_empty ready)) && (prov || Resource.issue_free res ~cycle:!cycle)
    do
      let i = Ipqueue.pop ready in
      if Resource.fits_code res ~cycle:!cycle fuc.(i) then begin
        Resource.reserve_code res ~cycle:!cycle fuc.(i);
        cycle_of.(i) <- !cycle;
        incr scheduled;
        if prov then
          Provenance.record ~scheduler:tag ~prog:g.Dfg.prog.Isched_ir.Program.name ~instr:i
            ~cycle:!cycle ~ready:est.(i)
            ~candidates:(Ipqueue.length ready + !n_def + 1)
            ~priority:prio.(i) ~rejections:(List.rev rej.(i)) ?binding:bind.(i) ();
        Dfg.iter_succs g i (fun a ->
            let dst = Dfg.arc_node a in
            let lat = Dfg.arc_latency a in
            indeg.(dst) <- indeg.(dst) - 1;
            let ready_at = !cycle + lat in
            if prov && ready_at >= est.(dst) then
              bind.(dst) <-
                Some
                  { Provenance.pred = i;
                    latency = lat;
                    arc = Dfg.arc_kind_name (Dfg.arc_kind a) };
            est.(dst) <- max est.(dst) ready_at;
            if indeg.(dst) = 0 then push_future (max est.(dst) (!cycle + 1)) dst)
      end
      else if prov then begin
        let ins = g.Dfg.prog.Isched_ir.Program.body.(i) in
        let reason =
          match Resource.reject_reason res ~cycle:!cycle ins with
          | Some r -> r
          | None -> "no fit"
        in
        rej.(i) <- { Provenance.at_cycle = !cycle; reason } :: rej.(i);
        deferred.(!n_def) <- i;
        incr n_def
      end
      else
        (* Only a unit conflict reaches here on the fast path (the loop
           guard keeps an issue slot open, under which sync ops always
           fit), so [fuc.(i)] is a valid kind index. *)
        Ipqueue.push pending.(fuc.(i)) ~prio:prio.(i) ~tie:i i
    done;
    for d = 0 to !n_def - 1 do
      let i = deferred.(d) in
      Ipqueue.push ready ~prio:prio.(i) ~tie:i i
    done;
    n_def := 0;
    incr cycle
  done;
  Schedule.of_cycles g.Dfg.prog machine cycle_of

let run ?tag ?priority ?release (g : Dfg.t) machine =
  Counters.incr c_runs;
  let s = Span.with_ ~name:"sched.list" (fun () -> run_inner ?tag ?priority ?release g machine) in
  Lbd_model.observe_sync_spans d_sync_span s;
  s
