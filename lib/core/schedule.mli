(** A static schedule of one iteration's body: every instruction is
    assigned an issue cycle (a row of the wide-instruction word layout of
    the paper's Fig. 4). *)

module Program := Isched_ir.Program
module Machine := Isched_ir.Machine

type t = {
  prog : Program.t;
  machine : Machine.t;
  cycle_of : int array;  (** body index -> issue cycle (0-based) *)
  rows : int array array;  (** cycle -> body indices, ascending *)
  length : int;  (** number of cycles [l] *)
}

(** [of_cycles prog machine cycle_of] builds the row layout.  Raises
    [Invalid_argument] on negative or missing cycles. *)
val of_cycles : Program.t -> Machine.t -> int array -> t

(** [validate t g] checks full legality against the data-flow graph [g]:
    every arc separated by at least the producer latency, issue width
    respected in every row, and function-unit occupancy feasible
    (non-pipelined units stay busy for their whole latency).  Returns
    [Error msg] describing the first violation. *)
val validate : t -> Isched_dfg.Dfg.t -> (unit, string) result

(** [compact t g] removes empty rows wherever doing so keeps the
    schedule legal; never returns a longer schedule. *)
val compact : t -> Isched_dfg.Dfg.t -> t

(** [cycle t i] is 1-based position of instruction [i] in the schedule
    (the paper's positions [i], [j] in the LBD formula). *)
val position : t -> int -> int

(** [pp ppf t] prints rows in the style of Fig. 4: one parenthesised
    tuple of original instruction numbers per cycle. *)
val pp : Format.formatter -> t -> unit

(** [pp_wide ppf t] prints each row with the instruction texts. *)
val pp_wide : Format.formatter -> t -> unit

val to_string : t -> string
