module Machine = Isched_ir.Machine
module Program = Isched_ir.Program
module Instr = Isched_ir.Instr
module Dfg = Isched_dfg.Dfg
module Span = Isched_obs.Span
module Counters = Isched_obs.Counters
module Provenance = Isched_obs.Provenance

let c_runs = Counters.counter "sched.new.runs"
let c_fallbacks = Counters.counter "sched.new.list_fallback"
let d_sync_span = Counters.dist "sched.new.sync_span"

type options = { order_paths : bool; compact : bool }

let default_options = { order_paths = true; compact = true }

type state = {
  g : Dfg.t;
  res : Resource.t;
  cycle_of : int array;
  (* wait node -> send node, for pairs that must become LFD (no
     wait->send path exists); waits heading a sync path are absent. *)
  lfd_wait_send : (int, int) Hashtbl.t;
  prov : bool;  (* provenance recording enabled, read once per run *)
  prio : int array;  (* longest path to exit, the phase-3 priority *)
}

let placed st i = st.cycle_of.(i) >= 0

let ready_cycle st i =
  List.fold_left
    (fun acc (a : Dfg.arc) -> max acc (st.cycle_of.(a.src) + a.latency))
    0 st.g.Dfg.preds.(i)

(* The refused probes of a [first_fit] scan, re-derived after the fact:
   reserving at [stop] frees nothing, so [reject_reason] still answers
   for every cycle in [start, stop). *)
let rejections_between st ~start ~stop ins =
  let rec go c acc =
    if c >= stop then List.rev acc
    else
      let acc =
        match Resource.reject_reason st.res ~cycle:c ins with
        | Some reason -> { Provenance.at_cycle = c; reason } :: acc
        | None -> acc
      in
      go (c + 1) acc
  in
  go start []

(* The dependence arc that set [ready_cycle], for binding attribution. *)
let binding_arc st i =
  List.fold_left
    (fun acc (a : Dfg.arc) ->
      let t = st.cycle_of.(a.src) + a.latency in
      match acc with
      | Some (best, _) when best >= t -> acc
      | _ ->
        Some (t, { Provenance.pred = a.src; latency = a.latency; arc = Dfg.arc_kind_name a.kind }))
    None st.g.Dfg.preds.(i)
  |> Option.map snd

(* Place node [i] (and, recursively, its unscheduled ancestors) at the
   earliest feasible cycle >= [from].  Waits registered in
   [lfd_wait_send] are additionally forced after their send.  [ctx], when
   given, names the constraint behind a caller-imposed [from] floor (the
   sync-path contiguity of [place_path]); it becomes the decision's
   binding when that floor dominates the dependence-readiness cycle. *)
let rec place st ?(from = 0) ?ctx i =
  if not (placed st i) then begin
    List.iter (fun (a : Dfg.arc) -> place st a.src) st.g.Dfg.preds.(i);
    let from_outer = from in
    let lfd_send = Hashtbl.find_opt st.lfd_wait_send i in
    let from =
      match lfd_send with
      | Some send ->
        place st send;
        max from (st.cycle_of.(send) + 1)
      | None -> from
    in
    let ins = st.g.Dfg.prog.Program.body.(i) in
    let ready = ready_cycle st i in
    let start = max from ready in
    let c = Resource.first_fit st.res ~from:start ins in
    Resource.reserve st.res ~cycle:c ins;
    st.cycle_of.(i) <- c;
    if st.prov then begin
      let binding =
        match lfd_send with
        | Some send when st.cycle_of.(send) + 1 >= ready && st.cycle_of.(send) + 1 >= from_outer
          -> Some { Provenance.pred = send; latency = 1; arc = "sync-order" }
        | _ -> if from_outer > ready then ctx else binding_arc st i
      in
      Provenance.record ~scheduler:"new" ~prog:st.g.Dfg.prog.Program.name ~instr:i ~cycle:c
        ~ready ~candidates:1 ~priority:st.prio.(i)
        ~rejections:(rejections_between st ~start ~stop:c ins)
        ?binding ()
    end
  end

(* Place a node at the earliest feasible cycle >= [from] and return the
   chosen cycle. *)
let place_at_least st i ~from ?ctx () =
  place st ~from ?ctx i;
  st.cycle_of.(i)

(* --- synchronization paths --- *)

type path_group = { key : float; paths : Dfg.sync_path list; order : int }

let group_paths ~n_iters ~order_paths (paths : Dfg.sync_path list) =
  match paths with
  | [] -> []
  | _ ->
    let arr = Array.of_list paths in
    let uf = Isched_util.Union_find.create (Array.length arr) in
    let owner : (int, int) Hashtbl.t = Hashtbl.create 32 in
    Array.iteri
      (fun pi (p : Dfg.sync_path) ->
        List.iter
          (fun node ->
            match Hashtbl.find_opt owner node with
            | Some qi -> ignore (Isched_util.Union_find.union uf pi qi)
            | None -> Hashtbl.add owner node pi)
          p.Dfg.nodes)
      arr;
    let weight (p : Dfg.sync_path) =
      float_of_int n_iters /. float_of_int (max 1 p.Dfg.distance)
      *. float_of_int (List.length p.Dfg.nodes)
    in
    let groups =
      Isched_util.Union_find.groups uf
      |> List.map (fun (rep, members) ->
             let paths = List.map (fun m -> arr.(m)) members in
             let key = List.fold_left (fun acc p -> Float.max acc (weight p)) 0. paths in
             let paths =
               List.sort (fun a b -> compare (weight b, a.Dfg.wait_id) (weight a, b.Dfg.wait_id)) paths
             in
             { key; paths; order = rep })
    in
    if order_paths then
      List.sort (fun a b -> compare (b.key, a.order) (a.key, b.order)) groups
    else List.sort (fun a b -> compare a.order b.order) groups

(* Latency-only ASAP times, ignoring resources: the lower bound on any
   node's cycle.  Nodes already placed use their committed cycle. *)
let asap_estimate st =
  let est = Array.make st.g.Dfg.n 0 in
  for i = 0 to st.g.Dfg.n - 1 do
    List.iter
      (fun (a : Dfg.arc) -> est.(i) <- max est.(i) (est.(a.src) + a.latency))
      st.g.Dfg.preds.(i);
    if placed st i then est.(i) <- max est.(i) st.cycle_of.(i)
  done;
  est

(* Schedule the nodes of one path on consecutive cycles.

   The span of the path in the final schedule is what multiplies with
   n/d in the LBD cost, so we want the nodes exactly [latency] apart.
   The start cycle is the smallest at which, by the latency-only ASAP
   bound, every path node can sit at its cumulative-latency offset; in
   particular the head Wait is issued late enough that the rest of the
   path never stalls on operand computations.  Ancestors are placed
   lazily (inside [place]) after the earlier path nodes have claimed
   their slots, so they fill surrounding free slots instead of stealing
   the path's.  A residual resource conflict stretches the remainder of
   the path minimally. *)
let place_path st (p : Dfg.sync_path) =
  let nodes = Array.of_list p.Dfg.nodes in
  let k = Array.length nodes in
  if k = 0 then ()
  else begin
    (* Cumulative offsets along the path. *)
    let offs = Array.make k 0 in
    for i = 1 to k - 1 do
      let lat =
        List.fold_left
          (fun acc (a : Dfg.arc) -> if a.dst = nodes.(i) then max acc a.latency else acc)
          1
          st.g.Dfg.succs.(nodes.(i - 1))
      in
      offs.(i) <- offs.(i - 1) + lat
    done;
    let est = asap_estimate st in
    let start = ref 0 in
    Array.iteri (fun i v -> start := max !start (est.(v) - offs.(i))) nodes;
    Array.iteri
      (fun i v ->
        if not (placed st v) then begin
          let ctx =
            if i = 0 then { Provenance.pred = -1; latency = 0; arc = "sync-path" }
            else
              { Provenance.pred = nodes.(i - 1);
                latency = offs.(i) - offs.(i - 1);
                arc = "sync-path" }
          in
          let c = place_at_least st v ~from:(!start + offs.(i)) ~ctx () in
          if c > !start + offs.(i) then start := c - offs.(i)
        end
        else start := max !start (st.cycle_of.(v) - offs.(i)))
      nodes
  end

let run_inner ~options (g : Dfg.t) machine =
  let p = g.Dfg.prog in
  let n = g.Dfg.n in
  let st =
    {
      g;
      res = Resource.create machine;
      cycle_of = Array.make n (-1);
      lfd_wait_send = Hashtbl.create 8;
      prov = Provenance.enabled ();
      prio = Dfg.longest_path_to_exit g;
    }
  in
  let paths = Dfg.sync_paths g in
  let path_waits = List.map (fun (sp : Dfg.sync_path) -> List.hd sp.Dfg.nodes) paths in
  (* Every wait not heading a sync path should become lexically forward:
     its send placed first, the wait strictly after.  The paper assumes
     the Sig/Wat/Sigwat graphs "do not depend on each other", but
     compiled loops can violate that (e.g. an unrolled scalar update
     yields two pairs whose sends each depend on the other pair's wait);
     forcing both forward would deadlock the placement recursion.  An
     ordering constraint send->wait is therefore accepted only when it
     keeps the combined graph (data-flow arcs plus the constraints
     accepted so far) acyclic; a rejected pair honestly stays backward. *)
  let extra : (int, int list) Hashtbl.t = Hashtbl.create 8 in
  let reaches src dst =
    (* DFS over DFG arcs + accepted send->wait constraint edges. *)
    let seen = Hashtbl.create 32 in
    let rec go u =
      u = dst
      || (not (Hashtbl.mem seen u))
         && begin
              Hashtbl.add seen u ();
              List.exists (fun (a : Dfg.arc) -> go a.dst) g.Dfg.succs.(u)
              || List.exists go (Option.value ~default:[] (Hashtbl.find_opt extra u))
            end
    in
    go src
  in
  Array.iter
    (fun (w : Program.wait_info) ->
      if not (List.mem w.wait_instr path_waits) then begin
        let send = p.Program.signals.(w.signal).send_instr in
        (* Adding send -> wait creates a cycle iff the wait already
           reaches the send. *)
        if not (reaches w.wait_instr send) then begin
          Hashtbl.replace st.lfd_wait_send w.wait_instr send;
          Hashtbl.replace extra send
            (w.wait_instr :: Option.value ~default:[] (Hashtbl.find_opt extra send))
        end
      end)
    p.Program.waits;
  (* Phase 1: Sigwat components' synchronization paths, worst first. *)
  let groups = group_paths ~n_iters:p.Program.n_iters ~order_paths:options.order_paths paths in
  List.iter (fun grp -> List.iter (place_path st) grp.paths) groups;
  (* Phase 2: sends (Sig graphs and any remaining Sigwat sends) as soon
     as possible, so the waits that must follow them stay early. *)
  Array.iter (fun (s : Program.signal_info) -> place st s.send_instr) p.Program.signals;
  (* Phase 3: everything else, critical path first (ties towards program
     order) so the fill is as dense as the list scheduler's.  Waits
     constrained to follow their sends do so via [lfd_wait_send] inside
     [place]. *)
  let prio = st.prio in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare (-prio.(a), a) (-prio.(b), b)) order;
  Array.iter (fun i -> place st i) order;
  let sched = Schedule.of_cycles p machine st.cycle_of in
  let sched = if options.compact then Schedule.compact sched g else sched in
  (* The paper's guarantee that the technique "never degrades the system
     performance" is enforced by construction: if plain list scheduling
     would finish the loop earlier (possible on loops with little or no
     synchronization, where greedy ASAP filling can lose a row or two to
     critical-path ordering), return the list schedule instead. *)
  let baseline = List_sched.run g machine in
  if Lbd_model.exact_time baseline < Lbd_model.exact_time sched then begin
    Counters.incr c_fallbacks;
    baseline
  end
  else sched

let run ?(options = default_options) (g : Dfg.t) machine =
  Counters.incr c_runs;
  let s = Span.with_ ~name:"sched.new" (fun () -> run_inner ~options g machine) in
  Lbd_model.observe_sync_spans d_sync_span s;
  s
