module Machine = Isched_ir.Machine
module Program = Isched_ir.Program
module Instr = Isched_ir.Instr
module Dfg = Isched_dfg.Dfg
module Span = Isched_obs.Span
module Counters = Isched_obs.Counters
module Provenance = Isched_obs.Provenance

let c_runs = Counters.counter "sched.new.runs"
let c_fallbacks = Counters.counter "sched.new.list_fallback"
let d_sync_span = Counters.dist "sched.new.sync_span"

type options = { order_paths : bool; compact : bool }

let default_options = { order_paths = true; compact = true }

type state = {
  g : Dfg.t;
  res : Resource.t;
  cycle_of : int array;
  (* node -> send node for waits that must become LFD (no wait->send
     path exists), -1 elsewhere; waits heading a sync path carry -1. *)
  lfd_wait_send : int array;
  prov : bool;  (* provenance recording enabled, read once per run *)
  prio : int array;  (* longest path to exit, the phase-3 priority *)
  fuc : int array;  (* per-node Resource.fu_code, memoized on the graph *)
}

let placed st i = st.cycle_of.(i) >= 0

(* The refused probes of a [first_fit] scan, re-derived after the fact:
   reserving at [stop] frees nothing, so [reject_reason] still answers
   for every cycle in [start, stop). *)
let rejections_between st ~start ~stop ins =
  let rec go c acc =
    if c >= stop then List.rev acc
    else
      let acc =
        match Resource.reject_reason st.res ~cycle:c ins with
        | Some reason -> { Provenance.at_cycle = c; reason } :: acc
        | None -> acc
      in
      go (c + 1) acc
  in
  go start []

(* The dependence arc that set [ready_cycle], for binding attribution. *)
let binding_arc st i =
  (* Keeps the first arc seen at the maximum readiness time (strictly
     later arcs replace), exactly the old fold's accumulator rule. *)
  let best = ref min_int in
  let res = ref None in
  Dfg.iter_preds st.g i (fun a ->
      let src = Dfg.arc_node a in
      let lat = Dfg.arc_latency a in
      let t = st.cycle_of.(src) + lat in
      if !res = None || t > !best then begin
        best := t;
        res :=
          Some { Provenance.pred = src; latency = lat; arc = Dfg.arc_kind_name (Dfg.arc_kind a) }
      end);
  !res

(* Place node [i] (and, recursively, its unscheduled ancestors) at the
   earliest feasible cycle >= [from].  Waits registered in
   [lfd_wait_send] are additionally forced after their send.  [ctx], when
   given, names the constraint behind a caller-imposed [from] floor (the
   sync-path contiguity of [place_path]); it becomes the decision's
   binding when that floor dominates the dependence-readiness cycle. *)
let rec place st ?(from = 0) ?ctx i =
  if not (placed st i) then begin
    (* One predecessor walk both places the ancestors and accumulates
       the readiness cycle: each predecessor's cycle is final once its
       recursive [place] returns, and later placements never move it. *)
    let ready = ref 0 in
    Dfg.iter_preds st.g i (fun a ->
        let src = Dfg.arc_node a in
        place st src;
        let t = st.cycle_of.(src) + Dfg.arc_latency a in
        if t > !ready then ready := t);
    let ready = !ready in
    let from_outer = from in
    let lfd_send = st.lfd_wait_send.(i) in
    let from =
      if lfd_send >= 0 then begin
        place st lfd_send;
        max from (st.cycle_of.(lfd_send) + 1)
      end
      else from
    in
    let start = max from ready in
    let c = Resource.first_fit_code st.res ~from:start st.fuc.(i) in
    Resource.reserve_code st.res ~cycle:c st.fuc.(i);
    st.cycle_of.(i) <- c;
    if st.prov then begin
      let ins = st.g.Dfg.prog.Program.body.(i) in
      let binding =
        if
          lfd_send >= 0
          && st.cycle_of.(lfd_send) + 1 >= ready
          && st.cycle_of.(lfd_send) + 1 >= from_outer
        then Some { Provenance.pred = lfd_send; latency = 1; arc = "sync-order" }
        else if from_outer > ready then ctx
        else binding_arc st i
      in
      Provenance.record ~scheduler:"new" ~prog:st.g.Dfg.prog.Program.name ~instr:i ~cycle:c
        ~ready ~candidates:1 ~priority:st.prio.(i)
        ~rejections:(rejections_between st ~start ~stop:c ins)
        ?binding ()
    end
  end

(* Place a node at the earliest feasible cycle >= [from] and return the
   chosen cycle. *)
let place_at_least st i ~from ?ctx () =
  place st ~from ?ctx i;
  st.cycle_of.(i)

(* --- synchronization paths --- *)

(* Component discovery and member ordering live in {!Dfg.sync_groups}
   (machine independent, memoized with the graph); only the group-level
   ordering is an option of this scheduler. *)
let group_paths ~order_paths (groups : Dfg.path_group list) =
  if order_paths then
    List.sort
      (fun (a : Dfg.path_group) (b : Dfg.path_group) ->
        let c = Float.compare b.Dfg.gkey a.Dfg.gkey in
        if c <> 0 then c else Int.compare a.Dfg.gorder b.Dfg.gorder)
      groups
  else groups (* already in ascending [gorder] *)

(* Latency-only ASAP times, ignoring resources: the lower bound on any
   node's cycle.  Nodes already placed use their committed cycle. *)
let asap_estimate st =
  let est = Array.make st.g.Dfg.n 0 in
  for i = 0 to st.g.Dfg.n - 1 do
    Dfg.iter_preds st.g i (fun a ->
        let t = est.(Dfg.arc_node a) + Dfg.arc_latency a in
        if t > est.(i) then est.(i) <- t);
    if placed st i then est.(i) <- max est.(i) st.cycle_of.(i)
  done;
  est

(* Schedule the nodes of one path on consecutive cycles.

   The span of the path in the final schedule is what multiplies with
   n/d in the LBD cost, so we want the nodes exactly [latency] apart.
   The start cycle is the smallest at which, by the latency-only ASAP
   bound, every path node can sit at its cumulative-latency offset; in
   particular the head Wait is issued late enough that the rest of the
   path never stalls on operand computations.  Ancestors are placed
   lazily (inside [place]) after the earlier path nodes have claimed
   their slots, so they fill surrounding free slots instead of stealing
   the path's.  A residual resource conflict stretches the remainder of
   the path minimally. *)
let place_path st (p : Dfg.sync_path) =
  let nodes = Array.of_list p.Dfg.nodes in
  let k = Array.length nodes in
  if k = 0 then ()
  else begin
    (* Cumulative offsets along the path. *)
    let offs = Array.make k 0 in
    for i = 1 to k - 1 do
      let lat =
        let m = ref 1 in
        Dfg.iter_succs st.g nodes.(i - 1) (fun a ->
            if Dfg.arc_node a = nodes.(i) && Dfg.arc_latency a > !m then m := Dfg.arc_latency a);
        !m
      in
      offs.(i) <- offs.(i - 1) + lat
    done;
    let est = asap_estimate st in
    let start = ref 0 in
    Array.iteri (fun i v -> start := max !start (est.(v) - offs.(i))) nodes;
    Array.iteri
      (fun i v ->
        if not (placed st v) then begin
          let ctx =
            if i = 0 then { Provenance.pred = -1; latency = 0; arc = "sync-path" }
            else
              { Provenance.pred = nodes.(i - 1);
                latency = offs.(i) - offs.(i - 1);
                arc = "sync-path" }
          in
          let c = place_at_least st v ~from:(!start + offs.(i)) ~ctx () in
          if c > !start + offs.(i) then start := c - offs.(i)
        end
        else start := max !start (st.cycle_of.(v) - offs.(i)))
      nodes
  end

let run_inner ~options ?baseline (g : Dfg.t) machine =
  let p = g.Dfg.prog in
  let n = g.Dfg.n in
  let st =
    {
      g;
      (* Pooled: dead before the nested baseline [List_sched.run] (the
         only other scratch user on this domain) can reset it — every
         placement happens above, the fallback comparison below only
         reads finished schedules. *)
      res = Resource.scratch machine;
      cycle_of = Array.make n (-1);
      (* Which waits become lexically forward is a property of the graph
         alone; {!Dfg.lfd_sends} memoizes it across the machine
         configurations this graph is scheduled under. *)
      lfd_wait_send = Dfg.lfd_sends g;
      prov = Provenance.enabled ();
      prio = Dfg.longest_path_to_exit g;
      fuc = Dfg.fu_codes g;
    }
  in
  (* Phase 1: Sigwat components' synchronization paths, worst first. *)
  let groups = group_paths ~order_paths:options.order_paths (Dfg.sync_groups g) in
  List.iter (fun grp -> List.iter (place_path st) grp.Dfg.gpaths) groups;
  (* Phase 2: sends (Sig graphs and any remaining Sigwat sends) as soon
     as possible, so the waits that must follow them stay early. *)
  Array.iter (fun (s : Program.signal_info) -> place st s.send_instr) p.Program.signals;
  (* Phase 3: everything else, critical path first (ties towards program
     order) so the fill is as dense as the list scheduler's.  Waits
     constrained to follow their sends do so via [lfd_wait_send] inside
     [place]. *)
  Array.iter (fun i -> place st i) (Dfg.priority_order g);
  let sched = Schedule.of_cycles p machine st.cycle_of in
  let sched = if options.compact then Schedule.compact sched g else sched in
  (* The paper's guarantee that the technique "never degrades the system
     performance" is enforced by construction: if plain list scheduling
     would finish the loop earlier (possible on loops with little or no
     synchronization, where greedy ASAP filling can lose a row or two to
     critical-path ordering), return the list schedule instead. *)
  let baseline =
    match baseline with Some b -> b | None -> List_sched.run g machine
  in
  if Lbd_model.exact_time baseline < Lbd_model.exact_time sched then begin
    Counters.incr c_fallbacks;
    baseline
  end
  else sched

let run ?(options = default_options) ?baseline (g : Dfg.t) machine =
  Counters.incr c_runs;
  let s = Span.with_ ~name:"sched.new" (fun () -> run_inner ~options ?baseline g machine) in
  Lbd_model.observe_sync_spans d_sync_span s;
  s
