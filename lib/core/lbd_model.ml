module Program = Isched_ir.Program

type pair_report = {
  wait_id : int;
  signal : int;
  distance : int;
  wait_pos : int;
  send_pos : int;
  is_lbd : bool;
  paper_time : int;
  exact_time : int;
}

let pairs (s : Schedule.t) =
  let p = s.Schedule.prog in
  let n = p.Program.n_iters in
  let l = s.Schedule.length in
  Array.to_list p.Program.waits
  |> List.map (fun (w : Program.wait_info) ->
         let send = p.Program.signals.(w.signal).send_instr in
         let i = Schedule.position s send and j = Schedule.position s w.wait_instr in
         let d = max 1 w.distance in
         let links = (n - 1) / d in
         {
           wait_id = w.wait;
           signal = w.signal;
           distance = d;
           wait_pos = j;
           send_pos = i;
           is_lbd = i >= j;
           paper_time = max l ((n / d * (i - j)) + l);
           exact_time = (links * max 0 (i - j + 1)) + l;
         })

let n_lbd s = List.length (List.filter (fun r -> r.is_lbd) (pairs s))

let observe_sync_spans d s =
  if Isched_obs.Counters.enabled () then begin
    let p = s.Schedule.prog in
    Array.iter
      (fun (w : Program.wait_info) ->
        let send = p.Program.signals.(w.signal).send_instr in
        Isched_obs.Counters.observe d
          (Schedule.position s send - Schedule.position s w.wait_instr))
      p.Program.waits
  end

let fold_time f s =
  List.fold_left (fun acc r -> max acc (f r)) s.Schedule.length (pairs s)

let paper_time s = fold_time (fun r -> r.paper_time) s

(* [exact_time] runs on every new-scheduler invocation (the
   never-degrade comparison), so it folds over the wait table directly
   instead of materializing {!pairs}. *)
let exact_time (s : Schedule.t) =
  let p = s.Schedule.prog in
  let n = p.Program.n_iters in
  let l = s.Schedule.length in
  let acc = ref l in
  Array.iter
    (fun (w : Program.wait_info) ->
      let send = p.Program.signals.(w.signal).send_instr in
      let i = Schedule.position s send and j = Schedule.position s w.wait_instr in
      let d = max 1 w.distance in
      let links = (n - 1) / d in
      let t = (links * max 0 (i - j + 1)) + l in
      if t > !acc then acc := t)
    p.Program.waits;
  !acc

let pp_report ppf r =
  Format.fprintf ppf "wait %d on sig%d d=%d: j=%d i=%d %s paper=%d exact=%d" r.wait_id r.signal
    r.distance r.wait_pos r.send_pos
    (if r.is_lbd then "LBD" else "LFD")
    r.paper_time r.exact_time
