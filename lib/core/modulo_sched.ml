module Machine = Isched_ir.Machine
module Program = Isched_ir.Program
module Instr = Isched_ir.Instr
module Fu = Isched_ir.Fu
module Dfg = Isched_dfg.Dfg

type t = {
  prog : Program.t;
  machine : Machine.t;
  ii : int;
  cycle_of : int array;
  span : int;
  res_mii : int;
  rec_mii : int;
}

type marc = { src : int; dst : int; lat : int; omega : int }

(* The modulo dependence graph: sync operations dropped, their enforced
   dependences turned into loop-carried arcs. *)
let modulo_arcs (g : Dfg.t) =
  let p = g.Dfg.prog in
  let is_sync i = Instr.is_sync p.Program.body.(i) in
  let intra =
    List.init g.Dfg.n (fun i -> i)
    |> List.concat_map (fun i ->
           Dfg.succs_list g i
           |> List.filter_map (fun (a : Dfg.arc) ->
                  match a.Dfg.kind with
                  | Dfg.Data | Dfg.Mem ->
                    if is_sync a.Dfg.src || is_sync a.Dfg.dst then None
                    else Some { src = a.Dfg.src; dst = a.Dfg.dst; lat = a.Dfg.latency; omega = 0 }
                  | Dfg.Sync_src | Dfg.Sync_snk -> None))
  in
  let carried =
    Array.to_list p.Program.waits
    |> List.map (fun (w : Program.wait_info) ->
           let src = p.Program.signals.(w.Program.signal).Program.src_instr in
           {
             src;
             dst = w.Program.snk_instr;
             lat = Instr.latency p.Program.body.(src);
             omega = w.Program.distance;
           })
  in
  intra @ carried

let duration (m : Machine.t) ins =
  match Instr.fu ins with
  | None -> 0
  | Some k -> if m.Machine.pipelined then 1 else Fu.latency k

let res_mii (p : Program.t) (m : Machine.t) ops =
  let per_kind = Array.make Fu.count 0 in
  List.iter
    (fun i ->
      match Instr.fu p.Program.body.(i) with
      | Some k -> per_kind.(Fu.index k) <- per_kind.(Fu.index k) + duration m p.Program.body.(i)
      | None -> ())
    ops;
  let unit_bound =
    Array.to_list (Array.mapi (fun k used -> (used + Machine.fu_count m (Fu.of_index k) - 1) / Machine.fu_count m (Fu.of_index k)) per_kind)
    |> List.fold_left max 1
  in
  let issue_bound = (List.length ops + m.Machine.issue_width - 1) / m.Machine.issue_width in
  max unit_bound issue_bound

(* RecMII: the smallest II for which the constraint graph with edge
   weights (lat - II*omega) has no positive-weight cycle
   (Floyd-Warshall over the dropped-sync node set). *)
let rec_mii n arcs =
  let feasible ii =
    let neg = -1000000 in
    let dist = Array.make_matrix n n neg in
    List.iter
      (fun a ->
        let w = a.lat - (ii * a.omega) in
        if w > dist.(a.src).(a.dst) then dist.(a.src).(a.dst) <- w)
      arcs;
    let ok = ref true in
    for k = 0 to n - 1 do
      for i = 0 to n - 1 do
        if dist.(i).(k) > neg then
          for j = 0 to n - 1 do
            if dist.(k).(j) > neg && dist.(i).(k) + dist.(k).(j) > dist.(i).(j) then
              dist.(i).(j) <- dist.(i).(k) + dist.(k).(j)
          done
      done
    done;
    for i = 0 to n - 1 do
      if dist.(i).(i) > 0 then ok := false
    done;
    !ok
  in
  let ii = ref 1 in
  while not (feasible !ii) do
    incr ii
  done;
  !ii

(* One scheduling attempt at a fixed II.  Operations are placed highest
   height first; each placement satisfies every arc to and from already
   scheduled neighbours and the modulo resource table.  Returns the
   cycle assignment or None. *)
let attempt (p : Program.t) (m : Machine.t) ops arcs ~ii =
  let prov = Isched_obs.Provenance.enabled () in
  let n = Array.length p.Program.body in
  let sched = Array.make n (-1) in
  (* height within the acyclic (omega = 0) subgraph *)
  let height = Array.make n 0 in
  let intra = List.filter (fun a -> a.omega = 0) arcs in
  let rec fix () =
    let changed = ref false in
    List.iter
      (fun a ->
        if height.(a.src) < a.lat + height.(a.dst) then begin
          height.(a.src) <- a.lat + height.(a.dst);
          changed := true
        end)
      intra;
    if !changed then fix ()
  in
  fix ();
  let order = List.sort (fun a b -> compare (-height.(a), a) (-height.(b), b)) ops in
  (* modulo reservation tables *)
  let fu_used = Array.make_matrix Fu.count ii 0 in
  let issue_used = Array.make ii 0 in
  let fits i c =
    c >= 0
    && issue_used.(c mod ii) < m.Machine.issue_width
    &&
    match Instr.fu p.Program.body.(i) with
    | None -> true
    | Some k ->
      let d = duration m p.Program.body.(i) in
      let ok = ref (d <= ii) in
      for o = 0 to min d ii - 1 do
        if fu_used.(Fu.index k).((c + o) mod ii) >= Machine.fu_count m k then ok := false
      done;
      !ok
  in
  let reserve i c =
    issue_used.(c mod ii) <- issue_used.(c mod ii) + 1;
    match Instr.fu p.Program.body.(i) with
    | None -> ()
    | Some k ->
      let d = duration m p.Program.body.(i) in
      for o = 0 to d - 1 do
        fu_used.(Fu.index k).((c + o) mod ii) <- fu_used.(Fu.index k).((c + o) mod ii) + 1
      done
  in
  let ok = ref true in
  List.iter
    (fun i ->
      if !ok then begin
        let lb = ref 0 and ub = ref max_int in
        List.iter
          (fun a ->
            if a.dst = i && sched.(a.src) >= 0 then
              lb := max !lb (sched.(a.src) + a.lat - (ii * a.omega));
            if a.src = i && sched.(a.dst) >= 0 then
              ub := min !ub (sched.(a.dst) - a.lat + (ii * a.omega)))
          arcs;
        let lb = max 0 !lb in
        let hi = min !ub (lb + ii - 1) in
        let placed = ref false in
        let c = ref lb in
        while (not !placed) && !c <= hi do
          if fits i !c then begin
            reserve i !c;
            sched.(i) <- !c;
            placed := true
          end;
          incr c
        done;
        if not !placed then ok := false
        else if prov then begin
          let chosen = !c - 1 in
          let rejections =
            List.init (chosen - lb) (fun o ->
                { Isched_obs.Provenance.at_cycle = lb + o;
                  reason = Printf.sprintf "modulo reservation conflict (II=%d)" ii })
          in
          let binding =
            List.fold_left
              (fun acc a ->
                if a.dst = i && sched.(a.src) >= 0 && a.src <> i then
                  let t = sched.(a.src) + a.lat - (ii * a.omega) in
                  match acc with
                  | Some (best, _) when best >= t -> acc
                  | _ ->
                    Some
                      ( t,
                        { Isched_obs.Provenance.pred = a.src;
                          latency = a.lat;
                          arc = (if a.omega > 0 then "sync-src" else "data") } )
                else acc)
              None arcs
            |> Option.map snd
          in
          Isched_obs.Provenance.record ~scheduler:"modulo" ~prog:p.Program.name ~instr:i
            ~cycle:chosen ~ready:lb ~candidates:(List.length order) ~priority:height.(i)
            ~rejections ?binding ()
        end
      end)
    order;
  if !ok then Some sched else None

let c_runs = Isched_obs.Counters.counter "sched.modulo.runs"
let d_ii_searches = Isched_obs.Counters.dist "sched.modulo.ii_attempts"

let run_inner (g : Dfg.t) machine =
  Machine.validate machine;
  let p = g.Dfg.prog in
  let ops =
    List.filter
      (fun i -> not (Instr.is_sync p.Program.body.(i)))
      (List.init (Array.length p.Program.body) (fun i -> i))
  in
  let arcs = modulo_arcs g in
  let rmii = res_mii p machine ops in
  let cmii = rec_mii (Array.length p.Program.body) arcs in
  let mii = max rmii cmii in
  let rec search ii =
    (* A non-overlapped schedule always exists once II covers a serial
       layout, so the search terminates; the cap is a safety net. *)
    if ii > 4096 then invalid_arg (Printf.sprintf "Modulo_sched.run: no II found for %s" p.Program.name);
    match attempt p machine ops arcs ~ii with
    | Some sched -> (ii, sched)
    | None -> search (ii + 1)
  in
  let ii, cycle_of = search (max 1 mii) in
  Isched_obs.Counters.observe d_ii_searches (ii - max 1 mii + 1);
  let span =
    List.fold_left
      (fun acc i -> max acc (cycle_of.(i) + Instr.latency p.Program.body.(i)))
      0 ops
  in
  { prog = p; machine; ii; cycle_of; span; res_mii = rmii; rec_mii = cmii }

let run (g : Dfg.t) machine =
  Isched_obs.Counters.incr c_runs;
  Isched_obs.Span.with_ ~name:"sched.modulo" (fun () -> run_inner g machine)

let total_time t = ((t.prog.Program.n_iters - 1) * t.ii) + t.span

let validate t (g : Dfg.t) =
  let p = t.prog in
  let m = t.machine in
  let problem = ref None in
  let fail fmt = Printf.ksprintf (fun s -> if !problem = None then problem := Some s) fmt in
  let arcs = modulo_arcs g in
  List.iter
    (fun a ->
      let cs = t.cycle_of.(a.src) and cd = t.cycle_of.(a.dst) in
      if cs < 0 || cd < 0 then fail "arc endpoint unscheduled"
      else if cd - cs < a.lat - (t.ii * a.omega) then
        fail "arc %d->%d (omega %d) violated: %d - %d < %d - %d*%d" (a.src + 1) (a.dst + 1)
          a.omega cd cs a.lat t.ii a.omega)
    arcs;
  let fu_used = Array.make_matrix Fu.count t.ii 0 in
  let issue_used = Array.make t.ii 0 in
  Array.iteri
    (fun i c ->
      if c >= 0 then begin
        let slot = c mod t.ii in
        issue_used.(slot) <- issue_used.(slot) + 1;
        if issue_used.(slot) > m.Machine.issue_width then fail "issue slot %d oversubscribed" slot;
        match Instr.fu p.Program.body.(i) with
        | None -> ()
        | Some k ->
          let d = duration m p.Program.body.(i) in
          for o = 0 to d - 1 do
            let s = (c + o) mod t.ii in
            fu_used.(Fu.index k).(s) <- fu_used.(Fu.index k).(s) + 1;
            if fu_used.(Fu.index k).(s) > Machine.fu_count m k then
              fail "%s oversubscribed in modulo slot %d" (Fu.name k) s
          done
      end)
    t.cycle_of;
  match !problem with None -> Ok () | Some msg -> Error msg

let pp ppf t =
  Format.fprintf ppf "modulo schedule of %s: II=%d (ResMII=%d, RecMII=%d), span=%d, total=%d@."
    t.prog.Program.name t.ii t.res_mii t.rec_mii t.span (total_time t);
  Array.iteri
    (fun i c ->
      if c >= 0 then
        Format.fprintf ppf "  %3d: cycle %3d (slot %2d): %s@." (i + 1) c (c mod t.ii)
          (Instr.to_string t.prog.Program.body.(i)))
    t.cycle_of
