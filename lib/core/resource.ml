module Machine = Isched_ir.Machine
module Instr = Isched_ir.Instr
module Fu = Isched_ir.Fu

type t = {
  machine : Machine.t;
  issue_used : (int, int) Hashtbl.t;  (* cycle -> slots used *)
  fu_used : (int * int, int) Hashtbl.t;  (* (fu index, cycle) -> units busy *)
}

let create machine =
  Machine.validate machine;
  { machine; issue_used = Hashtbl.create 64; fu_used = Hashtbl.create 64 }

let get tbl key = Option.value ~default:0 (Hashtbl.find_opt tbl key)

let duration t kind = if t.machine.Machine.pipelined then 1 else Fu.latency kind

let fits t ~cycle i =
  if cycle < 0 then false
  else
    get t.issue_used cycle < t.machine.Machine.issue_width
    &&
    match Instr.fu i with
    | None -> true
    | Some kind ->
      let k = Fu.index kind in
      let avail = Machine.fu_count t.machine kind in
      let d = duration t kind in
      let ok = ref true in
      for c = cycle to cycle + d - 1 do
        if get t.fu_used (k, c) >= avail then ok := false
      done;
      !ok

let reserve t ~cycle i =
  if not (fits t ~cycle i) then
    invalid_arg (Printf.sprintf "Resource.reserve: %s does not fit at cycle %d" (Instr.to_string i) cycle);
  Hashtbl.replace t.issue_used cycle (get t.issue_used cycle + 1);
  match Instr.fu i with
  | None -> ()
  | Some kind ->
    let k = Fu.index kind in
    let d = duration t kind in
    for c = cycle to cycle + d - 1 do
      Hashtbl.replace t.fu_used (k, c) (get t.fu_used (k, c) + 1)
    done

let first_fit t ~from i =
  let c = ref (max 0 from) in
  while not (fits t ~cycle:!c i) do
    incr c
  done;
  !c
