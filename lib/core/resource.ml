module Machine = Isched_ir.Machine
module Instr = Isched_ir.Instr
module Fu = Isched_ir.Fu
module Vec = Isched_util.Vec
module Counters = Isched_obs.Counters

(* Probe length of each [first_fit] call: how many candidate cycles were
   tested before one fit.  A growing tail here means the saturation
   hints are losing their bite. *)
let d_probes = Counters.dist "resource.first_fit.probes"

(* Cycle-indexed growable occupancy tables.  Schedules touch cycles
   densely from 0, so a flat array beats hashing on every probe; the
   [*_full_below] hints additionally let [first_fit] skip the saturated
   prefix instead of re-scanning it for every placement. *)
type t = {
  machine : Machine.t;
  issue_used : int Vec.t;  (* cycle -> issue slots used *)
  fu_used : int Vec.t array;  (* per unit kind, cycle -> units busy *)
  mutable issue_full_below : int;  (* every cycle below has no free issue slot *)
  fu_full_below : int array;  (* per unit kind, every cycle below is saturated *)
}

let create machine =
  Machine.validate machine;
  {
    machine;
    issue_used = Vec.create ();
    fu_used = Array.init Fu.count (fun _ -> Vec.create ());
    issue_full_below = 0;
    fu_full_below = Array.make Fu.count 0;
  }

let duration t kind = if t.machine.Machine.pipelined then 1 else Fu.latency kind

let fits t ~cycle i =
  if cycle < 0 then false
  else
    Vec.get_or t.issue_used cycle 0 < t.machine.Machine.issue_width
    &&
    match Instr.fu i with
    | None -> true
    | Some kind ->
      let k = Fu.index kind in
      let avail = Machine.fu_count t.machine kind in
      let d = duration t kind in
      let tbl = t.fu_used.(k) in
      let ok = ref true in
      for c = cycle to cycle + d - 1 do
        if Vec.get_or tbl c 0 >= avail then ok := false
      done;
      !ok

let reject_reason t ~cycle i =
  (* Diagnostic twin of [fits]: [None] iff [fits] is true, otherwise the
     first constraint refusing the cycle, named.  Pure query — used by
     provenance recording, never by placement itself. *)
  if cycle < 0 then Some "negative cycle"
  else if Vec.get_or t.issue_used cycle 0 >= t.machine.Machine.issue_width then
    Some
      (Printf.sprintf "issue width full (%d/%d)" (Vec.get_or t.issue_used cycle 0)
         t.machine.Machine.issue_width)
  else
    match Instr.fu i with
    | None -> None
    | Some kind ->
      let k = Fu.index kind in
      let avail = Machine.fu_count t.machine kind in
      let d = duration t kind in
      let tbl = t.fu_used.(k) in
      let busy = ref None in
      for c = cycle to cycle + d - 1 do
        if !busy = None && Vec.get_or tbl c 0 >= avail then busy := Some c
      done;
      (match !busy with
      | None -> None
      | Some c ->
        Some
          (Printf.sprintf "%s busy (%d/%d) at cycle %d" (Fu.name kind) (Vec.get_or tbl c 0) avail c))

let bump tbl c =
  Vec.ensure_size tbl (c + 1) 0;
  Vec.set tbl c (Vec.get tbl c + 1)

let reserve t ~cycle i =
  if not (fits t ~cycle i) then
    invalid_arg (Printf.sprintf "Resource.reserve: %s does not fit at cycle %d" (Instr.to_string i) cycle);
  bump t.issue_used cycle;
  while Vec.get_or t.issue_used t.issue_full_below 0 >= t.machine.Machine.issue_width do
    t.issue_full_below <- t.issue_full_below + 1
  done;
  match Instr.fu i with
  | None -> ()
  | Some kind ->
    let k = Fu.index kind in
    let d = duration t kind in
    for c = cycle to cycle + d - 1 do
      bump t.fu_used.(k) c
    done;
    let avail = Machine.fu_count t.machine kind in
    while Vec.get_or t.fu_used.(k) t.fu_full_below.(k) 0 >= avail do
      t.fu_full_below.(k) <- t.fu_full_below.(k) + 1
    done

let first_fit t ~from i =
  (* Start past the prefix known to be saturated for this instruction's
     needs; the hints are lower bounds, so this never skips a fit. *)
  let start =
    let s = max 0 (max from t.issue_full_below) in
    match Instr.fu i with None -> s | Some kind -> max s t.fu_full_below.(Fu.index kind)
  in
  (* Every cycle at or past the tables' horizon is entirely free, so the
     scan is bounded: failing on an empty cycle means no cycle ever fits
     (e.g. a unit the machine has zero copies of). *)
  let horizon =
    Array.fold_left (fun acc tbl -> max acc (Vec.length tbl)) (Vec.length t.issue_used) t.fu_used
    |> max start
  in
  let c = ref start in
  while !c <= horizon && not (fits t ~cycle:!c i) do
    incr c
  done;
  Counters.observe d_probes (!c - start + 1);
  if !c > horizon then
    invalid_arg
      (Printf.sprintf "Resource.first_fit: %s cannot be scheduled on %s at any cycle"
         (Instr.to_string i) (Machine.name t.machine));
  !c
