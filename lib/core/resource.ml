module Machine = Isched_ir.Machine
module Instr = Isched_ir.Instr
module Fu = Isched_ir.Fu
module Counters = Isched_obs.Counters

(* Probe length of each [first_fit] call: how many candidate cycles were
   tested before one fit.  A growing tail here means the saturation
   hints are losing their bite. *)
let d_probes = Counters.dist "resource.first_fit.probes"

(* Occupancy counts are bounded by the machine's issue width / unit
   copies — single digits — so each cell fits an unsigned byte.  A
   [Bigarray] of int8 keeps a whole schedule's tables in a few cache
   lines and off the OCaml heap (no scanning during GC, no boxing). *)
type table = { mutable cells : (int, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t; mutable len : int }

let table_create () =
  { cells = Bigarray.Array1.create Bigarray.int8_unsigned Bigarray.c_layout 64; len = 0 }

(* Cycle-indexed growable occupancy tables.  Schedules touch cycles
   densely from 0, so a flat table beats hashing on every probe; the
   [*_full_below] hints additionally let [first_fit] skip the saturated
   prefix instead of re-scanning it for every placement. *)
type t = {
  mutable machine : Machine.t;  (* mutable only for [scratch] reuse *)
  issue_used : table;  (* cycle -> issue slots used *)
  fu_used : table array;  (* per unit kind, cycle -> units busy *)
  mutable issue_full_below : int;  (* every cycle below has no free issue slot *)
  fu_full_below : int array;  (* per unit kind, every cycle below is saturated *)
}

let[@inline] get_or tbl c = if c < tbl.len then Bigarray.Array1.unsafe_get tbl.cells c else 0

let bump tbl c =
  let cap = Bigarray.Array1.dim tbl.cells in
  if c >= cap then begin
    let cap' = max (c + 1) (2 * cap) in
    let bigger = Bigarray.Array1.create Bigarray.int8_unsigned Bigarray.c_layout cap' in
    Bigarray.Array1.fill bigger 0;
    Bigarray.Array1.blit tbl.cells (Bigarray.Array1.sub bigger 0 cap);
    tbl.cells <- bigger
  end;
  if c >= tbl.len then begin
    (* [Array1.create] does not zero its storage: clear every cell the
       logical length now covers before the increment below reads it. *)
    for z = tbl.len to c do
      Bigarray.Array1.unsafe_set tbl.cells z 0
    done;
    tbl.len <- c + 1
  end;
  Bigarray.Array1.unsafe_set tbl.cells c (Bigarray.Array1.unsafe_get tbl.cells c + 1)

let create machine =
  Machine.validate machine;
  {
    machine;
    issue_used = table_create ();
    fu_used = Array.init Fu.count (fun _ -> table_create ());
    issue_full_below = 0;
    fu_full_below = Array.make Fu.count 0;
  }

(* One pooled tracker per domain, reset instead of reallocated: a
   scaled bench run creates thousands of short-lived trackers per
   second, and each [create] costs [Fu.count + 1] fresh off-heap
   Bigarrays.  Resetting is O(Fu.count): dropping [len] to 0 makes every
   probe read 0 (see [get_or]) and [bump] re-zeroes cells before first
   use, so no table memory needs clearing. *)
let scratch_key : t option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let scratch machine =
  let slot = Domain.DLS.get scratch_key in
  match !slot with
  | None ->
    let t = create machine in
    slot := Some t;
    t
  | Some t ->
    Machine.validate machine;
    t.machine <- machine;
    t.issue_full_below <- 0;
    Array.fill t.fu_full_below 0 (Array.length t.fu_full_below) 0;
    t.issue_used.len <- 0;
    Array.iter (fun (tbl : table) -> tbl.len <- 0) t.fu_used;
    t

let duration t kind = if t.machine.Machine.pipelined then 1 else Fu.latency kind

(* Per-kind base latencies by {!Fu.index}: the schedulers probe and
   reserve via the int code below, bypassing the [Instr.fu] match (it
   showed up as a top profile entry at corpus scale — it runs several
   times per placement otherwise). *)
let fu_latency = Array.init Fu.count (fun i -> Fu.latency (Fu.of_index i))

let[@inline] duration_code t k =
  if t.machine.Machine.pipelined then 1 else Array.unsafe_get fu_latency k

let fu_code i = match Instr.fu i with None -> -1 | Some kind -> Fu.index kind

let issue_free t ~cycle =
  cycle >= 0 && get_or t.issue_used cycle < t.machine.Machine.issue_width

let fits_code t ~cycle k =
  if cycle < 0 then false
  else
    get_or t.issue_used cycle < t.machine.Machine.issue_width
    && (k < 0
       ||
       let avail = t.machine.Machine.fu_counts.(k) in
       let d = duration_code t k in
       let tbl = t.fu_used.(k) in
       let ok = ref true in
       for c = cycle to cycle + d - 1 do
         if get_or tbl c >= avail then ok := false
       done;
       !ok)

let fits t ~cycle i = fits_code t ~cycle (fu_code i)

let reject_reason t ~cycle i =
  (* Diagnostic twin of [fits]: [None] iff [fits] is true, otherwise the
     first constraint refusing the cycle, named.  Pure query — used by
     provenance recording, never by placement itself. *)
  if cycle < 0 then Some "negative cycle"
  else if get_or t.issue_used cycle >= t.machine.Machine.issue_width then
    Some
      (Printf.sprintf "issue width full (%d/%d)" (get_or t.issue_used cycle)
         t.machine.Machine.issue_width)
  else
    match Instr.fu i with
    | None -> None
    | Some kind ->
      let k = Fu.index kind in
      let avail = Machine.fu_count t.machine kind in
      let d = duration t kind in
      let tbl = t.fu_used.(k) in
      let busy = ref None in
      for c = cycle to cycle + d - 1 do
        if !busy = None && get_or tbl c >= avail then busy := Some c
      done;
      (match !busy with
      | None -> None
      | Some c ->
        Some (Printf.sprintf "%s busy (%d/%d) at cycle %d" (Fu.name kind) (get_or tbl c) avail c))

let commit t ~cycle k =
  bump t.issue_used cycle;
  while get_or t.issue_used t.issue_full_below >= t.machine.Machine.issue_width do
    t.issue_full_below <- t.issue_full_below + 1
  done;
  if k >= 0 then begin
    let d = duration_code t k in
    for c = cycle to cycle + d - 1 do
      bump t.fu_used.(k) c
    done;
    let avail = t.machine.Machine.fu_counts.(k) in
    while get_or t.fu_used.(k) t.fu_full_below.(k) >= avail do
      t.fu_full_below.(k) <- t.fu_full_below.(k) + 1
    done
  end

let reserve_code t ~cycle k =
  if not (fits_code t ~cycle k) then
    invalid_arg
      (Printf.sprintf "Resource.reserve: %s does not fit at cycle %d"
         (if k < 0 then "sync op" else Fu.name (Fu.of_index k))
         cycle);
  commit t ~cycle k

let reserve t ~cycle i =
  if not (fits t ~cycle i) then
    invalid_arg (Printf.sprintf "Resource.reserve: %s does not fit at cycle %d" (Instr.to_string i) cycle);
  commit t ~cycle (fu_code i)

let no_fit t k =
  invalid_arg
    (Printf.sprintf "Resource.first_fit: %s cannot be scheduled on %s at any cycle"
       (if k < 0 then "sync op" else Fu.name (Fu.of_index k))
       (Machine.name t.machine))

let first_fit_code t ~from k =
  (* Start past the prefix known to be saturated for this instruction's
     needs (the hints are lower bounds, so this never skips a fit), and
     stop at the tables' horizon: every cycle past it is entirely free,
     so failing on an empty cycle means no cycle ever fits (e.g. a unit
     the machine has zero copies of).  The instruction's unit demand is
     derived once here instead of once per probed cycle. *)
  let issue = t.issue_used in
  let issue_w = t.machine.Machine.issue_width in
  let start0 = max 0 (max from t.issue_full_below) in
  if k < 0 then begin
    (* Only the issue width constrains the placement. *)
    let horizon = max start0 issue.len in
    let c = ref start0 in
    while !c <= horizon && get_or issue !c >= issue_w do
      incr c
    done;
    Counters.observe d_probes (!c - start0 + 1);
    if !c > horizon then no_fit t k;
    !c
  end
  else begin
    let start = max start0 t.fu_full_below.(k) in
    let avail = t.machine.Machine.fu_counts.(k) in
    let d = duration_code t k in
    let tbl = t.fu_used.(k) in
    let horizon = max start (max issue.len tbl.len) in
    let c = ref start in
    let found = ref false in
    while (not !found) && !c <= horizon do
      (if get_or issue !c < issue_w then begin
         let ok = ref true in
         for x = !c to !c + d - 1 do
           if get_or tbl x >= avail then ok := false
         done;
         if !ok then found := true
       end);
      if not !found then incr c
    done;
    Counters.observe d_probes (!c - start + 1);
    if not !found then no_fit t k;
    !c
  end

let first_fit t ~from i = first_fit_code t ~from (fu_code i)
