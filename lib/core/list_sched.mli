(** The baseline: classic list scheduling (critical-path priority),
    oblivious to synchronization costs.

    Ready instructions are issued greedily each cycle, highest
    longest-path-to-exit first (ties towards original program order),
    subject to issue width and function-unit availability.  The
    synchronization-condition arcs of the {!Isched_dfg.Dfg} keep the
    result {e correct} (no stale data), but nothing stops a [Wait] —
    which has no predecessors — from floating to the first cycles, nor a
    [Send] — which has no successors — from sinking to the last: exactly
    the behaviour the paper blames for the long synchronization spans of
    Table 2's list-scheduling columns. *)

module Machine := Isched_ir.Machine

(** [run ?priority ?release g m] schedules [g]'s program on machine [m].
    The result always passes {!Schedule.validate}.

    [priority] overrides the per-node priority (default: longest path to
    exit).  [release] gives each node an earliest issue cycle (default
    0).  Both are how {!Marker_sched} implements synchronization-marker
    guidance.

    [tag] names the scheduler in {!Isched_obs.Provenance} decisions
    (default ["list"]); {!Marker_sched} passes ["marker"] so its
    placements are attributable. *)
val run :
  ?tag:string ->
  ?priority:int array ->
  ?release:int array ->
  Isched_dfg.Dfg.t ->
  Machine.t ->
  Schedule.t
