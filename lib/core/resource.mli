(** Resource reservation table for schedule construction.

    Tracks, per cycle, the issue slots used and the occupancy of every
    function-unit kind.  A non-pipelined unit is busy for its full
    latency starting at the issue cycle; a pipelined one only at the
    issue cycle.  Synchronization operations consume an issue slot but
    no unit. *)

module Machine := Isched_ir.Machine
module Instr := Isched_ir.Instr

type t

val create : Machine.t -> t

(** [scratch m] — a per-domain pooled tracker, reset for [m] instead of
    freshly allocated.  The returned value is invalidated by the next
    [scratch] call on the same domain, so it must not be retained past
    one schedule construction or used concurrently with another
    tracker from [scratch]; callers needing an independent long-lived
    tracker use {!create}. *)
val scratch : Machine.t -> t

(** [fits t ~cycle i] — can [i] issue at [cycle]? *)
val fits : t -> cycle:int -> Instr.t -> bool

(** [fu_code i] — [i]'s unit demand as an int: [-1] for none (sync
    operations), otherwise [Fu.index] of its kind.  The code-taking
    variants below are the schedulers' hot path: they skip re-deriving
    the demand from the instruction on every probe (callers precompute
    the codes once per body, e.g. {!Isched_dfg.Dfg.fu_codes}). *)
val fu_code : Instr.t -> int

(** [fits_code t ~cycle k] — {!fits} with a precomputed {!fu_code}. *)
val fits_code : t -> cycle:int -> int -> bool

(** [issue_free t ~cycle] — is at least one issue slot open at [cycle]?
    When false, {!fits} is false for every instruction: worklist loops
    use this to stop probing candidates once a cycle is full. *)
val issue_free : t -> cycle:int -> bool

(** [reject_reason t ~cycle i] — [None] exactly when {!fits} holds;
    otherwise the first constraint refusing the cycle, rendered for
    provenance (e.g. ["issue width full (4/4)"], ["mul busy (1/1) at
    cycle 3"]).  Pure query; never perturbs placement. *)
val reject_reason : t -> cycle:int -> Instr.t -> string option

(** [reserve t ~cycle i] commits the resources.  Raises
    [Invalid_argument] when it does not fit (callers must check). *)
val reserve : t -> cycle:int -> Instr.t -> unit

(** [reserve_code t ~cycle k] — {!reserve} with a precomputed
    {!fu_code}. *)
val reserve_code : t -> cycle:int -> int -> unit

(** [first_fit t ~from i] — the smallest cycle [>= from] where [i]
    fits.  The scan is bounded by the tables' horizon (all later cycles
    are free): if [i] does not fit on an empty cycle — a degenerate
    machine with no copies of the required unit — it raises
    [Invalid_argument] instead of spinning. *)
val first_fit : t -> from:int -> Instr.t -> int

(** [first_fit_code t ~from k] — {!first_fit} with a precomputed
    {!fu_code}. *)
val first_fit_code : t -> from:int -> int -> int
