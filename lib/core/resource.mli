(** Resource reservation table for schedule construction.

    Tracks, per cycle, the issue slots used and the occupancy of every
    function-unit kind.  A non-pipelined unit is busy for its full
    latency starting at the issue cycle; a pipelined one only at the
    issue cycle.  Synchronization operations consume an issue slot but
    no unit. *)

module Machine := Isched_ir.Machine
module Instr := Isched_ir.Instr

type t

val create : Machine.t -> t

(** [fits t ~cycle i] — can [i] issue at [cycle]? *)
val fits : t -> cycle:int -> Instr.t -> bool

(** [reject_reason t ~cycle i] — [None] exactly when {!fits} holds;
    otherwise the first constraint refusing the cycle, rendered for
    provenance (e.g. ["issue width full (4/4)"], ["mul busy (1/1) at
    cycle 3"]).  Pure query; never perturbs placement. *)
val reject_reason : t -> cycle:int -> Instr.t -> string option

(** [reserve t ~cycle i] commits the resources.  Raises
    [Invalid_argument] when it does not fit (callers must check). *)
val reserve : t -> cycle:int -> Instr.t -> unit

(** [first_fit t ~from i] — the smallest cycle [>= from] where [i]
    fits.  The scan is bounded by the tables' horizon (all later cycles
    are free): if [i] does not fit on an empty cycle — a degenerate
    machine with no copies of the required unit — it raises
    [Invalid_argument] instead of spinning. *)
val first_fit : t -> from:int -> Instr.t -> int
