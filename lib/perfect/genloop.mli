(** Deterministic loop generator: turns a {!Profile.t} into a corpus of
    well-formed mini-Fortran loops.

    Every loop is assembled from dependence {e motifs} chosen by the
    profile's fractions:
    - a {e tight recurrence} [C[I] = C[I-d] op e] — the sync path spans
      the whole (small) body, so scheduling has little room (the QCD
      shape);
    - a {e chain} — the sink read happens in the first statement and the
      source write in the last, connected through intermediate arrays
      (the Fig. 1 shape, long sync path);
    - an {e LFD motif} — source statement textually before the sink;
    - scalar {e reductions}, {e induction variables}, {e guarded}
      statements and {e index-array} subscripts for the remaining
      DOACROSS categories;
    plus independent filler statements that give the scheduler (and the
    list-scheduling baseline's sends) room to move.

    Generation is purely a function of the profile (seeded PRNG):
    re-running produces byte-identical corpora.  Every generated loop
    passes {!Isched_frontend.Sema.check}. *)

module Ast := Isched_frontend.Ast

(** [generate ?scale p] — the generated loops of profile [p] (signature
    loops are added separately by {!Suite}).  [scale] (default 1)
    multiplies the loop count; the first [n_generated] loops of any
    scale are byte-identical to the unscaled corpus. *)
val generate : ?scale:int -> Profile.t -> Ast.loop list

(** [generate_range p ~lo ~hi] — loops [lo, hi) of the generated stream,
    computed independently of every other index ([Prng.split_nth]): the
    building block for streaming a scaled corpus in bounded memory,
    sharded across domains in any order. *)
val generate_range : Profile.t -> lo:int -> hi:int -> Ast.loop list

(** [nth p idx] — the [idx]-th generated loop, a pure function of
    (profile, index). *)
val nth : Profile.t -> int -> Ast.loop
