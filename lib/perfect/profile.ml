type t = {
  name : string;
  description : string;
  seed : int;
  n_generated : int;
  doall_frac : float;
  stmts_min : int;
  stmts_max : int;
  lfd_frac : float;
  tight_recurrence_frac : float;
  convertible_frac : float;
  chain_len_max : int;
  noise_max : int;
  distance_weights : (float * int) list;
  guard_frac : float;
  reduction_frac : float;
  iv_frac : float;
  indirect_frac : float;
  n_iters : int;
}

let flq52 =
  {
    name = "FLQ52";
    description = "transonic flow solver: multi-statement stencil relaxations";
    seed = 0x52F1;
    n_generated = 14;
    doall_frac = 0.25;
    stmts_min = 3;
    stmts_max = 6;
    lfd_frac = 0.0;
    convertible_frac = 0.5;
    tight_recurrence_frac = 0.1;
    chain_len_max = 2;
    noise_max = 20;
    distance_weights = [ (0.6, 1); (0.3, 2); (0.1, 3) ];
    guard_frac = 0.0;
    reduction_frac = 0.0;
    iv_frac = 0.1;
    indirect_frac = 0.0;
    n_iters = 100;
  }

let qcd =
  {
    name = "QCD";
    description = "lattice gauge theory: compact link-update recurrences";
    seed = 0x9CD2;
    n_generated = 10;
    doall_frac = 0.2;
    stmts_min = 1;
    stmts_max = 3;
    lfd_frac = 0.0;
    convertible_frac = 0.0;
    tight_recurrence_frac = 0.85;
    chain_len_max = 2;
    noise_max = 1;
    distance_weights = [ (0.9, 1); (0.1, 2) ];
    guard_frac = 0.0;
    reduction_frac = 0.1;
    iv_frac = 0.0;
    indirect_frac = 0.1;
    n_iters = 100;
  }

let mdg =
  {
    name = "MDG";
    description = "molecular dynamics of water: force accumulations with cutoffs";
    seed = 0x3D96;
    n_generated = 14;
    doall_frac = 0.18;
    stmts_min = 3;
    stmts_max = 7;
    lfd_frac = 0.35;
    convertible_frac = 0.5;
    tight_recurrence_frac = 0.15;
    chain_len_max = 2;
    noise_max = 20;
    distance_weights = [ (0.7, 1); (0.2, 2); (0.1, 4) ];
    guard_frac = 0.25;
    reduction_frac = 0.3;
    iv_frac = 0.05;
    indirect_frac = 0.05;
    n_iters = 100;
  }

let track =
  {
    name = "TRACK";
    description = "missile tracking: Kalman-style state recurrences";
    seed = 0x7AC4;
    n_generated = 13;
    doall_frac = 0.2;
    stmts_min = 3;
    stmts_max = 6;
    lfd_frac = 0.0;
    convertible_frac = 0.65;
    tight_recurrence_frac = 0.1;
    chain_len_max = 2;
    noise_max = 22;
    distance_weights = [ (0.8, 1); (0.2, 2) ];
    guard_frac = 0.1;
    reduction_frac = 0.05;
    iv_frac = 0.0;
    indirect_frac = 0.0;
    n_iters = 100;
  }

let adm =
  {
    name = "ADM";
    description = "air-pollution model: mixed forward/backward sweeps";
    seed = 0xAD35;
    n_generated = 14;
    doall_frac = 0.22;
    stmts_min = 2;
    stmts_max = 6;
    lfd_frac = 0.35;
    convertible_frac = 0.4;
    tight_recurrence_frac = 0.25;
    chain_len_max = 2;
    noise_max = 14;
    distance_weights = [ (0.5, 1); (0.3, 2); (0.2, 3) ];
    guard_frac = 0.1;
    reduction_frac = 0.15;
    iv_frac = 0.15;
    indirect_frac = 0.05;
    n_iters = 100;
  }

let all = [ flq52; qcd; mdg; track; adm ]
