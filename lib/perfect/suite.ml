module Ast = Isched_frontend.Ast

type benchmark = { profile : Profile.t; loops : Ast.loop list }

(* Hand-written signature loops.  Each is a small, readable DOACROSS
   kernel in the benchmark's domain flavour; together with the generated
   corpus they set the LFD/LBD mix the paper reports (FLQ52, QCD and
   TRACK all-LBD; MDG and ADM mixed). *)

let flq52_src =
  {|
! FLQ52: transonic-flow relaxation.  The potential PHI carries a short
! recurrence; flux, residual and smoothing statements consume older PHI
! values but do not feed the recurrence back.
DOACROSS I = 2, 101
  S1: FLX[I] = PHI[I-1] * C[I] + E[I+1]
  S2: RES[I] = FLX[I] - Q[I] * PHI[I-2]
  S3: SMO[I] = PHI[I-2] + D[I-1] * C[I+2]
  S4: WRK[I] = E[I] * Q[I+1] + C[I-1]
  S5: PHI[I] = PHI[I-1] + D[I]
ENDDO

DOACROSS I = 1, 100
  S1: W[I] = U[I-1] * R[I] + C[I+2]
  S2: VSC[I] = U[I-2] * D[I] - E[I+1]
  S3: OUT[I] = R[I+1] * R[I-1] + Q[I]
  S4: U[I] = U[I-1] + C[I]
ENDDO
|}

let qcd_src =
  {|
! QCD: lattice link updates; the whole body is one tight recurrence,
! so the synchronization path cannot be shortened much.
DOACROSS I = 1, 100
  S1: LNK[I] = LNK[I-1] * C[I] + E[I]
ENDDO

DOACROSS I = 1, 100
  S1: PLQ[I] = PLQ[I-1] * R[I-1]
  S2: ACT[I] = PLQ[I] + D[I]
ENDDO
|}

let mdg_src =
  {|
! MDG: water-molecule dynamics; positions carry a short recurrence,
! forces accumulate (reduction) and a cutoff test guards the velocity
! update (control dependence).
DOACROSS I = 1, 100
  S1: FRC[I] = POS[I-1] * C[I] + E[I+3]
  S2: IF (R[I] > 0) VEL[I] = FRC[I] * D[I]
  S3: PAIR[I] = POS[I-2] + Q[I] * C[I-1]
  S4: HIST[I] = E[I-1] * D[I+2]
  S5: POS[I] = POS[I-1] + Q[I]
ENDDO

DO I = 1, 100
  S1: EN = EN + FRC[I] * FRC[I]
  S2: OUT[I] = FRC[I+1] * C[I]
ENDDO
|}

let track_src =
  {|
! TRACK: Kalman-style state propagation: the estimate recurrence is
! short, while gain, innovation and covariance statements consume older
! estimates.
DOACROSS I = 1, 100
  S1: GAIN[I] = EST[I-1] * C[I] + R[I]
  S2: INOV[I] = Q[I+1] - GAIN[I] * D[I]
  S3: COV[I] = EST[I-2] * E[I] + R[I-1]
  S4: LOGP[I] = C[I+2] * D[I-2] + Q[I]
  S5: EST[I] = EST[I-1] + E[I]
ENDDO

DOACROSS I = 1, 100
  S1: PRD[I] = SMO[I-2] * C[I+1]
  S2: RSD[I] = SMO[I-1] + R[I] * E[I-1]
  S3: SMO[I] = SMO[I-2] + R[I]
ENDDO
|}

let adm_src =
  {|
! ADM: pollutant transport; a forward-dependence advection sweep plus a
! diffusion recurrence and an induction-stepped source term.
DOACROSS I = 1, 100
  S1: CON[I] = Q[I] + E[I-2] * C[I]
  S2: ADV[I] = CON[I-1] * D[I]
ENDDO

DOACROSS I = 1, 100
  S1: K = K + 2
  S2: SRC[I] = DIF[I-3] * C[I] + K
  S3: SET[I] = DIF[I-1] + E[I] * Q[I-2]
  S4: DIF[I] = DIF[I-3] + C[I+1]
ENDDO
|}

let signature_sources (p : Profile.t) =
  match p.Profile.name with
  | "FLQ52" -> flq52_src
  | "QCD" -> qcd_src
  | "MDG" -> mdg_src
  | "TRACK" -> track_src
  | "ADM" -> adm_src
  | other -> invalid_arg ("Suite.signature_sources: unknown benchmark " ^ other)

let signature_loops (p : Profile.t) =
  let sig_loops = Isched_frontend.Parser.parse ~name:p.Profile.name (signature_sources p) in
  List.iter Isched_frontend.Sema.check_exn sig_loops;
  sig_loops

let load ?(scale = 1) (p : Profile.t) =
  { profile = p; loops = signature_loops p @ Genloop.generate ~scale p }

let all () = List.map (fun p -> load p) Profile.all

(* --- corpus enumeration --- *)

let profiles ?(smoke = false) () = if smoke then [ List.hd Profile.all ] else Profile.all

let corpora ?smoke () = List.map (fun p -> load p) (profiles ?smoke ())

let all_loops ?smoke () = List.concat_map (fun b -> b.loops) (corpora ?smoke ())

(* Name index for [find_loop]: built once under a lock on first use.
   The full unscaled corpus is small (the bench harness materializes it
   wholesale anyway), so retaining it here is cheap, and the serving
   path needs lookups to cost a hash probe, not a corpus walk. *)
let index_lock = Mutex.create ()

let index : (string, Ast.loop) Hashtbl.t option ref = ref None

let find_loop name =
  let tbl =
    Mutex.protect index_lock (fun () ->
        match !index with
        | Some tbl -> tbl
        | None ->
          let tbl = Hashtbl.create 256 in
          List.iter (fun (l : Ast.loop) -> Hashtbl.replace tbl l.Ast.name l) (all_loops ());
          index := Some tbl;
          tbl)
  in
  Hashtbl.find_opt tbl name

(* --- streaming --- *)

type chunk = { profile : Profile.t; lo : int; hi : int; with_signature : bool }

let chunks ?(chunk_size = 64) ~scale (p : Profile.t) =
  if scale < 1 then invalid_arg "Suite.chunks: scale must be >= 1";
  if chunk_size < 1 then invalid_arg "Suite.chunks: chunk_size must be >= 1";
  let total = p.Profile.n_generated * scale in
  let n_chunks = max 1 ((total + chunk_size - 1) / chunk_size) in
  List.init n_chunks (fun i ->
      { profile = p;
        lo = i * chunk_size;
        hi = min total ((i + 1) * chunk_size);
        with_signature = i = 0 })

let chunk_loops (c : chunk) =
  let sigs = if c.with_signature then signature_loops c.profile else [] in
  sigs @ Genloop.generate_range c.profile ~lo:c.lo ~hi:c.hi
