(** Structural profiles of the five Perfect-benchmark surrogates.

    We do not have the Fortran-77 Perfect Club sources (FLQ52, QCD, MDG,
    TRACK, ADM), so — per the reproduction's substitution rule — each
    benchmark is replaced by a deterministic corpus of DOACROSS loops
    whose {e dependence structure} matches what the paper reports about
    it: Table 1's loop counts and LFD/LBD mix (FLQ52, QCD and TRACK are
    all-LBD; almost all LBDs are flow dependences) and Section 4.2's
    discussion (QCD improves the least, which happens when the
    wait-to-send chain already spans the whole small loop body).  The
    experiment pipeline only ever consumes loops through their
    dependences and generated code, so this preserves the behaviour
    Tables 2-3 measure. *)

type t = {
  name : string;
  description : string;  (** one line on the original benchmark's domain *)
  seed : int;  (** corpus PRNG seed; fixed per benchmark *)
  n_generated : int;  (** generated loops, in addition to the signature loops *)
  doall_frac : float;  (** fraction of generated loops that are DOALL *)
  stmts_min : int;
  stmts_max : int;
  lfd_frac : float;  (** probability a generated carried dep is lexically forward *)
  tight_recurrence_frac : float;
      (** probability the LBD is a single-statement self-recurrence
          (short sync path: the QCD shape) *)
  convertible_frac : float;
      (** probability the carrier write does not depend on the carrier
          reads (time-lagged field update): the LBD is fully
          convertible to LFD, the shape where the new scheduler wins
          the most *)
  chain_len_max : int;  (** max statements in an LBD source-sink chain *)
  noise_max : int;  (** independent filler statements per loop *)
  distance_weights : (float * int) list;  (** dependence distance mix *)
  guard_frac : float;  (** control-dependence statements *)
  reduction_frac : float;  (** loops containing a scalar reduction *)
  iv_frac : float;  (** loops containing an induction variable *)
  indirect_frac : float;  (** loops with an index-array subscript *)
  n_iters : int;  (** loop trip count (the paper uses 100) *)
}

val flq52 : t
val qcd : t
val mdg : t
val track : t
val adm : t

(** The five profiles in the paper's column order. *)
val all : t list
