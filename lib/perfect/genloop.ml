module Ast = Isched_frontend.Ast
module Prng = Isched_util.Prng

let carriers = [| "A"; "U"; "V"; "X"; "F" |]
let readonly = [| "E"; "C"; "R"; "Q"; "D" |]
let noise_outs = [| "P"; "G"; "H"; "M"; "T" |]

let num n = Ast.Num (float_of_int n)
let aref name sub = Ast.Aref (name, sub)
let i_plus c = if c = 0 then Ast.Ivar else Ast.Bin ((if c > 0 then Ast.Add else Ast.Sub), Ast.Ivar, num (abs c))

let ro_term rng =
  let a = Prng.choose rng readonly in
  aref a (i_plus (Prng.int_in rng (-2) 3))

let value_op rng = if Prng.bool rng 0.35 then Ast.Mul else if Prng.bool rng 0.2 then Ast.Sub else Ast.Add

(* A small dependence-free arithmetic expression over read-only arrays. *)
let rec ro_expr rng depth =
  if depth <= 0 || Prng.bool rng 0.45 then ro_term rng
  else Ast.Bin (value_op rng, ro_expr rng (depth - 1), ro_term rng)

let distance rng (p : Profile.t) = Prng.weighted rng p.Profile.distance_weights

let maybe_guard rng (p : Profile.t) stmt =
  if Prng.bool rng p.Profile.guard_frac then
    { stmt with Ast.guard = Some { Ast.rel = Ast.Gt; lhs = ro_term rng; rhs = num 0 } }
  else stmt

let mk lhs rhs = { Ast.label = ""; guard = None; lhs; rhs }

(* --- motifs: each returns statements in order --- *)

(* C[I] = C[I-d] op e : single-statement recurrence, minimal sync path. *)
let motif_tight rng p =
  let c = Prng.choose rng carriers in
  let d = distance rng p in
  [ mk (Ast.Larr (c, Ast.Ivar)) (Ast.Bin (value_op rng, aref c (i_plus (-d)), ro_term rng)) ]

(* The paper's Fig. 1 shape, generalized: a recurrence on a carrier
   array whose own chain is short (that is the unavoidable sync path),
   preceded textually by consumer statements that read older carrier
   elements but do not feed the recurrence.  The consumers are lexically
   backward dependences that the new scheduler converts to forward ones
   (their components are Wat graphs), while list scheduling pays
   (n/d) x span for every one of them. *)
let motif_chain rng p ~wid =
  let c = Prng.choose rng carriers in
  let d = distance rng p in
  let w k = Printf.sprintf "W%d_%d" wid k in
  let consumers =
    List.init
      (Prng.int_in rng 2 4)
      (fun k ->
        let dk = distance rng p in
        mk
          (Ast.Larr (Printf.sprintf "O%d_%d" wid k, Ast.Ivar))
          (Ast.Bin (value_op rng, aref c (i_plus (-dk)), ro_expr rng 1)))
  in
  (* Keep the unavoidable path cheap: the recurrence operation is an
     add most of the time (a multiply would put 3-cycle links on the
     path). *)
  let rec_op rng = if Prng.bool rng 0.2 then Ast.Mul else Ast.Add in
  let chain =
    if Prng.bool rng p.Profile.convertible_frac then
      (* Time-lagged field update: the write does not read the carrier,
         so no wait-to-send path exists and every pair converts. *)
      [ mk (Ast.Larr (c, Ast.Ivar)) (ro_expr rng 2) ]
    else if Prng.int_in rng 1 p.Profile.chain_len_max <= 1 then
      [ mk (Ast.Larr (c, Ast.Ivar)) (Ast.Bin (rec_op rng, aref c (i_plus (-d)), ro_term rng)) ]
    else
      [
        mk (Ast.Larr (w 1, Ast.Ivar)) (Ast.Bin (rec_op rng, aref c (i_plus (-d)), ro_term rng));
        mk (Ast.Larr (c, Ast.Ivar)) (Ast.Bin (rec_op rng, aref (w 1) Ast.Ivar, ro_term rng));
      ]
  in
  consumers @ chain

(* Source statement textually before its sink: already LFD. *)
let motif_lfd rng p =
  let c = Prng.choose rng carriers in
  let d = distance rng p in
  let out = Prng.choose rng noise_outs in
  [
    mk (Ast.Larr (c, Ast.Ivar)) (ro_expr rng 2);
    mk (Ast.Larr (out, i_plus 0)) (Ast.Bin (value_op rng, aref c (i_plus (-d)), ro_term rng));
  ]

(* s = s + e : removed by reduction replacement unless guarded. *)
let motif_reduction rng _p = [ mk (Ast.Lscalar "s") (Ast.Bin (Ast.Add, Ast.Scalar "s", ro_term rng)) ]

(* k = k + c with a value use. *)
let motif_iv rng _p =
  let step = Prng.int_in rng 1 3 in
  [
    mk (Ast.Lscalar "k") (Ast.Bin (Ast.Add, Ast.Scalar "k", num step));
    mk (Ast.Larr (Prng.choose rng noise_outs, Ast.Ivar))
      (Ast.Bin (Ast.Mul, Ast.Scalar "k", ro_term rng));
  ]

(* X[IDX[I]] = e : unanalyzable subscript, the "others" category. *)
let motif_indirect rng _p =
  let c = Prng.choose rng carriers in
  [ mk (Ast.Larr (c, aref "IDX" Ast.Ivar)) (ro_expr rng 1) ]

let motif_noise rng k =
  mk
    (Ast.Larr (Printf.sprintf "N%d" k, i_plus (Prng.int_in rng (-1) 1)))
    (ro_expr rng 2)

(* A DOALL body: independent writes only. *)
let doall_body rng p =
  let n = Prng.int_in rng p.Profile.stmts_min p.Profile.stmts_max in
  List.init n (fun k -> maybe_guard rng p (motif_noise rng k))

let doacross_body rng p ~loop_idx =
  let motifs = ref [] in
  let add m = motifs := !motifs @ m in
  (* Primary dependence motif. *)
  (if Prng.bool rng p.Profile.lfd_frac then add (motif_lfd rng p)
   else if Prng.bool rng p.Profile.tight_recurrence_frac then add (motif_tight rng p)
   else add (motif_chain rng p ~wid:loop_idx));
  (* Optional secondary motifs. *)
  if Prng.bool rng p.Profile.reduction_frac then add (motif_reduction rng p);
  if Prng.bool rng p.Profile.iv_frac then add (motif_iv rng p);
  if Prng.bool rng p.Profile.indirect_frac then add (motif_indirect rng p);
  (* Guards on motif statements (control dependence category). *)
  let motifs = List.map (maybe_guard rng p) !motifs in
  (* Filler. *)
  let n_noise = Prng.int_in rng (p.Profile.noise_max / 2) p.Profile.noise_max in
  let noise = List.init n_noise (fun k -> motif_noise rng (100 + k)) in
  (* Interleave noise after the first motif statement, keeping motif
     order (sinks stay before sources: the LBD survives). *)
  match motifs with
  | [] -> noise
  | first :: rest -> (first :: noise) @ rest

let relabel body = List.mapi (fun i s -> { s with Ast.label = Printf.sprintf "S%d" (i + 1) }) body

(* One loop of the (conceptually infinite) generated stream.  The
   per-loop generator is addressed by [Prng.split_nth], so [nth] is a
   pure function of (profile, idx): a scaled corpus is an exact
   superset of the unscaled one, and shards can be produced in any
   order on any domain with identical results. *)
let nth (p : Profile.t) idx =
  let lrng = Prng.split_nth (Prng.create p.Profile.seed) idx in
  let doall = Prng.bool lrng p.Profile.doall_frac in
  let body =
    if doall then doall_body lrng p else doacross_body lrng p ~loop_idx:(idx + 1)
  in
  let loop =
    Ast.make_loop
      ~kind:(if doall then Ast.Do else Ast.Doacross)
      ~index:"I" ~lo:1 ~hi:p.Profile.n_iters ~body:(relabel body)
      ~name:(Printf.sprintf "%s.G%d" p.Profile.name (idx + 1))
  in
  Isched_frontend.Sema.check_exn loop;
  loop

let generate_range (p : Profile.t) ~lo ~hi =
  if lo < 0 || hi < lo then invalid_arg "Genloop.generate_range";
  List.init (hi - lo) (fun k -> nth p (lo + k))

let generate ?(scale = 1) (p : Profile.t) =
  if scale < 1 then invalid_arg "Genloop.generate: scale must be >= 1";
  generate_range p ~lo:0 ~hi:(p.Profile.n_generated * scale)
