(** The five benchmark corpora: hand-written signature loops (readable,
    domain-flavoured, parsed from source text) plus the generated loops
    of {!Genloop}.  Everything is deterministic. *)

module Ast := Isched_frontend.Ast

type benchmark = {
  profile : Profile.t;
  loops : Ast.loop list;  (** signature loops first, then generated *)
}

(** [load ?scale p] builds one corpus.  [scale] (default 1) multiplies
    the generated-loop count; the unscaled corpus is a prefix of every
    scaled one.  Large scales should prefer the streaming API below. *)
val load : ?scale:int -> Profile.t -> benchmark

(** [all ()] — the five corpora in paper order
    (FLQ52, QCD, MDG, TRACK, ADM). *)
val all : unit -> benchmark list

(** {2 Corpus enumeration}

    The one place that knows how a "corpus walk" is spelled: the CLI
    ([ischedc check --corpus], [ischedc serve]), the bench harness and
    the serve load generator all enumerate through these, so they can
    never disagree about which loops the corpus contains (pinned by a
    regression test). *)

(** [profiles ~smoke ()] — the profile list a corpus walk covers:
    all five, or only the first (FLQ52) when [smoke] (default
    [false]). *)
val profiles : ?smoke:bool -> unit -> Profile.t list

(** [corpora ~smoke ()] — [load] over [profiles ~smoke ()]. *)
val corpora : ?smoke:bool -> unit -> benchmark list

(** [all_loops ~smoke ()] — every loop of [corpora ~smoke ()],
    flattened in paper order (signature loops before generated ones
    within each corpus). *)
val all_loops : ?smoke:bool -> unit -> Ast.loop list

(** [find_loop name] — the corpus loop called [name] (e.g. ["QCD.L1"]
    for a signature loop, ["FLQ52.G3"] for a generated one).  Names are
    unique across the five corpora.  The index over the full unscaled
    corpus is built lazily on first use and retained; safe to call from
    several domains. *)
val find_loop : string -> Ast.loop option

(** A bounded slice of one benchmark's loop stream: generated-loop
    indices [lo, hi), plus the hand-written signature loops when
    [with_signature] (true only for the first chunk).  Chunks are
    independent — any domain can materialize any chunk in any order
    with identical results — which is what lets [bench] run a 100×–1000×
    corpus without ever holding it in memory. *)
type chunk = { profile : Profile.t; lo : int; hi : int; with_signature : bool }

(** [chunks ?chunk_size ~scale p] — descriptors covering the whole
    scaled stream of [p] ([chunk_size] generated loops each,
    default 64). *)
val chunks : ?chunk_size:int -> scale:int -> Profile.t -> chunk list

(** [chunk_loops c] materializes one chunk. *)
val chunk_loops : chunk -> Ast.loop list

(** [signature_loops p] — the parsed, checked hand-written loops. *)
val signature_loops : Profile.t -> Ast.loop list

(** [signature_sources p] — the hand-written loops' source text (used by
    the quickstart example and the docs). *)
val signature_sources : Profile.t -> string
