(** The five benchmark corpora: hand-written signature loops (readable,
    domain-flavoured, parsed from source text) plus the generated loops
    of {!Genloop}.  Everything is deterministic. *)

module Ast := Isched_frontend.Ast

type benchmark = {
  profile : Profile.t;
  loops : Ast.loop list;  (** signature loops first, then generated *)
}

(** [load p] builds one corpus. *)
val load : Profile.t -> benchmark

(** [all ()] — the five corpora in paper order
    (FLQ52, QCD, MDG, TRACK, ADM). *)
val all : unit -> benchmark list

(** [signature_sources p] — the hand-written loops' source text (used by
    the quickstart example and the docs). *)
val signature_sources : Profile.t -> string
