(** The five benchmark corpora: hand-written signature loops (readable,
    domain-flavoured, parsed from source text) plus the generated loops
    of {!Genloop}.  Everything is deterministic. *)

module Ast := Isched_frontend.Ast

type benchmark = {
  profile : Profile.t;
  loops : Ast.loop list;  (** signature loops first, then generated *)
}

(** [load ?scale p] builds one corpus.  [scale] (default 1) multiplies
    the generated-loop count; the unscaled corpus is a prefix of every
    scaled one.  Large scales should prefer the streaming API below. *)
val load : ?scale:int -> Profile.t -> benchmark

(** [all ()] — the five corpora in paper order
    (FLQ52, QCD, MDG, TRACK, ADM). *)
val all : unit -> benchmark list

(** A bounded slice of one benchmark's loop stream: generated-loop
    indices [lo, hi), plus the hand-written signature loops when
    [with_signature] (true only for the first chunk).  Chunks are
    independent — any domain can materialize any chunk in any order
    with identical results — which is what lets [bench] run a 100×–1000×
    corpus without ever holding it in memory. *)
type chunk = { profile : Profile.t; lo : int; hi : int; with_signature : bool }

(** [chunks ?chunk_size ~scale p] — descriptors covering the whole
    scaled stream of [p] ([chunk_size] generated loops each,
    default 64). *)
val chunks : ?chunk_size:int -> scale:int -> Profile.t -> chunk list

(** [chunk_loops c] materializes one chunk. *)
val chunk_loops : chunk -> Ast.loop list

(** [signature_loops p] — the parsed, checked hand-written loops. *)
val signature_loops : Profile.t -> Ast.loop list

(** [signature_sources p] — the hand-written loops' source text (used by
    the quickstart example and the docs). *)
val signature_sources : Profile.t -> string
