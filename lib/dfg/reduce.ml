module Program = Isched_ir.Program

(* Reflexive-transitive reachability over Data and Mem arcs only. *)
let reachability (g : Dfg.t) =
  let n = g.Dfg.n in
  let reach = Array.make_matrix n n false in
  for i = n - 1 downto 0 do
    reach.(i).(i) <- true;
    Dfg.iter_succs g i (fun a ->
        match Dfg.arc_kind a with
        | Dfg.Data | Dfg.Mem ->
          let dst = Dfg.arc_node a in
          for j = 0 to n - 1 do
            if reach.(dst).(j) then reach.(i).(j) <- true
          done
        | Dfg.Sync_src | Dfg.Sync_snk -> ())
  done;
  reach

let covered (p : Program.t) reach ~(target : Program.wait_info) active =
  let d = target.Program.distance in
  if d < 1 then true
  else begin
    let n = Array.length p.Program.body in
    let start = p.Program.signals.(target.Program.signal).Program.src_instr in
    (* Every instruction the wait protects (its sink plus the aliasing
       same-statement operations, e.g. an if-converted old-value load)
       must be covered, or dropping the wait frees one of them to hoist
       above every surviving synchronization. *)
    let goals = Dfg.protected_of_wait p target in
    (* BFS over (instruction, accumulated distance) states, collecting
       the frontier at exactly distance d. *)
    let visited = Hashtbl.create 64 in
    let at_d = Hashtbl.create 16 in
    let q = Queue.create () in
    let push node w =
      if w <= d && node < n && not (Hashtbl.mem visited (node, w)) then begin
        Hashtbl.add visited (node, w) ();
        if w = d then Hashtbl.replace at_d node ();
        Queue.push (node, w) q
      end
    in
    push start 0;
    while not (Queue.is_empty q) do
      let node, w = Queue.pop q in
      if w < d then
        List.iter
          (fun (k : Program.wait_info) ->
            let src = p.Program.signals.(k.Program.signal).Program.src_instr in
            if reach.(node).(src) then push k.Program.snk_instr (w + k.Program.distance))
          active
    done;
    List.for_all
      (fun goal -> Hashtbl.fold (fun r () acc -> acc || reach.(r).(goal)) at_d false)
      goals
  end

let redundant_waits (g : Dfg.t) =
  let p = g.Dfg.prog in
  let reach = reachability g in
  let waits = Array.to_list p.Program.waits in
  let active = ref waits in
  let removed = ref [] in
  List.iter
    (fun (w : Program.wait_info) ->
      let others = List.filter (fun (k : Program.wait_info) -> k.Program.wait <> w.Program.wait) !active in
      if
        List.exists (fun (k : Program.wait_info) -> k.Program.wait = w.Program.wait) !active
        && covered p reach ~target:w others
      then begin
        active := others;
        removed := w.Program.wait :: !removed
      end)
    waits;
  List.rev !removed
