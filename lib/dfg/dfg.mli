(** Data-flow graph over one iteration's three-address code, with the
    paper's extra synchronization-condition arcs (Section 3.1).

    Nodes are body indices of the program.  Arcs:
    - {e data}: virtual-register definition to each use, with the
      producer's latency;
    - {e memory}: intra-iteration store/load ordering on may-aliasing
      references (flow, anti and output at the instruction level);
    - {e sync-source}: from the dependence-source memory operation to its
      [Send] — a send can never be scheduled before its source;
    - {e sync-sink}: from a [Wait] to its dependence-sink memory
      operation — a sink can never be scheduled before its wait.  The
      arc is duplicated to every earlier memory operation of the sink
      statement that may alias the sink (this covers the old-value load
      of an if-converted guarded store).

    Arcs are stored in two flat int-packed CSR arenas (successor and
    transposed predecessor); the schedulers iterate them without
    allocating.  Within a row, arcs appear in the exact order the old
    [arc list array] representation produced, which placement recursion
    and provenance tie-breaking depend on. *)

module Program := Isched_ir.Program

type arc_kind = Data | Mem | Sync_src | Sync_snk

type arc = { src : int; dst : int; latency : int; kind : arc_kind }

(** [arc_kind_name k] — ["data"], ["mem"], ["sync-src"] or ["sync-snk"];
    the vocabulary used by provenance bindings and the explain output. *)
val arc_kind_name : arc_kind -> string

type sync_path = {
  wait_id : int;  (** wait id in the program's wait table *)
  signal : int;
  distance : int;
  nodes : int list;  (** a shortest directed path, wait node first,
                          send node last *)
}

(** A connected component of synchronization paths (paths sharing at
    least one node), as placed together by the new scheduler. *)
type path_group = {
  gkey : float;  (** worst member weight [n/d * |path|] *)
  gpaths : sync_path list;  (** members, heaviest first *)
  gorder : int;  (** union-find representative, the stable tie-break *)
}

(** Lazily-computed machine-independent derived data ({!sync_paths},
    {!longest_path_to_exit}, {!lfd_sends}, {!sync_groups},
    {!priority_order}), cached with the graph because the pipeline
    schedules each graph under several machine configurations.
    Internal to this library — treat the fields as private. *)
type memo = {
  mutable lp : int array option;
  mutable paths : sync_path list option;
  mutable lfd : int array option;
  mutable groups : path_group list option;
  mutable order : int array option;
  mutable fuc : int array option;
}

type t = {
  prog : Program.t;
  n : int;  (** number of nodes = body length *)
  n_arcs : int;  (** total arc count *)
  succ_off : int array;  (** length [n+1]; node [i]'s outgoing arcs are
                             [succ_arc.(succ_off.(i) .. succ_off.(i+1)-1)] *)
  succ_arc : int array;  (** packed outgoing arcs (see accessors below) *)
  pred_off : int array;  (** transposed offsets *)
  pred_arc : int array;  (** packed incoming arcs *)
  memo : memo;  (** see {!memo} *)
}

(** {2 Packed-arc accessors}

    An entry of [succ_arc] packs the destination node, the arc kind and
    the latency into one int (for [pred_arc], the source node).  *)

(** [arc_node packed] — the other endpoint's node index. *)
val arc_node : int -> int

(** [arc_latency packed] — the arc's latency in cycles. *)
val arc_latency : int -> int

(** [arc_kind packed] — the arc's kind. *)
val arc_kind : int -> arc_kind

(** [succ_deg g i] / [pred_deg g i] — out-/in-degree of node [i]. *)
val succ_deg : t -> int -> int

val pred_deg : t -> int -> int

(** [iter_succs g i f] applies [f] to each packed outgoing arc of [i],
    in row order.  Allocation-free. *)
val iter_succs : t -> int -> (int -> unit) -> unit

(** [iter_preds g i f] — likewise for incoming arcs. *)
val iter_preds : t -> int -> (int -> unit) -> unit

(** [succs_list g i] / [preds_list g i] — boxed {!arc} views of one row,
    in row order (identical to the pre-arena [arc list array]
    contents).  For cold paths, debugging and tests. *)
val succs_list : t -> int -> arc list

val preds_list : t -> int -> arc list

(** [build p] constructs the graph into a per-domain arena: near-linear
    in body length + arc count (memory pairs are enumerated from
    alias-class buckets, not an O(n^2) pairwise scan).  The returned
    graph is immutable and safe to share across domains.

    [sync_arcs:false] omits the synchronization-condition arcs — the
    resulting graph describes what a scheduler oblivious to the paper's
    Section 2 conditions would see.  Schedules built over it can access
    stale data; the [stale_data_demo] example and the simulator tests
    use this to reproduce the motivating bug.

    Updates the counters [dfg.arcs] (arcs constructed) and
    [dfg.build_ns] (cumulative build nanoseconds). *)
val build : ?sync_arcs:bool -> Program.t -> t

(** [build_reference p] — the retained pre-arena list-based builder:
    [(succs, preds)] with each node's arcs in the same order as
    [succs_list]/[preds_list] of {!build}.  Differential oracle for the
    property suite; do not use on hot paths. *)
val build_reference : ?sync_arcs:bool -> Program.t -> arc list array * arc list array

(** [may_alias a b] — conservative aliasing of two memory references:
    same base and (distinct affine element indices excepted) possibly the
    same cell. *)
val may_alias : Program.mem_ref -> Program.mem_ref -> bool

(** [protected_of_wait p w] — the body indices [w]'s [Wait] orders after
    itself: its sink instruction plus every may-aliasing memory
    operation of the sink statement between the wait and the sink (the
    old-value load of an if-converted store).  Exactly the targets of
    the wait's sync-sink arcs in {!build}. *)
val protected_of_wait : Program.t -> Program.wait_info -> int list

(** {2 Components (Sig / Wat / Sigwat graphs)} *)

type comp_kind =
  | Sig_graph  (** contains sends but no waits *)
  | Wat_graph  (** contains waits but no sends *)
  | Sigwat_graph  (** contains both *)
  | Plain  (** contains neither *)

type component = {
  id : int;
  nodes : int list;  (** ascending *)
  kind : comp_kind;
  sends : int list;  (** body indices of [Send] nodes *)
  waits : int list;  (** body indices of [Wait] nodes *)
}

(** [components g] — weakly-connected components, classified.  Ordered by
    smallest member node. *)
val components : t -> component array

(** [component_of g comps] maps each node to its component id. *)
val component_of : t -> component array -> int array

(** {2 Synchronization paths} *)

(** [sync_paths g] finds, for every wait whose [Send] is reachable from
    its [Wait] node, a shortest directed path between them (BFS; ties
    broken deterministically towards lower node indices).  Such a path
    makes the LBD unavoidable; its nodes are what the new scheduler
    keeps contiguous.  Memoized on the graph. *)
val sync_paths : t -> sync_path list

(** [sync_groups g] — {!sync_paths} grouped into connected components
    (paths sharing a node), each group's members sorted heaviest first
    and the group list sorted by ascending [gorder] (the canonical,
    option-independent order).  Memoized on the graph; callers must not
    mutate the result. *)
val sync_groups : t -> path_group list

(** [lfd_sends g] — for each node, [-1], except waits that should become
    lexically forward in a schedule: there, the body index of the
    matching [Send].  A wait heading a {!sync_paths} path is excluded
    (its LBD is unavoidable), and a send->wait ordering constraint is
    accepted only when the combined graph (arcs plus the constraints
    accepted so far, in wait-table order) stays acyclic.  Memoized on
    the graph; callers must not mutate the result. *)
val lfd_sends : t -> int array

(** [longest_path_to_exit g] — for every node, the maximum sum of arc
    latencies over paths to any sink; the classic list-scheduling
    priority.  Memoized on the graph; callers must not mutate the
    result. *)
val longest_path_to_exit : t -> int array

(** [priority_order g] — every node, sorted by descending
    {!longest_path_to_exit} with ties towards lower indices (program
    order).  Memoized on the graph; callers must not mutate the
    result. *)
val priority_order : t -> int array

(** [fu_codes g] — per node, the function-unit demand as an int: [-1]
    for none (sync operations), otherwise [Fu.index] of the kind; the
    form the resource tracker's [_code] entry points consume.  Memoized
    on the graph; callers must not mutate the result. *)
val fu_codes : t -> int array

(** [topo_order g] — a topological order of the nodes (original index as
    tie-break).  Raises [Invalid_argument] if the graph has a cycle
    (which would indicate a builder bug). *)
val topo_order : t -> int array

(** [pp_dot ppf g] renders the graph in Graphviz dot syntax, with the
    paper's triangle shapes for sync nodes. *)
val pp_dot : Format.formatter -> t -> unit
