(** Data-flow graph over one iteration's three-address code, with the
    paper's extra synchronization-condition arcs (Section 3.1).

    Nodes are body indices of the program.  Arcs:
    - {e data}: virtual-register definition to each use, with the
      producer's latency;
    - {e memory}: intra-iteration store/load ordering on may-aliasing
      references (flow, anti and output at the instruction level);
    - {e sync-source}: from the dependence-source memory operation to its
      [Send] — a send can never be scheduled before its source;
    - {e sync-sink}: from a [Wait] to its dependence-sink memory
      operation — a sink can never be scheduled before its wait.  The
      arc is duplicated to every earlier memory operation of the sink
      statement that may alias the sink (this covers the old-value load
      of an if-converted guarded store). *)

module Program := Isched_ir.Program

type arc_kind = Data | Mem | Sync_src | Sync_snk

type arc = { src : int; dst : int; latency : int; kind : arc_kind }

(** [arc_kind_name k] — ["data"], ["mem"], ["sync-src"] or ["sync-snk"];
    the vocabulary used by provenance bindings and the explain output. *)
val arc_kind_name : arc_kind -> string

type t = {
  prog : Program.t;
  n : int;  (** number of nodes = body length *)
  succs : arc list array;  (** outgoing arcs per node *)
  preds : arc list array;  (** incoming arcs per node *)
}

(** [build p] constructs the graph.  O(n^2) in the body length, which is
    fine for loop bodies.

    [sync_arcs:false] omits the synchronization-condition arcs — the
    resulting graph describes what a scheduler oblivious to the paper's
    Section 2 conditions would see.  Schedules built over it can access
    stale data; the [stale_data_demo] example and the simulator tests
    use this to reproduce the motivating bug. *)
val build : ?sync_arcs:bool -> Program.t -> t

(** [may_alias a b] — conservative aliasing of two memory references:
    same base and (distinct affine element indices excepted) possibly the
    same cell. *)
val may_alias : Program.mem_ref -> Program.mem_ref -> bool

(** [protected_of_wait p w] — the body indices [w]'s [Wait] orders after
    itself: its sink instruction plus every may-aliasing memory
    operation of the sink statement between the wait and the sink (the
    old-value load of an if-converted store).  Exactly the targets of
    the wait's sync-sink arcs in {!build}. *)
val protected_of_wait : Program.t -> Program.wait_info -> int list

(** {2 Components (Sig / Wat / Sigwat graphs)} *)

type comp_kind =
  | Sig_graph  (** contains sends but no waits *)
  | Wat_graph  (** contains waits but no sends *)
  | Sigwat_graph  (** contains both *)
  | Plain  (** contains neither *)

type component = {
  id : int;
  nodes : int list;  (** ascending *)
  kind : comp_kind;
  sends : int list;  (** body indices of [Send] nodes *)
  waits : int list;  (** body indices of [Wait] nodes *)
}

(** [components g] — weakly-connected components, classified.  Ordered by
    smallest member node. *)
val components : t -> component array

(** [component_of g comps] maps each node to its component id. *)
val component_of : t -> component array -> int array

(** {2 Synchronization paths} *)

type sync_path = {
  wait_id : int;  (** wait id in the program's wait table *)
  signal : int;
  distance : int;
  nodes : int list;  (** a shortest directed path, wait node first,
                          send node last *)
}

(** [sync_paths g] finds, for every wait whose [Send] is reachable from
    its [Wait] node, a shortest directed path between them (BFS; ties
    broken deterministically towards lower node indices).  Such a path
    makes the LBD unavoidable; its nodes are what the new scheduler
    keeps contiguous. *)
val sync_paths : t -> sync_path list

(** [longest_path_to_exit g] — for every node, the maximum sum of arc
    latencies over paths to any sink; the classic list-scheduling
    priority. *)
val longest_path_to_exit : t -> int array

(** [topo_order g] — a topological order of the nodes (original index as
    tie-break).  Raises [Invalid_argument] if the graph has a cycle
    (which would indicate a builder bug). *)
val topo_order : t -> int array

(** [pp_dot ppf g] renders the graph in Graphviz dot syntax, with the
    paper's triangle shapes for sync nodes. *)
val pp_dot : Format.formatter -> t -> unit
