module Instr = Isched_ir.Instr
module Program = Isched_ir.Program

type arc_kind = Data | Mem | Sync_src | Sync_snk
type arc = { src : int; dst : int; latency : int; kind : arc_kind }

let arc_kind_name = function
  | Data -> "data"
  | Mem -> "mem"
  | Sync_src -> "sync-src"
  | Sync_snk -> "sync-snk"

type t = {
  prog : Program.t;
  n : int;
  succs : arc list array;
  preds : arc list array;
}

let may_alias (a : Program.mem_ref) (b : Program.mem_ref) =
  String.equal a.base b.base
  &&
  match (a.affine, b.affine) with
  | Some x, Some y -> x = y
  | None, _ | _, None -> true

(* Scalar memory ops get a pseudo mem_ref keyed by name so the same
   aliasing logic applies; scalar and array namespaces are disjoint
   because Sema rejects names used as both. *)
let mem_ref_of (p : Program.t) i =
  match p.body.(i) with
  | Instr.Load _ | Instr.Store _ -> p.mem.(i)
  | Instr.Load_scalar { name; _ } | Instr.Store_scalar { name; _ } ->
    Some { Program.base = name; affine = Some (0, 0) }
  | _ -> None

let is_write (p : Program.t) i =
  match p.body.(i) with Instr.Store _ | Instr.Store_scalar _ -> true | _ -> false

(* The instructions a wait orders after itself: its sink plus the
   aliasing memory operations of the sink statement between the wait and
   the sink (the old-value load of an if-converted store). *)
let protected_of_wait (p : Program.t) (w : Program.wait_info) =
  let extra = ref [] in
  (match mem_ref_of p w.snk_instr with
  | None -> ()
  | Some ms ->
    for m = w.wait_instr + 1 to w.snk_instr - 1 do
      if p.stmt_of.(m) = w.snk_stmt then
        match mem_ref_of p m with
        | Some mm when may_alias ms mm -> extra := m :: !extra
        | _ -> ()
    done);
  w.snk_instr :: List.rev !extra

let build ?(sync_arcs = true) (p : Program.t) =
  let n = Array.length p.body in
  let succs = Array.make n [] and preds = Array.make n [] in
  let seen = Hashtbl.create (4 * n) in
  let add_arc ~src ~dst ~latency ~kind =
    if src = dst then invalid_arg "Dfg.build: self arc";
    if src > dst then
      invalid_arg
        (Printf.sprintf "Dfg.build: backward arc %d -> %d in %s" (src + 1) (dst + 1) p.name);
    let key = (src, dst, kind) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      let a = { src; dst; latency; kind } in
      succs.(src) <- a :: succs.(src);
      preds.(dst) <- a :: preds.(dst)
    end
  in
  (* Data arcs: single-assignment registers, def before use. *)
  let def_of = Array.make p.n_regs (-1) in
  Array.iteri
    (fun i ins -> match Instr.def ins with Some r -> def_of.(r) <- i | None -> ())
    p.body;
  Array.iteri
    (fun i ins ->
      List.iter
        (fun r ->
          let d = def_of.(r) in
          if d >= 0 && d <> i then
            add_arc ~src:d ~dst:i ~latency:(Instr.latency p.body.(d)) ~kind:Data)
        (Instr.uses ins))
    p.body;
  (* Memory arcs: ordered pairs of may-aliasing ops, at least one write. *)
  for i = 0 to n - 1 do
    match mem_ref_of p i with
    | None -> ()
    | Some mi ->
      for j = i + 1 to n - 1 do
        match mem_ref_of p j with
        | None -> ()
        | Some mj ->
          if (is_write p i || is_write p j) && may_alias mi mj then
            add_arc ~src:i ~dst:j ~latency:1 ~kind:Mem
      done
  done;
  (* Sync-condition arcs. *)
  if sync_arcs then begin
    Array.iter
      (fun (s : Program.signal_info) ->
        add_arc ~src:s.src_instr ~dst:s.send_instr
          ~latency:(Instr.latency p.body.(s.src_instr))
          ~kind:Sync_src)
      p.signals;
    Array.iter
      (fun (w : Program.wait_info) ->
        List.iter
          (fun m -> add_arc ~src:w.wait_instr ~dst:m ~latency:1 ~kind:Sync_snk)
          (protected_of_wait p w))
      p.waits
  end;
  { prog = p; n; succs; preds }

(* --- components --- *)

type comp_kind = Sig_graph | Wat_graph | Sigwat_graph | Plain

type component = {
  id : int;
  nodes : int list;
  kind : comp_kind;
  sends : int list;
  waits : int list;
}

let components g =
  let uf = Isched_util.Union_find.create g.n in
  Array.iter
    (fun arcs -> List.iter (fun a -> ignore (Isched_util.Union_find.union uf a.src a.dst)) arcs)
    g.succs;
  let groups = Isched_util.Union_find.groups uf in
  let comps =
    List.mapi
      (fun id (_, nodes) ->
        let sends =
          List.filter (fun i -> match g.prog.body.(i) with Instr.Send _ -> true | _ -> false) nodes
        in
        let waits =
          List.filter (fun i -> match g.prog.body.(i) with Instr.Wait _ -> true | _ -> false) nodes
        in
        let kind =
          match (sends, waits) with
          | [], [] -> Plain
          | _ :: _, [] -> Sig_graph
          | [], _ :: _ -> Wat_graph
          | _ :: _, _ :: _ -> Sigwat_graph
        in
        { id; nodes; kind; sends; waits })
      groups
  in
  Array.of_list comps

let component_of g comps =
  let owner = Array.make g.n (-1) in
  Array.iter (fun c -> List.iter (fun i -> owner.(i) <- c.id) c.nodes) comps;
  owner

(* --- synchronization paths --- *)

type sync_path = { wait_id : int; signal : int; distance : int; nodes : int list }

let shortest_path g ~src ~dst =
  if src = dst then Some [ src ]
  else begin
    let parent = Array.make g.n (-2) in
    parent.(src) <- -1;
    let q = Queue.create () in
    Queue.push src q;
    let found = ref false in
    while (not !found) && not (Queue.is_empty q) do
      let u = Queue.pop q in
      let nexts =
        List.map (fun a -> a.dst) g.succs.(u) |> List.sort_uniq compare
      in
      List.iter
        (fun v ->
          if (not !found) && parent.(v) = -2 then begin
            parent.(v) <- u;
            if v = dst then found := true else Queue.push v q
          end)
        nexts
    done;
    if not !found then None
    else begin
      let rec walk v acc = if v = -1 then acc else walk parent.(v) (v :: acc) in
      Some (walk dst [])
    end
  end

let sync_paths g =
  let p = g.prog in
  Array.to_list p.waits
  |> List.filter_map (fun (w : Program.wait_info) ->
         let send = p.signals.(w.signal).send_instr in
         match shortest_path g ~src:w.wait_instr ~dst:send with
         | Some nodes ->
           Some { wait_id = w.wait; signal = w.signal; distance = w.distance; nodes }
         | None -> None)

(* --- priorities and orders --- *)

let longest_path_to_exit g =
  let dist = Array.make g.n 0 in
  (* Nodes are indexed in a topological order already (all arcs go
     forward), so a reverse sweep suffices. *)
  for i = g.n - 1 downto 0 do
    List.iter (fun a -> dist.(i) <- max dist.(i) (a.latency + dist.(a.dst))) g.succs.(i)
  done;
  dist

let topo_order g =
  (* All arcs are forward by construction. *)
  Array.init g.n (fun i -> i)

let pp_dot ppf g =
  Format.fprintf ppf "digraph dfg {@.";
  for i = 0 to g.n - 1 do
    let shape =
      match g.prog.body.(i) with
      | Instr.Send _ -> ", shape=triangle"
      | Instr.Wait _ -> ", shape=invtriangle"
      | _ -> ""
    in
    Format.fprintf ppf "  n%d [label=\"%d: %s\"%s];@." i (i + 1)
      (String.escaped (Instr.to_string g.prog.body.(i)))
      shape
  done;
  Array.iter
    (List.iter (fun (a : arc) ->
         let style =
           match a.kind with
           | Data -> ""
           | Mem -> " [style=dashed]"
           | Sync_src | Sync_snk -> " [style=dotted, color=red]"
         in
         Format.fprintf ppf "  n%d -> n%d%s;@." a.src a.dst style))
    g.succs;
  Format.fprintf ppf "}@."


(* Observability shadow: the exported [build] is the traced one. *)
let build ?sync_arcs p = Isched_obs.Span.with_ ~name:"dfg.build" (fun () -> build ?sync_arcs p)
