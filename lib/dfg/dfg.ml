module Instr = Isched_ir.Instr
module Program = Isched_ir.Program

type arc_kind = Data | Mem | Sync_src | Sync_snk
type arc = { src : int; dst : int; latency : int; kind : arc_kind }

let arc_kind_name = function
  | Data -> "data"
  | Mem -> "mem"
  | Sync_src -> "sync-src"
  | Sync_snk -> "sync-snk"

(* Arcs live in two flat CSR arenas: [succ_off]/[succ_arc] indexed by
   source node and the transposed [pred_off]/[pred_arc] indexed by
   destination.  One packed int per arc endpoint:

     bits 10..   the other endpoint's node index
     bits 8..9   arc kind
     bits 0..7   latency (function-unit latencies are <= 6)

   Within a row, arcs appear in the exact order the old [arc list
   array] representation produced (reverse insertion order): schedule
   construction recurses over predecessor arcs and provenance binds the
   first-seen arc on ties, so row order is semantics, not cosmetics. *)

let kind_code = function Data -> 0 | Mem -> 1 | Sync_src -> 2 | Sync_snk -> 3
let kind_of_code = function 0 -> Data | 1 -> Mem | 2 -> Sync_src | _ -> Sync_snk

let[@inline] arc_node packed = packed lsr 10
let[@inline] arc_latency packed = packed land 0xFF
let[@inline] arc_kind packed = kind_of_code ((packed lsr 8) land 3)

type sync_path = { wait_id : int; signal : int; distance : int; nodes : int list }

(* Machine-independent derived data, computed on first demand and kept
   with the graph: the bench pipeline schedules every graph under
   several machine configurations, and each run used to recompute these
   from scratch.  A write is idempotent (the functions are
   deterministic), so the unsynchronized publication is safe when a
   memoized graph is shared across domains — two domains can at worst
   both compute the same value once. *)
type path_group = {
  gkey : float;  (* the worst member weight, the scheduler's sort key *)
  gpaths : sync_path list;  (* members, heaviest first *)
  gorder : int;  (* union-find representative: the stable tie-break *)
}

type memo = {
  mutable lp : int array option;  (* longest_path_to_exit *)
  mutable paths : sync_path list option;  (* sync_paths *)
  mutable lfd : int array option;  (* lfd_sends *)
  mutable groups : path_group list option;  (* sync_groups *)
  mutable order : int array option;  (* priority_order *)
  mutable fuc : int array option;  (* fu_codes *)
}

type t = {
  prog : Program.t;
  n : int;
  n_arcs : int;
  succ_off : int array;
  succ_arc : int array;
  pred_off : int array;
  pred_arc : int array;
  memo : memo;
}

let[@inline] succ_deg g i = g.succ_off.(i + 1) - g.succ_off.(i)
let[@inline] pred_deg g i = g.pred_off.(i + 1) - g.pred_off.(i)

let[@inline] iter_succs g i f =
  for k = g.succ_off.(i) to g.succ_off.(i + 1) - 1 do
    f g.succ_arc.(k)
  done

let[@inline] iter_preds g i f =
  for k = g.pred_off.(i) to g.pred_off.(i + 1) - 1 do
    f g.pred_arc.(k)
  done

(* Boxed views for cold paths and tests; same arc order as the old
   representation. *)
let succs_list g i =
  let r = ref [] in
  for k = g.succ_off.(i + 1) - 1 downto g.succ_off.(i) do
    let a = g.succ_arc.(k) in
    r := { src = i; dst = arc_node a; latency = arc_latency a; kind = arc_kind a } :: !r
  done;
  !r

let preds_list g i =
  let r = ref [] in
  for k = g.pred_off.(i + 1) - 1 downto g.pred_off.(i) do
    let a = g.pred_arc.(k) in
    r := { src = arc_node a; dst = i; latency = arc_latency a; kind = arc_kind a } :: !r
  done;
  !r

let may_alias (a : Program.mem_ref) (b : Program.mem_ref) =
  String.equal a.base b.base
  &&
  match (a.affine, b.affine) with
  | Some x, Some y -> x = y
  | None, _ | _, None -> true

(* Scalar memory ops get a pseudo mem_ref keyed by name so the same
   aliasing logic applies; scalar and array namespaces are disjoint
   because Sema rejects names used as both. *)
let mem_ref_of (p : Program.t) i =
  match p.body.(i) with
  | Instr.Load _ | Instr.Store _ -> p.mem.(i)
  | Instr.Load_scalar { name; _ } | Instr.Store_scalar { name; _ } ->
    Some { Program.base = name; affine = Some (0, 0) }
  | _ -> None

let is_write (p : Program.t) i =
  match p.body.(i) with Instr.Store _ | Instr.Store_scalar _ -> true | _ -> false

(* The instructions a wait orders after itself: its sink plus the
   aliasing memory operations of the sink statement between the wait and
   the sink (the old-value load of an if-converted store). *)
let protected_of_wait (p : Program.t) (w : Program.wait_info) =
  let extra = ref [] in
  (match mem_ref_of p w.snk_instr with
  | None -> ()
  | Some ms ->
    for m = w.wait_instr + 1 to w.snk_instr - 1 do
      if p.stmt_of.(m) = w.snk_stmt then
        match mem_ref_of p m with
        | Some mm when may_alias ms mm -> extra := m :: !extra
        | _ -> ()
    done);
  w.snk_instr :: List.rev !extra

(* --- alias-class buckets --- *)

(* Memory operations grouped by base name, then split by affine
   subscript class.  Two ops may alias iff they share a base and their
   affine classes are equal or either is unanalyzable (None), so every
   aliasing pair is confined to one bucket: memory-arc construction
   enumerates exactly the aliasing pairs instead of testing all
   O(n^2) index pairs, and the sync-sink duplication reuses the same
   buckets instead of re-running pairwise alias tests. *)
type bucket = {
  mutable all : int list;  (* every member, descending (built by cons) *)
  classes : ((int * int) option, int list ref * int list ref) Hashtbl.t;
      (* affine class -> (writes, reads), each descending *)
}

let buckets_of (p : Program.t) n =
  let tbl : (string, bucket) Hashtbl.t = Hashtbl.create 16 in
  for i = 0 to n - 1 do
    match mem_ref_of p i with
    | None -> ()
    | Some m ->
      let b =
        match Hashtbl.find_opt tbl m.base with
        | Some b -> b
        | None ->
          let b = { all = []; classes = Hashtbl.create 4 } in
          Hashtbl.add tbl m.base b;
          b
      in
      b.all <- i :: b.all;
      let ws, rs =
        match Hashtbl.find_opt b.classes m.affine with
        | Some p -> p
        | None ->
          let p = (ref [], ref []) in
          Hashtbl.add b.classes m.affine p;
          p
      in
      if is_write p i then ws := i :: !ws else rs := i :: !rs
  done;
  tbl

(* --- per-domain build arena --- *)

(* Scratch for one [build] call, reused across builds on the same
   domain so the hot loop of a scaled bench run allocates no staging
   buffers.  Only [build] touches it and only between entry and return;
   the returned graph owns freshly sized arrays and is immutable, so
   graphs can be memoized and shared across domains. *)
type arena = {
  mutable staged : int array;  (* (src<<36)|(dst<<10)|(kind<<8)|latency, in add order *)
  mutable n_staged : int;
  mutable pairs : int array;  (* (i<<31)|j packed mem pairs *)
  mutable n_pairs : int;
}

let arena_key =
  Domain.DLS.new_key (fun () ->
      { staged = Array.make 256 0; n_staged = 0; pairs = Array.make 256 0; n_pairs = 0 })

let[@inline] push_staged a v =
  if a.n_staged = Array.length a.staged then begin
    let bigger = Array.make (2 * a.n_staged) 0 in
    Array.blit a.staged 0 bigger 0 a.n_staged;
    a.staged <- bigger
  end;
  a.staged.(a.n_staged) <- v;
  a.n_staged <- a.n_staged + 1

let[@inline] push_pair a v =
  if a.n_pairs = Array.length a.pairs then begin
    let bigger = Array.make (2 * a.n_pairs) 0 in
    Array.blit a.pairs 0 bigger 0 a.n_pairs;
    a.pairs <- bigger
  end;
  a.pairs.(a.n_pairs) <- v;
  a.n_pairs <- a.n_pairs + 1

let c_arcs = Isched_obs.Counters.counter "dfg.arcs"
let c_build_ns = Isched_obs.Counters.counter "dfg.build_ns"

let build ?(sync_arcs = true) (p : Program.t) =
  let t0 = Unix.gettimeofday () in
  let n = Array.length p.body in
  if n >= 1 lsl 26 then invalid_arg "Dfg.build: body too large for packed arcs";
  let a = Domain.DLS.get arena_key in
  a.n_staged <- 0;
  a.n_pairs <- 0;
  let stage ~src ~dst ~latency ~kind =
    if src = dst then invalid_arg "Dfg.build: self arc";
    if src > dst then
      invalid_arg
        (Printf.sprintf "Dfg.build: backward arc %d -> %d in %s" (src + 1) (dst + 1) p.name);
    push_staged a ((src lsl 36) lor (dst lsl 10) lor (kind_code kind lsl 8) lor latency)
  in
  (* Data arcs: single-assignment registers, def before use.  The only
     possible duplicate (src, dst, kind) is a register read twice by one
     instruction — registers are single assignment, so distinct regs
     have distinct defs — and an instruction reads at most three
     operands, so two locals dedup the whole use list without a table.
     The bucket enumeration below emits every memory pair exactly once,
     and signals/waits each own distinct instructions. *)
  let def_of = Array.make p.n_regs (-1) in
  Array.iteri
    (fun i ins -> match Instr.def ins with Some r -> def_of.(r) <- i | None -> ())
    p.body;
  Array.iteri
    (fun i ins ->
      let r0 = ref (-1) and r1 = ref (-1) in
      Instr.iter_uses ins (fun r ->
          if r <> !r0 && r <> !r1 then begin
            if !r0 < 0 then r0 := r else r1 := r;
            let d = def_of.(r) in
            if d >= 0 && d <> i then
              stage ~src:d ~dst:i ~latency:(Instr.latency p.body.(d)) ~kind:Data
          end))
    p.body;
  (* Memory arcs: ordered pairs of may-aliasing ops, at least one write.
     Enumerated per alias-class bucket — near-linear in the number of
     arcs — then sorted into the (i asc, j asc) order the old pairwise
     scan produced. *)
  let buckets = buckets_of p n in
  let emit_pair i j = push_pair a (if i < j then (i lsl 31) lor j else (j lsl 31) lor i) in
  let rec write_pairs = function
    | [] -> ()
    | w :: rest ->
      List.iter (fun w' -> emit_pair w w') rest;
      write_pairs rest
  in
  Hashtbl.iter
    (fun _base b ->
      let none_ws, none_rs =
        match Hashtbl.find_opt b.classes None with
        | Some (ws, rs) -> (!ws, !rs)
        | None -> ([], [])
      in
      Hashtbl.iter
        (fun affine (ws, rs) ->
          match affine with
          | None ->
            (* None x None: write-write pairs plus write-read pairs. *)
            write_pairs !ws;
            List.iter (fun w -> List.iter (fun r -> emit_pair w r) !rs) !ws
          | Some _ ->
            (* Within one affine class. *)
            write_pairs !ws;
            List.iter (fun w -> List.iter (fun r -> emit_pair w r) !rs) !ws;
            (* Cross pairs against the unanalyzable class: a write on
               either side.  writes x (None writes + None reads) covers
               every pair with a Some-side write; reads x None-writes
               covers the rest exactly once. *)
            List.iter
              (fun w ->
                List.iter (fun x -> emit_pair w x) none_ws;
                List.iter (fun x -> emit_pair w x) none_rs)
              !ws;
            List.iter (fun r -> List.iter (fun w -> emit_pair r w) none_ws) !rs)
        b.classes)
    buckets;
  let pairs = Array.sub a.pairs 0 a.n_pairs in
  Array.sort Int.compare pairs;
  Array.iter
    (fun packed -> stage ~src:(packed lsr 31) ~dst:(packed land 0x7FFFFFFF) ~latency:1 ~kind:Mem)
    pairs;
  (* Sync-condition arcs. *)
  if sync_arcs then begin
    Array.iter
      (fun (s : Program.signal_info) ->
        stage ~src:s.src_instr ~dst:s.send_instr
          ~latency:(Instr.latency p.body.(s.src_instr))
          ~kind:Sync_src)
      p.signals;
    Array.iter
      (fun (w : Program.wait_info) ->
        stage ~src:w.wait_instr ~dst:w.snk_instr ~latency:1 ~kind:Sync_snk;
        (* The sink statement's other aliasing memory ops, found in the
           sink's bucket instead of a pairwise scan of the body range. *)
        match mem_ref_of p w.snk_instr with
        | None -> ()
        | Some ms -> (
          match Hashtbl.find_opt buckets ms.base with
          | None -> ()
          | Some b ->
            (* [b.all] is descending; collect the qualifying range in
               ascending order to match the old textual scan. *)
            let extras =
              List.fold_left
                (fun acc m ->
                  if
                    m > w.wait_instr && m < w.snk_instr
                    && p.stmt_of.(m) = w.snk_stmt
                    &&
                    match mem_ref_of p m with
                    | Some mm -> may_alias ms mm
                    | None -> false
                  then m :: acc
                  else acc)
                [] b.all
            in
            List.iter (fun m -> stage ~src:w.wait_instr ~dst:m ~latency:1 ~kind:Sync_snk) extras))
      p.waits
  end;
  (* Freeze the staged arcs into the two CSR arenas.  Rows are filled
     backward (cursor starts at row end) so that reading a row forward
     yields reverse insertion order — exactly the cons order of the old
     list representation. *)
  let n_arcs = a.n_staged in
  let succ_off = Array.make (n + 1) 0 and pred_off = Array.make (n + 1) 0 in
  for k = 0 to n_arcs - 1 do
    let v = a.staged.(k) in
    let src = v lsr 36 and dst = (v lsr 10) land 0x3FFFFFF in
    succ_off.(src + 1) <- succ_off.(src + 1) + 1;
    pred_off.(dst + 1) <- pred_off.(dst + 1) + 1
  done;
  for i = 0 to n - 1 do
    succ_off.(i + 1) <- succ_off.(i + 1) + succ_off.(i);
    pred_off.(i + 1) <- pred_off.(i + 1) + pred_off.(i)
  done;
  let succ_arc = Array.make n_arcs 0 and pred_arc = Array.make n_arcs 0 in
  let succ_cur = Array.init n (fun i -> succ_off.(i + 1)) in
  let pred_cur = Array.init n (fun i -> pred_off.(i + 1)) in
  for k = 0 to n_arcs - 1 do
    let v = a.staged.(k) in
    let src = v lsr 36 and dst = (v lsr 10) land 0x3FFFFFF in
    let kind_lat = v land 0x3FF in
    succ_cur.(src) <- succ_cur.(src) - 1;
    succ_arc.(succ_cur.(src)) <- (dst lsl 10) lor kind_lat;
    pred_cur.(dst) <- pred_cur.(dst) - 1;
    pred_arc.(pred_cur.(dst)) <- (src lsl 10) lor kind_lat
  done;
  Isched_obs.Counters.add c_arcs n_arcs;
  Isched_obs.Counters.add c_build_ns
    (int_of_float (1e9 *. (Unix.gettimeofday () -. t0)));
  { prog = p; n; n_arcs; succ_off; succ_arc; pred_off; pred_arc;
    memo = { lp = None; paths = None; lfd = None; groups = None; order = None; fuc = None } }

(* --- reference builder --- *)

(* The pre-arena list-based construction, kept verbatim as a
   differential oracle: the property suite asserts the CSR builder
   produces the same arcs in the same per-node order on arbitrary
   generated loops. *)
let build_reference ?(sync_arcs = true) (p : Program.t) =
  let n = Array.length p.body in
  let succs = Array.make n [] and preds = Array.make n [] in
  let seen = Hashtbl.create (4 * n) in
  let add_arc ~src ~dst ~latency ~kind =
    if src = dst then invalid_arg "Dfg.build: self arc";
    if src > dst then
      invalid_arg
        (Printf.sprintf "Dfg.build: backward arc %d -> %d in %s" (src + 1) (dst + 1) p.name);
    let key = (src, dst, kind) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      let a = { src; dst; latency; kind } in
      succs.(src) <- a :: succs.(src);
      preds.(dst) <- a :: preds.(dst)
    end
  in
  let def_of = Array.make p.n_regs (-1) in
  Array.iteri
    (fun i ins -> match Instr.def ins with Some r -> def_of.(r) <- i | None -> ())
    p.body;
  Array.iteri
    (fun i ins ->
      List.iter
        (fun r ->
          let d = def_of.(r) in
          if d >= 0 && d <> i then
            add_arc ~src:d ~dst:i ~latency:(Instr.latency p.body.(d)) ~kind:Data)
        (Instr.uses ins))
    p.body;
  for i = 0 to n - 1 do
    match mem_ref_of p i with
    | None -> ()
    | Some mi ->
      for j = i + 1 to n - 1 do
        match mem_ref_of p j with
        | None -> ()
        | Some mj ->
          if (is_write p i || is_write p j) && may_alias mi mj then
            add_arc ~src:i ~dst:j ~latency:1 ~kind:Mem
      done
  done;
  if sync_arcs then begin
    Array.iter
      (fun (s : Program.signal_info) ->
        add_arc ~src:s.src_instr ~dst:s.send_instr
          ~latency:(Instr.latency p.body.(s.src_instr))
          ~kind:Sync_src)
      p.signals;
    Array.iter
      (fun (w : Program.wait_info) ->
        List.iter
          (fun m -> add_arc ~src:w.wait_instr ~dst:m ~latency:1 ~kind:Sync_snk)
          (protected_of_wait p w))
      p.waits
  end;
  (succs, preds)

(* --- components --- *)

type comp_kind = Sig_graph | Wat_graph | Sigwat_graph | Plain

type component = {
  id : int;
  nodes : int list;
  kind : comp_kind;
  sends : int list;
  waits : int list;
}

let components g =
  let uf = Isched_util.Union_find.create g.n in
  for i = 0 to g.n - 1 do
    iter_succs g i (fun a -> ignore (Isched_util.Union_find.union uf i (arc_node a)))
  done;
  let groups = Isched_util.Union_find.groups uf in
  let comps =
    List.mapi
      (fun id (_, nodes) ->
        let sends =
          List.filter (fun i -> match g.prog.body.(i) with Instr.Send _ -> true | _ -> false) nodes
        in
        let waits =
          List.filter (fun i -> match g.prog.body.(i) with Instr.Wait _ -> true | _ -> false) nodes
        in
        let kind =
          match (sends, waits) with
          | [], [] -> Plain
          | _ :: _, [] -> Sig_graph
          | [], _ :: _ -> Wat_graph
          | _ :: _, _ :: _ -> Sigwat_graph
        in
        { id; nodes; kind; sends; waits })
      groups
  in
  Array.of_list comps

let component_of g comps =
  let owner = Array.make g.n (-1) in
  Array.iter (fun c -> List.iter (fun i -> owner.(i) <- c.id) c.nodes) comps;
  owner

(* --- synchronization paths --- *)

let shortest_path g ~src ~dst =
  if src = dst then Some [ src ]
  else begin
    let parent = Array.make g.n (-2) in
    parent.(src) <- -1;
    let q = Queue.create () in
    Queue.push src q;
    let found = ref false in
    while (not !found) && not (Queue.is_empty q) do
      let u = Queue.pop q in
      let nexts = ref [] in
      iter_succs g u (fun a -> nexts := arc_node a :: !nexts);
      let nexts = List.sort_uniq compare !nexts in
      List.iter
        (fun v ->
          if (not !found) && parent.(v) = -2 then begin
            parent.(v) <- u;
            if v = dst then found := true else Queue.push v q
          end)
        nexts
    done;
    if not !found then None
    else begin
      let rec walk v acc = if v = -1 then acc else walk parent.(v) (v :: acc) in
      Some (walk dst [])
    end
  end

let sync_paths g =
  match g.memo.paths with
  | Some ps -> ps
  | None ->
    let p = g.prog in
    let ps =
      Array.to_list p.waits
      |> List.filter_map (fun (w : Program.wait_info) ->
             let send = p.signals.(w.signal).send_instr in
             match shortest_path g ~src:w.wait_instr ~dst:send with
             | Some nodes ->
               Some { wait_id = w.wait; signal = w.signal; distance = w.distance; nodes }
             | None -> None)
    in
    g.memo.paths <- Some ps;
    ps

(* Sigwat components: paths sharing any node are grouped (they compete
   for the same issue slots and must be placed together), each group
   keyed by its worst member weight n/d * |path| — the LBD cost a
   mis-placement of that member would multiply into.  Machine
   independent, so memoized with the graph; the scheduler only re-sorts
   the group list according to its [order_paths] option. *)
let sync_groups g =
  match g.memo.groups with
  | Some gs -> gs
  | None ->
    let gs =
      match sync_paths g with
      | [] -> []
      | paths ->
        let arr = Array.of_list paths in
        let uf = Isched_util.Union_find.create (Array.length arr) in
        let owner : (int, int) Hashtbl.t = Hashtbl.create 32 in
        Array.iteri
          (fun pi (p : sync_path) ->
            List.iter
              (fun node ->
                match Hashtbl.find_opt owner node with
                | Some qi -> ignore (Isched_util.Union_find.union uf pi qi)
                | None -> Hashtbl.add owner node pi)
              p.nodes)
          arr;
        let n_iters = g.prog.Program.n_iters in
        let weight (p : sync_path) =
          float_of_int n_iters /. float_of_int (max 1 p.distance)
          *. float_of_int (List.length p.nodes)
        in
        Isched_util.Union_find.groups uf
        |> List.map (fun (rep, members) ->
               let paths = List.map (fun m -> arr.(m)) members in
               let gkey = List.fold_left (fun acc p -> Float.max acc (weight p)) 0. paths in
               let gpaths =
                 List.sort
                   (fun a b ->
                     let c = Float.compare (weight b) (weight a) in
                     if c <> 0 then c else Int.compare a.wait_id b.wait_id)
                   paths
               in
               { gkey; gpaths; gorder = rep })
        |> List.sort (fun a b -> Int.compare a.gorder b.gorder)
    in
    g.memo.groups <- Some gs;
    gs

(* --- lexically-forward constraints --- *)

(* For every wait not heading a sync path, the scheduler wants the
   dependence lexically forward: the send placed first, the wait
   strictly after.  The paper assumes the Sig/Wat/Sigwat graphs "do not
   depend on each other", but compiled loops can violate that (e.g. an
   unrolled scalar update yields two pairs whose sends each depend on
   the other pair's wait); forcing both forward would deadlock the
   placement recursion.  An ordering constraint send->wait is therefore
   accepted only when it keeps the combined graph (data-flow arcs plus
   the constraints accepted so far) acyclic; a rejected pair honestly
   stays backward. *)
let lfd_sends g =
  match g.memo.lfd with
  | Some a -> a
  | None ->
    let p = g.prog in
    let lfd = Array.make (max 1 g.n) (-1) in
    let extra = Array.make (max 1 g.n) [] in
    let path_head = Array.make (max 1 g.n) false in
    List.iter (fun (sp : sync_path) -> path_head.(List.hd sp.nodes) <- true) (sync_paths g);
    let seen = Array.make (max 1 g.n) 0 in
    let stamp = ref 0 in
    let reaches src dst =
      (* DFS over DFG arcs + accepted send->wait constraint edges. *)
      incr stamp;
      let s = !stamp in
      let rec go u =
        u = dst
        || seen.(u) <> s
           && begin
                seen.(u) <- s;
                let found = ref false in
                iter_succs g u (fun a -> if not !found then found := go (arc_node a));
                if not !found then found := List.exists go extra.(u);
                !found
              end
      in
      go src
    in
    Array.iter
      (fun (w : Program.wait_info) ->
        if not path_head.(w.wait_instr) then begin
          let send = p.signals.(w.signal).send_instr in
          (* Adding send -> wait creates a cycle iff the wait already
             reaches the send. *)
          if not (reaches w.wait_instr send) then begin
            lfd.(w.wait_instr) <- send;
            extra.(send) <- w.wait_instr :: extra.(send)
          end
        end)
      p.waits;
    g.memo.lfd <- Some lfd;
    lfd

(* --- priorities and orders --- *)

let longest_path_to_exit g =
  match g.memo.lp with
  | Some d -> d
  | None ->
    let dist = Array.make g.n 0 in
    (* Nodes are indexed in a topological order already (all arcs go
       forward), so a reverse sweep suffices. *)
    for i = g.n - 1 downto 0 do
      iter_succs g i (fun a ->
          let d = arc_latency a + dist.(arc_node a) in
          if d > dist.(i) then dist.(i) <- d)
    done;
    g.memo.lp <- Some dist;
    dist

(* Every node, critical path first, ties towards program order: the
   fill order of the schedulers' final phase.  A pure function of the
   graph, so the sort happens once instead of once per machine
   configuration. *)
let priority_order g =
  match g.memo.order with
  | Some o -> o
  | None ->
    let prio = longest_path_to_exit g in
    let order = Array.init g.n (fun i -> i) in
    Array.sort
      (fun a b ->
        let c = Int.compare prio.(b) prio.(a) in
        if c <> 0 then c else Int.compare a b)
      order;
    g.memo.order <- Some order;
    order

(* Per-node function-unit demand as [Resource.fu_code] ints ([-1] =
   none, else [Fu.index]): precomputed once per graph so the schedulers'
   probe/reserve loops never re-match on the instruction. *)
let fu_codes g =
  match g.memo.fuc with
  | Some a -> a
  | None ->
    let a =
      Array.map
        (fun ins -> match Instr.fu ins with None -> -1 | Some k -> Isched_ir.Fu.index k)
        g.prog.body
    in
    g.memo.fuc <- Some a;
    a

let topo_order g =
  (* All arcs are forward by construction. *)
  Array.init g.n (fun i -> i)

let pp_dot ppf g =
  Format.fprintf ppf "digraph dfg {@.";
  for i = 0 to g.n - 1 do
    let shape =
      match g.prog.body.(i) with
      | Instr.Send _ -> ", shape=triangle"
      | Instr.Wait _ -> ", shape=invtriangle"
      | _ -> ""
    in
    Format.fprintf ppf "  n%d [label=\"%d: %s\"%s];@." i (i + 1)
      (String.escaped (Instr.to_string g.prog.body.(i)))
      shape
  done;
  for i = 0 to g.n - 1 do
    List.iter
      (fun (a : arc) ->
        let style =
          match a.kind with
          | Data -> ""
          | Mem -> " [style=dashed]"
          | Sync_src | Sync_snk -> " [style=dotted, color=red]"
        in
        Format.fprintf ppf "  n%d -> n%d%s;@." a.src a.dst style)
      (succs_list g i)
  done;
  Format.fprintf ppf "}@."


(* Observability shadow: the exported [build] is the traced one. *)
let build ?sync_arcs p = Isched_obs.Span.with_ ~name:"dfg.build" (fun () -> build ?sync_arcs p)
