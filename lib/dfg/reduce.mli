(** Instruction-level redundant-synchronization elimination.

    The classic statement-level rule (Midkiff & Padua) — a dependence is
    covered when other enforced pairs compose with intra-iteration
    program order to the same total distance — is {e unsound} under
    instruction scheduling: "program order" between independent
    instructions is exactly what the scheduler is free to change, so a
    sink protected only transitively through textual order can be
    hoisted above the surviving wait (the property tests construct such
    a failure).

    This version only trusts orderings every legal schedule must
    respect: the data and memory arcs of the data-flow graph.  A wait
    [w] with distance [d] is redundant iff there is a chain of other
    waits [k1 ... km] with distances summing exactly to [d] such that

    - the source event of [w]'s signal reaches [k1]'s source event
      through data/memory arcs (so [k1]'s send fires after it),
    - each [ki]'s sink instruction reaches [k(i+1)]'s source event, and
    - [km]'s sink instruction reaches [w]'s sink instruction

    (reachability is reflexive).  Removed waits are never used to
    justify later removals. *)

(** [redundant_waits g] — wait ids of [g.prog] whose [Wait] (and, when
    it becomes orphaned, the matching [Send]) can be dropped.  [g] must
    be built over the fully synchronized program; its sync-condition
    arcs are ignored for the reachability test. *)
val redundant_waits : Dfg.t -> int list
