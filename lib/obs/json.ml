let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let quote s = "\"" ^ escape s ^ "\""

(* --- a small JSON value type with a strict parser --- *)

type value =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of value list
  | Obj of (string * value) list

exception Malformed of string * int

let parse_exn (s : string) =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Malformed (msg, !pos)) in
  let peek () = if !pos >= n then fail "unexpected end of input" else s.[!pos] in
  let advance () = incr pos in
  let rec skip_ws () =
    if !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) then begin
      advance ();
      skip_ws ()
    end
  in
  let expect c =
    if peek () <> c then fail (Printf.sprintf "expected '%c'" c) else advance ()
  in
  let parse_lit lit v =
    String.iter (fun c -> if peek () <> c then fail ("bad literal " ^ lit) else advance ()) lit;
    v
  in
  let hex_digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail "bad \\u escape"
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (match peek () with
        | '"' -> Buffer.add_char b '"'; advance ()
        | '\\' -> Buffer.add_char b '\\'; advance ()
        | '/' -> Buffer.add_char b '/'; advance ()
        | 'b' -> Buffer.add_char b '\b'; advance ()
        | 'f' -> Buffer.add_char b '\012'; advance ()
        | 'n' -> Buffer.add_char b '\n'; advance ()
        | 'r' -> Buffer.add_char b '\r'; advance ()
        | 't' -> Buffer.add_char b '\t'; advance ()
        | 'u' ->
          advance ();
          let cp = ref 0 in
          for _ = 1 to 4 do
            cp := (!cp * 16) + hex_digit (peek ());
            advance ()
          done;
          (* UTF-8 encode the BMP code point (surrogate pairs are left as
             two separately-encoded halves; our own emitter never
             produces them). *)
          let cp = !cp in
          if cp < 0x80 then Buffer.add_char b (Char.chr cp)
          else if cp < 0x800 then begin
            Buffer.add_char b (Char.chr (0xc0 lor (cp lsr 6)));
            Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3f)))
          end
          else begin
            Buffer.add_char b (Char.chr (0xe0 lor (cp lsr 12)));
            Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
            Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3f)))
          end
        | _ -> fail "bad escape");
        go ()
      | c when Char.code c < 0x20 -> fail "raw control character in string"
      | c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    if peek () = '-' then advance ();
    while
      !pos < n && match s.[!pos] with '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true | _ -> false
    do
      advance ()
    done;
    if !pos = start then fail "bad number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
      advance ();
      skip_ws ();
      if peek () = '}' then begin
        advance ();
        Obj []
      end
      else
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' ->
            advance ();
            members ((k, v) :: acc)
          | '}' ->
            advance ();
            Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
    | '[' ->
      advance ();
      skip_ws ();
      if peek () = ']' then begin
        advance ();
        Arr []
      end
      else
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' ->
            advance ();
            elements (v :: acc)
          | ']' ->
            advance ();
            Arr (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elements []
    | '"' -> Str (parse_string ())
    | 't' -> parse_lit "true" (Bool true)
    | 'f' -> parse_lit "false" (Bool false)
    | 'n' -> parse_lit "null" Null
    | _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse s =
  match parse_exn s with
  | v -> Ok v
  | exception Malformed (msg, pos) -> Error (Printf.sprintf "%s at offset %d" msg pos)

(* Printing goes through one shared [Buffer] pass.  Integral doubles
   below 2^53 print through [string_of_int] — an order of magnitude
   cheaper than interpreting a [Printf] format per number, and almost
   everything this repo serializes (counters, rows, times) is an
   integer.  The output is byte-identical to the old
   [Printf "%.0f"/"%.12g"] rendering, which the serving protocol's
   round-trip property relies on. *)
let add_number b f =
  if Float.is_integer f && Float.abs f < 1e15 then
    if f = 0. && 1. /. f < 0. then Buffer.add_string b "-0"
    else Buffer.add_string b (string_of_int (int_of_float f))
  else Buffer.add_string b (Printf.sprintf "%.12g" f)

let add_quote b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let rec add_value b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Num f -> add_number b f
  | Str s -> add_quote b s
  | Arr vs ->
    Buffer.add_char b '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_string b ", ";
        add_value b v)
      vs;
    Buffer.add_char b ']'
  | Obj kvs ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string b ", ";
        add_quote b k;
        Buffer.add_string b ": ";
        add_value b v)
      kvs;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  add_value b v;
  Buffer.contents b

(* --- accessors --- *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let to_float = function Num f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_list = function Arr vs -> Some vs | _ -> None
let to_obj = function Obj kvs -> Some kvs | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
