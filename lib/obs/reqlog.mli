(** Bounded ring of per-request stage traces for the serving path.

    Every request the daemon answers over a socket gets one {!entry}: a
    monotonically increasing request id, a wall-clock start, a
    per-stage duration vector (the seven stages of the serve path, in
    {!stage} order), the schedule-cache verdict and the request's
    scheduling coordinates.  The newest [capacity] entries are retained
    lock-free — writers claim a slot with one fetch-and-add and publish
    the immutable entry with one atomic store, so the ring never blocks
    the request path and never loses or duplicates an id within its
    window (the 8-domain hammer test pins this).

    Entries whose [total_ns] is at or above the slow threshold
    ({!set_slow_threshold_ns}, the daemon's [--slow-ms]) are {e also}
    retained in a separate slow-log ring, so one pathological request
    survives long after the main ring has churned past it.

    Recording is gated on {!Counters.enabled}: with counters off the
    whole record path is one atomic read (the same inertness contract
    as provenance and spans, pinned by a test).

    The store is process-global, like {!Span}, {!Counters} and
    {!Provenance}; {!reset} isolates tests. *)

type cache_verdict =
  | Hit  (** every loop of the request came from the schedule cache *)
  | Miss  (** at least one loop was computed fresh *)
  | Coalesced
      (** no fresh compute, but at least one loop waited on another
          request's in-flight compute *)
  | Uncached  (** no cache involved (ping, stats, metrics, errors) *)

val verdict_name : cache_verdict -> string

type stage = Read | Decode | Cache_probe | Compute | Validate | Encode | Write

val n_stages : int
val stage_index : stage -> int

(** [stage_name s] — the JSON member name: [read], [decode],
    [cache_probe], [compute], [validate], [encode], [write]. *)
val stage_name : stage -> string

type entry = {
  id : int;  (** the daemon's monotonically increasing request id *)
  start_ns : int;  (** Unix epoch, nanoseconds, at frame completion *)
  stage_ns : int array;  (** length {!n_stages}, {!stage_index} order *)
  total_ns : int;
      (** decode through socket write; the frame-read stage is excluded
          because on an idle keep-alive connection it is dominated by
          waiting for the client *)
  verdict : cache_verdict;
  digest : int;  (** structural digest of the first loop; 0 when none *)
  scheduler : string;  (** [list] / [marker] / [new]; [""] when none *)
  sync_elim : bool;
  error : string option;  (** the structured error code, when any *)
}

(** [record e] — append to the ring (and to the slow-log when
    [e.total_ns] is at or above the threshold); a no-op but for one
    atomic read when {!Counters.enabled} is false. *)
val record : entry -> unit

(** [recorded ()] — total entries accepted since the last {!reset}. *)
val recorded : unit -> int

(** [recent ?limit ()] — the retained entries, newest first (at most
    [limit], default the whole ring). *)
val recent : ?limit:int -> unit -> entry list

(** [slow ?limit ()] — the retained slow entries, newest first. *)
val slow : ?limit:int -> unit -> entry list

(** [set_capacity n] / [set_slow_capacity n] — resize (and clear) the
    rings; defaults 1024 and 64.  Raise [Invalid_argument] when
    [n < 1]. *)

val set_capacity : int -> unit
val set_slow_capacity : int -> unit

(** [set_slow_threshold_ns n] — entries at or above [n] are promoted to
    the slow-log (default 100 ms). *)
val set_slow_threshold_ns : int -> unit

val slow_threshold_ns : unit -> int

(** [reset ()] clears both rings and the accepted count (capacities and
    threshold stand). *)
val reset : unit -> unit

(** [entry_value e] / [entry_json e] — the JSON rendering documented in
    doc/observability.md: scalar members plus a ["stages"] object keyed
    by {!stage_name}; ["error"] omitted when [None].  The start time is
    exposed as ["start_ms"] (epoch milliseconds) because epoch
    nanoseconds exceed the float-exact integer range. *)

val entry_value : entry -> Json.value
val entry_json : entry -> string
