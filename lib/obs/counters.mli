(** Process-wide registry of monotonic counters and value distributions.

    Instrumentation sites hoist a handle once at module initialisation
    ([let c = Counters.counter "resource.first_fit.probes"]) and then
    update it with plain atomic operations — no table lookup, no lock on
    the hot path, safe from any domain.  Collection is on by default
    (an update is one or two [Atomic] operations) and can be switched
    off entirely with {!set_enabled} to measure the floor.

    Naming convention mirrors spans: [<subsystem>.<metric>], e.g.
    [pipeline.memo.hit], [timing.extrapolated], [pool.queue_depth]
    (see doc/observability.md for the full schema). *)

type counter
type dist

(** [counter name] — find or register the monotonic counter [name].
    Raises [Invalid_argument] if [name] is registered as a distribution. *)
val counter : string -> counter

(** [dist name] — find or register the distribution [name].  Raises
    [Invalid_argument] if [name] is registered as a counter. *)
val dist : string -> dist

val incr : counter -> unit
val add : counter -> int -> unit

(** [value c] — current value of [c]. *)
val value : counter -> int

(** [observe d v] records one sample.  Distributions keep count, sum,
    min, max and a fixed histogram: one bucket per exact value in
    [0..63], one for negatives, one for [>= 64]. *)
val observe : dist -> int -> unit

type dist_stats = {
  count : int;
  sum : int;
  min_v : int;  (** meaningless when [count = 0] *)
  max_v : int;  (** meaningless when [count = 0] *)
  buckets : (int * int) list;
      (** non-empty buckets as [(representative, count)]: [-1] stands
          for "any negative value", [64] for "any value >= 64", other
          representatives are the exact sample value *)
}

val dist_stats : dist -> dist_stats

type entry = Counter of int | Dist of dist_stats

(** [snapshot ()] — every registered metric, sorted by name. *)
val snapshot : unit -> (string * entry) list

(** [find name] — look a metric up by name. *)
val find : string -> entry option

(** [reset ()] zeroes every metric; existing handles remain valid. *)
val reset : unit -> unit

(** [reset_counter c] zeroes one counter (e.g. for scoped measurements). *)
val reset_counter : counter -> unit

(** [set_enabled b] — when off, {!incr}/{!add}/{!observe} are no-ops. *)
val set_enabled : bool -> unit

val enabled : unit -> bool

(** [render ()] — human-readable dump of {!snapshot}, one metric per
    line, for the [--counters] CLI flags. *)
val render : unit -> string

(** [prometheus_name name] — [name] mangled to a valid Prometheus
    metric name: an [isched_] prefix, then every byte outside
    [a-zA-Z0-9] mapped to ['_'] (so [serve.cache.hits] becomes
    [isched_serve_cache_hits]). *)
val prometheus_name : string -> string

(** [render_prometheus ()] — {!snapshot} in the Prometheus text
    exposition format: counters as [# TYPE … counter] singles,
    distributions as [# TYPE … histogram] with cumulative
    [_bucket{le="…"}] lines built from the fixed bucket scheme
    (negatives under [le="-1"], exact values [0..63], the [>= 64]
    overflow only in [+Inf]), plus [_sum] and [_count].  Deterministic:
    entries come out byte-lexicographically sorted by name. *)
val render_prometheus : unit -> string

(** [to_json ()] — {!snapshot} as one JSON object: counters as numbers,
    distributions as [{"count","sum","min","max","buckets"}] objects,
    where ["buckets"] lists the non-empty histogram buckets as
    [[representative, count]] pairs (the representative convention of
    {!dist_stats}).  Metric names are escaped, so the output is valid
    JSON whatever characters a name contains. *)
val to_json : unit -> string
