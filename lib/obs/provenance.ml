type rejection = { at_cycle : int; reason : string }
type binding = { pred : int; latency : int; arc : string }

type decision = {
  seq : int;
  scheduler : string;
  prog : string;
  instr : int;
  cycle : int;
  ready : int;
  candidates : int;
  priority : int;
  rejections : rejection list;
  binding : binding option;
}

(* Recording is off by default and the hot-path guard is one atomic
   read, exactly like [Span]: schedulers check [enabled ()] once per run
   and skip every bit of bookkeeping (candidate counting, rejection
   reasons, binding-arc attribution) when it is off, so the permanent
   instrumentation is free in production runs.

   The store is a ring: the newest [capacity] decisions are retained and
   older ones are overwritten (and counted), bounding the live heap of a
   long traced run the same way the span log is bounded. *)

let enabled_flag = Atomic.make false
let lock = Mutex.create ()
let default_capacity = 1 lsl 16
let capacity = ref default_capacity
let ring : decision option array ref = ref (Array.make default_capacity None)
let total = ref 0

let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

let set_capacity n =
  if n < 1 then invalid_arg "Provenance.set_capacity: capacity must be >= 1";
  Mutex.protect lock (fun () ->
      capacity := n;
      ring := Array.make n None;
      total := 0)

let reset () =
  Mutex.protect lock (fun () ->
      Array.fill !ring 0 (Array.length !ring) None;
      total := 0)

let record ~scheduler ~prog ~instr ~cycle ~ready ~candidates ~priority ?(rejections = [])
    ?binding () =
  if Atomic.get enabled_flag then
    Mutex.protect lock (fun () ->
        let seq = !total in
        let d =
          { seq; scheduler; prog; instr; cycle; ready; candidates; priority; rejections; binding }
        in
        !ring.(seq mod !capacity) <- Some d;
        incr total)

let recorded () = Mutex.protect lock (fun () -> !total)
let overwritten () = Mutex.protect lock (fun () -> max 0 (!total - !capacity))

let decisions () =
  Mutex.protect lock (fun () ->
      let cap = !capacity and t = !total in
      let k = min cap t in
      List.init k (fun i -> Option.get !ring.((t - k + i) mod cap)))

let binding_json (b : binding) =
  Printf.sprintf "{ \"pred\": %d, \"latency\": %d, \"arc\": %s }" b.pred b.latency (Json.quote b.arc)

let rejection_json (r : rejection) =
  Printf.sprintf "{ \"at_cycle\": %d, \"reason\": %s }" r.at_cycle (Json.quote r.reason)

let decision_json (d : decision) =
  Printf.sprintf
    "{ \"seq\": %d, \"scheduler\": %s, \"prog\": %s, \"instr\": %d, \"cycle\": %d, \"ready\": \
     %d, \"candidates\": %d, \"priority\": %d, \"rejections\": [%s], \"binding\": %s }"
    d.seq (Json.quote d.scheduler) (Json.quote d.prog) d.instr d.cycle d.ready d.candidates
    d.priority
    (String.concat ", " (List.map rejection_json d.rejections))
    (match d.binding with None -> "null" | Some b -> binding_json b)

let pp_decision ppf (d : decision) =
  Format.fprintf ppf "[%s #%d] instr %d -> cycle %d (ready %d, prio %d, %d candidate(s)%s)"
    d.scheduler d.seq (d.instr + 1) (d.cycle + 1) (d.ready + 1) d.priority d.candidates
    (match d.rejections with
    | [] -> ""
    | rs -> Printf.sprintf ", %d rejection(s)" (List.length rs));
  match d.binding with
  | None -> ()
  | Some b ->
    if b.pred >= 0 then
      Format.fprintf ppf "; bound by %s arc from instr %d (lat %d)" b.arc (b.pred + 1) b.latency
    else Format.fprintf ppf "; bound by %s constraint" b.arc
