(** Structured tracing: nested timed spans with a Chrome/Perfetto
    [trace_event] JSON exporter.

    Tracing is off by default and {!with_} then degrades to calling the
    thunk directly (one atomic read of overhead), so instrumentation can
    stay in the hot path permanently.  When enabled, every span records
    its wall-clock interval and the domain it ran on; spans emitted
    concurrently from {!Isched_util.Pool} workers land in per-domain
    lanes ([tid] = domain id) and nest by time containment, which is
    exactly how Perfetto renders "X" (complete) events.

    Span naming convention (see doc/observability.md):
    [<subsystem>.<operation>], e.g. [pipeline.prepare], [sched.list],
    [pool.task], [sim.timing]. *)

type event = {
  name : string;
  args : (string * string) list;
  ts_us : float;  (** start, microseconds since the trace epoch *)
  dur_us : float;  (** duration in microseconds *)
  tid : int;  (** id of the domain the span ran on *)
}

(** [set_enabled b] turns recording on or off process-wide.  The first
    enable fixes the trace epoch. *)
val set_enabled : bool -> unit

val enabled : unit -> bool

(** [with_ ~name ?args f] runs [f ()]; when tracing is enabled the
    interval is recorded as a span (also on exceptions).  Safe to call
    from any domain. *)
val with_ : name:string -> ?args:(string * string) list -> (unit -> 'a) -> 'a

(** [reset ()] drops every recorded event (the epoch is kept). *)
val reset : unit -> unit

(** [events ()] — the recorded spans, in completion order. *)
val events : unit -> event list

(** [export_json ()] — the trace as a Chrome [trace_event] JSON object
    ({["{\"traceEvents\": [...]}"]}), loadable in Perfetto / chrome://tracing.
    Includes [thread_name] metadata so each domain shows as its own lane. *)
val export_json : unit -> string

(** [write_file path] — {!export_json} to [path]. *)
val write_file : string -> unit
