(** Structured tracing: nested timed spans with a Chrome/Perfetto
    [trace_event] JSON exporter.

    Tracing is off by default and {!with_} then degrades to calling the
    thunk directly (one atomic read of overhead), so instrumentation can
    stay in the hot path permanently.  When enabled, every span records
    its wall-clock interval and the domain it ran on; spans emitted
    concurrently from {!Isched_util.Pool} workers land in per-domain
    lanes ([tid] = domain id) and nest by time containment, which is
    exactly how Perfetto renders "X" (complete) events.

    Span naming convention (see doc/observability.md):
    [<subsystem>.<operation>], e.g. [pipeline.prepare], [sched.list],
    [pool.task], [sim.timing]. *)

type event = {
  name : string;
  args : (string * string) list;
  ts_us : float;  (** start, microseconds since the trace epoch *)
  dur_us : float;  (** duration in microseconds *)
  tid : int;  (** id of the domain the span ran on *)
}

(** [set_enabled b] turns recording on or off process-wide.  The first
    enable fixes the trace epoch. *)
val set_enabled : bool -> unit

val enabled : unit -> bool

(** [with_ ~name ?args f] runs [f ()]; when tracing is enabled the
    interval is recorded as a span (also on exceptions).  Safe to call
    from any domain. *)
val with_ : name:string -> ?args:(string * string) list -> (unit -> 'a) -> 'a

(** [reset ()] drops every recorded event, clears the dropped-event
    count and restarts the trace epoch: spans recorded after a reset are
    measured from the reset point, not from the first enable of the
    process. *)
val reset : unit -> unit

(** [events ()] — the recorded spans, in completion order.

    The log is bounded (default one million events, see
    {!set_capacity}): once full, further spans still run their thunks
    normally but are dropped from the log and counted by
    {!dropped_events}, so a long-lived traced process cannot grow the
    log without limit. *)
val events : unit -> event list

(** [dropped_events ()] — spans dropped since the last {!reset} because
    the log was at capacity. *)
val dropped_events : unit -> int

(** [set_capacity n] bounds the event log at [n] events.  Raises
    [Invalid_argument] on [n < 1]. *)
val set_capacity : int -> unit

(** [export_json ()] — the trace as a Chrome [trace_event] JSON object
    ({["{\"traceEvents\": [...]}"]}), loadable in Perfetto / chrome://tracing.
    Includes [thread_name] metadata so each domain shows as its own lane. *)
val export_json : unit -> string

(** [write_file path] — {!export_json} to [path]. *)
val write_file : string -> unit
