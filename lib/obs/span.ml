type event = {
  name : string;
  args : (string * string) list;
  ts_us : float;
  dur_us : float;
  tid : int;
}

let enabled_flag = Atomic.make false
let lock = Mutex.create ()

(* Completion-ordered event log and the trace epoch, both under [lock];
   [epoch] is written once (first enable) and read without the lock on
   the hot path — a benign race, since enabling happens-before any span
   that observes [enabled_flag]. *)
let log : event list ref = ref []
let epoch = ref 0.0

let set_enabled b =
  Mutex.protect lock (fun () -> if b && !epoch = 0.0 then epoch := Unix.gettimeofday ());
  Atomic.set enabled_flag b

let enabled () = Atomic.get enabled_flag

let record ev = Mutex.protect lock (fun () -> log := ev :: !log)

let with_ ~name ?(args = []) f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let t0 = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () ->
        let t1 = Unix.gettimeofday () in
        record
          {
            name;
            args;
            ts_us = (t0 -. !epoch) *. 1e6;
            dur_us = (t1 -. t0) *. 1e6;
            tid = (Domain.self () :> int);
          })
      f
  end

let reset () = Mutex.protect lock (fun () -> log := [])
let events () = Mutex.protect lock (fun () -> List.rev !log)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let export_json () =
  let evs = events () in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  let first = ref true in
  let emit s =
    if !first then first := false else Buffer.add_string b ",";
    Buffer.add_string b "\n  ";
    Buffer.add_string b s
  in
  (* One thread_name metadata event per domain seen, so Perfetto labels
     the lanes. *)
  let tids = List.sort_uniq compare (List.map (fun e -> e.tid) evs) in
  List.iter
    (fun tid ->
      emit
        (Printf.sprintf
           "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": %d, \"args\": \
            {\"name\": \"domain-%d\"}}"
           tid tid))
    tids;
  List.iter
    (fun e ->
      let args =
        e.args
        |> List.map (fun (k, v) -> Printf.sprintf "\"%s\": \"%s\"" (json_escape k) (json_escape v))
        |> String.concat ", "
      in
      emit
        (Printf.sprintf
           "{\"name\": \"%s\", \"cat\": \"isched\", \"ph\": \"X\", \"pid\": 1, \"tid\": %d, \
            \"ts\": %.3f, \"dur\": %.3f, \"args\": {%s}}"
           (json_escape e.name) e.tid e.ts_us e.dur_us args))
    evs;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

let write_file path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (export_json ()))
