type event = {
  name : string;
  args : (string * string) list;
  ts_us : float;
  dur_us : float;
  tid : int;
}

let enabled_flag = Atomic.make false
let lock = Mutex.create ()

(* Completion-ordered event log and the trace epoch, both under [lock];
   [epoch] is written on enable (and on reset) and read without the lock
   on the hot path — a benign race, since enabling happens-before any
   span that observes [enabled_flag].  The log is bounded: once
   [capacity] events are held, further events are dropped and counted
   instead of growing the live heap of a long-lived process without
   limit. *)
let log : event list ref = ref []
let epoch = ref 0.0
let n_events = ref 0
let n_dropped = ref 0
let default_capacity = 1 lsl 20
let capacity = ref default_capacity

let set_capacity n =
  if n < 1 then invalid_arg "Span.set_capacity: capacity must be >= 1";
  Mutex.protect lock (fun () -> capacity := n)

let set_enabled b =
  Mutex.protect lock (fun () -> if b && !epoch = 0.0 then epoch := Unix.gettimeofday ());
  Atomic.set enabled_flag b

let enabled () = Atomic.get enabled_flag

let record ev =
  Mutex.protect lock (fun () ->
      if !n_events >= !capacity then incr n_dropped
      else begin
        log := ev :: !log;
        incr n_events
      end)

let with_ ~name ?(args = []) f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let t0 = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () ->
        let t1 = Unix.gettimeofday () in
        record
          {
            name;
            args;
            ts_us = (t0 -. !epoch) *. 1e6;
            dur_us = (t1 -. t0) *. 1e6;
            tid = (Domain.self () :> int);
          })
      f
  end

(* A reset restarts the trace: the epoch moves with the log, so spans
   recorded afterwards are measured from the reset (not from the first
   enable of the process, which could be arbitrarily far in the past). *)
let reset () =
  let now = if Atomic.get enabled_flag then Unix.gettimeofday () else 0.0 in
  Mutex.protect lock (fun () ->
      log := [];
      n_events := 0;
      n_dropped := 0;
      epoch := now)

let events () = Mutex.protect lock (fun () -> List.rev !log)
let dropped_events () = Mutex.protect lock (fun () -> !n_dropped)

let export_json () =
  let evs = events () in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  let first = ref true in
  let emit s =
    if !first then first := false else Buffer.add_string b ",";
    Buffer.add_string b "\n  ";
    Buffer.add_string b s
  in
  (* One thread_name metadata event per domain seen, so Perfetto labels
     the lanes. *)
  let tids = List.sort_uniq compare (List.map (fun e -> e.tid) evs) in
  List.iter
    (fun tid ->
      emit
        (Printf.sprintf
           "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": %d, \"args\": \
            {\"name\": \"domain-%d\"}}"
           tid tid))
    tids;
  List.iter
    (fun e ->
      let args =
        e.args
        |> List.map (fun (k, v) -> Printf.sprintf "%s: %s" (Json.quote k) (Json.quote v))
        |> String.concat ", "
      in
      emit
        (Printf.sprintf
           "{\"name\": %s, \"cat\": \"isched\", \"ph\": \"X\", \"pid\": 1, \"tid\": %d, \
            \"ts\": %.3f, \"dur\": %.3f, \"args\": {%s}}"
           (Json.quote e.name) e.tid e.ts_us e.dur_us args))
    evs;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

let write_file path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (export_json ()))
