(** Decision provenance: a bounded ring of structured scheduling
    decisions, one per instruction placement, emitted by every scheduler
    in [lib/core] (list, marker-guided, new/sync-aware, modulo).

    Where {!Span} answers "how long did scheduling take" and
    {!Counters} "how often did the fast path engage", this layer answers
    {e why an instruction landed where it did}: the cycle its operands
    were ready, the size of the candidate set it was drawn from, its
    priority key, every resource slot it was refused (with the refusing
    resource), and the binding constraint — the dependence arc or
    synchronization condition ([Src -> Sig] / [Wat -> Snk]) that fixed
    its earliest cycle.  The paper's LBD cost [(n/d)(i-j) + l] is
    decided instruction-by-instruction, so this is the record a schedule
    explainer needs to attribute each pair's [i] and [j] to a cause.

    Recording is {b off by default}; when off, an instrumented scheduler
    pays one atomic read per run and skips all bookkeeping, so schedules
    are byte-identical with recording on and off (pinned by the property
    suite).  Safe from any domain: recording takes a mutex, which is
    acceptable because it only happens when explicitly enabled. *)

(** One refused placement probe: the cycle tried and the resource that
    refused it (e.g. ["issue width full (4/4)"], ["mul busy (1/1)"]). *)
type rejection = { at_cycle : int; reason : string }

(** The constraint that fixed the decision's earliest cycle.  [pred] is
    the body index of the constraining instruction ([-1] when the
    constraint is not another instruction); [arc] names the constraint
    kind: ["data"], ["mem"], ["sync-src"], ["sync-snk"] (data-flow-graph
    arcs), ["sync-order"] (a forced send-before-wait ordering),
    ["sync-path"] (contiguity of a synchronization path), ["release"]
    (a marker release cycle). *)
type binding = { pred : int; latency : int; arc : string }

type decision = {
  seq : int;  (** monotonic sequence number across the process *)
  scheduler : string;  (** ["list"], ["marker"], ["new"], ["modulo"] *)
  prog : string;  (** program name the placement belongs to *)
  instr : int;  (** body index (0-based) of the placed instruction *)
  cycle : int;  (** final issue cycle chosen (0-based) *)
  ready : int;  (** earliest cycle the operands allowed *)
  candidates : int;  (** size of the candidate set it was drawn from *)
  priority : int;  (** priority key in force at the decision *)
  rejections : rejection list;  (** refused probes, earliest first *)
  binding : binding option;  (** what fixed the earliest cycle, if known *)
}

(** [set_enabled b] turns recording on or off process-wide. *)
val set_enabled : bool -> unit

val enabled : unit -> bool

(** [record ~scheduler ~prog ~instr ~cycle ~ready ~candidates ~priority
    ?rejections ?binding ()] appends one decision.  No-op when recording
    is disabled. *)
val record :
  scheduler:string ->
  prog:string ->
  instr:int ->
  cycle:int ->
  ready:int ->
  candidates:int ->
  priority:int ->
  ?rejections:rejection list ->
  ?binding:binding ->
  unit ->
  unit

(** [decisions ()] — the retained decisions, oldest first ([seq]
    ascending).  At most {!set_capacity} entries are retained; older
    ones are overwritten and counted by {!overwritten}. *)
val decisions : unit -> decision list

(** [recorded ()] — decisions recorded since the last {!reset},
    including overwritten ones. *)
val recorded : unit -> int

(** [overwritten ()] — decisions lost to the ring bound. *)
val overwritten : unit -> int

(** [set_capacity n] re-sizes the ring (dropping its contents).  Raises
    [Invalid_argument] on [n < 1].  Default: 65536 decisions. *)
val set_capacity : int -> unit

(** [reset ()] drops every retained decision and restarts [seq]. *)
val reset : unit -> unit

(** [decision_json d] — one decision as a JSON object (schema in
    doc/observability.md). *)
val decision_json : decision -> string

(** [pp_decision ppf d] — one-line human rendering, 1-based instruction
    numbers and cycles like the paper's figures. *)
val pp_decision : Format.formatter -> decision -> unit
