(* Hot-path updates land in one of [n_shards] per-domain cells instead
   of a single process-wide atomic: scheduler inner loops, first_fit
   probes and pool accounting run on every domain at once, and a single
   shared cell ping-pongs its cache line between cores on every update.
   A domain picks its shard from its domain id, so with a persistent
   pool each worker keeps hitting the same (locally cached) cell; the
   fetch-and-add stays, making a rare id collision between two live
   domains safe.  Readers sum the shards, so [value]/[snapshot]/
   [to_json] are observably identical to the unsharded registry. *)

let n_shards = 8 (* power of two; comfortably >= the pool widths used *)
let shard_index () = (Domain.self () :> int) land (n_shards - 1)

(* Consecutive [Atomic.make] allocations sit next to each other in the
   minor heap, which would put several shards on one cache line and
   bring the false sharing right back.  Interleaving a dead ~64-byte
   block between the cells keeps them apart (and the blocks are garbage
   after allocation, so the cost is a little allocator work at registry
   time). *)
let padded_cells n v =
  Array.init n (fun _ ->
      let cell = Atomic.make v in
      ignore (Sys.opaque_identity (Array.make 8 0));
      cell)

type counter = int Atomic.t array (* length n_shards *)

type dist_shard = {
  count : int Atomic.t;
  sum : int Atomic.t;
  mn : int Atomic.t;
  mx : int Atomic.t;
  (* Slot 0 counts negative samples, slots 1..64 the exact values 0..63,
     slot 65 everything >= 64. *)
  buckets : int Atomic.t array;
}

type dist = dist_shard array (* length n_shards *)

let n_buckets = 66
let bucket_index v = if v < 0 then 0 else if v >= 64 then n_buckets - 1 else v + 1
let bucket_repr i = if i = 0 then -1 else if i = n_buckets - 1 then 64 else i - 1

type item = C of counter | D of dist

(* The registry lock guards only registration, snapshot and reset;
   updates go straight to the atomics inside the handles. *)
let lock = Mutex.create ()
let registry : (string, item) Hashtbl.t = Hashtbl.create 32
let enabled_flag = Atomic.make true

let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

let counter name =
  Mutex.protect lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (C c) -> c
      | Some (D _) -> invalid_arg (Printf.sprintf "Counters.counter: %s is a distribution" name)
      | None ->
        let c = padded_cells n_shards 0 in
        Hashtbl.add registry name (C c);
        c)

let fresh_dist_shard () =
  {
    count = Atomic.make 0;
    sum = Atomic.make 0;
    mn = Atomic.make max_int;
    mx = Atomic.make min_int;
    buckets = Array.init n_buckets (fun _ -> Atomic.make 0);
  }

(* One dist shard is a handful of adjacent atomics, but they are all
   written by the same domain, so only the shard boundaries need the
   padding treatment. *)
let fresh_dist () =
  Array.init n_shards (fun _ ->
      let s = fresh_dist_shard () in
      ignore (Sys.opaque_identity (Array.make 8 0));
      s)

let dist name =
  Mutex.protect lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (D d) -> d
      | Some (C _) -> invalid_arg (Printf.sprintf "Counters.dist: %s is a counter" name)
      | None ->
        let d = fresh_dist () in
        Hashtbl.add registry name (D d);
        d)

let add (c : counter) n =
  if Atomic.get enabled_flag then ignore (Atomic.fetch_and_add c.(shard_index ()) n)

let incr c = add c 1
let value (c : counter) = Array.fold_left (fun acc cell -> acc + Atomic.get cell) 0 c

let rec atomic_min a v =
  let cur = Atomic.get a in
  if v < cur && not (Atomic.compare_and_set a cur v) then atomic_min a v

let rec atomic_max a v =
  let cur = Atomic.get a in
  if v > cur && not (Atomic.compare_and_set a cur v) then atomic_max a v

let observe (d : dist) v =
  if Atomic.get enabled_flag then begin
    let s = d.(shard_index ()) in
    Atomic.incr s.count;
    ignore (Atomic.fetch_and_add s.sum v);
    atomic_min s.mn v;
    atomic_max s.mx v;
    Atomic.incr s.buckets.(bucket_index v)
  end

type dist_stats = {
  count : int;
  sum : int;
  min_v : int;
  max_v : int;
  buckets : (int * int) list;
}

let dist_stats (d : dist) =
  let buckets = ref [] in
  for i = n_buckets - 1 downto 0 do
    let c = Array.fold_left (fun acc (s : dist_shard) -> acc + Atomic.get s.buckets.(i)) 0 d in
    if c > 0 then buckets := (bucket_repr i, c) :: !buckets
  done;
  (* Empty shards carry the [max_int]/[min_int] sentinels, which the
     min/max merge ignores by construction. *)
  {
    count = Array.fold_left (fun acc (s : dist_shard) -> acc + Atomic.get s.count) 0 d;
    sum = Array.fold_left (fun acc (s : dist_shard) -> acc + Atomic.get s.sum) 0 d;
    min_v = Array.fold_left (fun acc (s : dist_shard) -> min acc (Atomic.get s.mn)) max_int d;
    max_v = Array.fold_left (fun acc (s : dist_shard) -> max acc (Atomic.get s.mx)) min_int d;
    buckets = !buckets;
  }

type entry = Counter of int | Dist of dist_stats

let entry_of = function C c -> Counter (value c) | D d -> Dist (dist_stats d)

let snapshot () =
  Mutex.protect lock (fun () ->
      Hashtbl.fold (fun name item acc -> (name, entry_of item) :: acc) registry [])
  (* Byte-lexicographic explicitly: renders and the Prometheus
     exposition must be deterministic however the 8-way shard merge
     interleaves registrations. *)
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let find name =
  Mutex.protect lock (fun () -> Hashtbl.find_opt registry name) |> Option.map entry_of

let reset_item = function
  | C c -> Array.iter (fun cell -> Atomic.set cell 0) c
  | D d ->
    Array.iter
      (fun (s : dist_shard) ->
        Atomic.set s.count 0;
        Atomic.set s.sum 0;
        Atomic.set s.mn max_int;
        Atomic.set s.mx min_int;
        Array.iter (fun b -> Atomic.set b 0) s.buckets)
      d

let reset () = Mutex.protect lock (fun () -> Hashtbl.iter (fun _ item -> reset_item item) registry)
let reset_counter (c : counter) = Array.iter (fun cell -> Atomic.set cell 0) c

let render () =
  let b = Buffer.create 1024 in
  List.iter
    (fun (name, e) ->
      match e with
      | Counter v -> Buffer.add_string b (Printf.sprintf "%-40s %d\n" name v)
      | Dist s ->
        if s.count = 0 then Buffer.add_string b (Printf.sprintf "%-40s count=0\n" name)
        else
          Buffer.add_string b
            (Printf.sprintf "%-40s count=%d sum=%d min=%d max=%d mean=%.2f\n" name s.count s.sum
               s.min_v s.max_v
               (float_of_int s.sum /. float_of_int s.count)))
    (snapshot ());
  Buffer.contents b

(* Prometheus metric names admit [a-zA-Z0-9_:]; we map every other
   byte of the dotted internal name to '_' under an "isched_" prefix,
   e.g. [serve.cache.hits] -> [isched_serve_cache_hits] (the full table
   lives in doc/observability.md). *)
let prometheus_name name =
  let b = Buffer.create (String.length name + 8) in
  Buffer.add_string b "isched_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    name;
  Buffer.contents b

let render_prometheus () =
  let b = Buffer.create 2048 in
  List.iter
    (fun (name, e) ->
      let m = prometheus_name name in
      match e with
      | Counter v -> Printf.bprintf b "# TYPE %s counter\n%s %d\n" m m v
      | Dist s ->
        Printf.bprintf b "# TYPE %s histogram\n" m;
        let cum = ref 0 in
        List.iter
          (fun (repr, c) ->
            (* repr 64 is the open-ended >= 64 bucket: it has no finite
               upper bound, so it only contributes to +Inf. *)
            if repr < 64 then begin
              cum := !cum + c;
              Printf.bprintf b "%s_bucket{le=\"%d\"} %d\n" m repr !cum
            end)
          s.buckets;
        (* Concurrent updates can leave the snapshot's count a hair off
           the bucket sum; clamp so the +Inf bucket stays monotone. *)
        Printf.bprintf b "%s_bucket{le=\"+Inf\"} %d\n" m (max !cum s.count);
        Printf.bprintf b "%s_sum %d\n" m s.sum;
        Printf.bprintf b "%s_count %d\n" m (max !cum s.count))
    (snapshot ());
  Buffer.contents b

let to_json () =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{";
  List.iteri
    (fun i (name, e) ->
      if i > 0 then Buffer.add_string b ",";
      Buffer.add_string b (Printf.sprintf " %s: " (Json.quote name));
      match e with
      | Counter v -> Buffer.add_string b (string_of_int v)
      | Dist s ->
        let mn = if s.count = 0 then 0 else s.min_v in
        let mx = if s.count = 0 then 0 else s.max_v in
        let buckets =
          s.buckets
          |> List.map (fun (repr, c) -> Printf.sprintf "[%d, %d]" repr c)
          |> String.concat ", "
        in
        Buffer.add_string b
          (Printf.sprintf
             "{ \"count\": %d, \"sum\": %d, \"min\": %d, \"max\": %d, \"buckets\": [%s] }" s.count
             s.sum mn mx buckets))
    (snapshot ());
  Buffer.add_string b " }";
  Buffer.contents b
