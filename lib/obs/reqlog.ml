type cache_verdict = Hit | Miss | Coalesced | Uncached

let verdict_name = function
  | Hit -> "hit"
  | Miss -> "miss"
  | Coalesced -> "coalesced"
  | Uncached -> "uncached"

type stage = Read | Decode | Cache_probe | Compute | Validate | Encode | Write

let n_stages = 7

let stage_index = function
  | Read -> 0
  | Decode -> 1
  | Cache_probe -> 2
  | Compute -> 3
  | Validate -> 4
  | Encode -> 5
  | Write -> 6

let stage_name = function
  | Read -> "read"
  | Decode -> "decode"
  | Cache_probe -> "cache_probe"
  | Compute -> "compute"
  | Validate -> "validate"
  | Encode -> "encode"
  | Write -> "write"

let all_stages = [ Read; Decode; Cache_probe; Compute; Validate; Encode; Write ]

type entry = {
  id : int;
  start_ns : int;
  stage_ns : int array;
  total_ns : int;
  verdict : cache_verdict;
  digest : int;
  scheduler : string;
  sync_elim : bool;
  error : string option;
}

(* A ring is an array of independently published slots plus a claim
   cursor.  A writer claims a position with one fetch-and-add and then
   stores the (immutable) entry into its slot — two slots never alias
   for concurrent writers within a lap, so entries are never torn and
   distinct ids never merge.  A reader may observe the previous lap's
   entry in a slot that has been claimed but not yet stored; that is a
   stale-but-consistent view, which is all a diagnostic log needs. *)
type ring = { slots : entry option Atomic.t array; cursor : int Atomic.t }

let make_ring n =
  if n < 1 then invalid_arg "Reqlog: capacity must be >= 1";
  { slots = Array.init n (fun _ -> Atomic.make None); cursor = Atomic.make 0 }

(* The outer [Atomic.t] lets [set_capacity] swap a whole fresh ring in
   one store, so writers racing a resize land in one ring or the other
   but never index out of bounds. *)
let main_ring = Atomic.make (make_ring 1024)
let slow_ring = Atomic.make (make_ring 64)
let slow_threshold = Atomic.make 100_000_000 (* 100 ms *)
let accepted = Atomic.make 0

let push cell e =
  let r = Atomic.get cell in
  let pos = Atomic.fetch_and_add r.cursor 1 in
  Atomic.set r.slots.(pos mod Array.length r.slots) (Some e)

let record e =
  if Counters.enabled () then begin
    Atomic.incr accepted;
    push main_ring e;
    if e.total_ns >= Atomic.get slow_threshold then push slow_ring e
  end

let recorded () = Atomic.get accepted

let entries cell limit =
  let r = Atomic.get cell in
  let acc = ref [] in
  Array.iter
    (fun slot -> match Atomic.get slot with Some e -> acc := e :: !acc | None -> ())
    r.slots;
  let sorted = List.sort (fun a b -> Int.compare b.id a.id) !acc in
  match limit with
  | None -> sorted
  | Some n -> List.filteri (fun i _ -> i < n) sorted

let recent ?limit () = entries main_ring limit
let slow ?limit () = entries slow_ring limit
let set_capacity n = Atomic.set main_ring (make_ring n)
let set_slow_capacity n = Atomic.set slow_ring (make_ring n)

let set_slow_threshold_ns n =
  if n < 0 then invalid_arg "Reqlog.set_slow_threshold_ns: threshold must be >= 0";
  Atomic.set slow_threshold n

let slow_threshold_ns () = Atomic.get slow_threshold

let clear cell = Atomic.set cell (make_ring (Array.length (Atomic.get cell).slots))

let reset () =
  clear main_ring;
  clear slow_ring;
  Atomic.set accepted 0

(* Epoch nanoseconds overflow the float integer range that [Json.Num]
   prints exactly, so the start time is rendered as epoch milliseconds
   (exact in a float until the year 287396). *)
let entry_value e =
  let num n = Json.Num (float_of_int n) in
  let stages =
    List.map (fun s -> (stage_name s, num e.stage_ns.(stage_index s))) all_stages
  in
  Json.Obj
    ([
       ("id", num e.id);
       ("start_ms", num (e.start_ns / 1_000_000));
       ("total_ns", num e.total_ns);
       ("verdict", Json.Str (verdict_name e.verdict));
       ("digest", num e.digest);
       ("scheduler", Json.Str e.scheduler);
       ("sync_elim", Json.Bool e.sync_elim);
       ("stages", Json.Obj stages);
     ]
    @ match e.error with None -> [] | Some c -> [ ("error", Json.Str c) ])

let entry_json e = Json.to_string (entry_value e)
