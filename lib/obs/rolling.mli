(** Fixed-bucket sliding-window latency histograms.

    A [Rolling.t] is a ring of [buckets] time buckets, each [width_ns]
    wide (default 60 × 1 s).  An observation lands in the bucket of its
    timestamp's epoch ([now_ns / width_ns]); a bucket is lazily cleared
    the first time a newer epoch maps onto it, so {!stats} always
    reflects the last [buckets × width_ns] of traffic — quantiles say
    what the service is doing {e now}, not since boot (the since-boot
    view is {!Counters}).

    Time is always supplied by the caller ([~now_ns]), never read from a
    clock inside the module, so window rotation is deterministic under
    test (inject a fake [now]) and the serving hot path pays for exactly
    one [gettimeofday] of its own choosing.

    Latencies are bucketed log-linearly: exact below 16 ns, then four
    sub-buckets per power of two, so a reported quantile overshoots the
    true value by at most 25% (it is the covering bucket's upper bound).

    Every entry point takes the instance's lock; an observation is a
    few integer increments under it, cheap enough for a request path
    serving tens of microseconds per request. *)

type t

(** [create ?buckets ?width_ns ()] — a window of [buckets] (default 60)
    buckets of [width_ns] (default 1 s) each.  Raises
    [Invalid_argument] unless both are >= 1. *)
val create : ?buckets:int -> ?width_ns:int -> unit -> t

(** [observe t ~now_ns ~latency_ns ~flagged] records one event at
    absolute time [now_ns].  [flagged] is a per-event boolean tallied
    separately — the server uses it for error responses on the request
    window and for cache misses on the cache window.  A negative
    latency clamps to 0; an observation older than the whole window is
    dropped. *)
val observe : t -> now_ns:int -> latency_ns:int -> flagged:bool -> unit

type stats = {
  count : int;  (** events in the live window *)
  flagged : int;
  rate : float;
      (** events per second, over the span actually covered: from the
          oldest live non-empty bucket's start to [now_ns] — accurate
          for a freshly started service, converging to the window
          average once the ring is warm *)
  flagged_ratio : float;  (** [flagged / count]; 0 when [count = 0] *)
  p50_ns : int;  (** nearest-rank, bucket upper bound; 0 when empty *)
  p99_ns : int;
  p999_ns : int;
  window_ns : int;  (** the configured span, [buckets × width_ns] *)
}

(** [stats t ~now_ns] — merge the live buckets (epochs within the
    window ending at [now_ns]); expired buckets are excluded exactly,
    whether or not an observation has recycled them yet. *)
val stats : t -> now_ns:int -> stats

val reset : t -> unit

(** [render_prometheus ~name t ~now_ns] — the window's summary as
    Prometheus text-format gauges: [<name>_p50_seconds], [_p99_seconds],
    [_p999_seconds], [_rate], [_flagged_ratio] and [_count], each with
    its [# TYPE] header.  [name] must already be a valid metric name
    (see {!Counters.render_prometheus} for the mangling rules). *)
val render_prometheus : name:string -> t -> now_ns:int -> string
