(** Minimal JSON support shared by the observability exporters
    ({!Span.export_json}, {!Counters.to_json}) and the bench-history
    tooling: string escaping for the emitters, plus a strict value-level
    parser/serializer for the files we both write and read back
    ([BENCH_results.json], counter snapshots).

    This is intentionally not a general-purpose JSON library — no
    streaming, no number fidelity beyond [float] — but the parser is
    strict (it rejects malformed documents rather than guessing), which
    keeps the emitters honest. *)

(** [escape s] — [s] with the JSON string escapes applied: double
    quote, backslash, and control characters ([\n] and [\t] by name,
    the rest as [\u00XX]).  The result is safe to splice between double
    quotes. *)
val escape : string -> string

(** [quote s] — [escape s] wrapped in double quotes. *)
val quote : string -> string

type value =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of value list
  | Obj of (string * value) list  (** members in document order *)

exception Malformed of string * int  (** message, byte offset *)

(** [parse_exn s] parses one JSON document.  Raises {!Malformed} on any
    deviation, including trailing garbage. *)
val parse_exn : string -> value

(** [parse s] — {!parse_exn} with the error rendered as a message. *)
val parse : string -> (value, string) result

(** [to_string v] serializes compactly (single line).  Numbers that are
    integral print without a fraction part; other numbers round-trip to
    12 significant digits. *)
val to_string : value -> string

(** Shallow accessors, each [None] on a kind mismatch. *)

val member : string -> value -> value option
val to_float : value -> float option
val to_str : value -> string option
val to_list : value -> value list option
val to_obj : value -> (string * value) list option
val to_bool : value -> bool option
