(** Minimal JSON emission helpers shared by the two exporters
    ({!Span.export_json} and {!Counters.to_json}), so every string that
    reaches a JSON document goes through one escaping implementation. *)

(** [escape s] — [s] with the JSON string escapes applied: double
    quote, backslash, and control characters ([\n] and [\t] by name,
    the rest as [\u00XX]).  The result is safe to splice between double
    quotes. *)
val escape : string -> string

(** [quote s] — [escape s] wrapped in double quotes. *)
val quote : string -> string
