(* Log-linear latency buckets: exact 0..15, then four sub-buckets per
   power of two.  Index 16 + 4*(m-4) + sub covers [2^m + sub*2^(m-2),
   2^m + (sub+1)*2^(m-2) - 1] for m >= 4, so the upper bound reported
   by a quantile overshoots the true sample by at most a quarter. *)

let n_hist = 248 (* max index for v <= max_int is 247 *)

let log2i v =
  let rec go m v = if v <= 1 then m else go (m + 1) (v lsr 1) in
  go 0 v

let hist_index v =
  if v < 16 then max 0 v
  else
    let m = log2i v in
    16 + (4 * (m - 4)) + ((v lsr (m - 2)) land 3)

let bucket_upper i =
  if i < 16 then i
  else
    let m = 4 + ((i - 16) / 4) and sub = (i - 16) mod 4 in
    (1 lsl m) + ((sub + 1) lsl (m - 2)) - 1

type bucket = {
  mutable epoch : int; (* -1: never used *)
  mutable count : int;
  mutable flagged : int;
  hist : int array;
}

type t = {
  lock : Mutex.t;
  width_ns : int;
  buckets : bucket array;
}

let create ?(buckets = 60) ?(width_ns = 1_000_000_000) () =
  if buckets < 1 then invalid_arg "Rolling.create: buckets must be >= 1";
  if width_ns < 1 then invalid_arg "Rolling.create: width_ns must be >= 1";
  {
    lock = Mutex.create ();
    width_ns;
    buckets =
      Array.init buckets (fun _ ->
          { epoch = -1; count = 0; flagged = 0; hist = Array.make n_hist 0 });
  }

let clear_bucket b =
  b.count <- 0;
  b.flagged <- 0;
  Array.fill b.hist 0 n_hist 0

let observe t ~now_ns ~latency_ns ~flagged =
  let epoch = now_ns / t.width_ns in
  if epoch >= 0 then
    Mutex.protect t.lock (fun () ->
        let b = t.buckets.(epoch mod Array.length t.buckets) in
        (* A bucket left over from a previous lap of the ring is this
           epoch's now; one strictly newer than the observation means
           the observation itself expired in flight — drop it rather
           than pollute the newer bucket. *)
        if b.epoch < epoch then begin
          clear_bucket b;
          b.epoch <- epoch
        end;
        if b.epoch = epoch then begin
          b.count <- b.count + 1;
          if flagged then b.flagged <- b.flagged + 1;
          b.hist.(hist_index latency_ns) <- b.hist.(hist_index latency_ns) + 1
        end)

type stats = {
  count : int;
  flagged : int;
  rate : float;
  flagged_ratio : float;
  p50_ns : int;
  p99_ns : int;
  p999_ns : int;
  window_ns : int;
}

let percentile merged total p =
  if total = 0 then 0
  else begin
    let rank = max 1 (int_of_float (ceil (p *. float_of_int total))) in
    let acc = ref 0 and res = ref 0 and i = ref 0 in
    while !acc < rank && !i < n_hist do
      acc := !acc + merged.(!i);
      if !acc >= rank then res := bucket_upper !i;
      incr i
    done;
    !res
  end

let stats t ~now_ns =
  let n = Array.length t.buckets in
  let cur = now_ns / t.width_ns in
  let oldest = cur - n + 1 in
  Mutex.protect t.lock (fun () ->
      let merged = Array.make n_hist 0 in
      let count = ref 0 and flagged = ref 0 and min_start = ref max_int in
      Array.iter
        (fun b ->
          if b.epoch >= oldest && b.epoch <= cur && b.count > 0 then begin
            count := !count + b.count;
            flagged := !flagged + b.flagged;
            min_start := min !min_start (b.epoch * t.width_ns);
            Array.iteri (fun i c -> merged.(i) <- merged.(i) + c) b.hist
          end)
        t.buckets;
      let count = !count and flagged = !flagged in
      let rate =
        if count = 0 then 0.
        else
          let elapsed_ns = max (now_ns - !min_start) 1 in
          float_of_int count /. (float_of_int elapsed_ns /. 1e9)
      in
      {
        count;
        flagged;
        rate;
        flagged_ratio = (if count = 0 then 0. else float_of_int flagged /. float_of_int count);
        p50_ns = percentile merged count 0.50;
        p99_ns = percentile merged count 0.99;
        p999_ns = percentile merged count 0.999;
        window_ns = n * t.width_ns;
      })

let reset t =
  Mutex.protect t.lock (fun () ->
      Array.iter
        (fun b ->
          clear_bucket b;
          b.epoch <- -1)
        t.buckets)

let render_prometheus ~name t ~now_ns =
  let s = stats t ~now_ns in
  let b = Buffer.create 512 in
  let gauge suffix v =
    Buffer.add_string b (Printf.sprintf "# TYPE %s_%s gauge\n" name suffix);
    Buffer.add_string b (Printf.sprintf "%s_%s %s\n" name suffix v)
  in
  let seconds ns = Printf.sprintf "%.9f" (float_of_int ns /. 1e9) in
  gauge "p50_seconds" (seconds s.p50_ns);
  gauge "p99_seconds" (seconds s.p99_ns);
  gauge "p999_seconds" (seconds s.p999_ns);
  gauge "rate" (Printf.sprintf "%.3f" s.rate);
  gauge "flagged_ratio" (Printf.sprintf "%.6f" s.flagged_ratio);
  gauge "count" (string_of_int s.count);
  Buffer.contents b
