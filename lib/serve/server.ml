module Ast = Isched_frontend.Ast
module Parser = Isched_frontend.Parser
module Lexer = Isched_frontend.Lexer
module Sema = Isched_frontend.Sema
module Machine = Isched_ir.Machine
module Schedule = Isched_core.Schedule
module Lbd_model = Isched_core.Lbd_model
module Pipeline = Isched_harness.Pipeline
module Json = Isched_obs.Json
module Counters = Isched_obs.Counters

let c_requests = Counters.counter "serve.requests"
let c_errors = Counters.counter "serve.errors"
let c_overloaded = Counters.counter "serve.overloaded"
let c_connections = Counters.counter "serve.connections"
let d_queue_depth = Counters.dist "serve.queue_depth"

type config = {
  socket_path : string;
  workers : int;
  queue_capacity : int;
  cache_capacity : int;
  cache_stripes : int;
  validate : bool;
  sync_elim : bool;
}

let default_config ~socket_path =
  {
    socket_path;
    workers = 4;
    queue_capacity = 64;
    cache_capacity = 1024;
    cache_stripes = 16;
    validate = false;
    sync_elim = false;
  }

(* --- the schedule cache --- *)

(* One cache entry per (loop, machine, scheduler, trip-count override,
   pass configuration): everything the pipeline's answer depends on.
   [k_sync_elim] is the RESOLVED setting (request override or server
   default), so the same loop served with and without elimination
   occupies two distinct entries — a toggled option can never be
   answered from a stale schedule.  The loop's structural digest
   (computed once at construction, see Ast.make_loop) carries the hash;
   equality pre-filters on it before the full structural compare,
   exactly like the prepare memo's key. *)
type sched_key = {
  k_digest : int;
  k_loop : Ast.loop;
  k_scheduler : Protocol.scheduler;
  k_issue : int;
  k_nfu : int;
  k_n_iters : int option;
  k_sync_elim : bool;
}

let key_hash k =
  k.k_digest lxor Hashtbl.hash (k.k_scheduler, k.k_issue, k.k_nfu, k.k_n_iters, k.k_sync_elim)

let key_equal a b =
  a.k_scheduler = b.k_scheduler && a.k_issue = b.k_issue && a.k_nfu = b.k_nfu
  && a.k_n_iters = b.k_n_iters
  && a.k_sync_elim = b.k_sync_elim
  && (a.k_loop == b.k_loop || (a.k_digest = b.k_digest && a.k_loop = b.k_loop))

(* The cached value keeps three forms of the answer: the structured
   reply (for explain requests, which re-attach a payload), its
   canonical rendering (the warm path splices these strings straight
   into the response envelope without rebuilding any JSON), and the
   schedule itself so [--validate] can re-check what is about to be
   served — including an entry that was corrupted after insertion. *)
type cached = {
  reply : Protocol.loop_reply;
  rendered : string;
  schedule : Schedule.t option;
}

type t = {
  config : config;
  cache : (sched_key, cached) Cache.t;
  explain_lock : Mutex.t;
      (* Explain.build records provenance through a process-global ring;
         one explain at a time keeps traces attributable. *)
  requests : int Atomic.t;
  stop_flag : bool Atomic.t;
  qlock : Mutex.t;
  qcond : Condition.t;
  queue : Unix.file_descr Queue.t;
}

let create config =
  if config.workers < 1 then invalid_arg "Server.create: workers must be >= 1";
  if config.queue_capacity < 0 then invalid_arg "Server.create: queue_capacity must be >= 0";
  {
    config;
    cache =
      Cache.create ~stripes:config.cache_stripes ~capacity:config.cache_capacity ~hash:key_hash
        ~equal:key_equal ();
    explain_lock = Mutex.create ();
    requests = Atomic.make 0;
    stop_flag = Atomic.make false;
    qlock = Mutex.create ();
    qcond = Condition.create ();
    queue = Queue.create ();
  }

let config t = t.config

let requests_served t = Atomic.get t.requests

let cache_length t = Cache.length t.cache

let corrupt_cached_schedules t =
  let n = ref 0 in
  Cache.iter t.cache (fun _ c ->
      match c.schedule with
      | None -> ()
      | Some s ->
        incr n;
        Array.fill s.Schedule.cycle_of 0 (Array.length s.Schedule.cycle_of) 0);
  !n

(* --- request handling --- *)

let pipeline_scheduler = function
  | Protocol.Sched_list -> Pipeline.List_scheduling
  | Protocol.Sched_marker -> Pipeline.Marker_scheduling
  | Protocol.Sched_new -> Pipeline.New_scheduling

let compute_loop ~options ~machine ~which (l : Ast.loop) : cached =
  let reply, schedule =
    match Pipeline.prepare_uncached options l with
    | Pipeline.Doall _ ->
      ( {
          Protocol.loop_name = l.Ast.name;
          doall = true;
          cycles_per_iteration = 0;
          lbd_pairs = 0;
          parallel_time = 0;
          analytic_time = 0;
          rows = [||];
          explain_payload = None;
        },
        None )
    | Pipeline.Doacross _ as p ->
      let s = Pipeline.schedule ~options p machine which in
      let timing = Isched_sim.Timing.run s in
      ( {
          Protocol.loop_name = l.Ast.name;
          doall = false;
          cycles_per_iteration = s.Schedule.length;
          lbd_pairs = Lbd_model.n_lbd s;
          parallel_time = timing.Isched_sim.Timing.finish;
          analytic_time = Lbd_model.exact_time s;
          rows = s.Schedule.rows;
          explain_payload = None;
        },
        Some s )
  in
  { reply; rendered = Protocol.render_loop_reply reply; schedule }

let resolve_loops source =
  match source with
  | Protocol.Corpus_loop name -> (
    match Isched_perfect.Suite.find_loop name with
    | Some l -> Ok [ l ]
    | None -> Error (Protocol.Unknown_loop, Printf.sprintf "no corpus loop named %S" name))
  | Protocol.Text src -> (
    try
      let loops = Parser.parse ~name:"request" src in
      List.iter Sema.check_exn loops;
      match loops with
      | [] -> Error (Protocol.Source_error, "source contains no loops")
      | _ -> Ok loops
    with
    | Parser.Error { line; col; message } ->
      Error (Protocol.Source_error, Printf.sprintf "parse error at %d:%d: %s" line col message)
    | Lexer.Error { line; col; message } ->
      Error (Protocol.Source_error, Printf.sprintf "lex error at %d:%d: %s" line col message)
    | Invalid_argument m -> Error (Protocol.Source_error, m))

let explain_payload t ~options ~which (l : Ast.loop) machine =
  Mutex.protect t.explain_lock (fun () ->
      match Isched_harness.Explain.build ~options ~which l machine with
      | Error _ -> None
      | Ok ex -> (
        match Json.parse (Isched_harness.Explain.render_json ex) with
        | Ok v -> Some v
        | Error _ -> None))

(* A handler outcome: a structured response, or an already-encoded
   payload (the warm path, which splices cached renderings). *)
type outcome = Response of Protocol.response | Encoded of string

let handle_schedule t ~source ~scheduler ~issue ~nfu ~n_iters ~sync_elim ~explain =
  let machine = Machine.make ~issue ~nfu () in
  match Machine.validate machine with
  | exception Invalid_argument m ->
    Response (Protocol.Error { code = Protocol.Bad_request; message = m })
  | () -> (
    match resolve_loops source with
    | Error (code, message) -> Response (Protocol.Error { code; message })
    | Ok loops -> (
      let sync_elim = Option.value sync_elim ~default:t.config.sync_elim in
      let options = { Pipeline.default_options with n_iters; sync_elim } in
      let which = pipeline_scheduler scheduler in
      let served =
        List.map
          (fun (l : Ast.loop) ->
            let key =
              {
                k_digest = l.Ast.digest;
                k_loop = l;
                k_scheduler = scheduler;
                k_issue = issue;
                k_nfu = nfu;
                k_n_iters = n_iters;
                k_sync_elim = sync_elim;
              }
            in
            let cached, hit =
              Cache.find_or_compute t.cache key (fun () -> compute_loop ~options ~machine ~which l)
            in
            (key, l, cached, hit))
          loops
      in
      (* Under --validate every response — cache hit or fresh — is
         re-derived through the independent static analyzer before it
         leaves the process.  A failing entry is evicted (the next
         request recomputes it) and reported, never served. *)
      let invalid =
        if not t.config.validate then None
        else
          List.find_map
            (fun (key, l, c, _) ->
              match c.schedule with
              | None -> None
              | Some s -> (
                match Isched_check.Static.check s with
                | Ok () -> None
                | Error vs ->
                  Cache.remove t.cache key;
                  Some
                    (Printf.sprintf "loop %s: %s" l.Ast.name
                       (Isched_check.Static.errors_to_string l.Ast.name vs))))
            served
      in
      match invalid with
      | Some diagnostics ->
        Response (Protocol.Error { code = Protocol.Invalid_schedule; message = diagnostics })
      | None ->
        let cache_hit = List.for_all (fun (_, _, _, hit) -> hit) served in
        if explain then
          let loops_replies =
            List.map
              (fun (_, l, c, _) ->
                if c.reply.Protocol.doall then c.reply
                else
                  {
                    c.reply with
                    Protocol.explain_payload = explain_payload t ~options ~which l machine;
                  })
              served
          in
          Response (Protocol.Scheduled { cache_hit; loops = loops_replies })
        else
          (* The warm path: the cached entries carry their canonical
             rendering, so the response is string splicing — no JSON
             tree is rebuilt per request. *)
          Encoded
            (Protocol.encode_scheduled ~cache_hit
               (List.map (fun (_, _, c, _) -> c.rendered) served))))

let handle_inner t = function
  | Protocol.Ping -> Response Protocol.Pong
  | Protocol.Stats ->
    let counters =
      match Json.parse (Counters.to_json ()) with Ok v -> v | Error _ -> Json.Null
    in
    let num i = Json.Num (float_of_int i) in
    Response
      (Protocol.Stats_reply
         (Json.Obj
            [
              ("requests", num (Atomic.get t.requests));
              ( "cache",
                Json.Obj
                  [
                    ("entries", num (Cache.length t.cache));
                    ("capacity", num (Cache.capacity t.cache));
                  ] );
              ("counters", counters);
            ]))
  | Protocol.Schedule { source; scheduler; issue; nfu; n_iters; sync_elim; explain } ->
    handle_schedule t ~source ~scheduler ~issue ~nfu ~n_iters ~sync_elim ~explain

let handle_outcome t req =
  let out =
    try handle_inner t req
    with e ->
      Response (Protocol.Error { code = Protocol.Internal; message = Printexc.to_string e })
  in
  Atomic.incr t.requests;
  Counters.incr c_requests;
  (match out with Response (Protocol.Error _) -> Counters.incr c_errors | _ -> ());
  out

let handle t req =
  match handle_outcome t req with
  | Response r -> r
  | Encoded s -> (
    (* [Encoded] is the canonical encoding of a response, so decoding
       it back is lossless; only this structured entry point (tests,
       non-socket callers) pays for the parse. *)
    match Protocol.decode_response s with
    | Ok r -> r
    | Error (_, m) -> Protocol.Error { code = Protocol.Internal; message = m })

(* --- the daemon --- *)

let send_payload fd payload =
  match Protocol.write_frame fd payload with
  | () -> true
  | exception Unix.Unix_error _ -> false
  | exception Invalid_argument _ ->
    (* The encoded response exceeded the frame bound (a pathological
       explain payload): degrade to a structured error. *)
    (try
       Protocol.write_frame fd
         (Protocol.encode_response
            (Protocol.Error
               { code = Protocol.Internal; message = "response exceeds the frame bound" }));
       true
     with Unix.Unix_error _ -> false)

let send_response fd resp = send_payload fd (Protocol.encode_response resp)

let serve_conn t fd =
  let stop () = Atomic.get t.stop_flag in
  let reader = Protocol.reader fd in
  let rec loop () =
    match Protocol.read_frame_buffered ~stop reader with
    | Protocol.Eof | Protocol.Truncated | Protocol.Stopped -> ()
    | Protocol.Oversized len ->
      (* The stream position is unknowable past an oversized header:
         answer, then close. *)
      Counters.incr c_errors;
      ignore
        (send_response fd
           (Protocol.Error
              {
                code = Protocol.Oversized_frame;
                message =
                  Printf.sprintf "frame of %d bytes exceeds the %d-byte bound" len
                    Protocol.max_frame;
              }))
    | Protocol.Frame payload ->
      let out =
        match Protocol.decode_request payload with
        | Ok req -> (
          match handle_outcome t req with
          | Encoded s -> s
          | Response r -> Protocol.encode_response r)
        | Error (code, message) ->
          Atomic.incr t.requests;
          Counters.incr c_requests;
          Counters.incr c_errors;
          Protocol.encode_response (Protocol.Error { code; message })
      in
      if send_payload fd out then loop ()
  in
  loop ();
  try Unix.close fd with Unix.Unix_error _ -> ()

let rec worker_loop t =
  let job =
    Mutex.protect t.qlock (fun () ->
        let rec get () =
          if not (Queue.is_empty t.queue) then Some (Queue.pop t.queue)
          else if Atomic.get t.stop_flag then None
          else begin
            Condition.wait t.qcond t.qlock;
            get ()
          end
        in
        get ())
  in
  match job with
  | None -> ()
  | Some fd ->
    serve_conn t fd;
    worker_loop t

let reject_overloaded fd =
  Counters.incr c_overloaded;
  ignore
    (send_response fd
       (Protocol.Error
          { code = Protocol.Overloaded; message = "accept queue saturated; retry later" }));
  try Unix.close fd with Unix.Unix_error _ -> ()

let rec accept_loop t lfd =
  if not (Atomic.get t.stop_flag) then begin
    (match Unix.select [ lfd ] [] [] 0.1 with
    | [], _, _ -> ()
    | _ -> (
      match Unix.accept ~cloexec:true lfd with
      | fd, _ ->
        Counters.incr c_connections;
        let enqueued =
          Mutex.protect t.qlock (fun () ->
              if Queue.length t.queue >= t.config.queue_capacity then false
              else begin
                Queue.push fd t.queue;
                Counters.observe d_queue_depth (Queue.length t.queue);
                Condition.signal t.qcond;
                true
              end)
        in
        if not enqueued then reject_overloaded fd
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    accept_loop t lfd
  end

let stop t = Atomic.set t.stop_flag true

let install_signal_handlers t =
  let h = Sys.Signal_handle (fun _ -> stop t) in
  Sys.set_signal Sys.sigterm h;
  Sys.set_signal Sys.sigint h

let run ?(on_ready = fun () -> ()) t =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let path = t.config.socket_path in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let lfd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind lfd (Unix.ADDR_UNIX path);
  Unix.listen lfd 64;
  let workers = List.init t.config.workers (fun _ -> Domain.spawn (fun () -> worker_loop t)) in
  on_ready ();
  Fun.protect
    ~finally:(fun () ->
      (* Graceful drain: wake every idle worker (the queued and
         in-flight connections are still served; workers exit once the
         queue is empty), join, then remove the socket. *)
      Atomic.set t.stop_flag true;
      Mutex.protect t.qlock (fun () -> Condition.broadcast t.qcond);
      List.iter Domain.join workers;
      (try Unix.close lfd with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () -> accept_loop t lfd)
