module Ast = Isched_frontend.Ast
module Parser = Isched_frontend.Parser
module Lexer = Isched_frontend.Lexer
module Sema = Isched_frontend.Sema
module Machine = Isched_ir.Machine
module Schedule = Isched_core.Schedule
module Lbd_model = Isched_core.Lbd_model
module Pipeline = Isched_harness.Pipeline
module Json = Isched_obs.Json
module Counters = Isched_obs.Counters
module Rolling = Isched_obs.Rolling
module Reqlog = Isched_obs.Reqlog

let c_requests = Counters.counter "serve.requests"
let c_errors = Counters.counter "serve.errors"
let c_overloaded = Counters.counter "serve.overloaded"
let c_connections = Counters.counter "serve.connections"
let c_slow = Counters.counter "serve.slow_requests"
let d_queue_depth = Counters.dist "serve.queue_depth"

type config = {
  socket_path : string;
  workers : int;
  queue_capacity : int;
  cache_capacity : int;
  cache_stripes : int;
  validate : bool;
  sync_elim : bool;
  slow_ms : float;
  metrics_file : string option;
  metrics_interval : float;
}

let default_config ~socket_path =
  {
    socket_path;
    workers = 4;
    queue_capacity = 64;
    cache_capacity = 1024;
    cache_stripes = 16;
    validate = false;
    sync_elim = false;
    slow_ms = 100.;
    metrics_file = None;
    metrics_interval = 5.;
  }

(* --- the schedule cache --- *)

(* One cache entry per (loop, machine, scheduler, trip-count override,
   pass configuration): everything the pipeline's answer depends on.
   [k_sync_elim] is the RESOLVED setting (request override or server
   default), so the same loop served with and without elimination
   occupies two distinct entries — a toggled option can never be
   answered from a stale schedule.  The loop's structural digest
   (computed once at construction, see Ast.make_loop) carries the hash;
   equality pre-filters on it before the full structural compare,
   exactly like the prepare memo's key. *)
type sched_key = {
  k_digest : int;
  k_loop : Ast.loop;
  k_scheduler : Protocol.scheduler;
  k_issue : int;
  k_nfu : int;
  k_n_iters : int option;
  k_sync_elim : bool;
}

let key_hash k =
  k.k_digest lxor Hashtbl.hash (k.k_scheduler, k.k_issue, k.k_nfu, k.k_n_iters, k.k_sync_elim)

let key_equal a b =
  a.k_scheduler = b.k_scheduler && a.k_issue = b.k_issue && a.k_nfu = b.k_nfu
  && a.k_n_iters = b.k_n_iters
  && a.k_sync_elim = b.k_sync_elim
  && (a.k_loop == b.k_loop || (a.k_digest = b.k_digest && a.k_loop = b.k_loop))

(* The cached value keeps three forms of the answer: the structured
   reply (for explain requests, which re-attach a payload), its
   canonical rendering (the warm path splices these strings straight
   into the response envelope without rebuilding any JSON), and the
   schedule itself so [--validate] can re-check what is about to be
   served — including an entry that was corrupted after insertion. *)
type cached = {
  reply : Protocol.loop_reply;
  rendered : string;
  schedule : Schedule.t option;
}

type t = {
  config : config;
  cache : (sched_key, cached) Cache.t;
  explain_lock : Mutex.t;
      (* Explain.build records provenance through a process-global ring;
         one explain at a time keeps traces attributable. *)
  requests : int Atomic.t;
  stop_flag : bool Atomic.t;
  qlock : Mutex.t;
  qcond : Condition.t;
  queue : Unix.file_descr Queue.t;
  queue_hwm : int Atomic.t;
  busy_workers : int Atomic.t;
  req_rolling : Rolling.t;  (* per-request latency, flagged = error *)
  cache_rolling : Rolling.t;  (* per-loop probe latency, flagged = miss *)
  last_dump : float Atomic.t;  (* Unix time of the last --metrics-file write *)
}

let create config =
  if config.workers < 1 then invalid_arg "Server.create: workers must be >= 1";
  if config.queue_capacity < 0 then invalid_arg "Server.create: queue_capacity must be >= 0";
  if config.slow_ms < 0. then invalid_arg "Server.create: slow_ms must be >= 0";
  Reqlog.set_slow_threshold_ns (int_of_float (config.slow_ms *. 1e6));
  {
    config;
    cache =
      Cache.create ~stripes:config.cache_stripes ~capacity:config.cache_capacity ~hash:key_hash
        ~equal:key_equal ();
    explain_lock = Mutex.create ();
    requests = Atomic.make 0;
    stop_flag = Atomic.make false;
    qlock = Mutex.create ();
    qcond = Condition.create ();
    queue = Queue.create ();
    queue_hwm = Atomic.make 0;
    busy_workers = Atomic.make 0;
    req_rolling = Rolling.create ();
    cache_rolling = Rolling.create ();
    last_dump = Atomic.make 0.;
  }

let config t = t.config

let requests_served t = Atomic.get t.requests

let cache_length t = Cache.length t.cache

let corrupt_cached_schedules t =
  let n = ref 0 in
  Cache.iter t.cache (fun _ c ->
      match c.schedule with
      | None -> ()
      | Some s ->
        incr n;
        Array.fill s.Schedule.cycle_of 0 (Array.length s.Schedule.cycle_of) 0);
  !n

(* --- request tracing --- *)

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

(* The per-request trace accumulator, allocated once per traced request
   (only when counters are enabled; the disabled path allocates
   nothing).  Stage durations accumulate so a multi-loop request sums
   its per-loop probe and compute times. *)
type trace = {
  stage_ns : int array;  (* Reqlog.n_stages, Reqlog.stage_index order *)
  mutable tr_verdict : Reqlog.cache_verdict;
  mutable tr_digest : int;
  mutable tr_scheduler : string;
  mutable tr_sync_elim : bool;
  mutable tr_error : string option;
}

let fresh_trace ~read_ns =
  let stage_ns = Array.make Reqlog.n_stages 0 in
  stage_ns.(Reqlog.stage_index Reqlog.Read) <- max read_ns 0;
  {
    stage_ns;
    tr_verdict = Reqlog.Uncached;
    tr_digest = 0;
    tr_scheduler = "";
    tr_sync_elim = false;
    tr_error = None;
  }

let stage_add tr stage ns = tr.stage_ns.(Reqlog.stage_index stage) <- tr.stage_ns.(Reqlog.stage_index stage) + max ns 0

(* The request's latency is decode through socket write: the frame-read
   stage is recorded in the stage vector but excluded from the total,
   because on an idle keep-alive connection it is dominated by waiting
   for the client to speak. *)
let finish_trace t tr ~id ~start_ns ~end_ns =
  let total_ns = max (end_ns - start_ns) 0 in
  Reqlog.record
    {
      Reqlog.id;
      start_ns;
      stage_ns = tr.stage_ns;
      total_ns;
      verdict = tr.tr_verdict;
      digest = tr.tr_digest;
      scheduler = tr.tr_scheduler;
      sync_elim = tr.tr_sync_elim;
      error = tr.tr_error;
    };
  if total_ns >= Reqlog.slow_threshold_ns () then Counters.incr c_slow;
  Rolling.observe t.req_rolling ~now_ns:end_ns ~latency_ns:total_ns
    ~flagged:(Option.is_some tr.tr_error)

(* --- request handling --- *)

let pipeline_scheduler = function
  | Protocol.Sched_list -> Pipeline.List_scheduling
  | Protocol.Sched_marker -> Pipeline.Marker_scheduling
  | Protocol.Sched_new -> Pipeline.New_scheduling

let compute_loop ~options ~machine ~which (l : Ast.loop) : cached =
  let reply, schedule =
    match Pipeline.prepare_uncached options l with
    | Pipeline.Doall _ ->
      ( {
          Protocol.loop_name = l.Ast.name;
          doall = true;
          cycles_per_iteration = 0;
          lbd_pairs = 0;
          parallel_time = 0;
          analytic_time = 0;
          rows = [||];
          explain_payload = None;
        },
        None )
    | Pipeline.Doacross _ as p ->
      let s = Pipeline.schedule ~options p machine which in
      let timing = Isched_sim.Timing.run s in
      ( {
          Protocol.loop_name = l.Ast.name;
          doall = false;
          cycles_per_iteration = s.Schedule.length;
          lbd_pairs = Lbd_model.n_lbd s;
          parallel_time = timing.Isched_sim.Timing.finish;
          analytic_time = Lbd_model.exact_time s;
          rows = s.Schedule.rows;
          explain_payload = None;
        },
        Some s )
  in
  { reply; rendered = Protocol.render_loop_reply reply; schedule }

let resolve_loops source =
  match source with
  | Protocol.Corpus_loop name -> (
    match Isched_perfect.Suite.find_loop name with
    | Some l -> Ok [ l ]
    | None -> Error (Protocol.Unknown_loop, Printf.sprintf "no corpus loop named %S" name))
  | Protocol.Text src -> (
    try
      let loops = Parser.parse ~name:"request" src in
      List.iter Sema.check_exn loops;
      match loops with
      | [] -> Error (Protocol.Source_error, "source contains no loops")
      | _ -> Ok loops
    with
    | Parser.Error { line; col; message } ->
      Error (Protocol.Source_error, Printf.sprintf "parse error at %d:%d: %s" line col message)
    | Lexer.Error { line; col; message } ->
      Error (Protocol.Source_error, Printf.sprintf "lex error at %d:%d: %s" line col message)
    | Invalid_argument m -> Error (Protocol.Source_error, m))

let explain_payload t ~options ~which (l : Ast.loop) machine =
  Mutex.protect t.explain_lock (fun () ->
      match Isched_harness.Explain.build ~options ~which l machine with
      | Error _ -> None
      | Ok ex -> (
        match Json.parse (Isched_harness.Explain.render_json ex) with
        | Ok v -> Some v
        | Error _ -> None))

(* A handler outcome: a structured response, or an already-encoded
   payload (the warm path, which splices cached renderings). *)
type outcome = Response of Protocol.response | Encoded of string

let handle_schedule t ?trace ~source ~scheduler ~issue ~nfu ~n_iters ~sync_elim ~explain () =
  let machine = Machine.make ~issue ~nfu () in
  match Machine.validate machine with
  | exception Invalid_argument m ->
    Response (Protocol.Error { code = Protocol.Bad_request; message = m })
  | () -> (
    match resolve_loops source with
    | Error (code, message) -> Response (Protocol.Error { code; message })
    | Ok loops -> (
      let sync_elim = Option.value sync_elim ~default:t.config.sync_elim in
      let options = { Pipeline.default_options with n_iters; sync_elim } in
      let which = pipeline_scheduler scheduler in
      (match trace with
      | None -> ()
      | Some tr ->
        tr.tr_digest <- (match loops with l :: _ -> l.Ast.digest | [] -> 0);
        tr.tr_scheduler <- Protocol.scheduler_name scheduler;
        tr.tr_sync_elim <- sync_elim);
      let probe l key =
        match trace with
        | None -> Cache.find_or_compute_v t.cache key (fun () -> compute_loop ~options ~machine ~which l)
        | Some tr ->
          (* Probe time is the find_or_compute wall clock minus the
             compute closure's own time; a coalesced waiter's wait
             therefore lands in the probe stage. *)
          let t0 = now_ns () in
          let compute_ns = ref 0 in
          let cached, verdict =
            Cache.find_or_compute_v t.cache key (fun () ->
                let c0 = now_ns () in
                let r = compute_loop ~options ~machine ~which l in
                compute_ns := now_ns () - c0;
                r)
          in
          let t1 = now_ns () in
          stage_add tr Reqlog.Cache_probe (t1 - t0 - !compute_ns);
          stage_add tr Reqlog.Compute !compute_ns;
          Rolling.observe t.cache_rolling ~now_ns:t1 ~latency_ns:(t1 - t0)
            ~flagged:(verdict = `Miss);
          (cached, verdict)
      in
      let served =
        List.map
          (fun (l : Ast.loop) ->
            let key =
              {
                k_digest = l.Ast.digest;
                k_loop = l;
                k_scheduler = scheduler;
                k_issue = issue;
                k_nfu = nfu;
                k_n_iters = n_iters;
                k_sync_elim = sync_elim;
              }
            in
            let cached, verdict = probe l key in
            (key, l, cached, verdict))
          loops
      in
      (match trace with
      | None -> ()
      | Some tr ->
        tr.tr_verdict <-
          (if List.exists (fun (_, _, _, v) -> v = `Miss) served then Reqlog.Miss
           else if List.exists (fun (_, _, _, v) -> v = `Coalesced) served then Reqlog.Coalesced
           else Reqlog.Hit));
      (* Under --validate every response — cache hit or fresh — is
         re-derived through the independent static analyzer before it
         leaves the process.  A failing entry is evicted (the next
         request recomputes it) and reported, never served. *)
      let t_validate = match trace with Some _ when t.config.validate -> now_ns () | _ -> 0 in
      let invalid =
        if not t.config.validate then None
        else
          List.find_map
            (fun (key, l, c, _) ->
              match c.schedule with
              | None -> None
              | Some s -> (
                match Isched_check.Static.check s with
                | Ok () -> None
                | Error vs ->
                  Cache.remove t.cache key;
                  Some
                    (Printf.sprintf "loop %s: %s" l.Ast.name
                       (Isched_check.Static.errors_to_string l.Ast.name vs))))
            served
      in
      (match trace with
      | Some tr when t.config.validate -> stage_add tr Reqlog.Validate (now_ns () - t_validate)
      | _ -> ());
      match invalid with
      | Some diagnostics ->
        Response (Protocol.Error { code = Protocol.Invalid_schedule; message = diagnostics })
      | None ->
        let cache_hit = List.for_all (fun (_, _, _, v) -> v <> `Miss) served in
        if explain then
          let loops_replies =
            List.map
              (fun (_, l, c, _) ->
                if c.reply.Protocol.doall then c.reply
                else
                  {
                    c.reply with
                    Protocol.explain_payload = explain_payload t ~options ~which l machine;
                  })
              served
          in
          Response (Protocol.Scheduled { cache_hit; loops = loops_replies })
        else begin
          (* The warm path: the cached entries carry their canonical
             rendering, so the response is string splicing — no JSON
             tree is rebuilt per request. *)
          let t_enc = match trace with Some _ -> now_ns () | None -> 0 in
          let s =
            Protocol.encode_scheduled ~cache_hit (List.map (fun (_, _, c, _) -> c.rendered) served)
          in
          (match trace with
          | Some tr -> stage_add tr Reqlog.Encode (now_ns () - t_enc)
          | None -> ());
          Encoded s
        end))

(* --- stats & metrics --- *)

let rolling_value (s : Rolling.stats) =
  let num i = Json.Num (float_of_int i) in
  Json.Obj
    [
      ("count", num s.Rolling.count);
      ("rate", Json.Num s.Rolling.rate);
      ("p50_ns", num s.Rolling.p50_ns);
      ("p99_ns", num s.Rolling.p99_ns);
      ("p999_ns", num s.Rolling.p999_ns);
      ("flagged", num s.Rolling.flagged);
      ("flagged_ratio", Json.Num s.Rolling.flagged_ratio);
      ("window_ns", num s.Rolling.window_ns);
    ]

let stats_value t =
  let num i = Json.Num (float_of_int i) in
  let counters = match Json.parse (Counters.to_json ()) with Ok v -> v | Error _ -> Json.Null in
  let now = now_ns () in
  let stripe_entries = Cache.stripe_lengths t.cache in
  let depth = Mutex.protect t.qlock (fun () -> Queue.length t.queue) in
  let busy = Atomic.get t.busy_workers in
  Json.Obj
    [
      ("requests", num (Atomic.get t.requests));
      ( "cache",
        Json.Obj
          [
            ("entries", num (Cache.length t.cache));
            ("capacity", num (Cache.capacity t.cache));
            ( "stripe_entries",
              Json.Arr (Array.to_list (Array.map (fun n -> num n) stripe_entries)) );
          ] );
      ( "queue",
        Json.Obj
          [
            ("capacity", num t.config.queue_capacity);
            ("depth", num depth);
            ("hwm", num (Atomic.get t.queue_hwm));
          ] );
      ( "workers",
        Json.Obj
          [
            ("total", num t.config.workers);
            ("busy", num busy);
            ( "utilisation",
              Json.Num (float_of_int busy /. float_of_int (max t.config.workers 1)) );
          ] );
      ("window", rolling_value (Rolling.stats t.req_rolling ~now_ns:now));
      ("cache_window", rolling_value (Rolling.stats t.cache_rolling ~now_ns:now));
      ( "slow",
        Json.Obj
          [
            ("threshold_ms", Json.Num (float_of_int (Reqlog.slow_threshold_ns ()) /. 1e6));
            ("entries", Json.Arr (List.map Reqlog.entry_value (Reqlog.slow ~limit:16 ())));
          ] );
      ("counters", counters);
    ]

let metrics_exposition t =
  let now = now_ns () in
  let b = Buffer.create 4096 in
  Buffer.add_string b (Counters.render_prometheus ());
  Buffer.add_string b (Rolling.render_prometheus ~name:"isched_serve_window" t.req_rolling ~now_ns:now);
  Buffer.add_string b
    (Rolling.render_prometheus ~name:"isched_serve_cache_window" t.cache_rolling ~now_ns:now);
  let gauge name v = Printf.bprintf b "# TYPE %s gauge\n%s %d\n" name name v in
  gauge "isched_serve_cache_entries" (Cache.length t.cache);
  gauge "isched_serve_cache_capacity" (Cache.capacity t.cache);
  Buffer.add_string b "# TYPE isched_serve_cache_stripe_entries gauge\n";
  Array.iteri
    (fun i n -> Printf.bprintf b "isched_serve_cache_stripe_entries{stripe=\"%d\"} %d\n" i n)
    (Cache.stripe_lengths t.cache);
  gauge "isched_serve_queue_capacity" t.config.queue_capacity;
  gauge "isched_serve_queue_hwm" (Atomic.get t.queue_hwm);
  gauge "isched_serve_workers_total" t.config.workers;
  gauge "isched_serve_workers_busy" (Atomic.get t.busy_workers);
  Buffer.contents b

let handle_inner t ?trace = function
  | Protocol.Ping -> Response Protocol.Pong
  | Protocol.Stats -> Response (Protocol.Stats_reply (stats_value t))
  | Protocol.Metrics -> Response (Protocol.Metrics_reply (metrics_exposition t))
  | Protocol.Schedule { source; scheduler; issue; nfu; n_iters; sync_elim; explain } ->
    handle_schedule t ?trace ~source ~scheduler ~issue ~nfu ~n_iters ~sync_elim ~explain ()

(* Returns the request's id (the pre-increment counter value) with the
   outcome, so the socket path can tag its trace without a second
   atomic operation. *)
let handle_outcome t ?trace req =
  let out =
    try handle_inner t ?trace req
    with e ->
      Response (Protocol.Error { code = Protocol.Internal; message = Printexc.to_string e })
  in
  let id = Atomic.fetch_and_add t.requests 1 in
  Counters.incr c_requests;
  (match out with
  | Response (Protocol.Error { code; _ }) ->
    Counters.incr c_errors;
    (match trace with
    | Some tr -> tr.tr_error <- Some (Protocol.error_code_name code)
    | None -> ())
  | _ -> ());
  (id, out)

let handle t req =
  match handle_outcome t req with
  | _, Response r -> r
  | _, Encoded s -> (
    (* [Encoded] is the canonical encoding of a response, so decoding
       it back is lossless; only this structured entry point (tests,
       non-socket callers) pays for the parse. *)
    match Protocol.decode_response s with
    | Ok r -> r
    | Error (_, m) -> Protocol.Error { code = Protocol.Internal; message = m })

(* --- the daemon --- *)

let send_payload fd payload =
  match Protocol.write_frame fd payload with
  | () -> true
  | exception Unix.Unix_error _ -> false
  | exception Invalid_argument _ ->
    (* The encoded response exceeded the frame bound (a pathological
       explain payload): degrade to a structured error. *)
    (try
       Protocol.write_frame fd
         (Protocol.encode_response
            (Protocol.Error
               { code = Protocol.Internal; message = "response exceeds the frame bound" }));
       true
     with Unix.Unix_error _ -> false)

let send_response fd resp = send_payload fd (Protocol.encode_response resp)

let serve_conn t fd =
  let stop () = Atomic.get t.stop_flag in
  let reader = Protocol.reader fd in
  let rec loop () =
    (* One atomic read decides whether this request is traced; the
       disabled path performs no clock reads and no allocation for the
       reqlog (the inertness property test pins this). *)
    let enabled = Counters.enabled () in
    let t_wait = if enabled then now_ns () else 0 in
    match Protocol.read_frame_buffered ~stop reader with
    | Protocol.Eof | Protocol.Truncated | Protocol.Stopped -> ()
    | Protocol.Oversized len ->
      (* The stream position is unknowable past an oversized header:
         answer, then close. *)
      Counters.incr c_errors;
      ignore
        (send_response fd
           (Protocol.Error
              {
                code = Protocol.Oversized_frame;
                message =
                  Printf.sprintf "frame of %d bytes exceeds the %d-byte bound" len
                    Protocol.max_frame;
              }))
    | Protocol.Frame payload ->
      let t_start = if enabled then now_ns () else 0 in
      let trace = if enabled then Some (fresh_trace ~read_ns:(t_start - t_wait)) else None in
      let id, out =
        match Protocol.decode_request payload with
        | Ok req ->
          (match trace with
          | Some tr -> stage_add tr Reqlog.Decode (now_ns () - t_start)
          | None -> ());
          let id, out = handle_outcome t ?trace req in
          let payload =
            match out with
            | Encoded s -> s
            | Response r ->
              let t_enc = match trace with Some _ -> now_ns () | None -> 0 in
              let s = Protocol.encode_response r in
              (match trace with
              | Some tr -> stage_add tr Reqlog.Encode (now_ns () - t_enc)
              | None -> ());
              s
          in
          (id, payload)
        | Error (code, message) ->
          let id = Atomic.fetch_and_add t.requests 1 in
          Counters.incr c_requests;
          Counters.incr c_errors;
          (match trace with
          | Some tr ->
            stage_add tr Reqlog.Decode (now_ns () - t_start);
            tr.tr_error <- Some (Protocol.error_code_name code)
          | None -> ());
          (id, Protocol.encode_response (Protocol.Error { code; message }))
      in
      let t_write = match trace with Some _ -> now_ns () | None -> 0 in
      let ok = send_payload fd out in
      (match trace with
      | Some tr ->
        let t_end = now_ns () in
        stage_add tr Reqlog.Write (t_end - t_write);
        finish_trace t tr ~id ~start_ns:t_start ~end_ns:t_end
      | None -> ());
      if ok then loop ()
  in
  loop ();
  try Unix.close fd with Unix.Unix_error _ -> ()

let rec worker_loop t =
  let job =
    Mutex.protect t.qlock (fun () ->
        let rec get () =
          if not (Queue.is_empty t.queue) then Some (Queue.pop t.queue)
          else if Atomic.get t.stop_flag then None
          else begin
            Condition.wait t.qcond t.qlock;
            get ()
          end
        in
        get ())
  in
  match job with
  | None -> ()
  | Some fd ->
    Atomic.incr t.busy_workers;
    Fun.protect
      ~finally:(fun () -> Atomic.decr t.busy_workers)
      (fun () -> serve_conn t fd);
    worker_loop t

let reject_overloaded fd =
  Counters.incr c_overloaded;
  ignore
    (send_response fd
       (Protocol.Error
          { code = Protocol.Overloaded; message = "accept queue saturated; retry later" }));
  try Unix.close fd with Unix.Unix_error _ -> ()

let rec bump_max a v =
  let cur = Atomic.get a in
  if v > cur && not (Atomic.compare_and_set a cur v) then bump_max a v

(* Periodic --metrics-file dump, driven by the accept loop's ~100 ms
   select tick: write the whole exposition to a sibling temp file and
   rename it into place, so a scraper never reads a torn file. *)
let maybe_dump_metrics t =
  match t.config.metrics_file with
  | None -> ()
  | Some path ->
    let now = Unix.gettimeofday () in
    if now -. Atomic.get t.last_dump >= t.config.metrics_interval then begin
      Atomic.set t.last_dump now;
      let tmp = path ^ ".tmp" in
      try
        let oc = open_out tmp in
        output_string oc (metrics_exposition t);
        close_out oc;
        Unix.rename tmp path
      with Sys_error _ | Unix.Unix_error _ -> ()
    end

let rec accept_loop t lfd =
  if not (Atomic.get t.stop_flag) then begin
    (match Unix.select [ lfd ] [] [] 0.1 with
    | [], _, _ -> ()
    | _ -> (
      match Unix.accept ~cloexec:true lfd with
      | fd, _ ->
        Counters.incr c_connections;
        let enqueued =
          Mutex.protect t.qlock (fun () ->
              if Queue.length t.queue >= t.config.queue_capacity then false
              else begin
                Queue.push fd t.queue;
                let depth = Queue.length t.queue in
                Counters.observe d_queue_depth depth;
                bump_max t.queue_hwm depth;
                Condition.signal t.qcond;
                true
              end)
        in
        if not enqueued then reject_overloaded fd
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    maybe_dump_metrics t;
    accept_loop t lfd
  end

let stop t = Atomic.set t.stop_flag true

let install_signal_handlers t =
  let h = Sys.Signal_handle (fun _ -> stop t) in
  Sys.set_signal Sys.sigterm h;
  Sys.set_signal Sys.sigint h

let run ?(on_ready = fun () -> ()) t =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let path = t.config.socket_path in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let lfd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind lfd (Unix.ADDR_UNIX path);
  Unix.listen lfd 64;
  let workers = List.init t.config.workers (fun _ -> Domain.spawn (fun () -> worker_loop t)) in
  on_ready ();
  Fun.protect
    ~finally:(fun () ->
      (* Graceful drain: wake every idle worker (the queued and
         in-flight connections are still served; workers exit once the
         queue is empty), join, then remove the socket. *)
      Atomic.set t.stop_flag true;
      Mutex.protect t.qlock (fun () -> Condition.broadcast t.qcond);
      List.iter Domain.join workers;
      (try Unix.close lfd with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () -> accept_loop t lfd)
