module Counters = Isched_obs.Counters

let c_hit = Counters.counter "serve.cache.hit"
let c_miss = Counters.counter "serve.cache.miss"
let c_evict = Counters.counter "serve.cache.evict"
let c_coalesced = Counters.counter "serve.cache.coalesced"

type 'v state = Computing | Ready of 'v

type ('k, 'v) node = { nkey : 'k; mutable state : 'v state }

(* One stripe: a mutex-protected association list in MRU-first order.
   Per-stripe capacity is small (a 1024-entry cache over 16 stripes is
   64 nodes per stripe), so the O(n) touch/evict walks stay well under
   the cost of the JSON work around every cache operation. *)
type ('k, 'v) stripe = {
  lock : Mutex.t;
  cond : Condition.t;
  mutable items : ('k, 'v) node list;
}

type ('k, 'v) t = {
  stripes : ('k, 'v) stripe array;
  stripe_cap : int;
  total_cap : int;
  hash : 'k -> int;
  equal : 'k -> 'k -> bool;
}

let create ?(stripes = 16) ~capacity ~hash ~equal () =
  if stripes < 1 then invalid_arg "Cache.create: stripes must be >= 1";
  if capacity < 1 then invalid_arg "Cache.create: capacity must be >= 1";
  {
    stripes =
      Array.init stripes (fun _ ->
          { lock = Mutex.create (); cond = Condition.create (); items = [] });
    stripe_cap = max 1 ((capacity + stripes - 1) / stripes);
    total_cap = capacity;
    hash;
    equal;
  }

let capacity c = c.total_cap

let stripe_for c k = c.stripes.((c.hash k land max_int) mod Array.length c.stripes)

let find_node c s k = List.find_opt (fun n -> c.equal n.nkey k) s.items

(* Move [node] to the front of the MRU list. *)
let touch s node =
  match s.items with
  | n :: _ when n == node -> ()
  | items -> s.items <- node :: List.filter (fun n -> not (n == node)) items

(* Evict ready nodes from the LRU end until at most [cap] remain.
   In-flight computes are never evicted (their computer still holds a
   reference), so a stripe can transiently exceed its share while many
   keys are being computed at once. *)
let enforce_cap s cap =
  let n_ready = List.fold_left (fun a n -> match n.state with Ready _ -> a + 1 | _ -> a) 0 s.items in
  if n_ready > cap then begin
    let excess = ref (n_ready - cap) in
    (* Walk from the LRU end: keep everything once the excess is gone. *)
    let rev = List.rev s.items in
    let kept =
      List.filter
        (fun n ->
          match n.state with
          | Ready _ when !excess > 0 ->
            decr excess;
            Counters.incr c_evict;
            false
          | _ -> true)
        rev
    in
    s.items <- List.rev kept
  end

let rec find_or_compute_v c k f =
  let s = stripe_for c k in
  Mutex.lock s.lock;
  match find_node c s k with
  | Some node -> (
    match node.state with
    | Ready v ->
      touch s node;
      Mutex.unlock s.lock;
      Counters.incr c_hit;
      (v, `Hit)
    | Computing ->
      (* Another domain is computing this key: wait for it to finish
         (or fail), then retry the lookup from scratch. *)
      Counters.incr c_coalesced;
      let rec wait () =
        Condition.wait s.cond s.lock;
        match find_node c s k with
        | Some { state = Computing; _ } -> wait ()
        | Some ({ state = Ready v; _ } as node) ->
          touch s node;
          Mutex.unlock s.lock;
          Counters.incr c_hit;
          (v, `Coalesced)
        | None ->
          (* The compute failed and the placeholder was removed: become
             a computer ourselves. *)
          Mutex.unlock s.lock;
          find_or_compute_v c k f
      in
      wait ())
  | None -> (
    let node = { nkey = k; state = Computing } in
    s.items <- node :: s.items;
    Mutex.unlock s.lock;
    Counters.incr c_miss;
    match f () with
    | v ->
      Mutex.lock s.lock;
      node.state <- Ready v;
      touch s node;
      enforce_cap s c.stripe_cap;
      Condition.broadcast s.cond;
      Mutex.unlock s.lock;
      (v, `Miss)
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      Mutex.lock s.lock;
      s.items <- List.filter (fun n -> not (n == node)) s.items;
      Condition.broadcast s.cond;
      Mutex.unlock s.lock;
      Printexc.raise_with_backtrace e bt)

let find_or_compute c k f =
  match find_or_compute_v c k f with
  | v, `Miss -> (v, false)
  | v, (`Hit | `Coalesced) -> (v, true)

let find c k =
  let s = stripe_for c k in
  Mutex.protect s.lock (fun () ->
      match find_node c s k with
      | Some ({ state = Ready v; _ } as node) ->
        touch s node;
        Counters.incr c_hit;
        Some v
      | Some { state = Computing; _ } | None -> None)

let remove c k =
  let s = stripe_for c k in
  Mutex.protect s.lock (fun () ->
      s.items <-
        List.filter
          (fun n -> match n.state with Ready _ -> not (c.equal n.nkey k) | Computing -> true)
          s.items)

let iter c f =
  Array.iter
    (fun s ->
      Mutex.protect s.lock (fun () ->
          List.iter (fun n -> match n.state with Ready v -> f n.nkey v | Computing -> ()) s.items))
    c.stripes

let length c =
  Array.fold_left
    (fun acc s ->
      Mutex.protect s.lock (fun () ->
          acc
          + List.fold_left (fun a n -> match n.state with Ready _ -> a + 1 | _ -> a) 0 s.items))
    0 c.stripes

let stripe_lengths c =
  Array.map
    (fun s ->
      Mutex.protect s.lock (fun () ->
          List.fold_left (fun a n -> match n.state with Ready _ -> a + 1 | _ -> a) 0 s.items))
    c.stripes

let clear c =
  Array.iter
    (fun s ->
      Mutex.protect s.lock (fun () ->
          s.items <-
            List.filter (fun n -> match n.state with Computing -> true | Ready _ -> false) s.items))
    c.stripes
