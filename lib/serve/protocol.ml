module Json = Isched_obs.Json

let max_frame = 1 lsl 20

(* --- requests --- *)

type scheduler = Sched_list | Sched_marker | Sched_new

type source = Text of string | Corpus_loop of string

type request =
  | Ping
  | Stats
  | Metrics
  | Schedule of {
      source : source;
      scheduler : scheduler;
      issue : int;
      nfu : int;
      n_iters : int option;
      sync_elim : bool option;  (* None: the server's configured default *)
      explain : bool;
    }

let schedule_request ?(scheduler = Sched_new) ?(issue = 4) ?(nfu = 1) ?n_iters ?sync_elim
    ?(explain = false) source =
  Schedule { source; scheduler; issue; nfu; n_iters; sync_elim; explain }

(* --- responses --- *)

type loop_reply = {
  loop_name : string;
  doall : bool;
  cycles_per_iteration : int;
  lbd_pairs : int;
  parallel_time : int;
  analytic_time : int;
  rows : int array array;
  explain_payload : Json.value option;
}

type error_code =
  | Oversized_frame
  | Malformed_frame
  | Bad_request
  | Source_error
  | Unknown_loop
  | Overloaded
  | Invalid_schedule
  | Internal

let error_code_name = function
  | Oversized_frame -> "oversized_frame"
  | Malformed_frame -> "malformed_frame"
  | Bad_request -> "bad_request"
  | Source_error -> "source_error"
  | Unknown_loop -> "unknown_loop"
  | Overloaded -> "overloaded"
  | Invalid_schedule -> "invalid_schedule"
  | Internal -> "internal"

let error_code_of_name = function
  | "oversized_frame" -> Some Oversized_frame
  | "malformed_frame" -> Some Malformed_frame
  | "bad_request" -> Some Bad_request
  | "source_error" -> Some Source_error
  | "unknown_loop" -> Some Unknown_loop
  | "overloaded" -> Some Overloaded
  | "invalid_schedule" -> Some Invalid_schedule
  | "internal" -> Some Internal
  | _ -> None

type response =
  | Pong
  | Stats_reply of Json.value
  | Metrics_reply of string
  | Scheduled of { cache_hit : bool; loops : loop_reply list }
  | Error of { code : error_code; message : string }

(* --- JSON codecs ---

   Encoding is canonical: fixed member order, optional members omitted
   when absent, integers emitted as integral [Num]s.  The round-trip
   property (encode o decode o encode = encode) rides on this. *)

let scheduler_name = function Sched_list -> "list" | Sched_marker -> "marker" | Sched_new -> "new"

let scheduler_of_name = function
  | "list" -> Some Sched_list
  | "marker" -> Some Sched_marker
  | "new" -> Some Sched_new
  | _ -> None

let num i = Json.Num (float_of_int i)

let request_to_json = function
  | Ping -> Json.Obj [ ("op", Json.Str "ping") ]
  | Stats -> Json.Obj [ ("op", Json.Str "stats") ]
  | Metrics -> Json.Obj [ ("op", Json.Str "metrics") ]
  | Schedule { source; scheduler; issue; nfu; n_iters; sync_elim; explain } ->
    let src =
      match source with
      | Text s -> ("source", Json.Str s)
      | Corpus_loop n -> ("corpus_loop", Json.Str n)
    in
    Json.Obj
      ([ ("op", Json.Str "schedule"); src; ("scheduler", Json.Str (scheduler_name scheduler));
         ("issue", num issue); ("nfu", num nfu) ]
      @ (match n_iters with None -> [] | Some n -> [ ("n_iters", num n) ])
      @ (match sync_elim with None -> [] | Some b -> [ ("sync_elim", Json.Bool b) ])
      @ [ ("explain", Json.Bool explain) ])

let loop_reply_to_json r =
  Json.Obj
    ([ ("name", Json.Str r.loop_name);
       ("kind", Json.Str (if r.doall then "doall" else "doacross"));
       ("cycles_per_iteration", num r.cycles_per_iteration);
       ("lbd_pairs", num r.lbd_pairs); ("parallel_time", num r.parallel_time);
       ("analytic_time", num r.analytic_time);
       ( "rows",
         Json.Arr
           (Array.to_list
              (Array.map (fun row -> Json.Arr (Array.to_list (Array.map num row))) r.rows)) ) ]
    @ match r.explain_payload with None -> [] | Some v -> [ ("explain", v) ])

let response_to_json = function
  | Pong -> Json.Obj [ ("status", Json.Str "ok"); ("op", Json.Str "ping") ]
  | Stats_reply v ->
    Json.Obj [ ("status", Json.Str "ok"); ("op", Json.Str "stats"); ("stats", v) ]
  | Metrics_reply e ->
    Json.Obj [ ("status", Json.Str "ok"); ("op", Json.Str "metrics"); ("exposition", Json.Str e) ]
  | Scheduled { cache_hit; loops } ->
    Json.Obj
      [ ("status", Json.Str "ok"); ("op", Json.Str "schedule");
        ("cache", Json.Str (if cache_hit then "hit" else "miss"));
        ("loops", Json.Arr (List.map loop_reply_to_json loops)) ]
  | Error { code; message } ->
    Json.Obj
      [ ("status", Json.Str "error"); ("code", Json.Str (error_code_name code));
        ("message", Json.Str message) ]

(* --- decoding --- *)

(* [Stdlib.Error] throughout: the [response] constructor [Error] above
   shadows [result]'s. *)
let ( let* ) r f = match r with Ok v -> f v | Stdlib.Error _ as e -> e

let bad fmt = Printf.ksprintf (fun m -> Stdlib.Error (Bad_request, m)) fmt

let get_str k v =
  match Option.bind (Json.member k v) Json.to_str with
  | Some s -> Ok s
  | None -> bad "missing or non-string %S" k

let get_int ?(min = min_int) k v =
  match Option.bind (Json.member k v) Json.to_float with
  | Some f when Float.is_integer f && f >= float_of_int min && f <= 1e9 ->
    Ok (int_of_float f)
  | Some _ -> bad "%S must be an integer >= %d" k min
  | None -> bad "missing or non-numeric %S" k

let get_bool k v =
  match Option.bind (Json.member k v) Json.to_bool with
  | Some b -> Ok b
  | None -> bad "missing or non-boolean %S" k

let opt_int ?(min = min_int) k v =
  match Json.member k v with
  | None -> Ok None
  | Some x -> (
    match Json.to_float x with
    | Some f when Float.is_integer f && f >= float_of_int min && f <= 1e9 ->
      Ok (Some (int_of_float f))
    | _ -> bad "%S must be an integer >= %d" k min)

let opt_bool k v =
  match Json.member k v with
  | None -> Ok None
  | Some x -> (
    match Json.to_bool x with
    | Some b -> Ok (Some b)
    | None -> bad "%S must be a boolean" k)

(* Every member a schedule request may carry.  Anything else — a
   misspelled field, an unsupported pass option — is rejected as a
   structured [Bad_request] rather than silently ignored, so a client
   can never believe it toggled a pass the server never saw. *)
let schedule_members =
  [ "op"; "source"; "corpus_loop"; "scheduler"; "issue"; "nfu"; "n_iters"; "sync_elim"; "explain" ]

let check_members known v =
  match v with
  | Json.Obj fields -> (
    match List.find_opt (fun (k, _) -> not (List.mem k known)) fields with
    | Some (k, _) -> bad "unknown request member %S" k
    | None -> Ok ())
  | _ -> Ok ()

let request_of_json v =
  match v with
  | Json.Obj _ -> (
    let* op = get_str "op" v in
    match op with
    | "ping" -> Ok Ping
    | "stats" -> Ok Stats
    | "metrics" -> Ok Metrics
    | "schedule" ->
      let* () = check_members schedule_members v in
      let* source =
        match (Json.member "source" v, Json.member "corpus_loop" v) with
        | Some _, Some _ -> bad "give exactly one of \"source\" and \"corpus_loop\""
        | Some (Json.Str s), None -> Ok (Text s)
        | None, Some (Json.Str n) -> Ok (Corpus_loop n)
        | Some _, None | None, Some _ -> bad "\"source\"/\"corpus_loop\" must be strings"
        | None, None -> bad "give one of \"source\" and \"corpus_loop\""
      in
      let* sched_name = get_str "scheduler" v in
      let* scheduler =
        match scheduler_of_name sched_name with
        | Some s -> Ok s
        | None -> bad "unknown scheduler %S (one of list, marker, new)" sched_name
      in
      let* issue = get_int ~min:1 "issue" v in
      let* nfu = get_int ~min:1 "nfu" v in
      let* n_iters = opt_int ~min:1 "n_iters" v in
      let* sync_elim = opt_bool "sync_elim" v in
      let* explain = get_bool "explain" v in
      Ok (Schedule { source; scheduler; issue; nfu; n_iters; sync_elim; explain })
    | other -> bad "unknown op %S" other)
  | _ -> bad "request must be a JSON object"

let rows_of_json v =
  match Json.to_list v with
  | None -> bad "\"rows\" must be an array"
  | Some rows ->
    let cell x =
      match Json.to_float x with
      | Some f when Float.is_integer f -> Ok (int_of_float f)
      | _ -> bad "\"rows\" cells must be integers"
    in
    let rec go acc = function
      | [] -> Ok (Array.of_list (List.rev acc))
      | r :: rest -> (
        match Json.to_list r with
        | None -> bad "\"rows\" rows must be arrays"
        | Some cells ->
          let rec cells_go acc = function
            | [] -> Ok (Array.of_list (List.rev acc))
            | c :: cs ->
              let* i = cell c in
              cells_go (i :: acc) cs
          in
          let* row = cells_go [] cells in
          go (row :: acc) rest)
    in
    go [] rows

let loop_reply_of_json v =
  let* loop_name = get_str "name" v in
  let* kind = get_str "kind" v in
  let* doall =
    match kind with
    | "doall" -> Ok true
    | "doacross" -> Ok false
    | other -> bad "unknown loop kind %S" other
  in
  let* cycles_per_iteration = get_int "cycles_per_iteration" v in
  let* lbd_pairs = get_int "lbd_pairs" v in
  let* parallel_time = get_int "parallel_time" v in
  let* analytic_time = get_int "analytic_time" v in
  let* rows =
    match Json.member "rows" v with None -> bad "missing \"rows\"" | Some r -> rows_of_json r
  in
  Ok
    {
      loop_name;
      doall;
      cycles_per_iteration;
      lbd_pairs;
      parallel_time;
      analytic_time;
      rows;
      explain_payload = Json.member "explain" v;
    }

let response_of_json v =
  match v with
  | Json.Obj _ -> (
    let* status = get_str "status" v in
    match status with
    | "error" ->
      let* code_name = get_str "code" v in
      let* code =
        match error_code_of_name code_name with
        | Some c -> Ok c
        | None -> bad "unknown error code %S" code_name
      in
      let* message = get_str "message" v in
      Ok (Error { code; message })
    | "ok" -> (
      let* op = get_str "op" v in
      match op with
      | "ping" -> Ok Pong
      | "stats" -> (
        match Json.member "stats" v with
        | Some s -> Ok (Stats_reply s)
        | None -> bad "missing \"stats\"")
      | "metrics" ->
        let* exposition = get_str "exposition" v in
        Ok (Metrics_reply exposition)
      | "schedule" ->
        let* cache = get_str "cache" v in
        let* cache_hit =
          match cache with
          | "hit" -> Ok true
          | "miss" -> Ok false
          | other -> bad "unknown cache state %S" other
        in
        let* loops =
          match Option.bind (Json.member "loops" v) Json.to_list with
          | None -> bad "missing \"loops\" array"
          | Some ls ->
            let rec go acc = function
              | [] -> Ok (List.rev acc)
              | l :: rest ->
                let* r = loop_reply_of_json l in
                go (r :: acc) rest
            in
            go [] ls
        in
        Ok (Scheduled { cache_hit; loops })
      | other -> bad "unknown op %S" other)
    | other -> bad "unknown status %S" other)
  | _ -> bad "response must be a JSON object"

let decode payload of_json =
  match Json.parse payload with
  | Stdlib.Error e -> Stdlib.Error (Malformed_frame, e)
  | Ok v -> of_json v

let decode_request s = decode s request_of_json
let decode_response s = decode s response_of_json
let encode_request r = Json.to_string (request_to_json r)
let encode_response r = Json.to_string (response_to_json r)

(* The server's warm path: loop replies are rendered once when computed
   and cached as strings, so a hit only splices them into the envelope.
   Byte-identical to [encode_response (Scheduled _)] over the same
   replies (pinned by a test); keep the two in lockstep. *)

let render_loop_reply r = Json.to_string (loop_reply_to_json r)

let encode_scheduled ~cache_hit rendered_loops =
  let b = Buffer.create 256 in
  Buffer.add_string b "{\"status\": \"ok\", \"op\": \"schedule\", \"cache\": ";
  Buffer.add_string b (if cache_hit then "\"hit\"" else "\"miss\"");
  Buffer.add_string b ", \"loops\": [";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b s)
    rendered_loops;
  Buffer.add_string b "]}";
  Buffer.contents b

(* --- framing --- *)

let frame payload =
  let n = String.length payload in
  if n > max_frame then invalid_arg "Protocol.frame: payload exceeds max_frame";
  let b = Bytes.create (4 + n) in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.blit_string payload 0 b 4 n;
  Bytes.unsafe_to_string b

type read_result = Frame of string | Eof | Truncated | Oversized of int | Stopped

(* Wait until [fd] is readable, about every 100 ms giving [stop] a
   chance to end the wait (the server's drain path). *)
let rec wait_readable stop fd =
  if stop () then `Stopped
  else
    match Unix.select [ fd ] [] [] 0.1 with
    | [], _, _ -> wait_readable stop fd
    | _ -> `Readable
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait_readable stop fd

(* Read exactly [len] bytes into [buf] at [off]; [`Closed k] reports how
   many arrived before end of stream. *)
let read_exact stop fd buf off len =
  let rec go off remaining =
    if remaining = 0 then `Ok
    else
      match wait_readable stop fd with
      | `Stopped -> `Stopped
      | `Readable -> (
        match Unix.read fd buf off remaining with
        | 0 -> `Closed (len - remaining)
        | k -> go (off + k) (remaining - k)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off remaining)
  in
  go off len

let read_frame ?(stop = fun () -> false) ?(max_frame = max_frame) fd =
  let header = Bytes.create 4 in
  match read_exact stop fd header 0 4 with
  | `Stopped -> Stopped
  | `Closed 0 -> Eof
  | `Closed _ -> Truncated
  | `Ok -> (
    let len = Int32.to_int (Bytes.get_int32_be header 0) in
    if len < 0 || len > max_frame then Oversized len
    else
      let payload = Bytes.create len in
      match read_exact stop fd payload 0 len with
      | `Stopped -> Stopped
      | `Closed _ -> Truncated
      | `Ok -> Frame (Bytes.unsafe_to_string payload))

(* Buffered reading: the server and client hot paths go through a
   per-connection [reader] so a frame that arrived whole (the common
   case) costs one [read] — not select+read for the header and again
   for the payload.  Frames larger than the buffer spill to direct
   reads into the destination. *)

type reader = {
  rfd : Unix.file_descr;
  rbuf : Bytes.t;
  mutable rlo : int;  (* unconsumed region is [rlo, rhi) *)
  mutable rhi : int;
}

let reader fd = { rfd = fd; rbuf = Bytes.create 65536; rlo = 0; rhi = 0 }

(* Make at least one byte available in the buffer.  Without [stop] the
   read blocks directly (client side); with it, readiness is polled so
   the server's drain can interrupt an idle wait. *)
let rec fill stop r =
  if r.rhi > r.rlo then `Ok
  else begin
    r.rlo <- 0;
    r.rhi <- 0;
    let ready = match stop with None -> `Readable | Some s -> wait_readable s r.rfd in
    match ready with
    | `Stopped -> `Stopped
    | `Readable -> (
      match Unix.read r.rfd r.rbuf 0 (Bytes.length r.rbuf) with
      | 0 -> `Eof
      | k ->
        r.rhi <- k;
        `Ok
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> fill stop r)
  end

let take_exact stop r dst off len =
  let rec go off remaining =
    if remaining = 0 then `Ok
    else
      match fill stop r with
      | `Stopped -> `Stopped
      | `Eof -> `Closed (len - remaining)
      | `Ok ->
        let k = min (r.rhi - r.rlo) remaining in
        Bytes.blit r.rbuf r.rlo dst off k;
        r.rlo <- r.rlo + k;
        go (off + k) (remaining - k)
  in
  go off len

let read_frame_buffered ?stop ?(max_frame = max_frame) r =
  let header = Bytes.create 4 in
  match take_exact stop r header 0 4 with
  | `Stopped -> Stopped
  | `Closed 0 -> Eof
  | `Closed _ -> Truncated
  | `Ok -> (
    let len = Int32.to_int (Bytes.get_int32_be header 0) in
    if len < 0 || len > max_frame then Oversized len
    else
      let payload = Bytes.create len in
      match take_exact stop r payload 0 len with
      | `Stopped -> Stopped
      | `Closed _ -> Truncated
      | `Ok -> Frame (Bytes.unsafe_to_string payload))

let write_frame fd payload =
  let framed = frame payload in
  let b = Bytes.unsafe_of_string framed in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0
