(** The scheduling daemon behind [ischedc serve]: a Unix-domain-socket
    server answering {!Protocol} requests with schedules, LBD
    accounting and optional explain payloads.

    Architecture (doc/serving.md has the full story):

    - one accept loop (the calling domain) feeding a {e bounded} queue
      of accepted connections; when the queue is full the connection is
      answered with a structured [overloaded] error and closed
      immediately — backpressure instead of unbounded buffering;
    - [workers] persistent worker domains, spawned once for the
      server's lifetime (the lesson of the PR-5 domain pool: domain
      spawn is a stop-the-world event, so it must be off the request
      path), each serving whole connections frame by frame;
    - a digest-keyed schedule {!Cache} in front of the pipeline, so
      repeat traffic costs a striped-LRU probe instead of a
      restructure + codegen + schedule + simulate pass.  The pipeline
      half runs uncached ({!Isched_harness.Pipeline.prepare_uncached}):
      the LRU bound on the schedule cache is then the {e only}
      request-driven retention, which keeps the daemon's RSS bounded
      under arbitrary traffic (the soak test pins this);
    - graceful drain: {!stop} (or SIGTERM/SIGINT via
      {!install_signal_handlers}) stops the accept loop, lets every
      queued and in-flight request finish, closes the connections at
      the next frame boundary, joins the workers and removes the
      socket.

    Counters: [serve.requests], [serve.errors], [serve.overloaded],
    [serve.connections], [serve.queue_depth] plus the [serve.cache.*]
    family — all visible through the [stats] request and the
    [--counters] flag. *)

type config = {
  socket_path : string;
  workers : int;  (** worker domains (>= 1) *)
  queue_capacity : int;
      (** accepted connections waiting for a worker; 0 rejects
          whatever the workers cannot pick up instantly *)
  cache_capacity : int;  (** schedule cache entries (>= 1) *)
  cache_stripes : int;
  validate : bool;
      (** re-check every served schedule (cache hits included) with the
          independent {!Isched_check.Static} analyzer; a corrupt entry
          is evicted and reported as an [invalid_schedule] error, never
          served *)
  sync_elim : bool;
      (** default for requests that do not carry a [sync_elim] member:
          run the {!Isched_sync.Elim} redundant-synchronization
          elimination pass.  The resolved setting is part of the
          schedule-cache key, so the two settings never share an
          entry. *)
  slow_ms : float;
      (** requests slower than this (decode through socket write) are
          promoted to the retained {!Isched_obs.Reqlog} slow-log and
          counted under [serve.slow_requests]; [create] installs it as
          the process-wide {!Isched_obs.Reqlog.set_slow_threshold_ns} *)
  metrics_file : string option;
      (** when set, the accept loop dumps the Prometheus exposition to
          this path (write-temp-then-rename, so a scraper never reads a
          torn file) every [metrics_interval] seconds *)
  metrics_interval : float;  (** seconds between [metrics_file] dumps *)
}

(** [default_config ~socket_path] — 4 workers, queue 64, cache 1024
    over 16 stripes, no validation, no elimination, 100 ms slow
    threshold, no metrics file (5 s interval when one is set). *)
val default_config : socket_path:string -> config

type t

(** [create config] builds the handler state (cache included) without
    touching the filesystem; {!handle} works immediately — the test
    suite drives it without a socket. *)
val create : config -> t

val config : t -> config

(** [handle t req] — answer one request.  Never raises: internal
    failures become [Error { code = Internal; _ }] responses. *)
val handle : t -> Protocol.request -> Protocol.response

(** [run ?on_ready t] binds the socket (unlinking a pre-existing one),
    spawns the workers, calls [on_ready ()] once accepting, and blocks
    until {!stop}.  On return the workers are joined and the socket
    file removed.  SIGPIPE is ignored for the whole process (a client
    hanging up mid-response must not kill the daemon). *)
val run : ?on_ready:(unit -> unit) -> t -> unit

(** [stop t] — request a graceful drain; safe from any domain and from
    a signal handler (it only flips an atomic).  {!run} notices within
    ~100 ms. *)
val stop : t -> unit

(** [install_signal_handlers t] — SIGTERM and SIGINT call [stop t]. *)
val install_signal_handlers : t -> unit

(** [requests_served t] — total requests answered (including error
    responses) since [create].  Request ids are assigned from this
    counter, so ids are dense and monotonically increasing. *)
val requests_served : t -> int

(** [metrics_exposition t] — the Prometheus text exposition the
    [Metrics] verb and the [--metrics-file] dumps serve: every
    registered counter/distribution ({!Isched_obs.Counters.render_prometheus}),
    the request and cache sliding windows
    ([isched_serve_window_*], [isched_serve_cache_window_*]) and the
    server gauges (cache occupancy total and per stripe, queue
    capacity/high-water, worker counts).  doc/observability.md has the
    name table. *)
val metrics_exposition : t -> string

(** {2 Test hooks} *)

(** [cache_length t] — ready entries in the schedule cache. *)
val cache_length : t -> int

(** [corrupt_cached_schedules t] — fault injection for the validation
    test: overwrite the issue cycle of every instruction of every
    cached schedule with cycle 0, which breaks the row layout/occupancy
    invariants the static checker re-derives.  Returns how many entries
    were corrupted. *)
val corrupt_cached_schedules : t -> int
