(** A blocking client for the scheduling service: one Unix-domain
    connection, one in-flight request at a time.  The bench load
    generator opens one of these per concurrency domain; the CLI and
    the tests use it for single-shot requests. *)

type t

(** [connect path] — connect to the daemon's socket.  Raises
    [Unix.Unix_error] when the daemon is not there. *)
val connect : string -> t

(** [request t req] — send one request and wait for its response.
    [Error] describes a transport- or codec-level failure (peer closed,
    truncated frame, undecodable response); a server-side failure is a
    normal [Ok (Protocol.Error _)]. *)
val request : t -> Protocol.request -> (Protocol.response, string) result

(** [request_raw t req] — {!request} without decoding: the raw response
    payload.  What the load generator times (parsing a response the
    caller may not need is client-side work, not service latency);
    decode later with {!Protocol.decode_response}. *)
val request_raw : t -> Protocol.request -> (string, string) result

(** [request_exn t req] — {!request}, raising [Failure] on transport
    errors. *)
val request_exn : t -> Protocol.request -> Protocol.response

val close : t -> unit

(** [with_connection path f] — connect, run [f], close (also on
    exception). *)
val with_connection : string -> (t -> 'a) -> 'a
