(** Bounded, striped, digest-keyed result cache for the scheduling
    service.

    Like the {!Isched_harness.Pipeline} prepare memo, the cache is
    striped: [stripes] independent (mutex, LRU list) pairs indexed by
    the key's hash, so concurrent requests for different keys take
    different locks.  Unlike the memo it is bounded: the total capacity
    is split evenly across stripes and each stripe evicts its
    least-recently-used ready entry when its share is exceeded.

    Lookups are compute-coalescing: when several domains ask for the
    same absent key at once, exactly one runs the compute function and
    the rest block until the value is ready (the "exactly-once compute
    per digest" guarantee the test suite hammers).  If the compute
    function raises, the placeholder is removed, the waiters retry (one
    of them becomes the new computer) and the exception propagates to
    the original caller.

    Counters: [serve.cache.hit], [serve.cache.miss],
    [serve.cache.evict], [serve.cache.coalesced] (lookups that waited
    on another domain's in-flight compute). *)

type ('k, 'v) t

(** [create ?stripes ~capacity ~hash ~equal ()] — [capacity] (>= 1) is
    the total bound; [stripes] (default 16) must divide the work of
    [hash] evenly for balance but any positive count is legal (tests
    use 1 stripe for exact global LRU order).  Each stripe holds at
    most [ceil (capacity / stripes)] (minimum 1) ready entries. *)
val create :
  ?stripes:int -> capacity:int -> hash:('k -> int) -> equal:('k -> 'k -> bool) -> unit ->
  ('k, 'v) t

(** [find_or_compute c k f] — [(v, hit)] where [hit] says the value was
    already cached (including the coalesced-wait case).  [f] runs
    without any cache lock held. *)
val find_or_compute : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v * bool

(** [find_or_compute_v c k f] — like {!find_or_compute} but with the
    full verdict: [`Hit] (value was ready), [`Coalesced] (waited on
    another domain's in-flight compute), [`Miss] (this caller ran [f]).
    A waiter whose computer failed retries and reports the retried
    outcome. *)
val find_or_compute_v :
  ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v * [ `Hit | `Miss | `Coalesced ]

(** [find c k] — a plain probe, counting and touching like a hit;
    [None] also when the key is currently being computed. *)
val find : ('k, 'v) t -> 'k -> 'v option

(** [remove c k] — drop the entry if present and ready (an in-flight
    compute is left to finish; its insertion then stands). *)
val remove : ('k, 'v) t -> 'k -> unit

(** [iter c f] — every ready entry, stripe by stripe, under each
    stripe's lock; [f] must not call back into the cache.  Order within
    a stripe is most-recently-used first.  (The fault-injection test
    uses this to corrupt a cached schedule in place.) *)
val iter : ('k, 'v) t -> ('k -> 'v -> unit) -> unit

(** [length c] — ready entries across all stripes. *)
val length : ('k, 'v) t -> int

val capacity : ('k, 'v) t -> int

(** [stripe_lengths c] — ready entries per stripe, in stripe index
    order (the per-stripe occupancy surfaced by the daemon's [Stats]
    and [Metrics] replies). *)
val stripe_lengths : ('k, 'v) t -> int array

(** [clear c] drops every ready entry (in-flight computes survive). *)
val clear : ('k, 'v) t -> unit
