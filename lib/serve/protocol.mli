(** Wire protocol of the scheduling service ([ischedc serve]).

    Frames are length-prefixed: a 4-byte big-endian payload length
    followed by exactly that many bytes of UTF-8 JSON (one request or
    one response per frame), encoded and parsed with the strict
    {!Isched_obs.Json} used everywhere else in the repo.  The length
    prefix is bounded by {!max_frame}; anything larger is rejected with
    a structured error before the payload is read, so a hostile client
    cannot make the server buffer gigabytes.

    Encoding is canonical — field order is fixed and optional fields
    are omitted rather than [null] — so [encode (decode (encode r))]
    is byte-identical to [encode r] (pinned by the protocol
    round-trip property in the test suite).

    The full schema is documented in doc/serving.md. *)

module Json := Isched_obs.Json

(** Hard bound on a frame's payload size (1 MiB). *)
val max_frame : int

(** {2 Requests} *)

type scheduler = Sched_list | Sched_marker | Sched_new

(** [scheduler_name s] — the wire name: [list], [marker] or [new]. *)
val scheduler_name : scheduler -> string

type source =
  | Text of string  (** mini-Fortran source; may contain several loops *)
  | Corpus_loop of string
      (** a named loop of the seed corpora, e.g. ["QCD.L1"] or
          ["FLQ52.G3"] (see {!Isched_perfect.Suite.find_loop}) *)

type request =
  | Ping
  | Stats  (** counters snapshot + cache occupancy *)
  | Metrics
      (** the Prometheus text exposition (see doc/observability.md);
          what [ischedc top --metrics] and the [--metrics-file] dumps
          print *)
  | Schedule of {
      source : source;
      scheduler : scheduler;
      issue : int;
      nfu : int;
      n_iters : int option;  (** trip-count override *)
      sync_elim : bool option;
          (** run the {!Isched_sync.Elim} redundant-synchronization
              elimination pass; [None] defers to the server's configured
              default.  A non-boolean value, like any unknown request
              member, is rejected with a structured [Bad_request]. *)
      explain : bool;  (** attach the [ischedc explain] JSON payload *)
    }

(** [schedule_request ?scheduler ?issue ?nfu ?n_iters ?sync_elim ?explain
    source] — a [Schedule] with the server-side defaults (new scheduler,
    4-issue, 1 FU copy, no override, server-default elimination, no
    explain payload). *)
val schedule_request :
  ?scheduler:scheduler ->
  ?issue:int ->
  ?nfu:int ->
  ?n_iters:int ->
  ?sync_elim:bool ->
  ?explain:bool ->
  source ->
  request

(** {2 Responses} *)

type loop_reply = {
  loop_name : string;
  doall : bool;
      (** no carried dependence remains after restructuring: nothing to
          schedule, the numeric fields below are all zero *)
  cycles_per_iteration : int;  (** schedule length [l] *)
  lbd_pairs : int;  (** remaining backward pairs after scheduling *)
  parallel_time : int;  (** simulated n-processor finish time *)
  analytic_time : int;  (** {!Isched_core.Lbd_model.exact_time} *)
  rows : int array array;  (** cycle -> body indices (Fig. 4 layout) *)
  explain_payload : Json.value option;  (** present when requested *)
}

type error_code =
  | Oversized_frame
  | Malformed_frame  (** payload is not a well-formed JSON document *)
  | Bad_request  (** well-formed JSON that is not a valid request *)
  | Source_error  (** the source text failed to parse or check *)
  | Unknown_loop  (** no corpus loop with the requested name *)
  | Overloaded  (** accept queue saturated; retry later *)
  | Invalid_schedule
      (** a served schedule failed the [--validate] re-check *)
  | Internal

val error_code_name : error_code -> string

type response =
  | Pong
  | Stats_reply of Json.value
  | Metrics_reply of string
      (** the Prometheus text exposition, verbatim (newline-separated
          [# TYPE]/sample lines) *)
  | Scheduled of { cache_hit : bool; loops : loop_reply list }
      (** [cache_hit] iff every loop of the request was served from the
          schedule cache *)
  | Error of { code : error_code; message : string }

(** {2 JSON codecs} *)

val request_to_json : request -> Json.value
val response_to_json : response -> Json.value

(** Both decoders return a structured error — never raise — on any
    deviation: the error code is [Bad_request] for a well-formed JSON
    value with the wrong shape. *)

val request_of_json : Json.value -> (request, error_code * string) result
val response_of_json : Json.value -> (response, error_code * string) result

(** [decode_request s] / [decode_response s] — parse the payload string
    and decode; [Malformed_frame] when [s] is not JSON. *)

val decode_request : string -> (request, error_code * string) result
val decode_response : string -> (response, error_code * string) result

val encode_request : request -> string  (** the JSON payload, unframed *)

val encode_response : response -> string

(** [render_loop_reply r] — the canonical JSON rendering of one loop
    reply; what [encode_response] embeds for it. *)
val render_loop_reply : loop_reply -> string

(** [encode_scheduled ~cache_hit rendered] — assemble a [Scheduled]
    response from pre-rendered loop replies.  Byte-identical to
    [encode_response (Scheduled _)] over the same replies (the server's
    warm path; pinned by a test). *)
val encode_scheduled : cache_hit:bool -> string list -> string

(** {2 Framing} *)

(** [frame payload] — the length prefix followed by [payload].  Raises
    [Invalid_argument] when the payload exceeds {!max_frame}. *)
val frame : string -> string

type read_result =
  | Frame of string  (** one complete payload *)
  | Eof  (** the peer closed before any byte of a new frame *)
  | Truncated  (** the peer closed mid-frame *)
  | Oversized of int  (** declared length; the payload was not read *)
  | Stopped  (** [stop ()] turned true while waiting *)

(** [read_frame ?stop ?max_frame fd] blocks (polling [stop] about every
    100 ms) until one full frame, end of stream, or an oversized length
    prefix.  Never raises on peer-driven conditions; [Unix.Unix_error]
    can still escape for local descriptor failures. *)
val read_frame : ?stop:(unit -> bool) -> ?max_frame:int -> Unix.file_descr -> read_result

(** A per-connection read buffer: a frame that arrived whole (the
    common case) costs one [read] syscall instead of two polled reads.
    Bytes past the current frame stay buffered for the next call, so a
    connection must use one reader for its whole life. *)
type reader

val reader : Unix.file_descr -> reader

(** [read_frame_buffered ?stop ?max_frame r] — {!read_frame} through
    [r]'s buffer.  Without [stop] the wait is a plain blocking read;
    with it, readiness is polled (about every 100 ms) as in
    {!read_frame}. *)
val read_frame_buffered : ?stop:(unit -> bool) -> ?max_frame:int -> reader -> read_result

(** [write_frame fd payload] writes the frame, handling short writes.
    Raises [Invalid_argument] on an oversized payload and
    [Unix.Unix_error] on a dead peer (callers treat that as the
    connection ending). *)
val write_frame : Unix.file_descr -> string -> unit
