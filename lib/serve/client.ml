type t = { fd : Unix.file_descr; reader : Protocol.reader; mutable closed : bool }

let connect path =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; reader = Protocol.reader fd; closed = false }

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let request_raw t req =
  if t.closed then Error "client: connection closed"
  else
    match Protocol.write_frame t.fd (Protocol.encode_request req) with
    | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "client: send failed: %s" (Unix.error_message e))
    | () -> (
      match Protocol.read_frame_buffered t.reader with
      | Protocol.Frame payload -> Ok payload
      | Protocol.Eof -> Error "client: server closed the connection"
      | Protocol.Truncated -> Error "client: truncated response frame"
      | Protocol.Oversized len -> Error (Printf.sprintf "client: oversized response frame (%d bytes)" len)
      | Protocol.Stopped -> Error "client: interrupted"
      | exception Unix.Unix_error (e, _, _) ->
        Error (Printf.sprintf "client: receive failed: %s" (Unix.error_message e)))

let request t req =
  match request_raw t req with
  | Error _ as e -> e
  | Ok payload -> (
    match Protocol.decode_response payload with
    | Ok resp -> Ok resp
    | Error (code, msg) ->
      Error
        (Printf.sprintf "client: undecodable response (%s): %s" (Protocol.error_code_name code)
           msg))

let request_exn t req =
  match request t req with Ok r -> r | Error msg -> failwith msg

let with_connection path f =
  let t = connect path in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)
