(** Memory-access extraction.

    Every statement is flattened into an ordered list of memory accesses
    — the order in which the generated three-address code will touch
    memory: guard reads first, then left-hand-side subscript reads, then
    right-hand-side reads (left to right, inner subscript reads before
    the enclosing array read), and the write last.

    The (statement index, access index) pair identifies an access
    stably; the code generator enumerates accesses in exactly this order,
    which is how statement-level dependences are mapped onto the
    three-address instructions that realise them. *)

module Ast := Isched_frontend.Ast

type t = {
  stmt : int;  (** statement index in the loop body (0-based) *)
  idx : int;  (** position within the statement's access list *)
  target : string;  (** array or scalar name *)
  is_array : bool;
  sub : Ast.expr option;  (** subscript, [None] for scalars *)
  affine : Affine.t option;  (** normalized subscript when analyzable *)
  is_write : bool;
}

(** [of_stmt ~stmt s] lists the accesses of statement [s] in evaluation
    order. *)
val of_stmt : stmt:int -> Ast.stmt -> t list

(** [of_loop l] concatenates {!of_stmt} over the body. *)
val of_loop : Ast.loop -> t list

(** [writes l] / [reads l] filter {!of_loop}. *)
val writes : Ast.loop -> t list

val reads : Ast.loop -> t list

val pp : Format.formatter -> t -> unit
