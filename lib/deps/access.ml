module Ast = Isched_frontend.Ast

type t = {
  stmt : int;
  idx : int;
  target : string;
  is_array : bool;
  sub : Ast.expr option;
  affine : Affine.t option;
  is_write : bool;
}

let of_stmt ~stmt (s : Ast.stmt) =
  let acc = ref [] in
  let n = ref 0 in
  let push ~target ~is_array ~sub ~is_write =
    let affine = match sub with Some e -> Affine.of_expr e | None -> None in
    acc := { stmt; idx = !n; target; is_array; sub; affine; is_write } :: !acc;
    incr n
  in
  (* Reads of an expression, inner subscripts before the enclosing
     reference, left to right. *)
  let rec reads_of (e : Ast.expr) =
    match e with
    | Ast.Num _ | Ast.Ivar -> ()
    | Ast.Scalar name -> push ~target:name ~is_array:false ~sub:None ~is_write:false
    | Ast.Aref (a, sub) ->
      reads_of sub;
      push ~target:a ~is_array:true ~sub:(Some sub) ~is_write:false
    | Ast.Bin (_, x, y) ->
      reads_of x;
      reads_of y
    | Ast.Neg x -> reads_of x
  in
  (match s.guard with
  | Some c ->
    reads_of c.lhs;
    reads_of c.rhs
  | None -> ());
  (match s.lhs with Ast.Larr (_, sub) -> reads_of sub | Ast.Lscalar _ -> ());
  reads_of s.rhs;
  (match s.lhs with
  | Ast.Larr (a, sub) -> push ~target:a ~is_array:true ~sub:(Some sub) ~is_write:true
  | Ast.Lscalar name -> push ~target:name ~is_array:false ~sub:None ~is_write:true);
  List.rev !acc

let of_loop (l : Ast.loop) =
  List.concat (List.mapi (fun i s -> of_stmt ~stmt:i s) l.body)

let writes l = List.filter (fun a -> a.is_write) (of_loop l)
let reads l = List.filter (fun a -> not a.is_write) (of_loop l)

let pp ppf a =
  let rw = if a.is_write then "W" else "R" in
  match a.sub with
  | None -> Format.fprintf ppf "%s:%s (S%d.%d)" rw a.target (a.stmt + 1) a.idx
  | Some sub ->
    Format.fprintf ppf "%s:%s[%a] (S%d.%d)" rw a.target Isched_frontend.Ast.pp_expr sub
      (a.stmt + 1) a.idx
