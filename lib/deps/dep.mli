(** Data-dependence analysis of a single loop.

    For affine subscripts with equal coefficients the dependence distance
    is exact; for unequal coefficients the solutions are enumerated
    exactly over the (bounded) iteration space; anything unanalyzable is
    kept with [Unknown] distance, which downstream synchronization
    treats as distance 1 (the strongest, serializing constraint).

    Terminology follows the paper: a dependence is lexically forward
    ([LFD]) when its source statement occurs textually before its sink
    statement, and lexically backward ([LBD]) otherwise — including a
    statement depending on itself. *)

module Ast := Isched_frontend.Ast

type kind = Flow | Anti | Output

type distance =
  | Dist of int  (** constant distance; [Dist 0] is loop-independent *)
  | Unknown  (** carried, distance not constant/analyzable *)

type lexical = LFD | LBD

type t = {
  kind : kind;
  src : Access.t;  (** the access that executes first *)
  snk : Access.t;
  distance : distance;
  lexical : lexical;
}

(** [carried d] is true when the dependence crosses iterations. *)
val carried : t -> bool

(** [sync_distance d] is the distance used for [Wait_Signal]:
    the constant distance, or 1 for [Unknown]. *)
val sync_distance : t -> int

(** [analyze l] computes all dependences of the loop body, carried and
    loop-independent, deduplicated per
    (kind, source access, sink access). The result is deterministic and
    sorted by (source stmt, sink stmt, kind, distance). *)
val analyze : Ast.loop -> t list

(** [carried_deps l] is [analyze] restricted to carried dependences. *)
val carried_deps : Ast.loop -> t list

(** [is_doall l] is true when the loop has no carried dependence — the
    Parafrase-surrogate test for running it as a DOALL. *)
val is_doall : Ast.loop -> bool

val kind_name : kind -> string
val pp : Format.formatter -> t -> unit
val to_string : t -> string
