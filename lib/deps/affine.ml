module Ast = Isched_frontend.Ast

type t = { coef : int; off : int }

let const n = { coef = 0; off = n }
let ivar = { coef = 1; off = 0 }

let rec of_expr (e : Ast.expr) =
  match e with
  | Ast.Num x ->
    if Float.is_integer x && Float.abs x < 1e9 then Some (const (int_of_float x)) else None
  | Ast.Ivar -> Some ivar
  | Ast.Scalar _ | Ast.Aref _ -> None
  | Ast.Neg a -> (
    match of_expr a with Some { coef; off } -> Some { coef = -coef; off = -off } | None -> None)
  | Ast.Bin (op, a, b) -> (
    match (of_expr a, of_expr b) with
    | Some x, Some y -> (
      match op with
      | Ast.Add -> Some { coef = x.coef + y.coef; off = x.off + y.off }
      | Ast.Sub -> Some { coef = x.coef - y.coef; off = x.off - y.off }
      | Ast.Mul ->
        if x.coef = 0 then Some { coef = x.off * y.coef; off = x.off * y.off }
        else if y.coef = 0 then Some { coef = y.off * x.coef; off = y.off * x.off }
        else None
      | Ast.Div -> None)
    | _ -> None)

let eval t i = (t.coef * i) + t.off

let equal a b = a.coef = b.coef && a.off = b.off

let to_string t =
  match (t.coef, t.off) with
  | 0, o -> string_of_int o
  | 1, 0 -> "I"
  | 1, o when o > 0 -> Printf.sprintf "I+%d" o
  | 1, o -> Printf.sprintf "I%d" o
  | c, 0 -> Printf.sprintf "%d*I" c
  | c, o when o > 0 -> Printf.sprintf "%d*I+%d" c o
  | c, o -> Printf.sprintf "%d*I%d" c o

let pp ppf t = Format.pp_print_string ppf (to_string t)

let to_expr t =
  let open Ast in
  match (t.coef, t.off) with
  | 0, o -> Num (float_of_int o)
  | 1, 0 -> Ivar
  | 1, o when o > 0 -> Bin (Add, Ivar, Num (float_of_int o))
  | 1, o -> Bin (Sub, Ivar, Num (float_of_int (-o)))
  | c, 0 -> Bin (Mul, Num (float_of_int c), Ivar)
  | c, o when o > 0 -> Bin (Add, Bin (Mul, Num (float_of_int c), Ivar), Num (float_of_int o))
  | c, o -> Bin (Sub, Bin (Mul, Num (float_of_int c), Ivar), Num (float_of_int (-o)))
