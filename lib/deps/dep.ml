module Ast = Isched_frontend.Ast

type kind = Flow | Anti | Output
type distance = Dist of int | Unknown
type lexical = LFD | LBD

type t = {
  kind : kind;
  src : Access.t;
  snk : Access.t;
  distance : distance;
  lexical : lexical;
}

let carried d = match d.distance with Dist 0 -> false | Dist _ | Unknown -> true

let sync_distance d = match d.distance with Dist n when n >= 1 -> n | Dist _ -> 0 | Unknown -> 1

let kind_name = function Flow -> "flow" | Anti -> "anti" | Output -> "output"

(* Intra-iteration execution order of two accesses. *)
let intra_before (a : Access.t) (b : Access.t) =
  a.stmt < b.stmt || (a.stmt = b.stmt && a.idx < b.idx)

let lexical_of ~(src : Access.t) ~(snk : Access.t) =
  if src.stmt < snk.stmt then LFD else LBD

let dep_kind ~(src : Access.t) ~(snk : Access.t) =
  match (src.is_write, snk.is_write) with
  | true, false -> Some Flow
  | false, true -> Some Anti
  | true, true -> Some Output
  | false, false -> None

let make ~src ~snk ~distance =
  match dep_kind ~src ~snk with
  | None -> None
  | Some kind -> Some { kind; src; snk; distance; lexical = lexical_of ~src ~snk }

(* Largest iteration space we enumerate exactly; beyond it unequal-
   coefficient subscript pairs degrade to Unknown (still safe). *)
let enumeration_limit = 4096

(* Dependences from access [a] to access [b] (a executes first). *)
let deps_between (l : Ast.loop) (a : Access.t) (b : Access.t) =
  let span = l.hi - l.lo in
  if span < 0 then []
  else begin
    match (a.affine, b.affine) with
    | Some fa, Some fb when fa.Affine.coef = fb.Affine.coef && fa.Affine.coef <> 0 ->
      (* c*i1 + oa = c*i2 + ob  =>  i2 - i1 = (oa - ob) / c *)
      let c = fa.Affine.coef in
      let num = fa.Affine.off - fb.Affine.off in
      if num mod c <> 0 then []
      else begin
        let delta = num / c in
        if delta > span || delta < 0 then []
        else if delta = 0 && not (intra_before a b) then []
        else
          match make ~src:a ~snk:b ~distance:(Dist delta) with
          | Some d -> [ d ]
          | None -> []
      end
    | Some fa, Some fb when fa.Affine.coef = 0 && fb.Affine.coef = 0 ->
      (* Two constant subscripts: same cell every iteration. *)
      if fa.Affine.off <> fb.Affine.off then []
      else begin
        let acc = ref [] in
        (if span >= 1 then
           match make ~src:a ~snk:b ~distance:Unknown with
           | Some d -> acc := d :: !acc
           | None -> ());
        (if intra_before a b then
           match make ~src:a ~snk:b ~distance:(Dist 0) with
           | Some d -> acc := d :: !acc
           | None -> ());
        !acc
      end
    | Some fa, Some fb when span <= enumeration_limit ->
      (* Unequal coefficients: enumerate the bounded iteration space and
         collect the exact set of (i1, i2) collisions. *)
      let cb = fb.Affine.coef in
      let deltas = Hashtbl.create 8 in
      let any_zero_intra = ref false in
      for i1 = l.lo to l.hi do
        let v = Affine.eval fa i1 in
        (* Solve cb*i2 + ob = v. *)
        if cb = 0 then begin
          if fb.Affine.off = v then begin
            (* b touches this cell every iteration: all distances. *)
            if span >= 1 then Hashtbl.replace deltas 1 ();
            if span >= 2 then Hashtbl.replace deltas 2 ()
          end
        end
        else begin
          let num = v - fb.Affine.off in
          if num mod cb = 0 then begin
            let i2 = num / cb in
            if i2 >= l.lo && i2 <= l.hi then begin
              let d = i2 - i1 in
              if d > 0 then Hashtbl.replace deltas d ()
              else if d = 0 && intra_before a b then any_zero_intra := true
            end
          end
        end
      done;
      let acc = ref [] in
      (if !any_zero_intra then
         match make ~src:a ~snk:b ~distance:(Dist 0) with
         | Some d -> acc := d :: !acc
         | None -> ());
      (match Hashtbl.length deltas with
      | 0 -> ()
      | 1 ->
        let d = Hashtbl.fold (fun k () _ -> k) deltas 0 in
        (match make ~src:a ~snk:b ~distance:(Dist d) with
        | Some dep -> acc := dep :: !acc
        | None -> ())
      | _ -> (
        match make ~src:a ~snk:b ~distance:Unknown with
        | Some dep -> acc := dep :: !acc
        | None -> ()));
      !acc
    | _ ->
      (* Not analyzable (non-affine subscript, scalar, or the iteration
         space is too large to enumerate): conservative. *)
      let acc = ref [] in
      (if span >= 1 then
         match make ~src:a ~snk:b ~distance:Unknown with
         | Some d -> acc := d :: !acc
         | None -> ());
      (if intra_before a b then
         match make ~src:a ~snk:b ~distance:(Dist 0) with
         | Some d -> acc := d :: !acc
         | None -> ());
      !acc
  end

let dep_order d1 d2 =
  let key d =
    ( d.src.Access.stmt,
      d.snk.Access.stmt,
      (match d.kind with Flow -> 0 | Anti -> 1 | Output -> 2),
      (match d.distance with Dist n -> n | Unknown -> max_int),
      d.src.Access.idx,
      d.snk.Access.idx )
  in
  compare (key d1) (key d2)

let analyze (l : Ast.loop) =
  let accesses = Array.of_list (Access.of_loop l) in
  let n = Array.length accesses in
  let out = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let a = accesses.(i) and b = accesses.(j) in
      if a.Access.target = b.Access.target && a.Access.is_array = b.Access.is_array
         && (a.Access.is_write || b.Access.is_write)
      then out := deps_between l a b @ !out
    done
  done;
  List.sort_uniq dep_order !out

let carried_deps l = List.filter carried (analyze l)
let is_doall l = carried_deps l = []

let pp ppf d =
  let dist =
    match d.distance with Dist n -> string_of_int n | Unknown -> "*"
  in
  let lex = match d.lexical with LFD -> "LFD" | LBD -> "LBD" in
  let tag = if carried d then Printf.sprintf "carried d=%s %s" dist lex else "loop-independent" in
  Format.fprintf ppf "%s %s: S%d -> S%d on %s (%s)" (kind_name d.kind)
    (if d.src.Access.is_array then "dep" else "scalar dep")
    (d.src.Access.stmt + 1) (d.snk.Access.stmt + 1) d.src.Access.target tag

let to_string d = Format.asprintf "%a" pp d
