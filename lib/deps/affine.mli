(** Affine forms [coef * I + off] of array subscripts.

    Dependence distances are exact for subscripts that normalize to this
    form; everything else is treated conservatively (see {!Dep}). *)

module Ast := Isched_frontend.Ast

type t = { coef : int; off : int }

(** [of_expr e] normalizes [e] to an affine form when possible.
    Handles constants, [I], negation, addition, subtraction and
    multiplication by constant subexpressions (e.g. [2*(I+1)-3]).
    Division and references to scalars or arrays yield [None];
    non-integral constants yield [None]. *)
val of_expr : Ast.expr -> t option

(** [eval t i] is the subscript value at iteration [i]. *)
val eval : t -> int -> int

(** [const n] / [ivar] are the forms [n] and [I]. *)
val const : int -> t

val ivar : t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** [to_expr t] rebuilds a canonical AST expression. *)
val to_expr : t -> Ast.expr
