(** Semantic checks run after parsing and before any analysis.

    A loop is well-formed when:
    - it has at least one statement and a non-empty iteration range;
    - every name is used consistently as an array (always subscripted) or
      as a scalar (never subscripted), and no name is both;
    - the loop variable is never assigned inside the body;
    - statement labels are unique;
    - no array is subscripted by itself (no [A[A[I]]]), which the code
      generator does not support. *)

type error = { loop : string; message : string }

(** [check l] returns all well-formedness violations (empty when the
    loop is valid). *)
val check : Ast.loop -> error list

(** [check_exn l] raises [Invalid_argument] with a readable summary when
    [check l] is non-empty. *)
val check_exn : Ast.loop -> unit

val pp_error : Format.formatter -> error -> unit
