exception Error of { line : int; col : int; message : string }

type state = { mutable toks : Lexer.spanned list; mutable index_var : string option }

let err (sp : Lexer.spanned) fmt =
  Printf.ksprintf (fun message -> raise (Error { line = sp.line; col = sp.col; message })) fmt

let peek st = match st.toks with [] -> assert false | sp :: _ -> sp

let advance st = match st.toks with [] -> assert false | _ :: rest -> st.toks <- rest

let next st =
  let sp = peek st in
  advance st;
  sp

let expect st tok what =
  let sp = next st in
  if sp.tok <> tok then err sp "expected %s, found %s" what (Lexer.token_name sp.tok)

let skip_newlines st =
  while (peek st).tok = Lexer.TNewline do
    advance st
  done

let ident st what =
  let sp = next st in
  match sp.tok with
  | Lexer.TIdent s -> s
  | t -> err sp "expected %s, found %s" what (Lexer.token_name t)

let int_lit st what =
  let sp = next st in
  match sp.tok with
  | Lexer.TInt i -> i
  | Lexer.TMinus -> (
    let sp2 = next st in
    match sp2.tok with
    | Lexer.TInt i -> -i
    | t -> err sp2 "expected %s, found %s" what (Lexer.token_name t))
  | t -> err sp "expected %s, found %s" what (Lexer.token_name t)

(* --- expressions --- *)

let rec parse_expr st =
  let lhs = parse_term st in
  parse_expr_rest st lhs

and parse_expr_rest st lhs =
  match (peek st).tok with
  | Lexer.TPlus ->
    advance st;
    let rhs = parse_term st in
    parse_expr_rest st (Ast.Bin (Ast.Add, lhs, rhs))
  | Lexer.TMinus ->
    advance st;
    let rhs = parse_term st in
    parse_expr_rest st (Ast.Bin (Ast.Sub, lhs, rhs))
  | _ -> lhs

and parse_term st =
  let lhs = parse_factor st in
  parse_term_rest st lhs

and parse_term_rest st lhs =
  match (peek st).tok with
  | Lexer.TStar ->
    advance st;
    let rhs = parse_factor st in
    parse_term_rest st (Ast.Bin (Ast.Mul, lhs, rhs))
  | Lexer.TSlash ->
    advance st;
    let rhs = parse_factor st in
    parse_term_rest st (Ast.Bin (Ast.Div, lhs, rhs))
  | _ -> lhs

and parse_factor st =
  let sp = next st in
  match sp.tok with
  | Lexer.TInt i -> Ast.Num (float_of_int i)
  | Lexer.TFloat f -> Ast.Num f
  | Lexer.TMinus -> Ast.Neg (parse_factor st)
  | Lexer.TLparen ->
    let e = parse_expr st in
    expect st Lexer.TRparen "')'";
    e
  | Lexer.TIdent name -> (
    match (peek st).tok with
    | Lexer.TLbrack ->
      advance st;
      let sub = parse_expr st in
      expect st Lexer.TRbrack "']'";
      Ast.Aref (name, sub)
    | Lexer.TLparen ->
      advance st;
      let sub = parse_expr st in
      expect st Lexer.TRparen "')'";
      Ast.Aref (name, sub)
    | _ -> if st.index_var = Some name then Ast.Ivar else Ast.Scalar name)
  | t -> err sp "expected an expression, found %s" (Lexer.token_name t)

let parse_relop st =
  let sp = next st in
  match sp.tok with
  | Lexer.TLt -> Ast.Lt
  | Lexer.TLe -> Ast.Le
  | Lexer.TGt -> Ast.Gt
  | Lexer.TGe -> Ast.Ge
  | Lexer.TEq -> Ast.Eq
  | Lexer.TNe -> Ast.Ne
  | t -> err sp "expected a comparison operator, found %s" (Lexer.token_name t)

(* --- statements --- *)

let parse_lhs st =
  let sp = peek st in
  let name = ident st "an assignment target" in
  match (peek st).tok with
  | Lexer.TLbrack ->
    advance st;
    let sub = parse_expr st in
    expect st Lexer.TRbrack "']'";
    Ast.Larr (name, sub)
  | Lexer.TLparen ->
    advance st;
    let sub = parse_expr st in
    expect st Lexer.TRparen "')'";
    Ast.Larr (name, sub)
  | Lexer.TAssign -> Ast.Lscalar name
  | t -> err sp "expected '[', '(' or '=' after %S, found %s" name (Lexer.token_name t)

let parse_stmt st ~default_label =
  (* Optional label: IDENT ':' *)
  let label =
    match st.toks with
    | { tok = Lexer.TIdent l; _ } :: { tok = Lexer.TColon; _ } :: rest ->
      st.toks <- rest;
      l
    | _ -> default_label
  in
  let guard =
    if (peek st).tok = Lexer.TIf then begin
      advance st;
      expect st Lexer.TLparen "'(' after IF";
      let lhs = parse_expr st in
      let rel = parse_relop st in
      let rhs = parse_expr st in
      expect st Lexer.TRparen "')' closing the IF condition";
      Some { Ast.rel; lhs; rhs }
    end
    else None
  in
  let lhs = parse_lhs st in
  expect st Lexer.TAssign "'='";
  let rhs = parse_expr st in
  { Ast.label; guard; lhs; rhs }

let parse_loop_at st ~name =
  let sp = peek st in
  let kind =
    match sp.tok with
    | Lexer.TDo -> Ast.Do
    | Lexer.TDoacross -> Ast.Doacross
    | t -> err sp "expected DO or DOACROSS, found %s" (Lexer.token_name t)
  in
  advance st;
  let index = ident st "the loop variable" in
  expect st Lexer.TAssign "'='";
  let lo = int_lit st "the lower bound" in
  expect st Lexer.TComma "','";
  let hi = int_lit st "the upper bound" in
  expect st Lexer.TNewline "a newline after the loop header";
  st.index_var <- Some index;
  let body = ref [] in
  let count = ref 0 in
  skip_newlines st;
  while (peek st).tok <> Lexer.TEnddo do
    incr count;
    let s = parse_stmt st ~default_label:(Printf.sprintf "S%d" !count) in
    body := s :: !body;
    (match (peek st).tok with
    | Lexer.TNewline -> advance st
    | Lexer.TEnddo -> ()
    | t -> err (peek st) "expected a newline or ENDDO, found %s" (Lexer.token_name t));
    skip_newlines st
  done;
  advance st (* ENDDO *);
  st.index_var <- None;
  Ast.make_loop ~kind ~index ~lo ~hi ~body:(List.rev !body) ~name

let parse ?(name = "loop") src =
  Isched_obs.Span.with_ ~name:"frontend.parse" (fun () ->
      let st = { toks = Lexer.tokenize src; index_var = None } in
      let loops = ref [] in
      let count = ref 0 in
      skip_newlines st;
      while (peek st).tok <> Lexer.TEof do
        incr count;
        let l = parse_loop_at st ~name:(Printf.sprintf "%s.L%d" name !count) in
        loops := l :: !loops;
        skip_newlines st
      done;
      List.rev !loops)

let parse_loop ?(name = "loop") src =
  match parse ~name src with
  | [ l ] -> Ast.with_name l name
  | ls ->
    raise
      (Error { line = 1; col = 1; message = Printf.sprintf "expected exactly one loop, found %d" (List.length ls) })
