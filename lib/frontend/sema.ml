type error = { loop : string; message : string }

type usage = Array_use | Scalar_use

let pp_error ppf e = Format.fprintf ppf "%s: %s" e.loop e.message

let check (l : Ast.loop) =
  let errors = ref [] in
  let add fmt = Printf.ksprintf (fun message -> errors := { loop = l.name; message } :: !errors) fmt in
  if l.body = [] then add "loop body is empty";
  if Ast.iterations l = 0 then add "iteration range %d..%d is empty" l.lo l.hi;
  (* Name usage consistency. *)
  let usage : (string, usage) Hashtbl.t = Hashtbl.create 16 in
  let note name u =
    match Hashtbl.find_opt usage name with
    | None -> Hashtbl.add usage name u
    | Some prev ->
      if prev <> u then
        add "name %S is used both as an array and as a scalar" name
  in
  (* [depth] counts subscript nesting: an array reference is allowed in a
     subscript (index arrays, the "others" DOACROSS category), but not
     inside the subscript of such a reference. *)
  let rec walk_expr (e : Ast.expr) ~depth =
    match e with
    | Ast.Num _ | Ast.Ivar -> ()
    | Ast.Scalar s ->
      if s = l.index then () (* parser maps index to Ivar, but be safe *)
      else note s Scalar_use
    | Ast.Aref (a, sub) ->
      note a Array_use;
      if depth >= 2 then add "array %S is subscripted deeper than one indirection level" a;
      walk_expr sub ~depth:(depth + 1)
    | Ast.Bin (_, x, y) ->
      walk_expr x ~depth;
      walk_expr y ~depth
    | Ast.Neg x -> walk_expr x ~depth
  in
  let walk_top e = walk_expr e ~depth:0 in
  let seen_labels = Hashtbl.create 16 in
  List.iter
    (fun (s : Ast.stmt) ->
      if Hashtbl.mem seen_labels s.label then add "duplicate statement label %S" s.label
      else Hashtbl.add seen_labels s.label ();
      (match s.guard with
      | Some c ->
        walk_top c.lhs;
        walk_top c.rhs
      | None -> ());
      (match s.lhs with
      | Ast.Larr (a, sub) ->
        note a Array_use;
        if a = l.index then add "loop variable %S cannot be an array" l.index;
        walk_expr sub ~depth:1
      | Ast.Lscalar name ->
        if name = l.index then add "loop variable %S is assigned in the body" l.index
        else note name Scalar_use);
      walk_top s.rhs)
    l.body;
  List.rev !errors

let check_exn l =
  match Isched_obs.Span.with_ ~name:"frontend.sema" (fun () -> check l) with
  | [] -> ()
  | errs ->
    let msgs = List.map (fun e -> Format.asprintf "%a" pp_error e) errs in
    invalid_arg (String.concat "; " msgs)
