type relop = Lt | Le | Gt | Ge | Eq | Ne
type binop = Add | Sub | Mul | Div

type expr =
  | Num of float
  | Ivar
  | Scalar of string
  | Aref of string * expr
  | Bin of binop * expr * expr
  | Neg of expr

type cond = { rel : relop; lhs : expr; rhs : expr }
type lhs = Larr of string * expr | Lscalar of string

type stmt = { label : string; guard : cond option; lhs : lhs; rhs : expr }
type loop_kind = Do | Doacross

type loop = {
  kind : loop_kind;
  index : string;
  lo : int;
  hi : int;
  body : stmt list;
  name : string;
  digest : int;
      (* Deep structural hash of every other field, fixed at
         construction.  Downstream memo tables (Pipeline.prepare) key on
         whole loops tens of thousands of times per bench run; the
         default polymorphic hash only samples ~10 nodes of the AST and
         collides across generated corpus loops, which degenerates those
         tables into long chains compared with full structural equality.
         Build loops through [make_loop]/[with_body]/[with_name] so the
         digest stays consistent with structural equality: equal loops
         always carry equal digests. *)
}

(* [hash_param] with large bounds walks the whole body instead of the
   first handful of nodes, so distinct corpus loops get distinct
   digests.  Deterministic across runs (no randomized seed). *)
let compute_digest ~kind ~index ~lo ~hi ~body ~name =
  Hashtbl.hash_param 1000 10000 (kind, index, lo, hi, body, name)

let make_loop ~kind ~index ~lo ~hi ~body ~name =
  { kind; index; lo; hi; body; name; digest = compute_digest ~kind ~index ~lo ~hi ~body ~name }

let with_body l body =
  make_loop ~kind:l.kind ~index:l.index ~lo:l.lo ~hi:l.hi ~body ~name:l.name

let with_name l name =
  make_loop ~kind:l.kind ~index:l.index ~lo:l.lo ~hi:l.hi ~body:l.body ~name

let iterations l = max 0 (l.hi - l.lo + 1)

let rec fold_expr f acc e =
  let acc = f acc e in
  match e with
  | Num _ | Ivar | Scalar _ -> acc
  | Aref (_, sub) -> fold_expr f acc sub
  | Bin (_, a, b) -> fold_expr f (fold_expr f acc a) b
  | Neg a -> fold_expr f acc a

let arrays_read e =
  fold_expr (fun acc e -> match e with Aref (a, sub) -> (a, sub) :: acc | _ -> acc) [] e
  |> List.rev

let scalars_read e =
  fold_expr (fun acc e -> match e with Scalar s -> s :: acc | _ -> acc) [] e |> List.rev

let cond_exprs (c : cond) = [ c.lhs; c.rhs ]

let stmt_arrays_read s =
  let guard_reads =
    match s.guard with None -> [] | Some c -> List.concat_map arrays_read (cond_exprs c)
  in
  let sub_reads = match s.lhs with Larr (_, sub) -> arrays_read sub | Lscalar _ -> [] in
  guard_reads @ sub_reads @ arrays_read s.rhs

let stmt_scalars_read s =
  let guard_reads =
    match s.guard with None -> [] | Some c -> List.concat_map scalars_read (cond_exprs c)
  in
  let sub_reads = match s.lhs with Larr (_, sub) -> scalars_read sub | Lscalar _ -> [] in
  guard_reads @ sub_reads @ scalars_read s.rhs

let rec rename_scalar ~from ~into e =
  match e with
  | Scalar s when s = from -> into
  | Num _ | Ivar | Scalar _ -> e
  | Aref (a, sub) -> Aref (a, rename_scalar ~from ~into sub)
  | Bin (op, a, b) -> Bin (op, rename_scalar ~from ~into a, rename_scalar ~from ~into b)
  | Neg a -> Neg (rename_scalar ~from ~into a)

let relop_name = function
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="

let binop_name = function Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/"
let prec = function Add | Sub -> 1 | Mul | Div -> 2

let pp_num ppf x =
  if Float.is_integer x && Float.abs x < 1e15 then Format.fprintf ppf "%d" (int_of_float x)
  else Format.fprintf ppf "%g" x

let rec pp_expr_prec p ppf e =
  match e with
  | Num x -> pp_num ppf x
  | Ivar -> Format.pp_print_string ppf "I"
  | Scalar s -> Format.pp_print_string ppf s
  | Aref (a, sub) -> Format.fprintf ppf "%s[%a]" a (pp_expr_prec 0) sub
  | Neg a -> Format.fprintf ppf "-%a" (pp_expr_prec 3) a
  | Bin (op, a, b) ->
    let q = prec op in
    let body ppf () =
      Format.fprintf ppf "%a %s %a" (pp_expr_prec q) a (binop_name op) (pp_expr_prec (q + 1)) b
    in
    if q < p then Format.fprintf ppf "(%a)" body () else body ppf ()

let pp_expr ppf e = pp_expr_prec 0 ppf e

let pp_lhs ppf = function
  | Larr (a, sub) -> Format.fprintf ppf "%s[%a]" a pp_expr sub
  | Lscalar s -> Format.pp_print_string ppf s

let pp_stmt ppf s =
  Format.fprintf ppf "%s: " s.label;
  (match s.guard with
  | Some c ->
    Format.fprintf ppf "IF (%a %s %a) " pp_expr c.lhs (relop_name c.rel) pp_expr c.rhs
  | None -> ());
  Format.fprintf ppf "%a = %a" pp_lhs s.lhs pp_expr s.rhs

let pp_loop ppf l =
  let kw = match l.kind with Do -> "DO" | Doacross -> "DOACROSS" in
  Format.fprintf ppf "%s %s = %d, %d@." kw l.index l.lo l.hi;
  List.iter (fun s -> Format.fprintf ppf "  %a@." pp_stmt s) l.body;
  Format.fprintf ppf "ENDDO@."

let loop_to_string l = Format.asprintf "%a" pp_loop l

let source_lines l = List.length l.body + 2

let rec equal_expr a b =
  match (a, b) with
  | Num x, Num y -> Float.equal x y
  | Ivar, Ivar -> true
  | Scalar x, Scalar y -> String.equal x y
  | Aref (x, sx), Aref (y, sy) -> String.equal x y && equal_expr sx sy
  | Bin (o1, a1, b1), Bin (o2, a2, b2) -> o1 = o2 && equal_expr a1 a2 && equal_expr b1 b2
  | Neg x, Neg y -> equal_expr x y
  | (Num _ | Ivar | Scalar _ | Aref _ | Bin _ | Neg _), _ -> false
