(** Hand-written lexer for the mini-Fortran language.

    Newlines are significant (they terminate statements); ['!'] and ['#']
    start comments that run to the end of the line.  Array subscripts may
    use brackets ([A\[I\]], the paper's notation) or parentheses
    ([A(I)], Fortran's). *)

type token =
  | TDo
  | TDoacross
  | TEnddo
  | TIf
  | TIdent of string
  | TInt of int
  | TFloat of float
  | TAssign  (** [=] *)
  | TComma
  | TColon
  | TLparen
  | TRparen
  | TLbrack
  | TRbrack
  | TPlus
  | TMinus
  | TStar
  | TSlash
  | TLt
  | TLe
  | TGt
  | TGe
  | TEq  (** [==] *)
  | TNe  (** [<>] or [/=] ([!] starts a comment) *)
  | TNewline
  | TEof

exception Error of { line : int; col : int; message : string }

(** A token together with its source position (1-based). *)
type spanned = { tok : token; line : int; col : int }

(** [tokenize src] lexes the whole input.  Consecutive newlines are
    collapsed; the result always ends with a single [TEof].
    Raises {!Error} on an illegal character or malformed number. *)
val tokenize : string -> spanned list

(** [token_name t] is a short description for diagnostics. *)
val token_name : token -> string
