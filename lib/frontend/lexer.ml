type token =
  | TDo
  | TDoacross
  | TEnddo
  | TIf
  | TIdent of string
  | TInt of int
  | TFloat of float
  | TAssign
  | TComma
  | TColon
  | TLparen
  | TRparen
  | TLbrack
  | TRbrack
  | TPlus
  | TMinus
  | TStar
  | TSlash
  | TLt
  | TLe
  | TGt
  | TGe
  | TEq
  | TNe
  | TNewline
  | TEof

exception Error of { line : int; col : int; message : string }

type spanned = { tok : token; line : int; col : int }

let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_digit c = c >= '0' && c <= '9'
let is_alnum c = is_alpha c || is_digit c

let keyword s =
  match String.uppercase_ascii s with
  | "DO" -> Some TDo
  | "DOACROSS" -> Some TDoacross
  | "ENDDO" | "END_DO" | "END_DOACROSS" | "ENDDOACROSS" -> Some TEnddo
  | "IF" -> Some TIf
  | _ -> None

let tokenize src =
  let n = String.length src in
  let out = Isched_util.Vec.create () in
  let line = ref 1 and col = ref 1 in
  let pos = ref 0 in
  let err message = raise (Error { line = !line; col = !col; message }) in
  let emit tok l c = Isched_util.Vec.push out { tok; line = l; col = c } in
  let advance () =
    (if !pos < n then
       match src.[!pos] with
       | '\n' ->
         incr line;
         col := 1
       | _ -> incr col);
    incr pos
  in
  let peek k = if !pos + k < n then Some src.[!pos + k] else None in
  while !pos < n do
    let c = src.[!pos] in
    let l0 = !line and c0 = !col in
    if c = '\n' then begin
      (* Collapse runs of blank lines into a single TNewline. *)
      (match Isched_util.Vec.last out with
      | exception Not_found -> ()
      | { tok = TNewline; _ } -> ()
      | _ -> emit TNewline l0 c0);
      advance ()
    end
    else if c = ' ' || c = '\t' || c = '\r' then advance ()
    else if c = '!' || c = '#' then
      while !pos < n && src.[!pos] <> '\n' do
        advance ()
      done
    else if is_alpha c then begin
      let start = !pos in
      while !pos < n && is_alnum src.[!pos] do
        advance ()
      done;
      let word = String.sub src start (!pos - start) in
      match keyword word with Some t -> emit t l0 c0 | None -> emit (TIdent word) l0 c0
    end
    else if is_digit c then begin
      let start = !pos in
      while !pos < n && is_digit src.[!pos] do
        advance ()
      done;
      let is_float = peek 0 = Some '.' && (match peek 1 with Some d -> is_digit d | None -> false) in
      if is_float then begin
        advance ();
        while !pos < n && is_digit src.[!pos] do
          advance ()
        done;
        let text = String.sub src start (!pos - start) in
        match float_of_string_opt text with
        | Some f -> emit (TFloat f) l0 c0
        | None -> err (Printf.sprintf "malformed number %S" text)
      end
      else begin
        let text = String.sub src start (!pos - start) in
        match int_of_string_opt text with
        | Some i -> emit (TInt i) l0 c0
        | None -> err (Printf.sprintf "malformed integer %S" text)
      end
    end
    else begin
      let two t =
        advance ();
        advance ();
        emit t l0 c0
      in
      let one t =
        advance ();
        emit t l0 c0
      in
      match (c, peek 1) with
      | '=', Some '=' -> two TEq
      | '!', _ -> assert false (* handled as comment above *)
      | '<', Some '>' -> two TNe
      | '<', Some '=' -> two TLe
      | '>', Some '=' -> two TGe
      | '/', Some '=' -> two TNe
      | '=', _ -> one TAssign
      | ',', _ -> one TComma
      | ':', _ -> one TColon
      | '(', _ -> one TLparen
      | ')', _ -> one TRparen
      | '[', _ -> one TLbrack
      | ']', _ -> one TRbrack
      | '+', _ -> one TPlus
      | '-', _ -> one TMinus
      | '*', _ -> one TStar
      | '/', _ -> one TSlash
      | '<', _ -> one TLt
      | '>', _ -> one TGt
      | _ -> err (Printf.sprintf "illegal character %C" c)
    end
  done;
  (match Isched_util.Vec.last out with
  | { tok = TNewline; _ } | (exception Not_found) -> ()
  | _ -> emit TNewline !line !col);
  emit TEof !line !col;
  Isched_util.Vec.to_list out

let token_name = function
  | TDo -> "DO"
  | TDoacross -> "DOACROSS"
  | TEnddo -> "ENDDO"
  | TIf -> "IF"
  | TIdent s -> Printf.sprintf "identifier %S" s
  | TInt i -> Printf.sprintf "integer %d" i
  | TFloat f -> Printf.sprintf "number %g" f
  | TAssign -> "'='"
  | TComma -> "','"
  | TColon -> "':'"
  | TLparen -> "'('"
  | TRparen -> "')'"
  | TLbrack -> "'['"
  | TRbrack -> "']'"
  | TPlus -> "'+'"
  | TMinus -> "'-'"
  | TStar -> "'*'"
  | TSlash -> "'/'"
  | TLt -> "'<'"
  | TLe -> "'<='"
  | TGt -> "'>'"
  | TGe -> "'>='"
  | TEq -> "'=='"
  | TNe -> "'<>'"
  | TNewline -> "newline"
  | TEof -> "end of input"
