(** Abstract syntax of the mini-Fortran DO-loop language.

    The language covers what the paper's pipeline consumes: singly-nested
    [DO]/[DOACROSS] loops over an integer index, whose bodies are
    (optionally guarded) assignments to array elements or scalars, with
    arithmetic over array references, scalars, the loop index and
    constants.  This is the shape of the loops Parafrase leaves behind
    and of the paper's running example (Fig. 1). *)

type relop = Lt | Le | Gt | Ge | Eq | Ne

type binop = Add | Sub | Mul | Div

type expr =
  | Num of float
  | Ivar  (** the loop index *)
  | Scalar of string
  | Aref of string * expr  (** array element; the subscript is any expression *)
  | Bin of binop * expr * expr
  | Neg of expr

type cond = { rel : relop; lhs : expr; rhs : expr }

type lhs = Larr of string * expr | Lscalar of string

type stmt = {
  label : string;  (** e.g. ["S1"]; auto-generated when absent in source *)
  guard : cond option;  (** [IF (cond) stmt] *)
  lhs : lhs;
  rhs : expr;
}

type loop_kind = Do | Doacross

type loop = {
  kind : loop_kind;
  index : string;  (** loop-variable name *)
  lo : int;
  hi : int;
  body : stmt list;
  name : string;  (** loop identifier for reports *)
  digest : int;
      (** deep structural hash of the other fields, fixed at
          construction; memo tables keyed on loops hash on this instead
          of re-walking the AST.  Maintained by the constructors below:
          structurally equal loops carry equal digests. *)
}

(** [make_loop] computes the digest; use it (or [with_body]/[with_name])
    instead of a record literal so the digest stays consistent with
    structural equality. *)
val make_loop :
  kind:loop_kind -> index:string -> lo:int -> hi:int -> body:stmt list -> name:string -> loop

(** [with_body l body] is [l] with a new body and a recomputed digest. *)
val with_body : loop -> stmt list -> loop

(** [with_name l name] is [l] renamed, with a recomputed digest. *)
val with_name : loop -> string -> loop

(** [iterations l] is [hi - lo + 1] (0 when empty). *)
val iterations : loop -> int

(** Structural traversals over expressions. *)
val fold_expr : ('a -> expr -> 'a) -> 'a -> expr -> 'a

(** [arrays_read e] / [scalars_read e] collect reference names, with
    duplicates, in left-to-right order. *)
val arrays_read : expr -> (string * expr) list

val scalars_read : expr -> string list

(** [stmt_arrays_read s] includes the guard's reads. *)
val stmt_arrays_read : stmt -> (string * expr) list

val stmt_scalars_read : stmt -> string list

(** [rename_scalar ~from ~into e] substitutes an expression for every
    read of scalar [from] (used by induction-variable substitution). *)
val rename_scalar : from:string -> into:expr -> expr -> expr

(** Pretty-printing back to concrete syntax (round-trips through the
    parser). *)
val pp_expr : Format.formatter -> expr -> unit

val pp_stmt : Format.formatter -> stmt -> unit
val pp_loop : Format.formatter -> loop -> unit
val loop_to_string : loop -> string

(** [source_lines l] is the number of source lines the loop occupies when
    printed (header + statements + terminator), the unit used by the
    "lines parsed" rows of Table 1. *)
val source_lines : loop -> int

val equal_expr : expr -> expr -> bool
