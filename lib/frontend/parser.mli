(** Recursive-descent parser for the mini-Fortran language.

    Grammar (newline-terminated statements):
    {v
    file  ::= { loop }
    loop  ::= ("DO" | "DOACROSS") IDENT "=" INT "," INT NL
              { stmt NL }
              "ENDDO"
    stmt  ::= [ IDENT ":" ] [ "IF" "(" expr relop expr ")" ] lhs "=" expr
    lhs   ::= IDENT ( "[" expr "]" | "(" expr ")" ) | IDENT
    expr  ::= term { ("+"|"-") term }
    term  ::= factor { ("*"|"/") factor }
    factor::= NUM | IDENT [ subscript ] | "(" expr ")" | "-" factor
    v}
    Inside a loop, the loop-variable identifier parses to {!Ast.Ivar};
    unlabelled statements get labels [S1], [S2], ... by position. *)

exception Error of { line : int; col : int; message : string }

(** [parse ?name src] parses a whole file of loops.  [name] seeds the
    loop names ([<name>.L1], [<name>.L2], ...).  Raises {!Error} (or
    {!Lexer.Error}) on malformed input. *)
val parse : ?name:string -> string -> Ast.loop list

(** [parse_loop ?name src] parses exactly one loop; raises {!Error} when
    the file does not contain exactly one. *)
val parse_loop : ?name:string -> string -> Ast.loop
