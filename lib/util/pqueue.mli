(** Mutable binary max-heap keyed by an integer priority.

    The list scheduler keeps its ready set here: the element with the
    largest priority (critical-path length, with a deterministic
    tie-break on the element itself) is popped first. *)

type 'a t

(** [create ()] is an empty queue. *)
val create : unit -> 'a t

(** [is_empty q] tests emptiness. *)
val is_empty : 'a t -> bool

(** [length q] is the number of queued elements. *)
val length : 'a t -> int

(** [push q ~prio ~tie x] inserts [x]. Among equal [prio] the element
    with the smaller [tie] pops first (used for stable, deterministic
    schedules: ties break towards the original program order). *)
val push : 'a t -> prio:int -> tie:int -> 'a -> unit

(** [pop q] removes and returns the maximum-priority element.
    Raises [Not_found] if empty. *)
val pop : 'a t -> 'a

(** [peek q] returns the maximum-priority element without removing it.
    Raises [Not_found] if empty. *)
val peek : 'a t -> 'a

(** [to_list q] lists remaining elements in pop order; [q] is unchanged. *)
val to_list : 'a t -> 'a list
