type t = { parent : int array; rank : int array }

let create n = { parent = Array.init n (fun i -> i); rank = Array.make n 0 }

let rec find t x =
  let p = t.parent.(x) in
  if p = x then x
  else begin
    let r = find t p in
    t.parent.(x) <- r;
    r
  end

let union t x y =
  let rx = find t x and ry = find t y in
  if rx = ry then rx
  else if t.rank.(rx) < t.rank.(ry) then begin
    t.parent.(rx) <- ry;
    ry
  end
  else if t.rank.(rx) > t.rank.(ry) then begin
    t.parent.(ry) <- rx;
    rx
  end
  else begin
    t.parent.(ry) <- rx;
    t.rank.(rx) <- t.rank.(rx) + 1;
    rx
  end

let same t x y = find t x = find t y

let groups t =
  let n = Array.length t.parent in
  let tbl = Hashtbl.create 16 in
  for i = n - 1 downto 0 do
    let r = find t i in
    let prev = try Hashtbl.find tbl r with Not_found -> [] in
    Hashtbl.replace tbl r (i :: prev)
  done;
  Hashtbl.fold (fun r members acc -> (r, members) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
