module Span = Isched_obs.Span
module Counters = Isched_obs.Counters

(* Pool observability: how much work went through the pool, how deep
   the pending work was when each chunk was claimed, and how evenly the
   work spread over the participants ([pool.worker_tasks] gets one
   sample per participant per run — a tight distribution means good
   utilisation).  All cover the parallel path only; the [jobs <= 1]
   degenerate path is plain [List.map]. *)
let c_runs = Counters.counter "pool.runs"
let c_tasks = Counters.counter "pool.tasks"
let c_domains = Counters.counter "pool.domains_spawned"
let d_queue_depth = Counters.dist "pool.queue_depth"
let d_worker_tasks = Counters.dist "pool.worker_tasks"

let default = ref 1

let set_default_jobs n =
  if n < 1 then invalid_arg "Pool.set_default_jobs: jobs must be >= 1";
  default := n

let default_jobs () = !default
let recommended_jobs () = Domain.recommended_domain_count ()

(* [--jobs N] is a request, not a command: running more compute domains
   than the machine has cores buys no parallelism and pays for it in
   stop-the-world coordination — every minor GC must interrupt all N
   runnable domains, and on an oversubscribed box that is N context
   switches per collection.  Measured here (1-core container, tables +
   ablations corpus): jobs=2 1.55x, jobs=4 2.26x, jobs=8 3.14x slower
   than sequential with the cap off.  So the pool caps the participants
   of a run at the detected core count and parks the rest of the
   request.  Tests override the detection to exercise real multi-domain
   runs on any box. *)
let max_active_override = ref None

let set_max_active m =
  match m with
  | Some m when m < 1 -> invalid_arg "Pool.set_max_active: limit must be >= 1"
  | m -> max_active_override := m

let max_active () =
  match !max_active_override with Some m -> m | None -> Domain.recommended_domain_count ()

(* Indices are handed out in contiguous chunks, not one by one, so a
   run over thousands of cells costs a few dozen claims on the shared
   cursor instead of one contended fetch-and-add per cell.  The default
   grain splits the input into ~8 chunks per participant: coarse enough
   to amortize the claim, fine enough that an unlucky participant stuck
   with slow cells cannot serialize the tail of the run. *)
let grain = ref None

let set_grain g =
  match g with
  | Some g when g < 1 -> invalid_arg "Pool.set_grain: grain must be >= 1"
  | g -> grain := g

let grain_for ~jobs n =
  match !grain with Some g -> min g n | None -> max 1 (n / (8 * jobs))

(* --- the persistent worker pool ---

   Worker domains are spawned lazily on first parallel use, then parked
   on a condition variable between runs and reused: spawning a domain
   costs a stop-the-world handshake with every running domain, which is
   exactly the overhead that made per-call spawning scale negatively.
   The pool only ever grows, up to the largest [jobs - 1] requested;
   [shutdown] (registered [at_exit], callable from tests) joins
   everything and returns the pool to its initial state. *)

let pool_mutex = Mutex.create ()
let pool_cond = Condition.create ()
let pending : (unit -> unit) Queue.t = Queue.create ()

(* All three guarded by [pool_mutex]. *)
let workers : unit Domain.t list ref = ref []
let worker_count = ref 0
let stopping = ref false

(* A participant job parked on a sub-run fed to this same queue would
   deadlock once every worker does it, so nested calls from pooled jobs
   run inline instead (see [run_indexed]). *)
let in_pool_worker = Domain.DLS.new_key (fun () -> false)

let worker_main () =
  Domain.DLS.set in_pool_worker true;
  let rec loop () =
    Mutex.lock pool_mutex;
    while Queue.is_empty pending && not !stopping do
      Condition.wait pool_cond pool_mutex
    done;
    (* On shutdown the queue is drained first: jobs of an in-flight run
       still complete (their callers are waiting on the run, not on this
       domain). *)
    match Queue.take_opt pending with
    | None -> Mutex.unlock pool_mutex
    | Some job ->
      Mutex.unlock pool_mutex;
      (* Participant jobs capture their own exceptions into the run's
         result slots; this catch-all only shields the pool from a bug
         in the pool itself. *)
      (try job () with _ -> ());
      loop ()
  in
  loop ()

(* Grow the pool to [target] worker domains.  If the runtime refuses a
   spawn partway, the workers spawned so far stay parked in the pool —
   nothing leaks, nothing hangs — and the failure propagates with its
   backtrace. *)
let ensure_workers target =
  if target > 0 then begin
    Mutex.lock pool_mutex;
    let failure =
      try
        while !worker_count < target do
          let d = Domain.spawn worker_main in
          workers := d :: !workers;
          incr worker_count;
          Counters.incr c_domains
        done;
        None
      with e -> Some (e, Printexc.get_raw_backtrace ())
    in
    Mutex.unlock pool_mutex;
    match failure with
    | None -> ()
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  end

let submit job =
  Mutex.lock pool_mutex;
  Queue.add job pending;
  Condition.signal pool_cond;
  Mutex.unlock pool_mutex

let shutdown () =
  let ws =
    Mutex.lock pool_mutex;
    stopping := true;
    Condition.broadcast pool_cond;
    let ws = !workers in
    workers := [];
    worker_count := 0;
    Mutex.unlock pool_mutex;
    ws
  in
  List.iter Domain.join ws;
  Mutex.lock pool_mutex;
  stopping := false;
  Mutex.unlock pool_mutex

let () = at_exit shutdown

(* A failed task keeps the backtrace captured at the raise site in the
   worker, so the re-raise in the caller does not replace it with the
   (useless) caller-side trace. *)
type 'b outcome = Done of 'b | Failed of exn * Printexc.raw_backtrace

(* Chunked claiming over a shared cursor; results land in an
   index-addressed slot array, so the output order never depends on the
   interleaving. *)
let run_indexed ~jobs f (items : 'a array) : 'b array =
  let n = Array.length items in
  let run_task i x =
    if Span.enabled () then
      Span.with_ ~name:"pool.task" ~args:[ ("index", string_of_int i) ] (fun () -> f i x)
    else f i x
  in
  let inline_all () = Array.mapi run_task items in
  let jobs = min jobs (max_active ()) in
  if n <= 1 || jobs <= 1 || Domain.DLS.get in_pool_worker then inline_all ()
  else begin
    Counters.incr c_runs;
    let results : 'b outcome option array = Array.make n None in
    let g = grain_for ~jobs n in
    let n_chunks = (n + g - 1) / g in
    let next = Atomic.make 0 in
    let completed = Atomic.make 0 in
    let done_mutex = Mutex.create () in
    let done_cond = Condition.create () in
    (* Backtrace recording is per-domain in OCaml 5: without forwarding
       the caller's status, a task that raises in a pool domain loses its
       raise site (empty backtrace) while the same task raising in the
       caller keeps it. *)
    let record_bt = Printexc.backtrace_status () in
    let participant ~forward_bt () =
      if forward_bt then Printexc.record_backtrace record_bt;
      let executed = ref 0 in
      let rec claim () =
        let c = Atomic.fetch_and_add next 1 in
        if c < n_chunks then begin
          let lo = c * g in
          let hi = min n (lo + g) in
          Counters.add c_tasks (hi - lo);
          (* Unclaimed work remaining after this claim, one sample per
             chunk (not per item). *)
          Counters.observe d_queue_depth (n - hi);
          for i = lo to hi - 1 do
            results.(i) <-
              Some
                (try Done (run_task i items.(i))
                 with e -> Failed (e, Printexc.get_raw_backtrace ()))
          done;
          executed := !executed + (hi - lo);
          let finished = Atomic.fetch_and_add completed (hi - lo) + (hi - lo) in
          if finished = n then begin
            (* Taking [done_mutex] before the broadcast pairs with the
               caller's check-then-wait under the same mutex: no lost
               wakeup. *)
            Mutex.lock done_mutex;
            Condition.broadcast done_cond;
            Mutex.unlock done_mutex
          end;
          claim ()
        end
      in
      claim ();
      Counters.observe d_worker_tasks !executed
    in
    let helpers = min (jobs - 1) (n_chunks - 1) in
    ensure_workers helpers;
    for _ = 1 to helpers do
      submit (participant ~forward_bt:true)
    done;
    (* The caller is a participant too, so the run completes even if
       every pool domain is busy with other runs (or the pool is empty):
       queued helper jobs that arrive after the cursor is exhausted just
       claim nothing. *)
    participant ~forward_bt:false ();
    Mutex.lock done_mutex;
    while Atomic.get completed < n do
      Condition.wait done_cond done_mutex
    done;
    Mutex.unlock done_mutex;
    Array.map
      (function
        | Some (Done v) -> v
        | Some (Failed (e, bt)) -> Printexc.raise_with_backtrace e bt
        | None -> assert false)
      results
  end

let mapi ?jobs f xs =
  let jobs = match jobs with Some j -> j | None -> !default in
  match xs with
  | [] -> []
  | [ x ] -> [ f 0 x ]
  | _ when jobs <= 1 -> List.mapi f xs
  | _ -> Array.to_list (run_indexed ~jobs (fun i x -> f i x) (Array.of_list xs))

let map ?jobs f xs = mapi ?jobs (fun _ x -> f x) xs
