module Span = Isched_obs.Span
module Counters = Isched_obs.Counters

(* Pool observability: how much work went through the pool, how deep
   the pending-task queue was when each task was grabbed, and how evenly
   the tasks spread over the workers ([pool.worker_tasks] gets one
   sample per worker per run — a tight distribution means good
   utilisation).  All cover the parallel path only; the [jobs <= 1]
   degenerate path is plain [List.map]. *)
let c_runs = Counters.counter "pool.runs"
let c_tasks = Counters.counter "pool.tasks"
let c_domains = Counters.counter "pool.domains_spawned"
let d_queue_depth = Counters.dist "pool.queue_depth"
let d_worker_tasks = Counters.dist "pool.worker_tasks"

let default = ref 1

let set_default_jobs n =
  if n < 1 then invalid_arg "Pool.set_default_jobs: jobs must be >= 1";
  default := n

let default_jobs () = !default
let recommended_jobs () = Domain.recommended_domain_count ()

type 'b outcome = Done of 'b | Failed of exn

(* Work-stealing over a shared atomic index; results land in an
   index-addressed slot array, so the output order never depends on the
   interleaving. *)
let run_indexed ~jobs f (items : 'a array) : 'b array =
  let n = Array.length items in
  let results : 'b outcome option array = Array.make n None in
  let next = Atomic.make 0 in
  let run_task i x =
    if Span.enabled () then
      Span.with_ ~name:"pool.task" ~args:[ ("index", string_of_int i) ] (fun () -> f i x)
    else f i x
  in
  let worker () =
    let executed = ref 0 in
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        Counters.incr c_tasks;
        Counters.observe d_queue_depth (n - i);
        incr executed;
        results.(i) <- Some (try Done (run_task i items.(i)) with e -> Failed e);
        loop ()
      end
    in
    loop ();
    Counters.observe d_worker_tasks !executed
  in
  let n_domains = min (jobs - 1) (n - 1) in
  Counters.incr c_runs;
  Counters.add c_domains n_domains;
  let domains = Array.init n_domains (fun _ -> Domain.spawn worker) in
  worker ();
  Array.iter Domain.join domains;
  Array.map
    (function
      | Some (Done v) -> v
      | Some (Failed e) -> raise e
      | None -> assert false)
    results

let mapi ?jobs f xs =
  let jobs = match jobs with Some j -> j | None -> !default in
  match xs with
  | [] -> []
  | [ x ] -> [ f 0 x ]
  | _ when jobs <= 1 -> List.mapi f xs
  | _ -> Array.to_list (run_indexed ~jobs (fun i x -> f i x) (Array.of_list xs))

let map ?jobs f xs = mapi ?jobs (fun _ x -> f x) xs
