module Span = Isched_obs.Span
module Counters = Isched_obs.Counters

(* Pool observability: how much work went through the pool, how deep
   the pending-task queue was when each task was grabbed, and how evenly
   the tasks spread over the workers ([pool.worker_tasks] gets one
   sample per worker per run — a tight distribution means good
   utilisation).  All cover the parallel path only; the [jobs <= 1]
   degenerate path is plain [List.map]. *)
let c_runs = Counters.counter "pool.runs"
let c_tasks = Counters.counter "pool.tasks"
let c_domains = Counters.counter "pool.domains_spawned"
let d_queue_depth = Counters.dist "pool.queue_depth"
let d_worker_tasks = Counters.dist "pool.worker_tasks"

let default = ref 1

let set_default_jobs n =
  if n < 1 then invalid_arg "Pool.set_default_jobs: jobs must be >= 1";
  default := n

let default_jobs () = !default
let recommended_jobs () = Domain.recommended_domain_count ()

(* A failed task keeps the backtrace captured at the raise site in the
   worker, so the re-raise in the caller does not replace it with the
   (useless) caller-side trace. *)
type 'b outcome = Done of 'b | Failed of exn * Printexc.raw_backtrace

(* Work-stealing over a shared atomic index; results land in an
   index-addressed slot array, so the output order never depends on the
   interleaving. *)
let run_indexed ~jobs f (items : 'a array) : 'b array =
  let n = Array.length items in
  let results : 'b outcome option array = Array.make n None in
  let next = Atomic.make 0 in
  let run_task i x =
    if Span.enabled () then
      Span.with_ ~name:"pool.task" ~args:[ ("index", string_of_int i) ] (fun () -> f i x)
    else f i x
  in
  (* Backtrace recording is per-domain in OCaml 5: without forwarding the
     caller's status, a task that raises in a spawned domain loses its
     raise site (empty backtrace) while the same task raising in the
     caller's inline worker keeps it. *)
  let record_bt = Printexc.backtrace_status () in
  let worker () =
    Printexc.record_backtrace record_bt;
    let executed = ref 0 in
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        Counters.incr c_tasks;
        Counters.observe d_queue_depth (n - i);
        incr executed;
        results.(i) <-
          Some
            (try Done (run_task i items.(i))
             with e -> Failed (e, Printexc.get_raw_backtrace ()));
        loop ()
      end
    in
    loop ();
    Counters.observe d_worker_tasks !executed
  in
  let n_domains = min (jobs - 1) (n - 1) in
  Counters.incr c_runs;
  let spawned = ref [] in
  (* If the runtime refuses a later spawn, the earlier domains are
     already chewing on the task queue — join them before re-raising so
     no domain outlives the call. *)
  (try
     for _ = 1 to n_domains do
       spawned := Domain.spawn worker :: !spawned;
       Counters.incr c_domains
     done
   with e ->
     let bt = Printexc.get_raw_backtrace () in
     List.iter Domain.join !spawned;
     Printexc.raise_with_backtrace e bt);
  worker ();
  List.iter Domain.join !spawned;
  Array.map
    (function
      | Some (Done v) -> v
      | Some (Failed (e, bt)) -> Printexc.raise_with_backtrace e bt
      | None -> assert false)
    results

let mapi ?jobs f xs =
  let jobs = match jobs with Some j -> j | None -> !default in
  match xs with
  | [] -> []
  | [ x ] -> [ f 0 x ]
  | _ when jobs <= 1 -> List.mapi f xs
  | _ -> Array.to_list (run_indexed ~jobs (fun i x -> f i x) (Array.of_list xs))

let map ?jobs f xs = mapi ?jobs (fun _ x -> f x) xs
