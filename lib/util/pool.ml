let default = ref 1

let set_default_jobs n =
  if n < 1 then invalid_arg "Pool.set_default_jobs: jobs must be >= 1";
  default := n

let default_jobs () = !default
let recommended_jobs () = Domain.recommended_domain_count ()

type 'b outcome = Done of 'b | Failed of exn

(* Work-stealing over a shared atomic index; results land in an
   index-addressed slot array, so the output order never depends on the
   interleaving. *)
let run_indexed ~jobs f (items : 'a array) : 'b array =
  let n = Array.length items in
  let results : 'b outcome option array = Array.make n None in
  let next = Atomic.make 0 in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        results.(i) <- Some (try Done (f i items.(i)) with e -> Failed e);
        loop ()
      end
    in
    loop ()
  in
  let n_domains = min (jobs - 1) (n - 1) in
  let domains = Array.init n_domains (fun _ -> Domain.spawn worker) in
  worker ();
  Array.iter Domain.join domains;
  Array.map
    (function
      | Some (Done v) -> v
      | Some (Failed e) -> raise e
      | None -> assert false)
    results

let mapi ?jobs f xs =
  let jobs = match jobs with Some j -> j | None -> !default in
  match xs with
  | [] -> []
  | [ x ] -> [ f 0 x ]
  | _ when jobs <= 1 -> List.mapi f xs
  | _ -> Array.to_list (run_indexed ~jobs (fun i x -> f i x) (Array.of_list xs))

let map ?jobs f xs = mapi ?jobs (fun _ x -> f x) xs
