(** Deterministic splittable pseudo-random number generator.

    The corpus generator ({!Isched_perfect}) must produce identical
    benchmark suites on every run and on every platform, so we do not use
    [Stdlib.Random].  This is a small splitmix64 implementation: every
    stream is identified by its 64-bit state, and {!split} derives an
    independent child stream, which lets each generated loop own a private
    stream regardless of how many values its siblings consumed. *)

type t

(** [create seed] makes a fresh generator from an integer seed. *)
val create : int -> t

(** [copy t] is an independent generator with the same state. *)
val copy : t -> t

(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent from the remainder of [t]'s stream. *)
val split : t -> t

(** [split_nth t i] is the generator the [i]-th (0-based) call of a
    sequence of [split t] calls would return, computed in O(1) and
    without mutating [t].  This is what lets corpus generation jump to
    an arbitrary loop index when streaming a scaled suite. *)
val split_nth : t -> int -> t

(** [bits64 t] returns the next raw 64-bit output. *)
val bits64 : t -> int64

(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument]
    if [bound <= 0]. *)
val int : t -> int -> int

(** [int_in t lo hi] is uniform in [\[lo, hi\]] (inclusive). Raises
    [Invalid_argument] if [hi < lo]. *)
val int_in : t -> int -> int -> int

(** [float t] is uniform in [\[0, 1)]. *)
val float : t -> float

(** [bool t p] is [true] with probability [p] (clamped to [\[0,1\]]). *)
val bool : t -> float -> bool

(** [choose t arr] picks a uniform element of [arr]. Raises
    [Invalid_argument] on an empty array. *)
val choose : t -> 'a array -> 'a

(** [weighted t choices] picks among [(weight, value)] pairs with
    probability proportional to the (non-negative) weights. Raises
    [Invalid_argument] if the weights do not sum to a positive value. *)
val weighted : t -> (float * 'a) list -> 'a

(** [shuffle t arr] permutes [arr] in place (Fisher-Yates). *)
val shuffle : t -> 'a array -> unit
