(** Disjoint-set forest with union by rank and path compression.

    Used to group overlapping synchronization paths (paths that share a
    node must be scheduled together, see Section 3.2 of the paper) and to
    compute weakly-connected components of the data-flow graph. *)

type t

(** [create n] makes [n] singleton sets [{0}, ..., {n-1}]. *)
val create : int -> t

(** [find t x] is the canonical representative of [x]'s set. *)
val find : t -> int -> int

(** [union t x y] merges the sets of [x] and [y]; returns the new
    representative. *)
val union : t -> int -> int -> int

(** [same t x y] tests whether [x] and [y] are in the same set. *)
val same : t -> int -> int -> bool

(** [groups t] lists the sets as (representative, members) pairs, members
    in increasing order, groups ordered by representative. *)
val groups : t -> (int * int list) list
