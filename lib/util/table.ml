type align = Left | Right

type row = Cells of string list | Sep

type t = {
  title : string;
  headers : string list;
  aligns : align list;
  rows : row Vec.t;
}

let create ~title ~columns =
  { title; headers = List.map fst columns; aligns = List.map snd columns; rows = Vec.create () }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg
      (Printf.sprintf "Table.add_row: expected %d cells, got %d" (List.length t.headers)
         (List.length cells));
  Vec.push t.rows (Cells cells)

let add_sep t = Vec.push t.rows Sep

let utf8_length s =
  (* Count code points, not bytes, so box-drawing output lines up. *)
  let n = ref 0 in
  String.iter (fun c -> if Char.code c land 0xC0 <> 0x80 then incr n) s;
  !n

let pad align width s =
  let len = utf8_length s in
  let fill = String.make (max 0 (width - len)) ' ' in
  match align with Left -> s ^ fill | Right -> fill ^ s

let render t =
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  let feed cells = List.iteri (fun i c -> widths.(i) <- max widths.(i) (utf8_length c)) cells in
  feed t.headers;
  Vec.iter (function Cells c -> feed c | Sep -> ()) t.rows;
  let buf = Buffer.create 1024 in
  let line l m r =
    Buffer.add_string buf l;
    Array.iteri
      (fun i w ->
        Buffer.add_string buf (String.concat "" (List.init (w + 2) (fun _ -> "-")));
        if i < ncols - 1 then Buffer.add_string buf m)
      widths;
    Buffer.add_string buf r;
    Buffer.add_char buf '\n'
  in
  let data cells =
    Buffer.add_string buf "|";
    List.iteri
      (fun i c ->
        let a = List.nth t.aligns i in
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad a widths.(i) c);
        Buffer.add_string buf " |")
      cells;
    Buffer.add_char buf '\n'
  in
  if t.title <> "" then begin
    Buffer.add_string buf ("== " ^ t.title ^ " ==");
    Buffer.add_char buf '\n'
  end;
  line "+" "+" "+";
  data t.headers;
  line "+" "+" "+";
  Vec.iter (function Cells c -> data c | Sep -> line "+" "+" "+") t.rows;
  line "+" "+" "+";
  Buffer.contents buf

let print t = print_string (render t)

let fmt_int n = string_of_int n

let fmt_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x

let fmt_pct ?(decimals = 2) x = Printf.sprintf "%.*f%%" decimals x
