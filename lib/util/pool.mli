(** Fixed-size domain pool for fanning independent jobs across cores.

    The bench harness evaluates hundreds of independent
    (benchmark x machine-config) cells; this pool runs them on OCaml 5
    domains while keeping the result order deterministic: [map f xs] is
    observably [List.map f xs], whatever the interleaving.

    Jobs must be pure or synchronize their own shared state (the
    pipeline memo table does its own locking).  Exceptions raised by a
    job are caught in the worker and re-raised in the caller with the
    backtrace captured at the original raise site.  If spawning the
    worker domains fails partway, the already-spawned domains are
    joined before the spawn failure propagates. *)

(** [set_default_jobs n] sets the pool width used when [?jobs] is
    omitted; [n <= 1] means run everything sequentially in the calling
    domain.  Raises [Invalid_argument] on [n < 1]. *)
val set_default_jobs : int -> unit

(** [default_jobs ()] — the current default (initially 1, so nothing
    spawns domains unless asked to). *)
val default_jobs : unit -> int

(** [recommended_jobs ()] — the detected core count
    ({!Domain.recommended_domain_count}). *)
val recommended_jobs : unit -> int

(** [map ?jobs f xs] applies [f] to every element of [xs] on a pool of
    [jobs] domains (default {!default_jobs}) and returns the results in
    input order.  With [jobs <= 1] or fewer than two elements it
    degrades to plain [List.map] with no domain spawned. *)
val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list

(** [mapi ?jobs f xs] — like {!map} with the element index. *)
val mapi : ?jobs:int -> (int -> 'a -> 'b) -> 'a list -> 'b list
