(** Persistent domain pool for fanning independent jobs across cores.

    The bench harness evaluates hundreds of independent
    (benchmark x machine-config) cells; this pool runs them on OCaml 5
    domains while keeping the result order deterministic: [map f xs] is
    observably [List.map f xs], whatever the interleaving.

    Worker domains are spawned lazily on first use and then reused for
    every subsequent run — spawning a domain forces a stop-the-world
    handshake, and doing that per call is what made [--jobs N] slower
    than sequential.  Indices are distributed in contiguous chunks (see
    {!set_grain}) to keep shared-cursor traffic off the per-item path.
    Nested calls from inside a pooled job run inline in the calling
    worker, so they cannot deadlock the pool.

    Jobs must be pure or synchronize their own shared state (the
    pipeline memo table does its own locking).  Exceptions raised by a
    job are caught in the worker and re-raised in the caller with the
    backtrace captured at the original raise site.  If spawning a
    worker domain fails partway through growing the pool, the domains
    spawned so far remain parked in the pool (nothing leaks, nothing
    hangs) and the spawn failure propagates. *)

(** [set_default_jobs n] sets the pool width used when [?jobs] is
    omitted; [n <= 1] means run everything sequentially in the calling
    domain.  Raises [Invalid_argument] on [n < 1]. *)
val set_default_jobs : int -> unit

(** [default_jobs ()] — the current default (initially 1, so nothing
    spawns domains unless asked to). *)
val default_jobs : unit -> int

(** [recommended_jobs ()] — the detected core count
    ({!Domain.recommended_domain_count}). *)
val recommended_jobs : unit -> int

(** The pool never runs more participants than the machine has cores:
    domains beyond that buy no parallelism and pay a stop-the-world
    coordination tax per minor GC (measured 3x slower at [--jobs 8] on
    one core).  [set_max_active (Some m)] overrides the detected core
    count — tests use it to exercise real multi-domain runs on any box;
    [set_max_active None] (the initial state) restores the hardware
    detection.  Raises [Invalid_argument] on [m < 1]. *)
val set_max_active : int option -> unit

(** [set_grain (Some g)] fixes the chunk size used to distribute
    indices to participants; [set_grain None] (the initial state)
    restores the automatic grain of [max 1 (n / (8 * jobs))] — about 8
    chunks per participant.  Raises [Invalid_argument] on [g < 1]. *)
val set_grain : int option -> unit

(** [map ?jobs f xs] applies [f] to every element of [xs] on a pool of
    [jobs] domains (default {!default_jobs}) and returns the results in
    input order.  With [jobs <= 1] or fewer than two elements it
    degrades to plain [List.map] with no domain involved. *)
val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list

(** [mapi ?jobs f xs] — like {!map} with the element index. *)
val mapi : ?jobs:int -> (int -> 'a -> 'b) -> 'a list -> 'b list

(** [shutdown ()] joins every pooled worker domain and returns the pool
    to its initial (empty) state; the next parallel call respawns
    lazily.  Registered [at_exit] so no domain outlives the process'
    teardown.  Call only while no run is in flight. *)
val shutdown : unit -> unit
