(* One heap entry packs the ordering key and the payload into a single
   int:

     entry = ((prio + 2) << 48) | ((0xFFFFFF - tie) << 24) | value

   Comparing entries as plain ints then orders by descending prio and,
   within a prio, ascending tie — exactly [Pqueue]'s pop order.  The
   [+ 2] keeps the marker scheduler's prio = -1 non-negative; 24 bits
   for [tie] and [value] cover every node index (the DFG builder caps
   bodies well below 2^24). *)

type t = { mutable heap : int array; mutable size : int }

let create () = { heap = Array.make 16 0; size = 0 }

let is_empty q = q.size = 0

let length q = q.size

let entry ~prio ~tie v =
  if prio < -1 || prio > 0x3FFD then invalid_arg "Ipqueue.push: prio out of range";
  if tie < 0 || tie > 0xFFFFFF then invalid_arg "Ipqueue.push: tie out of range";
  if v < 0 || v > 0xFFFFFF then invalid_arg "Ipqueue.push: value out of range";
  ((prio + 2) lsl 48) lor ((0xFFFFFF - tie) lsl 24) lor v

let push q ~prio ~tie v =
  let e = entry ~prio ~tie v in
  if q.size = Array.length q.heap then begin
    let bigger = Array.make (2 * q.size) 0 in
    Array.blit q.heap 0 bigger 0 q.size;
    q.heap <- bigger
  end;
  (* Sift up. *)
  let h = q.heap in
  let i = ref q.size in
  q.size <- q.size + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if h.(parent) < e then begin
      h.(!i) <- h.(parent);
      i := parent
    end
    else continue := false
  done;
  h.(!i) <- e

let pop q =
  if q.size = 0 then raise Not_found;
  let h = q.heap in
  let top = h.(0) in
  q.size <- q.size - 1;
  let last = h.(q.size) in
  (* Sift the displaced last entry down from the root. *)
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 in
    if l >= q.size then continue := false
    else begin
      let r = l + 1 in
      let child = if r < q.size && h.(r) > h.(l) then r else l in
      if h.(child) > last then begin
        h.(!i) <- h.(child);
        i := child
      end
      else continue := false
    end
  done;
  h.(!i) <- last;
  top land 0xFFFFFF

let clear q = q.size <- 0
