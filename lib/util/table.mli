(** Plain-text table rendering for the benchmark harness.

    Every table the harness reproduces (Tables 1-3 of the paper, the
    ablations, the sweeps) is built as a {!t} and rendered with
    {!render}, so the output format of [bench/main.exe] is uniform. *)

type align = Left | Right

type t

(** [create ~title ~columns] starts a table. [columns] gives header text
    and alignment per column. *)
val create : title:string -> columns:(string * align) list -> t

(** [add_row t cells] appends a data row. Raises [Invalid_argument] if
    the arity does not match the header. *)
val add_row : t -> string list -> unit

(** [add_sep t] appends a horizontal separator (used before totals). *)
val add_sep : t -> unit

(** [render t] lays the table out with box-drawing rules and returns it
    as a string ending in a newline. *)
val render : t -> string

(** [print t] renders to stdout. *)
val print : t -> unit

(** Cell formatting helpers. *)

(** [fmt_int n] renders an integer cell. *)
val fmt_int : int -> string

(** [fmt_float ?decimals x] renders a float cell (2 decimals by
    default). *)
val fmt_float : ?decimals:int -> float -> string

(** [fmt_pct ?decimals x] renders a percentage cell, e.g. [87.36%]. *)
val fmt_pct : ?decimals:int -> float -> string
