type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }
let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = bits64 t in
  { state = mix64 s }

(* O(1) random access into the split stream: [split_nth t i] equals the
   i-th (0-based) generator a sequence of [split t] calls would return,
   without mutating [t].  [bits64] adds the gamma before mixing, so the
   i-th sequential split sees state [t.state + (i+1) * gamma]. *)
let split_nth t i =
  if i < 0 then invalid_arg "Prng.split_nth: negative index";
  let s = Int64.add t.state (Int64.mul golden_gamma (Int64.of_int (i + 1))) in
  { state = mix64 (mix64 s) }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection-free for our purposes: modulo bias is negligible for the
     small bounds used by the corpus generator.  Shift by 2 so the value
     fits OCaml's 63-bit native int and stays non-negative. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  v /. 9007199254740992.0 (* 2^53 *)

let bool t p = float t < p

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Prng.choose: empty array";
  arr.(int t (Array.length arr))

let weighted t choices =
  let total = List.fold_left (fun acc (w, _) -> acc +. Float.max 0. w) 0. choices in
  if total <= 0. then invalid_arg "Prng.weighted: weights must sum to > 0";
  let x = float t *. total in
  let rec go acc = function
    | [] -> invalid_arg "Prng.weighted: internal"
    | [ (_, v) ] -> v
    | (w, v) :: rest ->
      let acc = acc +. Float.max 0. w in
      if x < acc then v else go acc rest
  in
  go 0. choices

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
