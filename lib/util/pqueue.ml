type 'a entry = { prio : int; tie : int; value : 'a }

type 'a t = { mutable data : 'a entry option array; mutable size : int }

let create () = { data = [||]; size = 0 }
let is_empty q = q.size = 0
let length q = q.size

let get q i =
  match q.data.(i) with
  | Some e -> e
  | None -> assert false (* slots < size are always populated *)

(* [a] beats [b] when it should pop first. *)
let beats a b = a.prio > b.prio || (a.prio = b.prio && a.tie < b.tie)

let grow q =
  let cap = Array.length q.data in
  let ncap = if cap = 0 then 8 else cap * 2 in
  let ndata = Array.make ncap None in
  Array.blit q.data 0 ndata 0 q.size;
  q.data <- ndata

let swap q i j =
  let tmp = q.data.(i) in
  q.data.(i) <- q.data.(j);
  q.data.(j) <- tmp

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if beats (get q i) (get q parent) then begin
      swap q i parent;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < q.size && beats (get q l) (get q !best) then best := l;
  if r < q.size && beats (get q r) (get q !best) then best := r;
  if !best <> i then begin
    swap q i !best;
    sift_down q !best
  end

let push q ~prio ~tie value =
  if q.size = Array.length q.data then grow q;
  q.data.(q.size) <- Some { prio; tie; value };
  q.size <- q.size + 1;
  sift_up q (q.size - 1)

let pop q =
  if q.size = 0 then raise Not_found;
  let top = get q 0 in
  q.size <- q.size - 1;
  q.data.(0) <- q.data.(q.size);
  q.data.(q.size) <- None;
  if q.size > 0 then sift_down q 0;
  top.value

let peek q =
  if q.size = 0 then raise Not_found;
  (get q 0).value

let to_list q =
  if q.size = 0 then []
  else begin
    let copy = { data = Array.copy q.data; size = q.size } in
    let rec drain acc = if copy.size = 0 then List.rev acc else drain (pop copy :: acc) in
    drain []
  end
