(** Int-specialized mutable binary max-heap: the allocation-free twin of
    {!Pqueue} for worklists whose elements are small ints (node
    indices).

    Priority and tie-break are packed into one key per entry, so the
    heap is a single [int array] — no boxing, no per-push allocation
    once the backing array has grown to its high-water mark.  Pop order
    is identical to [Pqueue] with the same [(prio, tie)] pairs: largest
    [prio] first, ties towards the smaller [tie]. *)

type t

(** [create ()] is an empty queue. *)
val create : unit -> t

(** [is_empty q] tests emptiness. *)
val is_empty : t -> bool

(** [length q] is the number of queued elements. *)
val length : t -> int

(** [push q ~prio ~tie x] inserts [x].  [prio] must be in [-1, 16381]
    ([-1] is the marker scheduler's wait demotion) and [tie], [x] in
    [0, 2^24); all hold for every scheduler worklist (node indices,
    critical-path lengths).  Raises [Invalid_argument] otherwise. *)
val push : t -> prio:int -> tie:int -> int -> unit

(** [pop q] removes and returns the maximum-priority element.
    Raises [Not_found] if empty. *)
val pop : t -> int

(** [clear q] empties the queue, keeping the backing storage. *)
val clear : t -> unit
