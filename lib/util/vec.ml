type 'a t = { mutable data : 'a option array; mutable size : int }

let create () = { data = [||]; size = 0 }
let length v = v.size

let grow v =
  let cap = Array.length v.data in
  let ncap = if cap = 0 then 8 else cap * 2 in
  let ndata = Array.make ncap None in
  Array.blit v.data 0 ndata 0 v.size;
  v.data <- ndata

let push v x =
  if v.size = Array.length v.data then grow v;
  v.data.(v.size) <- Some x;
  v.size <- v.size + 1

let get v i =
  if i < 0 || i >= v.size then invalid_arg "Vec.get";
  match v.data.(i) with Some x -> x | None -> assert false

let set v i x =
  if i < 0 || i >= v.size then invalid_arg "Vec.set";
  v.data.(i) <- Some x

let to_array v = Array.init v.size (fun i -> get v i)
let to_list v = List.init v.size (fun i -> get v i)

let of_list xs =
  let v = create () in
  List.iter (push v) xs;
  v

let iter f v =
  for i = 0 to v.size - 1 do
    f (get v i)
  done

let iteri f v =
  for i = 0 to v.size - 1 do
    f i (get v i)
  done

let last v = if v.size = 0 then raise Not_found else get v (v.size - 1)

let ensure_size v n x =
  while v.size < n do
    push v x
  done

let get_or v i default = if i < 0 || i >= v.size then default else get v i

let clear v =
  Array.fill v.data 0 v.size None;
  v.size <- 0
