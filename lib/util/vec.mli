(** Growable array (amortised O(1) append), the workhorse buffer for
    instruction emission in the code generator and row construction in the
    schedulers. *)

type 'a t

(** [create ()] is an empty vector. *)
val create : unit -> 'a t

(** [length v] is the number of elements. *)
val length : 'a t -> int

(** [push v x] appends [x]. *)
val push : 'a t -> 'a -> unit

(** [get v i] reads element [i]. Raises [Invalid_argument] out of
    bounds. *)
val get : 'a t -> int -> 'a

(** [set v i x] overwrites element [i]. Raises [Invalid_argument] out of
    bounds. *)
val set : 'a t -> int -> 'a -> unit

(** [to_array v] snapshots the contents. *)
val to_array : 'a t -> 'a array

(** [to_list v] snapshots the contents as a list. *)
val to_list : 'a t -> 'a list

(** [of_list xs] builds a vector holding [xs]. *)
val of_list : 'a list -> 'a t

(** [iter f v] applies [f] to each element in order. *)
val iter : ('a -> unit) -> 'a t -> unit

(** [iteri f v] applies [f i x] to each element in order. *)
val iteri : (int -> 'a -> unit) -> 'a t -> unit

(** [last v] is the most recently pushed element. Raises [Not_found]
    when empty. *)
val last : 'a t -> 'a

(** [ensure_size v n x] extends [v] to at least [n] elements, filling
    new slots with [x].  A no-op when [v] is already that long; the
    reservation tables and calendar queues use it to index by cycle. *)
val ensure_size : 'a t -> int -> 'a -> unit

(** [get_or v i default] is element [i], or [default] when [i] is out of
    range — the natural read on a cycle-indexed table whose tail is all
    default. *)
val get_or : 'a t -> int -> 'a -> 'a

(** [clear v] removes all elements (keeps capacity). *)
val clear : 'a t -> unit
