(** Sequential reference interpreter over the source AST.

    The ground truth: iterations run one after another in program order.
    Every compiled and scheduled execution — sequential three-address
    ({!Prog_interp}) or parallel ({!Isched_sim}) — must reproduce this
    final memory (modulo the reconciliations of restructured scalars
    documented in {!Isched_transform.Restructure}). *)

module Ast := Isched_frontend.Ast

(** [run ?memory l] executes the loop and returns the final memory
    (a fresh one unless [memory] is given).  Writer tags use the
    iteration's index value and instr [-1]. *)
val run : ?memory:Memory.t -> Ast.loop -> Memory.t

(** [eval_expr mem ~ivar e] — evaluate an expression at iteration
    [ivar] (exposed for tests). *)
val eval_expr : Memory.t -> ivar:int -> Ast.expr -> float
