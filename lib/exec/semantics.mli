(** Shared value semantics for the interpreters and the simulator.

    All run-time values are floats (the benchmarks' arrays are REAL;
    index arithmetic happens on integral floats).  Every evaluator —
    the AST reference interpreter, the sequential three-address
    interpreter and the parallel machine simulator — uses exactly these
    functions, so their results are bit-comparable.

    Division by zero yields 0 (documented total semantics, so speculated
    if-converted code can never trap); shifts and address arithmetic
    clamp non-finite or huge values to 0 before integer conversion. *)

(** [to_int v] — integer view of a value (0 for NaN/inf/huge). *)
val to_int : float -> int

(** [binop op a b] evaluates an IR operator. *)
val binop : Isched_ir.Instr.binop -> float -> float -> float

(** [select cond if_true if_false] — [cond <> 0] picks [if_true]. *)
val select : float -> float -> float -> float

(** [init_value name idx] — deterministic initial content of array cell
    [name[idx]]; never 0 (so products and divisors stay well-behaved),
    bounded (so long chains do not overflow instantly). *)
val init_value : string -> int -> float

(** [init_scalar name] — deterministic initial value of a scalar. *)
val init_scalar : string -> float

(** [eq v1 v2] — bitwise equality (NaN-safe). *)
val eq : float -> float -> bool
