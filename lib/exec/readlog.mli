(** Read-observation logs for stale-data detection (Section 1's
    motivation: scheduling a sink before its wait "will have a chance to
    access stale data").

    Each memory read records which write it observed.  Comparing the log
    of a parallel execution against the sequential reference's log finds
    every read that saw the wrong generation of a cell — even when the
    wrong value happens to coincide with the right one. *)

type entry = {
  iter : int;  (** reading iteration (index value of [I]) *)
  instr : int;  (** body index of the reading instruction *)
  cell : string;  (** array or scalar name *)
  index : int option;  (** element index, [None] for scalars *)
  observed : Memory.tag;
}

type t

val create : unit -> t
val add : t -> entry -> unit
val to_list : t -> entry list

type mismatch = { expected : Memory.tag; entry : entry }

(** [compare_logs ~reference ~actual] — entries of [actual] whose
    observed writer differs from the reference's for the same
    (iteration, instruction) read.  Reads present in only one log are
    ignored (if-converted bodies execute the same instructions, so this
    does not arise between our executors). *)
val compare_logs : reference:t -> actual:t -> mismatch list

val pp_mismatch : Format.formatter -> mismatch -> unit
