(** Sequential reference interpreter over the three-address program.

    Executes iterations one after another, instructions in original body
    order, ignoring [Send]/[Wait] (sequential execution needs no
    synchronization).  Used to validate the code generator against
    {!Ast_interp} and as the reference execution (final memory and read
    log) that any parallel schedule must reproduce. *)

module Program := Isched_ir.Program

(** [run ?memory ?log p] — final memory after all [p.n_iters]
    iterations, reads recorded into [log] when given. *)
val run : ?memory:Memory.t -> ?log:Readlog.t -> Program.t -> Memory.t

(** [exec_instr] — one instruction at iteration [ivar] over register
    file [regs] (exposed so the simulator reuses the exact semantics).
    Returns the updated register assignment implicitly (in [regs]); the
    [store] callback commits memory writes so callers can buffer them. *)
val exec_instr :
  Memory.t ->
  ?log:Readlog.t ->
  regs:float array ->
  ivar:int ->
  instr_idx:int ->
  store:(cell:string -> index:int option -> value:float -> unit) ->
  Isched_ir.Instr.t ->
  unit
