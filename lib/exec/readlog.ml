type entry = {
  iter : int;
  instr : int;
  cell : string;
  index : int option;
  observed : Memory.tag;
}

type t = entry Isched_util.Vec.t

let create () = Isched_util.Vec.create ()
let add t e = Isched_util.Vec.push t e
let to_list t = Isched_util.Vec.to_list t

type mismatch = { expected : Memory.tag; entry : entry }

let compare_logs ~reference ~actual =
  let ref_tbl = Hashtbl.create 1024 in
  Isched_util.Vec.iter (fun e -> Hashtbl.replace ref_tbl (e.iter, e.instr) e.observed) reference;
  let out = ref [] in
  Isched_util.Vec.iter
    (fun e ->
      match Hashtbl.find_opt ref_tbl (e.iter, e.instr) with
      | Some expected when expected <> e.observed -> out := { expected; entry = e } :: !out
      | _ -> ())
    actual;
  List.rev !out

let pp_mismatch ppf m =
  let loc =
    match m.entry.index with
    | Some i -> Printf.sprintf "%s[%d]" m.entry.cell i
    | None -> m.entry.cell
  in
  Format.fprintf ppf "iteration %d, instr %d reads %s written by %a (sequentially: %a)"
    m.entry.iter (m.entry.instr + 1) loc Memory.pp_tag m.entry.observed Memory.pp_tag m.expected
