module Program = Isched_ir.Program
module Instr = Isched_ir.Instr
module Operand = Isched_ir.Operand

let operand regs ~ivar = function
  | Operand.Reg r -> regs.(r)
  | Operand.Imm i -> float_of_int i
  | Operand.Fimm f -> f
  | Operand.Ivar -> float_of_int ivar

let addr_to_index v = Semantics.to_int v asr 2

let exec_instr mem ?log ~regs ~ivar ~instr_idx ~store (ins : Instr.t) =
  let ev o = operand regs ~ivar o in
  let log_read cell index observed =
    match log with
    | None -> ()
    | Some l -> Readlog.add l { Readlog.iter = ivar; instr = instr_idx; cell; index; observed }
  in
  match ins with
  | Instr.Bin { op; dst; a; b } -> regs.(dst) <- Semantics.binop op (ev a) (ev b)
  | Instr.Select { dst; cond; if_true; if_false } ->
    regs.(dst) <- Semantics.select (ev cond) (ev if_true) (ev if_false)
  | Instr.Load { dst; base; addr } ->
    let index = addr_to_index (ev addr) in
    log_read base (Some index) (Memory.tag_of mem base index);
    regs.(dst) <- Memory.get mem base index
  | Instr.Store { base; addr; src } ->
    let index = addr_to_index (ev addr) in
    store ~cell:base ~index:(Some index) ~value:(ev src)
  | Instr.Load_scalar { dst; name } ->
    log_read name None (Memory.scalar_tag_of mem name);
    regs.(dst) <- Memory.get_scalar mem name
  | Instr.Store_scalar { name; src } -> store ~cell:name ~index:None ~value:(ev src)
  | Instr.Send _ | Instr.Wait _ -> ()

let run ?memory ?log (p : Program.t) =
  let mem = match memory with Some m -> m | None -> Memory.create () in
  let hi = p.Program.lo + p.Program.n_iters - 1 in
  for ivar = p.Program.lo to hi do
    let regs = Array.make (max 1 p.Program.n_regs) 0. in
    Array.iteri
      (fun instr_idx ins ->
        let store ~cell ~index ~value =
          let tag = Memory.Written { iter = ivar; instr = instr_idx } in
          match index with
          | Some i -> Memory.set mem cell i value tag
          | None -> Memory.set_scalar mem cell value tag
        in
        exec_instr mem ?log ~regs ~ivar ~instr_idx ~store ins)
      p.Program.body
  done;
  mem
