module Instr = Isched_ir.Instr

let to_int v = if Float.is_nan v || Float.abs v > 1e9 then 0 else int_of_float v

let div_total a b = if b = 0. then 0. else a /. b

let binop (op : Instr.binop) a b =
  match op with
  | Instr.Add | Instr.FAdd -> a +. b
  | Instr.Sub | Instr.FSub -> a -. b
  | Instr.Mul | Instr.FMul -> a *. b
  | Instr.Div | Instr.FDiv -> div_total a b
  | Instr.Shl -> float_of_int (to_int a lsl max 0 (min 30 (to_int b)))
  | Instr.Shr -> float_of_int (to_int a asr max 0 (min 30 (to_int b)))
  | Instr.CmpLt -> if a < b then 1. else 0.
  | Instr.CmpLe -> if a <= b then 1. else 0.
  | Instr.CmpGt -> if a > b then 1. else 0.
  | Instr.CmpGe -> if a >= b then 1. else 0.
  | Instr.CmpEq -> if a = b then 1. else 0.
  | Instr.CmpNe -> if a <> b then 1. else 0.

let select cond if_true if_false = if cond <> 0. then if_true else if_false

(* Small, non-zero, deterministic pseudo-contents.  A multiplicative mix
   of the name hash and the index, folded into 1..9 with a sign. *)
let init_value name idx =
  let h = Hashtbl.hash (name, idx land 1023, idx asr 10) in
  let v = 1 + (h mod 9) in
  float_of_int (if h land 16 = 0 then -v else v)

let init_scalar name =
  let h = Hashtbl.hash ("scalar$" ^ name) in
  float_of_int (1 + (h mod 9))

let eq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)
