module Ast = Isched_frontend.Ast
module Instr = Isched_ir.Instr

(* Match the code generator's operator choice: the AST operators map to
   the same total semantics regardless of int/float context, so we can
   evaluate with the F* ops (identical in Semantics). *)
let op_of = function
  | Ast.Add -> Instr.FAdd
  | Ast.Sub -> Instr.FSub
  | Ast.Mul -> Instr.FMul
  | Ast.Div -> Instr.FDiv

let rec eval_expr mem ~ivar (e : Ast.expr) =
  match e with
  | Ast.Num x -> x
  | Ast.Ivar -> float_of_int ivar
  | Ast.Scalar s -> Memory.get_scalar mem s
  | Ast.Aref (a, sub) ->
    let idx = Semantics.to_int (eval_expr mem ~ivar sub) in
    Memory.get mem a idx
  | Ast.Bin (op, x, y) -> Semantics.binop (op_of op) (eval_expr mem ~ivar x) (eval_expr mem ~ivar y)
  | Ast.Neg x -> Semantics.binop Instr.FSub 0. (eval_expr mem ~ivar x)

let eval_cond mem ~ivar (c : Ast.cond) =
  let a = eval_expr mem ~ivar c.lhs and b = eval_expr mem ~ivar c.rhs in
  let op =
    match c.rel with
    | Ast.Lt -> Instr.CmpLt
    | Ast.Le -> Instr.CmpLe
    | Ast.Gt -> Instr.CmpGt
    | Ast.Ge -> Instr.CmpGe
    | Ast.Eq -> Instr.CmpEq
    | Ast.Ne -> Instr.CmpNe
  in
  Semantics.binop op a b <> 0.

let run ?memory (l : Ast.loop) =
  let mem = match memory with Some m -> m | None -> Memory.create () in
  for ivar = l.lo to l.hi do
    List.iter
      (fun (s : Ast.stmt) ->
        let enabled = match s.guard with None -> true | Some c -> eval_cond mem ~ivar c in
        if enabled then begin
          let v = eval_expr mem ~ivar s.rhs in
          let tag = Memory.Written { iter = ivar; instr = -1 } in
          match s.lhs with
          | Ast.Larr (a, sub) ->
            let idx = Semantics.to_int (eval_expr mem ~ivar sub) in
            Memory.set mem a idx v tag
          | Ast.Lscalar name -> Memory.set_scalar mem name v tag
        end)
      l.body
  done;
  mem
