(** Shared memory with deterministic default contents and write-origin
    tracking.

    Array cells are addressed by (name, element index); scalars by name.
    A cell that was never written reads its {!Semantics.init_value}.
    Every write carries a {e writer tag} — which iteration and which
    (original-order) instruction produced the value — and every read can
    report the tag of the write it observed, which is how the stale-data
    checker compares a parallel execution against the sequential
    reference. *)

(** Writer tag: [(iteration, body index)]; [initial] for never-written. *)
type tag = Initial | Written of { iter : int; instr : int }

type t

val create : unit -> t

(** Array cells. *)
val get : t -> string -> int -> float

val set : t -> string -> int -> float -> tag -> unit

(** [tag_of t name idx] — who wrote the cell last. *)
val tag_of : t -> string -> int -> tag

(** Scalars. *)
val get_scalar : t -> string -> float

val set_scalar : t -> string -> float -> tag -> unit
val scalar_tag_of : t -> string -> tag

(** [written_cells t] — sorted [(name, idx), value] for all array cells
    ever written; [written_scalars t] likewise. *)
val written_cells : t -> ((string * int) * float) list

val written_scalars : t -> (string * float) list

(** [equal a b] — the memories agree on every cell either ever wrote
    (bitwise, NaN-safe); unwritten cells agree by construction. *)
val equal : t -> t -> bool

(** [diff a b] — cells where they disagree, for error reports. *)
val diff : t -> t -> string list

val pp_tag : Format.formatter -> tag -> unit
