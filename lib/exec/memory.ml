type tag = Initial | Written of { iter : int; instr : int }

type cell = { value : float; tag : tag }

type t = {
  arrays : (string * int, cell) Hashtbl.t;
  scalars : (string, cell) Hashtbl.t;
}

let create () = { arrays = Hashtbl.create 256; scalars = Hashtbl.create 16 }

let get t name idx =
  match Hashtbl.find_opt t.arrays (name, idx) with
  | Some c -> c.value
  | None -> Semantics.init_value name idx

let set t name idx value tag = Hashtbl.replace t.arrays (name, idx) { value; tag }

let tag_of t name idx =
  match Hashtbl.find_opt t.arrays (name, idx) with Some c -> c.tag | None -> Initial

let get_scalar t name =
  match Hashtbl.find_opt t.scalars name with
  | Some c -> c.value
  | None -> Semantics.init_scalar name

let set_scalar t name value tag = Hashtbl.replace t.scalars name { value; tag }

let scalar_tag_of t name =
  match Hashtbl.find_opt t.scalars name with Some c -> c.tag | None -> Initial

let written_cells t =
  Hashtbl.fold (fun k c acc -> (k, c.value) :: acc) t.arrays []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let written_scalars t =
  Hashtbl.fold (fun k c acc -> (k, c.value) :: acc) t.scalars []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let diff a b =
  let out = ref [] in
  let note fmt = Printf.ksprintf (fun s -> out := s :: !out) fmt in
  let keys tbl_a tbl_b fold =
    let tbl = Hashtbl.create 64 in
    fold (fun k _ () -> Hashtbl.replace tbl k ()) tbl_a ();
    fold (fun k _ () -> Hashtbl.replace tbl k ()) tbl_b ();
    Hashtbl.fold (fun k () acc -> k :: acc) tbl [] |> List.sort compare
  in
  let array_keys = keys a.arrays b.arrays (fun f tbl init -> Hashtbl.fold f tbl init) in
  List.iter
    (fun (name, idx) ->
      let va = get a name idx and vb = get b name idx in
      if not (Semantics.eq va vb) then note "%s[%d]: %h vs %h" name idx va vb)
    array_keys;
  let scalar_keys = keys a.scalars b.scalars (fun f tbl init -> Hashtbl.fold f tbl init) in
  List.iter
    (fun name ->
      let va = get_scalar a name and vb = get_scalar b name in
      if not (Semantics.eq va vb) then note "%s: %h vs %h" name va vb)
    scalar_keys;
  List.rev !out

let equal a b = diff a b = []

let pp_tag ppf = function
  | Initial -> Format.pp_print_string ppf "initial"
  | Written { iter; instr } -> Format.fprintf ppf "iter %d, instr %d" iter (instr + 1)
