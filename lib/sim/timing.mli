(** Fast timing simulator of the superscalar-based multiprocessor.

    The paper's machine model (Section 4.1): a shared-memory
    multiprocessor with [n] processors runs an [n]-iteration DOACROSS
    loop, one iteration per processor, all starting at cycle 0; each
    processor executes the static schedule row by row, one row per
    cycle, stalling only on a [Wait] whose signal has not been posted.
    A signal posted at cycle [c] is visible to waits from cycle [c+1].

    Because signals only flow from lower-numbered iterations to higher
    (distances are positive), iterations can be simulated in increasing
    order, which makes this simulator O(n * rows) and exact for timing —
    it is what the benchmark harness uses to produce Table 2. *)

type result = {
  finish : int;  (** parallel execution time: cycle count until the last
                     processor retires its last row *)
  iteration_starts : int array;  (** cycle at which each iteration's
                                     first row issued (index 0 = lo) *)
  iteration_finishes : int array;  (** retirement cycle per iteration *)
  stall_cycles : int;  (** total cycles all processors spent stalled *)
  extrapolated_from : int option;
      (** [Some k] when iterations after [k] were produced by the
          steady-state fast path instead of row-by-row simulation;
          [None] when the whole run was simulated *)
}

(** Iteration-to-processor assignment for limited pools:
    [`Cyclic] (iteration [k] on processor [k mod P], the DOACROSS
    default — consecutive iterations overlap) or [`Block] (processor
    [p] runs the contiguous chunk [p*ceil(n/P) ..), which serializes
    consecutive iterations and is the wrong choice for DOACROSS — kept
    as a contrast knob). *)
type assignment = [ `Cyclic | `Block ]

(** Raised by {!run_rows} when an iteration blocks on a wait whose
    matching [Send] never executed — i.e. the send instruction is
    missing from the supplied row layout.  [iteration] is the blocked
    iteration, [wait]/[signal] identify the pair in the program's
    tables, and [posting_iteration] is the iteration that should have
    posted the signal.  {!Isched_check} surfaces this as a located
    diagnostic instead of a crash.  (A schedule produced by
    {!Isched_core.Schedule.of_cycles} always contains every body
    instruction, so {!run} never raises this.) *)
exception
  Invalid_schedule of {
    prog : string;  (** program name, for the diagnostic *)
    iteration : int;
    wait : int;
    signal : int;
    posting_iteration : int;
  }

(** [run ?n_procs ?assignment ?extrapolate s] simulates the schedule.
    [n_procs] defaults to the paper's assumption of one processor per
    iteration; with fewer, iterations are assigned per [assignment]
    (default [`Cyclic]) and an iteration cannot start before its
    processor's previous iteration retires.  Raises [Invalid_argument]
    if [n_procs < 1].

    [extrapolate] (default [true]) enables the steady-state fast path
    predicted by the LBD loop theorem: once the per-iteration offset is
    provably periodic, the remaining iterations are produced closed-form
    with results bit-identical to the full simulation.  Pass [false] to
    force row-by-row simulation of every iteration (the tests' oracle). *)
val run :
  ?n_procs:int -> ?assignment:assignment -> ?extrapolate:bool -> Isched_core.Schedule.t -> result

(** [run_rows] — the same machine model for a row layout given directly
    (rows of body indices), used by tests to cross-check hand layouts. *)
val run_rows :
  ?n_procs:int -> ?assignment:assignment -> ?extrapolate:bool ->
  Isched_ir.Program.t -> int array array -> result
