module Program = Isched_ir.Program
module Instr = Isched_ir.Instr
module Span = Isched_obs.Span
module Counters = Isched_obs.Counters

(* Fast-path accounting: [timing.extrapolated] counts simulations that
   detected a steady state and wrote the tail closed-form,
   [timing.full_sim] those that simulated every iteration (including
   runs where extrapolation was disabled or structurally unusable);
   [timing.extrapolated_iters] is how many iterations the fast path
   skipped. *)
let c_extrapolated = Counters.counter "timing.extrapolated"
let c_full_sim = Counters.counter "timing.full_sim"
let c_saved_iters = Counters.counter "timing.extrapolated_iters"

type result = {
  finish : int;
  iteration_starts : int array;
  iteration_finishes : int array;
  stall_cycles : int;
  extrapolated_from : int option;
}

type assignment = [ `Cyclic | `Block ]

exception
  Invalid_schedule of {
    prog : string;
    iteration : int;
    wait : int;
    signal : int;
    posting_iteration : int;
  }

let () =
  Printexc.register_printer (function
    | Invalid_schedule { prog; iteration; wait; signal; posting_iteration } ->
      Some
        (Printf.sprintf
           "Timing.Invalid_schedule: %s iteration %d blocks on wait %d (signal %d), but \
            iteration %d never posted it — its Send is missing from the row layout"
           prog iteration wait signal posting_iteration)
    | _ -> None)

(* The LBD loop theorem (PAPER.md Section 3) prices a loop as
   (n/d)(i-j) + l: past a fill transient the per-iteration offset is
   constant, so the tail of the simulation is an arithmetic progression.
   [run_rows] simulates iterations in order as before but watches for
   that steady state — once every component of the iteration state
   (start, retirement, signal-post cycles, stalls) advances by one
   uniform constant per period, the remaining iterations are written out
   closed-form instead of simulated row by row. The periodic invariant
   is checked on real data over a window covering every dependence lag,
   which makes the extrapolation exact, not approximate (cross-checked
   against the full simulation in test_sim). *)

let run_rows_inner ?n_procs ?(assignment = `Cyclic) ?(extrapolate = true) (p : Program.t) rows =
  let n = p.Program.n_iters in
  let n_procs = match n_procs with None -> n | Some np -> np in
  if n_procs < 1 then invalid_arg "Timing.run_rows: n_procs must be >= 1";
  (* finish_at.(k) = retirement cycle of iteration k; with a limited
     processor pool, iteration k waits for its processor's previous
     iteration.  Cyclic: the predecessor is k - n_procs.  Block: chunks
     of ceil(n / n_procs) consecutive iterations share a processor. *)
  let block = (n + n_procs - 1) / n_procs in
  let limited = n_procs < n in
  let prev_on_proc k =
    match assignment with
    | `Cyclic -> if k >= n_procs then Some (k - n_procs) else None
    | `Block -> if k mod block <> 0 then Some (k - 1) else None
  in
  let finish_at = Array.make (max n 1) 0 in
  (* post.(signal).(k) = cycle at which iteration k's Send executed;
     -1 when not yet (or never) posted. *)
  let n_signals = Array.length p.Program.signals in
  let post = Array.init n_signals (fun _ -> Array.make (max n 1) (-1)) in
  let iteration_starts = Array.make (max n 1) 0 in
  let stall_of = Array.make (max n 1) 0 in
  (* Event compression: an iteration's clock advances exactly one cycle
     per row, except at rows containing a Wait (which can stall it) or a
     Send (which must record its post cycle).  Collecting those rows
     once lets [simulate] skip every plain row in O(1) instead of
     re-matching the whole body per iteration. *)
  let n_rows = Array.length rows in
  let ev_rows, ev_waits, ev_sends =
    let rs = ref [] and ws = ref [] and ss = ref [] in
    for r = n_rows - 1 downto 0 do
      let row_waits = ref [] and row_sends = ref [] in
      let row = rows.(r) in
      for x = Array.length row - 1 downto 0 do
        match p.Program.body.(row.(x)) with
        | Instr.Wait { wait } -> row_waits := wait :: !row_waits
        | Instr.Send { signal } -> row_sends := signal :: !row_sends
        | _ -> ()
      done;
      if !row_waits <> [] || !row_sends <> [] then begin
        rs := r :: !rs;
        ws := Array.of_list !row_waits :: !ws;
        ss := Array.of_list !row_sends :: !ss
      end
    done;
    (Array.of_list !rs, Array.of_list !ws, Array.of_list !ss)
  in
  let n_ev = Array.length ev_rows in
  let simulate k =
    let proc_free = match prev_on_proc k with Some j -> finish_at.(j) | None -> 0 in
    let t = ref (proc_free - 1) in
    let stalls = ref 0 in
    (* The iteration start is the clock after row 0: [proc_free] unless
       row 0 itself holds a wait that pushes it. *)
    let start0 = ref proc_free in
    let prev_row = ref (-1) in
    for e = 0 to n_ev - 1 do
      let r = ev_rows.(e) in
      t := !t + (r - !prev_row - 1);
      let earliest = !t + 1 in
      let ready = ref earliest in
      let ws = ev_waits.(e) in
      for x = 0 to Array.length ws - 1 do
        let w = p.Program.waits.(ws.(x)) in
        let from = k - w.Program.distance in
        if from >= 0 then begin
          let posted = post.(w.Program.signal).(from) in
          (* Signals flow from lower iterations, simulated already; a
             send present in the rows has always executed by now.
             [posted < 0] therefore means the matching Send is absent
             from the row layout — an invalid schedule, not a simulator
             bug — and is diagnosed as such. *)
          if posted < 0 then
            raise
              (Invalid_schedule
                 {
                   prog = p.Program.name;
                   iteration = k;
                   wait = w.Program.wait;
                   signal = w.Program.signal;
                   posting_iteration = from;
                 });
          if posted + 1 > !ready then ready := posted + 1
        end
      done;
      stalls := !stalls + (!ready - earliest);
      t := !ready;
      if r = 0 then start0 := !t;
      let ss = ev_sends.(e) in
      for x = 0 to Array.length ss - 1 do
        post.(ss.(x)).(k) <- !t
      done;
      prev_row := r
    done;
    t := !t + (n_rows - 1 - !prev_row);
    iteration_starts.(k) <- (if n_rows = 0 then proc_free else !start0);
    finish_at.(k) <- !t + 1;
    stall_of.(k) <- !stalls
  in
  (* Steady-state parameters.  [period]: the lag at which the iteration
     recurrence repeats (1 with a full pool; the pool size under cyclic
     assignment; the chunk size under block assignment, where chunk
     boundaries lack the processor edge).  [lag]: how far back iteration
     k+1's inputs reach, i.e. the window that must satisfy the periodic
     invariant for the extrapolation to be exact.  [guard]: first
     iteration from which the recurrence shape is the same at k and
     k - period. *)
  let d_max =
    Array.fold_left (fun acc (w : Program.wait_info) -> max acc w.Program.distance) 0 p.Program.waits
  in
  let period =
    if not limited then 1 else match assignment with `Cyclic -> n_procs | `Block -> block
  in
  let lag = max d_max (if limited then match assignment with `Cyclic -> n_procs | `Block -> 1 else 1) in
  let guard = period + max 1 (max d_max (if limited && assignment = `Cyclic then n_procs else 0)) in
  (* The window must cover a full period on top of the input lag:
     under block assignment the residue classes mod [period] behave
     differently (chunk-boundary iterations have no processor edge), so
     every residue must be seen satisfying the invariant before the tail
     is extrapolated. *)
  let window = period + lag + 2 in
  let usable = extrapolate && period <= 512 && n > guard + window + period in
  (* Detection: a run of consecutive iterations whose full state vector
     advances by one shared constant [lambda] over [period]. *)
  let run_len = ref 0 in
  let lambda = ref 0 in
  let lambda_start = ref 0 in
  let state_delta k =
    (* Delta of state(k) - state(k - period): finish and every signal
       post must share one constant; the iteration start may instead be
       exactly constant (delta 0), which happens when the first row has
       no applicable wait and the processor-free input is pinned at
       cycle 0 — then its ready-max contains no growing term, so no
       later dominance crossover is possible.  Stalls are excluded: they
       are not shift-covariant at chunk boundaries and are reconstructed
       exactly from the finish times instead. *)
    let d = finish_at.(k) - finish_at.(k - period) in
    let ds = iteration_starts.(k) - iteration_starts.(k - period) in
    if
      (ds = d || ds = 0)
      &&
      let ok = ref true in
      for s = 0 to n_signals - 1 do
        if post.(s).(k) - post.(s).(k - period) <> d then ok := false
      done;
      !ok
    then Some (d, ds)
    else None
  in
  let stable_at = ref None in
  let k = ref 0 in
  while !k < n && !stable_at = None do
    simulate !k;
    (if usable && !k >= guard + period then
       match state_delta !k with
       | Some (d, ds) when !run_len > 0 && d = !lambda && ds = !lambda_start ->
         incr run_len;
         if !run_len >= window then stable_at := Some !k
       | Some (d, ds) ->
         run_len := 1;
         lambda := d;
         lambda_start := ds
       | None -> run_len := 0);
    incr k
  done;
  (match !stable_at with
  | None -> ()
  | Some k_s ->
    (* Closed-form tail: every residue class mod [period] keeps adding
       [lambda] per period from its last simulated representative.  The
       stall count follows from the timing identity
       finish = proc_free + n_rows + stalls (each row costs one cycle
       plus its stall), which holds whether or not the iteration sits at
       a chunk boundary. *)
    let n_rows = Array.length rows in
    for k = k_s + 1 to n - 1 do
      iteration_starts.(k) <- iteration_starts.(k - period) + !lambda_start;
      finish_at.(k) <- finish_at.(k - period) + !lambda;
      let proc_free = match prev_on_proc k with Some j -> finish_at.(j) | None -> 0 in
      stall_of.(k) <- finish_at.(k) - proc_free - n_rows
    done);
  (match !stable_at with
  | Some k_s ->
    Counters.incr c_extrapolated;
    Counters.add c_saved_iters (n - 1 - k_s)
  | None -> Counters.incr c_full_sim);
  let finish = ref 0 in
  let stalls = ref 0 in
  for k = 0 to n - 1 do
    finish := max !finish finish_at.(k);
    stalls := !stalls + stall_of.(k)
  done;
  let trim a = if n = 0 then [||] else a in
  {
    finish = !finish;
    iteration_starts = trim iteration_starts;
    iteration_finishes = trim finish_at;
    stall_cycles = !stalls;
    extrapolated_from = !stable_at;
  }

let run_rows ?n_procs ?assignment ?extrapolate (p : Program.t) rows =
  if Span.enabled () then
    Span.with_ ~name:"sim.timing"
      ~args:[ ("prog", p.Program.name); ("n_iters", string_of_int p.Program.n_iters) ]
      (fun () -> run_rows_inner ?n_procs ?assignment ?extrapolate p rows)
  else run_rows_inner ?n_procs ?assignment ?extrapolate p rows

let run ?n_procs ?assignment ?extrapolate (s : Isched_core.Schedule.t) =
  run_rows ?n_procs ?assignment ?extrapolate s.Isched_core.Schedule.prog s.Isched_core.Schedule.rows
