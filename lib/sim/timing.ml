module Program = Isched_ir.Program
module Instr = Isched_ir.Instr

type result = {
  finish : int;
  iteration_starts : int array;
  iteration_finishes : int array;
  stall_cycles : int;
}

type assignment = [ `Cyclic | `Block ]

let run_rows ?n_procs ?(assignment = `Cyclic) (p : Program.t) rows =
  let n = p.Program.n_iters in
  let n_procs = match n_procs with None -> n | Some np -> np in
  if n_procs < 1 then invalid_arg "Timing.run_rows: n_procs must be >= 1";
  (* finish_at.(k) = retirement cycle of iteration k; with a limited
     processor pool, iteration k waits for its processor's previous
     iteration.  Cyclic: the predecessor is k - n_procs.  Block: chunks
     of ceil(n / n_procs) consecutive iterations share a processor. *)
  let block = (n + n_procs - 1) / n_procs in
  let prev_on_proc k =
    match assignment with
    | `Cyclic -> if k >= n_procs then Some (k - n_procs) else None
    | `Block -> if k mod block <> 0 then Some (k - 1) else None
  in
  let finish_at = Array.make n 0 in
  (* post.(signal).(k) = cycle at which iteration (lo+k)'s Send executed;
     -1 when not yet (or never) posted. *)
  let n_signals = Array.length p.Program.signals in
  let post = Array.init n_signals (fun _ -> Array.make n (-1)) in
  let iteration_starts = Array.make n 0 in
  let finish = ref 0 in
  let stalls = ref 0 in
  for k = 0 to n - 1 do
    let proc_free = match prev_on_proc k with Some j -> finish_at.(j) | None -> 0 in
    let t = ref (proc_free - 1) in
    let first = ref None in
    Array.iter
      (fun row ->
        let earliest = !t + 1 in
        let ready = ref earliest in
        Array.iter
          (fun i ->
            match p.Program.body.(i) with
            | Instr.Wait { wait } ->
              let w = p.Program.waits.(wait) in
              let from = k - w.Program.distance in
              if from >= 0 then begin
                let posted = post.(w.Program.signal).(from) in
                (* Signals flow from lower iterations, simulated already;
                   a send that exists always executes. *)
                assert (posted >= 0);
                ready := max !ready (posted + 1)
              end
            | _ -> ())
          row;
        stalls := !stalls + (!ready - earliest);
        t := !ready;
        if !first = None then first := Some !t;
        Array.iter
          (fun i ->
            match p.Program.body.(i) with
            | Instr.Send { signal } -> post.(signal).(k) <- !t
            | _ -> ())
          row)
      rows;
    iteration_starts.(k) <- (match !first with Some c -> c | None -> proc_free);
    finish_at.(k) <- !t + 1;
    finish := max !finish (!t + 1)
  done;
  { finish = !finish; iteration_starts; iteration_finishes = finish_at; stall_cycles = !stalls }

let run ?n_procs ?assignment (s : Isched_core.Schedule.t) =
  run_rows ?n_procs ?assignment s.Isched_core.Schedule.prog s.Isched_core.Schedule.rows
