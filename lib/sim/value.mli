(** Cycle-accurate, value-accurate simulator of the multiprocessor.

    Unlike {!Timing}, this engine advances all processors together one
    global cycle at a time and executes real values through shared
    memory, which lets it witness the stale-data accesses the paper's
    synchronization conditions exist to prevent:

    - memory writes and signal posts performed in cycle [c] become
      visible to every processor at cycle [c+1] (within one cycle,
      reads see the pre-cycle state);
    - two writes to the same cell in the same cycle are a detected
      {e race}, resolved deterministically in iteration order;
    - every read records the write generation it observed
      ({!Isched_exec.Readlog}); comparing against the sequential
      reference of {!Isched_exec.Prog_interp} pinpoints stale reads.

    For a schedule built over the full data-flow graph (sync arcs
    included) the final memory provably matches the sequential
    reference; the [stale_data_demo] example shows a schedule built
    {e without} the sync-condition arcs failing this check. *)

type result = {
  finish : int;  (** parallel execution time in cycles *)
  memory : Isched_exec.Memory.t;  (** final shared memory *)
  log : Isched_exec.Readlog.t;  (** all reads, with observed writers *)
  races : string list;  (** same-cycle write-write conflicts *)
}

(** [run s] simulates [s] on [s.prog.n_iters] processors.  Raises
    [Invalid_argument] if the machine fails to retire within a generous
    cycle bound (which would indicate a scheduler bug). *)
val run : Isched_core.Schedule.t -> result
