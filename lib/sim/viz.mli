(** Execution visualization.

    Two renderings, each in ASCII (for terminals and golden tests) and
    SVG (for reports):

    - the {e wavefront}: iterations on the vertical axis, cycles on the
      horizontal, one bar per iteration from its start to its
      retirement.  A DOALL loop draws a solid block (all iterations
      overlap), a converted LFD loop a one-cycle staircase, and an LBD
      loop the steep `(i-j+1)`-per-link staircase of the LBD loop
      theorem — the paper's cost model, made visible;

    - the {e schedule Gantt}: one iteration's rows against the machine's
      issue slots, each instruction labelled, synchronization
      operations highlighted. *)

(** [wavefront_ascii ?n_procs ?max_iters s] — at most [max_iters]
    (default 24) iteration bars, time rescaled to fit 72 columns. *)
val wavefront_ascii : ?n_procs:int -> ?max_iters:int -> Isched_core.Schedule.t -> string

(** [wavefront_svg ?n_procs ?max_iters s] — standalone SVG document. *)
val wavefront_svg : ?n_procs:int -> ?max_iters:int -> Isched_core.Schedule.t -> string

(** [schedule_svg s] — standalone SVG of the wide-instruction layout. *)
val schedule_svg : Isched_core.Schedule.t -> string

(** [gantt_svg ?decisions s] — standalone SVG Gantt of one iteration:
    cycles down, issue slots across, every synchronization condition
    overlaid as an arrowed arc ([Src -> Sig] green, [Wat -> Snk] red).
    [decisions] (a {!Isched_obs.Provenance} trace of the run that built
    [s]) attaches each instruction's placement decision — ready cycle,
    priority, refused slots, binding constraint — as a hover tooltip. *)
val gantt_svg :
  ?decisions:Isched_obs.Provenance.decision list -> Isched_core.Schedule.t -> string
