module Schedule = Isched_core.Schedule
module Program = Isched_ir.Program
module Instr = Isched_ir.Instr

let bars ?n_procs ?(max_iters = 24) (s : Schedule.t) =
  let t = Timing.run ?n_procs s in
  let n = Array.length t.Timing.iteration_starts in
  let shown = min n max_iters in
  ( Array.init shown (fun k -> (t.Timing.iteration_starts.(k), t.Timing.iteration_finishes.(k))),
    t.Timing.finish )

(* --- ASCII --- *)

let wavefront_ascii ?n_procs ?max_iters (s : Schedule.t) =
  let bars, finish = bars ?n_procs ?max_iters s in
  let width = 72 in
  let scale c = if finish <= width then c else c * width / finish in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf "wavefront of %s: %d iterations shown, %d cycles total%s\n"
       s.Schedule.prog.Program.name (Array.length bars) finish
       (if finish <= width then "" else Printf.sprintf " (1 column = %.1f cycles)" (float_of_int finish /. float_of_int width)));
  Array.iteri
    (fun k (start, stop) ->
      let a = scale start and b = max (scale start + 1) (scale stop) in
      Buffer.add_string buf (Printf.sprintf "iter %3d |" (k + s.Schedule.prog.Program.lo));
      for c = 0 to min (width - 1) (b - 1) do
        Buffer.add_char buf (if c < a then ' ' else '#')
      done;
      Buffer.add_char buf '\n')
    bars;
  Buffer.contents buf

(* --- SVG helpers --- *)

let svg_header ~w ~h =
  Printf.sprintf
    "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" viewBox=\"0 0 %d %d\">\n\
     <style>text{font-family:monospace;font-size:10px}</style>\n\
     <rect width=\"%d\" height=\"%d\" fill=\"white\"/>\n"
    w h w h w h

let wavefront_svg ?n_procs ?max_iters (s : Schedule.t) =
  let bars, finish = bars ?n_procs ?max_iters s in
  let n = Array.length bars in
  let row_h = 14 and left = 60 and plot_w = 640 in
  let w = left + plot_w + 20 and h = ((n + 2) * row_h) + 30 in
  let x_of c = left + (c * plot_w / max 1 finish) in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (svg_header ~w ~h);
  Buffer.add_string buf
    (Printf.sprintf "<text x=\"%d\" y=\"14\">%s: %d cycles for %d iterations</text>\n" left
       s.Schedule.prog.Program.name finish s.Schedule.prog.Program.n_iters);
  Array.iteri
    (fun k (start, stop) ->
      let y = 20 + (k * row_h) in
      Buffer.add_string buf
        (Printf.sprintf "<text x=\"4\" y=\"%d\">iter %d</text>\n" (y + 10)
           (k + s.Schedule.prog.Program.lo));
      Buffer.add_string buf
        (Printf.sprintf
           "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"#4477aa\" stroke=\"#223\"/>\n"
           (x_of start) y
           (max 2 (x_of stop - x_of start))
           (row_h - 3)))
    bars;
  let axis_y = 20 + (n * row_h) + 8 in
  Buffer.add_string buf
    (Printf.sprintf
       "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"black\"/>\n\
        <text x=\"%d\" y=\"%d\">0</text>\n\
        <text x=\"%d\" y=\"%d\">%d cycles</text>\n"
       left axis_y (left + plot_w) axis_y left (axis_y + 12) (left + plot_w - 60) (axis_y + 12)
       finish);
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let xml_escape label =
  String.concat ""
    (List.map
       (fun c ->
         match c with
         | '<' -> "&lt;"
         | '>' -> "&gt;"
         | '&' -> "&amp;"
         | '"' -> "&quot;"
         | c -> String.make 1 c)
       (List.init (String.length label) (String.get label)))

(* Gantt of one iteration with the synchronization structure overlaid:
   cycles on the vertical axis, issue slots on the horizontal, a
   [Src -> Sig] arc (green) per signal and a [Wat -> Snk] arc (red) per
   wait.  When a provenance trace is supplied, each instruction's box
   carries its placement decision as a hover tooltip ([<title>]). *)
let gantt_svg ?(decisions = []) (s : Schedule.t) =
  let module Provenance = Isched_obs.Provenance in
  let p = s.Schedule.prog in
  let n = Array.length p.Program.body in
  let cell_w = 150 and cell_h = 18 and left = 46 and top = 24 in
  let width = s.Schedule.machine.Isched_ir.Machine.issue_width in
  let w = left + (width * cell_w) + 20 in
  let h = top + (s.Schedule.length * cell_h) + 30 in
  (* body index -> (row, slot) *)
  let slot_of = Array.make n (-1, -1) in
  Array.iteri
    (fun row nodes -> Array.iteri (fun slot i -> slot_of.(i) <- (row, slot)) nodes)
    s.Schedule.rows;
  let center i =
    let row, slot = slot_of.(i) in
    (left + (slot * cell_w) + (cell_w / 2), top + (row * cell_h) + (cell_h / 2))
  in
  let last_decision = Array.make n None in
  List.iter
    (fun (d : Provenance.decision) ->
      if d.Provenance.instr >= 0 && d.Provenance.instr < n then
        last_decision.(d.Provenance.instr) <- Some d)
    decisions;
  let buf = Buffer.create 8192 in
  Buffer.add_string buf (svg_header ~w ~h);
  Buffer.add_string buf
    "<defs>\n\
     <marker id=\"arr-sig\" markerWidth=\"8\" markerHeight=\"8\" refX=\"6\" refY=\"3\" \
     orient=\"auto\"><path d=\"M0,0 L6,3 L0,6 z\" fill=\"#44aa77\"/></marker>\n\
     <marker id=\"arr-wat\" markerWidth=\"8\" markerHeight=\"8\" refX=\"6\" refY=\"3\" \
     orient=\"auto\"><path d=\"M0,0 L6,3 L0,6 z\" fill=\"#cc4444\"/></marker>\n\
     </defs>\n";
  Buffer.add_string buf
    (Printf.sprintf "<text x=\"%d\" y=\"14\">%s: %d rows on %s (sync arcs: Src&#8594;Sig green, \
                     Wat&#8594;Snk red)</text>\n"
       left p.Program.name s.Schedule.length
       (Isched_ir.Machine.name s.Schedule.machine));
  Array.iteri
    (fun row nodes ->
      let y = top + (row * cell_h) in
      Buffer.add_string buf
        (Printf.sprintf "<text x=\"4\" y=\"%d\">%d</text>\n" (y + 13) (row + 1));
      Array.iteri
        (fun slot i ->
          let x = left + (slot * cell_w) in
          let ins = p.Program.body.(i) in
          let fill = if Instr.is_sync ins then "#dd7755" else "#cfdcee" in
          let label =
            Format.asprintf "%d: %a" (i + 1)
              (Instr.pp_full ~signal_name:(Program.signal_label p) ~wait_name:(Program.wait_label p))
              ins
          in
          let tooltip =
            match last_decision.(i) with
            | None -> label
            | Some d ->
              let rej =
                match d.Provenance.rejections with
                | [] -> ""
                | rs ->
                  "\n"
                  ^ String.concat "\n"
                      (List.map
                         (fun (r : Provenance.rejection) ->
                           Printf.sprintf "  refused at cycle %d: %s" (r.Provenance.at_cycle + 1)
                             r.Provenance.reason)
                         rs)
              in
              Format.asprintf "%s\n%a%s" label Provenance.pp_decision d rej
          in
          Buffer.add_string buf
            (Printf.sprintf
               "<g><title>%s</title><rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" \
                fill=\"%s\" stroke=\"#889\"/>\n\
                <text x=\"%d\" y=\"%d\">%s</text></g>\n"
               (xml_escape tooltip) x y (cell_w - 2) (cell_h - 2) fill (x + 3) (y + 13)
               (xml_escape label)))
        nodes)
    s.Schedule.rows;
  let arc ~color ~marker a b =
    let xa, ya = center a and xb, yb = center b in
    let bend = if xa = xb then 30 else 0 in
    Buffer.add_string buf
      (Printf.sprintf
         "<path d=\"M%d,%d C%d,%d %d,%d %d,%d\" fill=\"none\" stroke=\"%s\" \
          stroke-width=\"1.5\" opacity=\"0.8\" marker-end=\"url(#%s)\"/>\n"
         xa ya (xa + bend) ya (xb + bend) yb xb yb color marker)
  in
  Array.iter
    (fun (si : Program.signal_info) ->
      arc ~color:"#44aa77" ~marker:"arr-sig" si.Program.src_instr si.Program.send_instr)
    p.Program.signals;
  Array.iter
    (fun (wi : Program.wait_info) ->
      arc ~color:"#cc4444" ~marker:"arr-wat" wi.Program.wait_instr wi.Program.snk_instr)
    p.Program.waits;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let schedule_svg (s : Schedule.t) =
  let p = s.Schedule.prog in
  let cell_w = 150 and cell_h = 16 and left = 40 in
  let width = s.Schedule.machine.Isched_ir.Machine.issue_width in
  let w = left + (width * cell_w) + 20 in
  let h = (s.Schedule.length * cell_h) + 40 in
  let buf = Buffer.create 8192 in
  Buffer.add_string buf (svg_header ~w ~h);
  Buffer.add_string buf
    (Printf.sprintf "<text x=\"%d\" y=\"14\">%s: %d rows on %s</text>\n" left p.Program.name
       s.Schedule.length
       (Isched_ir.Machine.name s.Schedule.machine));
  Array.iteri
    (fun row nodes ->
      let y = 22 + (row * cell_h) in
      Buffer.add_string buf (Printf.sprintf "<text x=\"4\" y=\"%d\">%d</text>\n" (y + 12) (row + 1));
      Array.iteri
        (fun slot i ->
          let x = left + (slot * cell_w) in
          let ins = p.Program.body.(i) in
          let fill = if Instr.is_sync ins then "#dd7755" else "#cfdcee" in
          let label =
            Format.asprintf "%d: %a" (i + 1)
              (Instr.pp_full ~signal_name:(Program.signal_label p) ~wait_name:(Program.wait_label p))
              ins
          in
          let escaped =
            String.concat ""
              (List.map
                 (fun c ->
                   match c with
                   | '<' -> "&lt;"
                   | '>' -> "&gt;"
                   | '&' -> "&amp;"
                   | c -> String.make 1 c)
                 (List.init (String.length label) (String.get label)))
          in
          Buffer.add_string buf
            (Printf.sprintf
               "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"%s\" stroke=\"#889\"/>\n\
                <text x=\"%d\" y=\"%d\">%s</text>\n"
               x y (cell_w - 2) (cell_h - 2) fill (x + 3) (y + 12) escaped))
        nodes)
    s.Schedule.rows;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf
