module Program = Isched_ir.Program
module Instr = Isched_ir.Instr
module Schedule = Isched_core.Schedule
module Memory = Isched_exec.Memory
module Readlog = Isched_exec.Readlog
module Prog_interp = Isched_exec.Prog_interp

type result = {
  finish : int;
  memory : Memory.t;
  log : Readlog.t;
  races : string list;
}

type proc = { k : int; ivar : int; regs : float array; mutable row : int }

let run (s : Schedule.t) =
  let p = s.Schedule.prog in
  let n = p.Program.n_iters in
  let rows = s.Schedule.rows in
  let n_rows = Array.length rows in
  let mem = Memory.create () in
  let log = Readlog.create () in
  let races = ref [] in
  let n_signals = Array.length p.Program.signals in
  let post = Array.init (max 1 n_signals) (fun _ -> Array.make n (-1)) in
  let procs =
    Array.init n (fun k ->
        { k; ivar = p.Program.lo + k; regs = Array.make (max 1 p.Program.n_regs) 0.; row = 0 })
  in
  let live = ref n in
  let cycle = ref 0 in
  let bound = (n * (n_rows + 16)) + 1024 in
  while !live > 0 do
    if !cycle > bound then
      invalid_arg (Printf.sprintf "Value.run: %s did not retire within %d cycles" p.Program.name bound);
    (* Buffered effects: visible from the next cycle. *)
    let writes : (string * int option * float * Memory.tag * int) list ref = ref [] in
    let posts : (int * int) list ref = ref [] in
    Array.iter
      (fun proc ->
        if proc.row < n_rows then begin
          let row = rows.(proc.row) in
          let satisfied =
            Array.for_all
              (fun i ->
                match p.Program.body.(i) with
                | Instr.Wait { wait } ->
                  let w = p.Program.waits.(wait) in
                  let from = proc.k - w.Program.distance in
                  from < 0
                  ||
                  let posted = post.(w.Program.signal).(from) in
                  posted >= 0 && posted < !cycle
                | _ -> true)
              row
          in
          if satisfied then begin
            Array.iter
              (fun i ->
                match p.Program.body.(i) with
                | Instr.Send { signal } -> posts := (signal, proc.k) :: !posts
                | ins ->
                  let store ~cell ~index ~value =
                    let tag = Memory.Written { iter = proc.ivar; instr = i } in
                    writes := (cell, index, value, tag, proc.k) :: !writes
                  in
                  Prog_interp.exec_instr mem ~log ~regs:proc.regs ~ivar:proc.ivar ~instr_idx:i
                    ~store ins)
              row;
            proc.row <- proc.row + 1;
            if proc.row = n_rows then decr live
          end
        end)
      procs;
    (* Commit writes, lowest iteration last-writer-wins is a race; apply
       ascending so the outcome is deterministic and flagged. *)
    let writes = List.sort (fun (_, _, _, _, ka) (_, _, _, _, kb) -> compare ka kb) !writes in
    let seen = Hashtbl.create 8 in
    List.iter
      (fun (cell, index, value, tag, k) ->
        let key = (cell, index) in
        (match Hashtbl.find_opt seen key with
        | Some k0 ->
          races :=
            Printf.sprintf "cycle %d: iterations %d and %d both write %s%s" !cycle
              (p.Program.lo + k0) (p.Program.lo + k) cell
              (match index with Some i -> Printf.sprintf "[%d]" i | None -> "")
            :: !races
        | None -> Hashtbl.add seen key k);
        match index with
        | Some i -> Memory.set mem cell i value tag
        | None -> Memory.set_scalar mem cell value tag)
      writes;
    List.iter (fun (signal, k) -> post.(signal).(k) <- !cycle) !posts;
    incr cycle
  done;
  { finish = !cycle; memory = mem; log; races = List.rev !races }
