module Ast = Isched_frontend.Ast
module Program = Isched_ir.Program
module Machine = Isched_ir.Machine
module Restructure = Isched_transform.Restructure
module Span = Isched_obs.Span
module Counters = Isched_obs.Counters

type options = {
  eliminate : bool;
  migrate : bool;
  sync_elim : bool;
  order_paths : bool;
  n_iters : int option;
}

let default_options =
  { eliminate = false; migrate = false; sync_elim = false; order_paths = true; n_iters = None }

type prepared =
  | Doall of Restructure.result
  | Doacross of {
      restructured : Restructure.result;
      carried : Isched_deps.Dep.t list;  (* of the restructured loop *)
      prog : Program.t;
      graph : Isched_dfg.Dfg.t;
    }

type scheduler = List_scheduling | Marker_scheduling | New_scheduling

let all_schedulers = [ List_scheduling; Marker_scheduling; New_scheduling ]

let scheduler_name = function
  | List_scheduling -> "list scheduling"
  | Marker_scheduling -> "marker-guided scheduling"
  | New_scheduling -> "new instruction scheduling"

(* The front half of the pipeline is pure: the same (loop, options) pair
   always restructures, compiles and builds the same graph, and none of
   the produced structures is mutated downstream (schedulers allocate
   their own working state).  The tables and ablations re-prepare the
   same corpus loops dozens of times, so [prepare] memoizes on the
   structural key below.  Only the option fields that the front half
   reads participate in the key — [order_paths] is a scheduler knob. *)
type prep_key = {
  key_loop : Ast.loop;
  key_eliminate : bool;
  key_migrate : bool;
  key_sync_elim : bool;
  key_n_iters : int option;
}

(* Key hashing rides on the digest the frontend computed once at loop
   construction: the default polymorphic hash samples only the first
   handful of AST nodes, so generated corpus loops collided and every
   probe degenerated into long-chain structural comparisons of whole
   loops.  The digest check also serves as a cheap pre-filter before
   the full structural equality on the rare chain collision. *)
module Key = struct
  type t = prep_key

  let equal a b =
    a.key_eliminate = b.key_eliminate
    && a.key_migrate = b.key_migrate
    && a.key_sync_elim = b.key_sync_elim
    && a.key_n_iters = b.key_n_iters
    && (a.key_loop == b.key_loop
       || (a.key_loop.Ast.digest = b.key_loop.Ast.digest && a.key_loop = b.key_loop))

  let hash k =
    k.key_loop.Ast.digest
    lxor Hashtbl.hash (k.key_eliminate, k.key_migrate, k.key_sync_elim, k.key_n_iters)
end

module Memo_tbl = Hashtbl.Make (Key)

(* The memo is striped: [n_shards] independent (mutex, table) pairs,
   indexed by the key's digest.  Concurrent table/ablation cells that
   probe different loops then take different locks, instead of
   serializing ~20k probes per bench run behind one global mutex. *)
let n_shards = 16 (* power of two *)

type shard = { shard_lock : Mutex.t; table : prepared Memo_tbl.t }

let shards =
  Array.init n_shards (fun _ -> { shard_lock = Mutex.create (); table = Memo_tbl.create 16 })

let shard_for key = shards.(Key.hash key land (n_shards - 1))

(* The memo accounting now lives in the process-wide counter registry
   (it used to be two private atomics) so --counters and the bench
   records read the same numbers as [memo_stats]. *)
let c_hits = Counters.counter "pipeline.memo.hit"
let c_misses = Counters.counter "pipeline.memo.miss"

let memo_stats () = (Counters.value c_hits, Counters.value c_misses)

let memo_clear () =
  Array.iter (fun s -> Mutex.protect s.shard_lock (fun () -> Memo_tbl.reset s.table)) shards;
  Counters.reset_counter c_hits;
  Counters.reset_counter c_misses

let prepare_uncached (options : options) (l : Ast.loop) =
  Span.with_ ~name:"pipeline.prepare" ~args:[ ("loop", l.Ast.name) ] (fun () ->
      let restructured = Restructure.run l in
      let l' = restructured.Restructure.loop in
      (* One dependence analysis decides DOALL and feeds the sync plan:
         [carried_deps] is the expensive half of [prepare], and
         [is_doall] + [Plan.build] used to each run it. *)
      let carried = Isched_deps.Dep.carried_deps l' in
      if carried = [] then Doall restructured
      else begin
        let prog =
          Isched_codegen.Codegen.compile ~eliminate:options.eliminate ~migrate:options.migrate
            ~carried ?n_iters:options.n_iters l'
        in
        let graph = Isched_dfg.Dfg.build prog in
        let prog, graph =
          if options.sync_elim then begin
            let r = Isched_sync.Elim.run prog graph in
            (r.Isched_sync.Elim.prog, r.Isched_sync.Elim.graph)
          end
          else (prog, graph)
        in
        Doacross { restructured; carried; prog; graph }
      end)

let prepare ?(options = default_options) (l : Ast.loop) =
  let key =
    {
      key_loop = l;
      key_eliminate = options.eliminate;
      key_migrate = options.migrate;
      key_sync_elim = options.sync_elim;
      key_n_iters = options.n_iters;
    }
  in
  let shard = shard_for key in
  match Mutex.protect shard.shard_lock (fun () -> Memo_tbl.find_opt shard.table key) with
  | Some p ->
    Counters.incr c_hits;
    p
  | None ->
    (* Computed outside the lock: concurrent workers may race to prepare
       the same loop (both results are equal; last insert wins), but the
       expensive work never serializes behind the mutex. *)
    let p = prepare_uncached options l in
    Counters.incr c_misses;
    Mutex.protect shard.shard_lock (fun () -> Memo_tbl.replace shard.table key p);
    p

let schedule_inner ~options prepared machine which =
  match prepared with
  | Doall r ->
    invalid_arg
      (Printf.sprintf "Pipeline.schedule: %s is a DOALL loop" r.Restructure.loop.Ast.name)
  | Doacross { graph; _ } -> (
    match which with
    | List_scheduling -> Isched_core.List_sched.run graph machine
    | Marker_scheduling -> Isched_core.Marker_sched.run graph machine
    | New_scheduling ->
      let opts =
        { Isched_core.Sync_sched.default_options with order_paths = options.order_paths }
      in
      Isched_core.Sync_sched.run ~options:opts graph machine)

exception Invalid_schedule_produced of { scheduler : string; diagnostics : string }

let () =
  Printexc.register_printer (function
    | Invalid_schedule_produced { scheduler; diagnostics } ->
      Some (Printf.sprintf "Pipeline: %s produced an invalid schedule:\n%s" scheduler diagnostics)
    | _ -> None)

(* [validate] reruns the independent checker on every schedule handed
   out: the static analyzer against the same graph the scheduler used
   plus the trusted rebuild (both, so a dropped-arc discrepancy between
   them is caught from either side). *)
let validate_schedule which (s : Isched_core.Schedule.t) graph =
  let fail vs =
    raise
      (Invalid_schedule_produced
         {
           scheduler = scheduler_name which;
           diagnostics =
             Isched_check.Static.errors_to_string s.Isched_core.Schedule.prog.Program.name vs;
         })
  in
  (match Isched_check.Static.check ~graph s with Ok () -> () | Error vs -> fail vs);
  match Isched_check.Static.check s with Ok () -> () | Error vs -> fail vs

let schedule ?(options = default_options) ?(validate = false) prepared machine which =
  let s =
    if Span.enabled () then
      Span.with_ ~name:"pipeline.schedule" ~args:[ ("scheduler", scheduler_name which) ] (fun () ->
          schedule_inner ~options prepared machine which)
    else schedule_inner ~options prepared machine which
  in
  (if validate then
     match prepared with
     | Doall _ -> ()
     | Doacross { graph; _ } -> validate_schedule which s graph);
  s

let scheduler_tag = function
  | List_scheduling -> "list"
  | Marker_scheduling -> "marker"
  | New_scheduling -> "new"

let schedule_traced ?(options = default_options) ?validate prepared machine which =
  let module Provenance = Isched_obs.Provenance in
  let was = Provenance.enabled () in
  Provenance.reset ();
  Provenance.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Provenance.set_enabled was)
    (fun () ->
      let s = schedule ~options ?validate prepared machine which in
      (s, Provenance.decisions ()))

let loop_time ?(options = default_options) ?validate prepared machine which =
  let s = schedule ~options ?validate prepared machine which in
  (Isched_sim.Timing.run s).Isched_sim.Timing.finish

let list_and_new_times ?(options = default_options) prepared machine =
  match prepared with
  | Doall r ->
    invalid_arg
      (Printf.sprintf "Pipeline.list_and_new_times: %s is a DOALL loop"
         r.Restructure.loop.Ast.name)
  | Doacross { graph; _ } ->
    let s_list = Isched_core.List_sched.run graph machine in
    let opts =
      { Isched_core.Sync_sched.default_options with order_paths = options.order_paths }
    in
    (* The list schedule doubles as the new scheduler's never-degrade
       baseline: both measurements cost one list run instead of two.
       When the comparison falls back it returns the baseline itself, so
       physical equality marks the second simulation as redundant. *)
    let s_new = Isched_core.Sync_sched.run ~options:opts ~baseline:s_list graph machine in
    let t_list = (Isched_sim.Timing.run s_list).Isched_sim.Timing.finish in
    let t_new =
      if s_new == s_list then t_list
      else (Isched_sim.Timing.run s_new).Isched_sim.Timing.finish
    in
    (t_list, t_new)
