module Ast = Isched_frontend.Ast
module Program = Isched_ir.Program
module Machine = Isched_ir.Machine
module Restructure = Isched_transform.Restructure

type options = {
  eliminate : bool;
  migrate : bool;
  order_paths : bool;
  n_iters : int option;
}

let default_options = { eliminate = false; migrate = false; order_paths = true; n_iters = None }

type prepared =
  | Doall of Restructure.result
  | Doacross of {
      restructured : Restructure.result;
      prog : Program.t;
      graph : Isched_dfg.Dfg.t;
    }

type scheduler = List_scheduling | New_scheduling

let scheduler_name = function
  | List_scheduling -> "list scheduling"
  | New_scheduling -> "new instruction scheduling"

let prepare ?(options = default_options) (l : Ast.loop) =
  let restructured = Restructure.run l in
  let l' = restructured.Restructure.loop in
  if Isched_deps.Dep.is_doall l' then Doall restructured
  else begin
    let prog =
      Isched_codegen.Codegen.compile ~eliminate:options.eliminate ~migrate:options.migrate
        ?n_iters:options.n_iters l'
    in
    let graph = Isched_dfg.Dfg.build prog in
    Doacross { restructured; prog; graph }
  end

let schedule ?(options = default_options) prepared machine which =
  match prepared with
  | Doall r ->
    invalid_arg
      (Printf.sprintf "Pipeline.schedule: %s is a DOALL loop" r.Restructure.loop.Ast.name)
  | Doacross { graph; _ } -> (
    match which with
    | List_scheduling -> Isched_core.List_sched.run graph machine
    | New_scheduling ->
      let opts =
        { Isched_core.Sync_sched.default_options with order_paths = options.order_paths }
      in
      Isched_core.Sync_sched.run ~options:opts graph machine)

let loop_time ?(options = default_options) prepared machine which =
  let s = schedule ~options prepared machine which in
  (Isched_sim.Timing.run s).Isched_sim.Timing.finish
