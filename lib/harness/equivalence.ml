module Ast = Isched_frontend.Ast
module Restructure = Isched_transform.Restructure
module Memory = Isched_exec.Memory
module Semantics = Isched_exec.Semantics

let check_restructure (l : Ast.loop) (r : Restructure.result) =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let mem_orig = Isched_exec.Ast_interp.run l in
  let mem_new = Isched_exec.Ast_interp.run r.Restructure.loop in
  let transformed_scalars =
    List.filter_map
      (function
        | Restructure.Iv_subst { name; _ }
        | Restructure.Reduction { name; _ }
        | Restructure.Expanded { name; _ } ->
          Some name)
      r.Restructure.actions
  in
  let partial_arrays =
    List.filter_map
      (function
        | Restructure.Reduction { partial; _ } | Restructure.Expanded { partial; _ } ->
          Some partial
        | Restructure.Iv_subst _ -> None)
      r.Restructure.actions
  in
  (* Reconcile each action. *)
  List.iter
    (function
      | Restructure.Reduction { name; op; partial } ->
        (* Fold the partials in iteration order, starting from the
           scalar's initial (pre-loop) value. *)
        let fresh = Memory.create () in
        let acc = ref (Memory.get_scalar fresh name) in
        for i = l.Ast.lo to l.Ast.hi do
          let e = Memory.get mem_new partial i in
          acc :=
            (match op with
            | Ast.Add -> !acc +. e
            | Ast.Sub -> !acc -. e
            | Ast.Mul -> !acc *. e
            | Ast.Div -> if e = 0. then 0. else !acc /. e)
        done;
        let got = Memory.get_scalar mem_orig name in
        if not (Semantics.eq !acc got) then
          err "reduction %s: combined partials %h but the original loop computes %h" name !acc got
      | Restructure.Expanded { name; partial } ->
        let expected = Memory.get mem_new partial l.Ast.hi in
        let got = Memory.get_scalar mem_orig name in
        if not (Semantics.eq expected got) then
          err "expanded scalar %s: %s[%d] = %h but the original computes %h" name partial l.Ast.hi
            expected got
      | Restructure.Iv_subst { name; step } ->
        let fresh = Memory.create () in
        let expected =
          Memory.get_scalar fresh name +. float_of_int (step * Ast.iterations l)
        in
        let got = Memory.get_scalar mem_orig name in
        if not (Semantics.eq expected got) then
          err "induction variable %s: closed form gives %h, original computes %h" name expected got)
    r.Restructure.actions;
  (* Everything else must agree cell for cell. *)
  List.iter
    (fun ((name, idx), v) ->
      if not (List.mem name partial_arrays) then begin
        let v' = Memory.get mem_orig name idx in
        if not (Semantics.eq v v') then err "%s[%d]: restructured %h vs original %h" name idx v v'
      end)
    (Memory.written_cells mem_new);
  List.iter
    (fun ((name, idx), v) ->
      let v' = Memory.get mem_new name idx in
      if not (Semantics.eq v v') then err "%s[%d]: original %h vs restructured %h" name idx v v')
    (Memory.written_cells mem_orig);
  List.iter
    (fun (name, v) ->
      if not (List.mem name transformed_scalars) then begin
        let v' = Memory.get_scalar mem_orig name in
        if not (Semantics.eq v v') then err "scalar %s: restructured %h vs original %h" name v v'
      end)
    (Memory.written_scalars mem_new);
  match List.rev !errors with [] -> Ok () | es -> Error es

let check_schedule prog sched =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let seq_log = Isched_exec.Readlog.create () in
  let seq_mem = Isched_exec.Prog_interp.run ~log:seq_log prog in
  let v = Isched_sim.Value.run sched in
  List.iter (fun d -> err "memory: %s" d) (Memory.diff seq_mem v.Isched_sim.Value.memory);
  List.iter
    (fun m -> err "stale read: %s" (Format.asprintf "%a" Isched_exec.Readlog.pp_mismatch m))
    (Isched_exec.Readlog.compare_logs ~reference:seq_log ~actual:v.Isched_sim.Value.log);
  List.iter (fun r -> err "race: %s" r) v.Isched_sim.Value.races;
  match List.rev !errors with [] -> Ok () | es -> Error es
