(** Perf-regression gate over the bench harness's history file
    ([BENCH_results.json]): parses the run records, compares the newest
    run against the mean of the prior runs at the same [jobs]/[smoke]
    setting, and flags wall-clock or [table_totals] growth beyond a
    threshold.  Drives [bench/main.exe --compare]; the logic lives here
    so the test suite can exercise it on synthetic histories. *)

(** One bench run, the modeled subset of a record (unknown fields are
    ignored when parsing and preserved by {!rotate_history}). *)
type run = {
  git_rev : string;
  unix_time : float;
  jobs : int;
  smoke : bool;
  scale : int;
      (** corpus scale factor ([bench --scale N]); records written
          before the flag existed parse as 1.  Baselines only match
          runs at the same scale *)
  stages : string;
      (** canonical stage-filter label (["all"] when the record predates
          the [--stages] flag or ran everything); baselines only match
          runs with the same label *)
  wall_clock_seconds : float;
  stage_seconds : (string * float) list;
  table_totals : (string * (int * int)) list;  (** config -> (t_list, t_new) *)
}

type stat = { mean : float; stddev : float; samples : int }

type regression = {
  metric : string;  (** e.g. ["wall_clock_seconds"], ["table_totals.<config>.t_new"] *)
  baseline : stat;
  candidate : float;
  ratio : float;  (** candidate / baseline mean *)
}

type comparison = {
  candidate : run;  (** the newest run *)
  baseline_runs : int;  (** prior runs at matching jobs/smoke *)
  stage_stats : (string * stat) list;  (** per-stage baseline mean/stddev *)
  regressions : regression list;
}

(** [stats_of xs] — population mean/stddev. *)
val stats_of : float list -> stat

(** [parse_history s] — the run records of one history document, oldest
    first.  Records missing the required numeric fields are skipped. *)
val parse_history : string -> (run list, string) result

(** [compare_latest ?threshold runs] — newest run vs the mean of the
    prior runs with the same [jobs], [smoke], [scale] and [stages].  A metric
    regresses when [candidate > (1 + threshold) * mean] (default
    threshold 0.20).  Besides wall clock and [table_totals], every
    per-stage time is gated individually, so a tables-stage regression
    cannot hide behind the serial micro stage's share of the wall
    clock; stage metrics additionally require the absolute slowdown to
    exceed 50 ms, so timer noise on millisecond stages is not flagged.
    A candidate with no matching baseline compares OK — first runs must
    not fail the gate.  [Error] on an empty history. *)
val compare_latest : ?threshold:float -> run list -> (comparison, string) result

(** [ok c] — no regression was flagged. *)
val ok : comparison -> bool

(** [render_comparison c] — the human report [--compare] prints. *)
val render_comparison : comparison -> string

(** [rotate_history ?keep contents] — [Some rewritten] with only the
    newest [keep] (default 200) runs when [contents] parses and exceeds
    the bound; [None] when nothing needs rewriting (or the document is
    unparseable — the caller keeps it untouched rather than destroying
    history).  Unknown run fields survive verbatim. *)
val rotate_history : ?keep:int -> string -> string option
