(** The paper's running example (Figs. 1-4), reproduced end to end:
    the three-statement DOACROSS loop of Fig. 1, its three-address code
    (Fig. 2), the Sigwat/Wat partition of the data-flow graph (Fig. 3)
    and the two schedules of Fig. 4 with their parallel execution
    times. *)

module Ast := Isched_frontend.Ast

(** The Fig. 1(a) source text. *)
val fig1_source : string

(** The parsed loop. *)
val fig1_loop : unit -> Ast.loop

(** The compiled program (Fig. 2; 28 instructions — the paper's Fig. 2
    prints 27 because it fuses the final add into the store). *)
val fig2_program : unit -> Isched_ir.Program.t

(** [report ()] — the full worked example as printable text: annotated
    loop, numbered three-address code, component classification, sync
    path, both 4-issue schedules, and simulated + analytic times. *)
val report : unit -> string
