(** The paper's Fig. 5 statistical pipeline, end to end:

    benchmark source
    -> Parafrase surrogate (restructuring + DOALL detection)
    -> synchronization insertion
    -> DLX-like code generation
    -> data-flow graph with sync arcs
    -> (list | new) scheduling per machine configuration
    -> timing simulation of the n-processor execution.  *)

module Ast := Isched_frontend.Ast
module Program := Isched_ir.Program
module Machine := Isched_ir.Machine

type options = {
  eliminate : bool;  (** plan-level redundant-wait pre-pass (ablation A2) *)
  migrate : bool;  (** statement migration pre-pass (ablation A3) *)
  sync_elim : bool;
      (** post-codegen transitive-reduction pass ({!Isched_sync.Elim}):
          deletes Send/Wait pairs whose ordering is already enforced
          transitively and rebuilds the graph the schedulers see *)
  order_paths : bool;  (** new scheduler's damage ordering (ablation A1) *)
  n_iters : int option;  (** override the loops' trip count *)
}

val default_options : options

type prepared =
  | Doall of Isched_transform.Restructure.result
      (** no carried dependences remain: runs fully parallel, excluded
          from the DOACROSS statistics exactly like the paper's
          "extract loops which cannot be parallelized" step *)
  | Doacross of {
      restructured : Isched_transform.Restructure.result;
      carried : Isched_deps.Dep.t list;
          (** the restructured loop's loop-carried dependences — the
              analysis that decided DOACROSS, kept for downstream
              consumers (e.g. categorization) so they need not rerun it *)
      prog : Program.t;
      graph : Isched_dfg.Dfg.t;
    }

(** [prepare ?options l] runs the front half of the pipeline.

    Results are memoized on the structural key (loop, eliminate,
    migrate, sync_elim, n_iters) — every option the front half reads is
    part of the key, so toggling a pass can never return a stale
    preparation: the tables, sweeps and ablations re-prepare the
    same corpus loops many times, and restructuring + code generation +
    graph construction dominate their cost.  The cache is protected by a
    mutex and safe to hit from {!Isched_util.Pool} workers; the cached
    structures are never mutated downstream. *)
val prepare : ?options:options -> Ast.loop -> prepared

(** [prepare_uncached options l] — {!prepare} without the memo: nothing
    is retained after the result is dropped.  The streamed scaled-corpus
    path uses this so a 1000× suite never accumulates in the cache. *)
val prepare_uncached : options -> Ast.loop -> prepared

(** [memo_stats ()] — cumulative (hits, misses) of the {!prepare} memo
    cache.  Backed by the {!Isched_obs.Counters} registry (counters
    [pipeline.memo.hit] / [pipeline.memo.miss]); both views always
    agree. *)
val memo_stats : unit -> int * int

(** [memo_clear ()] — drop the {!prepare} cache and reset its
    counters (for tests and memory-sensitive callers). *)
val memo_clear : unit -> unit

type scheduler = List_scheduling | Marker_scheduling | New_scheduling

(** Every scheduler the pipeline can drive, in baseline-to-best order
    (the property tests check all of them). *)
val all_schedulers : scheduler list

(** Raised by {!schedule} with [~validate:true] when the independent
    checker ({!Isched_check.Static}) finds violations in a produced
    schedule.  [diagnostics] is the located, one-per-line rendering. *)
exception Invalid_schedule_produced of { scheduler : string; diagnostics : string }

(** [schedule ?options ?validate prepared m which] — the back half; only
    valid on [Doacross].  The result passes
    {!Isched_core.Schedule.validate}.

    [validate] (default [false]) additionally runs the independent
    static checker on the result — against both the graph the scheduler
    used and a trusted rebuild — and raises
    {!Invalid_schedule_produced} on any violation.  Opt-in because the
    checker roughly doubles the per-schedule cost. *)
val schedule :
  ?options:options -> ?validate:bool -> prepared -> Machine.t -> scheduler ->
  Isched_core.Schedule.t

(** [schedule_traced ?options ?validate prepared m which] — {!schedule}
    with {!Isched_obs.Provenance} recording enabled for the duration:
    resets the decision ring, schedules, and returns the schedule paired
    with its decision list (every placement of the run, including those
    of a nested baseline comparison).  The prior enabled state is
    restored on exit, even on exceptions.  The schedule is byte-identical
    to an untraced {!schedule} (pinned by the property suite). *)
val schedule_traced :
  ?options:options ->
  ?validate:bool ->
  prepared ->
  Machine.t ->
  scheduler ->
  Isched_core.Schedule.t * Isched_obs.Provenance.decision list

(** [scheduler_tag which] — the short tag the schedulers stamp on their
    provenance decisions: ["list"], ["marker"] or ["new"]. *)
val scheduler_tag : scheduler -> string

(** [loop_time ?options ?validate prepared m which] — parallel execution
    time of the loop from the timing simulator ({!Isched_sim.Timing}).
    Like the paper's statistics, only DOACROSS loops are measured;
    raises [Invalid_argument] on [Doall].  [validate] as in
    {!schedule}. *)
val loop_time : ?options:options -> ?validate:bool -> prepared -> Machine.t -> scheduler -> int

(** [list_and_new_times ?options prepared m] — [loop_time] for
    [List_scheduling] and [New_scheduling] in one call, reusing the list
    schedule as the new scheduler's never-degrade baseline so the list
    scheduler runs once instead of twice.  Results are identical to two
    separate {!loop_time} calls (both schedulers are deterministic). *)
val list_and_new_times : ?options:options -> prepared -> Machine.t -> int * int

val scheduler_name : scheduler -> string
