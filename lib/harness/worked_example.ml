module Ast = Isched_frontend.Ast
module Machine = Isched_ir.Machine
module Dfg = Isched_dfg.Dfg

let fig1_source =
  {|DOACROSS I = 1, 100
  S1: B[I] = A[I-2] + E[I+1]
  S2: G[I-3] = A[I-1] * E[I+2]
  S3: A[I] = B[I] + C[I+3]
ENDDO
|}

let fig1_loop () = Isched_frontend.Parser.parse_loop ~name:"fig1" fig1_source

let fig2_program () =
  let loop = fig1_loop () in
  let plan = Isched_sync.Plan.build loop in
  Isched_codegen.Codegen.run loop plan

let comp_kind_name = function
  | Dfg.Sig_graph -> "Sig graph"
  | Dfg.Wat_graph -> "Wat graph"
  | Dfg.Sigwat_graph -> "Sigwat graph"
  | Dfg.Plain -> "plain"

let report () =
  let buf = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let loop = fig1_loop () in
  let plan = Isched_sync.Plan.build loop in
  pr "=== Fig. 1 - synchronization operation insertion ===\n";
  pr "%s\n" (Format.asprintf "%a" (fun ppf () -> Isched_sync.Plan.pp_annotated ppf loop plan) ());
  let prog = Isched_codegen.Codegen.run loop plan in
  pr "=== Fig. 2 - three-address code ===\n%s\n" (Isched_ir.Program.to_string prog);
  let g = Dfg.build prog in
  let comps = Dfg.components g in
  pr "=== Fig. 3 - Sig/Wat/Sigwat partition ===\n";
  Array.iter
    (fun (c : Dfg.component) ->
      pr "component %d (%s): instructions {%s}\n" c.Dfg.id (comp_kind_name c.Dfg.kind)
        (String.concat ", " (List.map (fun i -> string_of_int (i + 1)) c.Dfg.nodes)))
    comps;
  List.iter
    (fun (sp : Dfg.sync_path) ->
      pr "synchronization path SP(Wat%d, Sig%d), d=%d: [%s]\n" sp.Dfg.wait_id sp.Dfg.signal
        sp.Dfg.distance
        (String.concat ", " (List.map (fun i -> string_of_int (i + 1)) sp.Dfg.nodes)))
    (Dfg.sync_paths g);
  let machine = Machine.make ~issue:4 ~nfu:1 () in
  let describe name s =
    pr "\n=== Fig. 4 - %s (4-issue, #FU=1) ===\n%s" name (Isched_core.Schedule.to_string s);
    let t = Isched_sim.Timing.run s in
    pr "LBD pairs remaining: %d\n" (Isched_core.Lbd_model.n_lbd s);
    List.iter
      (fun r -> pr "  %s\n" (Format.asprintf "%a" Isched_core.Lbd_model.pp_report r))
      (Isched_core.Lbd_model.pairs s);
    pr "parallel execution time: simulated %d, analytic (LBD theorem) %d, paper formula %d\n"
      t.Isched_sim.Timing.finish
      (Isched_core.Lbd_model.exact_time s)
      (Isched_core.Lbd_model.paper_time s)
  in
  describe "list scheduling" (Isched_core.List_sched.run g machine);
  describe "new instruction scheduling" (Isched_core.Sync_sched.run g machine);
  Buffer.contents buf
