module Ast = Isched_frontend.Ast
module Program = Isched_ir.Program
module Machine = Isched_ir.Machine
module Schedule = Isched_core.Schedule
module Lbd_model = Isched_core.Lbd_model
module Restructure = Isched_transform.Restructure
module Provenance = Isched_obs.Provenance
module Json = Isched_obs.Json

type pair_trace = {
  report : Lbd_model.pair_report;
  src_label : string;
  snk_label : string;
  array : string;
  send_chain : Provenance.decision list;
  wait_chain : Provenance.decision list;
}

type t = {
  loop_name : string;
  scheduler : string;
  machine : Machine.t;
  schedule : Schedule.t;
  decisions : Provenance.decision list;
  last_decision : Provenance.decision option array;
  pairs : pair_trace list;
  simulated : int;
  analytic : int;
  paper : int;
  fallback : bool;
}

let pair_key p = p.src_label ^ ":" ^ p.snk_label

let matches_pair filter p =
  match filter with None -> true | Some key -> String.equal key (pair_key p)

(* Walk a decision's binding predecessors back to a root: the causal
   chain that fixed its cycle.  Bounded by a seen-set (binding graphs are
   acyclic by construction, but a corrupted trace must not hang us). *)
let chain_of last i =
  let seen = Hashtbl.create 8 in
  let rec go i acc =
    if i < 0 || i >= Array.length last || Hashtbl.mem seen i then List.rev acc
    else begin
      Hashtbl.add seen i ();
      match last.(i) with
      | None -> List.rev acc
      | Some d -> (
        match d.Provenance.binding with
        | Some b when b.Provenance.pred >= 0 -> go b.Provenance.pred (d :: acc)
        | _ -> List.rev (d :: acc))
    end
  in
  go i []

let stmt_labels (l : Ast.loop) = Array.of_list (List.map (fun s -> s.Ast.label) l.Ast.body)

let build ?(options = Pipeline.default_options) ?(which = Pipeline.New_scheduling) loop machine =
  match Pipeline.prepare ~options loop with
  | Pipeline.Doall r ->
    Error
      (Printf.sprintf "%s is a DOALL loop: no synchronization to explain"
         r.Restructure.loop.Ast.name)
  | Pipeline.Doacross { restructured; prog; _ } as prepared ->
    let schedule, all = Pipeline.schedule_traced ~options prepared machine which in
    let tag = Pipeline.scheduler_tag which in
    let of_tag t =
      List.filter
        (fun (d : Provenance.decision) ->
          String.equal d.Provenance.scheduler t && String.equal d.Provenance.prog prog.Program.name)
        all
    in
    let final_cycle i = schedule.Schedule.cycle_of.(i) in
    let all_match ds =
      ds <> []
      && List.for_all (fun (d : Provenance.decision) -> final_cycle d.Provenance.instr = d.Provenance.cycle) ds
    in
    (* The new scheduler may discard its own placement for the list
       baseline (its never-degrade guarantee).  When that happened, the
       final cycles are exactly the baseline's, so attribute to the
       baseline's decisions instead of a schedule that was thrown away. *)
    let tagged = of_tag tag in
    let scheduler, decisions, fallback =
      if which = Pipeline.New_scheduling && (not (all_match tagged)) && all_match (of_tag "list")
      then ("list (fallback from new)", of_tag "list", true)
      else (tag, tagged, false)
    in
    let n = Array.length prog.Program.body in
    let last_decision = Array.make n None in
    List.iter
      (fun (d : Provenance.decision) ->
        if d.Provenance.instr >= 0 && d.Provenance.instr < n then
          last_decision.(d.Provenance.instr) <- Some d)
      decisions;
    let labels = stmt_labels restructured.Restructure.loop in
    let label_of_stmt s =
      if s >= 0 && s < Array.length labels then labels.(s) else Printf.sprintf "S%d" (s + 1)
    in
    let pairs =
      List.map
        (fun (r : Lbd_model.pair_report) ->
          let w = prog.Program.waits.(r.Lbd_model.wait_id) in
          let s = prog.Program.signals.(r.Lbd_model.signal) in
          {
            report = r;
            src_label = s.Program.label;
            snk_label = label_of_stmt w.Program.snk_stmt;
            array = w.Program.array;
            send_chain = chain_of last_decision s.Program.send_instr;
            wait_chain = chain_of last_decision w.Program.wait_instr;
          })
        (Lbd_model.pairs schedule)
    in
    Ok
      {
        loop_name = prog.Program.name;
        scheduler;
        machine;
        schedule;
        decisions;
        last_decision;
        pairs;
        simulated = (Isched_sim.Timing.run schedule).Isched_sim.Timing.finish;
        analytic = Lbd_model.exact_time schedule;
        paper = Lbd_model.paper_time schedule;
        fallback;
      }

(* --- rendering --- *)

let pp_chain_line buf (sched : Schedule.t) (d : Provenance.decision) =
  Buffer.add_string buf (Format.asprintf "    %a" Provenance.pp_decision d);
  let final = sched.Schedule.cycle_of.(d.Provenance.instr) in
  if final <> d.Provenance.cycle then
    Buffer.add_string buf (Printf.sprintf " [compacted to cycle %d]" (final + 1));
  Buffer.add_char buf '\n'

let render_ascii ?pair t =
  let buf = Buffer.create 2048 in
  let p = t.schedule.Schedule.prog in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "loop %s on %s — %s\n" t.loop_name (Machine.name t.machine) t.scheduler;
  add "schedule length l = %d, n = %d iterations\n" t.schedule.Schedule.length
    p.Program.n_iters;
  add "loop time: simulated = %d, analytic exact = %d, paper (n/d)(i-j)+l = %d\n\n" t.simulated
    t.analytic t.paper;
  Buffer.add_string buf (Schedule.to_string t.schedule);
  Buffer.add_char buf '\n';
  let shown = List.filter (matches_pair pair) t.pairs in
  (match (pair, shown) with
  | Some key, [] -> add "no synchronization pair matches %s\n" key
  | _ -> ());
  List.iter
    (fun pt ->
      let r = pt.report in
      add "pair %s -> %s (array %s, wait %s): i = %d, j = %d, i-j = %d, d = %d — %s\n"
        pt.src_label pt.snk_label pt.array
        (Program.wait_label p r.Lbd_model.wait_id)
        r.Lbd_model.send_pos r.Lbd_model.wait_pos
        (r.Lbd_model.send_pos - r.Lbd_model.wait_pos)
        r.Lbd_model.distance
        (if r.Lbd_model.is_lbd then "LBD" else "LFD");
      add "  contribution: paper (n/d)(i-j)+l = %d, exact = %d\n" r.Lbd_model.paper_time
        r.Lbd_model.exact_time;
      (match pt.send_chain with
      | [] -> add "  send decision chain: (not recorded)\n"
      | ds ->
        add "  send decision chain (i = %d):\n" r.Lbd_model.send_pos;
        List.iter (pp_chain_line buf t.schedule) (List.rev ds));
      (match pt.wait_chain with
      | [] -> add "  wait decision chain: (not recorded)\n"
      | ds ->
        add "  wait decision chain (j = %d):\n" r.Lbd_model.wait_pos;
        List.iter (pp_chain_line buf t.schedule) (List.rev ds));
      Buffer.add_char buf '\n')
    shown;
  Buffer.contents buf

let pair_json pt =
  let r = pt.report in
  let chain ds = "[" ^ String.concat ", " (List.map Provenance.decision_json ds) ^ "]" in
  Printf.sprintf
    "{ \"src\": %s, \"snk\": %s, \"array\": %s, \"wait_id\": %d, \"signal\": %d, \"i\": %d, \
     \"j\": %d, \"span\": %d, \"distance\": %d, \"is_lbd\": %b, \"paper_time\": %d, \
     \"exact_time\": %d, \"send_chain\": %s, \"wait_chain\": %s }"
    (Json.quote pt.src_label) (Json.quote pt.snk_label) (Json.quote pt.array) r.Lbd_model.wait_id
    r.Lbd_model.signal r.Lbd_model.send_pos r.Lbd_model.wait_pos
    (r.Lbd_model.send_pos - r.Lbd_model.wait_pos)
    r.Lbd_model.distance r.Lbd_model.is_lbd r.Lbd_model.paper_time r.Lbd_model.exact_time
    (chain pt.send_chain) (chain pt.wait_chain)

let render_json ?pair t =
  let shown = List.filter (matches_pair pair) t.pairs in
  Printf.sprintf
    "{\n  \"loop\": %s,\n  \"machine\": %s,\n  \"scheduler\": %s,\n  \"fallback\": %b,\n  \
     \"length\": %d,\n  \"n_iters\": %d,\n  \"simulated\": %d,\n  \"analytic\": %d,\n  \
     \"paper\": %d,\n  \"pairs\": [\n    %s\n  ],\n  \"decisions\": [\n    %s\n  ]\n}\n"
    (Json.quote t.loop_name)
    (Json.quote (Machine.name t.machine))
    (Json.quote t.scheduler) t.fallback t.schedule.Schedule.length
    t.schedule.Schedule.prog.Program.n_iters t.simulated t.analytic t.paper
    (String.concat ",\n    " (List.map pair_json shown))
    (String.concat ",\n    " (List.map Provenance.decision_json t.decisions))
